// Package safecross reproduces "To Turn or Not To Turn, SafeCross is
// the Answer" (ICDCS 2022) as a pure-Go system: a roadside framework
// that watches an intersection, detects occluded left-turn blind
// areas, classifies danger with a SlowFast video network, adapts to
// weather scenes with few-shot learning, and switches models in
// milliseconds with a PipeSwitch-style pipelined loader.
//
// The root package carries only documentation and the benchmark
// harness (bench_test.go) that regenerates every table and figure of
// the paper's evaluation; the implementation lives under internal/:
//
//   - internal/safecross — the framework (VP→VC→FL→MS composition)
//   - internal/vision, internal/flow, internal/detect — the VP module
//     and the detection study (Table II, Fig. 8)
//   - internal/tensor, internal/nn, internal/video — the from-scratch
//     learning stack and the SlowFast/C3D/TSN classifiers (Tables
//     III–IV)
//   - internal/fewshot — MAML and pretrained fine-tuning (Table V)
//   - internal/gpusim, internal/pipeswitch — the simulated
//     accelerator and model switching (Table VI)
//   - internal/sim, internal/dataset, internal/weather — the
//     synthetic intersection, the Table I dataset, scene detection
//   - internal/rsu — the TCP roadside-unit deployment surface
//   - internal/experiments — per-table/figure experiment drivers
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package safecross
