package main

import "testing"

func TestParseLineStandardAndCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkServe_MultiIntersection/batched-4gpu \t 16\t69781386 ns/op\t 1.333 mean-batch\t 557.1 virt-clip/s\t37135728 B/op\t 13855 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkServe_MultiIntersection/batched-4gpu" || b.Iterations != 16 {
		t.Fatalf("name/iters = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 69781386 || b.BytesPerOp != 37135728 || b.AllocsPerOp != 13855 {
		t.Fatalf("standard metrics = %v/%v/%v", b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Metrics["mean-batch"] != 1.333 || b.Metrics["virt-clip/s"] != 557.1 {
		t.Fatalf("custom metrics = %v", b.Metrics)
	}
}

func TestMissingRequired(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkServe_MultiIntersection/batched-4gpu"},
		{Name: "BenchmarkDetectEval_Yolite"},
	}
	if m := missingRequired("", benches); m != nil {
		t.Fatalf("empty require reported missing %v", m)
	}
	if m := missingRequired("BenchmarkServe, BenchmarkDetectEval", benches); m != nil {
		t.Fatalf("satisfied require reported missing %v", m)
	}
	m := missingRequired("BenchmarkServe,BenchmarkFewshotAdapt", benches)
	if len(m) != 1 || m[0] != "BenchmarkFewshotAdapt" {
		t.Fatalf("missing = %v, want [BenchmarkFewshotAdapt]", m)
	}
}

func TestParseLineRejectsNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: safecross",
		"PASS",
		"ok  \tsafecross\t9.060s",
		"",
		"Benchmark without iteration count",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q parsed as a benchmark", line)
		}
	}
}
