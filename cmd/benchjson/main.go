// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON record, so benchmark runs can be
// diffed across commits. When the output file already exists, its
// current benchmark set is rolled into a "previous" field, keeping a
// one-step before/after trajectory alongside every refresh:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -out BENCH_infer.json
//
// The -require flag takes comma-separated name substrings that must
// each match at least one parsed benchmark; a run that silently skips
// a hot path (e.g. a typo in the -bench regex) then fails loudly
// instead of writing a report with a hole in it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. The standard ns/op,
// B/op and allocs/op measurements get their own fields; every other
// "value unit" pair (custom b.ReportMetric metrics such as
// virt-clip/s, or telemetry-registry scrapes like queue-wait-p99-µs
// and switch-cost-p99-µs from BenchmarkServe_MultiIntersection) lands
// in Metrics.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout: the latest run plus the run it replaced.
type Report struct {
	Go         string      `json:"go"`
	Host       string      `json:"host,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Previous   []Benchmark `json:"previous,omitempty"`
}

// parseLine parses one benchmark output line, e.g.
//
//	BenchmarkFoo/bar-8   	 100	 12345 ns/op	 64 B/op	 2 allocs/op	 1.5 widgets
//
// Returns ok=false for non-benchmark lines (goos:, PASS, etc.).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The rest is "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// missingRequired returns the entries of require (comma-separated
// substrings) that match none of the parsed benchmark names. An empty
// require string demands nothing.
func missingRequired(require string, benches []Benchmark) []string {
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range benches {
			if strings.Contains(b.Name, want) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

func run(out, require string) error {
	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the human-readable output through
		if b, ok := parseLine(line); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("benchjson: read stdin: %w", err)
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	if missing := missingRequired(require, benches); len(missing) > 0 {
		return fmt.Errorf("benchjson: required benchmarks missing from input: %s", strings.Join(missing, ", "))
	}

	rep := Report{
		Go:         runtime.Version(),
		Host:       runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: benches,
	}
	// Roll the existing run into "previous" so the file always carries
	// its own before/after comparison.
	if raw, err := os.ReadFile(out); err == nil {
		var old Report
		if err := json.Unmarshal(raw, &old); err == nil {
			rep.Previous = old.Benchmarks
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: marshal: %w", err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), out)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_infer.json", "output JSON file")
	require := flag.String("require", "", "comma-separated name substrings that must each match a parsed benchmark, else exit non-zero")
	flag.Parse()
	if err := run(*out, *require); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
