package main

import (
	"strings"
	"testing"
)

func TestRunServesFramesWithDemoClient(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end RSU run skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-frames", "60",
		"-scene-frames", "60",
		"-demo",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "RSU listening on") {
		t.Fatalf("missing listen banner:\n%s", out)
	}
	if !strings.Contains(out, "served 60 frames") {
		t.Fatalf("missing completion summary:\n%s", out)
	}
	if !strings.Contains(out, "vehicle:") {
		t.Fatalf("demo client received nothing:\n%s", out)
	}
}

func TestRunMultiplexesIntersectionsThroughServingPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end RSU run skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-frames", "30",
		"-scene-frames", "30",
		"-intersections", "3",
		"-gpus", "2",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "served 90 frames across 3 intersections") {
		t.Fatalf("missing multi-intersection summary:\n%s", out)
	}
	if !strings.Contains(out, "serving plane:") {
		t.Fatalf("missing serving-plane stats:\n%s", out)
	}
}
