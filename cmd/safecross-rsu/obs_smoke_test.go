package main

// Observability smoke test (`make obs-smoke`): boot the RSU with a
// debug listener, scrape /metrics and /traces while the feeds run,
// and assert the key series and a full per-request trace are there.
// Scraping happens mid-flight — exactly how an operator would use the
// endpoints — because run() tears the listener down when it returns.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"safecross/internal/telemetry"
)

var debugBannerRE = regexp.MustCompile(`debug endpoints on (http://[^/\s]+)/metrics`)

// bannerWriter lets the test read run()'s output while run() is still
// writing it.
type bannerWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *bannerWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *bannerWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// wantSeries are the acceptance series: queue-wait, batch-size, and
// switch-cost from the serving plane, broadcast latency from the RSU,
// frame-stage timings from the frameworks, and the labelled PipeSwitch
// load histogram.
var wantSeries = []string{
	"serve_queue_wait_seconds_count",
	"serve_batch_size_count",
	"serve_switch_cost_seconds_count",
	"serve_submitted_total",
	"serve_completed_total",
	"rsu_broadcast_seconds_count",
	"safecross_frames_total",
	"safecross_frame_verdict_seconds_count",
	"safecross_vp_seconds_count",
	`pipeswitch_load_seconds_count{method="pipeswitch"}`,
	`slo_burn_rate{slo="serve-queue-wait"`,
	`slo_burn_rate{slo="frame-verdict"`,
	`slo_alert_active{slo="serve-queue-wait"}`,
}

// frameTraceStages is the span tiling a completed sampled frame must
// show: the five serving-plane stages, then the RSU broadcast.
var frameTraceStages = []string{"queue", "batch-wait", "switch", "compute", "deliver", "broadcast"}

func scrape(base, path string) (string, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// fullFrameTrace returns a completed trace with the expected stage
// tiling, or nil.
func fullFrameTrace(traces []telemetry.TraceSnapshot) *telemetry.TraceSnapshot {
	for i, tr := range traces {
		if tr.Terminal != "completed" || len(tr.Spans) != len(frameTraceStages) {
			continue
		}
		ok := true
		for j, sp := range tr.Spans {
			if sp.Name != frameTraceStages[j] {
				ok = false
				break
			}
			// The five serving spans tile exactly on shared instants;
			// broadcast starts after deliver (the submitter regains
			// control in between).
			if j > 0 && j < 5 && !sp.Start.Equal(tr.Spans[j-1].End) {
				ok = false
				break
			}
		}
		if ok {
			return &traces[i]
		}
	}
	return nil
}

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end RSU run skipped in -short mode")
	}
	out := &bannerWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-frames", "200",
			"-scene-frames", "50",
			"-intersections", "2",
			// The demo vehicle shares the process tracer, so sampled
			// frames produce both a serve-side trace and the vehicle's
			// receive segment under the same trace id.
			"-demo",
		}, out)
	}()

	// The debug listener comes up before training starts; find its
	// address from the banner.
	var base string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := debugBannerRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no debug banner in output:\n%s", out.String())
	}

	// Scrape until every series has appeared, a sampled frame has
	// retired a fully tiled trace, and that trace's id also shows on a
	// vehicle receive segment — the distributed-trace contract in one
	// process: the node's frame trace and the demo vehicle's segment
	// share one trace id. run() ending first means the endpoints never
	// showed the data — that is a failure.
	var lastMetrics string
	var missing []string
	var traceOK, stitchOK bool
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			t.Fatalf("run() finished (err=%v) before the debug endpoints showed all series; missing %v traceOK=%v stitchOK=%v\nlast scrape:\n%s",
				err, missing, traceOK, stitchOK, lastMetrics)
		case <-tick.C:
		}
		metrics, err := scrape(base, "/metrics")
		if err != nil {
			continue
		}
		lastMetrics = metrics
		missing = missing[:0]
		for _, s := range wantSeries {
			if !strings.Contains(metrics, s) {
				missing = append(missing, s)
			}
		}
		if !traceOK || !stitchOK {
			body, err := scrape(base, "/traces")
			if err != nil {
				continue
			}
			var traces []telemetry.TraceSnapshot
			if json.Unmarshal([]byte(body), &traces) == nil {
				if fullFrameTrace(traces) != nil {
					traceOK = true
				}
				frameIDs := make(map[string]bool)
				for _, tr := range traces {
					if strings.HasPrefix(tr.Name, "frame/") && tr.TraceID != "" {
						frameIDs[tr.TraceID] = true
					}
				}
				for _, tr := range traces {
					if tr.Name == "vehicle/recv/advisory" && tr.Parent == "broadcast" && frameIDs[tr.TraceID] {
						stitchOK = true
						break
					}
				}
			}
		}
		if len(missing) == 0 && traceOK && stitchOK {
			break
		}
	}

	// /traces honors bounded, validated query parameters: n caps the
	// dump, terminal filters it, and garbage is a 400 — not a panic,
	// not an unbounded dump.
	body, err := scrape(base, "/traces?n=3&terminal=completed")
	if err != nil {
		t.Fatalf("filtered /traces: %v", err)
	}
	var filtered []telemetry.TraceSnapshot
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatalf("filtered /traces not JSON: %v\n%s", err, body)
	}
	if len(filtered) > 3 {
		t.Fatalf("/traces?n=3 returned %d traces", len(filtered))
	}
	for _, tr := range filtered {
		if tr.Terminal != "completed" {
			t.Fatalf("/traces?terminal=completed returned terminal %q", tr.Terminal)
		}
	}
	for _, bad := range []string{"/traces?n=0", "/traces?n=zap", "/traces?n=999999999", "/traces?terminal=sp%20ace"} {
		resp, err := http.Get(base + bad)
		if err != nil {
			t.Fatalf("GET %s: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: want 400, got %d", bad, resp.StatusCode)
		}
	}

	// The JSON snapshot must agree that work completed.
	body, err = scrape(base, "/metrics.json")
	if err == nil {
		var snap map[string]any
		if jerr := json.Unmarshal([]byte(body), &snap); jerr != nil {
			t.Fatalf("/metrics.json not JSON: %v", jerr)
		}
		if v, ok := snap["serve_completed_total"].(float64); !ok || v <= 0 {
			t.Fatalf("snapshot shows no completed requests: %v", snap["serve_completed_total"])
		}
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "served 400 frames") {
		t.Fatalf("missing completion summary:\n%s", out.String())
	}
}
