// Command safecross-rsu runs a SafeCross roadside unit over a
// simulated camera feed: it trains a quick daytime model, adapts the
// weather models, then serves left-turn advisories over TCP while the
// simulated intersection cycles through weather scenes.
//
// Usage:
//
//	safecross-rsu -addr 127.0.0.1:7447 -frames 400 -demo
//
// With -demo a vehicle client connects in-process and prints the
// advisories it receives.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"safecross/internal/experiments"
	"safecross/internal/rsu"
	"safecross/internal/safecross"
	"safecross/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "safecross-rsu:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("safecross-rsu", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7447", "listen address")
		frames   = fs.Int("frames", 300, "camera frames to serve (0 = run until killed)")
		perScene = fs.Int("scene-frames", 120, "frames per weather scene in the feed")
		demo     = fs.Bool("demo", false, "attach an in-process vehicle client and print advisories")
		verbose  = fs.Bool("v", false, "log training progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Quick()
	if *verbose {
		cfg.Log = w
	}
	fmt.Fprintln(w, "training scene models (quick profile)...")
	tm, err := experiments.TrainSceneModels(cfg)
	if err != nil {
		return err
	}
	framework, err := safecross.NewDefault(safecross.Config{ClipLen: cfg.ClipLen}, tm.Models)
	if err != nil {
		return err
	}

	srv, err := rsu.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "RSU listening on %s\n", srv.Addr())

	var wg sync.WaitGroup
	if *demo {
		cli, err := rsu.Dial(srv.Addr(), "demo-vehicle")
		if err != nil {
			return err
		}
		defer cli.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for msg := range cli.Messages() {
				switch msg.Type {
				case rsu.TypeAdvisory:
					if msg.Ready {
						fmt.Fprintf(w, "vehicle: frame %4d scene=%-5s safe=%v\n", msg.Frame, msg.Scene, msg.Safe)
					}
				case rsu.TypeSwitch:
					fmt.Fprintf(w, "vehicle: model switched to %s in %dµs (%s)\n", msg.Scene, msg.SwitchMicros, msg.Method)
				}
			}
		}()
	}

	// Simulated camera: cycle day → rain → snow.
	scenes := sim.AllWeathers()
	frame := 0
	for sceneIdx := 0; *frames == 0 || frame < *frames; sceneIdx++ {
		weather := scenes[sceneIdx%len(scenes)]
		world := sim.NewWorld(sim.Config{
			Weather:       weather,
			TruckPresent:  true,
			TurnerEnabled: true,
			TurnerRespawn: true,
			Seed:          int64(1000 + sceneIdx),
		})
		for i := 0; i < *perScene && (*frames == 0 || frame < *frames); i++ {
			world.Step()
			frame++
			d, err := framework.ProcessFrame(world.Render())
			if err != nil {
				return err
			}
			if d.SceneChanged && d.Switch != nil {
				srv.Broadcast(rsu.SwitchMessage(d.Scene.String(), *d.Switch))
			}
			srv.Broadcast(rsu.AdvisoryMessage(frame, d))
		}
	}
	fmt.Fprintf(w, "served %d frames, final scene %v, %d model switches, %d SLO violations\n",
		frame, framework.Scene(), len(framework.Manager().History()), framework.Manager().SLOViolations())

	if *demo {
		// Give the demo client a moment to drain, then shut down.
		time.Sleep(100 * time.Millisecond)
		srv.Close()
		wg.Wait()
	}
	return nil
}
