// Command safecross-rsu runs a SafeCross roadside unit over simulated
// camera feeds: it trains a quick daytime model, adapts the weather
// models, then serves left-turn advisories over TCP while one or more
// simulated intersections cycle through weather scenes. All
// classification flows through the internal/serve plane — a dynamic
// batcher over a pool of simulated GPUs with per-scene warm routing —
// so several intersections share the same models and hardware.
//
// Usage:
//
//	safecross-rsu -addr 127.0.0.1:7447 -frames 400 -intersections 4 -gpus 2 -demo
//
// With -demo a vehicle client connects in-process and prints the
// advisories it receives.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"safecross/internal/dataset"
	"safecross/internal/experiments"
	"safecross/internal/rsu"
	"safecross/internal/safecross"
	"safecross/internal/serve"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
	"safecross/internal/weather"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "safecross-rsu:", err)
		os.Exit(1)
	}
}

// lockedWriter serializes output: with -demo the vehicle's receive
// goroutine prints advisories while the main goroutine prints the
// serving summary, and both land on the same stream.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func run(args []string, w io.Writer) error {
	w = &lockedWriter{w: w}
	fs := flag.NewFlagSet("safecross-rsu", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:7447", "listen address")
		frames        = fs.Int("frames", 300, "camera frames to serve per intersection")
		perScene      = fs.Int("scene-frames", 120, "frames per weather scene in each feed")
		intersections = fs.Int("intersections", 1, "simulated intersections sharing this RSU")
		gpus          = fs.Int("gpus", 2, "simulated GPUs in the serving plane")
		maxBatch      = fs.Int("max-batch", 8, "dynamic batcher's maximum clips per forward pass")
		workerMem     = fs.Int("worker-mem", 0, "per-GPU memory budget in MiB (0 = device default; small budgets force LRU model eviction)")
		demo          = fs.Bool("demo", false, "attach an in-process vehicle client and print advisories")
		verbose       = fs.Bool("v", false, "log training progress and runtime events")
		debugAddr     = fs.String("debug-addr", "", "optional debug HTTP listener (Prometheus /metrics, /metrics.json, /metrics.fed, /traces, expvar, pprof)")
		traceSample   = fs.Int("trace-sample", 8, "frame-trace sampling rate: one in N frames rides a full trace (queue → batch-wait → switch → compute → deliver → broadcast) into the /traces retention ring; the decision is derived from the minted trace id, so every process carrying the id agrees on it; 0 disables tracing")
		sloWindow     = fs.Duration("slo-window", 5*time.Minute, "SLO burn-rate short window (the long window is 12x); shrink it to make smoke runs exercise alerts")
		sloQueueObj   = fs.Duration("slo-queue-objective", 250*time.Millisecond, "serve queue-wait latency objective (p99 must stay under it)")
		sloVerdictObj = fs.Duration("slo-verdict-objective", time.Second, "end-to-end frame-to-verdict latency objective (p95 must stay under it)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *intersections < 1 {
		return fmt.Errorf("need at least one intersection")
	}
	if *traceSample < 0 {
		return fmt.Errorf("trace-sample must be ≥ 0, got %d", *traceSample)
	}

	// One registry and tracer for the whole process: the serving plane,
	// the per-intersection frameworks, and the RSU broadcast path all
	// record into them, and the debug listener exports them. The logger
	// is quiet by default; -v opens it up.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultTraceRetention)
	logLevel := telemetry.LevelWarn
	if *verbose {
		logLevel = telemetry.LevelDebug
	}
	logger := telemetry.NewLogger(w, logLevel)
	if *debugAddr != "" {
		dbg, err := telemetry.ListenDebug(*debugAddr, reg, tracer)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(w, "debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	// The SLO engine turns the histograms above into burn-rate gauges:
	// one objective on the serving plane's queue wait, one on the
	// end-to-end frame→verdict path. Both evaluate from this process's
	// registry; the gauges land on the same /metrics export.
	slos := telemetry.NewSLOEngine(telemetry.SLOEngineConfig{
		ShortWindow: *sloWindow,
		Metrics:     reg,
		Logger:      logger,
	})
	if err := slos.Add(telemetry.SLO{
		Name: "serve-queue-wait", Series: "serve_queue_wait_seconds",
		Objective: *sloQueueObj, Target: 0.99,
	}, reg); err != nil {
		return err
	}
	if err := slos.Add(telemetry.SLO{
		Name: "frame-verdict", Series: "safecross_frame_verdict_seconds",
		Objective: *sloVerdictObj, Target: 0.95,
	}, reg); err != nil {
		return err
	}
	slos.Start()
	defer slos.Close()

	cfg := experiments.Quick()
	if *verbose {
		cfg.Log = w
	}
	fmt.Fprintln(w, "training scene models (quick profile)...")
	tm, err := experiments.TrainSceneModels(cfg)
	if err != nil {
		return err
	}
	det, err := weather.FitFromSim(20, 12345)
	if err != nil {
		return err
	}

	// One serving plane for every intersection: per-worker model
	// replicas cloned from the trained weights, dynamic batching, and
	// warm per-scene routing across the simulated GPUs.
	plane, err := serve.New(serve.Config{
		Workers:      *gpus,
		MaxBatch:     *maxBatch,
		WorkerMemory: int64(*workerMem) << 20,
		Metrics:      reg,
	}, serve.Replicas(tm.Builder, tm.Models))
	if err != nil {
		return err
	}
	defer plane.Close()

	// Backpressure is fail-safe: a clip the plane sheds (queue full,
	// deadline blown, or context expired) is reported as danger, never
	// as a silent pass. Danger-streak clips ride the Critical class, so
	// under pressure the plane sheds advisory traffic first.
	var sheds atomic.Int64
	classify := func(ctx context.Context, scene sim.Weather, clip *tensor.Tensor, critical bool) (int, error) {
		req := serve.Request{Scene: scene, Clip: clip}
		if critical {
			req.Priority = serve.Critical
		}
		v, err := plane.Submit(ctx, req)
		switch {
		case err == nil:
			return v.Label, nil
		case errors.Is(err, serve.ErrQueueFull),
			errors.Is(err, serve.ErrDeadlineExceeded),
			errors.Is(err, context.DeadlineExceeded):
			sheds.Add(1)
			return dataset.ClassDanger, nil
		default:
			return 0, err
		}
	}

	frameworks := make([]*safecross.Framework, *intersections)
	for i := range frameworks {
		if frameworks[i], err = safecross.NewServed(safecross.Config{ClipLen: cfg.ClipLen, Metrics: reg}, classify, det); err != nil {
			return err
		}
	}

	srv, err := rsu.Listen(*addr, rsu.WithMetrics(reg), rsu.WithLogger(logger), rsu.WithTracer(tracer))
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "RSU listening on %s\n", srv.Addr())

	var wg sync.WaitGroup
	var demoCli *rsu.Client
	if *demo {
		// The demo vehicle shares the process tracer, so its side of
		// every sampled trace — the subscribe handshake and each
		// advisory it receives — lands in the same /traces ring as the
		// node's spans, under the same trace IDs.
		cli, err := rsu.DialRetry(rsu.RetryConfig{
			Seeds:       []string{srv.Addr()},
			Vehicle:     "demo-vehicle",
			Logger:      logger,
			Tracer:      tracer,
			TraceSample: 1,
		})
		if err != nil {
			return err
		}
		demoCli = cli
		defer cli.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for msg := range cli.Messages() {
				switch msg.Type {
				case rsu.TypeAdvisory:
					if msg.Ready {
						fmt.Fprintf(w, "vehicle: intersection %d frame %4d scene=%-5s safe=%v\n",
							msg.Intersection, msg.Frame, msg.Scene, msg.Safe)
					}
				case rsu.TypeStats:
					fmt.Fprintf(w, "vehicle: plane served=%d rejected=%d p99=%dµs\n",
						msg.Served, msg.Rejected, msg.P99Micros)
				}
			}
		}()
	}

	// Each intersection is an independent camera feed cycling through
	// the weather scenes at its own phase; all of them classify through
	// the shared serving plane concurrently.
	var (
		feeds    sync.WaitGroup
		served   atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	scenes := sim.AllWeathers()
	for idx, fw := range frameworks {
		feeds.Add(1)
		go func(idx int, fw *safecross.Framework) {
			defer feeds.Done()
			frame := 0
			for sceneIdx := idx; frame < *frames; sceneIdx++ {
				world := sim.NewWorld(sim.Config{
					Weather:       scenes[sceneIdx%len(scenes)],
					TruckPresent:  true,
					TurnerEnabled: true,
					TurnerRespawn: true,
					Seed:          int64(1000 + 100*idx + sceneIdx),
				})
				for i := 0; i < *perScene && frame < *frames; i++ {
					world.Step()
					frame++
					// Sampled frames carry a trace through the whole
					// pipeline: the serving plane records its stage spans
					// into it, this loop adds the broadcast span, and
					// Finish retires it into the dump ring. The sampling
					// decision is derived from the minted trace id — not a
					// frame counter — so a vehicle holding the id reaches
					// the same verdict and can join the trace.
					ctx := context.Background()
					var tr *telemetry.Trace
					if id := telemetry.NewTraceID(); id.Sampled(*traceSample) {
						tr = tracer.StartLinked(fmt.Sprintf("frame/intersection-%d/%d", idx, frame), id, "")
						ctx = telemetry.WithTrace(ctx, tr)
					}
					d, err := fw.ProcessFrameContext(ctx, world.Render())
					if err != nil {
						tr.Finish()
						errOnce.Do(func() { firstErr = fmt.Errorf("intersection %d: %w", idx, err) })
						return
					}
					served.Add(1)
					bStart := time.Now()
					// A traced frame's advisory carries the trace id on the
					// wire, hung under the broadcast span — subscribed
					// vehicles join the trace from it.
					srv.Broadcast(rsu.IntersectionAdvisory(idx, frame, d).
						WithTraceContext(tr.TraceID(), "broadcast"))
					tr.Span("broadcast", bStart, time.Now())
					tr.Finish()
					logger.Debugf("intersection %d frame %d scene=%v ready=%v safe=%v",
						idx, frame, d.Scene, d.Ready, d.Safe)
				}
			}
		}(idx, fw)
	}
	feeds.Wait()
	if firstErr != nil {
		return firstErr
	}
	srv.Broadcast(rsu.StatsMessage(plane.Stats()))

	st := plane.Stats()
	fmt.Fprintf(w, "served %d frames across %d intersections, %d fail-safe sheds\n",
		served.Load(), *intersections, sheds.Load())
	fmt.Fprintf(w, "serving plane: %d clips in %d batches (mean %.2f, warm %d, switches %d), p50 %v p99 %v\n",
		st.Completed, st.Batches, st.MeanBatch(), st.WarmBatches, st.Switches, st.P50, st.P99)
	fmt.Fprintf(w, "residency: %d evictions, %d reloads; admission: %d shed, %d cancelled, %d aged; queue p95 critical %v routine %v\n",
		st.Evictions, st.Reloads, st.Shed, st.Cancelled, st.Aged, st.CriticalQueueP95, st.RoutineQueueP95)

	if *demo {
		// Give the demo client a moment to drain, then shut down. The
		// retry client must be closed explicitly — its message channel
		// stays open across reconnect attempts otherwise.
		time.Sleep(100 * time.Millisecond)
		srv.Close()
		demoCli.Close()
		wg.Wait()
	}
	return nil
}
