package main

// The -serve study: how does the internal/serve plane — dynamic
// batching plus warm per-scene routing over a pool of simulated GPUs —
// scale with the number of intersections sharing one RSU, against the
// naive baseline of one clip at a time on a single GPU? Throughput is
// anchored on virtual GPU time (the discrete-event device timelines),
// so the comparison is deterministic and host-independent; wall-clock
// is reported alongside for orientation.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"safecross/internal/serve"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
	"safecross/internal/video"
)

// serveQueueObjective is the queue-wait SLO judged on every serving
// row: 99% of clips must wait under this threshold. The reported burn
// rate is the run's error-budget consumption (0 = no clip over the
// objective, ≥1 = unsustainable).
const serveQueueObjective = 250 * time.Millisecond

// serveClipsPerIntersection is the offered load per intersection in
// one serving-study run.
const serveClipsPerIntersection = 12

func printServeBench(w io.Writer) error {
	// Untrained weights at reduced geometry: this is a scheduling and
	// throughput study, so only the cost of the forward pass matters,
	// not the verdicts.
	builder := video.SlowFastBuilder(video.SlowFastConfig{
		T: 16, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: 7,
	})
	models := make(map[sim.Weather]video.Classifier)
	for _, scene := range sim.AllWeathers() {
		m, err := builder()
		if err != nil {
			return err
		}
		models[scene] = m
	}
	factory := serve.Replicas(builder, models)

	fmt.Fprintln(w, "== Serving study: dynamic batching + warm routing vs per-clip single GPU ==")
	fmt.Fprintf(w, "%-14s %-10s %-12s %-12s %-10s %-10s %-12s %s\n",
		"config", "clips", "virt-clip/s", "virt-span", "p99", "batches", "warm/switch", "slo-burn")

	var speedup4 float64
	for _, intersections := range []int{1, 2, 4} {
		base, baseBurn, err := runServeLoad(serve.Config{
			Workers: 1, MaxBatch: 1, QueueDepth: 256, SLO: time.Minute,
		}, factory, intersections)
		if err != nil {
			return err
		}
		batched, batchedBurn, err := runServeLoad(serve.Config{
			Workers: 4, MaxBatch: 8, QueueDepth: 256, SLO: time.Minute,
		}, factory, intersections)
		if err != nil {
			return err
		}
		printServeRow(w, fmt.Sprintf("%dx baseline", intersections), base, baseBurn)
		printServeRow(w, fmt.Sprintf("%dx batched", intersections), batched, batchedBurn)
		if intersections == 4 {
			speedup4 = batched.VirtualThroughput() / base.VirtualThroughput()
		}
	}
	fmt.Fprintf(w, "batched speedup at 4 intersections: x%.2f (virtual throughput)\n\n", speedup4)
	if speedup4 <= 1 {
		return fmt.Errorf("serving study: batched plane did not beat the baseline (x%.2f)", speedup4)
	}

	// Memory-pressure study: the same 4-intersection load on budgets
	// that hold all three scene models vs a single one. The tight
	// budget must still complete every clip — paying for it in LRU
	// evictions and PipeSwitch reloads on the virtual timeline.
	fmt.Fprintln(w, "== Memory-pressure study: per-worker budget vs model residency ==")
	fmt.Fprintf(w, "%-14s %-10s %-12s %-12s %-10s %s\n",
		"budget", "clips", "virt-clip/s", "virt-span", "switches", "evict/reload")
	for _, row := range []struct {
		name   string
		budget int64
	}{
		{"all-resident", 0},           // device default: every model stays
		{"one-model", (75 + 1) << 20}, // fits a single SlowFast manifest
	} {
		st, _, err := runServeLoad(serve.Config{
			Workers: 2, MaxBatch: 8, QueueDepth: 256, SLO: time.Minute,
			WorkerMemory: row.budget,
		}, factory, 4)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %-10d %-12.1f %-12v %-10d %d/%d\n",
			row.name, st.Completed, st.VirtualThroughput(),
			st.VirtualMakespan.Round(10*time.Microsecond),
			st.Switches, st.Evictions, st.Reloads)
		if row.budget > 0 && (st.Evictions == 0 || st.Reloads == 0) {
			return fmt.Errorf("memory-pressure study: tight budget produced no churn (evictions=%d reloads=%d)",
				st.Evictions, st.Reloads)
		}
	}
	fmt.Fprintln(w)
	return nil
}

func printServeRow(w io.Writer, name string, st serve.Stats, burn float64) {
	fmt.Fprintf(w, "%-14s %-10d %-12.1f %-12v %-10v %-10d %-12s %.2f\n",
		name, st.Completed, st.VirtualThroughput(),
		st.VirtualMakespan.Round(10*time.Microsecond),
		st.P99.Round(10*time.Microsecond),
		st.Batches, fmt.Sprintf("%d/%d", st.WarmBatches, st.Switches), burn)
}

// runServeLoad drives one serving configuration with concurrent
// per-intersection producers, each cycling through the weather scenes
// at its own phase (so a single shared GPU must thrash between
// models), and returns the plane's final stats plus the queue-wait SLO
// burn rate over the whole run.
func runServeLoad(cfg serve.Config, factory serve.ModelFactory, intersections int) (serve.Stats, float64, error) {
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	s, err := serve.New(cfg, factory)
	if err != nil {
		return serve.Stats{}, 0, err
	}
	defer s.Close()

	scenes := sim.AllWeathers()
	errs := make(chan error, intersections)
	var wg sync.WaitGroup
	for i := 0; i < intersections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for j := 0; j < serveClipsPerIntersection; j++ {
				clip := tensor.RandnTensor(rng, 1, 1, 16, 10, 16)
				if _, err := s.Submit(context.Background(), serve.Request{Scene: scenes[(i+j)%len(scenes)], Clip: clip}); err != nil {
					errs <- fmt.Errorf("intersection %d clip %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return serve.Stats{}, 0, err
	}
	st := s.Stats()
	if want := intersections * serveClipsPerIntersection; st.Completed != want {
		return serve.Stats{}, 0, fmt.Errorf("serving study: %d of %d clips completed", st.Completed, want)
	}

	// One burn-rate sample over the full run: every queue wait the plane
	// recorded, judged against the p99 objective.
	burn := 0.0
	slos := telemetry.NewSLOEngine(telemetry.SLOEngineConfig{Metrics: reg})
	if err := slos.Add(telemetry.SLO{
		Name: "queue-wait", Series: "serve_queue_wait_seconds",
		Objective: serveQueueObjective, Target: 0.99,
	}, reg); err == nil {
		slos.Tick(time.Now())
		if short, _, ok := slos.BurnRates("queue-wait"); ok {
			burn = short
		}
	}
	return st, burn, nil
}
