package main

import (
	"strings"
	"testing"
)

func TestRunRequiresSelection(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("expected selection error with no flags")
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "6", "-profile", "nope"}, &sb); err == nil {
		t.Fatal("expected unknown-profile error")
	}
}

func TestRunTableVI(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "6"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table VI", "slowfast-safecross", "resnet152", "inceptionv3", "grouping ablation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableI(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "total segments") {
		t.Fatalf("output missing totals:\n%s", sb.String())
	}
}

func TestRunFig3(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 3(c)") {
		t.Fatal("output missing VP pipeline stages")
	}
}

func TestRunServeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("serving study skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-serve"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Serving study", "4x baseline", "4x batched", "batched speedup at 4 intersections"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-table", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table III", "day", "rain", "snow"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}
