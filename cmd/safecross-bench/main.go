// Command safecross-bench regenerates the paper's tables and figures
// on the synthetic substrate.
//
// Usage:
//
//	safecross-bench -all                 # every table and figure
//	safecross-bench -table 3 -profile standard
//	safecross-bench -fig 8
//	safecross-bench -serve               # multi-intersection serving study
//
// Profiles scale the learning experiments: quick (≈2 % of Table I,
// seconds), standard (≈10 %, minutes), full (paper scale).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"safecross/internal/experiments"
	"safecross/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "safecross-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("safecross-bench", flag.ContinueOnError)
	var (
		table     = fs.Int("table", 0, "table number to regenerate (1–6, 7 = Sec. V-D throughput)")
		fig       = fs.Int("fig", 0, "figure number to regenerate (3 or 8)")
		all       = fs.Bool("all", false, "regenerate everything")
		ablations = fs.Bool("ablations", false, "run the design-choice ablation studies")
		serveCmp  = fs.Bool("serve", false, "run the multi-intersection serving study (batched multi-GPU vs single GPU)")
		profile   = fs.String("profile", "quick", "experiment profile: quick | standard | full")
		reps      = fs.Int("reps", 3, "timing repetitions for Table II")
		verbose   = fs.Bool("v", false, "log training progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := profileConfig(*profile)
	if err != nil {
		return err
	}
	if *verbose {
		cfg.Log = w
	}
	if !*all && *table == 0 && *fig == 0 && !*ablations && !*serveCmp {
		fs.Usage()
		return fmt.Errorf("nothing selected; use -all, -table N, -fig N, -ablations, or -serve")
	}

	wantTable := func(n int) bool { return *all || *table == n }
	wantFig := func(n int) bool { return *all || *fig == n }

	// Tables III, V, and the throughput study share one training
	// pipeline; build it lazily.
	var tm *experiments.TrainedModels
	pipeline := func() (*experiments.TrainedModels, error) {
		if tm != nil {
			return tm, nil
		}
		fmt.Fprintf(w, "== training pipeline (profile %s: scale %.2f, clips of %d frames) ==\n",
			*profile, cfg.Scale, cfg.ClipLen)
		start := time.Now()
		var err error
		tm, err = experiments.TrainSceneModels(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "pipeline trained in %v\n\n", time.Since(start).Round(time.Millisecond))
		return tm, nil
	}

	if wantTable(1) {
		if err := printTableI(w, cfg); err != nil {
			return err
		}
	}
	if wantTable(2) {
		if err := printTableII(w, *reps, cfg.Seed); err != nil {
			return err
		}
	}
	if wantTable(3) {
		p, err := pipeline()
		if err != nil {
			return err
		}
		if err := printTableIII(w, p); err != nil {
			return err
		}
	}
	if wantTable(4) {
		if err := printTableIV(w, cfg); err != nil {
			return err
		}
	}
	if wantTable(5) {
		p, err := pipeline()
		if err != nil {
			return err
		}
		if err := printTableV(w, p); err != nil {
			return err
		}
	}
	if wantTable(6) {
		if err := printTableVI(w); err != nil {
			return err
		}
	}
	if wantTable(7) {
		p, err := pipeline()
		if err != nil {
			return err
		}
		if err := printThroughput(w, p); err != nil {
			return err
		}
	}
	if wantFig(3) {
		fmt.Fprintln(w, "== Figure 3: VP pipeline stages ==")
		if err := experiments.Fig3(w, 71); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if wantFig(8) {
		fmt.Fprintln(w, "== Figure 8: detection comparison ==")
		if err := experiments.Fig8(w, cfg.Seed+6); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if *all || *ablations {
		if err := printAblations(w, cfg); err != nil {
			return err
		}
	}
	if *all || *serveCmp {
		if err := printServeBench(w); err != nil {
			return err
		}
	}
	return nil
}

func printAblations(w io.Writer, cfg experiments.Config) error {
	fmt.Fprintln(w, "== Ablations: design choices ==")

	lat, err := experiments.AblateSlowFastLateral(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "-- SlowFast lateral connections --")
	fmt.Fprintf(w, "%-22s %-10s %-14s %s\n", "variant", "top1", "mean-class", "params")
	for _, r := range lat {
		fmt.Fprintf(w, "%-22s %-10.4f %-14.4f %d\n", r.Variant, r.Top1, r.MeanClass, r.Params)
	}

	morph, err := experiments.AblateVPMorphology()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n-- VP morphological opening (noisy camera) --")
	fmt.Fprintf(w, "%-18s %-12s %s\n", "variant", "detections", "finds car")
	for _, r := range morph {
		fmt.Fprintf(w, "%-18s %-12d %v\n", r.Variant, r.Detections, r.FoundCar)
	}

	bgRows, err := experiments.AblateBackgroundModel()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n-- dynamic vs static background under illumination drift --")
	fmt.Fprintf(w, "%-22s %s\n", "variant", "false-foreground frac")
	for _, r := range bgRows {
		fmt.Fprintf(w, "%-22s %.5f\n", r.Variant, r.FalseForeground)
	}

	inner, err := experiments.AblateMAMLInnerSteps(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n-- few-shot inner-loop steps (snow adaptation) --")
	fmt.Fprintf(w, "%-8s %s\n", "steps", "top1")
	for _, r := range inner {
		fmt.Fprintf(w, "%-8d %.4f\n", r.Steps, r.Top1)
	}
	fmt.Fprintln(w)
	return nil
}

func profileConfig(name string) (experiments.Config, error) {
	switch name {
	case "quick":
		return experiments.Quick(), nil
	case "standard":
		return experiments.Standard(), nil
	case "full":
		return experiments.Full(), nil
	default:
		return experiments.Config{}, fmt.Errorf("unknown profile %q", name)
	}
}

func printTableI(w io.Writer, cfg experiments.Config) error {
	rows, err := experiments.TableI(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table I: dataset overview (paper: 1966 day / 34 rain / 855 snow, 32-frame segments) ==")
	fmt.Fprintf(w, "%-8s %-10s %-8s %-8s %-8s %-8s\n", "scene", "segments", "frames", "danger", "safe", "blind")
	total := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10d %-8d %-8d %-8d %-8d\n",
			r.Scene, r.Segments, r.Frames, r.Danger, r.Safe, r.Blind)
		total += r.Segments
	}
	fmt.Fprintf(w, "total segments: %d (scale %.2f of the paper's 2855)\n\n", total, cfg.Scale)
	return nil
}

func printTableII(w io.Writer, reps int, seed int64) error {
	fmt.Fprintln(w, "== Table II: detection-method execution time (paper: BGS 0.74ms yes | sparse 6.43ms no | dense 224ms yes | YOLOv3 256ms no) ==")
	rows, err := experiments.TableII(reps, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-14s %-9s %s\n", "method", "time/frame", "detected", "detections")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-14v %-9v %d\n", r.Method, r.MeanTime.Round(10*time.Microsecond), r.Detected, r.Detections)
	}
	fmt.Fprintln(w)
	return nil
}

func printTableIII(w io.Writer, tm *experiments.TrainedModels) error {
	rows, err := experiments.TableIII(tm)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table III: accuracy per scene (paper: day .963/.967 | snow .942/.951 | rain .852/.864) ==")
	printAccuracy(w, rows)
	return nil
}

func printTableIV(w io.Writer, cfg experiments.Config) error {
	rows, err := experiments.TableIV(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table IV: architecture comparison on daytime data (paper: slowfast .963/.967 | c3d .964/.934 | tsn .886/.754) ==")
	printAccuracy(w, rows)
	return nil
}

func printTableV(w io.Writer, tm *experiments.TrainedModels) error {
	rows, err := experiments.TableV(tm)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table V: few-shot ablation (paper: snow .942/.951 vs .889/.865 | rain .852/.864 vs .546/.583) ==")
	printAccuracy(w, rows)
	return nil
}

func printAccuracy(w io.Writer, rows []experiments.AccuracyRow) {
	fmt.Fprintf(w, "%-36s %-10s %-14s %s\n", "name", "top1", "mean-class", "test clips")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %-10.4f %-14.4f %d\n", r.Name, r.Top1, r.MeanClass, r.TestClips)
	}
	fmt.Fprintln(w)
}

func printTableVI(w io.Writer) error {
	rows, err := experiments.TableVI()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table VI: model switching (paper: end-start 5615/4081/3612 ms; PipeSwitch 6.06/5.30/4.32 ms) ==")
	fmt.Fprintf(w, "%-20s %-16s %-16s %s\n", "model", "stop-and-start", "pipeswitch", "groups")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-16v %-16v %d\n",
			r.Model,
			r.StopAndStart.Total.Round(time.Millisecond),
			r.PipeSwitch.Total.Round(10*time.Microsecond),
			r.PipeSwitch.Groups)
	}
	fmt.Fprintln(w)

	abl, err := experiments.GroupingAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "-- grouping ablation (Sec. III-E-3) --")
	fmt.Fprintf(w, "%-20s %-12s %-14s %s\n", "model", "strategy", "latency", "groups")
	for _, r := range abl {
		fmt.Fprintf(w, "%-20s %-12s %-14v %d\n",
			r.Model, r.Strategy, r.Report.Total.Round(10*time.Microsecond), r.Report.Groups)
	}
	fmt.Fprintln(w)
	return nil
}

func printThroughput(w io.Writer, tm *experiments.TrainedModels) error {
	rep, err := experiments.Throughput(tm)
	if err != nil {
		return err
	}
	c := rep.Classification
	fmt.Fprintln(w, "== Sec. V-D: blind-zone throughput (paper: 63 clips, accuracy 1.0, +32/63 ≈ +50%) ==")
	fmt.Fprintf(w, "clips: %d (%d danger / %d safe)\n", c.Total, c.DangerClips, c.SafeClips)
	fmt.Fprintf(w, "accuracy: %.4f  unsafe releases: %d\n", c.Accuracy, c.UnsafeReleases)
	fmt.Fprintf(w, "throughput gain: +%.1f%% of blind-zone scenes released for an immediate turn\n", 100*c.ThroughputGain)
	fmt.Fprintln(w, "-- closed-loop simulation (turns completed over 6000 frames) --")
	for _, weather := range sim.AllWeathers() {
		l := rep.Loop[weather]
		fmt.Fprintf(w, "%-6s without SafeCross: %3d   with: %3d   improvement: +%.0f%%\n",
			weather, l.TurnsWithout, l.TurnsWith, 100*l.Improvement)
	}
	fmt.Fprintln(w)
	return nil
}
