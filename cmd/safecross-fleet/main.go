// Command safecross-fleet runs a multi-node SafeCross deployment on
// one machine: a fleet coordinator, N RSU nodes (each an rsu.Server
// over its own serving plane), and one retry vehicle client per
// intersection. Intersections are sharded over the nodes with
// rendezvous hashing; heartbeat failure detection moves shards when a
// node dies; vehicle clients follow redirects to wherever their
// intersection is served.
//
// Usage:
//
//	safecross-fleet -nodes 3 -intersections 8 -run 3s -kill-after 1s
//	safecross-fleet -nodes 3 -coordinators 3 -kill-coordinator-after 5s -run 10s
//
// With -kill-after the node owning intersection 1 is crashed
// mid-run (agent, RSU listener, and serving plane all torn down, no
// drain) — the fleet must fail over and every intersection must keep
// receiving advisories. With -coordinators N the control plane itself
// is replicated (one primary, N-1 standbys fed by its replication
// stream), and -kill-coordinator-after crashes the primary mid-run:
// the lowest-ranked standby must promote itself and the nodes must
// re-heartbeat there without dropping a single running intersection.
// The summary reports per-intersection delivery before and after the
// kills.
//
// Observability is fleet-shaped: every node (and the vehicle plane)
// runs its own registry, tracer, and debug listener, and the
// coordinator's -debug-addr listener federates them — per-node
// fleet::-prefixed series with exact histogram merges on /metrics,
// cross-node stitched traces on /traces/fleet, and SLO burn-rate
// gauges evaluated over both local and federated histograms.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"safecross/internal/dataset"
	"safecross/internal/experiments"
	"safecross/internal/fleet"
	"safecross/internal/rsu"
	"safecross/internal/safecross"
	"safecross/internal/serve"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
	"safecross/internal/weather"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "safecross-fleet:", err)
		os.Exit(1)
	}
}

// node is one fleet member: its own serving plane, RSU listener,
// fleet agent, and telemetry plane (registry + tracer + debug
// listener — the federation scrape target). Crashing a node means
// tearing all of them down at once.
type node struct {
	id     string
	plane  *serve.Server
	srv    *rsu.Server
	agent  *fleet.Agent
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	dbg    *telemetry.DebugServer
	sheds  atomic.Int64
}

func (n *node) kill() {
	n.agent.Close()
	n.srv.Close()
	n.plane.Close()
	if n.dbg != nil {
		n.dbg.Close()
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("safecross-fleet", flag.ContinueOnError)
	var (
		nodes         = fs.Int("nodes", 3, "RSU nodes in the fleet")
		intersections = fs.Int("intersections", 8, "intersections sharded across the fleet (ids 1..N)")
		runFor        = fs.Duration("run", 3*time.Second, "serving time before shutdown")
		killAfter     = fs.Duration("kill-after", 0, "crash the node owning intersection 1 this long into the run (0 = no fault injection)")
		coordinators  = fs.Int("coordinators", 1, "coordinator replicas (1 primary + N-1 standbys)")
		killCoord     = fs.Duration("kill-coordinator-after", 0, "crash the primary coordinator this long into the run (0 = no fault injection; needs -coordinators ≥ 2)")
		restartWorld  = fs.Duration("restart-world-after", 0, "crash the ENTIRE control plane (every coordinator at once) this long into the run and restart it from the write-ahead logs (0 = no fault injection; forces a temp -data-dir when none is set)")
		dataDir       = fs.String("data-dir", "", "coordinator write-ahead-log directory: every committed control-plane state change is persisted here and replayed on restart (empty = memory-only)")
		heartbeat     = fs.Duration("heartbeat", 250*time.Millisecond, "fleet heartbeat interval (suspect at 3×, dead at 6×); keep dead-time well above scheduling jitter on loaded hosts")
		frameEvery    = fs.Duration("frame-every", 25*time.Millisecond, "camera frame cadence per intersection")
		perScene      = fs.Int("scene-frames", 60, "frames per weather scene in each feed")
		gpus          = fs.Int("gpus", 1, "simulated GPUs per node's serving plane")
		maxBatch      = fs.Int("max-batch", 8, "dynamic batcher's maximum clips per forward pass")
		traceSample   = fs.Int("trace-sample", 8, "frame-trace sampling rate (one in N frames, decided from the minted trace id so vehicles join the same traces; 0 disables)")
		verbose       = fs.Bool("v", false, "log training progress, fleet membership, and runtime events")
		debugAddr     = fs.String("debug-addr", "", "coordinator debug HTTP listener: local /metrics plus the federated fleet:: view, /traces/fleet stitched across nodes")
		scrapeEvery   = fs.Duration("scrape-every", 500*time.Millisecond, "federation scrape interval (how often the coordinator pulls each node's /metrics.fed)")
		sloWindow     = fs.Duration("slo-window", 5*time.Minute, "SLO burn-rate short window (long window is 12x); shrink it so smoke runs see alerts clear")
		sloReassign   = fs.Duration("slo-reassign-objective", 500*time.Millisecond, "fleet reassign-latency objective; tighten it to force the alert path in smoke runs")
		sloQueueObj   = fs.Duration("slo-queue-objective", 250*time.Millisecond, "fleet-wide serve queue-wait objective, judged on the federated histogram")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 1 {
		return fmt.Errorf("need at least one node")
	}
	if *intersections < 1 {
		return fmt.Errorf("need at least one intersection")
	}
	if *traceSample < 0 {
		return fmt.Errorf("trace-sample must be ≥ 0, got %d", *traceSample)
	}
	if *killAfter > 0 && *nodes < 2 {
		return fmt.Errorf("-kill-after needs at least two nodes to fail over between")
	}
	if *killAfter >= *runFor {
		*killAfter = 0
	}
	if *coordinators < 1 {
		return fmt.Errorf("need at least one coordinator")
	}
	if *killCoord > 0 && *coordinators < 2 {
		return fmt.Errorf("-kill-coordinator-after needs at least two coordinators to promote between")
	}
	if *killCoord >= *runFor {
		*killCoord = 0
	}
	if *restartWorld >= *runFor {
		*restartWorld = 0
	}
	if *restartWorld > 0 && *dataDir == "" {
		tmp, err := os.MkdirTemp("", "safecross-wal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		*dataDir = tmp
	}

	// The control plane's own telemetry: shared by every coordinator
	// replica (a promoted standby takes the gauges over in place), and
	// the registry the federated fleet view and SLO gauges export
	// through. Node and vehicle series live on their own per-process
	// registries below and reach this listener only via federation —
	// the same shape a real multi-host deployment has.
	coordReg := telemetry.NewRegistry()
	coordTracer := telemetry.NewTracer(telemetry.DefaultTraceRetention)
	logLevel := telemetry.LevelWarn
	if *verbose {
		logLevel = telemetry.LevelDebug
	}
	logger := telemetry.NewLogger(w, logLevel)

	cfg := experiments.Quick()
	if *verbose {
		cfg.Log = w
	}

	keys := make([]int, *intersections)
	for i := range keys {
		keys[i] = i + 1 // 1-based: intersection 0 means "all" on the wire
	}
	// Shared coordinator options; with -data-dir each coordinator keeps
	// a write-ahead log so the whole control plane can be killed and
	// restarted mid-run.
	sharedCoordOpts := func() []fleet.CoordinatorOption {
		opts := []fleet.CoordinatorOption{
			fleet.WithHeartbeat(*heartbeat, 0, 0),
			fleet.WithMetrics(coordReg),
			fleet.WithLogger(logger),
		}
		if *dataDir != "" {
			opts = append(opts, fleet.WithDataDir(*dataDir))
		}
		return opts
	}
	// Standbys first: they listen passively, so the primary can be born
	// knowing every replica address and start streaming immediately.
	// The set lives behind a holder because restart-the-world swaps
	// every instance mid-run while the federator and summary read it.
	cs := &coordSet{}
	defer cs.closeAll()
	standbyAddrs := make([]string, 0, *coordinators-1)
	for i := 1; i < *coordinators; i++ {
		sb, err := fleet.NewCoordinator("127.0.0.1:0",
			append(sharedCoordOpts(), fleet.AsStandby())...)
		if err != nil {
			return err
		}
		cs.append(sb)
		standbyAddrs = append(standbyAddrs, sb.Addr())
	}
	coord, err := fleet.NewCoordinator("127.0.0.1:0",
		append(sharedCoordOpts(),
			fleet.WithIntersections(keys...),
			fleet.WithStandbys(standbyAddrs...))...)
	if err != nil {
		return err
	}
	cs.prepend(coord)
	coordSeeds := append([]string{coord.Addr()}, standbyAddrs...)

	// The vehicle plane: one registry/tracer/listener shared by every
	// vehicle client, federated under the "vehicles" label so the
	// vehicle end of each distributed trace is scrapeable like a node.
	vehReg := telemetry.NewRegistry()
	vehTracer := telemetry.NewTracer(telemetry.DefaultTraceRetention)
	vehDbg, err := telemetry.ListenDebug("127.0.0.1:0", vehReg, vehTracer)
	if err != nil {
		return err
	}
	defer vehDbg.Close()

	var fed *telemetry.Federator
	if *debugAddr != "" {
		// The federation scrape set: whichever coordinator currently
		// leads knows the live nodes' debug listeners (heartbeats carry
		// them, replication preserves them across promotions), plus the
		// static vehicle plane.
		fed, err = telemetry.NewFederator(telemetry.FederatorConfig{
			Targets: telemetry.MergeTargets(
				func() map[string]string {
					if lead := cs.leader(); lead != nil {
						return lead.DebugTargets()
					}
					return nil
				},
				telemetry.StaticTargets(map[string]string{"vehicles": "http://" + vehDbg.Addr()}),
			),
			Interval: *scrapeEvery,
			Metrics:  coordReg,
			Logger:   logger,
		})
		if err != nil {
			return err
		}
		defer fed.Close()
		dbg, err := telemetry.ListenDebug(*debugAddr, coordReg, coordTracer, telemetry.WithFederator(fed))
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(w, "debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	// The SLO engine runs beside the primary's registry: the reassign
	// objective is judged on the coordinator's own failover histogram,
	// and the queue-wait objective on the federated merge of every
	// node's serving plane — a fleet-wide tail, not one process's.
	slos := telemetry.NewSLOEngine(telemetry.SLOEngineConfig{
		ShortWindow: *sloWindow,
		Metrics:     coordReg,
		Logger:      logger,
	})
	if err := slos.Add(telemetry.SLO{
		Name: "fleet-reassign", Series: "fleet_reassign_seconds",
		Objective: *sloReassign, Target: 0.9,
	}, coordReg); err != nil {
		return err
	}
	if fed != nil {
		if err := slos.Add(telemetry.SLO{
			Name: "fleet-queue-wait", Series: "serve_queue_wait_seconds",
			Objective: *sloQueueObj, Target: 0.99,
		}, fed); err != nil {
			return err
		}
	}
	slos.Start()
	defer slos.Close()

	fmt.Fprintln(w, "training scene models (quick profile)...")
	tm, err := experiments.TrainSceneModels(cfg)
	if err != nil {
		return err
	}
	det, err := weather.FitFromSim(20, 12345)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleet coordinator on %s", coord.Addr())
	if len(standbyAddrs) > 0 {
		fmt.Fprintf(w, " (standbys %v)", standbyAddrs)
	}
	fmt.Fprintln(w)

	scenes := sim.AllWeathers()
	var frames atomic.Int64
	members := make([]*node, *nodes)
	byID := make(map[string]*node, *nodes)
	for i := range members {
		n := &node{
			id:     fmt.Sprintf("node-%d", i),
			reg:    telemetry.NewRegistry(),
			tracer: telemetry.NewTracer(telemetry.DefaultTraceRetention),
		}
		// Each node's telemetry plane is its own process boundary: a
		// private registry and tracer exported on a private debug
		// listener the coordinator federates.
		n.dbg, err = telemetry.ListenDebug("127.0.0.1:0", n.reg, n.tracer)
		if err != nil {
			return err
		}
		n.plane, err = serve.New(serve.Config{
			Workers:  *gpus,
			MaxBatch: *maxBatch,
			Metrics:  n.reg,
		}, serve.Replicas(tm.Builder, tm.Models))
		if err != nil {
			return err
		}
		n.srv, err = rsu.Listen("127.0.0.1:0",
			rsu.WithMetrics(n.reg), rsu.WithLogger(logger), rsu.WithTracer(n.tracer))
		if err != nil {
			return err
		}
		// Backpressure is fail-safe, as in the single-node RSU: shed
		// clips report danger, never a silent pass.
		classify := func(ctx context.Context, scene sim.Weather, clip *tensor.Tensor, critical bool) (int, error) {
			req := serve.Request{Scene: scene, Clip: clip}
			if critical {
				req.Priority = serve.Critical
			}
			v, err := n.plane.Submit(ctx, req)
			switch {
			case err == nil:
				return v.Label, nil
			case errors.Is(err, serve.ErrQueueFull),
				errors.Is(err, serve.ErrDeadlineExceeded),
				errors.Is(err, context.DeadlineExceeded):
				n.sheds.Add(1)
				return dataset.ClassDanger, nil
			default:
				return 0, err
			}
		}
		runner := func(ctx context.Context, intersection int) {
			fw, err := safecross.NewServed(safecross.Config{ClipLen: cfg.ClipLen, Metrics: n.reg}, classify, det)
			if err != nil {
				logger.Warnf("%s: framework for intersection %d: %v", n.id, intersection, err)
				return
			}
			serveIntersection(ctx, n, fw, intersection, scenes, *perScene, *frameEvery, *traceSample, logger, &frames)
		}
		n.agent, err = fleet.NewAgent(n.id, n.srv,
			fleet.WithCoordinators(coordSeeds...),
			fleet.WithHeartbeat(*heartbeat, 0, 0),
			fleet.WithRunner(runner),
			fleet.WithDebugAddr(n.dbg.Addr()),
			fleet.WithMetrics(n.reg),
			fleet.WithLogger(logger))
		if err != nil {
			return err
		}
		members[i] = n
		byID[n.id] = n
		fmt.Fprintf(w, "node %s serving on %s (debug %s)\n", n.id, n.srv.Addr(), n.dbg.Addr())
	}
	// The injected crash closes its victim explicitly; every other
	// member — including any the coordinator wrongly suspects — is
	// closed here (all closers are idempotent).
	var victim *node
	defer func() {
		for _, n := range members {
			if n == victim {
				continue
			}
			n.kill()
		}
	}()

	// Wait for the first assignment wave: every intersection owned by
	// some node before vehicles subscribe.
	if err := waitCoverage(coord, keys, 10*time.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "all %d intersections assigned across %d nodes\n", len(keys), *nodes)

	// One retry vehicle per intersection, seeded with every node — any
	// member can redirect it to the owner, and reconnect-with-backoff
	// rides out failovers. Vehicles share the vehicle-plane tracer, so
	// their ends of sampled traces land where the federator scrapes.
	seeds := make([]string, len(members))
	for i, n := range members {
		seeds[i] = n.srv.Addr()
	}
	var killed atomic.Bool
	total := make([]atomic.Int64, len(keys))
	afterKill := make([]atomic.Int64, len(keys))
	var watchers sync.WaitGroup
	clients := make([]*rsu.Client, len(keys))
	for i, k := range keys {
		cli, err := rsu.DialRetry(rsu.RetryConfig{
			Seeds:        seeds,
			Vehicle:      fmt.Sprintf("veh-%d", k),
			Intersection: k,
			BackoffBase:  *heartbeat / 4,
			Logger:       logger,
			Tracer:       vehTracer,
			TraceSample:  *traceSample,
		})
		if err != nil {
			return fmt.Errorf("vehicle for intersection %d: %w", k, err)
		}
		clients[i] = cli
		watchers.Add(1)
		go func(i int, cli *rsu.Client) {
			defer watchers.Done()
			for msg := range cli.Messages() {
				if msg.Type != rsu.TypeAdvisory {
					continue
				}
				total[i].Add(1)
				if killed.Load() {
					afterKill[i].Add(1)
				}
			}
		}(i, cli)
	}

	// The run: serve, injecting faults at their scheduled offsets —
	// primary-coordinator kill, node kill, restart-the-world — in
	// whatever order the flags put them.
	var events []faultEvent
	if *killCoord > 0 {
		events = append(events, faultEvent{at: *killCoord, fn: func() error {
			lead := cs.leader()
			if lead == nil {
				return fmt.Errorf("no live primary coordinator to kill")
			}
			fmt.Fprintf(w, "killing primary coordinator %s\n", lead.Addr())
			cs.setSkip(lead)
			lead.Close()
			promoted, err := waitPromotion(cs, 10*time.Second)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "standby %s promoted to primary (term %d)\n", promoted.Addr(), promoted.Term())
			return nil
		}})
	}
	if *killAfter > 0 {
		events = append(events, faultEvent{at: *killAfter, fn: func() error {
			lead := cs.leader()
			if lead == nil {
				return fmt.Errorf("no live primary coordinator to pick a victim from")
			}
			victimID := lead.Assignments()[keys[0]]
			victim = byID[victimID]
			if victim == nil {
				return fmt.Errorf("intersection %d owned by unknown node %q", keys[0], victimID)
			}
			fmt.Fprintf(w, "killing %s (owner of intersection %d)\n", victim.id, keys[0])
			killed.Store(true)
			victim.kill()
			return nil
		}})
	}
	if *restartWorld > 0 {
		events = append(events, faultEvent{at: *restartWorld, fn: func() error {
			return restartTheWorld(w, cs, keys, *heartbeat, *dataDir, coordReg, logger)
		}})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	var elapsed time.Duration
	for _, ev := range events {
		if d := ev.at - elapsed; d > 0 {
			time.Sleep(d)
			elapsed = ev.at
		}
		if err := ev.fn(); err != nil {
			return err
		}
	}
	time.Sleep(*runFor - elapsed)

	// Shutdown: vehicles first (their channels only close on Close),
	// then the members and coordinator via the deferred closers.
	for _, cli := range clients {
		cli.Close()
	}
	watchers.Wait()

	// Summary. The unserved counts are the acceptance criterion: a
	// fleet that lost intersections to the kill failed its job.
	failovers := coordReg.Counter("fleet_failovers_total", "").Value()
	promotions := coordReg.Counter("fleet_promotions_total", "").Value()
	quorumPromotions := coordReg.Counter("fleet_quorum_promotions_total", "").Value()
	quorumVotes := coordReg.Counter("fleet_quorum_votes_total", "").Value()
	walReplays := coordReg.Counter("fleet_wal_replays_total", "").Value()
	unserved, unservedAfter := 0, 0
	var reconnects, redirects int64
	for i, k := range keys {
		tot, post := total[i].Load(), afterKill[i].Load()
		if tot == 0 {
			unserved++
		}
		if killed.Load() && post == 0 {
			unservedAfter++
		}
		reconnects += clients[i].Reconnects()
		redirects += clients[i].Redirects()
		fmt.Fprintf(w, "intersection %d: advisories=%d after-kill=%d\n", k, tot, post)
	}
	statesFrom := coord
	if lead := cs.leader(); lead != nil {
		statesFrom = lead
	}
	var names []string
	for id, s := range statesFrom.States() {
		if s != fleet.Dead {
			names = append(names, id)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "fleet: nodes=%d live=%d %v failovers=%d promotions=%d quorum-promotions=%d quorum-votes=%d wal-replays=%d frames=%d vehicle-reconnects=%d vehicle-redirects=%d\n",
		*nodes, len(names), names, failovers, promotions, quorumPromotions, quorumVotes, walReplays, frames.Load(), reconnects, redirects)
	if short, long, ok := slos.BurnRates("fleet-reassign"); ok {
		fmt.Fprintf(w, "slo fleet-reassign: burn %.2f/%.2f active=%v\n", short, long, slos.AlertActive("fleet-reassign"))
	}
	fmt.Fprintf(w, "unserved intersections: %d (after kill: %d)\n", unserved, unservedAfter)
	if unserved > 0 || unservedAfter > 0 {
		return fmt.Errorf("%d intersections unserved (%d after kill)", unserved, unservedAfter)
	}
	return nil
}

// serveIntersection runs one shard's camera feed until ctx is
// cancelled: step the world, classify through the node's serving
// plane, broadcast the advisory, cycling weather scenes every
// perScene frames. Sampled frames (decided from the minted trace id)
// carry a trace through the serving plane, stamp the advisory with
// the id, and retire into the node's own tracer.
func serveIntersection(ctx context.Context, n *node, fw *safecross.Framework, intersection int, scenes []sim.Weather, perScene int, frameEvery time.Duration, traceSample int, logger *telemetry.Logger, frames *atomic.Int64) {
	tick := time.NewTicker(frameEvery)
	defer tick.Stop()
	frame := 0
	sceneIdx := intersection
	var world *sim.World
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if world == nil || (perScene > 0 && frame%perScene == 0) {
			world = sim.NewWorld(sim.Config{
				Weather:       scenes[sceneIdx%len(scenes)],
				TruckPresent:  true,
				TurnerEnabled: true,
				TurnerRespawn: true,
				Seed:          int64(1000 + 100*intersection + sceneIdx),
			})
			sceneIdx++
		}
		world.Step()
		frame++
		fctx := ctx
		var tr *telemetry.Trace
		if id := telemetry.NewTraceID(); id.Sampled(traceSample) {
			tr = n.tracer.StartLinked(fmt.Sprintf("frame/intersection-%d/%d", intersection, frame), id, "")
			fctx = telemetry.WithTrace(ctx, tr)
		}
		d, err := fw.ProcessFrameContext(fctx, world.Render())
		if err != nil {
			tr.Finish()
			if ctx.Err() == nil {
				logger.Warnf("%s: intersection %d frame %d: %v", n.id, intersection, frame, err)
			}
			return
		}
		frames.Add(1)
		bStart := time.Now()
		n.srv.Broadcast(rsu.IntersectionAdvisory(intersection, frame, d).
			WithTraceContext(tr.TraceID(), "broadcast"))
		tr.Span("broadcast", bStart, time.Now())
		tr.Finish()
	}
}

// faultEvent is one scheduled mid-run fault injection.
type faultEvent struct {
	at time.Duration
	fn func() error
}

// coordSet holds the live coordinator replicas behind a lock: fault
// injection kills members (and restart-the-world replaces the whole
// set) while the federator's target func and the summary read it.
type coordSet struct {
	mu   sync.Mutex
	all  []*fleet.Coordinator
	skip *fleet.Coordinator // deliberately killed; never reported as leader
}

func (s *coordSet) append(c *fleet.Coordinator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.all = append(s.all, c)
}

func (s *coordSet) prepend(c *fleet.Coordinator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.all = append([]*fleet.Coordinator{c}, s.all...)
}

func (s *coordSet) list() []*fleet.Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*fleet.Coordinator(nil), s.all...)
}

func (s *coordSet) setSkip(c *fleet.Coordinator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.skip = c
}

// replace swaps in a freshly restarted replica set.
func (s *coordSet) replace(coords []*fleet.Coordinator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.all = append([]*fleet.Coordinator(nil), coords...)
	s.skip = nil
}

// leader returns the first live coordinator currently holding the
// primary role, or nil when none does.
func (s *coordSet) leader() *fleet.Coordinator {
	s.mu.Lock()
	all, skip := s.all, s.skip
	s.mu.Unlock()
	for _, c := range all {
		if c == skip {
			continue
		}
		if c.Role() == fleet.RolePrimary {
			return c
		}
	}
	return nil
}

// closeAll closes every coordinator in the current set (closers are
// idempotent, so deliberately killed members are fine).
func (s *coordSet) closeAll() {
	for _, c := range s.list() {
		c.Close()
	}
}

// restartTheWorld is the harshest control-plane fault: close EVERY
// coordinator at once — primary and all standbys — then restart the
// whole replica set at the same addresses from their write-ahead logs.
// The last-known leader's address is reborn as the primary (its log
// carries the newest committed stamp) under a strictly larger term;
// the rest come back as standbys. Node agents re-bind within their
// redial backoff and keep every shard — the resumed assignment is
// byte-identical, so re-binding starts and stops nothing.
func restartTheWorld(w io.Writer, cs *coordSet, keys []int, heartbeat time.Duration, dataDir string, coordReg *telemetry.Registry, logger *telemetry.Logger) error {
	lead := cs.leader()
	if lead == nil {
		return fmt.Errorf("no live primary coordinator to restart from")
	}
	preTerm, preEpoch := lead.Term(), lead.Epoch()
	leadAddr := lead.Addr()
	old := cs.list()
	addrs := make([]string, 0, len(old))
	for _, c := range old {
		addrs = append(addrs, c.Addr())
	}
	fmt.Fprintf(w, "restarting the world: killing all %d coordinators (term %d, epoch %d)\n", len(old), preTerm, preEpoch)
	for _, c := range old {
		c.Close()
	}
	shared := []fleet.CoordinatorOption{
		fleet.WithHeartbeat(heartbeat, 0, 0),
		fleet.WithDataDir(dataDir),
		fleet.WithMetrics(coordReg),
		fleet.WithLogger(logger),
	}
	var standbys []string
	for _, a := range addrs {
		if a != leadAddr {
			standbys = append(standbys, a)
		}
	}
	reborn := make([]*fleet.Coordinator, 0, len(addrs))
	for _, a := range standbys {
		sb, err := fleet.NewCoordinator(a, append(append([]fleet.CoordinatorOption(nil), shared...), fleet.AsStandby())...)
		if err != nil {
			return fmt.Errorf("restart standby %s: %w", a, err)
		}
		reborn = append(reborn, sb)
	}
	np, err := fleet.NewCoordinator(leadAddr, append(append([]fleet.CoordinatorOption(nil), shared...),
		fleet.WithIntersections(keys...),
		fleet.WithStandbys(standbys...))...)
	if err != nil {
		return fmt.Errorf("restart primary %s: %w", leadAddr, err)
	}
	reborn = append([]*fleet.Coordinator{np}, reborn...)
	cs.replace(reborn)
	if np.Term() <= preTerm || np.Epoch() < preEpoch {
		return fmt.Errorf("restart did not resume durable state: term %d→%d, epoch %d→%d",
			preTerm, np.Term(), preEpoch, np.Epoch())
	}
	fmt.Fprintf(w, "control plane restarted from wal: term %d→%d, epoch resumed at %d\n",
		preTerm, np.Term(), np.Epoch())
	return nil
}

// waitPromotion blocks until a surviving coordinator promotes itself
// to primary after the old primary's death.
func waitPromotion(cs *coordSet, timeout time.Duration) (*fleet.Coordinator, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c := cs.leader(); c != nil {
			return c, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("no standby promoted within %v", timeout)
}

// waitCoverage blocks until every intersection has an owner.
func waitCoverage(coord *fleet.Coordinator, keys []int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		owners := coord.Assignments()
		covered := true
		for _, k := range keys {
			if owners[k] == "" {
				covered = false
				break
			}
		}
		if covered {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("intersections not fully assigned within %v", timeout)
}
