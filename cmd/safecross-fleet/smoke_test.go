package main

// Fleet smoke test (`make fleet-smoke`): boot a three-node fleet
// under a replicated coordinator (1 primary + 2 standbys) with a
// debug listener, crash the PRIMARY COORDINATOR mid-run, then crash a
// node under the freshly promoted primary, and assert (a) the summary
// shows every intersection still served with exactly one promotion
// and one failover, and (b) the control-plane series — promotions
// counter, coordinator-role gauge, replication-lag histogram,
// nodes-live gauge, and failover counter — were observable on
// /metrics while the fleet was degraded, exactly as an operator's
// dashboard would see them.
//
// The timings below are deliberately loose (150ms heartbeats, 60ms
// frames): the suite runs with -race on small machines, and a
// failure detector tuned tighter than the scheduler's jitter would
// declare healthy nodes dead.

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

var debugBannerRE = regexp.MustCompile(`debug endpoints on (http://[^/\s]+)/metrics`)

// bannerWriter lets the test read run()'s output while run() is
// still writing it.
type bannerWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *bannerWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *bannerWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func scrape(base, path string) (string, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet run skipped in -short mode")
	}
	out := &bannerWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-nodes", "3",
			"-intersections", "8",
			"-coordinators", "3",
			"-run", "7s",
			"-kill-coordinator-after", "1200ms",
			"-kill-after", "3s",
			"-heartbeat", "150ms",
			"-frame-every", "60ms",
			"-debug-addr", "127.0.0.1:0",
		}, out)
	}()

	// The debug listener comes up before training; find its address.
	var base string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := debugBannerRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no debug banner in output:\n%s", out.String())
	}

	// Scrape mid-run until the degraded-fleet series show: the
	// standby's promotion counted, the node failover counted, and the
	// live gauge down to two survivors. The run finishing first means
	// the metrics never reflected the kills.
	var lastMetrics string
	wantLines := []string{"fleet_promotions_total 1", "fleet_failovers_total 1", "fleet_nodes_live 2"}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
scraping:
	for {
		select {
		case err := <-done:
			t.Fatalf("run() finished (err=%v) before /metrics showed %v\nlast scrape:\n%s",
				err, wantLines, lastMetrics)
		case <-tick.C:
		}
		metrics, err := scrape(base, "/metrics")
		if err != nil {
			continue
		}
		lastMetrics = metrics
		for _, want := range wantLines {
			if !strings.Contains(metrics, want) {
				continue scraping
			}
		}
		break
	}
	// While degraded, the rest of the fleet plane must be exporting
	// too: per-node liveness, heartbeat RTTs, and reassignment latency.
	for _, series := range []string{
		`fleet_node_live{node="node-`,
		`fleet_coordinator_role{coordinator=`,
		`fleet_replication_lag_seconds_count{peer=`,
		"fleet_heartbeats_total",
		"fleet_heartbeat_rtt_seconds_count",
		"fleet_reassign_seconds_count",
		`serve_requests_total{scene=`,
	} {
		if !strings.Contains(lastMetrics, series) {
			t.Fatalf("missing %s in /metrics:\n%s", series, lastMetrics)
		}
	}

	if err := <-done; err != nil {
		t.Fatalf("fleet run failed: %v\noutput:\n%s", err, out.String())
	}
	final := out.String()
	for _, want := range []string{
		"killing primary coordinator",
		"promoted to primary (term 2)",
		"unserved intersections: 0 (after kill: 0)",
		"failovers=1",
		"promotions=1",
		"live=2",
	} {
		if !strings.Contains(final, want) {
			t.Fatalf("missing %q in summary:\n%s", want, final)
		}
	}
}
