package main

// Fleet smoke test (`make fleet-smoke`): boot a three-node fleet
// under a replicated coordinator (1 primary + 2 standbys) with a
// debug listener, crash the PRIMARY COORDINATOR mid-run (the standby
// must win promotion by QUORUM — three coordinators are configured,
// so the timeout path is off), crash a node under the freshly
// promoted primary, then RESTART THE WORLD: every coordinator killed
// at once and reborn at the same addresses from their write-ahead
// logs, resuming the committed (term, epoch) without churning a
// single runner. Assert (a) the summary shows every intersection
// still served with exactly one promotion (via quorum) and one
// failover, and (b) the control-plane series — promotions counter,
// quorum vote/promotion counters, WAL replay counter, coordinator-
// role gauge, replication-lag histogram, nodes-live gauge, and
// failover counter — were observable on /metrics while the fleet was
// degraded, exactly as an operator's dashboard would see them.
//
// On top of the failover plumbing this run exercises the whole
// fleet observability plane: the coordinator's /metrics must carry
// federated fleet:: series for every live node with exact counter
// and histogram-count merges, the reassign SLO (its objective
// tightened to an absurd 1ns so the failover burns the whole error
// budget) must raise its alert on the node kill and clear it once
// the observation ages out of the short window, and /traces/fleet
// must stitch a node's frame trace and the vehicle's receive segment
// into one cross-process trace.
//
// The timings below are deliberately loose (150ms heartbeats, 60ms
// frames): the suite runs with -race on small machines, and a
// failure detector tuned tighter than the scheduler's jitter would
// declare healthy nodes dead.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var debugBannerRE = regexp.MustCompile(`debug endpoints on (http://[^/\s]+)/metrics`)

// bannerWriter lets the test read run()'s output while run() is
// still writing it.
type bannerWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *bannerWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *bannerWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func scrape(base, path string) (string, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// pollMetrics scrapes /metrics until every want substring shows in a
// single scrape, failing if run() finishes first. It returns that
// scrape.
func pollMetrics(t *testing.T, base, stage string, done <-chan error, wants []string) string {
	t.Helper()
	var last string
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
scraping:
	for {
		select {
		case err := <-done:
			t.Fatalf("run() finished (err=%v) before /metrics showed %s %v\nlast scrape:\n%s",
				err, stage, wants, last)
		case <-tick.C:
		}
		metrics, err := scrape(base, "/metrics")
		if err != nil {
			continue
		}
		last = metrics
		for _, want := range wants {
			if !strings.Contains(metrics, want) {
				continue scraping
			}
		}
		return last
	}
}

// pollMetricsRE scrapes /metrics until the pattern matches, failing
// if run() finishes first.
func pollMetricsRE(t *testing.T, base, stage string, done <-chan error, want *regexp.Regexp) {
	t.Helper()
	var last string
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			t.Fatalf("run() finished (err=%v) before /metrics matched %s %v\nlast scrape:\n%s",
				err, stage, want, last)
		case <-tick.C:
		}
		metrics, err := scrape(base, "/metrics")
		if err != nil {
			continue
		}
		last = metrics
		if want.MatchString(metrics) {
			return
		}
	}
}

// assertExactMerge parses per-node federated series and the
// fleet-wide aggregate for one base name out of a single scrape and
// requires the aggregate to be the exact sum — the federation
// contract: merged counters and histogram counts are integer sums,
// never approximations.
func assertExactMerge(t *testing.T, metrics, series string) {
	t.Helper()
	perNode := regexp.MustCompile(`(?m)^fleet::` + series + `\{node="(node-\d+)"\} (\d+)$`)
	agg := regexp.MustCompile(`(?m)^fleet::` + series + ` (\d+)$`)
	nodes := perNode.FindAllStringSubmatch(metrics, -1)
	if len(nodes) < 2 {
		t.Fatalf("want ≥2 per-node fleet::%s series, got %d:\n%s", series, len(nodes), metrics)
	}
	var sum int64
	for _, m := range nodes {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatalf("bad per-node value %q for %s: %v", m[2], m[1], err)
		}
		sum += v
	}
	am := agg.FindStringSubmatch(metrics)
	if am == nil {
		t.Fatalf("no fleet-wide aggregate for fleet::%s:\n%s", series, metrics)
	}
	got, _ := strconv.ParseInt(am[1], 10, 64)
	if got != sum {
		t.Fatalf("fleet::%s aggregate %d != per-node sum %d", series, got, sum)
	}
}

func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet run skipped in -short mode")
	}
	out := &bannerWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-nodes", "3",
			"-intersections", "8",
			"-coordinators", "3",
			"-run", "8s",
			"-kill-coordinator-after", "1200ms",
			"-kill-after", "3s",
			"-restart-world-after", "5s",
			"-heartbeat", "150ms",
			"-frame-every", "60ms",
			"-debug-addr", "127.0.0.1:0",
			"-scrape-every", "300ms",
			// Shrink the SLO windows and tighten the reassign objective
			// so the single failover observation provably burns the
			// budget (alert raises) and then ages out within the run
			// (alert clears).
			"-slo-window", "1500ms",
			"-slo-reassign-objective", "1ns",
		}, out)
	}()

	// The debug listener comes up before training; find its address.
	var base string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := debugBannerRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no debug banner in output:\n%s", out.String())
	}

	// Scrape mid-run until the degraded-fleet series show: the
	// standby's promotion counted, the node failover counted, and the
	// live gauge down to two survivors. The run finishing first means
	// the metrics never reflected the kills.
	lastMetrics := pollMetrics(t, base, "degraded fleet", done,
		[]string{"fleet_promotions_total 1", "fleet_quorum_promotions_total 1",
			"fleet_failovers_total 1", "fleet_nodes_live 2"})
	// In a 3-coordinator fleet promotion goes through the quorum path:
	// the candidate standby collected at least one remote vote.
	if !regexp.MustCompile(`(?m)^fleet_quorum_votes_total [1-9]`).MatchString(lastMetrics) {
		t.Fatalf("promotion won without any quorum votes on /metrics:\n%s", lastMetrics)
	}
	// While degraded, the rest of the fleet plane must be exporting
	// too: per-node liveness, heartbeat RTTs, and reassignment latency.
	// The data-plane series (heartbeat RTTs, serve requests) now live
	// on per-node registries and reach this listener only through the
	// coordinator's federation scraper, as fleet:: series labelled per
	// node, alongside scrape staleness and the SLO burn-rate gauges.
	for _, series := range []string{
		`fleet_node_live{node="node-`,
		`fleet_coordinator_role{coordinator=`,
		`fleet_replication_lag_seconds_count{peer=`,
		"fleet_heartbeats_total",
		"fleet_heartbeat_rtt_seconds_count",
		"fleet_reassign_seconds_count",
		`serve_requests_total{scene=`,
		`fleet::serve_queue_wait_seconds_count{node="node-`,
		`fleet::rsu_broadcasts_total{node="node-`,
		`fleet_scrape_age_seconds{node="node-`,
		`slo_burn_rate{slo="fleet-reassign"`,
		`slo_burn_rate{slo="fleet-queue-wait"`,
	} {
		if !strings.Contains(lastMetrics, series) {
			t.Fatalf("missing %s in /metrics:\n%s", series, lastMetrics)
		}
	}
	// Federation is exact: within one scrape the fleet-wide aggregate
	// of a counter and of a histogram's count is the integer sum of
	// the per-node series.
	assertExactMerge(t, lastMetrics, "rsu_broadcasts_total")
	assertExactMerge(t, lastMetrics, "serve_queue_wait_seconds_count")

	// The node kill burned the (deliberately unmeetable) reassign
	// objective: the alert must raise on both windows, then clear once
	// the short window no longer spans the failover. The transitions
	// counter is the witness — the active gauge is only up for about
	// one short window, which a slow race-instrumented scrape can
	// sail straight past.
	pollMetricsRE(t, base, "SLO alert raised", done,
		regexp.MustCompile(`slo_alert_transitions_total\{slo="fleet-reassign"\} [12]\b`))

	// A sampled frame's trace must stitch across processes: the
	// owning node's frame segment and the subscribed vehicle's receive
	// segment, under one trace ID, on the coordinator's /traces/fleet.
	stitched := false
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
stitching:
	for !stitched {
		select {
		case err := <-done:
			t.Fatalf("run() finished (err=%v) before /traces/fleet stitched a cross-node trace", err)
		case <-tick.C:
		}
		body, err := scrape(base, "/traces/fleet")
		if err != nil {
			continue
		}
		var traces []struct {
			TraceID  string `json:"traceId"`
			Segments []struct {
				Node string `json:"node"`
				Name string `json:"name"`
			} `json:"segments"`
		}
		if err := json.Unmarshal([]byte(body), &traces); err != nil {
			t.Fatalf("bad /traces/fleet JSON: %v\n%s", err, body)
		}
		for _, tr := range traces {
			nodeFrame, vehicleRecv := false, false
			for _, seg := range tr.Segments {
				if strings.HasPrefix(seg.Node, "node-") && strings.HasPrefix(seg.Name, "frame/intersection-") {
					nodeFrame = true
				}
				if seg.Node == "vehicles" && seg.Name == "vehicle/recv/advisory" {
					vehicleRecv = true
				}
			}
			if nodeFrame && vehicleRecv {
				if tr.TraceID == "" {
					t.Fatalf("stitched trace missing trace id: %+v", tr)
				}
				stitched = true
				break stitching
			}
		}
	}

	// Restart-the-world: all three coordinators die at 5s and come back
	// from their write-ahead logs — each reborn instance counts one
	// replay on the shared registry.
	pollMetrics(t, base, "control-plane restart", done, []string{
		"fleet_wal_replays_total 3",
		"fleet_wal_appends_total",
		"fleet_wal_syncs_total",
	})

	// Hysteresis: the alert clears before shutdown, leaving exactly
	// one raise/clear pair on the transition counter and the gauge
	// back at zero.
	pollMetrics(t, base, "SLO alert cleared", done, []string{
		`slo_alert_transitions_total{slo="fleet-reassign"} 2`,
		`slo_alert_active{slo="fleet-reassign"} 0`,
	})

	if err := <-done; err != nil {
		t.Fatalf("fleet run failed: %v\noutput:\n%s", err, out.String())
	}
	final := out.String()
	for _, want := range []string{
		"killing primary coordinator",
		"promoted to primary (term ",
		"restarting the world: killing all 3 coordinators",
		"control plane restarted from wal: term ",
		"unserved intersections: 0 (after kill: 0)",
		"failovers=1",
		"promotions=1",
		"quorum-promotions=1",
		"wal-replays=3",
		"live=2",
		"slo fleet-reassign:",
	} {
		if !strings.Contains(final, want) {
			t.Fatalf("missing %q in summary:\n%s", want, final)
		}
	}
}
