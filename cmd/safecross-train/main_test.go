package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownProfile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-profile", "nope"}, &sb); err == nil {
		t.Fatal("expected unknown-profile error")
	}
}

func TestRunTrainsAndSaves(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dir, "-profile", "quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, scene := range []string{"day", "rain", "snow"} {
		path := filepath.Join(dir, "slowfast-"+scene+".gob")
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("missing weights for %s: %v", scene, err)
		}
		if info.Size() == 0 {
			t.Fatalf("empty weight file %s", path)
		}
	}
	if !strings.Contains(sb.String(), "held-out accuracy") {
		t.Fatal("output missing accuracy summary")
	}
}
