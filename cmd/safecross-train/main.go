// Command safecross-train runs the SafeCross training pipeline —
// daytime basic model from scratch, rain and snow models by few-shot
// adaptation — and saves the weights of all three models to disk.
//
// Usage:
//
//	safecross-train -out ./weights -profile quick -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"safecross/internal/experiments"
	"safecross/internal/nn"
	"safecross/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "safecross-train:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("safecross-train", flag.ContinueOnError)
	var (
		out     = fs.String("out", "weights", "output directory for model weights")
		profile = fs.String("profile", "quick", "experiment profile: quick | standard | full")
		verbose = fs.Bool("v", false, "log training progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg experiments.Config
	switch *profile {
	case "quick":
		cfg = experiments.Quick()
	case "standard":
		cfg = experiments.Standard()
	case "full":
		cfg = experiments.Full()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	if *verbose {
		cfg.Log = w
	}

	start := time.Now()
	tm, err := experiments.TrainSceneModels(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trained day/snow/rain models in %v\n", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, weather := range sim.AllWeathers() {
		model := tm.Models[weather]
		path := filepath.Join(*out, fmt.Sprintf("slowfast-%s.gob", weather))
		if err := saveModel(path, model.Params()); err != nil {
			return err
		}
		fmt.Fprintf(w, "saved %s (%d parameters)\n", path, nn.ParamCount(model.Params()))
	}

	rows, err := experiments.TableIII(tm)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nheld-out accuracy:")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s top1 %.4f  mean-class %.4f\n", r.Name, r.Top1, r.MeanClass)
	}
	return nil
}

func saveModel(path string, params []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save %s: %w", path, err)
	}
	defer f.Close()
	if err := nn.SaveState(f, params); err != nil {
		return fmt.Errorf("save %s: %w", path, err)
	}
	return f.Sync()
}
