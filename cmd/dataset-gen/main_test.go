package main

import (
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "0.01"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"day", "rain", "snow", "total:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPreview(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-preview", "day-danger-blind", "-frames", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "danger=true blind=true") {
		t.Fatalf("preview header wrong:\n%s", out)
	}
	if !strings.Contains(out, "frame 15:") {
		t.Fatal("preview missing key frame")
	}
}

func TestRunPreviewValidation(t *testing.T) {
	tests := []struct {
		name string
		spec string
	}{
		{name: "too-short", spec: "day"},
		{name: "bad-scene", spec: "fog-danger"},
		{name: "bad-label", spec: "day-maybe"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-preview", tt.spec}, &sb); err == nil {
				t.Fatalf("expected error for spec %q", tt.spec)
			}
		})
	}
}
