// Command dataset-gen generates and inspects the synthetic SafeCross
// dataset (the substitute for the paper's Belarus-intersection
// footage, Table I).
//
// Usage:
//
//	dataset-gen -scale 0.05            # composition stats
//	dataset-gen -preview day-danger    # ASCII-render one segment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"safecross/internal/experiments"
	"safecross/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dataset-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dataset-gen", flag.ContinueOnError)
	var (
		scale   = fs.Float64("scale", 0.02, "fraction of the paper's Table I segment counts")
		clipLen = fs.Int("frames", sim.SegmentFrames, "frames per segment")
		preview = fs.String("preview", "", "render one segment: <scene>-<danger|safe>[-blind], e.g. day-danger-blind")
		seed    = fs.Int64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *preview != "" {
		return renderPreview(w, *preview, *clipLen, *seed)
	}

	cfg := experiments.Quick()
	cfg.Scale = *scale
	cfg.ClipLen = *clipLen
	cfg.Seed = *seed
	rows, err := experiments.TableI(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-10s %-8s %-8s %-8s %-8s\n", "scene", "segments", "frames", "danger", "safe", "blind")
	total := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10d %-8d %-8d %-8d %-8d\n",
			r.Scene, r.Segments, r.Frames, r.Danger, r.Safe, r.Blind)
		total += r.Segments
	}
	fmt.Fprintf(w, "total: %d segments (paper at scale 1.0: 2855)\n", total)
	return nil
}

// renderPreview parses "<scene>-<danger|safe>[-blind]" and prints the
// key frame and two earlier frames of one generated segment.
func renderPreview(w io.Writer, spec string, clipLen int, seed int64) error {
	parts := strings.Split(spec, "-")
	if len(parts) < 2 {
		return fmt.Errorf("preview spec %q, want <scene>-<danger|safe>[-blind]", spec)
	}
	var weather sim.Weather
	switch parts[0] {
	case "day":
		weather = sim.Day
	case "rain":
		weather = sim.Rain
	case "snow":
		weather = sim.Snow
	default:
		return fmt.Errorf("unknown scene %q", parts[0])
	}
	var danger bool
	switch parts[1] {
	case "danger":
		danger = true
	case "safe":
		danger = false
	default:
		return fmt.Errorf("unknown label %q", parts[1])
	}
	blind := len(parts) > 2 && parts[2] == "blind"

	sc := sim.Scenario{Weather: weather, Danger: danger, Blind: blind, Seed: seed}
	seg, err := sc.GenerateN(clipLen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "segment: %v danger=%v blind=%v (%d frames)\n",
		seg.Weather, seg.Danger, seg.Blind, len(seg.Frames))
	for _, idx := range []int{0, len(seg.Frames) / 2, len(seg.Frames) - 1} {
		fmt.Fprintf(w, "\nframe %d:\n%s", idx, seg.Frames[idx].ASCII())
	}
	return nil
}
