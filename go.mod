module safecross

go 1.22
