GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# verify is the extended gate: everything must compile, vet clean, and
# pass the full suite under the race detector (the serving and RSU
# planes are concurrent by design).
verify: build vet race
