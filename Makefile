GO ?= go

.PHONY: build vet staticcheck test race bench bench-smoke bench-json obs-smoke slo-smoke fleet-smoke fuzz-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is installed; otherwise it degrades
# to a note (the container has no network to fetch it) and verify
# relies on vet + race instead.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet + -race cover the gate)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke runs the serving and inference benchmarks exactly once:
# enough to catch a broken benchmark or a serving-plane regression (the
# memory-pressure benchmark asserts zero drops and real eviction/reload
# churn; the Fig8 benchmark drives the batched workspace path; the
# detect-eval benchmark asserts the pooled score path stays
# allocation-free at steady state) without paying for a full
# measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkFig8_SlowFastInference|BenchmarkDetectEval|BenchmarkFewshotAdapt' -benchtime=1x .

# bench-json measures the inference hot paths (batched Fig8 inference,
# the serving plane, detector eval, and few-shot adaptation) with
# allocation tracking and records them in BENCH_infer.json; the file's
# previous contents roll into a "previous" field, so each refresh
# carries its own before/after. -require makes a silently skipped hot
# path (a bad -bench regex) fail the target instead of writing a
# report with a hole in it.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkFig8_SlowFastInference|BenchmarkServe|BenchmarkDetectEval|BenchmarkFewshotAdapt' -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_infer.json -require 'BenchmarkFig8_SlowFastInference,BenchmarkServe_MultiIntersection,BenchmarkDetectEval,BenchmarkFewshotAdapt'

# obs-smoke boots the RSU command with its debug listener
# (-debug-addr) and a traced demo vehicle, scrapes /metrics and
# /traces while the feeds run, and asserts the key telemetry series
# (queue-wait, batch-size, switch-cost, RSU broadcast latency, SLO
# burn-rate gauges), a fully tiled per-request trace, a cross-process
# stitched trace (frame root + vehicle receive sharing one trace id),
# and the bounded /traces?n=&terminal= query surface.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 ./cmd/safecross-rsu/

# slo-smoke is the SLO-focused alias: the same smoke suites exercise
# the burn-rate engine end to end — obs-smoke asserts slo_burn_rate /
# slo_alert_active series on a live /metrics, fleet-smoke kills a node
# and asserts the fleet-reassign alert raises and clears through
# failover (slo_alert_transitions_total reaching exactly 2).
slo-smoke: obs-smoke fleet-smoke

# fleet-smoke boots a three-node fleet (8 intersections, a replicated
# coordinator — 1 primary + 2 standbys, WAL-backed — and
# per-intersection retry vehicles), kills the primary coordinator
# mid-run (the takeover must happen by QUORUM election, not timeout),
# crashes a node under the new primary, then kills primary AND both
# standbys at once and restarts them from their write-ahead logs
# (epochs must resume above the pre-crash stamp with zero runner
# churn), and asserts every intersection keeps receiving advisories
# (zero unserved) with exactly one promotion and one failover —
# scraping the federated fleet::* per-node series (with exact
# histogram-merge counts), fleet_promotions_total /
# fleet_quorum_{votes,promotions}_total, fleet_wal_replays_total,
# fleet_failovers_total, fleet_nodes_live, fleet_scrape_age_seconds,
# the slo_burn_rate gauges (asserting the fleet-reassign alert raises
# on the failover and clears after recovery), and a cross-node
# stitched trace on /traces/fleet off the coordinator debug listener.
fleet-smoke:
	$(GO) test -run TestFleetSmoke -count=1 ./cmd/safecross-fleet/

# fuzz-smoke runs every native fuzz target for a short bounded burst:
# the rsu wire-message decode/validate/re-encode round trip (seeded by
# the committed corpus under internal/rsu/testdata/fuzz) and the
# control-plane WAL replayer (arbitrary byte soup must never panic and
# recovery must be idempotent). Seconds, not minutes — enough to catch
# a property regression; leave the fuzzer running longer by hand to
# hunt new inputs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMessageRoundTrip -fuzztime 5s ./internal/rsu/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 5s ./internal/fleet/

# verify is the extended gate: everything must compile, lint clean, and
# pass the full suite under the race detector (the serving and RSU
# planes are concurrent by design; -race covers the sharded telemetry
# counters too), plus a single-iteration pass over the serving
# benchmarks, the observability / SLO / fleet-failover smoke tests
# (slo-smoke folds obs-smoke and fleet-smoke in, so listing it here
# covers all three without re-running any of them), and a short burst
# of every fuzz target.
verify: build vet staticcheck race bench-smoke slo-smoke fuzz-smoke
