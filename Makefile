GO ?= go

.PHONY: build vet staticcheck test race bench bench-smoke bench-json obs-smoke fleet-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is installed; otherwise it degrades
# to a note (the container has no network to fetch it) and verify
# relies on vet + race instead.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet + -race cover the gate)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke runs the serving and inference benchmarks exactly once:
# enough to catch a broken benchmark or a serving-plane regression (the
# memory-pressure benchmark asserts zero drops and real eviction/reload
# churn; the Fig8 benchmark drives the batched workspace path; the
# detect-eval benchmark asserts the pooled score path stays
# allocation-free at steady state) without paying for a full
# measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkFig8_SlowFastInference|BenchmarkDetectEval|BenchmarkFewshotAdapt' -benchtime=1x .

# bench-json measures the inference hot paths (batched Fig8 inference,
# the serving plane, detector eval, and few-shot adaptation) with
# allocation tracking and records them in BENCH_infer.json; the file's
# previous contents roll into a "previous" field, so each refresh
# carries its own before/after. -require makes a silently skipped hot
# path (a bad -bench regex) fail the target instead of writing a
# report with a hole in it.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkFig8_SlowFastInference|BenchmarkServe|BenchmarkDetectEval|BenchmarkFewshotAdapt' -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_infer.json -require 'BenchmarkFig8_SlowFastInference,BenchmarkServe_MultiIntersection,BenchmarkDetectEval,BenchmarkFewshotAdapt'

# obs-smoke boots the RSU command with its debug listener
# (-debug-addr), scrapes /metrics and /traces while the feeds run, and
# asserts the key telemetry series (queue-wait, batch-size,
# switch-cost, RSU broadcast latency) and a fully tiled per-request
# trace are exported.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 ./cmd/safecross-rsu/

# fleet-smoke boots a three-node fleet (8 intersections, a replicated
# coordinator — 1 primary + 2 standbys — and per-intersection retry
# vehicles), kills the primary coordinator mid-run, waits for a
# standby to promote itself, then crashes a node under the new
# primary, and asserts every intersection keeps receiving advisories
# (zero unserved) with exactly one promotion and one failover —
# scraping fleet_promotions_total, fleet_coordinator_role,
# fleet_replication_lag_seconds, fleet_failovers_total, and
# fleet_nodes_live off the debug listener while degraded.
fleet-smoke:
	$(GO) test -run TestFleetSmoke -count=1 ./cmd/safecross-fleet/

# verify is the extended gate: everything must compile, lint clean, and
# pass the full suite under the race detector (the serving and RSU
# planes are concurrent by design; -race covers the sharded telemetry
# counters too), plus a single-iteration pass over the serving
# benchmarks and the observability and fleet-failover smoke tests.
verify: build vet staticcheck race bench-smoke obs-smoke fleet-smoke
