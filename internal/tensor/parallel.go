package tensor

import (
	"runtime"
	"sync"
)

// The numeric kernels fan work out over a small, bounded pool of
// resident goroutines rather than spawning per call: inference batches
// arrive continuously on the serving hot path, and a persistent pool
// keeps the per-kernel overhead to one closure and one WaitGroup.
//
// Parallelism never changes results: every chunk computes a disjoint,
// self-contained slice of the output (whole matmul rows, whole im2col
// rows), so the floating-point accumulation order per element is
// identical to the sequential kernel.

// kernelProcs bounds the pool. Eight workers saturate the matmul sizes
// this stack produces; beyond that, memory bandwidth dominates.
var kernelProcs = defaultKernelProcs()

func defaultKernelProcs() int {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	if p < 1 {
		p = 1
	}
	return p
}

// parMinWork is the minimum number of scalar operations a chunk must
// carry before splitting is worth a handoff to the pool.
const parMinWork = 1 << 14

// chunkTask is one [lo,hi) slice of a ParallelFor.
type chunkTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	kernelOnce  sync.Once
	kernelTasks chan chunkTask
)

// startKernelPool lazily starts the resident workers. The submitting
// goroutine always executes one chunk itself, so kernelProcs-1 workers
// give kernelProcs-way parallelism.
func startKernelPool() {
	kernelTasks = make(chan chunkTask, 4*kernelProcs)
	for i := 0; i < kernelProcs-1; i++ {
		go func() {
			for t := range kernelTasks {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// ParallelChunks reports how many chunks ParallelFor would split
// [0, n) into for the given per-item work: 0 for an empty range, 1
// when the job runs inline, kernelProcs at most. Kernels on the
// allocation-free eval path consult it before building the closure a
// ParallelFor handoff needs — a closure that reaches the task channel
// escapes to the heap even on calls that end up running inline, so
// the sequential body is invoked directly when no split will happen.
func ParallelChunks(n, workPerItem int) int {
	if n <= 0 {
		return 0
	}
	if workPerItem < 1 {
		workPerItem = 1
	}
	chunks := kernelProcs
	if c := n * workPerItem / parMinWork; c < chunks {
		chunks = c
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// ParallelFor runs fn over [0, n) split into at most kernelProcs
// contiguous chunks. workPerItem is the approximate number of scalar
// operations one index costs; small jobs run inline. fn must write
// only state owned by its own [lo, hi) range — chunks run concurrently
// on the shared kernel pool. If the pool is saturated (e.g. several
// serving workers inside kernels at once) chunks degrade to inline
// execution instead of queueing, so ParallelFor never deadlocks and
// never blocks behind another caller's work.
func ParallelFor(n, workPerItem int, fn func(lo, hi int)) {
	chunks := ParallelChunks(n, workPerItem)
	if chunks == 0 {
		return
	}
	if chunks == 1 {
		fn(0, n)
		return
	}
	kernelOnce.Do(startKernelPool)
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := size; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case kernelTasks <- chunkTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, size)
	wg.Wait()
}
