package tensor

import "fmt"

// ConvOutSize returns the output length of a convolution along one
// axis with input size n, kernel k, stride s and symmetric padding p.
func ConvOutSize(n, k, s, p int) int {
	return (n+2*p-k)/s + 1
}

// Im2Col unrolls a [C,H,W] tensor into a [C*KH*KW, OH*OW] matrix so
// that a 2-D convolution becomes a single matrix multiply with a
// weight matrix of shape [OC, C*KH*KW]. Out-of-bounds (padding)
// positions contribute zeros.
func Im2Col(x *Tensor, kh, kw, sh, sw, ph, pw int) (*Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("tensor: im2col needs [C,H,W] input, got %v", x.Shape)
	}
	c := x.Shape[0]
	oh := ConvOutSize(x.Shape[1], kh, sh, ph)
	ow := ConvOutSize(x.Shape[2], kw, sw, pw)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: im2col produces empty output for input %v kernel %dx%d", x.Shape, kh, kw)
	}
	cols := New(c*kh*kw, oh*ow)
	if err := Im2ColBatchInto(cols, x, 1, kh, kw, sh, sw, ph, pw); err != nil {
		return nil, err
	}
	return cols, nil
}

// Im2ColBatchInto unrolls a channel-major batch of 2-D planes into
// dst. x is logically [C,M,H,W] (rank 4; a rank-3 [C,H,W] tensor is
// accepted for m=1), where consecutive samples of one channel are
// contiguous — the layout every batched conv in this package produces.
// dst must be [C*KH*KW, M*OH*OW]; it is zeroed first, so padding
// positions are correct even when dst is a recycled scratch buffer.
// Sample m's columns occupy dst columns [m*OH*OW, (m+1)*OH*OW).
// Row blocks are filled in parallel on the bounded kernel pool.
func Im2ColBatchInto(dst, x *Tensor, m, kh, kw, sh, sw, ph, pw int) error {
	var c, h, w int
	switch {
	case x.Rank() == 4 && x.Shape[1] == m:
		c, h, w = x.Shape[0], x.Shape[2], x.Shape[3]
	case x.Rank() == 3 && m == 1:
		c, h, w = x.Shape[0], x.Shape[1], x.Shape[2]
	default:
		return fmt.Errorf("tensor: im2col batch needs [C,%d,H,W] input, got %v", m, x.Shape)
	}
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(w, kw, sw, pw)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: im2col produces empty output for input %v kernel %dx%d", x.Shape, kh, kw)
	}
	rows, rowLen := c*kh*kw, m*oh*ow
	if dst.Rank() != 2 || dst.Shape[0] != rows || dst.Shape[1] != rowLen {
		return fmt.Errorf("tensor: im2col dst shape %v, want [%d,%d]", dst.Shape, rows, rowLen)
	}
	dst.Zero()
	// The closure is built only when the job splits: an escaping
	// closure heap-allocates at creation even for calls that run
	// inline, and small frames must stay allocation-free.
	if ParallelChunks(rows, rowLen) <= 1 {
		im2colBatchRows(dst.Data, x.Data, m, h, w, kh, kw, sh, sw, ph, pw, oh, ow, rowLen, 0, rows)
	} else {
		ParallelFor(rows, rowLen, func(lo, hi int) {
			im2colBatchRows(dst.Data, x.Data, m, h, w, kh, kw, sh, sw, ph, pw, oh, ow, rowLen, lo, hi)
		})
	}
	return nil
}

// im2colBatchRows fills dst rows [lo, hi) of the batched column
// matrix — the chunk body of Im2ColBatchInto.
func im2colBatchRows(dst, x []float64, m, h, w, kh, kw, sh, sw, ph, pw, oh, ow, rowLen, lo, hi int) {
	for rowIdx := lo; rowIdx < hi; rowIdx++ {
		ci := rowIdx / (kh * kw)
		ki := rowIdx / kw % kh
		kj := rowIdx % kw
		row := dst[rowIdx*rowLen:]
		for mi := 0; mi < m; mi++ {
			plane := x[(ci*m+mi)*h*w:]
			out := row[mi*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				iy := oy*sh - ph + ki
				if iy < 0 || iy >= h {
					continue
				}
				src := plane[iy*w:]
				dstRow := out[oy*ow:]
				for ox := 0; ox < ow; ox++ {
					ix := ox*sw - pw + kj
					if ix >= 0 && ix < w {
						dstRow[ox] = src[ix]
					}
				}
			}
		}
	}
}

// Col2Im scatters a [C*KH*KW, OH*OW] column matrix back into a
// [C,H,W] tensor, accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used by convolution backward passes.
func Col2Im(cols *Tensor, c, h, w, kh, kw, sh, sw, ph, pw int) (*Tensor, error) {
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(w, kw, sw, pw)
	if cols.Rank() != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != oh*ow {
		return nil, fmt.Errorf("tensor: col2im shape %v incompatible with [%d,%d,%d] k=%dx%d", cols.Shape, c, h, w, kh, kw)
	}
	x := New(c, h, w)
	for ci := 0; ci < c; ci++ {
		plane := x.Data[ci*h*w : (ci+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := cols.Data[((ci*kh+ki)*kw+kj)*oh*ow:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*sh - ph + ki
					if iy < 0 || iy >= h {
						continue
					}
					dst := plane[iy*w:]
					src := row[oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*sw - pw + kj
						if ix >= 0 && ix < w {
							dst[ix] += src[ox]
						}
					}
				}
			}
		}
	}
	return x, nil
}

// Im2Col3D unrolls a [C,T,H,W] tensor into a
// [C*KT*KH*KW, OT*OH*OW] matrix for 3-D (spatio-temporal)
// convolution, the workhorse of the SlowFast and C3D video networks.
func Im2Col3D(x *Tensor, kt, kh, kw, st, sh, sw, pt, ph, pw int) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("tensor: im2col3d needs [C,T,H,W] input, got %v", x.Shape)
	}
	c, tn := x.Shape[0], x.Shape[1]
	ot := ConvOutSize(tn, kt, st, pt)
	oh := ConvOutSize(x.Shape[2], kh, sh, ph)
	ow := ConvOutSize(x.Shape[3], kw, sw, pw)
	if ot <= 0 || oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: im2col3d produces empty output for input %v kernel %dx%dx%d", x.Shape, kt, kh, kw)
	}
	cols := New(c*kt*kh*kw, ot*oh*ow)
	if err := Im2Col3DBatchInto(cols, x, 1, kt, kh, kw, st, sh, sw, pt, ph, pw); err != nil {
		return nil, err
	}
	return cols, nil
}

// Im2Col3DBatchInto unrolls a channel-major batch of volumes into dst.
// x is logically [C,N,T,H,W] (rank 5; a rank-4 [C,T,H,W] tensor is
// accepted for n=1). dst must be [C*KT*KH*KW, N*OT*OH*OW]; it is
// zeroed first. Sample i's columns occupy dst columns
// [i*OT*OH*OW, (i+1)*OT*OH*OW). Row blocks fill in parallel on the
// bounded kernel pool.
func Im2Col3DBatchInto(dst, x *Tensor, n, kt, kh, kw, st, sh, sw, pt, ph, pw int) error {
	var c, tn, h, w int
	switch {
	case x.Rank() == 5 && x.Shape[1] == n:
		c, tn, h, w = x.Shape[0], x.Shape[2], x.Shape[3], x.Shape[4]
	case x.Rank() == 4 && n == 1:
		c, tn, h, w = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	default:
		return fmt.Errorf("tensor: im2col3d batch needs [C,%d,T,H,W] input, got %v", n, x.Shape)
	}
	ot := ConvOutSize(tn, kt, st, pt)
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(w, kw, sw, pw)
	if ot <= 0 || oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: im2col3d produces empty output for input %v kernel %dx%dx%d", x.Shape, kt, kh, kw)
	}
	rows, vol := c*kt*kh*kw, ot*oh*ow
	rowLen := n * vol
	if dst.Rank() != 2 || dst.Shape[0] != rows || dst.Shape[1] != rowLen {
		return fmt.Errorf("tensor: im2col3d dst shape %v, want [%d,%d]", dst.Shape, rows, rowLen)
	}
	dst.Zero()
	// Closure built only on the split path — see Im2ColBatchInto.
	if ParallelChunks(rows, rowLen) <= 1 {
		im2col3dBatchRows(dst.Data, x.Data, n, tn, h, w, kt, kh, kw, st, sh, sw, pt, ph, pw, ot, oh, ow, rowLen, 0, rows)
	} else {
		ParallelFor(rows, rowLen, func(lo, hi int) {
			im2col3dBatchRows(dst.Data, x.Data, n, tn, h, w, kt, kh, kw, st, sh, sw, pt, ph, pw, ot, oh, ow, rowLen, lo, hi)
		})
	}
	return nil
}

// im2col3dBatchRows fills dst rows [lo, hi) — the chunk body of
// Im2Col3DBatchInto.
func im2col3dBatchRows(dstData, xData []float64, n, tn, h, w, kt, kh, kw, st, sh, sw, pt, ph, pw, ot, oh, ow, rowLen, lo, hi int) {
	spat := h * w
	vol := ot * oh * ow
	for rowIdx := lo; rowIdx < hi; rowIdx++ {
		ci := rowIdx / (kt * kh * kw)
		kti := rowIdx / (kh * kw) % kt
		ki := rowIdx / kw % kh
		kj := rowIdx % kw
		row := dstData[rowIdx*rowLen:]
		for ni := 0; ni < n; ni++ {
			volSrc := xData[(ci*n+ni)*tn*spat:]
			out := row[ni*vol:]
			for otz := 0; otz < ot; otz++ {
				it := otz*st - pt + kti
				if it < 0 || it >= tn {
					continue
				}
				plane := volSrc[it*spat:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*sh - ph + ki
					if iy < 0 || iy >= h {
						continue
					}
					src := plane[iy*w:]
					dstRow := out[(otz*oh+oy)*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*sw - pw + kj
						if ix >= 0 && ix < w {
							dstRow[ox] = src[ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im3D scatters a column matrix produced by Im2Col3D back into a
// [C,T,H,W] tensor, accumulating overlaps; the adjoint of Im2Col3D.
func Col2Im3D(cols *Tensor, c, tn, h, w, kt, kh, kw, st, sh, sw, pt, ph, pw int) (*Tensor, error) {
	ot := ConvOutSize(tn, kt, st, pt)
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(w, kw, sw, pw)
	if cols.Rank() != 2 || cols.Shape[0] != c*kt*kh*kw || cols.Shape[1] != ot*oh*ow {
		return nil, fmt.Errorf("tensor: col2im3d shape %v incompatible with [%d,%d,%d,%d]", cols.Shape, c, tn, h, w)
	}
	x := New(c, tn, h, w)
	spat := h * w
	for ci := 0; ci < c; ci++ {
		vol := x.Data[ci*tn*spat : (ci+1)*tn*spat]
		for kti := 0; kti < kt; kti++ {
			for ki := 0; ki < kh; ki++ {
				for kj := 0; kj < kw; kj++ {
					rowIdx := ((ci*kt+kti)*kh+ki)*kw + kj
					row := cols.Data[rowIdx*ot*oh*ow:]
					for otz := 0; otz < ot; otz++ {
						it := otz*st - pt + kti
						if it < 0 || it >= tn {
							continue
						}
						plane := vol[it*spat:]
						for oy := 0; oy < oh; oy++ {
							iy := oy*sh - ph + ki
							if iy < 0 || iy >= h {
								continue
							}
							dst := plane[iy*w:]
							src := row[(otz*oh+oy)*ow:]
							for ox := 0; ox < ow; ox++ {
								ix := ox*sw - pw + kj
								if ix >= 0 && ix < w {
									dst[ix] += src[ox]
								}
							}
						}
					}
				}
			}
		}
	}
	return x, nil
}
