package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{name: "scalar", shape: []int{1}, want: 1},
		{name: "vector", shape: []int{7}, want: 7},
		{name: "matrix", shape: []int{3, 4}, want: 12},
		{name: "video", shape: []int{2, 8, 6, 5}, want: 480},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if x.Len() != tt.want {
				t.Fatalf("Len = %d, want %d", x.Len(), tt.want)
			}
			if x.Rank() != len(tt.shape) {
				t.Fatalf("Rank = %d, want %d", x.Rank(), len(tt.shape))
			}
			for _, v := range x.Data {
				if v != 0 {
					t.Fatal("New must be zero-filled")
				}
			}
		})
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	if got := x.Data[1*12+2*4+3]; got != 42 {
		t.Fatalf("flat offset = %v, want 42 (row-major layout broken)", got)
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected error for mismatched slice length")
	}
	x, err := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", x.At(1, 0))
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.MustReshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("reshape must share backing data")
	}
	if _, err := x.Reshape(4, 2); err == nil {
		t.Fatal("expected error for incompatible reshape")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := Full(3, 2, 2)
	y := x.Clone()
	y.Set(0, 0, 0)
	if x.At(0, 0) != 3 {
		t.Fatal("clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{10, 20, 30, 40}, 2, 2)

	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add = %v", sum.Data)
	}

	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0, 0) != 9 {
		t.Fatalf("Sub = %v", diff.Data)
	}

	c := a.Clone()
	if err := c.MulInPlace(b); err != nil {
		t.Fatal(err)
	}
	if c.At(1, 0) != 90 {
		t.Fatalf("Mul = %v", c.Data)
	}

	if err := a.AddInPlace(New(3)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestAddScaledAXPY(t *testing.T) {
	x := MustFromSlice([]float64{1, 1}, 2)
	g := MustFromSlice([]float64{2, 4}, 2)
	if err := x.AddScaled(g, -0.5); err != nil {
		t.Fatal(err)
	}
	if x.Data[0] != 0 || x.Data[1] != -1 {
		t.Fatalf("AddScaled = %v", x.Data)
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float64{-1, 5, 2, 0}, 4)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if v, i := x.Max(); v != 5 || i != 1 {
		t.Fatalf("Max = %v,%d", v, i)
	}
	if v, i := x.Min(); v != -1 || i != 0 {
		t.Fatalf("Min = %v,%d", v, i)
	}
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if _, err := MatMul(New(2), b); err == nil {
		t.Fatal("expected rank error")
	}
}

// TestMatMulTransposeVariantsAgree checks that the transpose-fused
// products equal the explicit transpose followed by MatMul.
func TestMatMulTransposeVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandnTensor(rng, 1, 4, 3) // k×m for TransA
	b := RandnTensor(rng, 1, 4, 5) // k×n

	ta, err := Transpose2D(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(ta, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got, want, 1e-12)

	c := RandnTensor(rng, 1, 6, 4) // m×k
	d := RandnTensor(rng, 1, 5, 4) // n×k
	td, err := Transpose2D(d)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := MatMul(c, td)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := MatMulTransB(c, d)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got2, want2, 1e-12)
}

func TestSoftmaxProperties(t *testing.T) {
	x := MustFromSlice([]float64{1000, 1001, 999}, 3)
	s := Softmax(x)
	sum := s.Sum()
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
	if s.ArgMax() != 1 {
		t.Fatalf("softmax argmax = %d, want 1", s.ArgMax())
	}
	for _, v := range s.Data {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("softmax produced invalid probability %v", v)
		}
	}
}

func TestClampAndFinite(t *testing.T) {
	x := MustFromSlice([]float64{-5, 0.5, 9}, 3)
	x.Clamp(0, 1)
	if x.Data[0] != 0 || x.Data[2] != 1 {
		t.Fatalf("Clamp = %v", x.Data)
	}
	if !x.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	x.Data[1] = math.NaN()
	if x.AllFinite() {
		t.Fatal("NaN not detected")
	}
}

func TestKaimingStd(t *testing.T) {
	if got := KaimingStd(2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("KaimingStd(2) = %v, want 1", got)
	}
	if got := KaimingStd(0); got != 1 {
		t.Fatalf("KaimingStd(0) = %v, want fallback 1", got)
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandnTensor(rng, 1, m, k)
		b := RandnTensor(rng, 1, m, k)
		c := RandnTensor(rng, 1, k, n)

		ab, _ := Add(a, b)
		left, err := MatMul(ab, c)
		if err != nil {
			return false
		}
		ac, _ := MatMul(a, c)
		bc, _ := MatMul(b, c)
		right, _ := Add(ac, bc)
		return maxAbsDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: dot(a,b) equals (a as 1×n)·(b as n×1).
func TestPropertyDotMatchesMatMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := RandnTensor(rng, 1, n)
		b := RandnTensor(rng, 1, n)
		d, err := Dot(a, b)
		if err != nil {
			return false
		}
		m, err := MatMul(a.MustReshape(1, n), b.MustReshape(n, 1))
		if err != nil {
			return false
		}
		return math.Abs(d-m.Data[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is invariant to adding a constant to all logits.
func TestPropertySoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		x := RandnTensor(rng, 3, n)
		shift := rng.NormFloat64() * 10
		y := x.Map(func(v float64) float64 { return v + shift })
		return maxAbsDiff(Softmax(x), Softmax(y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func assertClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v, want %v", got.Shape, want.Shape)
	}
	if d := maxAbsDiff(got, want); d > tol {
		t.Fatalf("max abs diff %v exceeds %v", d, tol)
	}
}

func maxAbsDiff(a, b *Tensor) float64 {
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}
