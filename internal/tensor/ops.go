package tensor

import (
	"fmt"
	"math"
)

// AddInPlace adds o into t element-wise. Shapes must have equal
// element counts.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("tensor: add size mismatch %v vs %v", t.Shape, o.Shape)
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return nil
}

// SubInPlace subtracts o from t element-wise.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("tensor: sub size mismatch %v vs %v", t.Shape, o.Shape)
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return nil
}

// MulInPlace multiplies t by o element-wise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("tensor: mul size mismatch %v vs %v", t.Shape, o.Shape)
	}
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return nil
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) (*Tensor, error) {
	r := t.Clone()
	if err := r.AddInPlace(o); err != nil {
		return nil, err
	}
	return r, nil
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) (*Tensor, error) {
	r := t.Clone()
	if err := r.SubInPlace(o); err != nil {
		return nil, err
	}
	return r, nil
}

// Scale multiplies every element of t by s, in place, and returns t
// for chaining.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaled adds s*o into t, the AXPY primitive used by the
// optimizers. Shapes must have equal element counts.
func (t *Tensor) AddScaled(o *Tensor, s float64) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("tensor: axpy size mismatch %v vs %v", t.Shape, o.Shape)
	}
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
	return nil
}

// Apply replaces every element x with f(x), in place.
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f applied to t's.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	r := New(t.Shape...)
	for i, v := range t.Data {
		r.Data[i] = f(v)
	}
	return r
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element and its flat index. It panics on an
// empty tensor, which can only arise from a zero-sized shape.
func (t *Tensor) Max() (float64, int) {
	best, arg := math.Inf(-1), -1
	for i, v := range t.Data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Min returns the minimum element and its flat index.
func (t *Tensor) Min() (float64, int) {
	best, arg := math.Inf(1), -1
	for i, v := range t.Data {
		if v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	_, i := t.Max()
	return i
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of the flattened tensors.
func Dot(a, b *Tensor) (float64, error) {
	if len(a.Data) != len(b.Data) {
		return 0, fmt.Errorf("tensor: dot size mismatch %v vs %v", a.Shape, b.Shape)
	}
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s, nil
}

// MatMul computes the matrix product of a (m×k) and b (k×n) into a new
// m×n tensor. Both inputs must be rank-2.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul needs rank-2 inputs, got %v and %v", a.Shape, b.Shape)
	}
	out := New(a.Shape[0], b.Shape[1])
	if err := MatMulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulInto computes a·b into out, which must be a rank-2 m×n tensor
// (its contents are overwritten). Output rows are computed in parallel
// on the bounded kernel pool; each row's accumulation order is the
// sequential ikj order, so results are bit-identical to MatMul
// regardless of how the rows are scheduled.
func MatMulInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("tensor: matmul needs rank-2 inputs, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: matmul inner dims differ: %v vs %v", a.Shape, b.Shape)
	}
	if out.Rank() != 2 || out.Shape[0] != m || out.Shape[1] != n {
		return fmt.Errorf("tensor: matmul out shape %v, want [%d,%d]", out.Shape, m, n)
	}
	out.Zero()
	// Closure built only on the split path — see Im2ColBatchInto.
	if ParallelChunks(m, 2*k*n) <= 1 {
		matmulRows(out.Data, a.Data, b.Data, k, n, 0, m)
	} else {
		ParallelFor(m, 2*k*n, func(lo, hi int) {
			matmulRows(out.Data, a.Data, b.Data, k, n, lo, hi)
		})
	}
	return nil
}

// matmulRows computes output rows [lo, hi) of a·b — the chunk body of
// MatMulInto. The ikj loop order keeps the innermost accesses
// sequential in both b and out, which matters on the hot training
// path, and makes each row's accumulation order independent of the
// chunking, so parallel results are bit-identical to sequential.
func matmulRows(out, a, b []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes aᵀ·b where a is k×m and b is k×n, yielding
// m×n. Used by conv/linear backward passes to avoid materialising the
// transpose.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmulTA needs rank-2 inputs, got %v and %v", a.Shape, b.Shape)
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: matmulTA inner dims differ: %v vs %v", a.Shape, b.Shape)
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulTransB computes a·bᵀ where a is m×k and b is n×k, yielding
// m×n.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmulTB needs rank-2 inputs, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: matmulTB inner dims differ: %v vs %v", a.Shape, b.Shape)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out, nil
}

// Transpose2D returns the transpose of a rank-2 tensor as a new
// tensor.
func Transpose2D(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: transpose needs rank-2 input, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out, nil
}

// Softmax returns the softmax of a rank-1 tensor, computed with the
// usual max-subtraction for numerical stability.
func Softmax(logits *Tensor) *Tensor {
	out := New(logits.Shape...)
	maxv, _ := logits.Max()
	sum := 0.0
	for i, v := range logits.Data {
		e := math.Exp(v - maxv)
		out.Data[i] = e
		sum += e
	}
	if sum == 0 {
		sum = 1
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// AllFinite reports whether every element is a finite number; the
// training loops use this as a divergence guard.
func (t *Tensor) AllFinite() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Clamp limits every element to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float64) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}
