package tensor

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		var hits sync.Map
		var total atomic.Int64
		ParallelFor(n, parMinWork, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("n=%d: index %d visited twice", n, i)
				}
				total.Add(1)
			}
		})
		if got := total.Load(); got != int64(n) {
			t.Fatalf("n=%d: visited %d indices", n, got)
		}
	}
}

func TestParallelForSmallWorkRunsInline(t *testing.T) {
	// Below the work threshold the callback must run once over the
	// whole range — no goroutines, no chunking.
	calls := 0
	ParallelFor(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline chunk [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
}

func TestMatMulIntoMatchesMatMulBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Large enough that the parallel path engages; results must still
	// be bit-identical because chunks own whole output rows.
	a := RandnTensor(rng, 1, 60, 50)
	b := RandnTensor(rng, 1, 50, 70)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := New(60, 70)
	got.Apply(func(float64) float64 { return 99 }) // dirty, must be overwritten
	if err := MatMulInto(got, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: into %v != alloc %v", i, got.Data[i], want.Data[i])
		}
	}
	if err := MatMulInto(New(60, 69), a, b); err == nil {
		t.Fatal("wrong out shape must error")
	}
}

func TestIm2ColBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const c, m, h, w = 2, 3, 6, 5
	const kh, kw, sh, sw, ph, pw = 3, 3, 2, 2, 1, 1
	// Channel-major batch [C,M,H,W] and its per-sample [C,H,W] views.
	batch := RandnTensor(rng, 1, c, m, h, w)
	samples := make([]*Tensor, m)
	for mi := range samples {
		s := New(c, h, w)
		for ci := 0; ci < c; ci++ {
			copy(s.Data[ci*h*w:(ci+1)*h*w], batch.Data[(ci*m+mi)*h*w:])
		}
		samples[mi] = s
	}
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(w, kw, sw, pw)
	dst := New(c*kh*kw, m*oh*ow)
	if err := Im2ColBatchInto(dst, batch, m, kh, kw, sh, sw, ph, pw); err != nil {
		t.Fatal(err)
	}
	for mi, s := range samples {
		cols, err := Im2Col(s, kh, kw, sh, sw, ph, pw)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < c*kh*kw; r++ {
			for j := 0; j < oh*ow; j++ {
				got := dst.Data[r*m*oh*ow+mi*oh*ow+j]
				want := cols.Data[r*oh*ow+j]
				if got != want {
					t.Fatalf("sample %d row %d col %d: batch %v != single %v", mi, r, j, got, want)
				}
			}
		}
	}
}

func TestIm2Col3DBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const c, n, tn, h, w = 2, 3, 4, 5, 4
	const kt, kh, kw = 3, 3, 3
	const st, sh, sw = 1, 2, 2
	const pt, ph, pw = 1, 1, 1
	batch := RandnTensor(rng, 1, c, n, tn, h, w)
	vol := tn * h * w
	samples := make([]*Tensor, n)
	for ni := range samples {
		s := New(c, tn, h, w)
		for ci := 0; ci < c; ci++ {
			copy(s.Data[ci*vol:(ci+1)*vol], batch.Data[(ci*n+ni)*vol:])
		}
		samples[ni] = s
	}
	ot := ConvOutSize(tn, kt, st, pt)
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(w, kw, sw, pw)
	ovol := ot * oh * ow
	dst := New(c*kt*kh*kw, n*ovol)
	if err := Im2Col3DBatchInto(dst, batch, n, kt, kh, kw, st, sh, sw, pt, ph, pw); err != nil {
		t.Fatal(err)
	}
	for ni, s := range samples {
		cols, err := Im2Col3D(s, kt, kh, kw, st, sh, sw, pt, ph, pw)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < c*kt*kh*kw; r++ {
			for j := 0; j < ovol; j++ {
				got := dst.Data[r*n*ovol+ni*ovol+j]
				want := cols.Data[r*ovol+j]
				if got != want {
					t.Fatalf("sample %d row %d col %d: batch %v != single %v", ni, r, j, got, want)
				}
			}
		}
	}
}
