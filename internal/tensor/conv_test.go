package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvOutSize(t *testing.T) {
	tests := []struct {
		name       string
		n, k, s, p int
		want       int
	}{
		{name: "same-pad stride1", n: 8, k: 3, s: 1, p: 1, want: 8},
		{name: "valid stride1", n: 8, k: 3, s: 1, p: 0, want: 6},
		{name: "stride2", n: 8, k: 3, s: 2, p: 1, want: 4},
		{name: "kernel=n", n: 5, k: 5, s: 1, p: 0, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ConvOutSize(tt.n, tt.k, tt.s, tt.p); got != tt.want {
				t.Fatalf("ConvOutSize = %d, want %d", got, tt.want)
			}
		})
	}
}

// conv2DRef is a direct-loop reference convolution used to validate
// the im2col + matmul path.
func conv2DRef(x, w *Tensor, oc, kh, kw, sh, sw, ph, pw int) *Tensor {
	c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(wd, kw, sw, pw)
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ci := 0; ci < c; ci++ {
					for ki := 0; ki < kh; ki++ {
						for kj := 0; kj < kw; kj++ {
							iy := oy*sh - ph + ki
							ix := ox*sw - pw + kj
							if iy < 0 || iy >= h || ix < 0 || ix >= wd {
								continue
							}
							s += x.At(ci, iy, ix) * w.At(o, (ci*kh+ki)*kw+kj)
						}
					}
				}
				out.Set(s, o, oy, ox)
			}
		}
	}
	return out
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	tests := []struct {
		name                string
		c, h, w, oc, kh, kw int
		sh, sw, ph, pw      int
	}{
		{name: "1ch-3x3-pad", c: 1, h: 6, w: 7, oc: 2, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1},
		{name: "2ch-stride2", c: 2, h: 8, w: 8, oc: 3, kh: 3, kw: 3, sh: 2, sw: 2, ph: 1, pw: 1},
		{name: "asym-kernel", c: 2, h: 5, w: 9, oc: 1, kh: 1, kw: 3, sh: 1, sw: 2, ph: 0, pw: 1},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := RandnTensor(rng, 1, tt.c, tt.h, tt.w)
			wt := RandnTensor(rng, 1, tt.oc, tt.c*tt.kh*tt.kw)

			cols, err := Im2Col(x, tt.kh, tt.kw, tt.sh, tt.sw, tt.ph, tt.pw)
			if err != nil {
				t.Fatal(err)
			}
			prod, err := MatMul(wt, cols)
			if err != nil {
				t.Fatal(err)
			}
			oh := ConvOutSize(tt.h, tt.kh, tt.sh, tt.ph)
			ow := ConvOutSize(tt.w, tt.kw, tt.sw, tt.pw)
			got := prod.MustReshape(tt.oc, oh, ow)
			want := conv2DRef(x, wt, tt.oc, tt.kh, tt.kw, tt.sh, tt.sw, tt.ph, tt.pw)
			assertClose(t, got, want, 1e-10)
		})
	}
}

func TestIm2ColErrors(t *testing.T) {
	if _, err := Im2Col(New(3, 3), 3, 3, 1, 1, 0, 0); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := Im2Col(New(1, 2, 2), 5, 5, 1, 1, 0, 0); err == nil {
		t.Fatal("expected empty-output error")
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. for all x, y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the identity the
// convolution backward pass relies on.
func TestPropertyCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(2)
		h := 3 + rng.Intn(4)
		w := 3 + rng.Intn(4)
		kh, kw := 1+rng.Intn(3), 1+rng.Intn(3)
		sh, sw := 1+rng.Intn(2), 1+rng.Intn(2)
		ph, pw := rng.Intn(2), rng.Intn(2)
		if ConvOutSize(h, kh, sh, ph) <= 0 || ConvOutSize(w, kw, sw, pw) <= 0 {
			return true
		}
		x := RandnTensor(rng, 1, c, h, w)
		cols, err := Im2Col(x, kh, kw, sh, sw, ph, pw)
		if err != nil {
			return false
		}
		y := RandnTensor(rng, 1, cols.Shape...)
		back, err := Col2Im(y, c, h, w, kh, kw, sh, sw, ph, pw)
		if err != nil {
			return false
		}
		lhs, _ := Dot(cols, y)
		rhs, _ := Dot(x, back)
		return math.Abs(lhs-rhs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// conv3DRef is the direct-loop reference for spatio-temporal
// convolution.
func conv3DRef(x, w *Tensor, oc, kt, kh, kw, st, sh, sw, pt, ph, pw int) *Tensor {
	c, tn, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	ot := ConvOutSize(tn, kt, st, pt)
	oh := ConvOutSize(h, kh, sh, ph)
	ow := ConvOutSize(wd, kw, sw, pw)
	out := New(oc, ot, oh, ow)
	for o := 0; o < oc; o++ {
		for otz := 0; otz < ot; otz++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ci := 0; ci < c; ci++ {
						for kti := 0; kti < kt; kti++ {
							for ki := 0; ki < kh; ki++ {
								for kj := 0; kj < kw; kj++ {
									it := otz*st - pt + kti
									iy := oy*sh - ph + ki
									ix := ox*sw - pw + kj
									if it < 0 || it >= tn || iy < 0 || iy >= h || ix < 0 || ix >= wd {
										continue
									}
									widx := ((ci*kt+kti)*kh+ki)*kw + kj
									s += x.At(ci, it, iy, ix) * w.At(o, widx)
								}
							}
						}
					}
					out.Set(s, o, otz, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2Col3DMatchesDirectConv(t *testing.T) {
	tests := []struct {
		name                   string
		c, tn, h, w, oc        int
		kt, kh, kw, st, sh, sw int
		pt, ph, pw             int
	}{
		{name: "slowfast-fast-stem", c: 1, tn: 8, h: 6, w: 8, oc: 2,
			kt: 3, kh: 3, kw: 3, st: 1, sh: 2, sw: 2, pt: 1, ph: 1, pw: 1},
		{name: "slow-pathway-spatialonly", c: 2, tn: 4, h: 6, w: 6, oc: 2,
			kt: 1, kh: 3, kw: 3, st: 1, sh: 1, sw: 1, pt: 0, ph: 1, pw: 1},
		{name: "temporal-stride", c: 1, tn: 8, h: 4, w: 4, oc: 1,
			kt: 3, kh: 1, kw: 1, st: 2, sh: 1, sw: 1, pt: 1, ph: 0, pw: 0},
	}
	rng := rand.New(rand.NewSource(11))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := RandnTensor(rng, 1, tt.c, tt.tn, tt.h, tt.w)
			wt := RandnTensor(rng, 1, tt.oc, tt.c*tt.kt*tt.kh*tt.kw)

			cols, err := Im2Col3D(x, tt.kt, tt.kh, tt.kw, tt.st, tt.sh, tt.sw, tt.pt, tt.ph, tt.pw)
			if err != nil {
				t.Fatal(err)
			}
			prod, err := MatMul(wt, cols)
			if err != nil {
				t.Fatal(err)
			}
			ot := ConvOutSize(tt.tn, tt.kt, tt.st, tt.pt)
			oh := ConvOutSize(tt.h, tt.kh, tt.sh, tt.ph)
			ow := ConvOutSize(tt.w, tt.kw, tt.sw, tt.pw)
			got := prod.MustReshape(tt.oc, ot, oh, ow)
			want := conv3DRef(x, wt, tt.oc, tt.kt, tt.kh, tt.kw, tt.st, tt.sh, tt.sw, tt.pt, tt.ph, tt.pw)
			assertClose(t, got, want, 1e-10)
		})
	}
}

// Property: Col2Im3D is the adjoint of Im2Col3D.
func TestPropertyCol2Im3DAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(2)
		tn := 2 + rng.Intn(4)
		h := 3 + rng.Intn(3)
		w := 3 + rng.Intn(3)
		kt, kh, kw := 1+rng.Intn(2), 1+rng.Intn(3), 1+rng.Intn(3)
		st, sh, sw := 1+rng.Intn(2), 1+rng.Intn(2), 1+rng.Intn(2)
		pt, ph, pw := rng.Intn(2), rng.Intn(2), rng.Intn(2)
		if ConvOutSize(tn, kt, st, pt) <= 0 || ConvOutSize(h, kh, sh, ph) <= 0 || ConvOutSize(w, kw, sw, pw) <= 0 {
			return true
		}
		x := RandnTensor(rng, 1, c, tn, h, w)
		cols, err := Im2Col3D(x, kt, kh, kw, st, sh, sw, pt, ph, pw)
		if err != nil {
			return false
		}
		y := RandnTensor(rng, 1, cols.Shape...)
		back, err := Col2Im3D(y, c, tn, h, w, kt, kh, kw, st, sh, sw, pt, ph, pw)
		if err != nil {
			return false
		}
		lhs, _ := Dot(cols, y)
		rhs, _ := Dot(x, back)
		return math.Abs(lhs-rhs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIm2Col3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandnTensor(rng, 1, 1, 32, 10, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Im2Col3D(x, 3, 3, 3, 1, 2, 2, 1, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandnTensor(rng, 1, 16, 108)
	y := RandnTensor(rng, 1, 108, 320)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
