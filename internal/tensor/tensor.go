// Package tensor implements dense, row-major float64 tensors and the
// numeric kernels (matmul, convolution, pooling, reductions) that the
// neural-network stack in internal/nn is built on.
//
// Tensors are deliberately simple: a flat []float64 buffer plus a
// shape. All operations are deterministic; randomness is injected via
// *rand.Rand so experiments are reproducible.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Tensor is a dense, row-major, float64 n-dimensional array.
//
// The zero value is not usable; construct tensors with New, Zeros,
// Full, FromSlice, or the random constructors in random.go.
type Tensor struct {
	// Data is the flat row-major backing buffer. Its length always
	// equals the product of Shape.
	Data []float64
	// Shape holds the size of each dimension. A scalar has Shape
	// []int{1}.
	Shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{
		Data:  make([]float64, Numel(shape)),
		Shape: append([]int(nil), shape...),
	}
}

// Zeros is an alias for New, provided for readability at call sites
// that emphasise the zero initialisation.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied); callers that need isolation should pass
// a fresh slice. It returns an error if the element count does not
// match the shape.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	if len(data) != Numel(shape) {
		return nil, fmt.Errorf("tensor: %d elements cannot fill shape %v", len(data), shape)
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}, nil
}

// MustFromSlice is FromSlice for statically known-good inputs; it
// panics on mismatch and is intended for tests and literals.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Numel returns the number of elements implied by shape.
func Numel(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Len returns the total number of elements in the tensor.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if d != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies o's data into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("tensor: copy size mismatch %v vs %v", t.Shape, o.Shape)
	}
	copy(t.Data, o.Data)
	return nil
}

// Reshape returns a view-like tensor sharing t's data with a new
// shape. It returns an error if the element counts differ.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	if Numel(shape) != len(t.Data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v to %v", t.Shape, shape)
	}
	return &Tensor{Data: t.Data, Shape: append([]int(nil), shape...)}, nil
}

// MustReshape is Reshape that panics on mismatch; for statically
// known-correct reshapes.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// offset computes the flat index of a multi-dimensional index.
func (t *Tensor) offset(idx []int) int {
	off := 0
	for i, x := range idx {
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	b.WriteString(fmt.Sprint(t.Shape))
	if len(t.Data) <= 16 {
		b.WriteByte('[')
		for i, v := range t.Data {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', 4, 64))
		}
		b.WriteByte(']')
	} else {
		fmt.Fprintf(&b, "{n=%d mean=%.4g}", len(t.Data), t.Mean())
	}
	return b.String()
}

// Randn fills t with N(0, std) samples drawn from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// RandnTensor returns a fresh tensor of the given shape filled with
// N(0, std) samples.
func RandnTensor(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	t.Randn(rng, std)
	return t
}

// Uniform fills t with samples from U(lo, hi).
func (t *Tensor) Uniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// KaimingStd returns the He-initialisation standard deviation for a
// layer with the given fan-in, the scheme used for all conv and linear
// weights in internal/nn.
func KaimingStd(fanIn int) float64 {
	if fanIn <= 0 {
		return 1
	}
	return math.Sqrt(2 / float64(fanIn))
}
