package sim

import (
	"fmt"
	"math/rand"

	"safecross/internal/vision"
)

// Scenario describes one labelled video segment to synthesise, in the
// terms of the paper's data-processing rules (Sec. IV-B): each
// segment is a fixed number of consecutive frames, the final frame is
// the key frame, a "blind area" segment has the big vehicle parked on
// the opposite side, and the danger label says whether an oncoming
// vehicle occupies the blind stretch at the key frame.
type Scenario struct {
	// Weather selects the scene condition.
	Weather Weather
	// Blind places the occluding truck (blind-area segment).
	Blind bool
	// Danger forces an oncoming vehicle inside the danger zone at the
	// key frame (class 0: do not turn); otherwise the zone is
	// guaranteed clear (class 1: safe to turn).
	Danger bool
	// Seed makes the segment reproducible.
	Seed int64
	// Margin widens the gap between the two classes around the
	// clearing threshold. Zero keeps the default tight ±3 % margins
	// (hard boundary cases); the paper's hand-labelled blind-zone
	// statistic set (Sec. V-D) contains visually unambiguous clips,
	// which a margin of ≈0.3 reproduces.
	Margin float64
}

// SegmentFrames is the paper's segment length: 32 consecutive frames.
const SegmentFrames = 32

// warmupFrames run before the recorded segment so the dynamic
// background model and the turner's approach are in steady state.
const warmupFrames = 10

// Segment is a rendered, labelled clip.
type Segment struct {
	// Warmup are the frames rendered before the recorded segment;
	// video pre-processing feeds them to the background model so the
	// first recorded frame is differenced against a primed background.
	Warmup []*vision.Image
	// Frames are the raw camera frames; the last one is the key frame.
	Frames []*vision.Image
	// Danger is the ground-truth label at the key frame (true = class
	// 0, do not turn).
	Danger bool
	// Blind reports whether the occluding truck was present.
	Blind bool
	// Weather is the scene condition.
	Weather Weather
}

// KeyFrame returns the segment's final frame.
func (s *Segment) KeyFrame() *vision.Image { return s.Frames[len(s.Frames)-1] }

// Generate renders the scenario into a Segment of SegmentFrames
// frames (after warm-up) and verifies that the realised ground truth
// matches the requested label.
func (s Scenario) Generate() (*Segment, error) {
	return s.GenerateN(SegmentFrames)
}

// GenerateN renders a segment with an explicit frame count.
func (s Scenario) GenerateN(frames int) (*Segment, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("sim: segment length %d must be positive", frames)
	}
	world := NewWorld(Config{
		Weather:       s.Weather,
		TruckPresent:  s.Blind,
		NoArrivals:    true, // deliberate spawns only, so labels are exact
		TurnerEnabled: true,
		Seed:          s.Seed,
	})
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5afec305))
	total := warmupFrames + frames
	friction := world.Model().Friction

	dangerFrac := 0.97
	safeLo := 1.03
	if s.Margin > 0 {
		dangerFrac = 1 - s.Margin
		safeLo = 1 + s.Margin
	}
	if s.Danger {
		// A car whose own clearing threshold still covers its
		// distance to the conflict point at the key frame.
		v := world.SpawnOncoming(0)
		thr := ClearingThreshold(-v.VX, friction)
		d := rng.Float64() * dangerFrac * thr
		v.X = (ConflictX + d) - v.VX*float64(total)
		// Optionally a second, trailing vehicle further upstream.
		if rng.Float64() < 0.4 {
			v2 := world.SpawnOncoming(0)
			v2.X = v.X + 30 + rng.Float64()*40
		}
	} else {
		// Safe segment: traffic exists but threatens nothing at the
		// key frame — either already past the conflict point or still
		// comfortably beyond its own clearing threshold. The latter is
		// the discriminating case: the same position with a faster car
		// (or a slipperier road) would be dangerous.
		if rng.Float64() < 0.75 {
			v := world.SpawnOncoming(0)
			passed := float64(ConflictX-10-v.Len) - rng.Float64()*24
			v.X = passed - v.VX*float64(total)
		}
		if rng.Float64() < 0.65 {
			v := world.SpawnOncoming(0)
			thr := ClearingThreshold(-v.VX, friction)
			d := thr * (safeLo + rng.Float64()*0.9)
			v.X = (ConflictX + d) - v.VX*float64(total)
		}
	}

	warm := world.RunFrames(warmupFrames)
	rendered := world.RunFrames(frames)

	got := world.ConflictRisk()
	if got != s.Danger {
		return nil, fmt.Errorf("sim: scenario %+v realised danger=%v at key frame", s, got)
	}
	return &Segment{
		Warmup:  warm,
		Frames:  rendered,
		Danger:  s.Danger,
		Blind:   s.Blind,
		Weather: s.Weather,
	}, nil
}

// OccludedScene is the canonical Fig. 8 setting for the detection
// comparison: truck present, one oncoming car inside the danger zone
// on the final frame.
type OccludedScene struct {
	// Frames is the rendered sequence; the final frame is the test
	// frame the detectors must find the car in.
	Frames []*vision.Image
	// Car is the ground-truth rectangle of the car in the danger zone
	// at the final frame.
	Car vision.Rect
	// Zone is the danger zone.
	Zone vision.Rect
}

// OccludedSequence renders an n-frame occluded scene. Detectors that
// maintain state (dynamic backgrounds) warm up on the leading frames;
// two-frame methods use the last pair.
func OccludedSequence(weather Weather, seed int64, n int) (*OccludedScene, error) {
	if n < 2 {
		return nil, fmt.Errorf("sim: occluded sequence needs ≥2 frames, got %d", n)
	}
	world := NewWorld(Config{
		Weather:       weather,
		TruckPresent:  true,
		NoArrivals:    true,
		TurnerEnabled: true,
		Seed:          seed,
	})
	zone := world.DangerZone()
	v := world.SpawnOncoming(0)
	// Place the car mid-zone on the final frame. It is rendered dim:
	// the danger-zone stretch is the farthest, most obliquely viewed
	// part of the paper's camera image, where vehicles are small and
	// low-contrast — the regime that defeats corner tracking and
	// pretrained detectors (Fig. 8).
	v.Brightness = 0.46
	target := float64(zone.X0 + zone.Width()/2)
	v.X = target - v.VX*float64(n)

	frames := world.RunFrames(n)
	if !world.DangerZoneOccupied() {
		return nil, fmt.Errorf("sim: occluded scene failed to place car in zone")
	}
	return &OccludedScene{Frames: frames, Car: v.Bounds(), Zone: zone}, nil
}

// OccludedFrame renders the two-frame form of the Fig. 8 scene,
// returning the last two frames plus the ground-truth car rectangle
// and zone.
func OccludedFrame(weather Weather, seed int64) (prev, cur *vision.Image, car vision.Rect, zone vision.Rect, err error) {
	scene, err := OccludedSequence(weather, seed, 24)
	if err != nil {
		return nil, nil, vision.Rect{}, vision.Rect{}, err
	}
	n := len(scene.Frames)
	return scene.Frames[n-2], scene.Frames[n-1], scene.Car, scene.Zone, nil
}
