package sim

import (
	"math"
	"testing"
	"testing/quick"

	"safecross/internal/vision"
)

func TestWeatherString(t *testing.T) {
	tests := []struct {
		w    Weather
		want string
	}{
		{Day, "day"},
		{Rain, "rain"},
		{Snow, "snow"},
		{Weather(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.w.String(); got != tt.want {
			t.Fatalf("String(%d) = %q, want %q", tt.w, got, tt.want)
		}
	}
	if len(AllWeathers()) != 3 {
		t.Fatal("AllWeathers must list three conditions")
	}
}

func TestStoppingDistanceMonotonicInFriction(t *testing.T) {
	day := StoppingDistance(1.5, ModelFor(Day).Friction)
	rain := StoppingDistance(1.5, ModelFor(Rain).Friction)
	snow := StoppingDistance(1.5, ModelFor(Snow).Friction)
	if !(day < rain && rain < snow) {
		t.Fatalf("stopping distances not ordered: day=%v rain=%v snow=%v", day, rain, snow)
	}
	if !math.IsInf(StoppingDistance(1, 0), 1) {
		t.Fatal("zero friction must give infinite stopping distance")
	}
}

// Property: stopping distance is quadratic in speed.
func TestPropertyStoppingDistanceQuadratic(t *testing.T) {
	f := func(v float64) bool {
		v = math.Mod(math.Abs(v), 5) + 0.1
		d1 := StoppingDistance(v, 0.5)
		d2 := StoppingDistance(2*v, 0.5)
		return math.Abs(d2-4*d1) < 1e-9*math.Max(1, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDangerZoneVariesWithWeather(t *testing.T) {
	// Snow has the lowest friction but also the lowest speeds; the
	// paper's point is that the zone differs per scene, and at equal
	// speeds slippery surfaces need longer zones. Verify both facts.
	zones := map[Weather]float64{}
	for _, w := range AllWeathers() {
		zones[w] = DangerZoneLength(ModelFor(w))
	}
	if zones[Day] == zones[Rain] || zones[Rain] == zones[Snow] || zones[Day] == zones[Snow] {
		t.Fatalf("danger zones must differ per weather: %v", zones)
	}
	// Equal-speed comparison isolates the friction effect.
	mRain, mDay := ModelFor(Rain), ModelFor(Day)
	mRain.MaxSpeed = mDay.MaxSpeed
	if DangerZoneLength(mRain) <= DangerZoneLength(mDay) {
		t.Fatal("at equal speed, rain must need a longer zone than day")
	}
}

func TestWorldDefaultsAndValidate(t *testing.T) {
	w := NewWorld(Config{})
	if w.Weather() != Day {
		t.Fatalf("default weather = %v, want day", w.Weather())
	}
	if err := (Config{ArrivalRate: -1}).Validate(); err == nil {
		t.Fatal("expected arrival-rate error")
	}
	if err := (Config{Weather: Weather(9)}).Validate(); err == nil {
		t.Fatal("expected weather error")
	}
	if err := (Config{Weather: Rain, ArrivalRate: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldVehiclesMoveLeftAndExpire(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	v := w.SpawnOncoming(40)
	x0 := v.X
	w.Step()
	if v.X >= x0 {
		t.Fatal("oncoming vehicle must move left")
	}
	// Run until it exits; the fleet must eventually empty.
	for i := 0; i < 300; i++ {
		w.Step()
	}
	for _, veh := range w.Oncoming() {
		if veh == v {
			t.Fatal("vehicle past the edge was not removed")
		}
	}
}

func TestDangerZoneOccupancyGroundTruth(t *testing.T) {
	w := NewWorld(Config{Seed: 2})
	if w.DangerZoneOccupied() {
		t.Fatal("empty world cannot have an occupied zone")
	}
	zone := w.DangerZone()
	v := w.SpawnOncoming(float64(zone.X0 + zone.Width()/2))
	if !w.DangerZoneOccupied() {
		t.Fatalf("vehicle at %v inside zone %+v not detected", v.X, zone)
	}
	v.X = float64(zone.X1 + 50)
	if w.DangerZoneOccupied() {
		t.Fatal("vehicle far upstream must not occupy the zone")
	}
}

func TestTurnerWaitsForDangerAndThenTurns(t *testing.T) {
	w := NewWorld(Config{Seed: 3, TurnerEnabled: true})
	zone := w.DangerZone()
	// Hold an approaching car just upstream of the conflict point so
	// the turner must wait (the car keeps its speed; we re-pin its
	// position each step so the hazard persists).
	blocker := w.SpawnOncoming(float64(zone.X0 + 8))
	for i := 0; i < 80; i++ {
		w.Step()
		blocker.X = float64(zone.X0 + 8) // keep re-pinning
	}
	if w.TurnerPhase() != TurnerWaiting {
		t.Fatalf("turner phase = %v, want waiting while zone occupied", w.TurnerPhase())
	}
	// Clear the zone: the turner must commit and eventually leave.
	blocker.X = -100
	for i := 0; i < 200 && w.TurnerPhase() != TurnerGone; i++ {
		w.Step()
		blocker.X = -100
	}
	if w.TurnerPhase() != TurnerGone {
		t.Fatalf("turner never completed the turn; phase = %v", w.TurnerPhase())
	}
}

func TestBlindHesitationSlowsTurn(t *testing.T) {
	turnFrame := func(blind bool) int {
		w := NewWorld(Config{Seed: 4, TurnerEnabled: true, TruckPresent: blind})
		for i := 0; i < 400; i++ {
			w.Step()
			if w.TurnerPhase() == TurnerTurning || w.TurnerPhase() == TurnerGone {
				return i
			}
		}
		return 400
	}
	clear := turnFrame(false)
	blind := turnFrame(true)
	if blind <= clear {
		t.Fatalf("occluded driver must hesitate longer: clear=%d blind=%d", clear, blind)
	}
}

func TestRenderContainsVehicleAndTruck(t *testing.T) {
	w := NewWorld(Config{Seed: 5, TruckPresent: true})
	zone := w.DangerZone()
	w.SpawnOncoming(float64(zone.X0 + 10))
	im := w.Render()
	if im.W != FrameW || im.H != FrameH {
		t.Fatalf("frame size %dx%d", im.W, im.H)
	}
	// The car region must be brighter than the ambient road.
	carMean := regionMean(im, vision.Rect{X0: zone.X0 + 10, Y0: oncomingLaneY0 + 1, X1: zone.X0 + 18, Y1: oncomingLaneY1 - 2})
	roadMean := regionMean(im, vision.Rect{X0: 4, Y0: oncomingLaneY0 + 1, X1: 20, Y1: oncomingLaneY1 - 2})
	if carMean <= roadMean+0.1 {
		t.Fatalf("vehicle not visible: car=%v road=%v", carMean, roadMean)
	}
	truckMean := regionMean(im, vision.Rect{X0: ConflictX + 8, Y0: pocketLaneY0 + 2, X1: ConflictX + 28, Y1: pocketLaneY1 - 2})
	if truckMean <= roadMean+0.1 {
		t.Fatalf("truck not visible: truck=%v road=%v", truckMean, roadMean)
	}
}

func TestRenderNoiseDiffersByWeather(t *testing.T) {
	noise := func(weather Weather) float64 {
		w := NewWorld(Config{Seed: 6, Weather: weather})
		im := w.Render()
		// Flat road patch: variation there is nearly all sensor noise.
		patch := vision.NewImage(16, 6)
		for y := 0; y < 6; y++ {
			for x := 0; x < 16; x++ {
				patch.Set(x, y, im.At(4+x, 2+y))
			}
		}
		return patch.StdDev()
	}
	if noise(Rain) <= noise(Day) {
		t.Fatal("rain frames must be noisier than day frames")
	}
	if noise(Snow) <= noise(Day) {
		t.Fatal("snow frames must be noisier than day frames")
	}
}

func TestScenarioGenerateMatchesLabels(t *testing.T) {
	tests := []struct {
		name string
		sc   Scenario
	}{
		{name: "day-blind-danger", sc: Scenario{Weather: Day, Blind: true, Danger: true, Seed: 10}},
		{name: "day-blind-safe", sc: Scenario{Weather: Day, Blind: true, Danger: false, Seed: 11}},
		{name: "rain-noblind-danger", sc: Scenario{Weather: Rain, Blind: false, Danger: true, Seed: 12}},
		{name: "snow-blind-safe", sc: Scenario{Weather: Snow, Blind: true, Danger: false, Seed: 13}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			seg, err := tt.sc.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if len(seg.Frames) != SegmentFrames {
				t.Fatalf("segment has %d frames, want %d", len(seg.Frames), SegmentFrames)
			}
			if seg.Danger != tt.sc.Danger || seg.Blind != tt.sc.Blind || seg.Weather != tt.sc.Weather {
				t.Fatalf("segment metadata %+v does not match scenario %+v", seg, tt.sc)
			}
			if seg.KeyFrame() != seg.Frames[SegmentFrames-1] {
				t.Fatal("KeyFrame must be the final frame")
			}
		})
	}
}

// Property: scenario generation is deterministic in the seed and
// always realises the requested danger label.
func TestPropertyScenarioDeterministicAndLabelled(t *testing.T) {
	f := func(seed int64, danger, blind bool, wsel uint8) bool {
		weather := AllWeathers()[int(wsel)%3]
		sc := Scenario{Weather: weather, Blind: blind, Danger: danger, Seed: seed}
		a, err := sc.Generate()
		if err != nil {
			return false
		}
		b, err := sc.Generate()
		if err != nil {
			return false
		}
		if a.Danger != danger {
			return false
		}
		// Bit-identical frames across runs.
		for i := range a.Frames {
			for j := range a.Frames[i].Pix {
				if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioGenerateNValidation(t *testing.T) {
	if _, err := (Scenario{Weather: Day}).GenerateN(0); err == nil {
		t.Fatal("expected frame-count error")
	}
}

func TestOccludedFrameScene(t *testing.T) {
	prev, cur, car, zone, err := OccludedFrame(Day, 7)
	if err != nil {
		t.Fatal(err)
	}
	if prev == nil || cur == nil {
		t.Fatal("missing frames")
	}
	if !car.Overlaps(zone) {
		t.Fatalf("car %+v must sit inside the danger zone %+v", car, zone)
	}
	// The car must actually be moving between the two frames.
	d, err := vision.AbsDiff(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	motion := regionMean(d, car)
	if motion <= 0.02 {
		t.Fatalf("no visible motion at the car: %v", motion)
	}
}

func regionMean(im *vision.Image, r vision.Rect) float64 {
	s, n := 0.0, 0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			s += im.At(x, y)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
