package sim

// Extended scene conditions beyond the paper's three. The paper's
// future-work section calls for "increas[ing] the number of extreme
// scenes"; fog and night exercise the same adaptation machinery with
// different physics: fog crushes contrast and visibility, night
// darkens the ambient and adds sensor gain noise while roads stay
// dry.
const (
	// Fog: dry road (normal friction) but heavy contrast loss; drivers
	// slow down for visibility, not grip.
	Fog Weather = iota + 4
	// Night: dark ambient, high sensor gain noise, mildly reduced
	// speeds.
	Night
)

// ExtendedWeathers lists the future-work scenes. They are excluded
// from AllWeathers so the Table I reproduction keeps the paper's
// exact three-scene composition.
func ExtendedWeathers() []Weather { return []Weather{Fog, Night} }

// extendedString returns names for the extended conditions; Weather.
// String dispatches here for values above Snow.
func extendedString(w Weather) string {
	switch w {
	case Fog:
		return "fog"
	case Night:
		return "night"
	default:
		return "unknown"
	}
}

// extendedModel returns the weather models of the extended scenes.
func extendedModel(w Weather) (WeatherModel, bool) {
	switch w {
	case Fog:
		return WeatherModel{
			Friction:   0.75, // dry road
			MaxSpeed:   1.1,  // visibility-limited speeds
			NoiseSigma: 0.03,
			SaltPepper: 0,
			Contrast:   0.45, // heavy washout
			BaseLight:  0.52,
		}, true
	case Night:
		return WeatherModel{
			Friction:   0.70,
			MaxSpeed:   1.4,
			NoiseSigma: 0.09, // sensor gain noise
			SaltPepper: 0.001,
			Contrast:   0.85,
			BaseLight:  0.12, // dark ambient
		}, true
	default:
		return WeatherModel{}, false
	}
}
