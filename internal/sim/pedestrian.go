package sim

import "safecross/internal/vision"

// Pedestrian support — the paper's future-work question "Is SafeCross
// suitable for blind spot pedestrian warning?" made concrete: a
// crosswalk crosses the oncoming lane just downstream (west) of the
// conflict point, in the stretch a left-turning driver sweeps through
// right after committing. Pedestrians are small, slow, vertically
// moving blobs — very different from vehicles in both size and
// motion axis, which is what the pedestrian monitor keys on.

// Crosswalk geometry: a vertical band west of the conflict point.
const (
	// CrosswalkX0 and CrosswalkX1 bound the crosswalk band.
	CrosswalkX0 = ConflictX - 22
	CrosswalkX1 = ConflictX - 12
	// crosswalkTop/Bottom are the walking extent (just beyond the
	// road band on both sides).
	crosswalkTop    = oncomingLaneY0 - 6
	crosswalkBottom = pocketLaneY1 + 6
)

// Pedestrian is a person crossing the road.
type Pedestrian struct {
	// X, Y is the top-left corner of the rendered blob.
	X, Y float64
	// VY is the vertical walking speed in px/frame (positive = down).
	VY float64
}

// pedestrian blob dimensions in pixels.
const (
	pedW = 3
	pedH = 4
)

// Bounds returns the pedestrian's pixel rectangle.
func (p *Pedestrian) Bounds() vision.Rect {
	return vision.Rect{
		X0: int(p.X), Y0: int(p.Y),
		X1: int(p.X) + pedW, Y1: int(p.Y) + pedH,
	}
}

// CrosswalkZone returns the pixel rectangle of the crossing band over
// the road.
func CrosswalkZone() vision.Rect {
	return vision.Rect{X0: CrosswalkX0, Y0: oncomingLaneY0, X1: CrosswalkX1, Y1: pocketLaneY1}
}

// Pedestrians returns the pedestrians currently in the scene (shared
// pointers; callers must not mutate).
func (w *World) Pedestrians() []*Pedestrian { return w.pedestrians }

// SpawnPedestrian inserts a pedestrian entering the crosswalk from
// the top or bottom kerb.
func (w *World) SpawnPedestrian(fromTop bool) *Pedestrian {
	speed := 0.25 + 0.2*w.rng.Float64()
	x := float64(CrosswalkX0+1) + w.rng.Float64()*float64(CrosswalkX1-CrosswalkX0-pedW-2)
	p := &Pedestrian{X: x}
	if fromTop {
		p.Y = crosswalkTop
		p.VY = speed
	} else {
		p.Y = crosswalkBottom
		p.VY = -speed
	}
	w.pedestrians = append(w.pedestrians, p)
	return p
}

// stepPedestrians advances walkers and drops those who finished
// crossing.
func (w *World) stepPedestrians() {
	if w.cfg.PedestrianRate > 0 && w.rng.Float64() < w.cfg.PedestrianRate {
		w.SpawnPedestrian(w.rng.Float64() < 0.5)
	}
	kept := w.pedestrians[:0]
	for _, p := range w.pedestrians {
		p.Y += p.VY
		if p.Y > crosswalkTop-1 && p.Y < crosswalkBottom+1 {
			kept = append(kept, p)
		}
	}
	w.pedestrians = kept
}

// PedestrianOnRoad reports whether any pedestrian is currently inside
// the crossing band over the road — the ground truth for the
// pedestrian warning.
func (w *World) PedestrianOnRoad() bool {
	zone := CrosswalkZone()
	for _, p := range w.pedestrians {
		if p.Bounds().Overlaps(zone) {
			return true
		}
	}
	return false
}
