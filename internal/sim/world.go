package sim

import (
	"fmt"
	"math"
	"math/rand"

	"safecross/internal/vision"
)

// Default camera frame dimensions. The paper's cameras produce
// 1376×776 frames; the simulator renders a proportionally scaled-down
// view so pure-Go experiments stay fast. All geometry below is
// expressed relative to these dimensions.
const (
	// FrameW and FrameH are the rendered camera frame size in pixels.
	FrameW = 128
	FrameH = 80
)

// Fixed scene geometry (pixel coordinates in the camera frame).
const (
	// Oncoming through-lane: vehicles travel right-to-left inside this
	// horizontal band. The turner must cross it.
	oncomingLaneY0 = 22
	oncomingLaneY1 = 32

	// Opposing left-turn pocket, where the occluding truck waits.
	pocketLaneY0 = 34
	pocketLaneY1 = 44

	// Turner's approach lane: a vertical band at the bottom half.
	turnerLaneX0 = 70
	turnerLaneX1 = 78

	// ConflictX is the x coordinate where a left turn crosses the
	// oncoming lane; the danger zone extends to the right (upstream of
	// oncoming traffic) from here.
	ConflictX = 74
)

// Vehicle is a moving (or parked) vehicle in the scene.
type Vehicle struct {
	// X, Y are the top-left corner in pixels (floats for sub-pixel
	// motion).
	X, Y float64
	// VX is the horizontal velocity in px/frame (negative = moving
	// left, the oncoming direction).
	VX float64
	// Len and Wid are the rectangle dimensions in pixels.
	Len, Wid int
	// Brightness is the painted intensity before weather contrast.
	Brightness float64
}

// Bounds returns the vehicle's pixel rectangle.
func (v *Vehicle) Bounds() vision.Rect {
	return vision.Rect{
		X0: int(v.X), Y0: int(v.Y),
		X1: int(v.X) + v.Len, Y1: int(v.Y) + v.Wid,
	}
}

// TurnerPhase describes what the left-turning vehicle is doing.
type TurnerPhase int

// Turner lifecycle phases.
const (
	// TurnerApproaching: driving up the approach lane toward the stop
	// line.
	TurnerApproaching TurnerPhase = iota + 1
	// TurnerWaiting: stopped at the line deciding whether to turn.
	TurnerWaiting
	// TurnerTurning: executing the left turn across the oncoming lane.
	TurnerTurning
	// TurnerGone: cleared the intersection.
	TurnerGone
)

// Config configures a World. Zero values select sensible defaults via
// NewWorld.
type Config struct {
	// Weather selects the scene condition (default Day).
	Weather Weather
	// TruckPresent places the occluding truck in the opposing pocket,
	// creating the blind area.
	TruckPresent bool
	// ArrivalRate is the per-frame probability of spawning an oncoming
	// vehicle (default 0.035 unless NoArrivals is set).
	ArrivalRate float64
	// NoArrivals disables ambient traffic entirely; scenario
	// generators use deliberate spawns so labels stay exact.
	NoArrivals bool
	// TurnerEnabled places a left-turning vehicle in the scene.
	TurnerEnabled bool
	// TurnerRespawn starts a new left-turner whenever the previous
	// one clears the intersection, so throughput (turns per unit
	// time) can be measured over long runs.
	TurnerRespawn bool
	// PedestrianRate is the per-frame probability of a pedestrian
	// entering the crosswalk (0 disables pedestrians).
	PedestrianRate float64
	// Seed seeds the world's private RNG.
	Seed int64
}

// World simulates the intersection frame by frame.
type World struct {
	cfg         Config
	model       WeatherModel
	rng         *rand.Rand
	frame       int
	illum       float64
	oncoming    []*Vehicle
	truck       *Vehicle
	pedestrians []*Pedestrian

	turnerPhase TurnerPhase
	turnerX     float64
	turnerY     float64
	safeStreak  int
	turnsDone   int

	advisoryValid bool
	advisorySafe  bool
}

// NewWorld creates a simulator for the given configuration.
func NewWorld(cfg Config) *World {
	if cfg.Weather == 0 {
		cfg.Weather = Day
	}
	if cfg.NoArrivals {
		cfg.ArrivalRate = 0
	} else if cfg.ArrivalRate == 0 {
		cfg.ArrivalRate = 0.035
	}
	w := &World{
		cfg:   cfg,
		model: ModelFor(cfg.Weather),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.TruckPresent {
		w.truck = &Vehicle{
			X: float64(ConflictX + 6), Y: pocketLaneY0 + 1,
			Len: 26, Wid: pocketLaneY1 - pocketLaneY0 - 2,
			Brightness: 0.88,
		}
	}
	if cfg.TurnerEnabled {
		w.turnerPhase = TurnerApproaching
		w.turnerX = turnerLaneX0 + 1
		w.turnerY = float64(FrameH + 4)
	} else {
		w.turnerPhase = TurnerGone
	}
	return w
}

// Weather returns the scene condition.
func (w *World) Weather() Weather { return w.cfg.Weather }

// Model returns the weather model in effect.
func (w *World) Model() WeatherModel { return w.model }

// Frame returns the number of completed simulation steps.
func (w *World) Frame() int { return w.frame }

// TruckPresent reports whether the occluding truck is in the scene.
func (w *World) TruckPresent() bool { return w.truck != nil }

// TurnerPhase returns the turner's current lifecycle phase.
func (w *World) TurnerPhase() TurnerPhase { return w.turnerPhase }

// Oncoming returns the current oncoming vehicles (shared pointers;
// callers must not mutate).
func (w *World) Oncoming() []*Vehicle { return w.oncoming }

// TurnsCompleted returns the number of left turns completed so far.
func (w *World) TurnsCompleted() int { return w.turnsDone }

// SetAdvisory feeds the SafeCross warning into the turner's decision:
// when valid, an occluded driver trusts the roadside advisory instead
// of creeping cautiously. Call with valid=false to withdraw it.
func (w *World) SetAdvisory(safe, valid bool) {
	w.advisorySafe = safe
	w.advisoryValid = valid
}

// DangerZone returns the pixel rectangle of the blind stretch of the
// oncoming lane: from the conflict point rightward for the
// weather-dependent clearing length.
func (w *World) DangerZone() vision.Rect {
	length := int(DangerZoneLength(w.model))
	x1 := ConflictX + length
	if x1 > FrameW {
		x1 = FrameW
	}
	return vision.Rect{X0: ConflictX, Y0: oncomingLaneY0, X1: x1, Y1: oncomingLaneY1}
}

// DangerZoneOccupied reports whether any oncoming vehicle currently
// overlaps the danger-zone rectangle — the geometric ground truth the
// detection study (Table II) tests against.
func (w *World) DangerZoneOccupied() bool {
	zone := w.DangerZone()
	for _, v := range w.oncoming {
		if v.Bounds().Overlaps(zone) {
			return true
		}
	}
	return false
}

// VehicleDangerous reports whether one oncoming vehicle makes a left
// turn unsafe right now: it has not yet cleared the conflict point
// and its own speed-dependent clearing threshold still covers its
// distance to it. A slow car deep in the zone can be safe while a
// fast car beyond it is not — the gap judgement the classifier must
// learn, which requires temporal (speed) information, not just a
// snapshot.
func (w *World) VehicleDangerous(v *Vehicle) bool {
	if v.VX >= 0 {
		return false // not approaching
	}
	if v.X+float64(v.Len) < ConflictX {
		return false // already past the conflict point
	}
	if v.X <= ConflictX {
		return true // straddling the conflict point
	}
	d := v.X - ConflictX
	return d <= ClearingThreshold(-v.VX, w.model.Friction)
}

// ConflictRisk reports whether any oncoming vehicle currently makes a
// left turn unsafe — the ground-truth label of the classification
// task and the signal the turner behaviour model acts on.
func (w *World) ConflictRisk() bool {
	for _, v := range w.oncoming {
		if w.VehicleDangerous(v) {
			return true
		}
	}
	return false
}

// SpawnOncoming inserts an oncoming vehicle at horizontal position x
// with a speed jittered around the weather's free-flow speed.
// Scenario generators use it to place a car so it sits in the danger
// zone at a chosen key frame.
func (w *World) SpawnOncoming(x float64) *Vehicle {
	// Wide speed spread: the gap judgement below depends on it.
	speed := w.model.MaxSpeed * (0.6 + 0.55*w.rng.Float64())
	v := &Vehicle{
		X:          x,
		Y:          float64(oncomingLaneY0 + 1 + w.rng.Intn(2)),
		VX:         -speed,
		Len:        9 + w.rng.Intn(5),
		Wid:        oncomingLaneY1 - oncomingLaneY0 - 3,
		Brightness: 0.68 + 0.25*w.rng.Float64(),
	}
	w.oncoming = append(w.oncoming, v)
	return v
}

// Step advances the world by one frame: arrivals, vehicle motion, and
// the turner's behaviour model.
func (w *World) Step() {
	w.frame++
	w.illum = 0.015 * math.Sin(float64(w.frame)/120)

	// Poisson-ish arrivals from the right edge.
	if w.cfg.ArrivalRate > 0 && w.rng.Float64() < w.cfg.ArrivalRate {
		w.SpawnOncoming(float64(FrameW + 2))
	}
	// Advance oncoming vehicles; drop those past the left edge.
	kept := w.oncoming[:0]
	for _, v := range w.oncoming {
		v.X += v.VX
		if v.X+float64(v.Len) > -4 {
			kept = append(kept, v)
		}
	}
	w.oncoming = kept

	w.stepPedestrians()
	w.stepTurner()
}

// stepTurner advances the left-turner's behaviour model: approach the
// stop line, wait until the danger zone is clear (human drivers judge
// from what they can see; with the truck present they wait extra out
// of caution), then turn across and leave.
func (w *World) stepTurner() {
	const approachSpeed = 1.4
	switch w.turnerPhase {
	case TurnerApproaching:
		w.turnerY -= approachSpeed
		if w.turnerY <= pocketLaneY1+6 {
			w.turnerY = pocketLaneY1 + 6
			w.turnerPhase = TurnerWaiting
		}
	case TurnerWaiting:
		safe := !w.ConflictRisk()
		if w.truck != nil && w.advisoryValid {
			// Occluded view but a SafeCross advisory is available:
			// the driver acts on the roadside unit's judgement.
			safe = w.advisorySafe
		}
		if safe {
			w.safeStreak++
		} else {
			w.safeStreak = 0
		}
		// With a clear view (or a trusted advisory) a short safe
		// streak is enough; with the truck blocking the view and no
		// advisory, the human driver creeps and waits through a long
		// cautious streak before committing — the wasted green time
		// SafeCross removes.
		need := 1
		if w.truck != nil {
			if w.advisoryValid {
				need = 2
			} else {
				need = 30
			}
		}
		if w.safeStreak >= need {
			w.turnerPhase = TurnerTurning
		}
	case TurnerTurning:
		// Arc the turn: first cross up into the lane, then head left.
		if w.turnerY > oncomingLaneY0+2 {
			w.turnerY -= 1.2
		} else {
			w.turnerX -= 1.6
		}
		if w.turnerX < -10 {
			w.turnerPhase = TurnerGone
			w.turnsDone++
		}
	case TurnerGone:
		if w.cfg.TurnerRespawn && w.cfg.TurnerEnabled {
			w.turnerPhase = TurnerApproaching
			w.turnerX = turnerLaneX0 + 1
			w.turnerY = float64(FrameH + 4)
			w.safeStreak = 0
		}
	}
}

// TurnerBounds returns the turner's current pixel rectangle and
// whether it is in the scene at all.
func (w *World) TurnerBounds() (vision.Rect, bool) {
	if w.turnerPhase == TurnerGone {
		return vision.Rect{}, false
	}
	// The footprint rotates from portrait (driving up) to landscape
	// (heading left) as the turn progresses.
	if w.turnerPhase == TurnerTurning && w.turnerY <= oncomingLaneY0+2 {
		return vision.Rect{
			X0: int(w.turnerX) - 5, Y0: int(w.turnerY),
			X1: int(w.turnerX) + 5, Y1: int(w.turnerY) + 6,
		}, true
	}
	return vision.Rect{
		X0: int(w.turnerX), Y0: int(w.turnerY),
		X1: int(w.turnerX) + 6, Y1: int(w.turnerY) + 10,
	}, true
}

// Render paints the current scene into a fresh grayscale frame,
// including weather noise and illumination drift.
func (w *World) Render() *vision.Image {
	im := vision.NewImage(FrameW, FrameH)
	m := w.model
	base := m.BaseLight + w.illum
	im.Fill(base)

	// Road bands slightly darker than surroundings.
	im.FillRect(0, oncomingLaneY0-2, FrameW, pocketLaneY1+2, base-0.05)
	im.FillRect(turnerLaneX0-2, pocketLaneY1+2, turnerLaneX1+2, FrameH, base-0.05)

	// Dashed lane divider between the through lane and the pocket.
	for x := 0; x < FrameW; x += 8 {
		im.FillRect(x, pocketLaneY0-1, x+4, pocketLaneY0, base+0.25*m.Contrast)
	}

	paint := func(r vision.Rect, b float64) {
		v := base + (b-m.BaseLight)*m.Contrast
		im.FillRect(r.X0, r.Y0, r.X1, r.Y1, v)
	}
	for _, v := range w.oncoming {
		paint(v.Bounds(), v.Brightness)
	}
	if w.truck != nil {
		paint(w.truck.Bounds(), w.truck.Brightness)
	}
	if r, ok := w.TurnerBounds(); ok {
		paint(r, 0.78)
	}
	if w.cfg.PedestrianRate > 0 || len(w.pedestrians) > 0 {
		// Zebra stripes across the crossing band.
		for y := oncomingLaneY0; y < pocketLaneY1; y += 4 {
			im.FillRect(CrosswalkX0, y, CrosswalkX1, y+2, base+0.2*m.Contrast)
		}
		for _, p := range w.pedestrians {
			paint(p.Bounds(), 0.72)
		}
	}

	// Weather-specific degradation.
	if w.cfg.Weather == Rain {
		w.paintRainStreaks(im)
	}
	if m.SaltPepper > 0 {
		im.AddSaltPepper(w.rng, m.SaltPepper)
	}
	im.AddGaussianNoise(w.rng, m.NoiseSigma)
	return im
}

// paintRainStreaks draws short, semi-transparent vertical streaks.
func (w *World) paintRainStreaks(im *vision.Image) {
	n := 18
	for i := 0; i < n; i++ {
		x := w.rng.Intn(FrameW)
		y := w.rng.Intn(FrameH)
		l := 2 + w.rng.Intn(4)
		for d := 0; d < l; d++ {
			cur := im.At(x, y+d)
			im.Set(x, y+d, cur+0.18)
		}
	}
	im.Clamp()
}

// RunFrames advances the world n frames, rendering each one.
func (w *World) RunFrames(n int) []*vision.Image {
	frames := make([]*vision.Image, n)
	for i := 0; i < n; i++ {
		w.Step()
		frames[i] = w.Render()
	}
	return frames
}

// Validate checks configuration invariants; NewWorld applies defaults
// so this exists for callers that construct Config programmatically
// and want early feedback.
func (c Config) Validate() error {
	if c.ArrivalRate < 0 || c.ArrivalRate > 1 {
		return fmt.Errorf("sim: arrival rate %v outside [0,1]", c.ArrivalRate)
	}
	if c.PedestrianRate < 0 || c.PedestrianRate > 1 {
		return fmt.Errorf("sim: pedestrian rate %v outside [0,1]", c.PedestrianRate)
	}
	if c.Weather != 0 && c.Weather.String() == "unknown" {
		return fmt.Errorf("sim: unknown weather %d", c.Weather)
	}
	return nil
}
