package sim

import (
	"testing"

	"safecross/internal/vision"
)

func TestExtendedWeatherNamesAndModels(t *testing.T) {
	tests := []struct {
		w    Weather
		want string
	}{
		{Fog, "fog"},
		{Night, "night"},
		{Weather(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.w.String(); got != tt.want {
			t.Fatalf("String(%d) = %q, want %q", tt.w, got, tt.want)
		}
	}
	if len(ExtendedWeathers()) != 2 {
		t.Fatal("two extended scenes expected")
	}
	// Extended scenes stay out of the paper-faithful list.
	for _, w := range AllWeathers() {
		if w == Fog || w == Night {
			t.Fatal("extended scenes must not appear in AllWeathers")
		}
	}
	fog := ModelFor(Fog)
	night := ModelFor(Night)
	day := ModelFor(Day)
	if fog.Contrast >= day.Contrast {
		t.Fatal("fog must crush contrast")
	}
	if night.BaseLight >= day.BaseLight {
		t.Fatal("night must be darker than day")
	}
	if fog.Friction < ModelFor(Rain).Friction {
		t.Fatal("fog roads are dry; friction must exceed rain")
	}
}

func TestExtendedScenesRenderAndLabel(t *testing.T) {
	for _, w := range ExtendedWeathers() {
		sc := Scenario{Weather: w, Blind: true, Danger: true, Seed: 17}
		seg, err := sc.GenerateN(16)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if !seg.Danger || seg.Weather != w {
			t.Fatalf("%v: metadata %+v", w, seg)
		}
	}
	if err := (Config{Weather: Fog}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Weather: Weather(42)}).Validate(); err == nil {
		t.Fatal("expected unknown-weather error")
	}
}

func TestFogFramesAreLowContrast(t *testing.T) {
	contrast := func(w Weather) float64 {
		world := NewWorld(Config{Weather: w, NoArrivals: true, Seed: 5, TruckPresent: true})
		world.Step()
		im := world.Render()
		// Contrast proxy: truck brightness minus road brightness.
		truck := regionMean(im, world.truck.Bounds())
		road := regionMean(im, vision.Rect{X0: 4, Y0: oncomingLaneY0 + 2, X1: 24, Y1: oncomingLaneY1 - 2})
		return truck - road
	}
	if contrast(Fog) >= contrast(Day)*0.7 {
		t.Fatalf("fog contrast (%v) should be well below day (%v)", contrast(Fog), contrast(Day))
	}
}

func TestPedestriansCrossAndExpire(t *testing.T) {
	w := NewWorld(Config{Seed: 9, NoArrivals: true})
	p := w.SpawnPedestrian(true)
	if p.VY <= 0 {
		t.Fatal("top-entry pedestrian must walk down")
	}
	if w.PedestrianOnRoad() {
		t.Fatal("pedestrian on the kerb is not on the road yet")
	}
	onRoadSeen := false
	for i := 0; i < 300 && len(w.Pedestrians()) > 0; i++ {
		w.Step()
		if w.PedestrianOnRoad() {
			onRoadSeen = true
		}
	}
	if !onRoadSeen {
		t.Fatal("pedestrian never entered the crossing band")
	}
	if len(w.Pedestrians()) != 0 {
		t.Fatal("pedestrian never finished crossing")
	}
}

func TestPedestrianSpawnRate(t *testing.T) {
	w := NewWorld(Config{Seed: 11, NoArrivals: true, PedestrianRate: 0.5})
	for i := 0; i < 40; i++ {
		w.Step()
	}
	if len(w.Pedestrians()) == 0 {
		t.Fatal("high pedestrian rate spawned nobody")
	}
	if err := (Config{PedestrianRate: 2}).Validate(); err == nil {
		t.Fatal("expected pedestrian-rate error")
	}
}

func TestPedestrianRendered(t *testing.T) {
	w := NewWorld(Config{Seed: 13, NoArrivals: true})
	p := w.SpawnPedestrian(true)
	// Walk until on the road.
	for i := 0; i < 200 && !w.PedestrianOnRoad(); i++ {
		w.Step()
	}
	im := w.Render()
	ped := regionMean(im, p.Bounds())
	road := regionMean(im, vision.Rect{X0: 4, Y0: oncomingLaneY0 + 2, X1: 24, Y1: oncomingLaneY1 - 2})
	if ped <= road+0.1 {
		t.Fatalf("pedestrian not visible: ped=%v road=%v", ped, road)
	}
}
