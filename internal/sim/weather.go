// Package sim implements the synthetic intersection that substitutes
// for the paper's closed surveillance-video dataset: lane geometry, an
// occluding truck, oncoming traffic with weather-dependent kinematics,
// a left-turning driver model, and a grayscale renderer with
// weather-specific sensor noise.
//
// The scene mirrors Fig. 1/2 of the paper: a vehicle in the left-turn
// pocket cannot see the oncoming through-lane because an opposing
// truck blocks its view; the roadside camera sees everything. The
// "danger zone" is the stretch of the oncoming lane hidden behind the
// truck, sized from weather-dependent stopping distance, exactly the
// quantity the paper says must adapt across scenes.
package sim

import "math"

// Weather identifies a scene condition. The paper's dataset has
// three: daytime (sunny), rain, and snow.
type Weather int

// Scene conditions, ordered as in the paper's Table I.
const (
	Day Weather = iota + 1
	Rain
	Snow
)

// String returns the lowercase scene name used in reports.
func (w Weather) String() string {
	switch w {
	case Day:
		return "day"
	case Rain:
		return "rain"
	case Snow:
		return "snow"
	default:
		return extendedString(w)
	}
}

// AllWeathers lists the supported conditions in report order.
func AllWeathers() []Weather { return []Weather{Day, Rain, Snow} }

// WeatherModel bundles the physical and sensor parameters of a scene
// condition.
type WeatherModel struct {
	// Friction is the tyre-road friction coefficient μ; wet and snowy
	// roads are slipperier, so stopping distances grow and the danger
	// zone must extend further (Sec. III of the paper).
	Friction float64
	// MaxSpeed is the free-flow speed of through traffic in px/frame.
	MaxSpeed float64
	// NoiseSigma is the camera's Gaussian noise level.
	NoiseSigma float64
	// SaltPepper is the fraction of speckle pixels per frame (snowfall
	// and sensor dropouts).
	SaltPepper float64
	// Contrast scales object-background separation; rain film and
	// snow glare wash the image out.
	Contrast float64
	// BaseLight is the ambient background intensity.
	BaseLight float64
}

// ModelFor returns the calibrated weather model for a condition.
func ModelFor(w Weather) WeatherModel {
	if m, ok := extendedModel(w); ok {
		return m
	}
	switch w {
	case Rain:
		return WeatherModel{
			Friction:   0.45,
			MaxSpeed:   1.3,
			NoiseSigma: 0.07,
			SaltPepper: 0.002,
			Contrast:   0.72,
			BaseLight:  0.30,
		}
	case Snow:
		return WeatherModel{
			Friction:   0.30,
			MaxSpeed:   1.0,
			NoiseSigma: 0.05,
			SaltPepper: 0.015,
			Contrast:   0.80,
			BaseLight:  0.48,
		}
	default: // Day
		return WeatherModel{
			Friction:   0.80,
			MaxSpeed:   1.7,
			NoiseSigma: 0.02,
			SaltPepper: 0,
			Contrast:   1.0,
			BaseLight:  0.33,
		}
	}
}

// gravity is the gravitational constant expressed in the simulator's
// pixel/frame unit system. It is calibrated so that day-time stopping
// distances span a realistic fraction of the camera's view of the
// oncoming lane.
const gravity = 0.09

// StoppingDistance returns v²/(2μg): how far a vehicle travelling at
// speed px/frame needs to stop on a surface with friction mu.
func StoppingDistance(speed, mu float64) float64 {
	if mu <= 0 {
		return math.Inf(1)
	}
	return speed * speed / (2 * mu * gravity)
}

// TurnDuration is the number of frames an average left turn occupies
// the conflict point.
const TurnDuration = 16

// ClearingThreshold returns the distance an oncoming vehicle at the
// given speed must be from the conflict point for a left turn in
// front of it to be safe: the distance it covers during the turn plus
// its stopping distance on the given surface. This is the
// speed-dependent "gap" judgement the paper's introduction cites as
// the core left-turn hazard.
func ClearingThreshold(speed, friction float64) float64 {
	return speed*TurnDuration + StoppingDistance(speed, friction)
}

// DangerZoneLength returns the length of the blind stretch that must
// be watched under the given weather: the clearing threshold of a
// free-flow-speed vehicle, the worst case the zone must cover.
func DangerZoneLength(m WeatherModel) float64 {
	return ClearingThreshold(m.MaxSpeed, m.Friction)
}
