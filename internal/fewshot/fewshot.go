// Package fewshot implements the paper's few-shot-learning (FL)
// module: Model-Agnostic Meta-Learning (MAML) with its inner/outer
// optimisation loops (Eqs. 1–2 of the paper), N-way K-shot episode
// sampling, and the pretrained-model adaptation used to build the
// rain and snow models from the daytime model (Table V).
//
// The outer update uses the first-order MAML approximation (FOMAML):
// the query-loss gradient at the adapted parameters is applied to the
// meta parameters directly, omitting the second-derivative term. This
// is the standard practical simplification and preserves the
// behaviour the paper evaluates — fast adaptation from a handful of
// examples.
package fewshot

import (
	"fmt"
	"io"
	"math/rand"

	"safecross/internal/dataset"
	"safecross/internal/nn"
	"safecross/internal/video"
)

// Task is one meta-learning episode: adapt on Support, evaluate on
// Query.
type Task struct {
	Support []*dataset.Clip
	Query   []*dataset.Clip
}

// SampleTask draws a class-balanced N-way K-shot episode (N = the
// dataset's two classes) with kShot support and qQuery query clips
// per class from the pool.
func SampleTask(pool []*dataset.Clip, kShot, qQuery int, rng *rand.Rand) (Task, error) {
	if kShot <= 0 || qQuery < 0 {
		return Task{}, fmt.Errorf("fewshot: kShot=%d qQuery=%d invalid", kShot, qQuery)
	}
	byClass := make(map[int][]*dataset.Clip, dataset.NumClasses)
	for _, c := range pool {
		byClass[c.Label] = append(byClass[c.Label], c)
	}
	var task Task
	for label := 0; label < dataset.NumClasses; label++ {
		clips := byClass[label]
		need := kShot + qQuery
		if len(clips) < need {
			return Task{}, fmt.Errorf("fewshot: class %d has %d clips, need %d", label, len(clips), need)
		}
		perm := rng.Perm(len(clips))
		for i := 0; i < kShot; i++ {
			task.Support = append(task.Support, clips[perm[i]])
		}
		for i := kShot; i < need; i++ {
			task.Query = append(task.Query, clips[perm[i]])
		}
	}
	return task, nil
}

// Config controls MAML meta-training.
type Config struct {
	// InnerSteps is k, the number of inner-loop gradient updates.
	InnerSteps int
	// InnerLR is α, the inner-loop learning rate (Eq. 1).
	InnerLR float64
	// OuterLR is β, the meta learning rate (Eq. 2).
	OuterLR float64
	// MetaIters is the number of outer-loop iterations.
	MetaIters int
	// TasksPerIter is the number of episodes averaged per outer
	// update.
	TasksPerIter int
	// KShot and QQuery size each episode per class.
	KShot, QQuery int
	// Seed drives episode sampling.
	Seed int64
	// Log, when non-nil, receives one line per meta iteration.
	Log io.Writer
}

func (c Config) fill() Config {
	if c.InnerSteps == 0 {
		c.InnerSteps = 3
	}
	if c.InnerLR == 0 {
		c.InnerLR = 0.02
	}
	if c.OuterLR == 0 {
		c.OuterLR = 0.002
	}
	if c.MetaIters == 0 {
		c.MetaIters = 10
	}
	if c.TasksPerIter == 0 {
		c.TasksPerIter = 2
	}
	if c.KShot == 0 {
		c.KShot = 4
	}
	if c.QQuery == 0 {
		c.QQuery = 4
	}
	return c
}

// MAML holds the meta-initialisation θ and the machinery to adapt it.
type MAML struct {
	builder video.Builder
	meta    video.Classifier
}

// New creates a MAML learner whose meta parameters start at the
// builder's initialisation.
func New(builder video.Builder) (*MAML, error) {
	meta, err := builder()
	if err != nil {
		return nil, fmt.Errorf("fewshot: build meta model: %w", err)
	}
	return &MAML{builder: builder, meta: meta}, nil
}

// NewFromPretrained creates a MAML learner whose meta parameters are
// copied from an existing model (e.g. the trained daytime model).
func NewFromPretrained(builder video.Builder, pretrained video.Classifier) (*MAML, error) {
	m, err := New(builder)
	if err != nil {
		return nil, err
	}
	if err := nn.CopyParams(m.meta.Params(), pretrained.Params()); err != nil {
		return nil, fmt.Errorf("fewshot: copy pretrained weights: %w", err)
	}
	return m, nil
}

// Meta returns the classifier holding the current meta parameters.
func (m *MAML) Meta() video.Classifier { return m.meta }

// clone builds a fresh network with the meta parameters copied in.
func (m *MAML) clone() (video.Classifier, error) {
	c, err := m.builder()
	if err != nil {
		return nil, fmt.Errorf("fewshot: clone: %w", err)
	}
	if err := nn.CopyParams(c.Params(), m.meta.Params()); err != nil {
		return nil, fmt.Errorf("fewshot: clone weights: %w", err)
	}
	return c, nil
}

// innerAdapt runs k SGD steps on the support set (Eq. 1) against the
// given model in place.
func innerAdapt(model video.Classifier, support []*dataset.Clip, steps int, lr float64) error {
	params := model.Params()
	model.SetTrain(true)
	defer model.SetTrain(false)
	for s := 0; s < steps; s++ {
		nn.ZeroGrad(params)
		for _, clip := range support {
			if err := accumulateGrad(model, clip); err != nil {
				return err
			}
		}
		nn.ScaleGrads(params, 1/float64(len(support)))
		for _, p := range params {
			if err := p.Value.AddScaled(p.Grad, -lr); err != nil {
				return fmt.Errorf("fewshot: inner update %q: %w", p.Name, err)
			}
		}
	}
	return nil
}

// accumulateGrad adds one clip's loss gradient into the model's
// parameter gradients.
func accumulateGrad(model video.Classifier, clip *dataset.Clip) error {
	logits, err := model.Forward(clip.Input)
	if err != nil {
		return fmt.Errorf("fewshot: forward: %w", err)
	}
	_, dlogits, err := nn.SoftmaxCrossEntropy(logits, clip.Label)
	if err != nil {
		return fmt.Errorf("fewshot: loss: %w", err)
	}
	if err := model.Backward(dlogits); err != nil {
		return fmt.Errorf("fewshot: backward: %w", err)
	}
	return nil
}

// MetaTrain runs the outer loop over episodes sampled from pool,
// updating the meta initialisation so that a few inner steps suffice
// on new tasks.
func (m *MAML) MetaTrain(pool []*dataset.Clip, cfg Config) error {
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	metaParams := m.meta.Params()
	for iter := 0; iter < cfg.MetaIters; iter++ {
		nn.ZeroGrad(metaParams)
		totalQueryLoss := 0.0
		queryCount := 0
		for ti := 0; ti < cfg.TasksPerIter; ti++ {
			task, err := SampleTask(pool, cfg.KShot, cfg.QQuery, rng)
			if err != nil {
				return fmt.Errorf("fewshot: meta iter %d: %w", iter, err)
			}
			adapted, err := m.clone()
			if err != nil {
				return err
			}
			if err := innerAdapt(adapted, task.Support, cfg.InnerSteps, cfg.InnerLR); err != nil {
				return fmt.Errorf("fewshot: meta iter %d inner loop: %w", iter, err)
			}
			// Query gradient at the adapted parameters (Eq. 2,
			// first-order approximation).
			adaptedParams := adapted.Params()
			nn.ZeroGrad(adaptedParams)
			adapted.SetTrain(true)
			for _, clip := range task.Query {
				logits, err := adapted.Forward(clip.Input)
				if err != nil {
					return fmt.Errorf("fewshot: query forward: %w", err)
				}
				loss, dlogits, err := nn.SoftmaxCrossEntropy(logits, clip.Label)
				if err != nil {
					return fmt.Errorf("fewshot: query loss: %w", err)
				}
				totalQueryLoss += loss
				queryCount++
				if err := adapted.Backward(dlogits); err != nil {
					return fmt.Errorf("fewshot: query backward: %w", err)
				}
			}
			adapted.SetTrain(false)
			scale := 1 / float64(len(task.Query))
			for i, p := range metaParams {
				if err := p.Grad.AddScaled(adaptedParams[i].Grad, scale); err != nil {
					return fmt.Errorf("fewshot: meta grad %q: %w", p.Name, err)
				}
			}
		}
		nn.ScaleGrads(metaParams, 1/float64(cfg.TasksPerIter))
		nn.ClipGradNorm(metaParams, 5)
		for _, p := range metaParams {
			if err := p.Value.AddScaled(p.Grad, -cfg.OuterLR); err != nil {
				return fmt.Errorf("fewshot: meta update %q: %w", p.Name, err)
			}
		}
		if cfg.Log != nil && queryCount > 0 {
			fmt.Fprintf(cfg.Log, "maml iter %d/%d query loss %.4f\n",
				iter+1, cfg.MetaIters, totalQueryLoss/float64(queryCount))
		}
	}
	return nil
}

// Adapt produces a task-specific model: a clone of the meta
// parameters fine-tuned on the support set with the inner-loop rule.
// This is the runtime path SafeCross uses to build the rain and snow
// models from the daytime initialisation.
func (m *MAML) Adapt(support []*dataset.Clip, steps int, lr float64) (video.Classifier, error) {
	if len(support) == 0 {
		return nil, fmt.Errorf("fewshot: empty support set")
	}
	if steps <= 0 || lr <= 0 {
		return nil, fmt.Errorf("fewshot: steps=%d lr=%v invalid", steps, lr)
	}
	adapted, err := m.clone()
	if err != nil {
		return nil, err
	}
	if err := innerAdapt(adapted, support, steps, lr); err != nil {
		return nil, err
	}
	return adapted, nil
}

// EvalTask runs one full episode: adapt a clone of the meta
// parameters on the support set (Eq. 1, train-mode forwards,
// untouched by the engine), then score the adapted model on the query
// set through the unified batch engine — the eval forwards ride
// infer workspaces via video.EvaluateWS, so a caller evaluating many
// episodes with one workspace pays no per-episode eval allocation.
// It returns the adapted classifier and its query confusion matrix. A
// nil ws is replaced by a throwaway workspace.
func (m *MAML) EvalTask(task Task, steps int, lr float64, ws *nn.Workspace) (video.Classifier, *nn.ConfusionMatrix, error) {
	adapted, err := m.Adapt(task.Support, steps, lr)
	if err != nil {
		return nil, nil, err
	}
	cm, err := video.EvaluateWS(adapted, task.Query, ws)
	if err != nil {
		return nil, nil, fmt.Errorf("fewshot: query eval: %w", err)
	}
	return adapted, cm, nil
}

// AdaptFromPretrained fine-tunes a copy of a pretrained model on a
// small support set with the MAML inner-loop rule (full-batch SGD) —
// the fast runtime adaptation path.
func AdaptFromPretrained(builder video.Builder, pretrained video.Classifier, support []*dataset.Clip, steps int, lr float64) (video.Classifier, error) {
	m, err := NewFromPretrained(builder, pretrained)
	if err != nil {
		return nil, err
	}
	return m.Adapt(support, steps, lr)
}

// FineTune clones the pretrained model and trains it on the support
// set with the full training loop — the "with few-shot learning" arm
// of the paper's Table V ablation, where the daytime model seeds the
// rain and snow models and the advantage comes from the
// initialisation.
func FineTune(builder video.Builder, pretrained video.Classifier, support []*dataset.Clip, cfg video.TrainConfig) (video.Classifier, error) {
	if len(support) == 0 {
		return nil, fmt.Errorf("fewshot: empty support set")
	}
	m, err := NewFromPretrained(builder, pretrained)
	if err != nil {
		return nil, err
	}
	adapted, err := m.clone()
	if err != nil {
		return nil, err
	}
	if _, err := video.Train(adapted, support, cfg); err != nil {
		return nil, fmt.Errorf("fewshot: fine-tune: %w", err)
	}
	return adapted, nil
}
