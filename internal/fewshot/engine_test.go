package fewshot

// Engine-contract coverage for MAML-adapted models: an adapted
// classifier's pooled batch eval must be bit-identical (==) to its
// allocating per-clip Forward, and EvalTask — the episode runner that
// rides the unified engine — must reproduce the adapt-then-Evaluate
// composition exactly.

import (
	"testing"

	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/tensor"
	"safecross/internal/video"
)

func TestAdaptedForwardBatchBitIdentical(t *testing.T) {
	m, err := New(smallBuilder(21))
	if err != nil {
		t.Fatal(err)
	}
	support := makeClips(t, 4, sim.Rain, 300)
	adapted, err := m.Adapt(support, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	query := makeClips(t, 5, sim.Rain, 400)

	adapted.SetTrain(false)
	xs := make([]*tensor.Tensor, len(query))
	refs := make([]*tensor.Tensor, len(query))
	for i, c := range query {
		xs[i] = c.Input
		ref, err := adapted.Forward(c.Input)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	engine := video.Engine(adapted)
	got, err := engine.ForwardBatch(xs, nn.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("ForwardBatch returned %d logit sets for %d clips", len(got), len(refs))
	}
	for i := range got {
		if len(got[i].Data) != len(refs[i].Data) {
			t.Fatalf("clip %d: shape %v vs %v", i, got[i].Shape, refs[i].Shape)
		}
		for j := range got[i].Data {
			if got[i].Data[j] != refs[i].Data[j] {
				t.Fatalf("clip %d logit %d: ForwardBatch %v != Forward %v",
					i, j, got[i].Data[j], refs[i].Data[j])
			}
		}
	}
}

func TestEvalTaskMatchesAdaptThenEvaluate(t *testing.T) {
	m, err := New(smallBuilder(22))
	if err != nil {
		t.Fatal(err)
	}
	task := Task{
		Support: makeClips(t, 4, sim.Rain, 500),
		Query:   makeClips(t, 6, sim.Rain, 600),
	}

	adapted, cm, err := m.EvalTask(task, 2, 0.05, nn.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if adapted == nil {
		t.Fatal("EvalTask returned no adapted model")
	}
	if cm.Total() != len(task.Query) {
		t.Fatalf("confusion matrix covers %d clips, want %d", cm.Total(), len(task.Query))
	}

	// The inner loop is deterministic, so adapting again and running
	// the plain evaluator must land on the identical matrix.
	ref, err := m.Adapt(task.Support, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, err := video.Evaluate(ref, task.Query)
	if err != nil {
		t.Fatal(err)
	}
	for truth := 0; truth < 2; truth++ {
		for pred := 0; pred < 2; pred++ {
			if cm.Count(truth, pred) != want.Count(truth, pred) {
				t.Fatalf("cell (%d,%d): EvalTask %d != adapt+Evaluate %d",
					truth, pred, cm.Count(truth, pred), want.Count(truth, pred))
			}
		}
	}

	if _, _, err := m.EvalTask(Task{}, 2, 0.05, nil); err == nil {
		t.Fatal("expected error for an empty task")
	}
}
