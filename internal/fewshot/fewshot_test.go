package fewshot

import (
	"math/rand"
	"testing"

	"safecross/internal/dataset"
	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

func smallBuilder(seed int64) video.Builder {
	cfg := video.SlowFastConfig{T: 16, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: seed}
	return video.SlowFastBuilder(cfg)
}

func makeClips(t *testing.T, n int, weather sim.Weather, seed int64) []*dataset.Clip {
	t.Helper()
	cfg := vision.DefaultVPConfig()
	clips := make([]*dataset.Clip, 0, n)
	for i := 0; i < n; i++ {
		sc := sim.Scenario{
			Weather: weather,
			Danger:  i%2 == 0,
			Blind:   i%4 < 2,
			Seed:    seed + int64(i)*101,
		}
		seg, err := sc.GenerateN(16)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := dataset.FromSegment(seg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clips = append(clips, clip)
	}
	return clips
}

func TestSampleTaskBalancedAndDisjoint(t *testing.T) {
	pool := makeClips(t, 16, sim.Day, 50)
	rng := rand.New(rand.NewSource(1))
	task, err := SampleTask(pool, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Support) != 4 || len(task.Query) != 6 {
		t.Fatalf("support/query = %d/%d, want 4/6", len(task.Support), len(task.Query))
	}
	sup := dataset.CountByLabel(task.Support)
	if sup[dataset.ClassDanger] != 2 || sup[dataset.ClassSafe] != 2 {
		t.Fatalf("support not balanced: %v", sup)
	}
	seen := make(map[*dataset.Clip]bool)
	for _, c := range task.Support {
		seen[c] = true
	}
	for _, c := range task.Query {
		if seen[c] {
			t.Fatal("support and query overlap")
		}
	}
}

func TestSampleTaskValidation(t *testing.T) {
	pool := makeClips(t, 4, sim.Day, 60)
	rng := rand.New(rand.NewSource(2))
	if _, err := SampleTask(pool, 0, 1, rng); err == nil {
		t.Fatal("expected kShot error")
	}
	if _, err := SampleTask(pool, 10, 10, rng); err == nil {
		t.Fatal("expected insufficient-clips error")
	}
}

func TestNewFromPretrainedCopiesWeights(t *testing.T) {
	b := smallBuilder(3)
	pre, err := b()
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the pretrained weights so the copy is observable.
	pre.Params()[0].Value.Fill(0.123)
	m, err := NewFromPretrained(b, pre)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta().Params()[0].Value.Data[0] != 0.123 {
		t.Fatal("pretrained weights not copied into meta parameters")
	}
}

func TestAdaptValidation(t *testing.T) {
	m, err := New(smallBuilder(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Adapt(nil, 3, 0.01); err == nil {
		t.Fatal("expected empty-support error")
	}
	clips := makeClips(t, 2, sim.Rain, 70)
	if _, err := m.Adapt(clips, 0, 0.01); err == nil {
		t.Fatal("expected steps error")
	}
}

func TestAdaptLeavesMetaUntouched(t *testing.T) {
	m, err := New(smallBuilder(5))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Meta().Params()[0].Value.Clone()
	support := makeClips(t, 4, sim.Rain, 80)
	adapted, err := m.Adapt(support, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	after := m.Meta().Params()[0].Value
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("Adapt must not modify meta parameters")
		}
	}
	// The adapted model must differ from the meta model.
	diff := false
	ap := adapted.Params()
	mp := m.Meta().Params()
	for i := range ap {
		for j := range ap[i].Value.Data {
			if ap[i].Value.Data[j] != mp[i].Value.Data[j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("adaptation changed nothing")
	}
}

// TestAdaptImprovesSupportLoss verifies the inner loop actually
// reduces loss on its support set.
func TestAdaptImprovesSupportLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	m, err := New(smallBuilder(6))
	if err != nil {
		t.Fatal(err)
	}
	support := makeClips(t, 8, sim.Snow, 90)

	lossOn := func(model video.Classifier) float64 {
		total := 0.0
		for _, c := range support {
			logits, err := model.Forward(c.Input)
			if err != nil {
				t.Fatal(err)
			}
			l, _, err := nn.SoftmaxCrossEntropy(logits, c.Label)
			if err != nil {
				t.Fatal(err)
			}
			total += l
		}
		return total / float64(len(support))
	}

	before := lossOn(m.Meta())
	adapted, err := m.Adapt(support, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	after := lossOn(adapted)
	if after >= before {
		t.Fatalf("inner loop did not reduce support loss: %v → %v", before, after)
	}
}

// TestMetaTrainImprovesAdaptation runs a short meta-training phase on
// day data and checks that adaptation to a new (snow) task from the
// meta-initialisation beats adaptation from a random initialisation.
func TestMetaTrainImprovesAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-training test skipped in -short mode")
	}
	pool := makeClips(t, 24, sim.Day, 200)
	m, err := New(smallBuilder(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		InnerSteps: 2, InnerLR: 0.05, OuterLR: 0.01,
		MetaIters: 6, TasksPerIter: 2, KShot: 3, QQuery: 3, Seed: 9,
	}
	if err := m.MetaTrain(pool, cfg); err != nil {
		t.Fatal(err)
	}

	// New scene with little data.
	snowSupport := makeClips(t, 6, sim.Snow, 400)
	snowTest := makeClips(t, 16, sim.Snow, 500)

	adapted, err := m.Adapt(snowSupport, 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cmMeta, err := video.Evaluate(adapted, snowTest)
	if err != nil {
		t.Fatal(err)
	}

	scratch, err := smallBuilder(99)()
	if err != nil {
		t.Fatal(err)
	}
	if err := innerAdapt(scratch, snowSupport, 6, 0.05); err != nil {
		t.Fatal(err)
	}
	cmScratch, err := video.Evaluate(scratch, snowTest)
	if err != nil {
		t.Fatal(err)
	}

	// Meta-initialised adaptation should not be worse; require a
	// non-strict improvement to keep the test robust to seed noise.
	if cmMeta.Top1()+1e-9 < cmScratch.Top1()-0.15 {
		t.Fatalf("meta-adaptation (%v) much worse than scratch (%v)", cmMeta.Top1(), cmScratch.Top1())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.fill()
	if c.InnerSteps == 0 || c.InnerLR == 0 || c.OuterLR == 0 || c.MetaIters == 0 ||
		c.TasksPerIter == 0 || c.KShot == 0 || c.QQuery == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}
