package safecross

import (
	"fmt"

	"safecross/internal/sim"
	"safecross/internal/vision"
)

// PedestrianMonitor extends the framework to the paper's future-work
// question of blind-spot pedestrian warning. Pedestrians are too
// small and slow for the clip classifier, but exactly what the VP
// machinery detects well: small movers inside the crosswalk band,
// discriminated from vehicles by blob size.
type PedestrianMonitor struct {
	bg *vision.BackgroundModel

	// zone is the crosswalk region monitored.
	zone vision.Rect
	// threshold binarises the foreground difference.
	threshold float64
	// maxArea separates pedestrian-sized blobs from vehicles.
	maxArea int
	// minArea rejects single-pixel noise.
	minArea int
}

// PedestrianAlert is the monitor's per-frame output.
type PedestrianAlert struct {
	// Crossing reports a pedestrian-sized mover inside the crosswalk.
	Crossing bool
	// Blobs is the number of pedestrian-sized movers found.
	Blobs int
}

// NewPedestrianMonitor creates a monitor over the simulator's
// crosswalk geometry.
func NewPedestrianMonitor() *PedestrianMonitor {
	return &PedestrianMonitor{
		bg:        vision.NewBackgroundModel(0.04),
		zone:      sim.CrosswalkZone(),
		threshold: 0.12,
		minArea:   2,
		maxArea:   18, // vehicles are ≥ 9×7 px; pedestrians ≤ 2×3 (+dilation)
	}
}

// Zone returns the monitored crosswalk rectangle.
func (m *PedestrianMonitor) Zone() vision.Rect { return m.zone }

// Observe ingests one camera frame and reports pedestrian activity in
// the crosswalk.
func (m *PedestrianMonitor) Observe(frame *vision.Image) (PedestrianAlert, error) {
	mask, err := m.bg.Foreground(frame, m.threshold)
	if err != nil {
		return PedestrianAlert{}, fmt.Errorf("safecross: pedestrian monitor: %w", err)
	}
	mask = vision.Open(mask, 1)
	var alert PedestrianAlert
	for _, b := range vision.ConnectedComponents(mask, m.minArea) {
		if b.Area > m.maxArea {
			continue // vehicle-sized: the clip classifier's job
		}
		if b.Bounds.Overlaps(m.zone) {
			alert.Crossing = true
			alert.Blobs++
		}
	}
	return alert, nil
}
