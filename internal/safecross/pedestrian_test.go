package safecross

import (
	"testing"

	"safecross/internal/sim"
)

func TestPedestrianMonitorDetectsCrossing(t *testing.T) {
	mon := NewPedestrianMonitor()
	world := sim.NewWorld(sim.Config{Weather: sim.Day, NoArrivals: true, Seed: 21})

	// Prime the background on an empty scene.
	for i := 0; i < 10; i++ {
		world.Step()
		if _, err := mon.Observe(world.Render()); err != nil {
			t.Fatal(err)
		}
	}
	world.SpawnPedestrian(true)
	alerted := false
	groundTruthSeen := false
	for i := 0; i < 200 && len(world.Pedestrians()) > 0; i++ {
		world.Step()
		alert, err := mon.Observe(world.Render())
		if err != nil {
			t.Fatal(err)
		}
		if world.PedestrianOnRoad() {
			groundTruthSeen = true
			if alert.Crossing {
				alerted = true
			}
		}
	}
	if !groundTruthSeen {
		t.Fatal("test setup broken: pedestrian never on road")
	}
	if !alerted {
		t.Fatal("monitor never alerted on a crossing pedestrian")
	}
}

func TestPedestrianMonitorIgnoresVehicles(t *testing.T) {
	mon := NewPedestrianMonitor()
	world := sim.NewWorld(sim.Config{Weather: sim.Day, NoArrivals: true, Seed: 23})
	for i := 0; i < 10; i++ {
		world.Step()
		if _, err := mon.Observe(world.Render()); err != nil {
			t.Fatal(err)
		}
	}
	// Drive a vehicle through the crosswalk band: it must not raise a
	// pedestrian alert (it is vehicle-sized).
	v := world.SpawnOncoming(float64(sim.CrosswalkX1 + 30))
	for i := 0; i < 60; i++ {
		world.Step()
		alert, err := mon.Observe(world.Render())
		if err != nil {
			t.Fatal(err)
		}
		if alert.Crossing {
			t.Fatalf("vehicle at x=%v misreported as pedestrian", v.X)
		}
	}
}

func TestPedestrianMonitorQuietOnEmptyScene(t *testing.T) {
	mon := NewPedestrianMonitor()
	world := sim.NewWorld(sim.Config{Weather: sim.Day, NoArrivals: true, Seed: 25})
	for i := 0; i < 60; i++ {
		world.Step()
		alert, err := mon.Observe(world.Render())
		if err != nil {
			t.Fatal(err)
		}
		if i > 5 && alert.Crossing {
			t.Fatal("false pedestrian alert on empty scene")
		}
	}
	if mon.Zone().Empty() {
		t.Fatal("monitored zone must not be empty")
	}
}
