// Package safecross is the paper's primary contribution: the
// framework that oversees an intersection and delivers blind-area
// warnings to left-turning vehicles in real time, adapting to weather
// scenes. It composes the four modules the paper describes:
//
//   - VP  — video pre-processing (internal/vision): dynamic
//     background subtraction, morphology, occupancy-grid remapping.
//   - VC  — video classification (internal/video): SlowFast clips →
//     danger / safe.
//   - FL  — few-shot learning (internal/fewshot): rain and snow
//     models adapted from the daytime model.
//   - MS  — model switching (internal/pipeswitch + internal/weather):
//     scene detection triggers a PipeSwitch model swap in
//     milliseconds.
//
// The Framework consumes camera frames one at a time and emits a
// Decision per frame once its clip buffer is full.
package safecross

import (
	"context"
	"fmt"
	"sync"
	"time"

	"safecross/internal/gpusim"
	"safecross/internal/nn"
	"safecross/internal/pipeswitch"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
	"safecross/internal/video"
	"safecross/internal/vision"
	"safecross/internal/weather"
)

// Decision is the framework's per-frame output.
type Decision struct {
	// Ready reports whether the clip buffer held enough frames to
	// classify; when false, Safe is not meaningful.
	Ready bool
	// Safe is the warning verdict: true means the blind area is
	// judged clear and the left turn may proceed.
	Safe bool
	// Scene is the detected weather condition.
	Scene sim.Weather
	// SceneChanged reports that this frame completed a scene change.
	SceneChanged bool
	// Switch describes the model switch performed on a scene change
	// (nil otherwise).
	Switch *pipeswitch.Report
}

// Config configures a Framework.
type Config struct {
	// VP is the video pre-processing configuration (defaults to
	// vision.DefaultVPConfig).
	VP vision.VPConfig
	// ClipLen is the number of grids per classification clip
	// (default sim.SegmentFrames, the paper's 32).
	ClipLen int
	// InitialScene is the scene assumed before the detector settles
	// (default sim.Day).
	InitialScene sim.Weather
	// Debounce is the scene-change debounce window in frames.
	Debounce int
	// SafeStreak is the number of consecutive safe classifications
	// required before a TURN advisory is issued (default 2). A single
	// frame's verdict never releases a turn; danger takes effect
	// immediately. This asymmetric hysteresis is the fail-safe bias a
	// warning system must have.
	SafeStreak int
	// Metrics, when set, records per-frame stage timings
	// (scene-detect, VP pre-processing, classification) and a frame
	// counter into the registry. Nil disables recording at no cost.
	Metrics *telemetry.Registry
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.VP.GridW == 0 {
		c.VP = vision.DefaultVPConfig()
	}
	if c.ClipLen == 0 {
		c.ClipLen = sim.SegmentFrames
	}
	if c.InitialScene == 0 {
		c.InitialScene = sim.Day
	}
	if c.SafeStreak == 0 {
		c.SafeStreak = 2
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.ClipLen < 1 {
		return fmt.Errorf("safecross: clip length %d, need at least 1", c.ClipLen)
	}
	if c.SafeStreak < 1 {
		return fmt.Errorf("safecross: safe streak %d, need at least 1", c.SafeStreak)
	}
	if c.Debounce < 0 {
		return fmt.Errorf("safecross: negative debounce %d", c.Debounce)
	}
	return nil
}

// ClassifyFunc routes a ready clip to an external inference service
// (the serving plane in internal/serve) and returns the predicted
// class label. When a Framework is built with one (NewServed), it
// performs no local classification or model switching — the service
// owns model residency, batching, and GPU scheduling. The context
// bounds the request (deadline and cancellation travel with it), and
// critical reports the framework's fail-safe hint: true while the
// intersection has not yet re-established its safe streak, so the
// service should treat the clip as priority traffic.
type ClassifyFunc func(ctx context.Context, scene sim.Weather, clip *tensor.Tensor, critical bool) (int, error)

// Framework is the SafeCross runtime.
type Framework struct {
	mu sync.Mutex

	cfg      Config
	vp       *vision.Preprocessor
	monitor  *weather.Monitor
	models   map[sim.Weather]video.Classifier
	mgr      *pipeswitch.Manager
	classify ClassifyFunc

	ring       []*vision.Image
	safeStreak int
	// ws is the framework's persistent inference scratch (guarded by
	// mu like the rest of the per-frame state): local classification
	// forwards reuse it across frames, so the steady-state clip path
	// stops allocating activation buffers.
	ws *nn.Workspace

	metrics frameMetrics
}

// frameMetrics times the camera-local pipeline stages of
// ProcessFrameContext. All handles are nil-safe, so a framework built
// without Config.Metrics records nowhere.
type frameMetrics struct {
	frames       *telemetry.Counter
	sceneDetect  *telemetry.Histogram
	vp           *telemetry.Histogram
	classify     *telemetry.Histogram
	frameVerdict *telemetry.Histogram
}

func newFrameMetrics(reg *telemetry.Registry) frameMetrics {
	if reg == nil {
		return frameMetrics{}
	}
	return frameMetrics{
		frames:      reg.Counter("safecross_frames_total", "camera frames processed"),
		sceneDetect: reg.Histogram("safecross_scene_detect_seconds", "per-frame weather scene detection", telemetry.UnitSeconds),
		vp:          reg.Histogram("safecross_vp_seconds", "per-frame VP pre-processing into the clip ring", telemetry.UnitSeconds),
		classify:    reg.Histogram("safecross_classify_seconds", "per-clip classification (local forward or serving-plane round trip)", telemetry.UnitSeconds),
		frameVerdict: reg.Histogram("safecross_frame_verdict_seconds",
			"whole frame ingest to verdict: detection, switching, VP, and classification end to end — the latency the warning-path SLO is judged on",
			telemetry.UnitSeconds),
	}
}

// New assembles a Framework from per-scene classifiers, a fitted
// weather detector, and a model-switch manager. Every scene in models
// must be registered with the manager under sim.Weather.String().
func New(cfg Config, models map[sim.Weather]video.Classifier, det *weather.Detector, mgr *pipeswitch.Manager) (*Framework, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("safecross: no classifiers")
	}
	if det == nil {
		return nil, fmt.Errorf("safecross: nil weather detector")
	}
	if mgr == nil {
		return nil, fmt.Errorf("safecross: nil model-switch manager")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, ok := models[cfg.InitialScene]; !ok {
		return nil, fmt.Errorf("safecross: no classifier for initial scene %v", cfg.InitialScene)
	}
	f := &Framework{
		cfg:     cfg,
		vp:      vision.NewPreprocessor(cfg.VP),
		monitor: weather.NewMonitor(det, cfg.InitialScene, cfg.Debounce),
		models:  models,
		mgr:     mgr,
		metrics: newFrameMetrics(cfg.Metrics),
	}
	if _, err := mgr.Activate(cfg.InitialScene.String()); err != nil {
		return nil, fmt.Errorf("safecross: activate initial scene: %w", err)
	}
	return f, nil
}

// NewDefault builds a fully wired framework on a fresh simulated GPU:
// the three built-in model manifests are registered under their
// scenes and the weather detector is fitted from the simulator.
func NewDefault(cfg Config, models map[sim.Weather]video.Classifier) (*Framework, error) {
	det, err := weather.FitFromSim(20, 12345)
	if err != nil {
		return nil, fmt.Errorf("safecross: fit weather detector: %w", err)
	}
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("safecross: %w", err)
	}
	mgr := pipeswitch.NewManager(dev)
	manifests := map[sim.Weather]pipeswitch.Model{
		sim.Day:  pipeswitch.SafeCrossSlowFast(),
		sim.Rain: pipeswitch.SafeCrossSlowFast(),
		sim.Snow: pipeswitch.SafeCrossSlowFast(),
	}
	for scene := range models {
		m := manifests[scene]
		m.Name = m.Name + "-" + scene.String()
		if err := mgr.Register(scene.String(), m); err != nil {
			return nil, fmt.Errorf("safecross: %w", err)
		}
	}
	return New(cfg, models, det, mgr)
}

// NewServed assembles a Framework whose classification path is an
// external inference service instead of locally owned models: scene
// detection and VP pre-processing stay in-process (they are cheap and
// camera-local), while every ready clip is submitted through classify.
// The service is responsible for per-scene model routing and
// switching, so Decision.Switch is always nil and Manager returns nil.
func NewServed(cfg Config, classify ClassifyFunc, det *weather.Detector) (*Framework, error) {
	if classify == nil {
		return nil, fmt.Errorf("safecross: nil classify func")
	}
	if det == nil {
		return nil, fmt.Errorf("safecross: nil weather detector")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Framework{
		cfg:      cfg,
		vp:       vision.NewPreprocessor(cfg.VP),
		monitor:  weather.NewMonitor(det, cfg.InitialScene, cfg.Debounce),
		classify: classify,
		metrics:  newFrameMetrics(cfg.Metrics),
	}, nil
}

// Scene returns the currently settled weather scene.
func (f *Framework) Scene() sim.Weather {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.monitor.Current()
}

// Manager exposes the model-switch manager (for SLO inspection). It
// is nil for served frameworks (NewServed), where the inference
// service owns switching.
func (f *Framework) Manager() *pipeswitch.Manager { return f.mgr }

// ProcessFrame ingests one camera frame with a background context; see
// ProcessFrameContext.
func (f *Framework) ProcessFrame(frame *vision.Image) (*Decision, error) {
	return f.ProcessFrameContext(context.Background(), frame)
}

// ProcessFrameContext ingests one camera frame: scene detection
// (possibly switching models), VP pre-processing into the clip ring,
// and — once the ring is full — classification into a warning
// decision. The context travels to the classify path: served
// frameworks pass it (with its deadline and cancellation) to their
// ClassifyFunc, together with the fail-safe criticality hint — a clip
// is critical while the intersection has not re-established its safe
// streak, i.e. whenever the current advisory is (or is about to be)
// "don't turn".
func (f *Framework) ProcessFrameContext(ctx context.Context, frame *vision.Image) (*Decision, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	d := &Decision{}
	f.metrics.frames.Inc()
	frameStart := time.Now()
	detectStart := frameStart
	scene, changed := f.monitor.Observe(frame)
	f.metrics.sceneDetect.ObserveDuration(time.Since(detectStart))
	d.Scene = scene
	d.SceneChanged = changed
	if changed && f.classify == nil {
		// Served frameworks skip this: the serving plane routes each
		// clip to a warm worker and switches models itself.
		if _, ok := f.models[scene]; !ok {
			return nil, fmt.Errorf("safecross: no classifier for scene %v", scene)
		}
		rep, err := f.mgr.Activate(scene.String())
		if err != nil {
			return nil, fmt.Errorf("safecross: scene switch: %w", err)
		}
		d.Switch = &rep
	}

	vpStart := time.Now()
	grid, err := f.vp.Process(frame)
	if err != nil {
		return nil, fmt.Errorf("safecross: %w", err)
	}
	f.metrics.vp.ObserveDuration(time.Since(vpStart))
	f.ring = append(f.ring, grid)
	if len(f.ring) > f.cfg.ClipLen {
		f.ring = f.ring[1:]
	}
	if len(f.ring) < f.cfg.ClipLen {
		return d, nil
	}

	clip, err := vision.ClipTensor(f.ring)
	if err != nil {
		return nil, fmt.Errorf("safecross: %w", err)
	}
	var label int
	classifyStart := time.Now()
	if f.classify != nil {
		// The fail-safe hint: until the safe streak is re-established,
		// the intersection is advising "don't turn" and the next verdict
		// decides whether it may release — priority traffic.
		critical := f.safeStreak < f.cfg.SafeStreak
		if label, err = f.classify(ctx, scene, clip, critical); err != nil {
			return nil, fmt.Errorf("safecross: classify: %w", err)
		}
	} else {
		if f.ws == nil {
			f.ws = nn.NewWorkspace()
		}
		if label, err = video.PredictWS(f.models[scene], clip, f.ws); err != nil {
			return nil, fmt.Errorf("safecross: classify: %w", err)
		}
	}
	f.metrics.classify.ObserveDuration(time.Since(classifyStart))
	// The verdict histogram only counts frames that produced one: the
	// warning-path SLO judges how fast a verdict arrives, and ring-fill
	// frames that cannot yield a verdict would only dilute the tail.
	f.metrics.frameVerdict.ObserveDuration(time.Since(frameStart))
	d.Ready = true
	// Fail-safe hysteresis: danger verdicts take effect immediately;
	// TURN is only advised after SafeStreak consecutive safe verdicts.
	if label == 1 { // dataset.ClassSafe
		f.safeStreak++
	} else {
		f.safeStreak = 0
	}
	d.Safe = f.safeStreak >= f.cfg.SafeStreak
	return d, nil
}

// Reset clears the clip ring and the VP background, as after a camera
// feed interruption.
func (f *Framework) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring = nil
	f.safeStreak = 0
	f.vp.Reset()
}
