package safecross

import (
	"fmt"

	"safecross/internal/dataset"
	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/video"
)

// ThroughputResult summarises the Sec. V-D experiment: how many
// blind-zone scenes SafeCross releases for a left turn, and whether
// it ever releases a dangerous one.
type ThroughputResult struct {
	// Total is the number of blind-zone clips evaluated.
	Total int
	// DangerClips and SafeClips are the ground-truth class counts.
	DangerClips, SafeClips int
	// CorrectDanger and CorrectSafe are correctly classified counts.
	CorrectDanger, CorrectSafe int
	// UnsafeReleases counts danger clips misjudged as safe — the
	// safety violations SafeCross must avoid.
	UnsafeReleases int
	// Accuracy is overall classification accuracy on the set.
	Accuracy float64
	// ThroughputGain is the fraction of blind-zone scenes in which
	// SafeCross lets the driver turn instead of waiting out the
	// occlusion — the paper's +32/63 ≈ +50% headline.
	ThroughputGain float64
}

// EvaluateThroughput classifies a blind-zone clip set with the given
// model and computes the throughput statistics. Without SafeCross an
// occluded driver waits in every one of these scenes; with it, every
// correctly judged safe scene becomes an immediate turn.
func EvaluateThroughput(m video.Classifier, clips []*dataset.Clip) (*ThroughputResult, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("safecross: no clips to evaluate")
	}
	res := &ThroughputResult{Total: len(clips)}
	correct := 0
	ws := nn.NewWorkspace() // one scratch arena across the whole set
	for i, clip := range clips {
		if !clip.Blind {
			return nil, fmt.Errorf("safecross: clip %d is not a blind-zone clip", i)
		}
		pred, err := video.PredictWS(m, clip.Input, ws)
		if err != nil {
			return nil, fmt.Errorf("safecross: clip %d: %w", i, err)
		}
		switch clip.Label {
		case dataset.ClassDanger:
			res.DangerClips++
			if pred == dataset.ClassDanger {
				res.CorrectDanger++
				correct++
			} else {
				res.UnsafeReleases++
			}
		case dataset.ClassSafe:
			res.SafeClips++
			if pred == dataset.ClassSafe {
				res.CorrectSafe++
				correct++
			}
		}
	}
	res.Accuracy = float64(correct) / float64(res.Total)
	res.ThroughputGain = float64(res.CorrectSafe) / float64(res.Total)
	return res, nil
}

// SimThroughputResult reports a closed-loop simulation comparison.
type SimThroughputResult struct {
	// TurnsWithout and TurnsWith are completed left turns over the
	// horizon without and with the SafeCross advisory.
	TurnsWithout, TurnsWith int
	// Frames is the simulated horizon length.
	Frames int
	// Improvement is (with − without) / max(without, 1).
	Improvement float64
}

// SimulateThroughput runs two identical blind-intersection worlds for
// the given horizon: one where the occluded driver creeps cautiously,
// and one where a (ground-truth-accurate) SafeCross advisory releases
// the turn as soon as the danger zone clears. It returns the turn
// counts — the closed-loop version of the paper's throughput claim.
func SimulateThroughput(w sim.Weather, frames int, seed int64) (*SimThroughputResult, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("safecross: horizon %d must be positive", frames)
	}
	run := func(advise bool) int {
		world := sim.NewWorld(sim.Config{
			Weather:       w,
			TruckPresent:  true,
			TurnerEnabled: true,
			TurnerRespawn: true,
			Seed:          seed,
		})
		for i := 0; i < frames; i++ {
			if advise {
				world.SetAdvisory(!world.ConflictRisk(), true)
			}
			world.Step()
		}
		return world.TurnsCompleted()
	}
	res := &SimThroughputResult{
		TurnsWithout: run(false),
		TurnsWith:    run(true),
		Frames:       frames,
	}
	base := res.TurnsWithout
	if base < 1 {
		base = 1
	}
	res.Improvement = float64(res.TurnsWith-res.TurnsWithout) / float64(base)
	return res, nil
}
