package safecross

import (
	"context"
	"testing"

	"safecross/internal/dataset"
	"safecross/internal/gpusim"
	"safecross/internal/pipeswitch"
	"safecross/internal/sim"
	"safecross/internal/tensor"
	"safecross/internal/video"
	"safecross/internal/vision"
	"safecross/internal/weather"
)

// newTestModels builds small untrained classifiers for all scenes
// (plumbing tests do not assert accuracy).
func newTestModels(t *testing.T, clipLen int) map[sim.Weather]video.Classifier {
	t.Helper()
	models := make(map[sim.Weather]video.Classifier, 3)
	for i, w := range sim.AllWeathers() {
		cfg := video.SlowFastConfig{T: clipLen, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: int64(i + 1)}
		m, err := video.NewSlowFast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		models[w] = m
	}
	return models
}

func newTestFramework(t *testing.T, clipLen int) *Framework {
	t.Helper()
	det, err := weather.FitFromSim(15, 99)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr := pipeswitch.NewManager(dev)
	for _, w := range sim.AllWeathers() {
		m := pipeswitch.SafeCrossSlowFast()
		m.Name += "-" + w.String()
		if err := mgr.Register(w.String(), m); err != nil {
			t.Fatal(err)
		}
	}
	f, err := New(Config{ClipLen: clipLen}, newTestModels(t, clipLen), det, mgr)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	det, err := weather.FitFromSim(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr := pipeswitch.NewManager(dev)
	models := newTestModels(t, 16)

	if _, err := New(Config{}, nil, det, mgr); err == nil {
		t.Fatal("expected no-classifiers error")
	}
	if _, err := New(Config{}, models, nil, mgr); err == nil {
		t.Fatal("expected nil-detector error")
	}
	if _, err := New(Config{}, models, det, nil); err == nil {
		t.Fatal("expected nil-manager error")
	}
	// Manager without the initial scene registered must fail on
	// activation.
	if _, err := New(Config{ClipLen: 16}, models, det, mgr); err == nil {
		t.Fatal("expected activation error for unregistered scene")
	}
}

func TestProcessFrameFillsRingThenDecides(t *testing.T) {
	const clipLen = 16
	f := newTestFramework(t, clipLen)

	world := sim.NewWorld(sim.Config{Weather: sim.Day, TruckPresent: true, TurnerEnabled: true, Seed: 4})
	for i := 0; i < clipLen+4; i++ {
		world.Step()
		d, err := f.ProcessFrame(world.Render())
		if err != nil {
			t.Fatal(err)
		}
		if i < clipLen-1 && d.Ready {
			t.Fatalf("decision ready after %d frames, clip needs %d", i+1, clipLen)
		}
		if i >= clipLen-1 && !d.Ready {
			t.Fatalf("decision not ready after %d frames", i+1)
		}
		if d.Scene != sim.Day {
			t.Fatalf("scene = %v, want day", d.Scene)
		}
	}
}

func TestSceneChangeTriggersModelSwitch(t *testing.T) {
	f := newTestFramework(t, 16)

	day := sim.NewWorld(sim.Config{Weather: sim.Day, Seed: 5, TurnerEnabled: true})
	for i := 0; i < 6; i++ {
		day.Step()
		if _, err := f.ProcessFrame(day.Render()); err != nil {
			t.Fatal(err)
		}
	}
	snow := sim.NewWorld(sim.Config{Weather: sim.Snow, Seed: 6, TurnerEnabled: true})
	var switched *pipeswitch.Report
	for i := 0; i < 20 && switched == nil; i++ {
		snow.Step()
		d, err := f.ProcessFrame(snow.Render())
		if err != nil {
			t.Fatal(err)
		}
		if d.SceneChanged {
			switched = d.Switch
		}
	}
	if switched == nil {
		t.Fatal("scene change to snow never triggered a switch")
	}
	if switched.Total > pipeswitch.DefaultSLO {
		t.Fatalf("switch took %v, must meet the %v SLO", switched.Total, pipeswitch.DefaultSLO)
	}
	if f.Scene() != sim.Snow {
		t.Fatalf("framework scene = %v, want snow", f.Scene())
	}
	if f.Manager().Active() != "snow" {
		t.Fatalf("active model = %q, want snow", f.Manager().Active())
	}
	if v := f.Manager().SLOViolations(); v != 0 {
		t.Fatalf("SLO violations = %d", v)
	}
}

func TestResetClearsRing(t *testing.T) {
	f := newTestFramework(t, 8)
	world := sim.NewWorld(sim.Config{Weather: sim.Day, Seed: 7})
	for i := 0; i < 10; i++ {
		world.Step()
		if _, err := f.ProcessFrame(world.Render()); err != nil {
			t.Fatal(err)
		}
	}
	f.Reset()
	world.Step()
	d, err := f.ProcessFrame(world.Render())
	if err != nil {
		t.Fatal(err)
	}
	if d.Ready {
		t.Fatal("ring must be empty after Reset")
	}
}

// TestEvaluateThroughputWithTrainedModel trains a small model and
// checks the Sec. V-D statistics: high accuracy, no unsafe releases,
// and a gain near the safe-clip fraction (the paper's ≈50%).
func TestEvaluateThroughputWithTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	const clipLen = 16
	vpcfg := vision.DefaultVPConfig()

	var train []*dataset.Clip
	for i := 0; i < 56; i++ {
		sc := sim.Scenario{
			Weather: sim.Day,
			Danger:  i%2 == 0,
			Blind:   i%4 < 2,
			Seed:    7000 + int64(i)*17,
		}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := dataset.FromSegment(seg, vpcfg)
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, clip)
	}
	m, err := video.NewSlowFast(video.SlowFastConfig{T: clipLen, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := video.Train(m, train, video.TrainConfig{Epochs: 8, BatchSize: 8, LR: 0.01, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	// Blind-zone test set (day only, same geometry as training).
	var clips []*dataset.Clip
	for i := 0; i < 16; i++ {
		sc := sim.Scenario{Weather: sim.Day, Blind: true, Danger: i%2 == 0, Seed: 90000 + int64(i)*13}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := dataset.FromSegment(seg, vpcfg)
		if err != nil {
			t.Fatal(err)
		}
		clips = append(clips, clip)
	}
	res, err := EvaluateThroughput(m, clips)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 16 || res.DangerClips != 8 || res.SafeClips != 8 {
		t.Fatalf("set composition wrong: %+v", res)
	}
	if res.Accuracy < 0.8 {
		t.Fatalf("throughput-set accuracy = %v, want ≥0.8", res.Accuracy)
	}
	if res.ThroughputGain < 0.3 {
		t.Fatalf("throughput gain = %v, want ≥0.3 (paper ≈0.5)", res.ThroughputGain)
	}
	if res.ThroughputGain > float64(res.SafeClips)/float64(res.Total) {
		t.Fatal("gain cannot exceed the safe-clip fraction")
	}
}

func TestEvaluateThroughputValidation(t *testing.T) {
	m, err := video.NewSlowFast(video.SlowFastConfig{T: 16, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateThroughput(m, nil); err == nil {
		t.Fatal("expected empty-set error")
	}
	notBlind := []*dataset.Clip{{Blind: false}}
	if _, err := EvaluateThroughput(m, notBlind); err == nil {
		t.Fatal("expected non-blind-clip error")
	}
}

func TestSimulateThroughputAdvisoryHelps(t *testing.T) {
	res, err := SimulateThroughput(sim.Day, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.TurnsWith <= res.TurnsWithout {
		t.Fatalf("advisory must increase turns: with=%d without=%d", res.TurnsWith, res.TurnsWithout)
	}
	if res.Improvement <= 0 {
		t.Fatalf("improvement = %v", res.Improvement)
	}
	if _, err := SimulateThroughput(sim.Day, 0, 1); err == nil {
		t.Fatal("expected horizon error")
	}
}

// TestSafeStreakHysteresis verifies the fail-safe advisory bias: a
// framework configured with a large safe streak never advises TURN
// within fewer ready frames than the streak requires.
func TestSafeStreakHysteresis(t *testing.T) {
	det, err := weather.FitFromSim(15, 99)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr := pipeswitch.NewManager(dev)
	for _, w := range sim.AllWeathers() {
		m := pipeswitch.SafeCrossSlowFast()
		m.Name += "-" + w.String()
		if err := mgr.Register(w.String(), m); err != nil {
			t.Fatal(err)
		}
	}
	const clipLen = 8
	f, err := New(Config{ClipLen: clipLen, SafeStreak: 4}, newTestModels(t, clipLen), det, mgr)
	if err != nil {
		t.Fatal(err)
	}
	world := sim.NewWorld(sim.Config{Weather: sim.Day, NoArrivals: true, Seed: 31})
	ready := 0
	for i := 0; i < clipLen+3; i++ {
		world.Step()
		d, err := f.ProcessFrame(world.Render())
		if err != nil {
			t.Fatal(err)
		}
		if !d.Ready {
			continue
		}
		ready++
		if ready < 4 && d.Safe {
			t.Fatalf("TURN advised after only %d ready frames; streak of 4 required", ready)
		}
	}
	// Negative config rejected.
	if _, err := New(Config{ClipLen: clipLen, SafeStreak: -1}, newTestModels(t, clipLen), det, mgr); err == nil {
		t.Fatal("expected safe-streak validation error")
	}
}

func TestNewServedRoutesClassificationExternally(t *testing.T) {
	det, err := weather.FitFromSim(15, 99)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	var hints []bool
	classify := func(ctx context.Context, scene sim.Weather, clip *tensor.Tensor, critical bool) (int, error) {
		calls++
		if ctx == nil {
			t.Fatal("classify received nil context")
		}
		if clip == nil || clip.Rank() != 4 {
			t.Fatalf("served clip shape %v", clip)
		}
		hints = append(hints, critical)
		return dataset.ClassSafe, nil
	}
	f, err := NewServed(Config{ClipLen: 4, SafeStreak: 1}, classify, det)
	if err != nil {
		t.Fatal(err)
	}
	if f.Manager() != nil {
		t.Fatal("served framework must not own a switch manager")
	}
	world := sim.NewWorld(sim.Config{Weather: sim.Day, TruckPresent: true, Seed: 5})
	var last *Decision
	for i := 0; i < 6; i++ {
		world.Step()
		last, err = f.ProcessFrame(world.Render())
		if err != nil {
			t.Fatal(err)
		}
		if last.Switch != nil {
			t.Fatal("served framework must never report a local switch")
		}
	}
	if calls == 0 {
		t.Fatal("external classifier never called")
	}
	if !last.Ready || !last.Safe {
		t.Fatalf("decision = %+v, want ready safe verdict from service", last)
	}
	// Fail-safe priority hint: the first clip arrives before any safe
	// streak exists (critical); once the streak is established, later
	// clips ride the routine class.
	if !hints[0] {
		t.Fatal("first clip (no safe streak yet) must carry the critical hint")
	}
	if hints[len(hints)-1] {
		t.Fatal("clip after an established safe streak must not be critical")
	}
}

func TestNewServedValidation(t *testing.T) {
	det, err := weather.FitFromSim(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok := func(context.Context, sim.Weather, *tensor.Tensor, bool) (int, error) { return 0, nil }
	if _, err := NewServed(Config{}, nil, det); err == nil {
		t.Fatal("expected nil-classify error")
	}
	if _, err := NewServed(Config{}, ok, nil); err == nil {
		t.Fatal("expected nil-detector error")
	}
	if _, err := NewServed(Config{ClipLen: -1}, ok, det); err == nil {
		t.Fatal("expected clip-length error")
	}
}
