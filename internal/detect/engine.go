package detect

import (
	"math"

	"safecross/internal/dataset"
	"safecross/internal/infer"
	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// Presence lifts a trained Yolite onto the serving plane's engine
// contract: each [1,H,W] frame tensor maps to two-class logits over
// {danger, safe}, where a vehicle anywhere in frame — peak cell
// objectness at or above the detector's threshold — reads as danger.
// This is what lets detector workloads ride the same worker pool,
// batcher, and workspace pool as the video classifiers: the engine
// only sees infer.Model.
type Presence struct {
	y *Yolite
}

var _ infer.Model = (*Presence)(nil)

// NewPresence wraps a detector for serving.
func NewPresence(y *Yolite) *Presence { return &Presence{y: y} }

// Name identifies the served detector.
func (p *Presence) Name() string { return p.y.Name() + "-presence" }

// SetTrain forwards to the detector network.
func (p *Presence) SetTrain(train bool) { p.y.SetTrain(train) }

// ForwardBatch scores n frames in one stacked detector pass and folds
// each cell-logit map to presence logits: the margin between the peak
// objectness probability and the threshold, signed so that argmax
// decoding yields ClassDanger exactly when a vehicle clears the
// threshold.
func (p *Presence) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	maps, err := p.y.ForwardBatch(xs, ws)
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(maps))
	for i, m := range maps {
		peak := math.Inf(-1)
		for _, z := range m.Data {
			if z > peak {
				peak = z
			}
		}
		prob := 1 / (1 + math.Exp(-peak))
		l := tensor.New(dataset.NumClasses)
		l.Data[dataset.ClassDanger] = prob - p.y.Threshold
		l.Data[dataset.ClassSafe] = p.y.Threshold - prob
		out[i] = l
	}
	return out, nil
}
