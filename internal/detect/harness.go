package detect

import (
	"fmt"
	"math/rand"
	"time"

	"safecross/internal/sim"
	"safecross/internal/vision"
)

// Row is one line of the Table II reproduction: a method's per-frame
// execution time and whether it identified the vehicle hidden in the
// danger zone.
type Row struct {
	// Method is the detector name.
	Method string
	// MeanTime is the wall-clock mean per Detect call.
	MeanTime time.Duration
	// Detected reports whether the danger-zone vehicle was found.
	Detected bool
	// Detections is the box count on the canonical frame.
	Detections int
}

// HitOverlap is the minimum detection/zone overlap (pixels) that
// counts as identifying the danger-zone vehicle.
const HitOverlap = 4

// DefaultDetectors returns the four Table II methods in paper order
// (BGS last in the table but returned first here for the harness; the
// formatter orders output). Yolite is trained from the given seed.
func DefaultDetectors(seed int64) ([]Detector, error) {
	yol, err := TrainYolite(seed, 8)
	if err != nil {
		return nil, err
	}
	return []Detector{NewBGS(), NewSparseFlow(), NewDenseFlow(), yol}, nil
}

// RunTableII executes every detector on the canonical occluded scene
// (Fig. 8), timing reps repetitions of Detect and checking the
// danger-zone hit.
func RunTableII(dets []Detector, scene *sim.OccludedScene, reps int) ([]Row, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("detect: reps %d must be positive", reps)
	}
	rows := make([]Row, 0, len(dets))
	for _, d := range dets {
		var (
			rects []vision.Rect
			err   error
		)
		start := time.Now()
		for r := 0; r < reps; r++ {
			rects, err = d.Detect(scene.Frames)
			if err != nil {
				return nil, fmt.Errorf("detect: %s: %w", d.Name(), err)
			}
		}
		elapsed := time.Since(start) / time.Duration(reps)
		rows = append(rows, Row{
			Method:     d.Name(),
			MeanTime:   elapsed,
			Detected:   HitsZone(rects, scene.Zone, HitOverlap),
			Detections: len(rects),
		})
	}
	return rows, nil
}

// Canonical camera degradation. The paper's infrastructure cameras
// are "sometimes decades old"; on top of the weather model's sensor
// noise, the detection study adds the heavy analog noise that defeats
// corner tracking and pretrained detectors in Fig. 8.
const (
	cameraNoiseSigma = 0.04
	cameraSaltPepper = 0.004
)

// CanonicalScene returns the occluded daytime scene all detection
// experiments share, degraded by the legacy-camera noise model.
func CanonicalScene() (*sim.OccludedScene, error) {
	scene, err := sim.OccludedSequence(sim.Day, 71, 16)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(71))
	for _, f := range scene.Frames {
		f.AddGaussianNoise(rng, cameraNoiseSigma)
		f.AddSaltPepper(rng, cameraSaltPepper)
	}
	return scene, nil
}
