// Package detect implements the four moving-object detection methods
// the paper compares in its evaluation (Table II, Fig. 8):
// background subtraction, sparse (Lucas–Kanade) optical flow, dense
// (Horn–Schunck) optical flow, and a YOLO-style single-shot grid
// detector ("yolite"). A common harness runs them on the canonical
// occluded-intersection scene, checks whether each finds the vehicle
// hidden in the danger zone, and times them.
package detect

import (
	"fmt"

	"safecross/internal/vision"
)

// Detector finds moving vehicles in the final frame of a sequence.
type Detector interface {
	// Name identifies the method for reports.
	Name() string
	// Detect processes the frame sequence (oldest first) and returns
	// bounding boxes of objects found in the final frame.
	Detect(frames []*vision.Image) ([]vision.Rect, error)
}

// minSequence validates the common preconditions.
func minSequence(frames []*vision.Image, need int) error {
	if len(frames) < need {
		return fmt.Errorf("detect: need ≥%d frames, got %d", need, len(frames))
	}
	w, h := frames[0].W, frames[0].H
	for i, f := range frames {
		if f.W != w || f.H != h {
			return fmt.Errorf("detect: frame %d is %dx%d, want %dx%d", i, f.W, f.H, w, h)
		}
	}
	return nil
}

// HitsZone reports whether any detection overlaps the danger zone by
// at least minOverlap pixels — the criterion for "identified the
// vehicle in the danger zone".
func HitsZone(dets []vision.Rect, zone vision.Rect, minOverlap int) bool {
	for _, d := range dets {
		if d.Intersect(zone).Area() >= minOverlap {
			return true
		}
	}
	return false
}

// BGS is the background-subtraction detector the paper selects: a
// dynamic background learned over the sequence, thresholded
// difference, morphological opening, and connected components.
type BGS struct {
	// Alpha is the background learning rate.
	Alpha float64
	// Threshold is the foreground binarisation level.
	Threshold float64
	// OpenRadius is the opening structuring-element radius.
	OpenRadius int
	// MinArea drops blobs smaller than this many pixels.
	MinArea int
}

var _ Detector = (*BGS)(nil)

// NewBGS returns a background-subtraction detector with the
// calibration used across the experiments.
func NewBGS() *BGS {
	return &BGS{Alpha: 0.03, Threshold: 0.10, OpenRadius: 1, MinArea: 6}
}

// Name returns "bgs".
func (d *BGS) Name() string { return "bgs" }

// Detect learns the background over all but the last frame, then
// extracts movers from the last.
func (d *BGS) Detect(frames []*vision.Image) ([]vision.Rect, error) {
	if err := minSequence(frames, 2); err != nil {
		return nil, err
	}
	bg := vision.NewBackgroundModel(d.Alpha)
	for _, f := range frames[:len(frames)-1] {
		if err := bg.Update(f); err != nil {
			return nil, fmt.Errorf("detect: bgs: %w", err)
		}
	}
	last := frames[len(frames)-1]
	diff, err := bg.Subtract(last)
	if err != nil {
		return nil, fmt.Errorf("detect: bgs: %w", err)
	}
	mask := diff.Threshold(d.Threshold)
	if d.OpenRadius > 0 {
		mask = vision.Open(mask, d.OpenRadius)
	}
	blobs := vision.ConnectedComponents(mask, d.MinArea)
	rects := make([]vision.Rect, 0, len(blobs))
	for _, b := range blobs {
		rects = append(rects, b.Bounds)
	}
	return rects, nil
}
