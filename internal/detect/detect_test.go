package detect

import (
	"math/rand"
	"sync"
	"testing"

	"safecross/internal/flow"
	"safecross/internal/sim"
	"safecross/internal/vision"
)

// cachedYolite trains the detector once per test binary; training is
// the expensive part of this package's tests.
var (
	yoliteOnce sync.Once
	yoliteDet  *Yolite
	yoliteErr  error
)

func trainedYolite(t *testing.T) *Yolite {
	t.Helper()
	yoliteOnce.Do(func() {
		yoliteDet, yoliteErr = TrainYolite(7, 8)
	})
	if yoliteErr != nil {
		t.Fatal(yoliteErr)
	}
	return yoliteDet
}

func canonical(t *testing.T) *sim.OccludedScene {
	t.Helper()
	scene, err := CanonicalScene()
	if err != nil {
		t.Fatal(err)
	}
	return scene
}

func TestHitsZone(t *testing.T) {
	zone := vision.Rect{X0: 10, Y0: 10, X1: 30, Y1: 20}
	tests := []struct {
		name string
		dets []vision.Rect
		want bool
	}{
		{name: "empty", dets: nil, want: false},
		{name: "inside", dets: []vision.Rect{{X0: 12, Y0: 12, X1: 20, Y1: 18}}, want: true},
		{name: "outside", dets: []vision.Rect{{X0: 40, Y0: 10, X1: 50, Y1: 20}}, want: false},
		{name: "tiny-overlap", dets: []vision.Rect{{X0: 28, Y0: 18, X1: 31, Y1: 21}}, want: true},
		{name: "sub-threshold", dets: []vision.Rect{{X0: 29, Y0: 19, X1: 31, Y1: 21}}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := HitsZone(tt.dets, zone, HitOverlap); got != tt.want {
				t.Fatalf("HitsZone = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSequenceValidation(t *testing.T) {
	bgs := NewBGS()
	if _, err := bgs.Detect(nil); err == nil {
		t.Fatal("expected empty-sequence error")
	}
	a := vision.NewImage(8, 8)
	b := vision.NewImage(9, 8)
	if _, err := bgs.Detect([]*vision.Image{a, b}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := NewSparseFlow().Detect([]*vision.Image{a}); err == nil {
		t.Fatal("expected too-few-frames error")
	}
	if _, err := NewDenseFlow().Detect([]*vision.Image{a}); err == nil {
		t.Fatal("expected too-few-frames error")
	}
}

func TestBGSFindsDangerZoneCar(t *testing.T) {
	scene := canonical(t)
	rects, err := NewBGS().Detect(scene.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !HitsZone(rects, scene.Zone, HitOverlap) {
		t.Fatal("BGS must find the danger-zone vehicle (paper: success of background subtraction)")
	}
	// And its box must actually be on the car, not a fluke elsewhere
	// in the zone.
	found := false
	for _, r := range rects {
		if r.Intersect(scene.Car).Area() >= HitOverlap {
			found = true
		}
	}
	if !found {
		t.Fatalf("BGS boxes %v do not overlap the car %v", rects, scene.Car)
	}
}

func TestSparseFlowMissesDangerZoneCar(t *testing.T) {
	scene := canonical(t)
	rects, err := NewSparseFlow().Detect(scene.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if HitsZone(rects, scene.Zone, HitOverlap) {
		t.Fatalf("sparse flow should miss the low-contrast car (paper Fig. 8(b)); boxes %v", rects)
	}
}

func TestSparseFlowTracksHighContrastMover(t *testing.T) {
	// Sanity: sparse flow is a working detector on easy input — a
	// bright fast mover on a clean background.
	frames := make([]*vision.Image, 2)
	for i := range frames {
		im := vision.NewImage(64, 48)
		im.Fill(0.3)
		x := 20 + i*2
		im.FillRect(x, 20, x+14, 28, 0.95)
		frames[i] = im
	}
	rects, err := NewSparseFlow().Detect(frames)
	if err != nil {
		t.Fatal(err)
	}
	zone := vision.Rect{X0: 15, Y0: 15, X1: 45, Y1: 33}
	if !HitsZone(rects, zone, HitOverlap) {
		t.Fatalf("sparse flow failed on an easy high-contrast mover; boxes %v", rects)
	}
}

func TestDenseFlowFindsDangerZoneCar(t *testing.T) {
	scene := canonical(t)
	rects, err := NewDenseFlow().Detect(scene.Frames)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rects {
		if r.Intersect(scene.Car).Area() >= HitOverlap {
			found = true
		}
	}
	if !found {
		t.Fatalf("dense flow must find the car (paper Fig. 8(c)); boxes %v car %v", rects, scene.Car)
	}
}

func TestYoliteMissesDangerZoneCarButFindsNearVehicles(t *testing.T) {
	scene := canonical(t)
	d := trainedYolite(t)
	rects, err := d.Detect(scene.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if HitsZone(rects, scene.Zone, HitOverlap) {
		t.Fatalf("yolite should miss the far low-contrast car (paper Fig. 8(d)); boxes %v", rects)
	}
	// But it must not be blind: the bright occluding truck (a large,
	// near-field-like object) should be detected.
	truck := vision.Rect{X0: sim.ConflictX + 6, Y0: 34, X1: sim.ConflictX + 32, Y1: 44}
	foundNear := false
	for _, r := range rects {
		if r.Overlaps(truck) {
			foundNear = true
		}
	}
	if !foundNear {
		t.Fatalf("yolite found nothing at all; boxes %v", rects)
	}
}

func TestYoliteDetectsCleanNearFieldVehicle(t *testing.T) {
	d := trainedYolite(t)
	im := vision.NewImage(64, 40)
	im.Fill(0.33)
	im.FillRect(20, 12, 38, 20, 0.9)
	rects, err := d.Detect([]*vision.Image{im})
	if err != nil {
		t.Fatal(err)
	}
	want := vision.Rect{X0: 20, Y0: 12, X1: 38, Y1: 20}
	if !HitsZone(rects, want, HitOverlap) {
		t.Fatalf("yolite missed a clean training-distribution vehicle; boxes %v", rects)
	}
}

func TestTrainYoliteValidation(t *testing.T) {
	if _, err := TrainYolite(1, 0); err == nil {
		t.Fatal("expected epochs error")
	}
}

func TestClusterPoints(t *testing.T) {
	pts := []flow.Point{
		{X: 10, Y: 10}, {X: 12, Y: 11}, {X: 11, Y: 13}, // cluster of 3
		{X: 40, Y: 40}, // singleton
	}
	rects := clusterPoints(pts, 5, 3)
	if len(rects) != 1 {
		t.Fatalf("clusters = %d, want 1", len(rects))
	}
	r := rects[0]
	if r.X0 != 10 || r.Y0 != 10 || r.X1 != 13 || r.Y1 != 14 {
		t.Fatalf("cluster box = %+v", r)
	}
	if got := clusterPoints(nil, 5, 3); got != nil {
		t.Fatal("empty input must return nil")
	}
}

func TestRunTableIIShape(t *testing.T) {
	scene := canonical(t)
	dets := []Detector{NewBGS(), NewSparseFlow(), NewDenseFlow(), trainedYolite(t)}
	rows, err := RunTableII(dets, scene, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	// Detection pattern of Table II: BGS yes, sparse no, dense yes,
	// yolo no.
	if !byName["bgs"].Detected || byName["sparse-of"].Detected ||
		!byName["dense-of"].Detected || byName["yolite"].Detected {
		t.Fatalf("detection pattern wrong: %+v", rows)
	}
	// Timing ordering: BGS < sparse < dense < yolite.
	if !(byName["bgs"].MeanTime < byName["sparse-of"].MeanTime &&
		byName["sparse-of"].MeanTime < byName["dense-of"].MeanTime &&
		byName["dense-of"].MeanTime < byName["yolite"].MeanTime) {
		t.Fatalf("timing ordering wrong: %+v", rows)
	}
	if _, err := RunTableII(dets, scene, 0); err == nil {
		t.Fatal("expected reps error")
	}
}

func TestDetectorsDeterministic(t *testing.T) {
	scene := canonical(t)
	for _, d := range []Detector{NewBGS(), NewSparseFlow(), NewDenseFlow()} {
		a, err := d.Detect(scene.Frames)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Detect(scene.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s not deterministic: %v vs %v", d.Name(), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic: %v vs %v", d.Name(), a, b)
			}
		}
	}
}

func TestYoliteUntrainedStillRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewYolite(rng)
	im := vision.NewImage(32, 24)
	if _, err := d.Detect([]*vision.Image{im}); err != nil {
		t.Fatal(err)
	}
	if d.Name() != "yolite" {
		t.Fatalf("name = %q", d.Name())
	}
	if len(d.Params()) == 0 {
		t.Fatal("yolite must expose parameters")
	}
}
