package detect

// Engine-contract coverage for the detector: the workspace and batch
// eval forwards must be bit-identical (==, not approximately equal) to
// the allocating reference Forward, and the Presence adapter's argmax
// decoding must agree exactly with the detector's threshold test.

import (
	"math"
	"testing"

	"safecross/internal/dataset"
	"safecross/internal/infer"
	"safecross/internal/nn"
	"safecross/internal/tensor"
	"safecross/internal/vision"
)

// frameTensor copies one grayscale frame into a [1,H,W] tensor.
func frameTensor(im *vision.Image) *tensor.Tensor {
	x := tensor.New(1, im.H, im.W)
	copy(x.Data, im.Pix)
	return x
}

func TestYoliteForwardVariantsBitIdentical(t *testing.T) {
	d := trainedYolite(t)
	scene := canonical(t)
	frames := scene.Frames[:4]

	xs := make([]*tensor.Tensor, len(frames))
	refs := make([]*tensor.Tensor, len(frames))
	for i, im := range frames {
		xs[i] = frameTensor(im)
		ref, err := d.Forward(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	ws := nn.NewWorkspace()
	for i, x := range xs {
		got, err := d.ForwardWS(x, ws)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Data) != len(refs[i].Data) {
			t.Fatalf("frame %d: ForwardWS shape %v vs Forward %v", i, got.Shape, refs[i].Shape)
		}
		for j := range got.Data {
			if got.Data[j] != refs[i].Data[j] {
				t.Fatalf("frame %d cell %d: ForwardWS %v != Forward %v",
					i, j, got.Data[j], refs[i].Data[j])
			}
		}
		ws.Reset()
	}

	batched, err := d.ForwardBatch(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(xs) {
		t.Fatalf("ForwardBatch returned %d maps for %d frames", len(batched), len(xs))
	}
	for i, got := range batched {
		for j := range got.Data {
			if got.Data[j] != refs[i].Data[j] {
				t.Fatalf("frame %d cell %d: ForwardBatch %v != Forward %v",
					i, j, got.Data[j], refs[i].Data[j])
			}
		}
	}
}

func TestYoliteForwardBatchRejectsBadFrames(t *testing.T) {
	d := trainedYolite(t)
	ws := nn.NewWorkspace()
	if _, err := d.ForwardBatch([]*tensor.Tensor{tensor.New(2, 8, 8)}, ws); err == nil {
		t.Fatal("expected shape error for a 2-channel frame")
	}
	if _, err := d.ForwardBatch([]*tensor.Tensor{tensor.New(8, 8)}, ws); err == nil {
		t.Fatal("expected shape error for a rank-2 frame")
	}
}

// TestPresenceMatchesDetectorThreshold drives the detector through the
// unified engine exactly the way a serve worker would, and checks the
// decoded labels equal the detector's own peak-vs-threshold test.
func TestPresenceMatchesDetectorThreshold(t *testing.T) {
	d := trainedYolite(t)
	scene := canonical(t)

	// A clean bright vehicle the detector finds, plus raw scene frames.
	bright := vision.NewImage(scene.Frames[0].W, scene.Frames[0].H)
	bright.Fill(0.33)
	bright.FillRect(20, 12, 38, 20, 0.9)
	frames := append([]*vision.Image{bright}, scene.Frames[:3]...)

	xs := make([]*tensor.Tensor, len(frames))
	want := make([]int, len(frames))
	for i, im := range frames {
		xs[i] = frameTensor(im)
		logits, err := d.Forward(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		peak := math.Inf(-1)
		for _, z := range logits.Data {
			if z > peak {
				peak = z
			}
		}
		want[i] = dataset.ClassSafe
		if 1/(1+math.Exp(-peak)) >= d.Threshold {
			want[i] = dataset.ClassDanger
		}
	}

	labels, err := infer.PredictBatch(NewPresence(d), xs, nn.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	sawDanger := false
	for i, got := range labels {
		if got != want[i] {
			t.Fatalf("frame %d: presence label %d, detector threshold says %d", i, got, want[i])
		}
		if got == dataset.ClassDanger {
			sawDanger = true
		}
	}
	if !sawDanger {
		t.Fatal("the bright near-field vehicle must decode as danger")
	}
}
