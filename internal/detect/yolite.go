package detect

import (
	"fmt"
	"math"
	"math/rand"

	"safecross/internal/nn"
	"safecross/internal/tensor"
	"safecross/internal/vision"
)

// Yolite is a YOLO-style single-shot grid detector: a small
// convolutional network scores every stride×stride cell of the frame
// for vehicle presence, and adjacent positive cells are merged into
// boxes. Like the YOLOv3 baseline in the paper, it is trained on
// clean, near-field imagery; on far-away low-contrast vehicles seen
// through a noisy camera its confidence collapses below threshold
// (Fig. 8(d)), and its full-frame convolutions make it the slowest
// method in Table II.
type Yolite struct {
	net *nn.Sequential
	// Threshold is the objectness acceptance level, calibrated on the
	// training distribution for high precision.
	Threshold float64
	// stride is the output-cell size in input pixels.
	stride int
	// minCells is the minimum number of positive cells per detection.
	minCells int
}

var _ Detector = (*Yolite)(nil)

// yoliteStride is fixed by the two stride-2 convolutions.
const yoliteStride = 4

// NewYolite builds an untrained detector (weights from rng).
func NewYolite(rng *rand.Rand) *Yolite {
	// A full-resolution stem plus three downsampling-free and
	// downsampling stages: deep enough to be the slowest method in
	// Table II, like the full YOLOv3 backbone is on a CPU.
	net := nn.NewSequential(
		nn.NewConv2D("yolite.stem", nn.Conv2DConfig{
			InC: 1, OutC: 32, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("yolite.conv1", nn.Conv2DConfig{
			InC: 32, OutC: 56, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("yolite.conv2", nn.Conv2DConfig{
			InC: 56, OutC: 56, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("yolite.head", nn.Conv2DConfig{
			InC: 56, OutC: 1, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1,
		}, rng),
	)
	return &Yolite{net: net, Threshold: 0.5, stride: yoliteStride, minCells: 2}
}

// Name returns "yolite".
func (d *Yolite) Name() string { return "yolite" }

// Params exposes the network parameters (for persistence).
func (d *Yolite) Params() []*nn.Param { return d.net.Params() }

// scoreMap runs the network on one frame and returns the sigmoid
// objectness map (cells of stride×stride pixels).
func (d *Yolite) scoreMap(frame *vision.Image) (*tensor.Tensor, error) {
	x := tensor.New(1, frame.H, frame.W)
	copy(x.Data, frame.Pix)
	logits, err := d.net.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("detect: yolite: %w", err)
	}
	probs := logits.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return probs, nil
}

// Detect scores the final frame and boxes groups of positive cells.
func (d *Yolite) Detect(frames []*vision.Image) ([]vision.Rect, error) {
	if err := minSequence(frames, 1); err != nil {
		return nil, err
	}
	frame := frames[len(frames)-1]
	probs, err := d.scoreMap(frame)
	if err != nil {
		return nil, err
	}
	gh, gw := probs.Shape[1], probs.Shape[2]
	mask := vision.NewImage(gw, gh)
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			if probs.At(0, y, x) >= d.Threshold {
				mask.Set(x, y, 1)
			}
		}
	}
	blobs := vision.ConnectedComponents(mask, d.minCells)
	rects := make([]vision.Rect, 0, len(blobs))
	for _, b := range blobs {
		rects = append(rects, vision.Rect{
			X0: b.Bounds.X0 * d.stride, Y0: b.Bounds.Y0 * d.stride,
			X1: b.Bounds.X1 * d.stride, Y1: b.Bounds.Y1 * d.stride,
		})
	}
	return rects, nil
}

// yoliteSample is one training frame with its cell-level target map.
type yoliteSample struct {
	frame  *vision.Image
	target *tensor.Tensor // [1, H/stride, W/stride]
}

// synthNearFieldSample renders a clean near-field training image:
// bright, large vehicles on an even road — the training distribution
// the detector later fails to generalise from.
func synthNearFieldSample(rng *rand.Rand, w, h, stride int) yoliteSample {
	im := vision.NewImage(w, h)
	im.Fill(0.33)
	// A lane marking for realism.
	for x := 0; x < w; x += 8 {
		im.FillRect(x, h/2, x+4, h/2+1, 0.6)
	}
	gh, gw := h/stride, w/stride
	target := tensor.New(1, gh, gw)
	nVeh := rng.Intn(3) // 0–2 vehicles; empties teach the negative class
	for v := 0; v < nVeh; v++ {
		vl := 14 + rng.Intn(7) // near-field scale: 14–20 px long
		vw := 6 + rng.Intn(3)
		x0 := rng.Intn(w - vl)
		y0 := rng.Intn(h - vw)
		im.FillRect(x0, y0, x0+vl, y0+vw, 0.82+0.12*rng.Float64())
		for gy := 0; gy < gh; gy++ {
			for gx := 0; gx < gw; gx++ {
				cx := gx*stride + stride/2
				cy := gy*stride + stride/2
				if cx >= x0 && cx < x0+vl && cy >= y0 && cy < y0+vw {
					target.Set(1, 0, gy, gx)
				}
			}
		}
	}
	return yoliteSample{frame: im, target: target}
}

// TrainYolite fits the detector on synthetic clean near-field frames
// with per-cell logistic loss and returns the ready detector.
func TrainYolite(seed int64, epochs int) (*Yolite, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("detect: yolite epochs %d must be positive", epochs)
	}
	rng := rand.New(rand.NewSource(seed))
	d := NewYolite(rng)
	const (
		trainW, trainH = 48, 32
		nSamples       = 20
	)
	samples := make([]yoliteSample, nSamples)
	for i := range samples {
		samples[i] = synthNearFieldSample(rng, trainW, trainH, d.stride)
	}
	opt := nn.NewAdam(0.01)
	params := d.net.Params()
	for e := 0; e < epochs; e++ {
		for _, s := range samples {
			nn.ZeroGrad(params)
			x := tensor.New(1, s.frame.H, s.frame.W)
			copy(x.Data, s.frame.Pix)
			logits, err := d.net.Forward(x)
			if err != nil {
				return nil, fmt.Errorf("detect: yolite train: %w", err)
			}
			// Per-cell logistic loss gradient: sigmoid(z) − target.
			grad := tensor.New(logits.Shape...)
			n := float64(logits.Len())
			for i, z := range logits.Data {
				p := 1 / (1 + math.Exp(-z))
				grad.Data[i] = (p - s.target.Data[i]) / n
			}
			if _, err := d.net.Backward(grad); err != nil {
				return nil, fmt.Errorf("detect: yolite train: %w", err)
			}
			if err := opt.Step(params); err != nil {
				return nil, fmt.Errorf("detect: yolite train: %w", err)
			}
		}
	}
	return d, nil
}
