package detect

import (
	"fmt"
	"math"
	"math/rand"

	"safecross/internal/nn"
	"safecross/internal/tensor"
	"safecross/internal/vision"
)

// Yolite is a YOLO-style single-shot grid detector: a small
// convolutional network scores every stride×stride cell of the frame
// for vehicle presence, and adjacent positive cells are merged into
// boxes. Like the YOLOv3 baseline in the paper, it is trained on
// clean, near-field imagery; on far-away low-contrast vehicles seen
// through a noisy camera its confidence collapses below threshold
// (Fig. 8(d)), and its full-frame convolutions make it the slowest
// method in Table II.
type Yolite struct {
	net *nn.Sequential
	// Threshold is the objectness acceptance level, calibrated on the
	// training distribution for high precision.
	Threshold float64
	// stride is the output-cell size in input pixels.
	stride int
	// minCells is the minimum number of positive cells per detection.
	minCells int

	// ws and mask are Detect's private eval scratch: the score path
	// draws every buffer from ws and the cell mask is reused across
	// frames, so steady-state detection allocates nothing per frame.
	// They make Detect single-goroutine, which it already was — the
	// train-mode forward caches shared layer state too.
	ws   *nn.Workspace
	mask *vision.Image
}

var _ Detector = (*Yolite)(nil)

// yoliteStride is fixed by the two stride-2 convolutions.
const yoliteStride = 4

// NewYolite builds an untrained detector (weights from rng).
func NewYolite(rng *rand.Rand) *Yolite {
	// A full-resolution stem plus three downsampling-free and
	// downsampling stages: deep enough to be the slowest method in
	// Table II, like the full YOLOv3 backbone is on a CPU.
	net := nn.NewSequential(
		nn.NewConv2D("yolite.stem", nn.Conv2DConfig{
			InC: 1, OutC: 32, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("yolite.conv1", nn.Conv2DConfig{
			InC: 32, OutC: 56, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("yolite.conv2", nn.Conv2DConfig{
			InC: 56, OutC: 56, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("yolite.head", nn.Conv2DConfig{
			InC: 56, OutC: 1, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1,
		}, rng),
	)
	return &Yolite{net: net, Threshold: 0.5, stride: yoliteStride, minCells: 2}
}

// Name returns "yolite".
func (d *Yolite) Name() string { return "yolite" }

// Params exposes the network parameters (for persistence).
func (d *Yolite) Params() []*nn.Param { return d.net.Params() }

// SetTrain toggles the grid CNN between its cache-writing training
// forward and the stateless eval forward.
func (d *Yolite) SetTrain(train bool) { d.net.SetTrain(train) }

// Forward runs the grid CNN on one [1,H,W] frame tensor and returns
// the raw cell logits [1,GH,GW] — the allocating reference path the
// workspace variants are tested bit-identical against.
func (d *Yolite) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	logits, err := d.net.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("detect: yolite: %w", err)
	}
	return logits, nil
}

// ForwardWS is the eval forward through workspace scratch: it accepts
// one [1,H,W] frame tensor or a channel-major [1,N,H,W] frame batch
// (batch axis second), returning cell logits of matching rank,
// bit-identical to Forward. The result is a workspace buffer — valid
// until ws is reset, owned by the calling goroutine.
func (d *Yolite) ForwardWS(x *tensor.Tensor, ws *nn.Workspace) (*tensor.Tensor, error) {
	logits, err := d.net.ForwardWS(x, ws)
	if err != nil {
		return nil, fmt.Errorf("detect: yolite: %w", err)
	}
	return logits, nil
}

// ForwardBatch implements the unified engine contract (infer.Model):
// n [1,H,W] frames ride one stacked [1,N,H,W] pass — one im2col + one
// matmul per conv layer — and come back as n fresh [1,GH,GW] cell-
// logit tensors, bit-identical to Forward per frame.
func (d *Yolite) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	defer ws.Reset()
	for i, f := range xs {
		if f.Rank() != 3 || f.Shape[0] != 1 {
			return nil, fmt.Errorf("detect: frame %d has shape %v, want [1,H,W]", i, f.Shape)
		}
	}
	n := len(xs)
	h, w := xs[0].Shape[1], xs[0].Shape[2]
	x := ws.Get(1, n, h, w)
	vol := h * w
	for i, f := range xs {
		copy(x.Data[i*vol:(i+1)*vol], f.Data)
	}
	batched, err := d.ForwardWS(x, ws) // [1,N,GH,GW]
	if err != nil {
		return nil, err
	}
	gh, gw := batched.Shape[2], batched.Shape[3]
	cells := gh * gw
	out := make([]*tensor.Tensor, n)
	for i := range out {
		l := tensor.New(1, gh, gw)
		copy(l.Data, batched.Data[i*cells:(i+1)*cells])
		out[i] = l
	}
	return out, nil
}

// ScoreMapWS scores one frame through the pooled eval path: the frame
// copy, every conv scratch buffer, and the sigmoid objectness map all
// land in ws, so a warm caller's per-frame score path allocates
// nothing. The returned [1,GH,GW] map (cells of stride×stride pixels)
// is valid until ws is reset.
func (d *Yolite) ScoreMapWS(frame *vision.Image, ws *nn.Workspace) (*tensor.Tensor, error) {
	x := ws.Get(1, frame.H, frame.W)
	copy(x.Data, frame.Pix)
	logits, err := d.ForwardWS(x, ws)
	if err != nil {
		return nil, err
	}
	for i, z := range logits.Data {
		logits.Data[i] = 1 / (1 + math.Exp(-z))
	}
	return logits, nil
}

// Detect scores the final frame and boxes groups of positive cells.
// The score path runs through the detector's private workspace and
// the cell mask is reused, so a warm detector's per-frame eval
// allocates only the returned rects. Not safe for concurrent use.
func (d *Yolite) Detect(frames []*vision.Image) ([]vision.Rect, error) {
	if err := minSequence(frames, 1); err != nil {
		return nil, err
	}
	frame := frames[len(frames)-1]
	if d.ws == nil {
		d.ws = nn.NewWorkspace()
	}
	defer d.ws.Reset()
	d.net.SetTrain(false)
	probs, err := d.ScoreMapWS(frame, d.ws)
	if err != nil {
		return nil, err
	}
	gh, gw := probs.Shape[1], probs.Shape[2]
	if d.mask == nil || d.mask.W != gw || d.mask.H != gh {
		d.mask = vision.NewImage(gw, gh)
	} else {
		d.mask.Fill(0)
	}
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			if probs.At(0, y, x) >= d.Threshold {
				d.mask.Set(x, y, 1)
			}
		}
	}
	blobs := vision.ConnectedComponents(d.mask, d.minCells)
	rects := make([]vision.Rect, 0, len(blobs))
	for _, b := range blobs {
		rects = append(rects, vision.Rect{
			X0: b.Bounds.X0 * d.stride, Y0: b.Bounds.Y0 * d.stride,
			X1: b.Bounds.X1 * d.stride, Y1: b.Bounds.Y1 * d.stride,
		})
	}
	return rects, nil
}

// yoliteSample is one training frame with its cell-level target map.
type yoliteSample struct {
	frame  *vision.Image
	target *tensor.Tensor // [1, H/stride, W/stride]
}

// synthNearFieldSample renders a clean near-field training image:
// bright, large vehicles on an even road — the training distribution
// the detector later fails to generalise from.
func synthNearFieldSample(rng *rand.Rand, w, h, stride int) yoliteSample {
	im := vision.NewImage(w, h)
	im.Fill(0.33)
	// A lane marking for realism.
	for x := 0; x < w; x += 8 {
		im.FillRect(x, h/2, x+4, h/2+1, 0.6)
	}
	gh, gw := h/stride, w/stride
	target := tensor.New(1, gh, gw)
	nVeh := rng.Intn(3) // 0–2 vehicles; empties teach the negative class
	for v := 0; v < nVeh; v++ {
		vl := 14 + rng.Intn(7) // near-field scale: 14–20 px long
		vw := 6 + rng.Intn(3)
		x0 := rng.Intn(w - vl)
		y0 := rng.Intn(h - vw)
		im.FillRect(x0, y0, x0+vl, y0+vw, 0.82+0.12*rng.Float64())
		for gy := 0; gy < gh; gy++ {
			for gx := 0; gx < gw; gx++ {
				cx := gx*stride + stride/2
				cy := gy*stride + stride/2
				if cx >= x0 && cx < x0+vl && cy >= y0 && cy < y0+vw {
					target.Set(1, 0, gy, gx)
				}
			}
		}
	}
	return yoliteSample{frame: im, target: target}
}

// TrainYolite fits the detector on synthetic clean near-field frames
// with per-cell logistic loss and returns the ready detector.
func TrainYolite(seed int64, epochs int) (*Yolite, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("detect: yolite epochs %d must be positive", epochs)
	}
	rng := rand.New(rand.NewSource(seed))
	d := NewYolite(rng)
	const (
		trainW, trainH = 48, 32
		nSamples       = 20
	)
	samples := make([]yoliteSample, nSamples)
	for i := range samples {
		samples[i] = synthNearFieldSample(rng, trainW, trainH, d.stride)
	}
	opt := nn.NewAdam(0.01)
	params := d.net.Params()
	d.net.SetTrain(true)
	defer d.net.SetTrain(false)
	for e := 0; e < epochs; e++ {
		for _, s := range samples {
			nn.ZeroGrad(params)
			x := tensor.New(1, s.frame.H, s.frame.W)
			copy(x.Data, s.frame.Pix)
			logits, err := d.net.Forward(x)
			if err != nil {
				return nil, fmt.Errorf("detect: yolite train: %w", err)
			}
			// Per-cell logistic loss gradient: sigmoid(z) − target.
			grad := tensor.New(logits.Shape...)
			n := float64(logits.Len())
			for i, z := range logits.Data {
				p := 1 / (1 + math.Exp(-z))
				grad.Data[i] = (p - s.target.Data[i]) / n
			}
			if _, err := d.net.Backward(grad); err != nil {
				return nil, fmt.Errorf("detect: yolite train: %w", err)
			}
			if err := opt.Step(params); err != nil {
				return nil, fmt.Errorf("detect: yolite train: %w", err)
			}
		}
	}
	return d, nil
}
