package detect

import (
	"fmt"
	"math"

	"safecross/internal/flow"
	"safecross/internal/vision"
)

// SparseFlow is the Lucas–Kanade corner-tracking detector. It is very
// fast, but on noisy, low-contrast surveillance frames the strongest
// corners belong to static structure (lane markings, the truck,
// sensor noise), so the small moving car in the danger zone rarely
// collects enough coherent tracks — the failure the paper reports in
// Fig. 8(b).
type SparseFlow struct {
	// MaxCorners bounds the tracked corner count.
	MaxCorners int
	// Quality is the Shi–Tomasi quality fraction.
	Quality float64
	// MinDist is the corner suppression radius.
	MinDist int
	// Window is the LK window radius.
	Window int
	// MinDisp and MaxDisp bracket plausible per-frame vehicle motion.
	MinDisp, MaxDisp float64
	// ClusterPts is the minimum coherent moving tracks per detection.
	ClusterPts int
	// ClusterRadius groups moving tracks within this distance.
	ClusterRadius float64
}

var _ Detector = (*SparseFlow)(nil)

// NewSparseFlow returns the calibrated sparse-flow detector.
func NewSparseFlow() *SparseFlow {
	return &SparseFlow{
		MaxCorners: 40, Quality: 0.12, MinDist: 4, Window: 3,
		MinDisp: 0.4, MaxDisp: 6, ClusterPts: 3, ClusterRadius: 9,
	}
}

// Name returns "sparse-of".
func (d *SparseFlow) Name() string { return "sparse-of" }

// Detect tracks corners between the last two frames and boxes
// clusters of coherently moving tracks.
func (d *SparseFlow) Detect(frames []*vision.Image) ([]vision.Rect, error) {
	if err := minSequence(frames, 2); err != nil {
		return nil, err
	}
	prev := frames[len(frames)-2]
	cur := frames[len(frames)-1]
	corners := flow.FindCorners(prev, d.MaxCorners, d.Quality, d.MinDist)
	tracked, err := flow.LucasKanade(prev, cur, corners, d.Window)
	if err != nil {
		return nil, fmt.Errorf("detect: sparse-of: %w", err)
	}
	var moving []flow.Point
	for _, tp := range tracked {
		if !tp.Valid {
			continue
		}
		dx, dy := tp.Displacement()
		mag := math.Hypot(dx, dy)
		if mag >= d.MinDisp && mag <= d.MaxDisp {
			moving = append(moving, tp.From)
		}
	}
	return clusterPoints(moving, d.ClusterRadius, d.ClusterPts), nil
}

// clusterPoints greedily groups points within radius of each other
// and returns bounding boxes of groups with at least minPts members.
func clusterPoints(pts []flow.Point, radius float64, minPts int) []vision.Rect {
	if len(pts) == 0 {
		return nil
	}
	assigned := make([]int, len(pts))
	for i := range assigned {
		assigned[i] = -1
	}
	var clusters [][]int
	for i := range pts {
		if assigned[i] >= 0 {
			continue
		}
		// Grow a cluster from point i.
		cluster := []int{i}
		assigned[i] = len(clusters)
		for qi := 0; qi < len(cluster); qi++ {
			p := pts[cluster[qi]]
			for j := range pts {
				if assigned[j] >= 0 {
					continue
				}
				dx, dy := pts[j].X-p.X, pts[j].Y-p.Y
				if dx*dx+dy*dy <= radius*radius {
					assigned[j] = len(clusters)
					cluster = append(cluster, j)
				}
			}
		}
		clusters = append(clusters, cluster)
	}
	var rects []vision.Rect
	for _, cluster := range clusters {
		if len(cluster) < minPts {
			continue
		}
		r := vision.Rect{X0: 1 << 30, Y0: 1 << 30, X1: -(1 << 30), Y1: -(1 << 30)}
		for _, idx := range cluster {
			x, y := int(pts[idx].X), int(pts[idx].Y)
			if x < r.X0 {
				r.X0 = x
			}
			if y < r.Y0 {
				r.Y0 = y
			}
			if x+1 > r.X1 {
				r.X1 = x + 1
			}
			if y+1 > r.Y1 {
				r.Y1 = y + 1
			}
		}
		rects = append(rects, r)
	}
	return rects
}

// DenseFlow is the Horn–Schunck detector: it thresholds the dense
// flow magnitude and boxes the connected motion regions. It finds the
// danger-zone vehicle reliably but costs two orders of magnitude more
// than background subtraction (Table II's 224 ms vs 0.74 ms).
type DenseFlow struct {
	// Alpha is the Horn–Schunck smoothness weight.
	Alpha float64
	// Iters is the relaxation sweep count (the dominant cost).
	Iters int
	// MagThreshold binarises the flow magnitude.
	MagThreshold float64
	// MinArea drops small motion blobs.
	MinArea int
}

var _ Detector = (*DenseFlow)(nil)

// NewDenseFlow returns the calibrated dense-flow detector.
func NewDenseFlow() *DenseFlow {
	return &DenseFlow{Alpha: 1.0, Iters: 90, MagThreshold: 0.09, MinArea: 8}
}

// Name returns "dense-of".
func (d *DenseFlow) Name() string { return "dense-of" }

// Detect computes dense flow between the last two frames and boxes
// high-magnitude regions.
func (d *DenseFlow) Detect(frames []*vision.Image) ([]vision.Rect, error) {
	if err := minSequence(frames, 2); err != nil {
		return nil, err
	}
	prev := frames[len(frames)-2]
	cur := frames[len(frames)-1]
	field, err := flow.HornSchunck(prev, cur, d.Alpha, d.Iters)
	if err != nil {
		return nil, fmt.Errorf("detect: dense-of: %w", err)
	}
	mask := field.MagnitudeImage().Threshold(d.MagThreshold)
	mask = vision.Open(mask, 1)
	blobs := vision.ConnectedComponents(mask, d.MinArea)
	rects := make([]vision.Rect, 0, len(blobs))
	for _, b := range blobs {
		rects = append(rects, b.Bounds)
	}
	return rects, nil
}
