package video

import (
	"fmt"
	"math/rand"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// SlowFastConfig configures the SlowFast network. The defaults follow
// the paper's slowfast_r50_4x16 recipe scaled to occupancy-grid
// inputs: the slow pathway sees T/Alpha frames at full channel
// capacity, the fast pathway sees every frame with a fraction (β) of
// the channels, and lateral connections fuse fast into slow.
type SlowFastConfig struct {
	// T is the clip length (default 32, the paper's segment length).
	T int
	// H and W are the occupancy-grid dimensions (default 10×16).
	H, W int
	// Alpha is the slow-pathway temporal subsampling ratio (default 8:
	// the slow pathway sees 4 of 32 frames, as in the paper).
	Alpha int
	// Classes is the number of output classes (default 2).
	Classes int
	// Lateral enables the fast→slow lateral connections; disabling
	// them is the ablation in bench_test.go.
	Lateral bool
	// Seed initialises the weights.
	Seed int64
}

// DefaultSlowFastConfig returns the configuration used across the
// experiments.
func DefaultSlowFastConfig() SlowFastConfig {
	return SlowFastConfig{T: 32, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true}
}

// SlowFast is the two-pathway video classifier (Feichtenhofer et al.,
// adopted by the paper as its basic model). The fast pathway runs on
// every frame with few channels; the slow pathway runs on a temporally
// subsampled clip with more channels; a time-strided lateral
// convolution injects fast features into the slow pathway before a
// fused head classifies.
type SlowFast struct {
	cfg SlowFastConfig

	fast    *nn.Sequential // full-rate pathway
	slow    *nn.Sequential // subsampled pathway
	lateral *nn.Conv3D     // time-strided fast→slow connection
	fuse    *nn.Sequential // post-concat convolution stack
	gapFuse *nn.GlobalAvgPool3D
	gapFast *nn.GlobalAvgPool3D
	headFC  *nn.Linear

	slowCh, latCh, fastCh int

	// Forward caches for the custom backward pass.
	cacheFastOut *tensor.Tensor
}

var (
	_ Classifier     = (*SlowFast)(nil)
	_ BatchForwarder = (*SlowFast)(nil)
)

// Channel widths of the two pathways. The β=1/4 fast/slow channel
// ratio mirrors the paper's lightweight fast pathway.
const (
	slowFastSlowCh = 10
	slowFastFastCh = 6
	slowFastLatCh  = 6
	slowFastFuseCh = 16
)

// NewSlowFast builds a SlowFast classifier for the given
// configuration.
func NewSlowFast(cfg SlowFastConfig) (*SlowFast, error) {
	if cfg.T == 0 {
		cfg = fillSlowFastDefaults(cfg)
	}
	if cfg.T%cfg.Alpha != 0 {
		return nil, fmt.Errorf("video: T=%d not divisible by alpha=%d", cfg.T, cfg.Alpha)
	}
	if cfg.T%2 != 0 {
		return nil, fmt.Errorf("video: T=%d must be even for the fast pathway stride", cfg.T)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	m := &SlowFast{cfg: cfg, slowCh: slowFastSlowCh, latCh: slowFastLatCh, fastCh: slowFastFastCh}

	// Fast pathway: high frame rate, thin channels. The second conv
	// strides time by 2 to keep cost bounded while retaining 2× the
	// slow pathway's temporal resolution at its output.
	m.fast = nn.NewSequential(
		nn.NewConv3D("fast.conv1", nn.Conv3DConfig{
			InC: 1, OutC: 3, KT: 3, KH: 3, KW: 3,
			ST: 1, SH: 2, SW: 2, PT: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv3D("fast.conv2", nn.Conv3DConfig{
			InC: 3, OutC: slowFastFastCh, KT: 3, KH: 3, KW: 3,
			ST: 2, SH: 1, SW: 1, PT: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
	)
	// Slow pathway: low frame rate, wide channels, spatial-only
	// kernels in the stem (the paper notes slow stems avoid temporal
	// convolution).
	m.slow = nn.NewSequential(
		nn.NewConv3D("slow.conv1", nn.Conv3DConfig{
			InC: 1, OutC: slowFastSlowCh, KT: 1, KH: 3, KW: 3,
			ST: 1, SH: 2, SW: 2, PT: 0, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
	)
	fuseIn := slowFastSlowCh
	if cfg.Lateral {
		// Fast output has T/2 frames; the lateral conv time-strides by
		// alpha/2 to land on the slow pathway's T/alpha frames.
		m.lateral = nn.NewConv3D("lateral.conv", nn.Conv3DConfig{
			InC: slowFastFastCh, OutC: slowFastLatCh, KT: 3, KH: 1, KW: 1,
			ST: cfg.Alpha / 2, SH: 1, SW: 1, PT: 1, PH: 0, PW: 0,
		}, rng)
		fuseIn += slowFastLatCh
	}
	m.fuse = nn.NewSequential(
		nn.NewConv3D("fuse.conv1", nn.Conv3DConfig{
			InC: fuseIn, OutC: slowFastFuseCh, KT: 3, KH: 3, KW: 3,
			ST: 1, SH: 2, SW: 2, PT: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
	)
	m.gapFuse = nn.NewGlobalAvgPool3D()
	m.gapFast = nn.NewGlobalAvgPool3D()
	m.headFC = nn.NewLinear("head.fc", slowFastFuseCh+slowFastFastCh, cfg.Classes, rng)
	return m, nil
}

func fillSlowFastDefaults(cfg SlowFastConfig) SlowFastConfig {
	d := DefaultSlowFastConfig()
	d.Seed = cfg.Seed
	d.Lateral = cfg.Lateral
	return d
}

// SlowFastBuilder returns a Builder producing identically configured
// SlowFast networks.
func SlowFastBuilder(cfg SlowFastConfig) Builder {
	return func() (Classifier, error) { return NewSlowFast(cfg) }
}

// Name returns "slowfast", or "slowfast-nolateral" for the ablated
// variant.
func (m *SlowFast) Name() string {
	if !m.cfg.Lateral {
		return "slowfast-nolateral"
	}
	return "slowfast"
}

// Config returns the model configuration.
func (m *SlowFast) Config() SlowFastConfig { return m.cfg }

// Forward maps a [1,T,H,W] clip to class logits.
func (m *SlowFast) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Shape[0] != 1 || x.Shape[1] != m.cfg.T {
		return nil, fmt.Errorf("slowfast: input shape %v, want [1,%d,H,W]", x.Shape, m.cfg.T)
	}
	fastOut, err := m.fast.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("slowfast fast pathway: %w", err)
	}
	m.cacheFastOut = fastOut

	xs, err := sampleTemporal(x, m.cfg.Alpha, 0)
	if err != nil {
		return nil, fmt.Errorf("slowfast: %w", err)
	}
	slowOut, err := m.slow.Forward(xs)
	if err != nil {
		return nil, fmt.Errorf("slowfast slow pathway: %w", err)
	}

	fused := slowOut
	if m.cfg.Lateral {
		lat, err := m.lateral.Forward(fastOut)
		if err != nil {
			return nil, fmt.Errorf("slowfast lateral: %w", err)
		}
		fused, err = nn.ConcatChannels4D(slowOut, lat)
		if err != nil {
			return nil, fmt.Errorf("slowfast concat: %w", err)
		}
	}
	fuseOut, err := m.fuse.Forward(fused)
	if err != nil {
		return nil, fmt.Errorf("slowfast fuse: %w", err)
	}
	fuseFeat, err := m.gapFuse.Forward(fuseOut)
	if err != nil {
		return nil, fmt.Errorf("slowfast gap(fuse): %w", err)
	}
	fastFeat, err := m.gapFast.Forward(fastOut)
	if err != nil {
		return nil, fmt.Errorf("slowfast gap(fast): %w", err)
	}
	feat := tensor.New(fuseFeat.Len() + fastFeat.Len())
	copy(feat.Data, fuseFeat.Data)
	copy(feat.Data[fuseFeat.Len():], fastFeat.Data)
	logits, err := m.headFC.Forward(feat)
	if err != nil {
		return nil, fmt.Errorf("slowfast head: %w", err)
	}
	return logits, nil
}

// ForwardBatch runs n clips through one two-pathway pass: the clips
// are stacked into a channel-major [1,N,T,H,W] tensor so each conv
// stage is one im2col + one matmul for the whole batch. Scratch comes
// from ws; the returned logits are fresh per-clip tensors,
// bit-identical to the eval-mode Forward on each clip.
func (m *SlowFast) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("slowfast: empty batch")
	}
	for i, x := range xs {
		if x.Rank() != 4 || x.Shape[0] != 1 || x.Shape[1] != m.cfg.T {
			return nil, fmt.Errorf("slowfast: clip %d shape %v, want [1,%d,H,W]", i, x.Shape, m.cfg.T)
		}
	}
	defer ws.Reset()

	x := stackClips(ws, xs)
	fastOut, err := m.fast.ForwardWS(x, ws)
	if err != nil {
		return nil, fmt.Errorf("slowfast fast pathway: %w", err)
	}

	xsSlow, err := sampleTemporalBatch(ws, x, m.cfg.Alpha, 0)
	if err != nil {
		return nil, fmt.Errorf("slowfast: %w", err)
	}
	slowOut, err := m.slow.ForwardWS(xsSlow, ws)
	if err != nil {
		return nil, fmt.Errorf("slowfast slow pathway: %w", err)
	}

	fused := slowOut
	if m.cfg.Lateral {
		lat, err := m.lateral.ForwardWS(fastOut, ws)
		if err != nil {
			return nil, fmt.Errorf("slowfast lateral: %w", err)
		}
		fused, err = nn.ConcatChannelsWS(ws, slowOut, lat)
		if err != nil {
			return nil, fmt.Errorf("slowfast concat: %w", err)
		}
	}
	fuseOut, err := m.fuse.ForwardWS(fused, ws)
	if err != nil {
		return nil, fmt.Errorf("slowfast fuse: %w", err)
	}
	fuseFeat, err := m.gapFuse.ForwardWS(fuseOut, ws)
	if err != nil {
		return nil, fmt.Errorf("slowfast gap(fuse): %w", err)
	}
	fastFeat, err := m.gapFast.ForwardWS(fastOut, ws)
	if err != nil {
		return nil, fmt.Errorf("slowfast gap(fast): %w", err)
	}
	// Per-sample feature concatenation [N, fuseCh+fastCh], fuse block
	// first — the same order the single-clip head sees.
	fuseCh, fastCh := fuseFeat.Shape[1], fastFeat.Shape[1]
	feat := ws.Get(n, fuseCh+fastCh)
	for i := 0; i < n; i++ {
		row := feat.Data[i*(fuseCh+fastCh):]
		copy(row[:fuseCh], fuseFeat.Data[i*fuseCh:])
		copy(row[fuseCh:fuseCh+fastCh], fastFeat.Data[i*fastCh:])
	}
	logits, err := m.headFC.ForwardWS(feat, ws)
	if err != nil {
		return nil, fmt.Errorf("slowfast head: %w", err)
	}
	return splitLogits(logits, n), nil
}

// Backward propagates the logits gradient through head, both
// pathways, and the lateral connection, accumulating parameter
// gradients.
func (m *SlowFast) Backward(dlogits *tensor.Tensor) error {
	if m.cacheFastOut == nil {
		return fmt.Errorf("slowfast: Backward before Forward")
	}
	dfeat, err := m.headFC.Backward(dlogits)
	if err != nil {
		return fmt.Errorf("slowfast head: %w", err)
	}
	dfuseFeat := tensor.New(slowFastFuseCh)
	copy(dfuseFeat.Data, dfeat.Data[:slowFastFuseCh])
	dfastFeat := tensor.New(slowFastFastCh)
	copy(dfastFeat.Data, dfeat.Data[slowFastFuseCh:])

	dfuseOut, err := m.gapFuse.Backward(dfuseFeat)
	if err != nil {
		return fmt.Errorf("slowfast gap(fuse): %w", err)
	}
	dfused, err := m.fuse.Backward(dfuseOut)
	if err != nil {
		return fmt.Errorf("slowfast fuse: %w", err)
	}

	// Fast pathway receives gradient from its direct GAP feature and,
	// when lateral connections are on, from the lateral branch.
	dfastOut, err := m.gapFast.Backward(dfastFeat)
	if err != nil {
		return fmt.Errorf("slowfast gap(fast): %w", err)
	}
	var dslowOut *tensor.Tensor
	if m.cfg.Lateral {
		ds, dlat, err := nn.SplitChannels4D(dfused, m.slowCh)
		if err != nil {
			return fmt.Errorf("slowfast split: %w", err)
		}
		dslowOut = ds
		dfastFromLat, err := m.lateral.Backward(dlat)
		if err != nil {
			return fmt.Errorf("slowfast lateral: %w", err)
		}
		if err := dfastOut.AddInPlace(dfastFromLat); err != nil {
			return fmt.Errorf("slowfast fast-grad merge: %w", err)
		}
	} else {
		dslowOut = dfused
	}

	dxs, err := m.slow.Backward(dslowOut)
	if err != nil {
		return fmt.Errorf("slowfast slow pathway: %w", err)
	}
	// The input gradient from the slow pathway scatters back to the
	// sampled frame indices; we do not propagate input gradients to
	// callers (inputs are data), but the scatter validates shapes.
	if _, err := scatterTemporal(dxs, m.cfg.T, m.cfg.Alpha, 0); err != nil {
		return fmt.Errorf("slowfast: %w", err)
	}
	if _, err := m.fast.Backward(dfastOut); err != nil {
		return fmt.Errorf("slowfast fast pathway: %w", err)
	}
	return nil
}

// Params returns all trainable parameters of both pathways, the
// lateral connection (if enabled), the fused head, and the classifier.
func (m *SlowFast) Params() []*nn.Param {
	ps := append([]*nn.Param(nil), m.fast.Params()...)
	ps = append(ps, m.slow.Params()...)
	if m.cfg.Lateral {
		ps = append(ps, m.lateral.Params()...)
	}
	ps = append(ps, m.fuse.Params()...)
	ps = append(ps, m.headFC.Params()...)
	return ps
}

// SetTrain toggles training behaviour on all train-aware layers,
// including the lateral connection: in eval mode the convs drop their
// im2col caches, so a serving replica stops pinning column matrices.
func (m *SlowFast) SetTrain(train bool) {
	m.fast.SetTrain(train)
	m.slow.SetTrain(train)
	if m.lateral != nil {
		m.lateral.SetTrain(train)
	}
	m.fuse.SetTrain(train)
}
