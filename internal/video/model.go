// Package video implements the video-classification (VC) module: the
// SlowFast two-pathway network the paper trains as its basic model,
// and the C3D and TSN baselines it compares against in Table IV. All
// models consume [1, T, H, W] occupancy-grid clips produced by the VP
// module and emit class logits.
package video

import (
	"fmt"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// Classifier is a trainable video classifier.
type Classifier interface {
	// Name identifies the architecture (e.g. "slowfast").
	Name() string
	// Forward maps a [1,T,H,W] clip to rank-1 class logits.
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	// Backward consumes the loss gradient with respect to the logits,
	// accumulating parameter gradients. Must follow a Forward call.
	Backward(dlogits *tensor.Tensor) error
	// Params returns all trainable parameters.
	Params() []*nn.Param
	// SetTrain toggles training-time behaviour (dropout etc.).
	SetTrain(train bool)
}

// Builder constructs a fresh, randomly initialised classifier. MAML
// (internal/fewshot) uses builders to clone networks structurally.
type Builder func() (Classifier, error)

// sampleTemporal extracts every stride-th frame from a [C,T,H,W]
// tensor starting at offset, producing [C,T/stride,H,W]. It is the
// slow pathway's input subsampling (the paper's α ratio).
func sampleTemporal(x *tensor.Tensor, stride, offset int) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("video: temporal sample needs [C,T,H,W], got %v", x.Shape)
	}
	c, t, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if stride <= 0 || offset < 0 || offset >= stride {
		return nil, fmt.Errorf("video: bad temporal sampling stride=%d offset=%d", stride, offset)
	}
	if t%stride != 0 {
		return nil, fmt.Errorf("video: T=%d not divisible by stride %d", t, stride)
	}
	ot := t / stride
	out := tensor.New(c, ot, h, w)
	spat := h * w
	for ci := 0; ci < c; ci++ {
		for oz := 0; oz < ot; oz++ {
			src := x.Data[(ci*t+oz*stride+offset)*spat:]
			dst := out.Data[(ci*ot+oz)*spat:]
			copy(dst[:spat], src[:spat])
		}
	}
	return out, nil
}

// sampleTemporalBatch is sampleTemporal for a channel-major batch: it
// extracts every stride-th frame from a [C,N,T,H,W] tensor into a
// [C,N,T/stride,H,W] workspace buffer. Per sample it selects exactly
// the frames sampleTemporal would, so the batched slow pathway sees
// bit-identical inputs.
func sampleTemporalBatch(ws *nn.Workspace, x *tensor.Tensor, stride, offset int) (*tensor.Tensor, error) {
	if x.Rank() != 5 {
		return nil, fmt.Errorf("video: batched temporal sample needs [C,N,T,H,W], got %v", x.Shape)
	}
	c, n, t, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	if stride <= 0 || offset < 0 || offset >= stride {
		return nil, fmt.Errorf("video: bad temporal sampling stride=%d offset=%d", stride, offset)
	}
	if t%stride != 0 {
		return nil, fmt.Errorf("video: T=%d not divisible by stride %d", t, stride)
	}
	ot := t / stride
	out := ws.Get(c, n, ot, h, w)
	spat := h * w
	for p := 0; p < c*n; p++ {
		src := x.Data[p*t*spat:]
		dst := out.Data[p*ot*spat:]
		for oz := 0; oz < ot; oz++ {
			copy(dst[oz*spat:(oz+1)*spat], src[(oz*stride+offset)*spat:])
		}
	}
	return out, nil
}

// scatterTemporal is the adjoint of sampleTemporal: it places the
// gradient of the sampled frames back at their source time indices in
// a zero [C,T,H,W] tensor.
func scatterTemporal(dout *tensor.Tensor, t, stride, offset int) (*tensor.Tensor, error) {
	if dout.Rank() != 4 {
		return nil, fmt.Errorf("video: temporal scatter needs rank-4 grad, got %v", dout.Shape)
	}
	c, ot, h, w := dout.Shape[0], dout.Shape[1], dout.Shape[2], dout.Shape[3]
	if ot*stride != t {
		return nil, fmt.Errorf("video: scatter target T=%d incompatible with %d×%d", t, ot, stride)
	}
	out := tensor.New(c, t, h, w)
	spat := h * w
	for ci := 0; ci < c; ci++ {
		for oz := 0; oz < ot; oz++ {
			src := dout.Data[(ci*ot+oz)*spat:]
			dst := out.Data[(ci*t+oz*stride+offset)*spat:]
			copy(dst[:spat], src[:spat])
		}
	}
	return out, nil
}
