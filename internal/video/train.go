package video

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"safecross/internal/dataset"
	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// TrainConfig controls classifier training.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the number of clips whose gradients are averaged
	// per optimizer step (default 8).
	BatchSize int
	// LR is the Adam learning rate (default 0.004).
	LR float64
	// ClipGrad caps the global gradient norm (0 disables; default 5).
	ClipGrad float64
	// Seed drives shuffling.
	Seed int64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
	// CosineLR anneals the learning rate from LR to ≈0 over the run
	// with a half-cosine schedule.
	CosineLR bool
	// LabelSmoothing spreads this much target mass uniformly over the
	// classes (0 disables).
	LabelSmoothing float64
	// Val, when non-empty, enables early stopping: training halts
	// after Patience epochs without a validation Top-1 improvement.
	Val []*dataset.Clip
	// Patience is the early-stopping window (default 3 when Val set).
	Patience int
}

// fill applies defaults.
func (c TrainConfig) fill() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 6
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.LR == 0 {
		c.LR = 0.004
	}
	if c.ClipGrad == 0 {
		c.ClipGrad = 5
	}
	if len(c.Val) > 0 && c.Patience == 0 {
		c.Patience = 3
	}
	return c
}

// TrainResult summarises a training run.
type TrainResult struct {
	// Epochs actually run.
	Epochs int
	// FinalLoss is the mean training loss of the last epoch.
	FinalLoss float64
	// Steps is the number of optimizer steps taken.
	Steps int
	// EarlyStopped reports whether validation patience ended the run.
	EarlyStopped bool
}

// stepTrainer is implemented by classifiers (TSN) whose backward pass
// must be interleaved with per-snippet forwards; the harness prefers
// it over the generic Forward/Backward split when available.
type stepTrainer interface {
	lossAndGrad(x *tensor.Tensor, label int) (float64, *tensor.Tensor, error)
}

// exampleStep runs forward+loss+backward for one clip, accumulating
// parameter gradients, and returns the loss.
func exampleStep(m Classifier, x *tensor.Tensor, label int, smoothing float64) (float64, error) {
	if st, ok := m.(stepTrainer); ok {
		loss, _, err := st.lossAndGrad(x, label)
		return loss, err
	}
	logits, err := m.Forward(x)
	if err != nil {
		return 0, err
	}
	loss, dlogits, err := nn.SoftmaxCrossEntropySmoothed(logits, label, smoothing)
	if err != nil {
		return 0, err
	}
	if err := m.Backward(dlogits); err != nil {
		return 0, err
	}
	return loss, nil
}

// Train fits the classifier on the given clips with Adam, shuffling
// each epoch and averaging gradients over minibatches.
func Train(m Classifier, clips []*dataset.Clip, cfg TrainConfig) (*TrainResult, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("video: no training clips")
	}
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	params := m.Params()
	m.SetTrain(true)
	defer m.SetTrain(false)

	order := make([]int, len(clips))
	for i := range order {
		order[i] = i
	}

	res := &TrainResult{Epochs: cfg.Epochs}
	bestVal := -1.0
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.CosineLR {
			// Half-cosine anneal from LR toward zero.
			frac := float64(epoch) / float64(cfg.Epochs)
			opt.LR = cfg.LR * 0.5 * (1 + math.Cos(math.Pi*frac))
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		nn.ZeroGrad(params)
		inBatch := 0
		for n, idx := range order {
			clip := clips[idx]
			loss, err := exampleStep(m, clip.Input, clip.Label, cfg.LabelSmoothing)
			if err != nil {
				return nil, fmt.Errorf("video: train %s epoch %d clip %d: %w", m.Name(), epoch, idx, err)
			}
			epochLoss += loss
			inBatch++
			if inBatch == cfg.BatchSize || n == len(order)-1 {
				nn.ScaleGrads(params, 1/float64(inBatch))
				nn.ClipGradNorm(params, cfg.ClipGrad)
				if err := opt.Step(params); err != nil {
					return nil, fmt.Errorf("video: optimizer: %w", err)
				}
				nn.ZeroGrad(params)
				inBatch = 0
				res.Steps++
			}
		}
		res.FinalLoss = epochLoss / float64(len(order))
		res.Epochs = epoch + 1
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "%s epoch %d/%d loss %.4f\n", m.Name(), epoch+1, cfg.Epochs, res.FinalLoss)
		}
		if len(cfg.Val) > 0 {
			cm, err := Evaluate(m, cfg.Val)
			if err != nil {
				return nil, fmt.Errorf("video: validation: %w", err)
			}
			m.SetTrain(true) // Evaluate leaves eval mode on
			if acc := cm.Top1(); acc > bestVal {
				bestVal = acc
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.Patience {
					res.EarlyStopped = true
					if cfg.Log != nil {
						fmt.Fprintf(cfg.Log, "%s early stop at epoch %d (best val %.4f)\n", m.Name(), epoch+1, bestVal)
					}
					break
				}
			}
		}
	}
	return res, nil
}

// evalChunk caps how many clips one batched eval forward carries:
// large enough to amortise the per-batch im2col/matmul setup, small
// enough that eval peak memory stays close to the serving plane's.
const evalChunk = 8

// Evaluate runs the classifier over clips and returns the confusion
// matrix, from which Top-1 and mean-class accuracy (the paper's
// metrics) are read. Evaluation is batch-native: clips ride the
// engine's batched forward in chunks, with one throwaway workspace
// for the whole pass. Results are bit-identical to per-clip forwards.
func Evaluate(m Classifier, clips []*dataset.Clip) (*nn.ConfusionMatrix, error) {
	return EvaluateWS(m, clips, nn.NewWorkspace())
}

// EvaluateWS is Evaluate with caller-owned scratch: a long-lived
// caller (the few-shot eval loop, a benchmark) passing the same
// workspace keeps the whole evaluation allocation-pooled. Runs of
// equally-shaped clips share one batched forward (up to evalChunk per
// batch); a shape change just starts a new chunk. A nil ws is replaced
// by a throwaway workspace.
func EvaluateWS(m Classifier, clips []*dataset.Clip, ws *nn.Workspace) (*nn.ConfusionMatrix, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("video: no evaluation clips")
	}
	if ws == nil {
		ws = nn.NewWorkspace()
	}
	cm := nn.NewConfusionMatrix(dataset.NumClasses)
	batch := make([]*tensor.Tensor, 0, evalChunk)
	for start := 0; start < len(clips); {
		end := start + 1
		for end < len(clips) && end-start < evalChunk && sameShape(clips[end].Input, clips[start].Input) {
			end++
		}
		batch = batch[:0]
		for _, clip := range clips[start:end] {
			batch = append(batch, clip.Input)
		}
		labels, err := PredictBatch(m, batch, ws)
		if err != nil {
			return nil, fmt.Errorf("video: eval clips %d..%d: %w", start, end-1, err)
		}
		for i, label := range labels {
			if err := cm.Add(clips[start+i].Label, label); err != nil {
				return nil, fmt.Errorf("video: eval clip %d: %w", start+i, err)
			}
		}
		start = end
	}
	return cm, nil
}

// sameShape reports whether two clip tensors share a shape; nil breaks
// the run so validation reports the offending clip on its own.
func sameShape(a, b *tensor.Tensor) bool {
	if a == nil || b == nil || a.Rank() != b.Rank() {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Predict classifies one clip, returning the predicted label. It is
// the N=1 case of PredictBatch — there is no separate per-clip path.
func Predict(m Classifier, input *tensor.Tensor) (int, error) {
	return PredictWS(m, input, nil)
}

// PredictWS is Predict with caller-owned scratch, for callers that
// classify clip after clip and want the pooled steady state (the
// Framework's per-frame path, throughput studies).
func PredictWS(m Classifier, input *tensor.Tensor, ws *nn.Workspace) (int, error) {
	labels, err := PredictBatch(m, []*tensor.Tensor{input}, ws)
	if err != nil {
		return 0, err
	}
	return labels[0], nil
}
