package video

import (
	"math"
	"math/rand"
	"testing"

	"safecross/internal/dataset"
	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/tensor"
	"safecross/internal/vision"
)

// smallCfg is a reduced geometry that keeps unit tests fast while
// exercising every architectural element.
func smallCfg(seed int64) SlowFastConfig {
	return SlowFastConfig{T: 16, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: seed}
}

func TestSampleScatterTemporalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandnTensor(rng, 1, 2, 8, 3, 4)
	s, err := sampleTemporal(x, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shape[1] != 2 {
		t.Fatalf("sampled T = %d, want 2", s.Shape[1])
	}
	if s.At(0, 1, 2, 3) != x.At(0, 4, 2, 3) {
		t.Fatal("sampled frame mismatch")
	}
	// Adjoint property: <sample(x), y> == <x, scatter(y)>.
	y := tensor.RandnTensor(rng, 1, s.Shape...)
	back, err := scatterTemporal(y, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	lhs, _ := tensor.Dot(s, y)
	rhs, _ := tensor.Dot(x, back)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("scatter is not the adjoint of sample: %v vs %v", lhs, rhs)
	}
}

func TestSampleTemporalValidation(t *testing.T) {
	x := tensor.New(1, 8, 2, 2)
	if _, err := sampleTemporal(x, 3, 0); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := sampleTemporal(x, 4, 4); err == nil {
		t.Fatal("expected offset error")
	}
	if _, err := sampleTemporal(tensor.New(4), 2, 0); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestSlowFastForwardShapes(t *testing.T) {
	m, err := NewSlowFast(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandnTensor(rng, 0.5, 1, 16, 10, 16)
	logits, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rank() != 1 || logits.Len() != 2 {
		t.Fatalf("logits shape %v, want [2]", logits.Shape)
	}
	if !logits.AllFinite() {
		t.Fatal("logits not finite")
	}
	if _, err := m.Forward(tensor.New(1, 8, 10, 16)); err == nil {
		t.Fatal("expected T-mismatch error")
	}
}

func TestSlowFastConfigValidation(t *testing.T) {
	cfg := smallCfg(1)
	cfg.T = 15
	if _, err := NewSlowFast(cfg); err == nil {
		t.Fatal("expected alpha-divisibility error")
	}
}

func TestSlowFastDefaultsApplied(t *testing.T) {
	m, err := NewSlowFast(SlowFastConfig{Lateral: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().T != 32 || m.Config().Alpha != 8 {
		t.Fatalf("defaults not applied: %+v", m.Config())
	}
}

func TestSlowFastNames(t *testing.T) {
	with, err := NewSlowFast(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(1)
	cfg.Lateral = false
	without, err := NewSlowFast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if with.Name() != "slowfast" || without.Name() != "slowfast-nolateral" {
		t.Fatalf("names = %q / %q", with.Name(), without.Name())
	}
	// The ablated model has fewer parameters (no lateral conv and a
	// thinner fuse input).
	if nn.ParamCount(without.Params()) >= nn.ParamCount(with.Params()) {
		t.Fatal("ablated model should have fewer parameters")
	}
}

// TestSlowFastGradCheck verifies the custom two-pathway backward pass
// against finite differences on a handful of randomly chosen weights.
func TestSlowFastGradCheck(t *testing.T) {
	cfg := SlowFastConfig{T: 8, H: 6, W: 8, Alpha: 4, Classes: 2, Lateral: true, Seed: 3}
	m, err := NewSlowFast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandnTensor(rng, 0.5, 1, 8, 6, 8)
	label := 1

	lossAt := func() float64 {
		logits, err := m.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		loss, _, err := nn.SoftmaxCrossEntropy(logits, label)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	nn.ZeroGrad(m.Params())
	logits, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, dlogits, err := nn.SoftmaxCrossEntropy(logits, label)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(dlogits); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-5
	for _, p := range m.Params() {
		// Probe three indices per parameter to bound runtime.
		probes := []int{0, p.Value.Len() / 2, p.Value.Len() - 1}
		for _, i := range probes {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s grad[%d]: analytic %v numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestC3DForwardAndGradFlow(t *testing.T) {
	m, err := NewC3D(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandnTensor(rng, 0.5, 1, 16, 10, 16)
	logits, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Len() != 2 {
		t.Fatalf("logits len %d", logits.Len())
	}
	nn.ZeroGrad(m.Params())
	_, d, err := nn.SoftmaxCrossEntropy(logits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(d); err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, p := range m.Params() {
		if p.Grad.Norm2() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("no gradient flowed through C3D")
	}
	if m.Name() != "c3d" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestTSNForwardConsensus(t *testing.T) {
	m, err := NewTSN(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandnTensor(rng, 0.5, 1, 16, 10, 16)
	logits, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Len() != 2 {
		t.Fatalf("logits len %d", logits.Len())
	}
	// Consensus must equal the average of per-snippet logits: check
	// invariance to permuting non-snippet frames.
	idx := m.snippetIndices()
	onSnippet := make(map[int]bool, len(idx))
	for _, ti := range idx {
		onSnippet[ti] = true
	}
	y := x.Clone()
	h, w := 10, 16
	for ti := 0; ti < 16; ti++ {
		if !onSnippet[ti] {
			for i := 0; i < h*w; i++ {
				y.Data[ti*h*w+i] = rng.Float64()
			}
		}
	}
	logits2, err := m.Forward(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range logits.Data {
		if logits.Data[i] != logits2.Data[i] {
			t.Fatal("TSN must ignore non-snippet frames (sparse sampling)")
		}
	}
	if m.Name() != "tsn" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestTSNBackwardUnsupported(t *testing.T) {
	m, err := NewTSN(smallCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(tensor.New(2)); err == nil {
		t.Fatal("TSN.Backward must direct callers to the train-step path")
	}
}

// trainClips builds a small balanced clip set for training tests.
func trainClips(t *testing.T, n int, weather sim.Weather, seed int64, frames int) []*dataset.Clip {
	t.Helper()
	cfg := vision.DefaultVPConfig()
	clips := make([]*dataset.Clip, 0, n)
	for i := 0; i < n; i++ {
		sc := sim.Scenario{
			Weather: weather,
			Danger:  i%2 == 0,
			Blind:   i%4 < 2,
			Seed:    seed + int64(i)*31,
		}
		seg, err := sc.GenerateN(frames)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := dataset.FromSegment(seg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clips = append(clips, clip)
	}
	return clips
}

// TestTrainSlowFastLearnsTask trains the small SlowFast on a modest
// clip set and requires it to beat chance comfortably on held-out
// clips — the core learning sanity check.
func TestTrainSlowFastLearnsTask(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	train := trainClips(t, 48, sim.Day, 100, 16)
	test := trainClips(t, 20, sim.Day, 9000, 16)

	m, err := NewSlowFast(smallCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(m, train, TrainConfig{Epochs: 8, BatchSize: 8, LR: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no optimizer steps taken")
	}
	cm, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Top1(); acc < 0.75 {
		t.Fatalf("slowfast test accuracy = %v, want ≥0.75", acc)
	}
}

// TestTrainTSNRuns checks the TSN-specific interleaved train step.
func TestTrainTSNRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	train := trainClips(t, 16, sim.Day, 300, 16)
	m, err := NewTSN(smallCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(m, train, TrainConfig{Epochs: 2, BatchSize: 4, LR: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss <= 0 {
		t.Fatalf("suspicious final loss %v", res.FinalLoss)
	}
}

func TestTrainValidation(t *testing.T) {
	m, err := NewSlowFast(smallCfg(15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, nil, TrainConfig{}); err == nil {
		t.Fatal("expected empty-trainset error")
	}
	if _, err := Evaluate(m, nil); err == nil {
		t.Fatal("expected empty-evalset error")
	}
}

func TestBuildersProduceFreshNetworks(t *testing.T) {
	b := SlowFastBuilder(smallCfg(17))
	m1, err := b()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b()
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("builder must return distinct instances")
	}
	// Same seed → identical weights (clone semantics for MAML).
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data {
			if p1[i].Value.Data[j] != p2[i].Value.Data[j] {
				t.Fatal("builder instances must be identically initialised")
			}
		}
	}
	for _, builder := range []Builder{C3DBuilder(smallCfg(18)), TSNBuilder(smallCfg(19))} {
		if _, err := builder(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTrainWithCosineSmoothingEarlyStop exercises the schedule
// extensions: cosine LR annealing, label smoothing, and early
// stopping on a validation split.
func TestTrainWithCosineSmoothingEarlyStop(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	train := trainClips(t, 24, sim.Day, 700, 16)
	val := trainClips(t, 8, sim.Day, 800, 16)
	m, err := NewSlowFast(smallCfg(31))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(m, train, TrainConfig{
		Epochs: 30, BatchSize: 8, LR: 0.01, Seed: 1,
		CosineLR: true, LabelSmoothing: 0.05,
		Val: val, Patience: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With patience 2 on a saturating task, 30 epochs must not all run.
	if !res.EarlyStopped {
		t.Fatalf("expected early stop, ran %d epochs", res.Epochs)
	}
	if res.Epochs >= 30 {
		t.Fatalf("early stop did not shorten the run: %d epochs", res.Epochs)
	}
	cm, err := Evaluate(m, val)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Top1() < 0.7 {
		t.Fatalf("early-stopped model underfit: %v", cm.Top1())
	}
}
