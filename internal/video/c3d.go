package video

import (
	"fmt"
	"math/rand"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// C3D is the single-pathway 3-D convolutional baseline (Tran et al.),
// the first comparison architecture in the paper's Table IV. Unlike
// SlowFast it treats all frames uniformly at one temporal rate.
//
// The original C3D classifies with an SVM over fc6 features; this
// implementation uses a linear softmax head, which for a binary task
// is the same decision family.
type C3D struct {
	cfg SlowFastConfig // shares the clip geometry fields

	net *nn.Sequential
}

var (
	_ Classifier     = (*C3D)(nil)
	_ BatchForwarder = (*C3D)(nil)
)

// NewC3D builds a C3D classifier for the given clip geometry (the T,
// H, W, Classes, Seed fields of the shared config are used).
func NewC3D(cfg SlowFastConfig) (*C3D, error) {
	if cfg.T == 0 {
		cfg = fillSlowFastDefaults(cfg)
	}
	if cfg.T%4 != 0 {
		return nil, fmt.Errorf("video: c3d needs T divisible by 4, got %d", cfg.T)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Compute the head input size from the conv geometry.
	oh1 := tensor.ConvOutSize(cfg.H, 3, 2, 1)
	ow1 := tensor.ConvOutSize(cfg.W, 3, 2, 1)
	oh2 := tensor.ConvOutSize(oh1, 3, 2, 1)
	ow2 := tensor.ConvOutSize(ow1, 3, 2, 1)
	_ = oh2
	_ = ow2
	net := nn.NewSequential(
		nn.NewConv3D("c3d.conv1", nn.Conv3DConfig{
			InC: 1, OutC: 6, KT: 3, KH: 3, KW: 3,
			ST: 1, SH: 2, SW: 2, PT: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewTemporalAvgPool(2),
		nn.NewConv3D("c3d.conv2", nn.Conv3DConfig{
			InC: 6, OutC: 12, KT: 3, KH: 3, KW: 3,
			ST: 2, SH: 2, SW: 2, PT: 1, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewGlobalAvgPool3D(),
		nn.NewLinear("c3d.fc", 12, cfg.Classes, rng),
	)
	return &C3D{cfg: cfg, net: net}, nil
}

// C3DBuilder returns a Builder producing identically configured C3D
// networks.
func C3DBuilder(cfg SlowFastConfig) Builder {
	return func() (Classifier, error) { return NewC3D(cfg) }
}

// Name returns "c3d".
func (m *C3D) Name() string { return "c3d" }

// Forward maps a [1,T,H,W] clip to class logits.
func (m *C3D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Shape[0] != 1 || x.Shape[1] != m.cfg.T {
		return nil, fmt.Errorf("c3d: input shape %v, want [1,%d,H,W]", x.Shape, m.cfg.T)
	}
	out, err := m.net.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("c3d: %w", err)
	}
	return out, nil
}

// ForwardBatch stacks n clips into a channel-major [1,N,T,H,W] tensor
// and runs the whole network once: each conv is one im2col + matmul
// for the batch, the global pool emits [N,C] and the head [N,Classes].
// Scratch comes from ws; the returned logits are fresh per-clip
// tensors, bit-identical to the eval-mode Forward on each clip.
func (m *C3D) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("c3d: empty batch")
	}
	for i, x := range xs {
		if x.Rank() != 4 || x.Shape[0] != 1 || x.Shape[1] != m.cfg.T {
			return nil, fmt.Errorf("c3d: clip %d shape %v, want [1,%d,H,W]", i, x.Shape, m.cfg.T)
		}
	}
	defer ws.Reset()
	logits, err := m.net.ForwardWS(stackClips(ws, xs), ws)
	if err != nil {
		return nil, fmt.Errorf("c3d: %w", err)
	}
	return splitLogits(logits, n), nil
}

// Backward accumulates parameter gradients from the logits gradient.
func (m *C3D) Backward(dlogits *tensor.Tensor) error {
	if _, err := m.net.Backward(dlogits); err != nil {
		return fmt.Errorf("c3d: %w", err)
	}
	return nil
}

// Params returns all trainable parameters.
func (m *C3D) Params() []*nn.Param { return m.net.Params() }

// SetTrain toggles training behaviour.
func (m *C3D) SetTrain(train bool) { m.net.SetTrain(train) }
