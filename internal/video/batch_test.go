package video

import (
	"math/rand"
	"testing"

	"safecross/internal/tensor"
)

// batchClips builds n random clips matching smallCfg geometry.
func batchClips(n int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(41))
	clips := make([]*tensor.Tensor, n)
	for i := range clips {
		clips[i] = tensor.RandnTensor(rng, 1, 1, 16, 10, 16)
	}
	return clips
}

func TestPredictBatchMatchesSequential(t *testing.T) {
	m, err := SlowFastBuilder(smallCfg(23))()
	if err != nil {
		t.Fatal(err)
	}
	clips := batchClips(4)
	batched, err := PredictBatch(m, clips)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(clips) {
		t.Fatalf("got %d labels for %d clips", len(batched), len(clips))
	}
	for i, clip := range clips {
		want, err := Predict(m, clip)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i] != want {
			t.Fatalf("clip %d: batched label %d != sequential %d", i, batched[i], want)
		}
	}
}

func TestPredictBatchRejectsEmpty(t *testing.T) {
	m, err := SlowFastBuilder(smallCfg(24))()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PredictBatch(m, nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
}

func TestCloneWeightsProducesIndependentReplica(t *testing.T) {
	builder := SlowFastBuilder(smallCfg(25))
	src, err := builder()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := CloneWeights(builder, src)
	if err != nil {
		t.Fatal(err)
	}
	clip := batchClips(1)[0]
	want, err := Predict(src, clip)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Predict(clone, clip)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clone predicts %d, source %d", got, want)
	}

	// Perturbing the clone must not leak into the source.
	for _, p := range clone.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = 0
		}
	}
	after, err := Predict(src, clip)
	if err != nil {
		t.Fatal(err)
	}
	if after != want {
		t.Fatal("mutating the clone changed the source model")
	}
}
