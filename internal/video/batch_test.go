package video

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// batchClips builds n random clips matching smallCfg geometry.
func batchClips(n int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(41))
	clips := make([]*tensor.Tensor, n)
	for i := range clips {
		clips[i] = tensor.RandnTensor(rng, 1, 1, 16, 10, 16)
	}
	return clips
}

func TestPredictBatchMatchesSequential(t *testing.T) {
	m, err := SlowFastBuilder(smallCfg(23))()
	if err != nil {
		t.Fatal(err)
	}
	clips := batchClips(4)
	batched, err := PredictBatch(m, clips, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(clips) {
		t.Fatalf("got %d labels for %d clips", len(batched), len(clips))
	}
	for i, clip := range clips {
		want, err := Predict(m, clip)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i] != want {
			t.Fatalf("clip %d: batched label %d != sequential %d", i, batched[i], want)
		}
	}
}

// batchBuilders enumerates the three classifiers that implement the
// native batched forward, on the shared small test geometry.
func batchBuilders(seed int64) map[string]Builder {
	return map[string]Builder{
		"slowfast": SlowFastBuilder(smallCfg(seed)),
		"c3d":      C3DBuilder(smallCfg(seed + 1)),
		"tsn":      TSNBuilder(smallCfg(seed + 2)),
	}
}

// TestForwardBatchBitIdentical checks the core batched-inference
// contract for every classifier: ForwardBatch logits must equal the
// per-clip eval-mode Forward logits bit for bit (==, not tolerance),
// including on an odd batch size that can't tile evenly.
func TestForwardBatchBitIdentical(t *testing.T) {
	for name, builder := range batchBuilders(31) {
		t.Run(name, func(t *testing.T) {
			m, err := builder()
			if err != nil {
				t.Fatal(err)
			}
			bf, ok := m.(BatchForwarder)
			if !ok {
				t.Fatalf("%s does not implement BatchForwarder", name)
			}
			m.SetTrain(false)
			clips := batchClips(5)
			ws := nn.NewWorkspace()
			batched, err := bf.ForwardBatch(clips, ws)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched) != len(clips) {
				t.Fatalf("got %d logit tensors for %d clips", len(batched), len(clips))
			}
			for i, clip := range clips {
				want, err := m.Forward(clip)
				if err != nil {
					t.Fatal(err)
				}
				if len(batched[i].Data) != len(want.Data) {
					t.Fatalf("clip %d: batched logits len %d, want %d", i, len(batched[i].Data), len(want.Data))
				}
				for k := range want.Data {
					if batched[i].Data[k] != want.Data[k] {
						t.Fatalf("clip %d logit %d: batched %v != sequential %v (not bit-identical)",
							i, k, batched[i].Data[k], want.Data[k])
					}
				}
			}
		})
	}
}

// TestForwardBatchReusesWorkspace proves the steady-state allocation
// contract: after a warm-up batch, further batches of the same shape
// take every scratch buffer from the pool (Misses stops growing).
func TestForwardBatchReusesWorkspace(t *testing.T) {
	for name, builder := range batchBuilders(37) {
		t.Run(name, func(t *testing.T) {
			m, err := builder()
			if err != nil {
				t.Fatal(err)
			}
			bf := m.(BatchForwarder)
			m.SetTrain(false)
			clips := batchClips(3)
			ws := nn.NewWorkspace()
			if _, err := bf.ForwardBatch(clips, ws); err != nil {
				t.Fatal(err)
			}
			warm := ws.Misses
			for i := 0; i < 3; i++ {
				if _, err := bf.ForwardBatch(clips, ws); err != nil {
					t.Fatal(err)
				}
			}
			if ws.Misses != warm {
				t.Fatalf("workspace misses grew after warm-up: %d -> %d (gets %d)", warm, ws.Misses, ws.Gets)
			}
		})
	}
}

// TestPredictBatchValidatesClipIndex checks the up-front batch
// validation: a malformed clip is reported by its index before any
// layer runs, not as a bare mid-batch layer error.
func TestPredictBatchValidatesClipIndex(t *testing.T) {
	m, err := SlowFastBuilder(smallCfg(29))()
	if err != nil {
		t.Fatal(err)
	}
	clips := batchClips(4)

	clips[2] = tensor.New(2, 16, 10, 16) // wrong channel count
	_, err = PredictBatch(m, clips, nil)
	if err == nil || !strings.Contains(err.Error(), "clip 2") {
		t.Fatalf("bad-shape error = %v, want mention of clip 2", err)
	}

	clips[2] = tensor.New(1, 8, 10, 16) // mismatched against clip 0
	_, err = PredictBatch(m, clips, nil)
	if err == nil || !strings.Contains(err.Error(), "clip 2") {
		t.Fatalf("mismatch error = %v, want mention of clip 2", err)
	}

	clips[2] = nil
	_, err = PredictBatch(m, clips, nil)
	if err == nil || !strings.Contains(err.Error(), "clip 2") {
		t.Fatalf("nil-clip error = %v, want mention of clip 2", err)
	}
}

// TestPredictBatchConcurrentWorkspaces mirrors the serving plane under
// the race detector: several workers, each with a private model
// replica and a private workspace, classify batches concurrently.
// One workspace per goroutine is the ownership rule; this test is the
// regression net proving the batched path has no hidden shared state.
func TestPredictBatchConcurrentWorkspaces(t *testing.T) {
	builder := SlowFastBuilder(smallCfg(43))
	src, err := builder()
	if err != nil {
		t.Fatal(err)
	}
	clips := batchClips(4)
	want, err := PredictBatch(src, clips, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		replica, err := CloneWeights(builder, src)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(m Classifier) {
			defer wg.Done()
			ws := nn.NewWorkspace()
			for iter := 0; iter < 3; iter++ {
				got, err := PredictBatch(m, clips, ws)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("clip %d: concurrent label %d != %d", i, got[i], want[i])
						return
					}
				}
			}
		}(replica)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPredictBatchRejectsEmpty(t *testing.T) {
	m, err := SlowFastBuilder(smallCfg(24))()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PredictBatch(m, nil, nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
}

func TestCloneWeightsProducesIndependentReplica(t *testing.T) {
	builder := SlowFastBuilder(smallCfg(25))
	src, err := builder()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := CloneWeights(builder, src)
	if err != nil {
		t.Fatal(err)
	}
	clip := batchClips(1)[0]
	want, err := Predict(src, clip)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Predict(clone, clip)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clone predicts %d, source %d", got, want)
	}

	// Perturbing the clone must not leak into the source.
	for _, p := range clone.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = 0
		}
	}
	after, err := Predict(src, clip)
	if err != nil {
		t.Fatal(err)
	}
	if after != want {
		t.Fatal("mutating the clone changed the source model")
	}
}
