package video

import (
	"fmt"
	"math/rand"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// TSN is the temporal-segment-network baseline (Wang et al.), the
// second comparison in Table IV: it samples a few snippets from the
// clip, runs a shared 2-D network on each, and averages the snippet
// logits (the "consensus"). Because each snippet is a single static
// frame, TSN sees almost no motion — which is why its mean-class
// accuracy trails the 3-D models on this task, as the paper found.
type TSN struct {
	cfg      SlowFastConfig
	snippets int

	net *nn.Sequential // shared per-snippet 2-D network

	cacheIdx []int
}

var (
	_ Classifier     = (*TSN)(nil)
	_ BatchForwarder = (*TSN)(nil)
)

// tsnSnippets is the paper's 1x1x3 sampling: three snippets per clip.
const tsnSnippets = 3

// NewTSN builds a TSN classifier for the given clip geometry.
func NewTSN(cfg SlowFastConfig) (*TSN, error) {
	if cfg.T == 0 {
		cfg = fillSlowFastDefaults(cfg)
	}
	if cfg.T < tsnSnippets {
		return nil, fmt.Errorf("video: tsn needs T ≥ %d, got %d", tsnSnippets, cfg.T)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	oh1 := tensor.ConvOutSize(cfg.H, 3, 2, 1)
	ow1 := tensor.ConvOutSize(cfg.W, 3, 2, 1)
	oh2 := tensor.ConvOutSize(oh1, 3, 2, 1)
	ow2 := tensor.ConvOutSize(ow1, 3, 2, 1)
	net := nn.NewSequential(
		nn.NewConv2D("tsn.conv1", nn.Conv2DConfig{
			InC: 1, OutC: 8, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewConv2D("tsn.conv2", nn.Conv2DConfig{
			InC: 8, OutC: 16, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1,
		}, rng),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear("tsn.fc", 16*oh2*ow2, cfg.Classes, rng),
	)
	return &TSN{cfg: cfg, snippets: tsnSnippets, net: net}, nil
}

// TSNBuilder returns a Builder producing identically configured TSN
// networks.
func TSNBuilder(cfg SlowFastConfig) Builder {
	return func() (Classifier, error) { return NewTSN(cfg) }
}

// Name returns "tsn".
func (m *TSN) Name() string { return "tsn" }

// snippetIndices spreads the snippets evenly over the clip.
func (m *TSN) snippetIndices() []int {
	idx := make([]int, m.snippets)
	for i := range idx {
		idx[i] = (2*i + 1) * m.cfg.T / (2 * m.snippets)
	}
	return idx
}

// Forward runs the shared network on each snippet frame and averages
// the logits.
func (m *TSN) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Shape[0] != 1 || x.Shape[1] != m.cfg.T {
		return nil, fmt.Errorf("tsn: input shape %v, want [1,%d,H,W]", x.Shape, m.cfg.T)
	}
	h, w := x.Shape[2], x.Shape[3]
	m.cacheIdx = m.snippetIndices()
	var consensus *tensor.Tensor
	for _, ti := range m.cacheIdx {
		frame := tensor.New(1, h, w)
		copy(frame.Data, x.Data[ti*h*w:(ti+1)*h*w])
		logits, err := m.net.Forward(frame)
		if err != nil {
			return nil, fmt.Errorf("tsn snippet t=%d: %w", ti, err)
		}
		if consensus == nil {
			consensus = logits.Clone()
		} else if err := consensus.AddInPlace(logits); err != nil {
			return nil, fmt.Errorf("tsn consensus: %w", err)
		}
	}
	consensus.Scale(1 / float64(m.snippets))
	return consensus, nil
}

// ForwardBatch gathers every snippet frame of every clip into one
// channel-major [1, N·S, H, W] plane stack (clip i's snippet s at
// plane i·S+s), runs the shared 2-D network once, and reduces the
// [N·S, Classes] logit matrix to per-clip consensus logits: snippet
// logits summed in sampling order, then scaled by 1/S — the exact
// arithmetic of the per-clip Forward, so results are bit-identical.
func (m *TSN) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("tsn: empty batch")
	}
	for i, x := range xs {
		if x.Rank() != 4 || x.Shape[0] != 1 || x.Shape[1] != m.cfg.T {
			return nil, fmt.Errorf("tsn: clip %d shape %v, want [1,%d,H,W]", i, x.Shape, m.cfg.T)
		}
	}
	defer ws.Reset()
	h, w := xs[0].Shape[2], xs[0].Shape[3]
	idx := m.snippetIndices()
	s := len(idx)
	frames := ws.Get(1, n*s, h, w)
	spat := h * w
	for i, x := range xs {
		for si, ti := range idx {
			copy(frames.Data[(i*s+si)*spat:(i*s+si+1)*spat], x.Data[ti*spat:])
		}
	}
	logits, err := m.net.ForwardWS(frames, ws)
	if err != nil {
		return nil, fmt.Errorf("tsn batched snippets: %w", err)
	}
	classes := logits.Shape[1]
	inv := 1 / float64(m.snippets)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		c := tensor.New(classes)
		for si := 0; si < s; si++ {
			row := logits.Data[(i*s+si)*classes:]
			for k := 0; k < classes; k++ {
				c.Data[k] += row[k]
			}
		}
		for k := range c.Data {
			c.Data[k] *= inv
		}
		out[i] = c
	}
	return out, nil
}

// Backward replays each snippet forward (to restore the shared
// network's caches) and accumulates its share of the consensus
// gradient. The clip tensor is not retained by Forward, so Backward
// requires the snippets to be re-run; callers use TrainStep which
// handles the ordering.
//
// Implementation note: because the per-snippet network caches are
// overwritten by each snippet's forward pass, Forward stores the
// snippet indices and Backward reprocesses snippets one at a time:
// forward(snippet) → backward(share). This costs one extra forward
// pass per snippet but keeps the layer API cache-free.
func (m *TSN) Backward(dlogits *tensor.Tensor) error {
	return fmt.Errorf("tsn: use TrainStepTSN (consensus backward needs the clip); Backward alone is unsupported")
}

// lossAndGrad runs one full training step for TSN: forward each
// snippet, average the loss gradient, and backpropagate each
// snippet's share immediately after its forward pass (so the layer
// caches are valid).
func (m *TSN) lossAndGrad(x *tensor.Tensor, label int) (float64, *tensor.Tensor, error) {
	logits, err := m.Forward(x)
	if err != nil {
		return 0, nil, err
	}
	loss, dlogits, err := nn.SoftmaxCrossEntropy(logits, label)
	if err != nil {
		return 0, nil, err
	}
	// Each snippet receives dlogits/snippets.
	share := dlogits.Clone().Scale(1 / float64(m.snippets))
	h, w := x.Shape[2], x.Shape[3]
	for _, ti := range m.cacheIdx {
		frame := tensor.New(1, h, w)
		copy(frame.Data, x.Data[ti*h*w:(ti+1)*h*w])
		if _, err := m.net.Forward(frame); err != nil {
			return 0, nil, fmt.Errorf("tsn replay t=%d: %w", ti, err)
		}
		if _, err := m.net.Backward(share); err != nil {
			return 0, nil, fmt.Errorf("tsn backward t=%d: %w", ti, err)
		}
	}
	return loss, logits, nil
}

// Params returns the shared network's parameters.
func (m *TSN) Params() []*nn.Param { return m.net.Params() }

// SetTrain toggles training behaviour.
func (m *TSN) SetTrain(train bool) { m.net.SetTrain(train) }
