package video

import (
	"bytes"
	"fmt"

	"safecross/internal/infer"
	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// BatchForwarder is the classifier half of the engine contract: a
// native batched forward pass. SlowFast, C3D, and TSN implement it
// (one im2col + one matmul per conv layer for N clips); together with
// Name and SetTrain from Classifier it makes them infer.Model
// implementations, so Engine passes them straight to the unified
// inference engine.
type BatchForwarder interface {
	// ForwardBatch maps n [1,T,H,W] clips to n rank-1 logit tensors,
	// bit-identical to calling the eval-mode Forward per clip. Scratch
	// buffers come from ws, which must be owned by the calling
	// goroutine; the returned logits are fresh tensors that stay valid
	// after the workspace is reset or reused.
	ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error)
}

// Engine lifts a Classifier to the unified engine contract
// (infer.Model). Batch-native classifiers pass through unchanged;
// Forward-only classifiers are driven clip by clip behind the same
// contract, which still amortises the per-batch costs above the model
// (model switching, simulated kernel launches, dispatch).
func Engine(c Classifier) infer.Model {
	if m, ok := c.(infer.Model); ok {
		return m
	}
	return infer.Sequentialize(c)
}

// validateClips checks the whole batch up front: every clip must be a
// rank-4 [1,T,H,W] tensor and all clips must share one shape, so a
// malformed clip is reported by index instead of surfacing mid-batch
// as a bare layer error.
func validateClips(clips []*tensor.Tensor) error {
	if len(clips) == 0 {
		return fmt.Errorf("video: empty batch")
	}
	for i, c := range clips {
		if c == nil {
			return fmt.Errorf("video: clip %d is nil", i)
		}
		if c.Rank() != 4 || c.Shape[0] != 1 {
			return fmt.Errorf("video: clip %d has shape %v, want [1,T,H,W]", i, c.Shape)
		}
		for ax := range c.Shape {
			if c.Shape[ax] != clips[0].Shape[ax] {
				return fmt.Errorf("video: clip %d has shape %v, want %v like clip 0", i, c.Shape, clips[0].Shape)
			}
		}
	}
	return nil
}

// stackClips copies n validated [1,T,H,W] clips into one channel-major
// [1,N,T,H,W] workspace tensor. With a single input channel the stack
// is a straight concatenation: clip i occupies the i-th T·H·W block.
func stackClips(ws *nn.Workspace, clips []*tensor.Tensor) *tensor.Tensor {
	n := len(clips)
	t, h, w := clips[0].Shape[1], clips[0].Shape[2], clips[0].Shape[3]
	x := ws.Get(1, n, t, h, w)
	vol := t * h * w
	for i, c := range clips {
		copy(x.Data[i*vol:(i+1)*vol], c.Data)
	}
	return x
}

// PredictBatch classifies a batch of clips with one eval-mode model,
// returning the predicted label per clip in input order. Clip shapes
// are validated up front (errors name the offending clip index); the
// forward itself runs through the unified engine (infer.PredictBatch),
// so scratch memory comes from ws and a long-lived caller passing the
// same workspace reaches steady-state zero allocation inside the
// model. A nil ws is replaced by a throwaway workspace.
func PredictBatch(m Classifier, clips []*tensor.Tensor, ws *nn.Workspace) ([]int, error) {
	if err := validateClips(clips); err != nil {
		return nil, err
	}
	return infer.PredictBatch(Engine(m), clips, ws)
}

// splitLogits copies an [N,Classes] batched logit matrix into n fresh
// rank-1 tensors, one per clip, detaching the results from the
// workspace that produced them.
func splitLogits(batched *tensor.Tensor, n int) []*tensor.Tensor {
	classes := batched.Shape[1]
	out := make([]*tensor.Tensor, n)
	for i := range out {
		l := tensor.New(classes)
		copy(l.Data, batched.Data[i*classes:(i+1)*classes])
		out[i] = l
	}
	return out
}

// CloneWeights builds a fresh classifier from the builder and copies
// the source model's parameters into it. The serving layer uses it to
// give every worker a private replica of each trained scene model, so
// concurrent workers never share mutable forward-pass state.
func CloneWeights(b Builder, src Classifier) (Classifier, error) {
	dst, err := b()
	if err != nil {
		return nil, fmt.Errorf("video: clone build: %w", err)
	}
	var buf bytes.Buffer
	if err := nn.SaveState(&buf, src.Params()); err != nil {
		return nil, fmt.Errorf("video: clone save: %w", err)
	}
	if err := nn.LoadState(&buf, dst.Params()); err != nil {
		return nil, fmt.Errorf("video: clone load: %w", err)
	}
	return dst, nil
}
