package video

import (
	"bytes"
	"fmt"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// BatchForwarder is optionally implemented by classifiers that can
// run several clips through one forward pass. The serving layer
// (internal/serve) coalesces same-scene requests and prefers this
// path; classifiers without it are driven clip by clip, which still
// amortises the per-batch costs above the model (locking, model
// switching, simulated kernel launches).
type BatchForwarder interface {
	// ForwardBatch maps n [1,T,H,W] clips to n rank-1 logit tensors.
	ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error)
}

// PredictBatch classifies a batch of clips with one eval-mode model,
// returning the predicted label per clip in input order. It uses the
// classifier's native batched forward when implemented and falls back
// to sequential forwards otherwise.
func PredictBatch(m Classifier, clips []*tensor.Tensor) ([]int, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("video: empty batch")
	}
	m.SetTrain(false)
	if bf, ok := m.(BatchForwarder); ok {
		logits, err := bf.ForwardBatch(clips)
		if err != nil {
			return nil, fmt.Errorf("video: batched forward: %w", err)
		}
		if len(logits) != len(clips) {
			return nil, fmt.Errorf("video: batched forward returned %d outputs for %d clips", len(logits), len(clips))
		}
		labels := make([]int, len(logits))
		for i, l := range logits {
			labels[i] = nn.Predict(l)
		}
		return labels, nil
	}
	labels := make([]int, len(clips))
	for i, x := range clips {
		logits, err := m.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("video: batch clip %d: %w", i, err)
		}
		labels[i] = nn.Predict(logits)
	}
	return labels, nil
}

// CloneWeights builds a fresh classifier from the builder and copies
// the source model's parameters into it. The serving layer uses it to
// give every worker a private replica of each trained scene model, so
// concurrent workers never share mutable forward-pass state.
func CloneWeights(b Builder, src Classifier) (Classifier, error) {
	dst, err := b()
	if err != nil {
		return nil, fmt.Errorf("video: clone build: %w", err)
	}
	var buf bytes.Buffer
	if err := nn.SaveState(&buf, src.Params()); err != nil {
		return nil, fmt.Errorf("video: clone save: %w", err)
	}
	if err := nn.LoadState(&buf, dst.Params()); err != nil {
		return nil, fmt.Errorf("video: clone load: %w", err)
	}
	return dst, nil
}
