package pipeswitch

import (
	"fmt"
	"math"
	"time"

	"safecross/internal/gpusim"
)

// pipelineCosts precomputes, in float seconds, everything the
// pipelined-makespan recurrence needs. Both the DP and the analytic
// predictor share it so their arithmetic is bit-identical and the DP
// result provably dominates any hand-chosen grouping.
type pipelineCosts struct {
	prefixXfer []float64 // transfer completion time of layers [0,i)
	prefixFLOP []float64
	sync       float64
	kernel     float64
	throughput float64
}

func newPipelineCosts(m Model, cfg gpusim.DeviceConfig) pipelineCosts {
	n := len(m.Layers)
	c := pipelineCosts{
		prefixXfer: make([]float64, n+1),
		prefixFLOP: make([]float64, n+1),
		sync:       cfg.GroupSync.Seconds(),
		kernel:     cfg.KernelOverhead.Seconds(),
		throughput: cfg.ComputeThroughput,
	}
	var bytesSum int64
	for i, l := range m.Layers {
		bytesSum += l.Bytes
		c.prefixXfer[i+1] = float64(bytesSum) / cfg.TransferBandwidth
		c.prefixFLOP[i+1] = c.prefixFLOP[i] + l.FLOPs
	}
	return c
}

// groupCompute returns the execution time of layers [i, j).
func (c pipelineCosts) groupCompute(i, j int) float64 {
	return (c.prefixFLOP[j]-c.prefixFLOP[i])/c.throughput + float64(j-i)*c.kernel
}

// step advances the recurrence by one group: computation of [i, j)
// starts after both the group's transfer and the previous group's
// computation, plus a synchronisation.
func (c pipelineCosts) step(computeDone float64, i, j int) float64 {
	start := computeDone
	if c.prefixXfer[j] > start {
		start = c.prefixXfer[j]
	}
	return start + c.sync + c.groupCompute(i, j)
}

// makespan replays the recurrence for a boundary list.
func (c pipelineCosts) makespan(boundaries []int) float64 {
	done := 0.0
	start := 0
	for _, end := range boundaries {
		done = c.step(done, start, end)
		start = end
	}
	return done
}

// OptimalBoundaries computes the model-aware layer grouping that
// minimises the pipelined switch makespan on a device with the given
// performance model (the paper's Sec. III-E-3: small layers are
// merged so each group's transfer is worth its synchronisation cost,
// and boundaries are placed so computation never starves).
//
// The search is an exact dynamic program over group end positions.
// Because the copy engine streams groups back to back, the transfer
// completion time of a group ending at layer j depends only on the
// byte prefix sum — not on earlier boundary choices — so the optimal
// makespan satisfies
//
//	best[j] = min over i<j of max(best[i], prefixXfer[j]) + sync + compute(i..j)
//
// a recurrence with optimal substructure. Transitions are pruned once
// their lower bound (transfer-gated start plus the growing group
// compute) reaches the incumbent, the pruning the paper describes.
func OptimalBoundaries(m Model, cfg gpusim.DeviceConfig) ([]int, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	costs := newPipelineCosts(m, cfg)
	n := len(m.Layers)

	best := make([]float64, n+1)
	prev := make([]int, n+1)
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
		prev[j] = -1
	}
	for j := 1; j <= n; j++ {
		for i := j - 1; i >= 0; i-- {
			if math.IsInf(best[i], 1) {
				continue
			}
			cand := costs.step(best[i], i, j)
			if cand < best[j] {
				best[j] = cand
				prev[j] = i
			}
			// Prune: for any i' < i the last group is larger, so its
			// makespan is at least prefixXfer[j] + sync + compute(i,j);
			// once that bound reaches the incumbent, earlier split
			// points cannot win.
			if costs.prefixXfer[j]+costs.sync+costs.groupCompute(i, j) >= best[j] {
				break
			}
		}
		if prev[j] == -1 {
			return nil, fmt.Errorf("pipeswitch: grouping DP failed at layer %d", j)
		}
	}
	var rev []int
	for j := n; j > 0; j = prev[j] {
		rev = append(rev, j)
	}
	boundaries := make([]int, len(rev))
	for i, b := range rev {
		boundaries[len(rev)-1-i] = b
	}
	return boundaries, nil
}

// PredictMakespan replays the pipeline recurrence analytically for a
// given boundary list — the same arithmetic the DP optimises — so
// callers can compare groupings without touching a device.
func PredictMakespan(m Model, cfg gpusim.DeviceConfig, boundaries []int) (time.Duration, error) {
	if err := validBoundaries(boundaries, len(m.Layers)); err != nil {
		return 0, err
	}
	costs := newPipelineCosts(m, cfg)
	return time.Duration(costs.makespan(boundaries) * float64(time.Second)), nil
}
