package pipeswitch

import (
	"testing"
	"time"

	"safecross/internal/gpusim"
)

func newWorkerPool(t *testing.T) *WorkerPool {
	t.Helper()
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wp, err := NewWorkerPool(dev, DefaultPoolBytes())
	if err != nil {
		t.Fatal(err)
	}
	return wp
}

func TestWorkerPoolBoot(t *testing.T) {
	wp := newWorkerPool(t)
	if wp.Active().State != WorkerActive || wp.Standby().State != WorkerStandby {
		t.Fatalf("boot states: active=%v standby=%v", wp.Active().State, wp.Standby().State)
	}
	if wp.Active().CtxReadyAt <= 0 {
		t.Fatal("context init must cost time at boot")
	}
	if wp.Resident() != "" {
		t.Fatal("nothing resident at boot")
	}
	if got := WorkerState(99).String(); got != "unknown" {
		t.Fatalf("state string = %q", got)
	}
}

func TestWorkerPoolValidation(t *testing.T) {
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkerPool(dev, 0); err == nil {
		t.Fatal("expected pool-size error")
	}
	// Pool larger than device memory must fail.
	small := gpusim.DefaultConfig()
	small.MemoryBytes = 1 << 20
	tiny, err := gpusim.NewDevice(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkerPool(tiny, 1<<30); err == nil {
		t.Fatal("expected device OOM error")
	}
}

func TestServeSwapsWorkersWithinSLO(t *testing.T) {
	wp := newWorkerPool(t)
	sf := SafeCrossSlowFast()
	rep, err := wp.Serve(sf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total >= 10*time.Millisecond {
		t.Fatalf("standby switch %v must beat the 10ms SLO", rep.Total)
	}
	if wp.Resident() != sf.Name {
		t.Fatalf("resident = %q", wp.Resident())
	}
	if wp.Active().Model != sf.Name || wp.Active().ID != 2 {
		t.Fatalf("standby worker should now be active with the model: %+v", wp.Active())
	}
	if wp.Standby().Model != "" {
		t.Fatal("demoted worker must drop its model")
	}
	if wp.Pool().Used() != sf.TotalBytes() {
		t.Fatalf("pool used = %d, want %d", wp.Pool().Used(), sf.TotalBytes())
	}

	// Second switch: the old model's ranges return to the pool.
	rn := ResNet152()
	if _, err := wp.Serve(rn); err != nil {
		t.Fatal(err)
	}
	if wp.Pool().Used() != rn.TotalBytes() {
		t.Fatalf("pool used after swap = %d, want %d", wp.Pool().Used(), rn.TotalBytes())
	}
	if wp.Active().ID != 1 {
		t.Fatal("workers must alternate roles")
	}
	if len(wp.History()) != 2 {
		t.Fatalf("history = %d, want 2", len(wp.History()))
	}
}

func TestServeSameModelIsNoop(t *testing.T) {
	wp := newWorkerPool(t)
	m := InceptionV3()
	if _, err := wp.Serve(m); err != nil {
		t.Fatal(err)
	}
	rep, err := wp.Serve(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "noop" || rep.Total != 0 {
		t.Fatalf("re-serving the resident model must be a no-op: %+v", rep)
	}
}

func TestMemoryPoolAccounting(t *testing.T) {
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMemoryPool(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Capacity() != 100 {
		t.Fatalf("capacity = %d", pool.Capacity())
	}
	if err := pool.Carve(70); err != nil {
		t.Fatal(err)
	}
	if err := pool.Carve(40); err == nil {
		t.Fatal("expected exhaustion error")
	}
	if err := pool.Return(80); err == nil {
		t.Fatal("expected over-return error")
	}
	if err := pool.Return(70); err != nil {
		t.Fatal(err)
	}
	if pool.Used() != 0 {
		t.Fatalf("used = %d", pool.Used())
	}
}

func TestDefaultPoolHoldsTwoLargestModels(t *testing.T) {
	want := SafeCrossSlowFast().TotalBytes() + ResNet152().TotalBytes()
	if got := DefaultPoolBytes(); got != want {
		t.Fatalf("pool bytes = %d, want %d", got, want)
	}
}

// TestStandbyBeatsColdManagerPath compares the standby worker pool
// against a stop-and-start manager on the same switch sequence — the
// architectural claim of the PipeSwitch paper in one assertion.
func TestStandbyBeatsColdManagerPath(t *testing.T) {
	wp := newWorkerPool(t)
	var warm time.Duration
	for _, m := range BuiltinModels() {
		rep, err := wp.Serve(m)
		if err != nil {
			t.Fatal(err)
		}
		warm += rep.Total
	}
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cold time.Duration
	var prev *Model
	for _, m := range BuiltinModels() {
		m := m
		rep, err := StopAndStart{}.Switch(dev, prev, m)
		if err != nil {
			t.Fatal(err)
		}
		cold += rep.Total
		prev = &m
	}
	if cold < 100*warm {
		t.Fatalf("standby pool should be orders of magnitude faster: warm=%v cold=%v", warm, cold)
	}
}
