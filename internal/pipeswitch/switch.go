package pipeswitch

import (
	"fmt"
	"time"

	"safecross/internal/gpusim"
)

// Switcher performs a model switch on a device and reports its
// virtual-time cost. Implementations must leave the device memory
// accounting consistent (old model freed, new model resident).
type Switcher interface {
	// Name identifies the method ("stop-and-start", "pipeswitch").
	Name() string
	// Switch replaces the resident model (prev may be nil) with next
	// and runs one inference, returning the timing report.
	Switch(dev *gpusim.Device, prev *Model, next Model) (Report, error)
}

// StopAndStart is the baseline the paper calls "End-start": kill the
// process serving the old model, start a new process, re-create the
// CUDA context, reload the framework and weights from scratch, and
// only then transfer and run. Every switch pays the full cold path.
type StopAndStart struct{}

var _ Switcher = StopAndStart{}

// Name returns "stop-and-start".
func (StopAndStart) Name() string { return "stop-and-start" }

// Switch performs the cold-process switch.
func (StopAndStart) Switch(dev *gpusim.Device, prev *Model, next Model) (Report, error) {
	if err := next.Validate(); err != nil {
		return Report{}, err
	}
	// Killing the old process frees its memory; timeline restarts at
	// zero for the new process.
	dev.Reset()
	if err := dev.Alloc(next.TotalBytes()); err != nil {
		return Report{}, fmt.Errorf("pipeswitch: %w", err)
	}

	ctx := dev.ContextInitDuration()
	load := dev.ColdLoadDuration(next.TotalBytes())
	kinit := dev.ColdKernelInitDuration(len(next.Layers), next.ColdInitScale)

	// The cold path is strictly sequential: context, framework load,
	// per-layer initialisation, then a single bulk transfer, then the
	// first inference.
	ready := ctx + load + kinit
	_, xferDone := dev.TransferAt(ready, next.TotalBytes())
	_, compDone := dev.ComputeAt(xferDone, next.TotalFLOPs(), len(next.Layers))

	return Report{
		Model:          next.Name,
		Method:         "stop-and-start",
		Total:          compDone,
		CtxInit:        ctx,
		ColdLoad:       load,
		ColdKernelInit: kinit,
		Transfer:       xferDone - ready,
		Compute:        compDone - xferDone,
		Groups:         1,
	}, nil
}

// GroupingStrategy selects how Pipelined partitions layers into
// transfer/execute groups.
type GroupingStrategy int

// Grouping strategies. GroupOptimal is the paper's model-aware
// grouping; the other two are the ablation extremes it discusses:
// per-layer grouping maximises overlap but pays a synchronisation
// cost at every boundary, and a single group degenerates to
// transfer-then-compute.
const (
	GroupOptimal GroupingStrategy = iota + 1
	GroupPerLayer
	GroupSingle
)

// String names the strategy.
func (g GroupingStrategy) String() string {
	switch g {
	case GroupOptimal:
		return "optimal"
	case GroupPerLayer:
		return "per-layer"
	case GroupSingle:
		return "single"
	default:
		return "unknown"
	}
}

// Pipelined is the PipeSwitch method: the serving process stays warm
// (context alive, memory pooled, weights pinned in host memory), and
// a switch streams the new model group by group while already
// executing the layers that have arrived.
type Pipelined struct {
	// Grouping selects the layer-grouping strategy (default
	// GroupOptimal).
	Grouping GroupingStrategy
}

var _ Switcher = Pipelined{}

// Name returns "pipeswitch" qualified by a non-default grouping.
func (p Pipelined) Name() string {
	g := p.Grouping
	if g == 0 {
		g = GroupOptimal
	}
	if g == GroupOptimal {
		return "pipeswitch"
	}
	return "pipeswitch-" + g.String()
}

// Switch performs the pipelined switch.
func (p Pipelined) Switch(dev *gpusim.Device, prev *Model, next Model) (Report, error) {
	if err := next.Validate(); err != nil {
		return Report{}, err
	}
	// The warm server frees the previous model's pool allocation and
	// reuses it; no context or framework cost.
	if prev != nil {
		if err := dev.Free(min64(prev.TotalBytes(), dev.Allocated())); err != nil {
			return Report{}, fmt.Errorf("pipeswitch: free previous: %w", err)
		}
	}
	if err := dev.Alloc(next.TotalBytes()); err != nil {
		return Report{}, fmt.Errorf("pipeswitch: %w", err)
	}

	var boundaries []int
	switch g := p.Grouping; g {
	case GroupPerLayer:
		boundaries = perLayerBoundaries(len(next.Layers))
	case GroupSingle:
		boundaries = []int{len(next.Layers)}
	default:
		var err error
		boundaries, err = OptimalBoundaries(next, dev.Config())
		if err != nil {
			return Report{}, err
		}
	}
	return simulatePipeline(dev, next, p.Name(), boundaries)
}

// perLayerBoundaries puts every layer in its own group.
func perLayerBoundaries(n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = i + 1
	}
	return b
}

// simulatePipeline plays the grouped transfer/execute schedule on the
// device: the copy engine streams groups back to back; each group's
// execution starts once both its transfer and the previous group's
// execution are done, after a group synchronisation.
func simulatePipeline(dev *gpusim.Device, m Model, method string, boundaries []int) (Report, error) {
	if err := validBoundaries(boundaries, len(m.Layers)); err != nil {
		return Report{}, err
	}
	// The switch request arrives when the warm server is idle; all
	// latencies are measured relative to that epoch.
	epoch := dev.Now()
	var (
		computeDone  = epoch
		transferBusy time.Duration
		computeBusy  time.Duration
		start        = 0
	)
	for _, end := range boundaries {
		var bytes int64
		var flops float64
		for _, l := range m.Layers[start:end] {
			bytes += l.Bytes
			flops += l.FLOPs
		}
		tStart, tDone := dev.TransferAt(epoch, bytes)
		transferBusy += tDone - tStart
		syncDone := dev.SyncAt(maxDur(tDone, computeDone))
		cStart, cDone := dev.ComputeAt(syncDone, flops, end-start)
		computeBusy += cDone - cStart
		computeDone = cDone
		start = end
	}
	return Report{
		Model:    m.Name,
		Method:   method,
		Total:    computeDone - epoch,
		Transfer: transferBusy,
		Compute:  computeBusy,
		Groups:   len(boundaries),
	}, nil
}

// validBoundaries checks that boundaries are strictly increasing and
// end at the layer count.
func validBoundaries(b []int, n int) error {
	if len(b) == 0 || b[len(b)-1] != n {
		return fmt.Errorf("pipeswitch: boundaries %v must end at %d", b, n)
	}
	prev := 0
	for _, x := range b {
		if x <= prev {
			return fmt.Errorf("pipeswitch: boundaries %v not strictly increasing", b)
		}
		prev = x
	}
	return nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
