package pipeswitch

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"safecross/internal/gpusim"
)

func newDevice(t *testing.T) *gpusim.Device {
	t.Helper()
	d, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuiltinManifests(t *testing.T) {
	models := BuiltinModels()
	if len(models) != 3 {
		t.Fatalf("builtin models = %d, want 3", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	sf, rn, iv := models[0], models[1], models[2]
	if !(sf.TotalBytes() > rn.TotalBytes() && rn.TotalBytes() > iv.TotalBytes()) {
		t.Fatalf("payload ordering wrong: %d/%d/%d", sf.TotalBytes(), rn.TotalBytes(), iv.TotalBytes())
	}
	if sf.TotalBytes() != slowFastBytes {
		t.Fatalf("rounding residue lost: %d != %d", sf.TotalBytes(), int64(slowFastBytes))
	}
	if len(rn.Layers) != resNet152LayerCount {
		t.Fatalf("resnet152 layers = %d", len(rn.Layers))
	}
	if sf.ColdInitScale <= rn.ColdInitScale {
		t.Fatal("3-D model must have larger cold-init scale")
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{Name: "empty", ColdInitScale: 1}).Validate(); err == nil {
		t.Fatal("expected no-layers error")
	}
	bad := Model{Name: "neg", ColdInitScale: 1, Layers: []Layer{{Bytes: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected negative-cost error")
	}
	noScale := Model{Name: "s", Layers: []Layer{{Bytes: 1}}}
	if err := noScale.Validate(); err == nil {
		t.Fatal("expected cold-scale error")
	}
}

// TestTableVIShape is the core Table VI reproduction check:
// stop-and-start takes seconds, PipeSwitch takes under 10 ms, and
// both preserve the SlowFast > ResNet152 > Inception-v3 ordering.
func TestTableVIShape(t *testing.T) {
	dev := newDevice(t)
	models := BuiltinModels()

	var cold, warm []time.Duration
	for _, m := range models {
		rep, err := StopAndStart{}.Switch(dev, nil, m)
		if err != nil {
			t.Fatal(err)
		}
		cold = append(cold, rep.Total)
	}
	dev.Reset()
	var prev *Model
	for i := range models {
		rep, err := Pipelined{}.Switch(dev, prev, models[i])
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, rep.Total)
		prev = &models[i]
	}

	for i, m := range models {
		if cold[i] < time.Second {
			t.Fatalf("%s stop-and-start = %v, want seconds", m.Name, cold[i])
		}
		if warm[i] >= 10*time.Millisecond {
			t.Fatalf("%s pipeswitch = %v, want <10ms (paper's real-time bound)", m.Name, warm[i])
		}
		if cold[i] < 100*warm[i] {
			t.Fatalf("%s speedup only %vx, paper reports ~1000x", m.Name, cold[i]/warm[i])
		}
	}
	// Ordering: SlowFast > ResNet152 > Inception-v3 in both columns.
	if !(cold[0] > cold[1] && cold[1] > cold[2]) {
		t.Fatalf("stop-and-start ordering wrong: %v", cold)
	}
	if !(warm[0] > warm[1] && warm[1] > warm[2]) {
		t.Fatalf("pipeswitch ordering wrong: %v", warm)
	}
}

func TestStopAndStartBreakdownDominatedByColdPath(t *testing.T) {
	dev := newDevice(t)
	rep, err := StopAndStart{}.Switch(dev, nil, ResNet152())
	if err != nil {
		t.Fatal(err)
	}
	coldPart := rep.CtxInit + rep.ColdLoad + rep.ColdKernelInit
	if coldPart < rep.Total*9/10 {
		t.Fatalf("cold path %v should dominate total %v (paper: context init + library load)", coldPart, rep.Total)
	}
}

func TestPipelinedMemoryAccounting(t *testing.T) {
	dev := newDevice(t)
	sf := SafeCrossSlowFast()
	rn := ResNet152()
	if _, err := (Pipelined{}).Switch(dev, nil, sf); err != nil {
		t.Fatal(err)
	}
	if dev.Allocated() != sf.TotalBytes() {
		t.Fatalf("allocated %d, want %d", dev.Allocated(), sf.TotalBytes())
	}
	if _, err := (Pipelined{}).Switch(dev, &sf, rn); err != nil {
		t.Fatal(err)
	}
	if dev.Allocated() != rn.TotalBytes() {
		t.Fatalf("allocated %d after swap, want %d", dev.Allocated(), rn.TotalBytes())
	}
}

func TestGroupingStrategies(t *testing.T) {
	dev := newDevice(t)
	m := ResNet152()
	cfg := dev.Config()

	opt, err := OptimalBoundaries(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt[len(opt)-1] != len(m.Layers) {
		t.Fatalf("optimal boundaries must cover all layers: %v", opt)
	}
	tOpt, err := PredictMakespan(m, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	tPer, err := PredictMakespan(m, cfg, perLayerBoundaries(len(m.Layers)))
	if err != nil {
		t.Fatal(err)
	}
	tOne, err := PredictMakespan(m, cfg, []int{len(m.Layers)})
	if err != nil {
		t.Fatal(err)
	}
	if tOpt > tPer || tOpt > tOne {
		t.Fatalf("optimal grouping (%v) must dominate per-layer (%v) and single (%v)", tOpt, tPer, tOne)
	}
	// The interesting regime: optimal strictly beats the single group
	// (pipelining helps) — per-layer may tie when sync is tiny.
	if tOpt >= tOne {
		t.Fatalf("optimal (%v) should strictly beat single group (%v)", tOpt, tOne)
	}
}

// Property: the DP result is no worse than any random grouping.
func TestPropertyOptimalGroupingDominatesRandom(t *testing.T) {
	m := InceptionV3()
	cfg := gpusim.DefaultConfig()
	opt, err := OptimalBoundaries(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tOpt, err := PredictMakespan(m, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := len(m.Layers)
		var bounds []int
		for i := 1; i < n; i++ {
			if rng.Float64() < 0.2 {
				bounds = append(bounds, i)
			}
		}
		bounds = append(bounds, n)
		tr, err := PredictMakespan(m, cfg, bounds)
		if err != nil {
			return false
		}
		return tOpt <= tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictMatchesSimulation cross-checks the analytic recurrence
// against the device simulation.
func TestPredictMatchesSimulation(t *testing.T) {
	dev := newDevice(t)
	m := InceptionV3()
	bounds, err := OptimalBoundaries(m, dev.Config())
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := PredictMakespan(m, dev.Config(), bounds)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simulatePipeline(dev, m, "test", bounds)
	if err != nil {
		t.Fatal(err)
	}
	diff := rep.Total - predicted
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("simulation %v != prediction %v", rep.Total, predicted)
	}
}

func TestBoundaryValidation(t *testing.T) {
	m := InceptionV3()
	if _, err := PredictMakespan(m, gpusim.DefaultConfig(), []int{5, 4, len(m.Layers)}); err == nil {
		t.Fatal("expected non-increasing boundary error")
	}
	if _, err := PredictMakespan(m, gpusim.DefaultConfig(), []int{5}); err == nil {
		t.Fatal("expected incomplete-boundary error")
	}
}

func TestSwitcherNames(t *testing.T) {
	tests := []struct {
		s    Switcher
		want string
	}{
		{StopAndStart{}, "stop-and-start"},
		{Pipelined{}, "pipeswitch"},
		{Pipelined{Grouping: GroupOptimal}, "pipeswitch"},
		{Pipelined{Grouping: GroupPerLayer}, "pipeswitch-per-layer"},
		{Pipelined{Grouping: GroupSingle}, "pipeswitch-single"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Fatalf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestManagerLifecycle(t *testing.T) {
	dev := newDevice(t)
	mgr := NewManager(dev, WithSLO(10*time.Millisecond))
	if err := mgr.Register("day", SafeCrossSlowFast()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("snow", ResNet152()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("day", InceptionV3()); err == nil {
		t.Fatal("expected duplicate-scene error")
	}
	if _, err := mgr.Activate("fog"); err == nil {
		t.Fatal("expected unknown-scene error")
	}

	rep, err := mgr.Activate("day")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total >= 10*time.Millisecond {
		t.Fatalf("first activation %v, want <10ms", rep.Total)
	}
	if mgr.Active() != "day" {
		t.Fatalf("active = %q", mgr.Active())
	}
	// Re-activating is a no-op.
	rep2, err := mgr.Activate("day")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Method != "noop" || rep2.Total != 0 {
		t.Fatalf("re-activation should be a no-op, got %+v", rep2)
	}
	// Scene change switches models within SLO.
	if _, err := mgr.Activate("snow"); err != nil {
		t.Fatal(err)
	}
	if len(mgr.History()) != 2 {
		t.Fatalf("history = %d entries, want 2", len(mgr.History()))
	}
	if v := mgr.SLOViolations(); v != 0 {
		t.Fatalf("SLO violations = %d, want 0", v)
	}
}

// TestManagerMultiResidency checks that a budget-rich device keeps
// every activated model loaded: re-binding a resident model is free
// and records no switch.
func TestManagerMultiResidency(t *testing.T) {
	mgr := NewManager(newDevice(t)) // 11 GiB: everything fits
	if err := mgr.Register("day", SafeCrossSlowFast()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("snow", ResNet152()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Activate("day"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Activate("snow"); err != nil {
		t.Fatal(err)
	}
	if !mgr.Resident("day") || !mgr.Resident("snow") {
		t.Fatalf("both models must stay resident, got %v", mgr.ResidentScenes())
	}
	rep, err := mgr.Activate("day")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "resident" || rep.Total != 0 {
		t.Fatalf("re-bind of a resident model must be free, got %+v", rep)
	}
	if len(mgr.History()) != 2 {
		t.Fatalf("history = %d, want 2 (re-binds are not switches)", len(mgr.History()))
	}
	if ev, rl := mgr.ResidencyCounters(); ev != 0 || rl != 0 {
		t.Fatalf("no pressure, yet evictions=%d reloads=%d", ev, rl)
	}
}

// TestManagerLRUEvictionAndReload checks the memory-pressure path: a
// budget that fits two of the three built-in models evicts the
// least-recently-used resident to admit the third, and re-activating
// the victim is counted as a reload.
func TestManagerLRUEvictionAndReload(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	cfg.MemoryBytes = 150 << 20 // slowfast (75M) + resnet152 (60M) fit; +inception (45M) does not
	dev, err := gpusim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(dev)
	for scene, m := range map[string]Model{
		"day": SafeCrossSlowFast(), "rain": ResNet152(), "snow": InceptionV3(),
	} {
		if err := mgr.Register(scene, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.Activate("day"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Activate("rain"); err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.Activate("snow")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 1 || rep.Reload {
		t.Fatalf("third model must evict exactly the LRU resident, got %+v", rep)
	}
	if mgr.Resident("day") {
		t.Fatal("day was least recently used and must have been evicted")
	}
	if !mgr.Resident("rain") || !mgr.Resident("snow") {
		t.Fatalf("residents = %v, want rain+snow", mgr.ResidentScenes())
	}

	rep, err = mgr.Activate("day")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reload {
		t.Fatalf("bringing day back must count as a reload, got %+v", rep)
	}
	if rep.Total <= 0 {
		t.Fatalf("a reload pays a real pipelined load, got %+v", rep)
	}
	ev, rl := mgr.ResidencyCounters()
	if ev < 2 || rl != 1 {
		t.Fatalf("evictions=%d (want ≥2) reloads=%d (want 1)", ev, rl)
	}
	if dev.Allocated() > dev.Capacity() {
		t.Fatalf("allocation %d exceeds capacity %d", dev.Allocated(), dev.Capacity())
	}
}

// TestManagerRejectsOversizedModel checks that a model larger than the
// whole device budget fails loudly instead of evicting everything and
// then OOMing inside the switcher.
func TestManagerRejectsOversizedModel(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	cfg.MemoryBytes = 10 << 20
	dev, err := gpusim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(dev)
	if err := mgr.Register("day", SafeCrossSlowFast()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Activate("day"); err == nil {
		t.Fatal("expected budget-exceeded error")
	}
}

func TestManagerStopAndStartViolatesSLO(t *testing.T) {
	dev := newDevice(t)
	mgr := NewManager(dev, WithSwitcher(StopAndStart{}))
	if err := mgr.Register("day", InceptionV3()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Activate("day"); err != nil {
		t.Fatal(err)
	}
	if v := mgr.SLOViolations(); v != 1 {
		t.Fatalf("stop-and-start must violate the 10ms SLO, violations = %d", v)
	}
}
