package pipeswitch

import (
	"fmt"
	"time"

	"safecross/internal/gpusim"
)

// The OSDI PipeSwitch system keeps the GPU warm with an
// active-standby worker pair and a memory daemon that owns one big
// pinned allocation: the active worker serves the resident model
// while a standby worker has a live context ready, so a switch never
// pays context creation, and freeing the old model is just returning
// pool ranges. WorkerPool reproduces that architecture on the
// simulated device; Pipelined.Switch is the data path it invokes.

// WorkerState describes one worker process.
type WorkerState int

// Worker states.
const (
	// WorkerStandby: context initialised, no model resident.
	WorkerStandby WorkerState = iota + 1
	// WorkerActive: serving the resident model.
	WorkerActive
)

// String names the state.
func (s WorkerState) String() string {
	switch s {
	case WorkerStandby:
		return "standby"
	case WorkerActive:
		return "active"
	default:
		return "unknown"
	}
}

// Worker is one GPU-attached serving process.
type Worker struct {
	// ID identifies the worker in reports.
	ID int
	// State is the worker's role.
	State WorkerState
	// Model is the resident model name ("" when standby).
	Model string
	// CtxReadyAt is the virtual instant its context finished
	// initialising.
	CtxReadyAt time.Duration
}

// MemoryPool is the daemon-owned pinned allocation models are carved
// from. Returning a model's range is O(1) — no device free/alloc on
// the switch path.
type MemoryPool struct {
	capacity int64
	used     int64
}

// NewMemoryPool reserves a pool of the given size on the device.
func NewMemoryPool(dev *gpusim.Device, capacity int64) (*MemoryPool, error) {
	if err := dev.Alloc(capacity); err != nil {
		return nil, fmt.Errorf("pipeswitch: pool reserve: %w", err)
	}
	return &MemoryPool{capacity: capacity}, nil
}

// Capacity returns the pool size in bytes.
func (p *MemoryPool) Capacity() int64 { return p.capacity }

// Used returns the bytes currently carved out.
func (p *MemoryPool) Used() int64 { return p.used }

// Carve reserves bytes from the pool.
func (p *MemoryPool) Carve(bytes int64) error {
	if bytes < 0 || p.used+bytes > p.capacity {
		return fmt.Errorf("pipeswitch: pool exhausted: %d + %d > %d", p.used, bytes, p.capacity)
	}
	p.used += bytes
	return nil
}

// Return releases bytes back to the pool.
func (p *MemoryPool) Return(bytes int64) error {
	if bytes < 0 || bytes > p.used {
		return fmt.Errorf("pipeswitch: bad pool return of %d (used %d)", bytes, p.used)
	}
	p.used -= bytes
	return nil
}

// WorkerPool is the active-standby serving architecture.
type WorkerPool struct {
	dev  *gpusim.Device
	pool *MemoryPool

	active  *Worker
	standby *Worker
	nextID  int

	resident *Model
	history  []Report
}

// NewWorkerPool boots two workers (contexts initialised up front, off
// the switching path) and the memory daemon's pool sized to hold the
// largest built-in model with headroom.
func NewWorkerPool(dev *gpusim.Device, poolBytes int64) (*WorkerPool, error) {
	if poolBytes <= 0 {
		return nil, fmt.Errorf("pipeswitch: pool size %d must be positive", poolBytes)
	}
	pool, err := NewMemoryPool(dev, poolBytes)
	if err != nil {
		return nil, err
	}
	ctx := dev.ContextInitDuration()
	wp := &WorkerPool{
		dev:  dev,
		pool: pool,
		// Both contexts initialise concurrently at boot; the pool is
		// ready when the slower finishes. This cost is paid once,
		// before any traffic — the whole point of the standby design.
		active:  &Worker{ID: 1, State: WorkerActive, CtxReadyAt: ctx},
		standby: &Worker{ID: 2, State: WorkerStandby, CtxReadyAt: ctx},
		nextID:  3,
	}
	return wp, nil
}

// Active returns a copy of the active worker's descriptor.
func (wp *WorkerPool) Active() Worker { return *wp.active }

// Standby returns a copy of the standby worker's descriptor.
func (wp *WorkerPool) Standby() Worker { return *wp.standby }

// Pool returns the memory daemon's pool.
func (wp *WorkerPool) Pool() *MemoryPool { return wp.pool }

// Resident returns the name of the model being served ("" if none).
func (wp *WorkerPool) Resident() string {
	if wp.resident == nil {
		return ""
	}
	return wp.resident.Name
}

// History returns all switch reports so far.
func (wp *WorkerPool) History() []Report { return append([]Report(nil), wp.history...) }

// Serve switches serving to the given model: the standby worker runs
// the pipelined load (its context is already live), becomes active,
// and the previous active worker releases its pool ranges and becomes
// the new standby. The old worker's cleanup happens off the critical
// path, after the new model is already serving.
func (wp *WorkerPool) Serve(m Model) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	if wp.resident != nil && wp.resident.Name == m.Name {
		return Report{Model: m.Name, Method: "noop"}, nil
	}
	if err := wp.pool.Carve(m.TotalBytes()); err != nil {
		return Report{}, err
	}
	boundaries, err := OptimalBoundaries(m, wp.dev.Config())
	if err != nil {
		return Report{}, err
	}
	rep, err := simulatePipeline(wp.dev, m, "pipeswitch-standby", boundaries)
	if err != nil {
		return Report{}, err
	}

	// Promote standby, demote active; the demoted worker returns its
	// ranges to the pool (O(1), not on the latency path).
	wp.active, wp.standby = wp.standby, wp.active
	wp.active.State = WorkerActive
	wp.active.Model = m.Name
	wp.standby.State = WorkerStandby
	wp.standby.Model = ""
	if wp.resident != nil {
		if err := wp.pool.Return(wp.resident.TotalBytes()); err != nil {
			return Report{}, err
		}
	}
	resident := m
	wp.resident = &resident
	wp.history = append(wp.history, rep)
	return rep, nil
}

// DefaultPoolBytes sizes the daemon pool to hold any two built-in
// models simultaneously (the switching transient).
func DefaultPoolBytes() int64 {
	var largest, second int64
	for _, m := range BuiltinModels() {
		b := m.TotalBytes()
		if b > largest {
			largest, second = b, largest
		} else if b > second {
			second = b
		}
	}
	return largest + second
}
