package pipeswitch

import (
	"fmt"
	"sync"
	"time"

	"safecross/internal/gpusim"
)

// Manager is the runtime face of the MS module: it keeps a registry
// of per-scene models, tracks which one is resident on the device,
// and switches with the configured method when the scene changes,
// recording switch latencies against an SLO.
type Manager struct {
	mu sync.Mutex

	dev      *gpusim.Device
	switcher Switcher
	slo      time.Duration

	registry map[string]Model
	active   string
	history  []Report
}

// ManagerOption configures a Manager.
type ManagerOption interface {
	apply(*Manager)
}

type switcherOption struct{ s Switcher }

func (o switcherOption) apply(m *Manager) { m.switcher = o.s }

// WithSwitcher selects the switching method (default Pipelined with
// optimal grouping).
func WithSwitcher(s Switcher) ManagerOption { return switcherOption{s: s} }

type sloOption struct{ d time.Duration }

func (o sloOption) apply(m *Manager) { m.slo = o.d }

// WithSLO sets the switch-latency service-level objective; the paper
// requires real-time switching below 10 ms.
func WithSLO(d time.Duration) ManagerOption { return sloOption{d: d} }

// DefaultSLO is the paper's real-time bound for a model switch.
const DefaultSLO = 10 * time.Millisecond

// NewManager creates a model-switching manager on the given device.
func NewManager(dev *gpusim.Device, opts ...ManagerOption) *Manager {
	m := &Manager{
		dev:      dev,
		switcher: Pipelined{Grouping: GroupOptimal},
		slo:      DefaultSLO,
		registry: make(map[string]Model),
	}
	for _, o := range opts {
		o.apply(m)
	}
	return m
}

// Register adds a model under a scene key (e.g. "day", "rain",
// "snow").
func (m *Manager) Register(scene string, model Model) error {
	if err := model.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.registry[scene]; ok {
		return fmt.Errorf("pipeswitch: scene %q already registered", scene)
	}
	m.registry[scene] = model
	return nil
}

// Device returns the simulated accelerator the manager switches on.
// The serving layer (internal/serve) schedules batched inference on
// it so switch and compute share one virtual timeline per worker.
func (m *Manager) Device() *gpusim.Device { return m.dev }

// ModelFor returns the manifest registered under scene, reporting
// whether the scene is known. Inference servers use it to convert a
// batch into simulated compute cost (FLOPs, kernel count).
func (m *Manager) ModelFor(scene string) (Model, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	model, ok := m.registry[scene]
	return model, ok
}

// Active returns the scene key of the resident model ("" when none).
func (m *Manager) Active() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Activate switches the device to the model registered for scene. It
// is a no-op (with a zero-latency report) when the scene is already
// active.
func (m *Manager) Activate(scene string) (Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	model, ok := m.registry[scene]
	if !ok {
		return Report{}, fmt.Errorf("pipeswitch: scene %q not registered", scene)
	}
	if m.active == scene {
		return Report{Model: model.Name, Method: "noop", Groups: 0}, nil
	}
	var prev *Model
	if m.active != "" {
		p := m.registry[m.active]
		prev = &p
	}
	rep, err := m.switcher.Switch(m.dev, prev, model)
	if err != nil {
		return Report{}, fmt.Errorf("pipeswitch: activate %q: %w", scene, err)
	}
	m.active = scene
	m.history = append(m.history, rep)
	return rep, nil
}

// History returns a copy of all switch reports so far.
func (m *Manager) History() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Report(nil), m.history...)
}

// SLOViolations counts switches that exceeded the SLO.
func (m *Manager) SLOViolations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.history {
		if r.Total > m.slo {
			n++
		}
	}
	return n
}
