package pipeswitch

import (
	"fmt"
	"sync"
	"time"

	"safecross/internal/gpusim"
	"safecross/internal/telemetry"
)

// Manager is the runtime face of the MS module: it keeps a registry
// of per-scene models, tracks which ones are resident on the device,
// and loads with the configured method when an absent scene is
// activated, recording switch latencies against an SLO.
//
// Residency is multi-model: the device's memory budget, not the model
// count, bounds how many scenes stay loaded. Activating a resident
// scene is free; activating an absent one evicts least-recently-used
// residents until the new model fits, then pays one pipelined load.
// With a budget that fits only one model this degenerates to the
// classic single-resident switch.
type Manager struct {
	mu sync.Mutex

	dev      *gpusim.Device
	switcher Switcher
	slo      time.Duration

	registry map[string]Model
	active   string
	history  []Report

	// residents maps scene → bytes held on the device; lastUse orders
	// them for LRU eviction (tick is a logical clock).
	residents map[string]int64
	lastUse   map[string]int64
	tick      int64
	// everLoaded distinguishes a reload (scene was resident once and
	// got evicted) from a first load.
	everLoaded         map[string]bool
	evictions, reloads int

	// metrics is the optional telemetry sink. All fields are nil-safe,
	// so an unwired manager records nowhere at no cost beyond a branch.
	metrics managerMetrics
}

// managerMetrics holds the manager's telemetry handles: per-method
// load-latency histograms (virtual switch cost, labelled by switching
// method) plus residency-churn counters shared across managers on the
// same registry (the serving plane registers one manager per worker).
type managerMetrics struct {
	reg        *telemetry.Registry
	loadByMeth map[string]*telemetry.Histogram
	evictions  *telemetry.Counter
	reloads    *telemetry.Counter
	resident   *telemetry.Counter
	noop       *telemetry.Counter
}

// observeLoad records one real load's virtual-time cost under its
// method label, resolving the labelled histogram lazily (first load
// per method). Callers hold m.mu, so the map needs no extra lock.
func (mm *managerMetrics) observeLoad(method string, total time.Duration) {
	if mm.reg == nil {
		return
	}
	h, ok := mm.loadByMeth[method]
	if !ok {
		name := fmt.Sprintf("pipeswitch_load_seconds{method=%q}", method)
		h = mm.reg.Histogram(name, "virtual-time cost of model loads by switching method", telemetry.UnitSeconds)
		mm.loadByMeth[method] = h
	}
	h.ObserveDuration(total)
}

// ManagerOption configures a Manager.
type ManagerOption interface {
	apply(*Manager)
}

type switcherOption struct{ s Switcher }

func (o switcherOption) apply(m *Manager) { m.switcher = o.s }

// WithSwitcher selects the switching method (default Pipelined with
// optimal grouping).
func WithSwitcher(s Switcher) ManagerOption { return switcherOption{s: s} }

type sloOption struct{ d time.Duration }

func (o sloOption) apply(m *Manager) { m.slo = o.d }

// WithSLO sets the switch-latency service-level objective; the paper
// requires real-time switching below 10 ms.
func WithSLO(d time.Duration) ManagerOption { return sloOption{d: d} }

type metricsOption struct{ reg *telemetry.Registry }

func (o metricsOption) apply(m *Manager) {
	if o.reg == nil {
		return
	}
	m.metrics = managerMetrics{
		reg:        o.reg,
		loadByMeth: make(map[string]*telemetry.Histogram),
		evictions:  o.reg.Counter("pipeswitch_evictions_total", "models evicted from device memory under pressure"),
		reloads:    o.reg.Counter("pipeswitch_reloads_total", "activations that re-loaded a previously evicted model"),
		resident:   o.reg.Counter("pipeswitch_resident_binds_total", "activations satisfied by an already-resident model (free re-bind)"),
		noop:       o.reg.Counter("pipeswitch_noop_activations_total", "activations of the already-active model"),
	}
}

// WithMetrics wires the manager's switch timings and residency churn
// into a telemetry registry: per-method load-latency histograms
// (`pipeswitch_load_seconds{method="…"}`) plus eviction/reload/
// resident-bind counters. Several managers may share one registry —
// the serving plane registers one per GPU worker — and their series
// aggregate.
func WithMetrics(reg *telemetry.Registry) ManagerOption { return metricsOption{reg: reg} }

// DefaultSLO is the paper's real-time bound for a model switch.
const DefaultSLO = 10 * time.Millisecond

// NewManager creates a model-switching manager on the given device.
func NewManager(dev *gpusim.Device, opts ...ManagerOption) *Manager {
	m := &Manager{
		dev:        dev,
		switcher:   Pipelined{Grouping: GroupOptimal},
		slo:        DefaultSLO,
		registry:   make(map[string]Model),
		residents:  make(map[string]int64),
		lastUse:    make(map[string]int64),
		everLoaded: make(map[string]bool),
	}
	for _, o := range opts {
		o.apply(m)
	}
	return m
}

// Register adds a model under a scene key (e.g. "day", "rain",
// "snow").
func (m *Manager) Register(scene string, model Model) error {
	if err := model.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.registry[scene]; ok {
		return fmt.Errorf("pipeswitch: scene %q already registered", scene)
	}
	m.registry[scene] = model
	return nil
}

// Device returns the simulated accelerator the manager switches on.
// The serving layer (internal/serve) schedules batched inference on
// it so switch and compute share one virtual timeline per worker.
func (m *Manager) Device() *gpusim.Device { return m.dev }

// ModelFor returns the manifest registered under scene, reporting
// whether the scene is known. Inference servers use it to convert a
// batch into simulated compute cost (FLOPs, kernel count).
func (m *Manager) ModelFor(scene string) (Model, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	model, ok := m.registry[scene]
	return model, ok
}

// Active returns the scene key of the model bound for compute (""
// when none).
func (m *Manager) Active() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Resident reports whether the scene's model is currently loaded on
// the device.
func (m *Manager) Resident(scene string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.residents[scene]
	return ok
}

// ResidentScenes returns the scenes whose models are currently loaded,
// in unspecified order.
func (m *Manager) ResidentScenes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.residents))
	for scene := range m.residents {
		out = append(out, scene)
	}
	return out
}

// ResidencyCounters returns the cumulative eviction and reload counts:
// evictions frees forced by memory pressure, reloads activations that
// had to re-load a previously evicted model.
func (m *Manager) ResidencyCounters() (evictions, reloads int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions, m.reloads
}

// Activate binds the model registered for scene: a no-op when it is
// already active, a free re-bind (Method "resident") when it is loaded
// but not active, and otherwise a switch through the configured
// method, evicting least-recently-used residents first when the
// device's memory budget demands it.
func (m *Manager) Activate(scene string) (Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	model, ok := m.registry[scene]
	if !ok {
		return Report{}, fmt.Errorf("pipeswitch: scene %q not registered", scene)
	}
	m.tick++
	if _, resident := m.residents[scene]; resident {
		m.lastUse[scene] = m.tick
		if m.active == scene {
			m.metrics.noop.Inc()
			return Report{Model: model.Name, Method: "noop", Groups: 0}, nil
		}
		// The weights are already on the device; binding them for
		// compute transfers nothing.
		m.active = scene
		m.metrics.resident.Inc()
		return Report{Model: model.Name, Method: "resident", Groups: 0}, nil
	}

	evicted, err := m.evictFor(model)
	if err != nil {
		return Report{}, err
	}
	rep, err := m.switcher.Switch(m.dev, nil, model)
	if err != nil {
		return Report{}, fmt.Errorf("pipeswitch: activate %q: %w", scene, err)
	}
	rep.Evicted = evicted
	if m.everLoaded[scene] {
		rep.Reload = true
		m.reloads++
		m.metrics.reloads.Inc()
	}
	m.everLoaded[scene] = true
	m.metrics.observeLoad(rep.Method, rep.Total)

	// A cold switcher (stop-and-start) resets the device, killing
	// every co-resident model with the old process; reconcile our
	// bookkeeping with the device's actual allocation.
	want := model.TotalBytes()
	for _, b := range m.residents {
		want += b
	}
	if m.dev.Allocated() != want {
		m.residents = make(map[string]int64)
	}
	m.residents[scene] = model.TotalBytes()
	m.lastUse[scene] = m.tick
	m.active = scene
	m.history = append(m.history, rep)
	return rep, nil
}

// evictFor frees least-recently-used residents until next fits in the
// device budget, returning how many models were evicted. Callers hold
// m.mu.
func (m *Manager) evictFor(next Model) (int, error) {
	evicted := 0
	for !m.dev.Fits(next.TotalBytes()) {
		victim, oldest := "", int64(0)
		for scene := range m.residents {
			if victim == "" || m.lastUse[scene] < oldest {
				victim, oldest = scene, m.lastUse[scene]
			}
		}
		if victim == "" {
			return evicted, fmt.Errorf("pipeswitch: model %q (%d bytes) exceeds device budget %d",
				next.Name, next.TotalBytes(), m.dev.Capacity())
		}
		if err := m.dev.Free(m.residents[victim]); err != nil {
			return evicted, fmt.Errorf("pipeswitch: evict %q: %w", victim, err)
		}
		delete(m.residents, victim)
		if m.active == victim {
			m.active = ""
		}
		m.evictions++
		m.metrics.evictions.Inc()
		evicted++
	}
	return evicted, nil
}

// History returns a copy of all switch reports so far.
func (m *Manager) History() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Report(nil), m.history...)
}

// SLOViolations counts switches that exceeded the SLO.
func (m *Manager) SLOViolations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.history {
		if r.Total > m.slo {
			n++
		}
	}
	return n
}
