// Package pipeswitch reproduces the paper's model-switching (MS)
// module: PipeSwitch-style pipelined model loading on the simulated
// GPU (internal/gpusim), the stop-and-start baseline it is compared
// against in Table VI, and the model-aware layer grouping chosen by
// an optimal search (Sec. III-E-3 of the paper).
package pipeswitch

import (
	"fmt"
	"time"
)

// Layer is one transferable/executable unit of a model: its parameter
// bytes and its inference FLOPs.
type Layer struct {
	// Name identifies the layer for reports.
	Name string
	// Bytes is the parameter payload transferred to the device.
	Bytes int64
	// FLOPs is the inference cost of the layer at batch size 1.
	FLOPs float64
}

// Model is an inference model manifest: an ordered layer list plus
// the cold-initialisation scale (3-D convolution stacks autotune
// longer than 2-D ones on a cold process).
type Model struct {
	// Name identifies the model ("slowfast-safecross", ...).
	Name string
	// Layers in execution order; PipeSwitch transfers and executes
	// them front to back.
	Layers []Layer
	// ColdInitScale multiplies the per-layer cold-initialisation cost
	// in the stop-and-start path.
	ColdInitScale float64
}

// TotalBytes returns the summed parameter payload.
func (m Model) TotalBytes() int64 {
	var b int64
	for _, l := range m.Layers {
		b += l.Bytes
	}
	return b
}

// TotalFLOPs returns the summed inference cost.
func (m Model) TotalFLOPs() float64 {
	f := 0.0
	for _, l := range m.Layers {
		f += l.FLOPs
	}
	return f
}

// Validate checks manifest invariants.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("pipeswitch: model %q has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.Bytes < 0 || l.FLOPs < 0 {
			return fmt.Errorf("pipeswitch: model %q layer %d (%s) has negative cost", m.Name, i, l.Name)
		}
	}
	if m.ColdInitScale <= 0 {
		return fmt.Errorf("pipeswitch: model %q needs positive cold-init scale", m.Name)
	}
	return nil
}

// buildLayers synthesises a layer list whose bytes and FLOPs follow
// the usual CNN pattern — early layers are FLOP-heavy and
// parameter-light, late layers the reverse — normalised to the given
// totals. The distribution shape matters to the grouping optimizer:
// uniform layers would make grouping trivial.
func buildLayers(prefix string, n int, totalBytes int64, totalFLOPs float64) []Layer {
	layers := make([]Layer, n)
	// Weight profiles: bytes grow roughly quadratically with depth
	// (channel widths double per stage), FLOPs decay (spatial dims
	// shrink faster than channels grow).
	byteW := make([]float64, n)
	flopW := make([]float64, n)
	var byteSum, flopSum float64
	for i := 0; i < n; i++ {
		d := float64(i+1) / float64(n)
		byteW[i] = 0.2 + d*d*2.8
		flopW[i] = 1.6 - d*1.1
		byteSum += byteW[i]
		flopSum += flopW[i]
	}
	var allocated int64
	for i := 0; i < n; i++ {
		b := int64(float64(totalBytes) * byteW[i] / byteSum)
		layers[i] = Layer{
			Name:  fmt.Sprintf("%s.layer%03d", prefix, i),
			Bytes: b,
			FLOPs: totalFLOPs * flopW[i] / flopSum,
		}
		allocated += b
	}
	// Put rounding residue in the last layer so totals are exact.
	layers[n-1].Bytes += totalBytes - allocated
	return layers
}

// Manifest totals. Parameter byte sizes are scaled from the real
// architectures by the same factor the rest of the reproduction
// applies to its substrate (see DESIGN.md); layer counts and FLOP
// magnitudes follow the published architectures.
const (
	slowFastLayerCount = 140
	slowFastBytes      = 75 << 20
	slowFastFLOPs      = 50e9
	slowFastColdScale  = 2.8

	resNet152LayerCount = 155
	resNet152Bytes      = 60 << 20
	resNet152FLOPs      = 23e9
	resNet152ColdScale  = 1.0

	inceptionV3LayerCount = 94
	inceptionV3Bytes      = 45 << 20
	inceptionV3FLOPs      = 11e9
	inceptionV3ColdScale  = 1.0
)

// SafeCrossSlowFast returns the manifest of the paper's deployed
// model: SlowFast 4x16 R50 with the SafeCross head. Two pathways and
// 3-D kernels give it the highest layer count, cold-init scale, and
// payload of the three Table VI models.
func SafeCrossSlowFast() Model {
	return Model{
		Name:          "slowfast-safecross",
		Layers:        buildLayers("slowfast", slowFastLayerCount, slowFastBytes, slowFastFLOPs),
		ColdInitScale: slowFastColdScale,
	}
}

// ResNet152 returns the ResNet-152 comparison manifest.
func ResNet152() Model {
	return Model{
		Name:          "resnet152",
		Layers:        buildLayers("resnet152", resNet152LayerCount, resNet152Bytes, resNet152FLOPs),
		ColdInitScale: resNet152ColdScale,
	}
}

// InceptionV3 returns the Inception-v3 comparison manifest.
func InceptionV3() Model {
	return Model{
		Name:          "inceptionv3",
		Layers:        buildLayers("inceptionv3", inceptionV3LayerCount, inceptionV3Bytes, inceptionV3FLOPs),
		ColdInitScale: inceptionV3ColdScale,
	}
}

// BuiltinModels returns the three Table VI models in paper order.
func BuiltinModels() []Model {
	return []Model{SafeCrossSlowFast(), ResNet152(), InceptionV3()}
}

// Report describes one switch operation in virtual time.
type Report struct {
	// Model and Method identify the run.
	Model, Method string
	// Total is the switch-to-first-inference completion latency.
	Total time.Duration
	// Breakdown components (zero when not applicable to the method).
	CtxInit, ColdLoad, ColdKernelInit time.Duration
	// Transfer and Compute are the engine busy times.
	Transfer, Compute time.Duration
	// Groups is the number of transfer/execute groups used.
	Groups int
	// Evicted is how many resident models the Manager had to evict to
	// make room for this load (zero for direct Switcher use).
	Evicted int
	// Reload reports that this load brought back a model that had
	// previously been resident and was evicted under memory pressure.
	Reload bool
}

// String formats the report as a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s/%s: total=%v groups=%d (ctx=%v load=%v init=%v xfer=%v compute=%v)",
		r.Model, r.Method, r.Total.Round(10*time.Microsecond), r.Groups,
		r.CtxInit, r.ColdLoad, r.ColdKernelInit,
		r.Transfer.Round(10*time.Microsecond), r.Compute.Round(10*time.Microsecond))
}
