package pipeswitch

import (
	"strings"
	"testing"

	"safecross/internal/gpusim"
	"safecross/internal/telemetry"
)

// TestManagerMetrics drives a budget-constrained manager through a
// load / resident re-bind / noop / evict / reload cycle and checks
// every transition lands in the registry under the right series.
func TestManagerMetrics(t *testing.T) {
	model := SafeCrossSlowFast()
	cfg := gpusim.DefaultConfig()
	cfg.MemoryBytes = model.TotalBytes() + (1 << 20) // fits exactly one model
	dev, err := gpusim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := NewManager(dev, WithMetrics(reg))
	for _, scene := range []string{"day", "rain"} {
		mod := model
		mod.Name = mod.Name + "-" + scene
		if err := m.Register(scene, mod); err != nil {
			t.Fatal(err)
		}
	}

	activate := func(scene, wantMethod string) {
		t.Helper()
		rep, err := m.Activate(scene)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Method != wantMethod {
			t.Fatalf("activate %s: method %q, want %q", scene, rep.Method, wantMethod)
		}
	}
	activate("day", "pipeswitch")  // cold load
	activate("day", "noop")        // already active
	activate("rain", "pipeswitch") // budget evicts day
	activate("day", "pipeswitch")  // reload of evicted day

	h := reg.FindHistogram(`pipeswitch_load_seconds{method="pipeswitch"}`)
	if h == nil || h.Count() != 3 {
		t.Fatalf("load histogram count = %d, want 3", h.Count())
	}
	if h.QuantileDuration(1) <= 0 {
		t.Fatal("load histogram recorded no latency")
	}
	snap := reg.Snapshot()
	if got := snap.Value("pipeswitch_evictions_total"); got != 2 {
		t.Fatalf("evictions = %v, want 2", got)
	}
	if got := snap.Value("pipeswitch_reloads_total"); got != 1 {
		t.Fatalf("reloads = %v, want 1", got)
	}
	if got := snap.Value("pipeswitch_noop_activations_total"); got != 1 {
		t.Fatalf("noops = %v, want 1", got)
	}
	// Registry counters must agree with the manager's own façade.
	ev, rl := m.ResidencyCounters()
	if int64(ev) != snap.Value("pipeswitch_evictions_total") || int64(rl) != snap.Value("pipeswitch_reloads_total") {
		t.Fatalf("registry (%v, %v) disagrees with ResidencyCounters (%d, %d)",
			snap.Value("pipeswitch_evictions_total"), snap.Value("pipeswitch_reloads_total"), ev, rl)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pipeswitch_load_seconds_count{method="pipeswitch"} 3`) {
		t.Fatalf("prometheus output missing labelled load series:\n%s", sb.String())
	}
}

// TestManagerWithoutMetricsStillWorks is the nil-safety check: an
// unwired manager records nowhere and never panics.
func TestManagerWithoutMetricsStillWorks(t *testing.T) {
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(dev)
	if err := m.Register("day", SafeCrossSlowFast()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Activate("day"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Activate("day"); err != nil {
		t.Fatal(err)
	}
}
