package serve

import (
	"fmt"

	"safecross/internal/sim"
	"safecross/internal/telemetry"
)

// serveMetrics holds the serving plane's telemetry handles. They are
// the single source of truth for all activity counters — Stats() is a
// façade computed from them — and every handle is hot-path safe:
// counters and histograms are sharded atomics, so Submit, the
// scheduler, and the workers record without touching Server.mu.
type serveMetrics struct {
	// Admission outcomes. Together they tile the request lifecycle:
	// every submitted request ends in exactly one of completed,
	// cancelled, expired, failed, or shed, and every refused submission
	// lands in rejected.
	submitted     *telemetry.Counter
	rejected      *telemetry.Counter
	shed          *telemetry.Counter
	cancelled     *telemetry.Counter
	expired       *telemetry.Counter
	failed        *telemetry.Counter
	completed     *telemetry.Counter
	sloViolations *telemetry.Counter
	aged          *telemetry.Counter

	// Batching and model-residency churn.
	batches        *telemetry.Counter
	batchedClips   *telemetry.Counter
	warmBatches    *telemetry.Counter
	switches       *telemetry.Counter
	evictions      *telemetry.Counter
	reloads        *telemetry.Counter
	maxBatch       *telemetry.Gauge
	batchSize      *telemetry.Histogram
	batchTarget    *telemetry.Gauge
	batchTargetMax *telemetry.Gauge

	// Latency decomposition over completed requests. queueWait is
	// submit→bucket, batchWait bucket→dispatch, compute the batched
	// forward pass, totalLatency submit→verdict; switchCost is the
	// virtual-time PipeSwitch load a batch paid (real loads only).
	queueWait    *telemetry.Histogram
	batchWait    *telemetry.Histogram
	compute      *telemetry.Histogram
	totalLatency *telemetry.Histogram
	switchCost   *telemetry.Histogram

	// Per-class submit→dispatch waits — the priority plane's acceptance
	// metric (under saturation Critical p95 must sit below Routine) —
	// and the matching completion split. Aged Routine requests count as
	// Critical, mirroring their dispatch tier.
	critWait      *telemetry.Histogram
	routWait      *telemetry.Histogram
	critCompleted *telemetry.Counter
	routCompleted *telemetry.Counter
}

func newServeMetrics(reg *telemetry.Registry) serveMetrics {
	return serveMetrics{
		submitted:     reg.Counter("serve_submitted_total", "requests accepted into the admission queue"),
		rejected:      reg.Counter("serve_rejected_total", "submissions refused for a full queue"),
		shed:          reg.Counter("serve_shed_total", "admitted routine requests shed for a critical admission"),
		cancelled:     reg.Counter("serve_cancelled_total", "queued requests whose context fired before dispatch"),
		expired:       reg.Counter("serve_expired_total", "queued requests shed for a lapsed deadline"),
		failed:        reg.Counter("serve_failed_total", "requests ended by model failure or shutdown"),
		completed:     reg.Counter("serve_completed_total", "requests that received a verdict"),
		sloViolations: reg.Counter("serve_slo_violations_total", "completed requests whose latency exceeded their deadline"),
		aged:          reg.Counter("serve_aged_total", "routine requests promoted to critical dispatch by aging"),

		batches:        reg.Counter("serve_batches_total", "batched forward passes"),
		batchedClips:   reg.Counter("serve_batched_clips_total", "clips carried by batched forward passes"),
		warmBatches:    reg.Counter("serve_warm_batches_total", "batches routed to a worker already holding the scene model"),
		switches:       reg.Counter("serve_switches_total", "batches that triggered a PipeSwitch model load"),
		evictions:      reg.Counter("serve_evictions_total", "models evicted from worker memory under pressure"),
		reloads:        reg.Counter("serve_reloads_total", "loads that brought back a previously evicted model"),
		maxBatch:       reg.Gauge("serve_max_batch", "largest batch observed"),
		batchSize:      reg.Histogram("serve_batch_size", "clips per batched forward pass", telemetry.UnitCount),
		batchTarget:    reg.Gauge("serve_batch_target", "adaptive early-seal batch target derived from queue depth"),
		batchTargetMax: reg.Gauge("serve_batch_target_max", "largest adaptive batch target reached"),

		queueWait:    reg.Histogram("serve_queue_wait_seconds", "admission-queue wait before bucketing", telemetry.UnitSeconds),
		batchWait:    reg.Histogram("serve_batch_wait_seconds", "wait inside the batch until a worker took it", telemetry.UnitSeconds),
		compute:      reg.Histogram("serve_compute_seconds", "wall-clock batched forward pass", telemetry.UnitSeconds),
		totalLatency: reg.Histogram("serve_total_latency_seconds", "submit-to-verdict latency", telemetry.UnitSeconds),
		switchCost:   reg.Histogram("serve_switch_cost_seconds", "virtual-time PipeSwitch load cost per switching batch", telemetry.UnitSeconds),

		critWait:      reg.Histogram(`serve_dispatch_wait_seconds{class="critical"}`, "submit-to-dispatch wait by effective class", telemetry.UnitSeconds),
		routWait:      reg.Histogram(`serve_dispatch_wait_seconds{class="routine"}`, "submit-to-dispatch wait by effective class", telemetry.UnitSeconds),
		critCompleted: reg.Counter(`serve_completed_by_class_total{class="critical"}`, "completed requests by effective class"),
		routCompleted: reg.Counter(`serve_completed_by_class_total{class="routine"}`, "completed requests by effective class"),
	}
}

// sceneSeries are one scene's labelled serving metrics: how much
// traffic the scene submits and how long its requests wait for
// admission. Per-scene series let an operator see that one
// intersection's weather is saturating the plane while the aggregate
// histograms still look healthy.
type sceneSeries struct {
	requests  *telemetry.Counter
	queueWait *telemetry.Histogram
}

// newSceneSeries resolves the labelled per-scene series for every
// scene the plane serves. Scenes are fixed at construction, so the
// hot path indexes a read-only map and never touches the registry
// lock.
func newSceneSeries(reg *telemetry.Registry, scenes map[sim.Weather]bool) map[sim.Weather]sceneSeries {
	out := make(map[sim.Weather]sceneSeries, len(scenes))
	for scene := range scenes {
		label := scene.String()
		out[scene] = sceneSeries{
			requests: reg.Counter(
				fmt.Sprintf(`serve_requests_total{scene=%q}`, label),
				"requests accepted into the admission queue by scene"),
			queueWait: reg.Histogram(
				fmt.Sprintf(`serve_queue_wait_seconds{scene=%q}`, label),
				"admission-queue wait before bucketing by scene", telemetry.UnitSeconds),
		}
	}
	return out
}

// Metrics returns the server's telemetry registry — the one passed in
// Config.Metrics, or the private registry the server created when none
// was. Exporters (the debug listener, benchmarks) read series from it;
// Stats() is a convenience façade over the same data.
func (s *Server) Metrics() *telemetry.Registry { return s.registry }
