package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"safecross/internal/dataset"
	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/tensor"
	"safecross/internal/video"
)

// stubClassifier is a controllable classifier for serving tests: it
// always predicts label, optionally sleeping to simulate compute. The
// unsynchronised forwards counter is deliberate — if the server ever
// shared one replica across workers, `go test -race` would flag it.
type stubClassifier struct {
	label    int
	delay    time.Duration
	forwards int
}

func (c *stubClassifier) Name() string { return "stub" }

func (c *stubClassifier) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	c.forwards++
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	out := tensor.New(2)
	out.Data[c.label] = 1
	return out, nil
}

func (c *stubClassifier) Backward(d *tensor.Tensor) error { return nil }
func (c *stubClassifier) Params() []*nn.Param             { return nil }
func (c *stubClassifier) SetTrain(train bool)             {}

// stubFactory returns fresh per-worker replicas predicting safe for
// day and danger for rain/snow, with the given per-clip delay.
func stubFactory(delay time.Duration) ModelFactory {
	return func() (map[sim.Weather]video.Classifier, error) {
		return map[sim.Weather]video.Classifier{
			sim.Day:  &stubClassifier{label: dataset.ClassSafe, delay: delay},
			sim.Rain: &stubClassifier{label: dataset.ClassDanger, delay: delay},
			sim.Snow: &stubClassifier{label: dataset.ClassDanger, delay: delay},
		}, nil
	}
}

func testClip() *tensor.Tensor { return tensor.New(1, 4, 2, 2) }

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "defaults", cfg: Config{}.withDefaults()},
		{name: "negative-workers", cfg: Config{Workers: -1, MaxBatch: 1, QueueDepth: 1}, wantErr: true},
		{name: "negative-batch", cfg: Config{Workers: 1, MaxBatch: -2, QueueDepth: 1}, wantErr: true},
		{name: "negative-queue", cfg: Config{Workers: 1, MaxBatch: 1, QueueDepth: -1}, wantErr: true},
		{name: "negative-slo", cfg: Config{Workers: 1, MaxBatch: 1, QueueDepth: 1, SLO: -time.Second}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestSubmitDeliversVerdictWithTiming(t *testing.T) {
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	v, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()})
	if err != nil {
		t.Fatal(err)
	}
	if v.Label != dataset.ClassSafe || !v.Safe {
		t.Fatalf("verdict = %+v, want safe", v)
	}
	if v.Timing.Batch != 1 || v.Timing.Worker != 0 {
		t.Fatalf("timing batch/worker = %+v", v.Timing)
	}
	if v.Timing.VirtualCompute <= 0 {
		t.Fatalf("no virtual compute charged: %+v", v.Timing)
	}
	if v.Timing.Switch <= 0 {
		t.Fatalf("first batch on a cold worker must pay a switch: %+v", v.Timing)
	}
	if !v.Timing.SLOMet {
		t.Fatalf("default SLO violated in an idle server: %+v", v.Timing)
	}

	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Batches != 1 || st.Switches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VirtualMakespan <= 0 {
		t.Fatalf("virtual makespan not tracked: %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(Request{Scene: sim.Day}); err == nil {
		t.Fatal("expected nil-clip error")
	}
	if _, err := s.Submit(Request{Scene: sim.Weather(99), Clip: testClip()}); err == nil {
		t.Fatal("expected unknown-scene error")
	}
}

// TestDynamicBatchingCoalesces checks that same-scene requests queued
// behind a busy worker ride one batched forward pass.
func TestDynamicBatchingCoalesces(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     4,
		BatchLatency: 2 * time.Millisecond,
		SLO:          10 * time.Second,
	}, stubFactory(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	// Occupy the single worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the worker

	// Four more arrive while the worker is busy: MaxBatch seals them
	// into one batch that runs as a single forward pass.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()})
			if err != nil {
				t.Error(err)
				return
			}
			if v.Timing.Batch < 2 {
				t.Errorf("expected a coalesced batch, got size %d", v.Timing.Batch)
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.Completed != 5 {
		t.Fatalf("completed %d, want 5", st.Completed)
	}
	if st.MaxBatch != 4 {
		t.Fatalf("max batch %d, want 4", st.MaxBatch)
	}
	if st.Batches != 2 {
		t.Fatalf("batches %d, want 2 (1 + coalesced 4)", st.Batches)
	}
}

// TestQueueFullRejects checks explicit admission backpressure: once
// QueueDepth requests wait un-dispatched, further submissions fail
// fast with ErrQueueFull instead of blocking.
func TestQueueFullRejects(t *testing.T) {
	s, err := New(Config{
		Workers:    1,
		MaxBatch:   1,
		QueueDepth: 2,
		SLO:        10 * time.Second,
	}, stubFactory(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	submit := func() {
		defer wg.Done()
		if _, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}
	wg.Add(1)
	go submit() // dispatched to the worker, leaves the queue
	time.Sleep(15 * time.Millisecond)
	wg.Add(2)
	go submit() // queued
	go submit() // queued — admission now full
	time.Sleep(15 * time.Millisecond)

	if _, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	wg.Wait()
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeadlineShedding checks SLO-aware backpressure: a request whose
// deadline lapses while queued is rejected before inference.
func TestDeadlineShedding(t *testing.T) {
	s, err := New(Config{
		Workers:  1,
		MaxBatch: 1,
		SLO:      10 * time.Second,
	}, stubFactory(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(15 * time.Millisecond) // occupy the worker

	_, err = s.Submit(Request{Scene: sim.Day, Clip: testClip(), Deadline: time.Millisecond})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	wg.Wait()
	if st := s.Stats(); st.Expired != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWarmRouting checks that the scheduler pins scenes to workers:
// after day and rain have each claimed a worker, alternating traffic
// never switches again.
func TestWarmRouting(t *testing.T) {
	s, err := New(Config{Workers: 2, MaxBatch: 1, SLO: 10 * time.Second}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	scenes := []sim.Weather{sim.Day, sim.Rain, sim.Day, sim.Rain, sim.Day, sim.Rain}
	for i, scene := range scenes {
		v, err := s.Submit(Request{Scene: scene, Clip: testClip()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i >= 2 && v.Timing.Switch != 0 {
			t.Fatalf("submit %d (%v) paid a switch on a warm fleet: %+v", i, scene, v.Timing)
		}
	}
	st := s.Stats()
	if st.Switches != 2 {
		t.Fatalf("switches = %d, want 2 (one per scene)", st.Switches)
	}
	if st.WarmBatches != st.Batches-2 {
		t.Fatalf("warm batches = %d of %d, want all but the first two", st.WarmBatches, st.Batches)
	}
}

func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Submit(Request{Scene: sim.Day, Clip: testClip()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCloseDuringTraffic checks that shutdown under load leaves no
// submitter hanging: every in-flight request ends in a verdict or an
// explicit error.
func TestCloseDuringTraffic(t *testing.T) {
	s, err := New(Config{Workers: 2, MaxBatch: 4, SLO: 10 * time.Second}, stubFactory(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		scene := sim.AllWeathers()[i%3]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := s.Submit(Request{Scene: scene, Clip: testClip()}); err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected error: %v", err)
					}
					if errors.Is(err, ErrClosed) {
						return
					}
				}
			}
		}()
	}
	time.Sleep(25 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // returning at all proves no silent drop hung a submitter

	st := s.Stats()
	if got := st.Completed + st.Expired + st.Failed; got != st.Submitted {
		t.Fatalf("accounting leak: completed+expired+failed = %d, submitted = %d", got, st.Submitted)
	}
}

// TestBatchedMultiGPUBeatsSingleGPUBaseline is the acceptance
// comparison: 4 simulated intersections served by a batched 4-GPU
// fleet must achieve strictly higher clip throughput — measured in
// deterministic virtual GPU time — than the per-clip single-GPU
// baseline, with every accepted request receiving a verdict.
func TestBatchedMultiGPUBeatsSingleGPUBaseline(t *testing.T) {
	const intersections, perIntersection = 4, 12

	run := func(cfg Config) Stats {
		s, err := New(cfg, stubFactory(200*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var wg sync.WaitGroup
		for i := 0; i < intersections; i++ {
			scene := sim.AllWeathers()[i%3]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perIntersection; j++ {
					if _, err := s.Submit(Request{Scene: scene, Clip: testClip()}); err != nil {
						t.Errorf("submit: %v", err)
					}
				}
			}()
		}
		wg.Wait()
		return s.Stats()
	}

	baseline := run(Config{Workers: 1, MaxBatch: 1, QueueDepth: 256, SLO: time.Minute})
	served := run(Config{Workers: 4, MaxBatch: 8, QueueDepth: 256, SLO: time.Minute})

	total := intersections * perIntersection
	for name, st := range map[string]Stats{"baseline": baseline, "served": served} {
		if st.Completed != total || st.Expired != 0 || st.Failed != 0 {
			t.Fatalf("%s dropped requests: %+v", name, st)
		}
	}
	if served.VirtualThroughput() <= baseline.VirtualThroughput() {
		t.Fatalf("batched 4-GPU fleet (%.1f clips/s virtual) not faster than per-clip single GPU (%.1f clips/s virtual)",
			served.VirtualThroughput(), baseline.VirtualThroughput())
	}
	if served.VirtualMakespan >= baseline.VirtualMakespan {
		t.Fatalf("served makespan %v not below baseline %v", served.VirtualMakespan, baseline.VirtualMakespan)
	}
}
