package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"safecross/internal/dataset"
	"safecross/internal/infer"
	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/tensor"
	"safecross/internal/video"
)

// stubClassifier is a controllable classifier for serving tests: it
// always predicts label, optionally sleeping to simulate compute. The
// unsynchronised forwards counter is deliberate — if the server ever
// shared one replica across workers, `go test -race` would flag it.
type stubClassifier struct {
	label    int
	delay    time.Duration
	forwards int
}

func (c *stubClassifier) Name() string { return "stub" }

func (c *stubClassifier) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	c.forwards++
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	out := tensor.New(2)
	out.Data[c.label] = 1
	return out, nil
}

func (c *stubClassifier) Backward(d *tensor.Tensor) error { return nil }
func (c *stubClassifier) Params() []*nn.Param             { return nil }
func (c *stubClassifier) SetTrain(train bool)             {}

// stubFactory returns fresh per-worker replicas predicting safe for
// day and danger for rain/snow, with the given per-clip delay. The
// stub is Forward-only, so it exercises the engine's Sequentialize
// adapter — the serving plane must keep working for models without a
// native batched pass.
func stubFactory(delay time.Duration) ModelFactory {
	return func() (map[sim.Weather]infer.Model, error) {
		return map[sim.Weather]infer.Model{
			sim.Day:  video.Engine(&stubClassifier{label: dataset.ClassSafe, delay: delay}),
			sim.Rain: video.Engine(&stubClassifier{label: dataset.ClassDanger, delay: delay}),
			sim.Snow: video.Engine(&stubClassifier{label: dataset.ClassDanger, delay: delay}),
		}, nil
	}
}

func testClip() *tensor.Tensor { return tensor.New(1, 4, 2, 2) }

// slowFastBytes mirrors the manifest total every serve worker
// registers per scene (pipeswitch.SafeCrossSlowFast), for sizing
// memory-pressure budgets in tests.
const slowFastModelBytes = 75 << 20

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "defaults", cfg: Config{}.withDefaults()},
		{name: "negative-workers", cfg: Config{Workers: -1, MaxBatch: 1, QueueDepth: 1}, wantErr: true},
		{name: "negative-batch", cfg: Config{Workers: 1, MaxBatch: -2, QueueDepth: 1}, wantErr: true},
		{name: "negative-queue", cfg: Config{Workers: 1, MaxBatch: 1, QueueDepth: -1}, wantErr: true},
		{name: "negative-slo", cfg: Config{Workers: 1, MaxBatch: 1, QueueDepth: 1, SLO: -time.Second}, wantErr: true},
		{name: "negative-aging", cfg: Config{Workers: 1, MaxBatch: 1, QueueDepth: 1, AgingBound: -time.Second}, wantErr: true},
		{name: "negative-memory", cfg: Config{Workers: 1, MaxBatch: 1, QueueDepth: 1, WorkerMemory: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestSubmitDeliversVerdictWithTiming(t *testing.T) {
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	v, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()})
	if err != nil {
		t.Fatal(err)
	}
	if v.Label != dataset.ClassSafe || !v.Safe {
		t.Fatalf("verdict = %+v, want safe", v)
	}
	if v.Timing.Batch != 1 || v.Timing.Worker != 0 {
		t.Fatalf("timing batch/worker = %+v", v.Timing)
	}
	if v.Timing.VirtualCompute <= 0 {
		t.Fatalf("no virtual compute charged: %+v", v.Timing)
	}
	if v.Timing.Switch <= 0 {
		t.Fatalf("first batch on a cold worker must pay a load: %+v", v.Timing)
	}
	if !v.Timing.SLOMet {
		t.Fatalf("default SLO violated in an idle server: %+v", v.Timing)
	}

	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Batches != 1 || st.Switches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VirtualMakespan <= 0 {
		t.Fatalf("virtual makespan not tracked: %+v", st)
	}
	if st.RoutineCompleted != 1 || st.CriticalCompleted != 0 {
		t.Fatalf("class accounting: %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Submit(ctx, Request{Scene: sim.Day}); err == nil {
		t.Fatal("expected nil-clip error")
	}
	if _, err := s.Submit(ctx, Request{Scene: sim.Weather(99), Clip: testClip()}); err == nil {
		t.Fatal("expected unknown-scene error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Submit(cancelled, Request{Scene: sim.Day, Clip: testClip()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled for a pre-cancelled ctx", err)
	}
}

// TestDynamicBatchingCoalesces checks that same-scene requests queued
// behind a busy worker ride one batched forward pass.
func TestDynamicBatchingCoalesces(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     4,
		BatchLatency: 2 * time.Millisecond,
		SLO:          10 * time.Second,
	}, stubFactory(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	// Occupy the single worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the worker

	// Four more arrive while the worker is busy: MaxBatch seals them
	// into one batch that runs as a single forward pass.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()})
			if err != nil {
				t.Error(err)
				return
			}
			if v.Timing.Batch < 2 {
				t.Errorf("expected a coalesced batch, got size %d", v.Timing.Batch)
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.Completed != 5 {
		t.Fatalf("completed %d, want 5", st.Completed)
	}
	if st.MaxBatch != 4 {
		t.Fatalf("max batch %d, want 4", st.MaxBatch)
	}
	if st.Batches != 2 {
		t.Fatalf("batches %d, want 2 (1 + coalesced 4)", st.Batches)
	}
}

// TestQueueFullRejects checks explicit admission backpressure: once
// QueueDepth requests wait un-dispatched, further Routine submissions
// fail fast with ErrQueueFull instead of blocking.
func TestQueueFullRejects(t *testing.T) {
	s, err := New(Config{
		Workers:    1,
		MaxBatch:   1,
		QueueDepth: 2,
		SLO:        10 * time.Second,
	}, stubFactory(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	submit := func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}
	wg.Add(1)
	go submit() // dispatched to the worker, leaves the queue
	time.Sleep(15 * time.Millisecond)
	wg.Add(2)
	go submit() // queued
	go submit() // queued — admission now full
	time.Sleep(15 * time.Millisecond)

	if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	wg.Wait()
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeadlineShedding checks SLO-aware backpressure: a request whose
// default deadline lapses while queued is rejected before inference.
func TestDeadlineShedding(t *testing.T) {
	s, err := New(Config{
		Workers:  1,
		MaxBatch: 1,
		SLO:      20 * time.Millisecond,
	}, stubFactory(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Dispatched immediately; completes late (SLO violated) but
		// still gets its verdict.
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // occupy the worker

	// Queued behind a 60ms pass with a 20ms budget: the scheduler must
	// shed it at dispatch time, before inference.
	_, err = s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	wg.Wait()
	if st := s.Stats(); st.Expired != 1 || st.Completed != 1 || st.SLOViolations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCtxDeadlineBoundsQueueWait checks that a context deadline acts
// as the request deadline: queued past it, the submitter gets a
// deadline error (from ctx or the scheduler's shed, whichever wins).
func TestCtxDeadlineBoundsQueueWait(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxBatch: 1, SLO: 10 * time.Second}, stubFactory(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // occupy the worker

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()})
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	wg.Wait()
	st := s.Stats()
	if st.Cancelled+st.Expired != 1 {
		t.Fatalf("deadline must be accounted exactly once: %+v", st)
	}
}

// TestCtxCancelDropsQueuedRequest checks mid-queue cancellation: the
// submitter returns immediately with ctx.Err(), the request never
// reaches a worker, and its admission slot is freed.
func TestCtxCancelDropsQueuedRequest(t *testing.T) {
	s, err := New(Config{
		Workers:    1,
		MaxBatch:   1,
		QueueDepth: 2,
		SLO:        10 * time.Second,
	}, stubFactory(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(15 * time.Millisecond) // occupy the worker

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{Scene: sim.Rain, Clip: testClip()})
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it queue
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled submit did not return promptly")
	}

	// The freed slot (and the worker) must accept new work: both
	// remaining QueueDepth slots are usable again.
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1: %+v", st.Cancelled, st)
	}
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3: %+v", st.Completed, st)
	}
	if got := st.Completed + st.Expired + st.Failed + st.Cancelled + st.Shed; got != st.Submitted {
		t.Fatalf("accounting leak: %d of %d submitted", got, st.Submitted)
	}
	// The rain model was never needed: the cancelled request must not
	// have triggered a load on the single worker.
	if st.Switches != 1 {
		t.Fatalf("switches = %d, want 1 (cancelled request must not load its model)", st.Switches)
	}
}

// TestWarmRouting checks that the scheduler pins scenes to workers:
// after day and rain have each claimed a worker, alternating traffic
// never loads again.
func TestWarmRouting(t *testing.T) {
	s, err := New(Config{Workers: 2, MaxBatch: 1, SLO: 10 * time.Second}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	scenes := []sim.Weather{sim.Day, sim.Rain, sim.Day, sim.Rain, sim.Day, sim.Rain}
	for i, scene := range scenes {
		v, err := s.Submit(ctx, Request{Scene: scene, Clip: testClip()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i >= 2 && v.Timing.Switch != 0 {
			t.Fatalf("submit %d (%v) paid a load on a warm fleet: %+v", i, scene, v.Timing)
		}
	}
	st := s.Stats()
	if st.Switches != 2 {
		t.Fatalf("switches = %d, want 2 (one per scene)", st.Switches)
	}
	if st.WarmBatches != st.Batches-2 {
		t.Fatalf("warm batches = %d of %d, want all but the first two", st.WarmBatches, st.Batches)
	}
	if st.Evictions != 0 || st.Reloads != 0 {
		t.Fatalf("no memory pressure, yet evictions=%d reloads=%d", st.Evictions, st.Reloads)
	}
}

// TestEvictionUnderMemoryPressure drives a single worker whose budget
// fits one model through three scenes: every scene change must evict
// the resident model, and returning to an evicted scene must count as
// a reload that pays a real PipeSwitch load.
func TestEvictionUnderMemoryPressure(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     1,
		SLO:          10 * time.Second,
		WorkerMemory: slowFastModelBytes + (1 << 20), // fits exactly one model
	}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for i, scene := range []sim.Weather{sim.Day, sim.Rain, sim.Day} {
		v, err := s.Submit(ctx, Request{Scene: scene, Clip: testClip()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if v.Timing.Switch <= 0 {
			t.Fatalf("submit %d (%v): capacity-1 worker must load every scene change: %+v", i, scene, v.Timing)
		}
		if i > 0 && v.Timing.Evicted != 1 {
			t.Fatalf("submit %d (%v): expected one eviction, got %+v", i, scene, v.Timing)
		}
	}
	st := s.Stats()
	if st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥2", st.Evictions)
	}
	if st.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1 (day came back)", st.Reloads)
	}
	if st.Switches != 3 {
		t.Fatalf("switches = %d, want 3 (no residency survives a capacity-1 budget)", st.Switches)
	}
}

// TestResidencySurvivesWithinBudget is the counterpart: a budget that
// holds all three scene models never evicts, so cycling scenes on one
// worker loads each model exactly once.
func TestResidencySurvivesWithinBudget(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     1,
		SLO:          10 * time.Second,
		WorkerMemory: 4 * slowFastModelBytes,
	}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	scenes := []sim.Weather{sim.Day, sim.Rain, sim.Snow, sim.Day, sim.Rain, sim.Snow}
	for i, scene := range scenes {
		v, err := s.Submit(ctx, Request{Scene: scene, Clip: testClip()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i >= 3 && v.Timing.Switch != 0 {
			t.Fatalf("submit %d (%v): resident model re-bind must be free: %+v", i, scene, v.Timing)
		}
	}
	st := s.Stats()
	if st.Switches != 3 || st.Evictions != 0 || st.Reloads != 0 {
		t.Fatalf("stats = %+v, want 3 loads and no pressure", st)
	}
}

// TestCriticalDispatchesBeforeRoutine saturates a single worker, then
// queues routine and critical requests together: every critical
// request must complete before any of the routine ones, and the
// per-class queue-wait percentiles must reflect the ordering.
func TestCriticalDispatchesBeforeRoutine(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     1,
		BatchLatency: time.Millisecond,
		QueueDepth:   64,
		SLO:          10 * time.Second,
		AgingBound:   10 * time.Second, // aging out of the way
	}, stubFactory(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // occupy the worker

	// While the worker is busy: 3 routine, then 3 critical. Despite
	// arriving later, the critical ones must be served first.
	var mu sync.Mutex
	var order []Priority
	submit := func(prio Priority) {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip(), Priority: prio}); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, prio)
		mu.Unlock()
	}
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go submit(Routine)
	}
	time.Sleep(5 * time.Millisecond) // routine requests are queued first
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go submit(Critical)
	}
	wg.Wait()

	if len(order) != 6 {
		t.Fatalf("completions = %d, want 6", len(order))
	}
	for i, prio := range order[:3] {
		if prio != Critical {
			t.Fatalf("completion %d was %v; all critical requests must finish first (order %v)", i, prio, order)
		}
	}
	st := s.Stats()
	if st.CriticalCompleted != 3 || st.RoutineCompleted != 4 {
		t.Fatalf("class accounting: %+v", st)
	}
	if st.CriticalQueueP95 >= st.RoutineQueueP95 {
		t.Fatalf("critical p95 queue wait %v not below routine %v", st.CriticalQueueP95, st.RoutineQueueP95)
	}
}

// TestAgingPreventsRoutineStarvation parks one routine request behind
// a busy worker and a stream of critical arrivals: once the routine
// request has aged past AgingBound, it must dispatch ahead of younger
// critical traffic instead of starving.
func TestAgingPreventsRoutineStarvation(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     1,
		BatchLatency: time.Millisecond,
		QueueDepth:   64,
		SLO:          10 * time.Second,
		AgingBound:   15 * time.Millisecond,
	}, stubFactory(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // occupy the worker (40ms pass)

	routineDone := make(chan time.Duration, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
			return
		}
		routineDone <- time.Since(start)
	}()
	time.Sleep(5 * time.Millisecond) // routine is queued

	// Critical requests keep arriving. By the time the worker frees
	// (~25ms after the routine queued), the routine request has aged
	// past the 15ms bound and must beat them to the worker.
	criticalStarted := make(chan struct{})
	var criticalWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		criticalWG.Add(1)
		go func(i int) {
			defer criticalWG.Done()
			if i == 0 {
				close(criticalStarted)
			}
			if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip(), Priority: Critical}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	<-criticalStarted

	wg.Wait()
	select {
	case wait := <-routineDone:
		// Served in the first post-aging slot: one in-flight pass
		// (40ms) plus its own (40ms) plus slack — far below the
		// starvation case of waiting out all four critical passes.
		if wait > 120*time.Millisecond {
			t.Fatalf("aged routine request waited %v; aging failed to bound starvation", wait)
		}
	case <-time.After(time.Second):
		t.Fatal("routine request starved")
	}
	criticalWG.Wait()

	st := s.Stats()
	if st.Aged < 1 {
		t.Fatalf("aged = %d, want ≥1: %+v", st.Aged, st)
	}
}

// TestCriticalShedsRoutineUnderFullQueue fills the admission queue
// with routine requests, then submits a critical one: it must be
// admitted by shedding a queued routine request, which gets
// ErrQueueFull. A second critical submission with only critical
// requests queued is rejected outright.
func TestCriticalShedsRoutineUnderFullQueue(t *testing.T) {
	s, err := New(Config{
		Workers:    1,
		MaxBatch:   1,
		QueueDepth: 2,
		SLO:        10 * time.Second,
		AgingBound: 10 * time.Second, // nothing ages into protection
	}, stubFactory(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(15 * time.Millisecond) // occupy the worker

	// Fill the admission queue: one routine (the shed victim-to-be) and
	// one critical.
	shedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
			shedErr <- err
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip(), Priority: Critical}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(15 * time.Millisecond) // both queued — admission full

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip(), Priority: Critical}); err != nil {
			t.Errorf("critical submission must be admitted by shedding: %v", err)
		}
	}()
	select {
	case err := <-shedErr:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("shed routine request got %v, want ErrQueueFull", err)
		}
	case <-time.After(time.Second):
		t.Fatal("no routine request was shed for the critical admission")
	}

	// Queue is full again, now holding only critical requests; another
	// critical submission finds no routine victim and is rejected.
	if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip(), Priority: Critical}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull when no routine victim exists", err)
	}
	wg.Wait()

	st := s.Stats()
	if st.Shed != 1 {
		t.Fatalf("shed = %d, want 1: %+v", st.Shed, st)
	}
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1: %+v", st.Rejected, st)
	}
	if got := st.Completed + st.Expired + st.Failed + st.Cancelled + st.Shed; got != st.Submitted {
		t.Fatalf("accounting leak: %d of %d submitted", got, st.Submitted)
	}
}

func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCloseDuringTraffic checks that shutdown under load leaves no
// submitter hanging: every in-flight request ends in a verdict or an
// explicit error.
func TestCloseDuringTraffic(t *testing.T) {
	s, err := New(Config{Workers: 2, MaxBatch: 4, SLO: 10 * time.Second}, stubFactory(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		scene := sim.AllWeathers()[i%3]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := s.Submit(ctx, Request{Scene: scene, Clip: testClip()}); err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected error: %v", err)
					}
					if errors.Is(err, ErrClosed) {
						return
					}
				}
			}
		}()
	}
	time.Sleep(25 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // returning at all proves no silent drop hung a submitter

	st := s.Stats()
	if got := st.Completed + st.Expired + st.Failed + st.Cancelled + st.Shed; got != st.Submitted {
		t.Fatalf("accounting leak: completed+expired+failed+cancelled+shed = %d, submitted = %d", got, st.Submitted)
	}
}

// TestBatchedMultiGPUBeatsSingleGPUBaseline is the acceptance
// comparison: 4 simulated intersections served by a batched 4-GPU
// fleet must achieve strictly higher clip throughput — measured in
// deterministic virtual GPU time — than the per-clip single-GPU
// baseline, with every accepted request receiving a verdict.
func TestBatchedMultiGPUBeatsSingleGPUBaseline(t *testing.T) {
	const intersections, perIntersection = 4, 12

	ctx := context.Background()
	run := func(cfg Config) Stats {
		s, err := New(cfg, stubFactory(200*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var wg sync.WaitGroup
		for i := 0; i < intersections; i++ {
			scene := sim.AllWeathers()[i%3]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perIntersection; j++ {
					if _, err := s.Submit(ctx, Request{Scene: scene, Clip: testClip()}); err != nil {
						t.Errorf("submit: %v", err)
					}
				}
			}()
		}
		wg.Wait()
		return s.Stats()
	}

	baseline := run(Config{Workers: 1, MaxBatch: 1, QueueDepth: 256, SLO: time.Minute})
	served := run(Config{Workers: 4, MaxBatch: 8, QueueDepth: 256, SLO: time.Minute})

	total := intersections * perIntersection
	for name, st := range map[string]Stats{"baseline": baseline, "served": served} {
		if st.Completed != total || st.Expired != 0 || st.Failed != 0 {
			t.Fatalf("%s dropped requests: %+v", name, st)
		}
	}
	if served.VirtualThroughput() <= baseline.VirtualThroughput() {
		t.Fatalf("batched 4-GPU fleet (%.1f clips/s virtual) not faster than per-clip single GPU (%.1f clips/s virtual)",
			served.VirtualThroughput(), baseline.VirtualThroughput())
	}
	if served.VirtualMakespan >= baseline.VirtualMakespan {
		t.Fatalf("served makespan %v not below baseline %v", served.VirtualMakespan, baseline.VirtualMakespan)
	}
}
