package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"safecross/internal/infer"
	"safecross/internal/nn"
	"safecross/internal/sim"
	"safecross/internal/tensor"
)

func TestAdaptTarget(t *testing.T) {
	const heavy = 10 * time.Millisecond // compute p50 well above the gate
	const cheap = 100 * time.Microsecond
	const latency = 2 * time.Millisecond

	tests := []struct {
		name                 string
		cur, queued, workers int
		maxBatch             int
		p50                  time.Duration
		want                 int
	}{
		{name: "idle-plane-stays-at-one", cur: 1, queued: 0, workers: 4, maxBatch: 8, p50: heavy, want: 1},
		{name: "burst-grows-straight-to-demand", cur: 1, queued: 16, workers: 4, maxBatch: 8, p50: heavy, want: 4},
		{name: "cold-histogram-allows-growth", cur: 1, queued: 16, workers: 4, maxBatch: 8, p50: 0, want: 4},
		{name: "growth-clamped-to-max-batch", cur: 1, queued: 100, workers: 2, maxBatch: 8, p50: heavy, want: 8},
		{name: "cheap-compute-gates-growth", cur: 2, queued: 16, workers: 4, maxBatch: 8, p50: cheap, want: 2},
		{name: "cheap-compute-still-shrinks", cur: 4, queued: 0, workers: 4, maxBatch: 8, p50: cheap, want: 2},
		{name: "shrink-decays-half-the-gap", cur: 8, queued: 4, workers: 4, maxBatch: 8, p50: heavy, want: 4},
		{name: "shrink-bottoms-out-at-one", cur: 2, queued: 0, workers: 4, maxBatch: 8, p50: heavy, want: 1},
		{name: "steady-demand-holds", cur: 3, queued: 12, workers: 4, maxBatch: 8, p50: heavy, want: 3},
		{name: "max-batch-one-disables-batching", cur: 1, queued: 50, workers: 1, maxBatch: 1, p50: heavy, want: 1},
		{name: "zero-workers-defensive", cur: 1, queued: 5, workers: 0, maxBatch: 8, p50: heavy, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := adaptTarget(tt.cur, tt.queued, tt.workers, tt.maxBatch, tt.p50, latency)
			if got != tt.want {
				t.Fatalf("adaptTarget(cur=%d queued=%d workers=%d max=%d p50=%v) = %d, want %d",
					tt.cur, tt.queued, tt.workers, tt.maxBatch, tt.p50, got, tt.want)
			}
		})
	}

	// A deep queue must converge upward and a drained one back down.
	target := 1
	for i := 0; i < 3; i++ {
		target = adaptTarget(target, 32, 4, 8, heavy, latency)
	}
	if target != 8 {
		t.Fatalf("sustained backlog: target = %d, want 8", target)
	}
	for i := 0; i < 10; i++ {
		target = adaptTarget(target, 0, 4, 8, heavy, latency)
	}
	if target != 1 {
		t.Fatalf("drained queue: target = %d, want 1", target)
	}
}

// batchStub is a batch-native engine model whose forward rides the
// shared workspace — unlike the Forward-only stubClassifier, it moves
// the pool's hit/miss counters the way the real classifiers do.
type batchStub struct {
	label int
	delay time.Duration
}

func (m *batchStub) Name() string  { return "batch-stub" }
func (m *batchStub) SetTrain(bool) {}

func (m *batchStub) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	defer ws.Reset()
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	out := make([]*tensor.Tensor, len(xs))
	for i := range xs {
		scratch := ws.Get(2)
		scratch.Data[m.label] = 1
		l := tensor.New(2)
		copy(l.Data, scratch.Data)
		out[i] = l
	}
	return out, nil
}

// TestAdaptiveBatchTargetGrowsUnderSaturation floods two workers with
// far more producers than they can drain: the scheduler's adaptive
// target must climb above 1 while the backlog lasts, and the pooled
// workspaces must report reuse through the stats façade.
func TestAdaptiveBatchTargetGrowsUnderSaturation(t *testing.T) {
	const producers, perProducer = 32, 4

	s, err := New(Config{
		Workers:      2,
		MaxBatch:     8,
		BatchLatency: 2 * time.Millisecond,
		QueueDepth:   256,
		SLO:          30 * time.Second,
	}, func() (map[sim.Weather]infer.Model, error) {
		return map[sim.Weather]infer.Model{
			sim.Day: &batchStub{label: 1, delay: 2 * time.Millisecond},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		}()
	}

	wg.Wait()

	st := s.Stats()
	// With 32 blocked producers on 2 workers the demand-sized target
	// must have left 1 at some point; the high-water gauge keeps that
	// visible after the drained queue decays the live target back.
	if st.BatchTargetMax <= 1 {
		t.Fatalf("batch target never grew under saturation: %+v", st)
	}
	if st.Completed != producers*perProducer || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("adaptive sealing never formed a multi-clip batch: %+v", st)
	}
	if st.WorkspaceHits == 0 {
		t.Fatalf("pooled workspaces reported no reuse: hits=%d misses=%d",
			st.WorkspaceHits, st.WorkspaceMisses)
	}
}
