package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"safecross/internal/dataset"
	"safecross/internal/gpusim"
	"safecross/internal/infer"
	"safecross/internal/pipeswitch"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
)

// worker is one GPU-attached serving process: a private replica of
// every scene engine model, a simulated device with a finite memory
// budget, and a PipeSwitch manager that owns model residency — loads,
// LRU evictions, and reloads all land on the worker's virtual
// timeline. Forward-pass scratch comes from the server's shared
// infer.Pool, checked out per batch: a warm pool means a worker's
// forward passes allocate nothing, keeping the heap inside the
// WorkerMemory budget regardless of how long the server runs.
type worker struct {
	id     int
	ch     chan *batch
	mgr    *pipeswitch.Manager
	models map[sim.Weather]infer.Model

	// virtualNow mirrors the device clock (nanoseconds) after each
	// batch so Stats can read it without racing the worker.
	virtualNow atomic.Int64
}

// newWorker builds a worker: model replicas from the factory, a fresh
// simulated GPU whose memory budget is capped at memoryBytes (zero
// keeps the device default), and the per-scene switch manifests
// registered under sim.Weather.String() keys (mirroring
// safecross.NewDefault). Registration is metadata only — nothing is
// loaded until the first batch for a scene arrives.
func newWorker(id int, factory ModelFactory, memoryBytes int64, reg *telemetry.Registry) (*worker, error) {
	models, err := factory()
	if err != nil {
		return nil, fmt.Errorf("serve: worker %d models: %w", id, err)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("serve: worker %d has no models", id)
	}
	devCfg := gpusim.DefaultConfig()
	if memoryBytes > 0 {
		devCfg.MemoryBytes = memoryBytes
	}
	dev, err := gpusim.NewDevice(devCfg)
	if err != nil {
		return nil, fmt.Errorf("serve: worker %d: %w", id, err)
	}
	// All workers share the server's registry, so their per-method load
	// histograms and residency-churn counters aggregate into one series
	// set (pipeswitch_load_seconds{method="…"} etc.).
	mgr := pipeswitch.NewManager(dev, pipeswitch.WithMetrics(reg))
	for scene := range models {
		m := pipeswitch.SafeCrossSlowFast()
		m.Name = m.Name + "-" + scene.String()
		if err := mgr.Register(scene.String(), m); err != nil {
			return nil, fmt.Errorf("serve: worker %d: %w", id, err)
		}
	}
	return &worker{
		id:     id,
		ch:     make(chan *batch, 1),
		mgr:    mgr,
		models: models,
	}, nil
}

// residentScenes lists the scenes whose models currently sit in this
// worker's device memory, for the scheduler's warm-routing mirror.
func (w *worker) residentScenes() []sim.Weather {
	out := make([]sim.Weather, 0, len(w.models))
	for scene := range w.models {
		if w.mgr.Resident(scene.String()) {
			out = append(out, scene)
		}
	}
	return out
}

// run serves batches until the scheduler closes the channel.
func (w *worker) run(s *Server) {
	defer s.wg.Done()
	for b := range w.ch {
		w.serveBatch(s, b)
		s.idleCh <- idleNote{worker: w.id, resident: w.residentScenes()}
	}
}

// serveBatch activates the batch's scene model (a PipeSwitch load —
// possibly evicting LRU residents — when the worker does not hold
// it), runs one batched forward pass, and delivers a verdict to every
// request. Any failure is delivered as an explicit error — a taken
// batch never vanishes.
func (w *worker) serveBatch(s *Server, b *batch) {
	rep, err := w.mgr.Activate(b.scene.String())
	if err != nil {
		w.failBatch(s, b, fmt.Errorf("serve: switch to %v: %w", b.scene, err))
		return
	}
	switchEnd := time.Now()
	clips := make([]*tensor.Tensor, len(b.reqs))
	for i, p := range b.reqs {
		clips[i] = p.req.Clip
	}
	ws := s.pool.Get()
	labels, err := infer.PredictBatch(w.models[b.scene], clips, ws)
	s.pool.Put(ws)
	computeWall := time.Since(switchEnd)
	if err != nil {
		w.failBatch(s, b, fmt.Errorf("serve: classify %v batch: %w", b.scene, err))
		return
	}

	// Charge the batch to the simulated GPU: FLOPs scale with the
	// batch, kernel launches are paid once (the batching win), on the
	// same timeline the switch just advanced.
	manifest, ok := w.mgr.ModelFor(b.scene.String())
	if !ok {
		w.failBatch(s, b, fmt.Errorf("serve: no manifest for scene %v", b.scene))
		return
	}
	dev := w.mgr.Device()
	start, done := dev.InferAt(dev.Now(), manifest.TotalFLOPs(), len(manifest.Layers), len(clips))
	virtCompute := done - start
	w.virtualNow.Store(int64(dev.Now()))
	computeEnd := time.Now()

	// Record metrics BEFORE delivering any verdict: a caller observing
	// Submit return is then guaranteed to see its request in Stats.
	now := time.Now()
	s.recordBatch(b, rep, computeWall, now)
	for i, p := range b.reqs {
		t := Timing{
			Queue:          p.bucketed.Sub(p.submitted),
			BatchWait:      p.dispatched.Sub(p.bucketed),
			Compute:        computeWall,
			Total:          now.Sub(p.submitted),
			Switch:         rep.Total,
			VirtualCompute: virtCompute,
			Worker:         w.id,
			Batch:          len(b.reqs),
			Evicted:        rep.Evicted,
		}
		t.SLOMet = t.Total <= p.deadline
		// Stage spans tile the request's full wall-clock life,
		// submit→verdict, on shared boundary instants: each span starts
		// where the previous one ends, so a dumped trace accounts for
		// every nanosecond exactly once.
		if p.tr != nil {
			p.tr.Span("queue", p.submitted, p.bucketed)
			p.tr.Span("batch-wait", p.bucketed, p.dispatched)
			p.tr.Span("switch", p.dispatched, switchEnd)
			p.tr.Span("compute", switchEnd, computeEnd)
			p.tr.Span("deliver", computeEnd, now)
			p.tr.Terminal("completed", now)
		}
		label := labels[i]
		p.done <- outcome{v: Verdict{
			Label:  label,
			Safe:   label == dataset.ClassSafe,
			Timing: t,
		}}
	}
}

// failBatch rejects every request in a batch with the same error.
func (w *worker) failBatch(s *Server, b *batch, err error) {
	for _, p := range b.reqs {
		s.reject(p, err)
	}
}
