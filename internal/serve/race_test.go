package serve

// Concurrency coverage for the serving plane (run under
// `go test -race`): many producers across every scene and both
// priority classes, with admission pressure, hair-trigger context
// deadlines, and mid-queue cancellations, must account for every
// single request — a verdict or an explicit error, never silence.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safecross/internal/sim"
)

func TestConcurrentSubmitNoSilentDrops(t *testing.T) {
	const producers, perProducer = 12, 20

	s, err := New(Config{
		Workers:      3,
		MaxBatch:     4,
		BatchLatency: time.Millisecond,
		QueueDepth:   8, // small on purpose: force ErrQueueFull and shedding under load
		SLO:          10 * time.Second,
		AgingBound:   5 * time.Millisecond, // small so aging promotion is exercised
	}, stubFactory(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var verdicts, queueFull, deadline, cancelled, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		scene := sim.AllWeathers()[i%3]
		tight := i%4 == 3    // every fourth producer uses a hair-trigger ctx deadline
		critical := i%3 == 2 // every third producer submits Critical traffic
		chaotic := i%6 == 1  // cancels its own requests mid-queue half the time
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if tight {
					ctx, cancel = context.WithTimeout(ctx, 100*time.Microsecond)
				} else if chaotic && j%2 == 0 {
					ctx, cancel = context.WithCancel(ctx)
					go func() {
						time.Sleep(time.Duration(j%3) * 100 * time.Microsecond)
						cancel()
					}()
				}
				req := Request{Scene: scene, Clip: testClip()}
				if critical {
					req.Priority = Critical
				}
				_, err := s.Submit(ctx, req)
				cancel()
				switch {
				case err == nil:
					verdicts.Add(1)
				case errors.Is(err, ErrQueueFull):
					queueFull.Add(1)
				case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
					deadline.Add(1)
				case errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					other.Add(1)
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	total := int64(producers * perProducer)
	if got := verdicts.Load() + queueFull.Load() + deadline.Load() + cancelled.Load() + other.Load(); got != total {
		t.Fatalf("accounted for %d of %d requests", got, total)
	}
	st := s.Stats()
	// Caller-visible ErrQueueFull covers both outright rejections and
	// admitted Routine requests shed for a Critical admission.
	if int64(st.Submitted+st.Rejected) != total {
		t.Fatalf("submitted %d + rejected %d != %d", st.Submitted, st.Rejected, total)
	}
	if int64(st.Rejected+st.Shed) != queueFull.Load() {
		t.Fatalf("rejected %d + shed %d != caller queue-full count %d", st.Rejected, st.Shed, queueFull.Load())
	}
	if st.Completed+st.Expired+st.Failed+st.Cancelled+st.Shed != st.Submitted {
		t.Fatalf("admitted-request leak: %+v", st)
	}
	if int64(st.Completed) != verdicts.Load() {
		t.Fatalf("stats disagree with callers: %+v vs verdicts=%d", st, verdicts.Load())
	}
	// Deadline outcomes split between scheduler sheds (Expired) and ctx
	// watchers that won the race (Cancelled, alongside explicit
	// cancellations): jointly they must match the callers' view.
	if int64(st.Expired+st.Cancelled) != deadline.Load()+cancelled.Load() {
		t.Fatalf("deadline/cancel accounting: %+v vs deadline=%d cancelled=%d",
			st, deadline.Load(), cancelled.Load())
	}
	if st.Batches == 0 || st.BatchedClips != st.Completed {
		t.Fatalf("batch accounting: %+v", st)
	}
	if st.CriticalCompleted+st.RoutineCompleted != st.Completed {
		t.Fatalf("class accounting: %+v", st)
	}
}

// TestConcurrentMemoryPressure hammers a worker whose budget holds a
// single model with phased scene traffic — Day, Rain, Snow, then Day
// again: every request must still end in a verdict, and the phase
// pattern forces deterministic residency churn (each phase evicts the
// previous scene, and Day's return is a reload) no matter how the
// scheduler coalesces within a phase.
func TestConcurrentMemoryPressure(t *testing.T) {
	const producers, perProducer = 6, 5

	s, err := New(Config{
		Workers:      1,
		MaxBatch:     4,
		BatchLatency: time.Millisecond,
		QueueDepth:   64,
		SLO:          10 * time.Second,
		WorkerMemory: slowFastModelBytes + (1 << 20),
	}, stubFactory(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	phases := []sim.Weather{sim.Day, sim.Rain, sim.Snow, sim.Day}
	for _, scene := range phases {
		var wg sync.WaitGroup
		for i := 0; i < producers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perProducer; j++ {
					if _, err := s.Submit(ctx, Request{Scene: scene, Clip: testClip()}); err != nil {
						t.Errorf("submit %v: %v", scene, err)
					}
				}
			}()
		}
		wg.Wait()
	}

	st := s.Stats()
	if st.Completed != len(phases)*producers*perProducer || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions < 3 || st.Reloads < 1 {
		t.Fatalf("phased scenes over a capacity-1 worker must churn: evictions=%d reloads=%d",
			st.Evictions, st.Reloads)
	}
}
