package serve

// Concurrency coverage for the serving plane (run under
// `go test -race`): many producers across every scene, with admission
// pressure and aggressive deadlines, must account for every single
// request — a verdict or an explicit rejection error, never silence.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safecross/internal/sim"
)

func TestConcurrentSubmitNoSilentDrops(t *testing.T) {
	const producers, perProducer = 9, 20

	s, err := New(Config{
		Workers:      3,
		MaxBatch:     4,
		BatchLatency: time.Millisecond,
		QueueDepth:   8, // small on purpose: force ErrQueueFull under load
		SLO:          10 * time.Second,
	}, stubFactory(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var verdicts, queueFull, expired, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		scene := sim.AllWeathers()[i%3]
		tight := i%4 == 3 // every fourth producer uses a hair-trigger deadline
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				req := Request{Scene: scene, Clip: testClip()}
				if tight {
					req.Deadline = 100 * time.Microsecond
				}
				_, err := s.Submit(req)
				switch {
				case err == nil:
					verdicts.Add(1)
				case errors.Is(err, ErrQueueFull):
					queueFull.Add(1)
				case errors.Is(err, ErrDeadlineExceeded):
					expired.Add(1)
				default:
					other.Add(1)
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	total := int64(producers * perProducer)
	if got := verdicts.Load() + queueFull.Load() + expired.Load() + other.Load(); got != total {
		t.Fatalf("accounted for %d of %d requests", got, total)
	}
	st := s.Stats()
	if int64(st.Submitted+st.Rejected) != total {
		t.Fatalf("submitted %d + rejected %d != %d", st.Submitted, st.Rejected, total)
	}
	if st.Completed+st.Expired+st.Failed != st.Submitted {
		t.Fatalf("admitted-request leak: %+v", st)
	}
	if int64(st.Completed) != verdicts.Load() || int64(st.Expired) != expired.Load() {
		t.Fatalf("stats disagree with callers: %+v vs verdicts=%d expired=%d", st, verdicts.Load(), expired.Load())
	}
	if st.Batches == 0 || st.BatchedClips != st.Completed {
		t.Fatalf("batch accounting: %+v", st)
	}
}
