package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"safecross/internal/sim"
	"safecross/internal/telemetry"
)

// TestDrainFlushesInFlight: Drain must stop admission immediately but
// let already-submitted requests finish with real verdicts instead of
// ErrClosed.
func TestDrainFlushesInFlight(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxBatch: 2, QueueDepth: 16}, stubFactory(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	const inFlight = 6
	var wg sync.WaitGroup
	errs := make([]error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()})
		}(i)
	}
	// Let the submissions land in the queue before draining.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Submitted < inFlight && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("in-flight request %d lost to drain: %v", i, err)
		}
	}

	// Admission is off after the drain...
	if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); err != ErrClosed {
		t.Fatalf("Submit after Drain = %v; want ErrClosed", err)
	}
	// ...and a follow-up Close is a safe no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}
	if got := s.Stats().Completed; got != inFlight {
		t.Fatalf("completed = %d; want %d", got, inFlight)
	}
}

// TestDrainHonoursContext: a drain that cannot finish in time returns
// the context error rather than hanging.
func TestDrainHonoursContext(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxBatch: 1, QueueDepth: 16}, stubFactory(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()})
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Submitted < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain with an instant deadline and a backlog returned nil")
	}
	wg.Wait()
}

// TestPerSceneSeries: every submitted scene gets its own labelled
// request counter and queue-wait histogram in the registry.
func TestPerSceneSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Workers: 1, Metrics: reg}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	scenes := map[sim.Weather]int{sim.Day: 3, sim.Rain: 2}
	for scene, n := range scenes {
		for i := 0; i < n; i++ {
			if _, err := s.Submit(context.Background(), Request{Scene: scene, Clip: testClip()}); err != nil {
				t.Fatalf("submit %v: %v", scene, err)
			}
		}
	}
	for scene, n := range scenes {
		name := fmt.Sprintf("serve_requests_total{scene=%q}", scene)
		if got := reg.Counter(name, "").Value(); got != int64(n) {
			t.Fatalf("%s = %d; want %d", name, got, n)
		}
		hist := fmt.Sprintf("serve_queue_wait_seconds{scene=%q}", scene)
		if got := reg.Histogram(hist, "", telemetry.UnitSeconds).Count(); got != int64(n) {
			t.Fatalf("%s count = %d; want %d", hist, got, n)
		}
	}
	// A scene never submitted still has its series registered (at
	// zero), so dashboards see a stable set of labels.
	snowName := fmt.Sprintf("serve_requests_total{scene=%q}", sim.Snow)
	if got := reg.Counter(snowName, "").Value(); got != 0 {
		t.Fatalf("%s = %d; want 0", snowName, got)
	}
}
