package serve

import (
	"sort"
	"time"

	"safecross/internal/pipeswitch"
)

// Stats is a point-in-time snapshot of serving activity.
type Stats struct {
	// Submitted counts requests accepted into the admission queue.
	Submitted int
	// Rejected counts submissions refused for a full queue
	// (ErrQueueFull backpressure).
	Rejected int
	// Shed counts admitted Routine requests pushed back out (with
	// ErrQueueFull) so a Critical request could take their slot.
	Shed int
	// Cancelled counts admitted requests whose context was cancelled
	// (or hit its deadline) while they were still queued; they were
	// dropped from their bucket before dispatch.
	Cancelled int
	// Expired counts queued requests shed because their deadline
	// lapsed before inference (ErrDeadlineExceeded).
	Expired int
	// Failed counts requests that ended in any other explicit error
	// (model failure, shutdown).
	Failed int
	// Completed counts requests that received a verdict.
	Completed int
	// SLOViolations counts completed requests whose total latency
	// exceeded their deadline.
	SLOViolations int
	// Aged counts Routine requests promoted to Critical dispatch by
	// the aging rule.
	Aged int

	// Batches is the number of batched forward passes; BatchedClips
	// the clips they carried; MaxBatch the largest batch observed.
	Batches, BatchedClips, MaxBatch int
	// WarmBatches counts batches routed to a worker already holding
	// the scene's model; Switches counts batches that triggered a
	// PipeSwitch model load.
	WarmBatches, Switches int
	// Evictions counts models evicted from worker memory under
	// pressure; Reloads counts loads that brought back a previously
	// evicted model.
	Evictions, Reloads int

	// QueueWait, BatchWait, and ComputeWall are cumulative wall-clock
	// components over completed requests.
	QueueWait, BatchWait, ComputeWall time.Duration
	// TotalLatency is the cumulative submit-to-verdict latency over
	// completed requests.
	TotalLatency time.Duration
	// P50 and P99 are total-latency percentiles over recently
	// completed requests.
	P50, P99 time.Duration
	// CriticalQueueP95 and RoutineQueueP95 are submit-to-dispatch wait
	// percentiles over recently completed requests, split by effective
	// class (aged Routine requests count as Critical). They are the
	// priority plane's acceptance metric: under saturation, Critical
	// must sit below Routine.
	CriticalQueueP95, RoutineQueueP95 time.Duration
	// CriticalCompleted and RoutineCompleted split Completed by
	// effective class.
	CriticalCompleted, RoutineCompleted int

	// SwitchVirtual is the cumulative virtual-time cost of all model
	// loads performed by workers.
	SwitchVirtual time.Duration
	// VirtualBusy sums every worker's simulated-GPU timeline;
	// VirtualMakespan is the busiest worker's timeline — the
	// deterministic serving-completion time on the simulated
	// hardware, independent of the host machine.
	VirtualBusy, VirtualMakespan time.Duration
}

// MeanBatch returns the average clips per batched forward pass.
func (st Stats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedClips) / float64(st.Batches)
}

// VirtualThroughput returns completed clips per second of virtual
// makespan — the host-independent throughput of the simulated GPU
// fleet.
func (st Stats) VirtualThroughput() float64 {
	if st.VirtualMakespan <= 0 {
		return 0
	}
	return float64(st.Completed) / st.VirtualMakespan.Seconds()
}

// latencySample bounds percentile memory: a ring of the most recent
// completed-request latencies.
const latencySample = 8192

// ring is a fixed-size sample of recent durations.
type ring struct {
	buf [latencySample]time.Duration
	n   int // total ever recorded
}

func (r *ring) add(d time.Duration) {
	r.buf[r.n%latencySample] = d
	r.n++
}

// sample copies the recorded durations (at most latencySample).
func (r *ring) sample() []time.Duration {
	n := r.n
	if n > latencySample {
		n = latencySample
	}
	out := make([]time.Duration, n)
	copy(out, r.buf[:n])
	return out
}

// percentile returns the pth percentile of a sorted sample (0 when
// empty).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)*p)/100]
}

// statsAccum is the mutable accumulator behind Stats, guarded by
// Server.mu.
type statsAccum struct {
	Stats
	total    ring // total latency, completed requests
	critWait ring // submit→dispatch wait, Critical-class completions
	routWait ring // submit→dispatch wait, Routine-class completions
}

// recordBatch folds one served batch into the counters.
func (s *Server) recordBatch(b *batch, rep pipeswitch.Report, computeWall time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Batches++
	st.BatchedClips += len(b.reqs)
	if len(b.reqs) > st.MaxBatch {
		st.MaxBatch = len(b.reqs)
	}
	if b.warm {
		st.WarmBatches++
	}
	switch rep.Method {
	case "", "noop", "resident":
		// The model was already on the device: no load happened.
	default:
		st.Switches++
		st.SwitchVirtual += rep.Total
	}
	st.Evictions += rep.Evicted
	if rep.Reload {
		st.Reloads++
	}
	for _, p := range b.reqs {
		total := now.Sub(p.submitted)
		st.Completed++
		st.QueueWait += p.bucketed.Sub(p.submitted)
		st.BatchWait += p.dispatched.Sub(p.bucketed)
		st.ComputeWall += computeWall
		st.TotalLatency += total
		if total > p.deadline {
			st.SLOViolations++
		}
		s.stats.total.add(total)
		wait := p.dispatched.Sub(p.submitted)
		if p.critical() {
			st.CriticalCompleted++
			s.stats.critWait.add(wait)
		} else {
			st.RoutineCompleted++
			s.stats.routWait.add(wait)
		}
	}
}

// Stats returns a snapshot, including percentiles over the recent
// latency samples and the per-worker virtual timelines.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := s.stats.Stats
	total := s.stats.total.sample()
	crit := s.stats.critWait.sample()
	rout := s.stats.routWait.sample()
	s.mu.Unlock()

	less := func(sample []time.Duration) {
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	}
	if len(total) > 0 {
		less(total)
		out.P50 = percentile(total, 50)
		out.P99 = percentile(total, 99)
	}
	less(crit)
	less(rout)
	out.CriticalQueueP95 = percentile(crit, 95)
	out.RoutineQueueP95 = percentile(rout, 95)
	for _, w := range s.workers {
		v := time.Duration(w.virtualNow.Load())
		out.VirtualBusy += v
		if v > out.VirtualMakespan {
			out.VirtualMakespan = v
		}
	}
	return out
}
