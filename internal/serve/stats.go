package serve

import (
	"sort"
	"time"

	"safecross/internal/pipeswitch"
)

// Stats is a point-in-time snapshot of serving activity.
type Stats struct {
	// Submitted counts requests accepted into the admission queue.
	Submitted int
	// Rejected counts submissions refused for a full queue
	// (ErrQueueFull backpressure).
	Rejected int
	// Expired counts queued requests shed because their deadline
	// lapsed before inference (ErrDeadlineExceeded).
	Expired int
	// Failed counts requests that ended in any other explicit error
	// (model failure, shutdown).
	Failed int
	// Completed counts requests that received a verdict.
	Completed int
	// SLOViolations counts completed requests whose total latency
	// exceeded their deadline.
	SLOViolations int

	// Batches is the number of batched forward passes; BatchedClips
	// the clips they carried; MaxBatch the largest batch observed.
	Batches, BatchedClips, MaxBatch int
	// WarmBatches counts batches routed to a worker already holding
	// the scene's model; Switches counts batches that triggered a
	// PipeSwitch model swap.
	WarmBatches, Switches int

	// QueueWait, BatchWait, and ComputeWall are cumulative wall-clock
	// components over completed requests.
	QueueWait, BatchWait, ComputeWall time.Duration
	// TotalLatency is the cumulative submit-to-verdict latency over
	// completed requests.
	TotalLatency time.Duration
	// P50 and P99 are total-latency percentiles over recently
	// completed requests.
	P50, P99 time.Duration

	// SwitchVirtual is the cumulative virtual-time cost of all model
	// swaps performed by workers.
	SwitchVirtual time.Duration
	// VirtualBusy sums every worker's simulated-GPU timeline;
	// VirtualMakespan is the busiest worker's timeline — the
	// deterministic serving-completion time on the simulated
	// hardware, independent of the host machine.
	VirtualBusy, VirtualMakespan time.Duration
}

// MeanBatch returns the average clips per batched forward pass.
func (st Stats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedClips) / float64(st.Batches)
}

// VirtualThroughput returns completed clips per second of virtual
// makespan — the host-independent throughput of the simulated GPU
// fleet.
func (st Stats) VirtualThroughput() float64 {
	if st.VirtualMakespan <= 0 {
		return 0
	}
	return float64(st.Completed) / st.VirtualMakespan.Seconds()
}

// latencySample bounds percentile memory: a ring of the most recent
// completed-request latencies.
const latencySample = 8192

// statsAccum is the mutable accumulator behind Stats, guarded by
// Server.mu.
type statsAccum struct {
	Stats
	ring  [latencySample]time.Duration
	ringN int // total ever recorded
}

// record adds one completed request's total latency.
func (a *statsAccum) record(total time.Duration) {
	a.ring[a.ringN%latencySample] = total
	a.ringN++
}

// recordBatch folds one served batch into the counters.
func (s *Server) recordBatch(b *batch, rep pipeswitch.Report, computeWall time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Batches++
	st.BatchedClips += len(b.reqs)
	if len(b.reqs) > st.MaxBatch {
		st.MaxBatch = len(b.reqs)
	}
	if b.warm {
		st.WarmBatches++
	}
	if rep.Method != "noop" && rep.Method != "" {
		st.Switches++
		st.SwitchVirtual += rep.Total
	}
	for _, p := range b.reqs {
		total := now.Sub(p.submitted)
		st.Completed++
		st.QueueWait += p.bucketed.Sub(p.submitted)
		st.BatchWait += p.dispatched.Sub(p.bucketed)
		st.ComputeWall += computeWall
		st.TotalLatency += total
		if total > p.deadline {
			st.SLOViolations++
		}
		st.record(total)
	}
}

// Stats returns a snapshot, including percentiles over the recent
// latency sample and the per-worker virtual timelines.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := s.stats.Stats
	n := s.stats.ringN
	if n > latencySample {
		n = latencySample
	}
	sample := make([]time.Duration, n)
	copy(sample, s.stats.ring[:n])
	s.mu.Unlock()

	if len(sample) > 0 {
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		out.P50 = sample[len(sample)/2]
		out.P99 = sample[(len(sample)*99)/100]
	}
	for _, w := range s.workers {
		v := time.Duration(w.virtualNow.Load())
		out.VirtualBusy += v
		if v > out.VirtualMakespan {
			out.VirtualMakespan = v
		}
	}
	return out
}
