package serve

import (
	"time"

	"safecross/internal/pipeswitch"
)

// Stats is a point-in-time snapshot of serving activity. It is a
// façade over the server's telemetry registry: every counter below is
// read from a sharded atomic metric, and the percentiles come from
// the shared log-linear latency histograms (bucket resolution ≤25%,
// exact at the maximum), not a sorted sample ring.
type Stats struct {
	// Submitted counts requests accepted into the admission queue.
	Submitted int
	// Rejected counts submissions refused for a full queue
	// (ErrQueueFull backpressure).
	Rejected int
	// Shed counts admitted Routine requests pushed back out (with
	// ErrQueueFull) so a Critical request could take their slot.
	Shed int
	// Cancelled counts admitted requests whose context was cancelled
	// (or hit its deadline) while they were still queued; they were
	// dropped from their bucket before dispatch.
	Cancelled int
	// Expired counts queued requests shed because their deadline
	// lapsed before inference (ErrDeadlineExceeded).
	Expired int
	// Failed counts requests that ended in any other explicit error
	// (model failure, shutdown).
	Failed int
	// Completed counts requests that received a verdict.
	Completed int
	// SLOViolations counts completed requests whose total latency
	// exceeded their deadline.
	SLOViolations int
	// Aged counts Routine requests promoted to Critical dispatch by
	// the aging rule.
	Aged int

	// Batches is the number of batched forward passes; BatchedClips
	// the clips they carried; MaxBatch the largest batch observed.
	Batches, BatchedClips, MaxBatch int
	// BatchTarget is the scheduler's current adaptive early-seal batch
	// size, derived from queue depth per worker and bounded by
	// Config.MaxBatch; BatchTargetMax is the largest target the run
	// reached — the adaptation's high-water mark, stable after the
	// backlog drains and the live target decays back toward 1.
	BatchTarget, BatchTargetMax int
	// WorkspaceHits and WorkspaceMisses are the shared inference
	// pool's workspace Get counters: hits were served from pooled
	// scratch, misses had to allocate. After warm-up misses plateau
	// while hits keep growing.
	WorkspaceHits, WorkspaceMisses int
	// WarmBatches counts batches routed to a worker already holding
	// the scene's model; Switches counts batches that triggered a
	// PipeSwitch model load.
	WarmBatches, Switches int
	// Evictions counts models evicted from worker memory under
	// pressure; Reloads counts loads that brought back a previously
	// evicted model.
	Evictions, Reloads int

	// QueueWait, BatchWait, and ComputeWall are cumulative wall-clock
	// components over completed requests.
	QueueWait, BatchWait, ComputeWall time.Duration
	// TotalLatency is the cumulative submit-to-verdict latency over
	// completed requests.
	TotalLatency time.Duration
	// P50 and P99 are total-latency percentiles over completed
	// requests (histogram-resolved: within one bucket of exact, and
	// exact at the observed maximum).
	P50, P99 time.Duration
	// CriticalQueueP95 and RoutineQueueP95 are submit-to-dispatch wait
	// percentiles over completed requests, split by effective class
	// (aged Routine requests count as Critical). They are the priority
	// plane's acceptance metric: under saturation, Critical must sit
	// below Routine.
	CriticalQueueP95, RoutineQueueP95 time.Duration
	// CriticalCompleted and RoutineCompleted split Completed by
	// effective class.
	CriticalCompleted, RoutineCompleted int

	// SwitchVirtual is the cumulative virtual-time cost of all model
	// loads performed by workers.
	SwitchVirtual time.Duration
	// VirtualBusy sums every worker's simulated-GPU timeline;
	// VirtualMakespan is the busiest worker's timeline — the
	// deterministic serving-completion time on the simulated
	// hardware, independent of the host machine.
	VirtualBusy, VirtualMakespan time.Duration
}

// MeanBatch returns the average clips per batched forward pass.
func (st Stats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedClips) / float64(st.Batches)
}

// VirtualThroughput returns completed clips per second of virtual
// makespan — the host-independent throughput of the simulated GPU
// fleet.
func (st Stats) VirtualThroughput() float64 {
	if st.VirtualMakespan <= 0 {
		return 0
	}
	return float64(st.Completed) / st.VirtualMakespan.Seconds()
}

// recordBatch folds one served batch into the registry. The worker
// calls it BEFORE delivering any verdict, so a caller who observes
// Submit return is guaranteed to see its request in Stats — metric
// recording and outcome delivery are ordered, not racing.
func (s *Server) recordBatch(b *batch, rep pipeswitch.Report, computeWall time.Duration, now time.Time) {
	m := &s.metrics
	m.batches.Inc()
	m.batchedClips.Add(int64(len(b.reqs)))
	m.batchSize.Observe(int64(len(b.reqs)))
	m.maxBatch.SetMax(int64(len(b.reqs)))
	if b.warm {
		m.warmBatches.Inc()
	}
	switch rep.Method {
	case "", "noop", "resident":
		// The model was already on the device: no load happened.
	default:
		m.switches.Inc()
		m.switchCost.ObserveDuration(rep.Total)
	}
	m.evictions.Add(int64(rep.Evicted))
	if rep.Reload {
		m.reloads.Inc()
	}
	scene := s.scene[b.scene]
	for _, p := range b.reqs {
		total := now.Sub(p.submitted)
		m.completed.Inc()
		m.queueWait.ObserveDuration(p.bucketed.Sub(p.submitted))
		scene.queueWait.ObserveDuration(p.bucketed.Sub(p.submitted))
		m.batchWait.ObserveDuration(p.dispatched.Sub(p.bucketed))
		m.compute.ObserveDuration(computeWall)
		m.totalLatency.ObserveDuration(total)
		if total > p.deadline {
			m.sloViolations.Inc()
		}
		wait := p.dispatched.Sub(p.submitted)
		if p.critical() {
			m.critCompleted.Inc()
			m.critWait.ObserveDuration(wait)
		} else {
			m.routCompleted.Inc()
			m.routWait.ObserveDuration(wait)
		}
	}
}

// Stats returns a snapshot computed from the telemetry registry —
// one consistent telemetry.Snapshot read, addressed by series name —
// plus the per-worker virtual timelines, which live outside the
// registry.
func (s *Server) Stats() Stats {
	snap := s.registry.Snapshot()
	out := Stats{
		Submitted:     snap.Int("serve_submitted_total"),
		Rejected:      snap.Int("serve_rejected_total"),
		Shed:          snap.Int("serve_shed_total"),
		Cancelled:     snap.Int("serve_cancelled_total"),
		Expired:       snap.Int("serve_expired_total"),
		Failed:        snap.Int("serve_failed_total"),
		Completed:     snap.Int("serve_completed_total"),
		SLOViolations: snap.Int("serve_slo_violations_total"),
		Aged:          snap.Int("serve_aged_total"),

		Batches:        snap.Int("serve_batches_total"),
		BatchedClips:   snap.Int("serve_batched_clips_total"),
		MaxBatch:       snap.Int("serve_max_batch"),
		BatchTarget:    snap.Int("serve_batch_target"),
		BatchTargetMax: snap.Int("serve_batch_target_max"),

		WorkspaceHits:   snap.Int("infer_workspace_hits_total"),
		WorkspaceMisses: snap.Int("infer_workspace_misses_total"),
		WarmBatches:     snap.Int("serve_warm_batches_total"),
		Switches:        snap.Int("serve_switches_total"),
		Evictions:       snap.Int("serve_evictions_total"),
		Reloads:         snap.Int("serve_reloads_total"),

		QueueWait:    snap.SumDuration("serve_queue_wait_seconds"),
		BatchWait:    snap.SumDuration("serve_batch_wait_seconds"),
		ComputeWall:  snap.SumDuration("serve_compute_seconds"),
		TotalLatency: snap.SumDuration("serve_total_latency_seconds"),

		P50:              snap.QuantileDuration("serve_total_latency_seconds", 0.50),
		P99:              snap.QuantileDuration("serve_total_latency_seconds", 0.99),
		CriticalQueueP95: snap.QuantileDuration(`serve_dispatch_wait_seconds{class="critical"}`, 0.95),
		RoutineQueueP95:  snap.QuantileDuration(`serve_dispatch_wait_seconds{class="routine"}`, 0.95),

		CriticalCompleted: snap.Int(`serve_completed_by_class_total{class="critical"}`),
		RoutineCompleted:  snap.Int(`serve_completed_by_class_total{class="routine"}`),

		SwitchVirtual: snap.SumDuration("serve_switch_cost_seconds"),
	}
	for _, w := range s.workers {
		v := time.Duration(w.virtualNow.Load())
		out.VirtualBusy += v
		if v > out.VirtualMakespan {
			out.VirtualMakespan = v
		}
	}
	return out
}
