package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"safecross/internal/sim"
	"safecross/internal/telemetry"
)

// TestTraceSpansTileSubmitToVerdict submits one traced request and
// checks the dumped trace covers its whole wall-clock life with
// contiguous, non-overlapping stage spans and a single "completed"
// terminal.
func TestTraceSpansTileSubmitToVerdict(t *testing.T) {
	tc := telemetry.NewTracer(8)
	s, err := New(Config{Workers: 1, Tracer: tc}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := time.Now()
	if _, err := s.Submit(context.Background(), Request{Scene: sim.Day, Clip: testClip()}); err != nil {
		t.Fatal(err)
	}
	after := time.Now()

	traces := tc.Dump()
	if len(traces) != 1 {
		t.Fatalf("dumped %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Terminal != "completed" {
		t.Fatalf("terminal = %q, want completed", tr.Terminal)
	}
	wantStages := []string{"queue", "batch-wait", "switch", "compute", "deliver"}
	if len(tr.Spans) != len(wantStages) {
		t.Fatalf("spans = %+v, want stages %v", tr.Spans, wantStages)
	}
	for i, sp := range tr.Spans {
		if sp.Name != wantStages[i] {
			t.Fatalf("span %d = %q, want %q", i, sp.Name, wantStages[i])
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %q runs backwards: %+v", sp.Name, sp)
		}
		if i > 0 && !sp.Start.Equal(tr.Spans[i-1].End) {
			t.Fatalf("span %q does not start where %q ends: gap or overlap", sp.Name, tr.Spans[i-1].Name)
		}
	}
	first, last := tr.Spans[0], tr.Spans[len(tr.Spans)-1]
	if first.Start.Before(before) || last.End.After(after) {
		t.Fatalf("spans [%v, %v] escape the Submit window [%v, %v]",
			first.Start, last.End, before, after)
	}
	if !last.End.Equal(tr.End) {
		t.Fatalf("terminal instant %v != last span end %v", tr.End, last.End)
	}
}

// TestTraceTerminalExactlyOncePerRequest floods a tiny queue with
// cancelled, shed, and completed requests and checks every submission
// retired exactly one trace with exactly one terminal event — the
// trace-level mirror of the CAS settle-state invariant.
func TestTraceTerminalExactlyOncePerRequest(t *testing.T) {
	const n = 64
	tc := telemetry.NewTracer(n)
	s, err := New(Config{
		Workers:      1,
		MaxBatch:     4,
		QueueDepth:   4,
		BatchLatency: 5 * time.Millisecond,
		Tracer:       tc,
	}, stubFactory(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			prio := Routine
			switch i % 4 {
			case 0:
				prio = Critical // sheds queued Routine under pressure
			case 1:
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%8)*time.Millisecond)
				defer cancel()
			}
			_, _ = s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip(), Priority: prio})
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if got := tc.Finished(); got != n {
		t.Fatalf("finished traces = %d, want %d (one per submission)", got, n)
	}
	byStatus := map[string]int{}
	for _, tr := range tc.Dump() {
		if tr.Terminal == "" || tr.Terminal == "unfinished" {
			t.Fatalf("trace %d retired without a terminal event: %+v", tr.ID, tr)
		}
		byStatus[tr.Terminal]++
	}
	total := 0
	for status, c := range byStatus {
		switch status {
		case "completed", "cancelled", "shed", "rejected", "expired", "failed", "closed":
		default:
			t.Fatalf("unexpected terminal status %q", status)
		}
		total += c
	}
	if total != n {
		t.Fatalf("terminal events = %d (%v), want %d", total, byStatus, n)
	}

	// The registry's settle counters must tell the same story.
	st := s.Stats()
	settled := st.Completed + st.Cancelled + st.Shed + st.Expired + st.Failed + st.Rejected
	if settled != n {
		t.Fatalf("stats settle %d requests (%+v), want %d", settled, st, n)
	}
}

// TestTraceFromContextIsExtendedNotOwned submits with a caller-started
// trace on the context and checks the server records spans and the
// terminal into it but leaves retirement to the caller.
func TestTraceFromContextIsExtendedNotOwned(t *testing.T) {
	tc := telemetry.NewTracer(8)
	s, err := New(Config{Workers: 1}, stubFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := tc.Start("caller")
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := s.Submit(ctx, Request{Scene: sim.Day, Clip: testClip()}); err != nil {
		t.Fatal(err)
	}
	if got := tc.Finished(); got != 0 {
		t.Fatalf("server retired the caller's trace (%d finished)", got)
	}
	if tr.TerminalStatus() != "completed" {
		t.Fatalf("terminal = %q, want completed", tr.TerminalStatus())
	}
	tr.Finish()
	dumped := tc.Dump()
	if len(dumped) != 1 || len(dumped[0].Spans) != 5 {
		t.Fatalf("caller-owned trace missing server spans: %+v", dumped)
	}
}
