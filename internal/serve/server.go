package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"safecross/internal/infer"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
)

// pending request states. Exactly one party wins the CAS away from
// statePending, delivers the outcome (or returns ctx.Err()), and
// settles the admission slot; everyone else drops the request
// silently.
const (
	statePending   int32 = iota // queued, owned by the scheduler
	stateClaimed                // claimed for dispatch or rejection
	stateCancelled              // submitter's context fired while queued
	stateShed                   // pushed out by a Critical admission
)

// pending is one in-flight request with its bookkeeping instants.
type pending struct {
	req      Request
	prio     Priority
	deadline time.Duration

	// state arbitrates ownership between the scheduler, the
	// submitter's context watcher, and Critical shedders.
	state atomic.Int32
	// aged marks a Routine request promoted to Critical dispatch by
	// the aging rule (written by the scheduler before dispatch).
	aged bool

	submitted  time.Time // Submit accepted it
	bucketed   time.Time // scheduler placed it in a scene bucket
	dispatched time.Time // scheduler handed its batch to a worker

	// tr is the request's trace (nil when tracing is off). Whichever
	// party settles the request records its terminal event; the worker
	// additionally records the stage spans before delivery.
	tr *telemetry.Trace

	done chan outcome // capacity 1; exactly one outcome is ever sent
}

// critical reports the request's effective class at dispatch time.
func (p *pending) critical() bool { return p.prio == Critical || p.aged }

// outcome is a verdict or an explicit rejection.
type outcome struct {
	v   Verdict
	err error
}

// batch is a sealed group of same-scene, same-class requests bound
// for one batched forward pass.
type batch struct {
	scene sim.Weather
	reqs  []*pending
	// critical is the batch's admission class; promoted marks a
	// Routine batch raised to Critical dispatch by the aging rule.
	critical bool
	promoted bool
	warm     bool // assigned worker already held the scene's model
}

// urgent reports whether the batch dispatches in the Critical tier.
func (b *batch) urgent() bool { return b.critical || b.promoted }

// idleNote is a worker's report that it is free, with its resident
// model set so the scheduler can route warm under memory pressure.
type idleNote struct {
	worker   int
	resident []sim.Weather
}

// holds reports whether the worker had the scene's model resident
// when it went idle.
func (n idleNote) holds(scene sim.Weather) bool {
	for _, s := range n.resident {
		if s == scene {
			return true
		}
	}
	return false
}

// Server is the inference-serving plane.
type Server struct {
	cfg     Config
	scenes  map[sim.Weather]bool
	workers []*worker

	// pool shares eval workspaces across the worker goroutines; its
	// hit/miss counters export through the server's registry.
	pool *infer.Pool

	// registry backs all activity counters and latency histograms —
	// Config.Metrics when set, else a private registry — and metrics
	// holds the resolved handles. tracer (optional) samples per-request
	// stage spans.
	registry *telemetry.Registry
	metrics  serveMetrics
	// scene holds the per-scene labelled series (requests, queue
	// wait), resolved once at construction.
	scene  map[sim.Weather]sceneSeries
	tracer *telemetry.Tracer

	// wake nudges the scheduler after intake grows; capacity 1, sends
	// never block.
	wake   chan struct{}
	idleCh chan idleNote
	stopCh chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
	// stopped marks the scheduler/worker teardown as begun; Drain sets
	// closed without stopped (admission off, machinery still flushing).
	stopped bool
	// intake is the admission queue handed to the scheduler; appends
	// never block, so Submit can run entirely under mu.
	intake []*pending
	// inflight counts requests admitted but not yet claimed (for
	// dispatch, cancellation, or shedding); QueueDepth bounds it, so
	// admission backpressure covers the scene buckets and the ready
	// queue, not just the intake slice.
	inflight int
	// routine indexes admitted Routine requests still owned by the
	// scheduler — the shed candidates for a Critical admission under a
	// full queue.
	routine map[*pending]struct{}
}

// New builds and starts a serving plane: cfg.Workers simulated GPUs,
// each with a private model replica set from the factory, a finite
// memory budget, and a per-scene PipeSwitch manager, plus the
// batching scheduler.
func New(cfg Config, factory ModelFactory) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("serve: nil model factory")
	}
	reg := cfg.Metrics
	if reg == nil {
		// Stats() is computed from the metrics, so an unwired server
		// still needs them — back them with a private registry.
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		scenes:   make(map[sim.Weather]bool),
		pool:     infer.NewPool(infer.WithMetrics(reg)),
		registry: reg,
		metrics:  newServeMetrics(reg),
		tracer:   cfg.Tracer,
		wake:     make(chan struct{}, 1),
		// Buffered past the worst case (one stale note plus one
		// post-shutdown note per worker) so workers never block on it.
		idleCh:  make(chan idleNote, 2*cfg.Workers),
		stopCh:  make(chan struct{}),
		routine: make(map[*pending]struct{}),
	}
	reg.GaugeFunc("serve_inflight", "requests admitted but not yet dispatched or settled", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.inflight)
	})
	for i := 0; i < cfg.Workers; i++ {
		w, err := newWorker(i, factory, cfg.WorkerMemory, reg)
		if err != nil {
			return nil, err
		}
		s.workers = append(s.workers, w)
	}
	for scene := range s.workers[0].models {
		s.scenes[scene] = true
	}
	s.scene = newSceneSeries(reg, s.scenes)
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.run(s)
	}
	s.wg.Add(1)
	go s.schedule()
	return s, nil
}

// Submit queues one request and blocks until its verdict, an explicit
// rejection, or ctx ends. The deadline is ctx's when it has one, else
// Config.SLO; cancelling ctx while the request is queued returns
// ctx.Err() immediately and drops the request from its bucket before
// dispatch. Submission never blocks on admission: a full queue
// returns ErrQueueFull immediately — unless the request is Critical
// and a queued un-aged Routine request can be shed to make room.
func (s *Server) Submit(ctx context.Context, req Request) (Verdict, error) {
	if req.Clip == nil {
		return Verdict{}, fmt.Errorf("serve: nil clip")
	}
	if !s.scenes[req.Scene] {
		return Verdict{}, fmt.Errorf("serve: no model for scene %v", req.Scene)
	}
	if err := ctx.Err(); err != nil {
		return Verdict{}, err
	}
	// The request's trace rides the context when the caller started
	// one; otherwise the server's sampler (if any) starts it here and
	// owns its retirement.
	tr := telemetry.TraceFrom(ctx)
	owned := false
	if tr == nil && s.tracer != nil {
		tr = s.tracer.Start("serve/" + req.Scene.String())
		owned = true
	}
	p := &pending{
		req:       req,
		prio:      req.Priority,
		deadline:  s.cfg.SLO,
		submitted: time.Now(),
		tr:        tr,
		done:      make(chan outcome, 1),
	}
	if dl, ok := ctx.Deadline(); ok {
		p.deadline = time.Until(dl)
	}
	if owned {
		defer tr.Finish()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		tr.Terminal("closed", time.Now())
		return Verdict{}, ErrClosed
	}
	var victim *pending
	if s.inflight >= s.cfg.QueueDepth {
		if req.Priority == Critical {
			victim = s.shedRoutineLocked()
		}
		if victim == nil {
			s.mu.Unlock()
			s.metrics.rejected.Inc()
			tr.Terminal("rejected", time.Now())
			return Verdict{}, ErrQueueFull
		}
		// The victim's slot transfers to p: inflight is unchanged.
		s.metrics.shed.Inc()
	} else {
		s.inflight++
	}
	s.metrics.submitted.Inc()
	s.scene[req.Scene].requests.Inc()
	s.intake = append(s.intake, p)
	if p.prio == Routine {
		s.routine[p] = struct{}{}
	}
	s.mu.Unlock()
	if victim != nil {
		victim.tr.Terminal("shed", time.Now())
		victim.done <- outcome{err: fmt.Errorf("%w (routine slot shed for critical admission)", ErrQueueFull)}
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return s.await(ctx, p)
}

// await blocks until the request's outcome or its context fires while
// it is still queued.
func (s *Server) await(ctx context.Context, p *pending) (Verdict, error) {
	select {
	case out := <-p.done:
		s.forget(p)
		return out.v, out.err
	case <-ctx.Done():
		if p.state.CompareAndSwap(statePending, stateCancelled) {
			s.mu.Lock()
			s.inflight--
			delete(s.routine, p)
			s.mu.Unlock()
			s.metrics.cancelled.Inc()
			p.tr.Terminal("cancelled", time.Now())
			return Verdict{}, ctx.Err()
		}
		// Lost the race: the request was claimed for dispatch (a
		// verdict or rejection is coming) or shed.
		out := <-p.done
		s.forget(p)
		return out.v, out.err
	}
}

// forget drops the request from the shed-candidate index after its
// outcome is settled.
func (s *Server) forget(p *pending) {
	if p.prio != Routine {
		return
	}
	s.mu.Lock()
	delete(s.routine, p)
	s.mu.Unlock()
}

// shedRoutineLocked claims one queued Routine request as the victim
// of a Critical admission. Requests that have aged past AgingBound
// are protected — shedding them would reintroduce the starvation the
// aging rule bounds. Callers hold s.mu.
func (s *Server) shedRoutineLocked() *pending {
	now := time.Now()
	for v := range s.routine {
		if now.Sub(v.submitted) >= s.cfg.AgingBound {
			continue
		}
		if v.state.CompareAndSwap(statePending, stateShed) {
			delete(s.routine, v)
			return v
		}
	}
	return nil
}

// release returns admission-queue slots once requests leave the
// scheduler's ownership (dispatched to a worker, or rejected before
// dispatch).
func (s *Server) release(n int) {
	s.mu.Lock()
	s.inflight -= n
	s.mu.Unlock()
}

// drainIntake takes the admission queue from Submit.
func (s *Server) drainIntake() []*pending {
	s.mu.Lock()
	batch := s.intake
	s.intake = nil
	s.mu.Unlock()
	return batch
}

// Close stops admission, fails all queued requests with ErrClosed,
// lets in-flight batches finish delivering, and waits for every
// goroutine to exit. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
	return nil
}

// Drain gracefully quiesces the serving plane: admission stops
// immediately (Submit returns ErrClosed), but everything already
// admitted keeps flowing — open buckets seal on their batch-latency
// timers, in-flight batches compute, and every verdict is delivered —
// before the machinery shuts down. When ctx ends first, the remaining
// queued requests are failed with ErrClosed by the normal shutdown
// path and ctx.Err() is returned. This is the planned-handoff half of
// fleet failover: a draining node finishes the advisories it owes
// before its shards move.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// Every submitted request settles into exactly one outcome
	// counter; drained means they have all done so.
	settled := func() bool {
		m := &s.metrics
		done := m.completed.Value() + m.cancelled.Value() + m.expired.Value() +
			m.failed.Value() + m.shed.Value()
		return done >= m.submitted.Value()
	}
	var err error
	for !settled() {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// reject delivers an explicit rejection and counts it. Metrics and the
// trace terminal land before the outcome send, so a caller observing
// Submit return always sees its request settled in Stats.
func (s *Server) reject(p *pending, err error) {
	status := "failed"
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		s.metrics.expired.Inc()
		status = "expired"
	case errors.Is(err, ErrClosed):
		s.metrics.failed.Inc()
		status = "closed"
	default:
		s.metrics.failed.Inc()
	}
	p.tr.Terminal(status, time.Now())
	p.done <- outcome{err: err}
}

// bucketKey separates batching lanes: Critical clips never wait
// behind Routine batch formation for the same scene.
type bucketKey struct {
	scene    sim.Weather
	critical bool
}

// bucket accumulates same-scene, same-class requests until sealed
// into a batch.
type bucket struct {
	reqs  []*pending
	first time.Time
}

// schedule is the single goroutine owning the batcher and routing
// state. All sends it performs are non-blocking by construction
// (worker channels are only written after an idle report; capacities
// cover the rest), so it can never deadlock against workers.
func (s *Server) schedule() {
	defer s.wg.Done()

	buckets := make(map[bucketKey]*bucket)
	var ready []*batch
	idle := make([]idleNote, 0, len(s.workers))
	for i := range s.workers {
		idle = append(idle, idleNote{worker: i})
	}

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerSet := false

	seal := func(key bucketKey) {
		b := buckets[key]
		delete(buckets, key)
		ready = append(ready, &batch{scene: key.scene, critical: key.critical, reqs: b.reqs})
	}

	// target is the adaptive early-seal batch size in [1, MaxBatch]:
	// when an idle worker is waiting, a bucket that has reached it
	// seals immediately instead of stalling on the latency timer. It
	// tracks observed queue depth per worker — growing straight to
	// demand under a backlog (gated on the per-batch compute p50 being
	// heavy enough to amortise batch formation) and decaying toward 1
	// when the queue is shallow, so an idle plane dispatches singles
	// with no formation wait. Buckets accumulating behind busy workers
	// still seal at MaxBatch or on the timer, exactly as before.
	target := 1
	s.metrics.batchTarget.Set(int64(target))
	s.metrics.batchTargetMax.SetMax(int64(target))
	adapt := func() {
		s.mu.Lock()
		queued := s.inflight
		s.mu.Unlock()
		var p50 time.Duration
		if s.metrics.compute.Count() > 0 {
			p50 = s.metrics.compute.QuantileDuration(0.5)
		}
		next := adaptTarget(target, queued, len(s.workers), s.cfg.MaxBatch, p50, s.cfg.BatchLatency)
		if next != target {
			target = next
			s.metrics.batchTarget.Set(int64(target))
			s.metrics.batchTargetMax.SetMax(int64(target))
		}
	}

	// sealAtTarget seals every bucket that has reached the adaptive
	// target while an idle worker is waiting for it.
	sealAtTarget := func() {
		if len(idle) == 0 {
			return
		}
		for key, b := range buckets {
			if len(b.reqs) >= target {
				seal(key)
			}
		}
	}

	// resetTimer re-arms the flush timer for the oldest open bucket.
	resetTimer := func() {
		if timerSet {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerSet = false
		}
		var next time.Time
		for _, b := range buckets {
			d := b.first.Add(s.cfg.BatchLatency)
			if next.IsZero() || d.Before(next) {
				next = d
			}
		}
		if !next.IsZero() {
			timer.Reset(time.Until(next))
			timerSet = true
		}
	}

	// promote applies the aging rule to the ready queue: a Routine
	// batch whose oldest member has waited past AgingBound dispatches
	// in the Critical tier from now on.
	promote := func(now time.Time) {
		for _, b := range ready {
			if b.urgent() {
				continue
			}
			for _, p := range b.reqs {
				if now.Sub(p.submitted) >= s.cfg.AgingBound {
					b.promoted = true
					break
				}
			}
			if b.promoted {
				// Only the scheduler writes p.aged, and the worker reads
				// it after the dispatch channel send orders the write:
				// no lock needed.
				for _, p := range b.reqs {
					p.aged = true
					s.metrics.aged.Inc()
				}
			}
		}
	}

	// pick selects the next (batch, worker) pairing: Critical-tier
	// batches strictly before Routine ones; within a tier, a warm
	// pairing if any worker holds the batch's scene, else the oldest
	// batch onto the worker with the fewest resident models (keeps
	// warm workers warm and evicts least).
	pick := func() (bi, wi int) {
		for _, wantUrgent := range []bool{true, false} {
			first := -1
			for i, b := range ready {
				if b.urgent() != wantUrgent {
					continue
				}
				if first < 0 {
					first = i
				}
				for j, n := range idle {
					if n.holds(b.scene) {
						return i, j
					}
				}
			}
			if first >= 0 {
				coldest := 0
				for j, n := range idle {
					if len(n.resident) < len(idle[coldest].resident) {
						coldest = j
					}
				}
				return first, coldest
			}
		}
		return -1, -1
	}

	// dispatch pairs ready batches with idle workers, shedding
	// requests whose deadline lapsed and dropping requests that were
	// cancelled or shed while they waited.
	dispatch := func() {
		for len(ready) > 0 && len(idle) > 0 {
			now := time.Now()
			promote(now)
			bi, wi := pick()
			if bi < 0 {
				return
			}
			b := ready[bi]
			ready = append(ready[:bi], ready[bi+1:]...)
			note := idle[wi]
			idle = append(idle[:wi], idle[wi+1:]...)
			b.warm = note.holds(b.scene)

			kept := b.reqs[:0]
			for _, p := range b.reqs {
				if now.Sub(p.submitted) > p.deadline {
					if p.state.CompareAndSwap(statePending, stateClaimed) {
						s.release(1)
						s.reject(p, ErrDeadlineExceeded)
					}
					continue
				}
				if !p.state.CompareAndSwap(statePending, stateClaimed) {
					// Cancelled or shed while queued: the claimant
					// already settled the outcome and the slot.
					continue
				}
				p.dispatched = now
				kept = append(kept, p)
			}
			b.reqs = kept
			if len(b.reqs) == 0 {
				idle = append(idle, note)
				continue
			}
			s.release(len(b.reqs))
			s.workers[note.worker].ch <- b
		}
	}

	// admit buckets freshly submitted requests, sealing full batches —
	// at MaxBatch always, and at the adaptive target when an idle
	// worker is waiting.
	admit := func() {
		adapt()
		now := time.Now()
		for _, p := range s.drainIntake() {
			if p.state.Load() != statePending {
				continue // cancelled or shed before bucketing
			}
			p.bucketed = now
			key := bucketKey{scene: p.req.Scene, critical: p.prio == Critical}
			b := buckets[key]
			if b == nil {
				b = &bucket{first: now}
				buckets[key] = b
			}
			b.reqs = append(b.reqs, p)
			if len(b.reqs) >= s.cfg.MaxBatch {
				seal(key)
			}
		}
		sealAtTarget()
	}

	// fail claims and rejects a queued request at shutdown; requests
	// already cancelled or shed are dropped silently.
	fail := func(p *pending) {
		if p.state.CompareAndSwap(statePending, stateClaimed) {
			s.release(1)
			s.reject(p, ErrClosed)
		}
	}

	for {
		select {
		case <-s.wake:
			admit()
			dispatch()
			resetTimer()

		case <-timer.C:
			timerSet = false
			now := time.Now()
			for key, b := range buckets {
				if !now.Before(b.first.Add(s.cfg.BatchLatency)) {
					seal(key)
				}
			}
			dispatch()
			resetTimer()

		case n := <-s.idleCh:
			idle = append(idle, n)
			// A worker just freed: re-derive the target from current
			// depth and hand it any bucket that has already earned a
			// batch, rather than stalling it on the latency timer.
			adapt()
			sealAtTarget()
			dispatch()
			resetTimer()

		case <-s.stopCh:
			// Fail everything not yet handed to a worker; in-flight
			// batches still deliver their verdicts.
			for _, p := range s.drainIntake() {
				fail(p)
			}
			for _, b := range buckets {
				for _, p := range b.reqs {
					fail(p)
				}
			}
			for _, b := range ready {
				for _, p := range b.reqs {
					fail(p)
				}
			}
			for _, w := range s.workers {
				close(w.ch)
			}
			return
		}
	}
}
