package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"safecross/internal/sim"
)

// pending is one in-flight request with its bookkeeping instants.
type pending struct {
	req      Request
	deadline time.Duration

	submitted  time.Time // Submit accepted it
	bucketed   time.Time // scheduler placed it in a scene bucket
	dispatched time.Time // scheduler handed its batch to a worker

	done chan outcome // capacity 1; exactly one outcome is ever sent
}

// outcome is a verdict or an explicit rejection.
type outcome struct {
	v   Verdict
	err error
}

// batch is a sealed group of same-scene requests bound for one
// batched forward pass.
type batch struct {
	scene sim.Weather
	reqs  []*pending
	warm  bool // assigned worker already held the scene's model
}

// idleNote is a worker's report that it is free, with its resident
// model so the scheduler can route warm.
type idleNote struct {
	worker   int
	scene    sim.Weather
	hasModel bool
}

// Server is the inference-serving plane.
type Server struct {
	cfg     Config
	scenes  map[sim.Weather]bool
	workers []*worker

	submitCh chan *pending
	idleCh   chan idleNote
	stopCh   chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
	stats  statsAccum
	// inflight counts requests admitted but not yet handed to a
	// worker or rejected; QueueDepth bounds it, so admission
	// backpressure covers the scene buckets and the ready queue, not
	// just the channel.
	inflight int
}

// New builds and starts a serving plane: cfg.Workers simulated GPUs,
// each with a private model replica set from the factory and a
// per-scene PipeSwitch manager, plus the batching scheduler.
func New(cfg Config, factory ModelFactory) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("serve: nil model factory")
	}
	s := &Server{
		cfg:      cfg,
		scenes:   make(map[sim.Weather]bool),
		submitCh: make(chan *pending, cfg.QueueDepth),
		// Buffered past the worst case (one stale note plus one
		// post-shutdown note per worker) so workers never block on it.
		idleCh: make(chan idleNote, 2*cfg.Workers),
		stopCh: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		w, err := newWorker(i, factory)
		if err != nil {
			return nil, err
		}
		s.workers = append(s.workers, w)
	}
	for scene := range s.workers[0].models {
		s.scenes[scene] = true
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.run(s)
	}
	s.wg.Add(1)
	go s.schedule()
	return s, nil
}

// Submit queues one request and blocks until its verdict or explicit
// rejection. It never blocks on admission: a full queue returns
// ErrQueueFull immediately.
func (s *Server) Submit(req Request) (Verdict, error) {
	if req.Clip == nil {
		return Verdict{}, fmt.Errorf("serve: nil clip")
	}
	if !s.scenes[req.Scene] {
		return Verdict{}, fmt.Errorf("serve: no model for scene %v", req.Scene)
	}
	p := &pending{
		req:       req,
		deadline:  req.Deadline,
		submitted: time.Now(),
		done:      make(chan outcome, 1),
	}
	if p.deadline <= 0 {
		p.deadline = s.cfg.SLO
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Verdict{}, ErrClosed
	}
	if s.inflight >= s.cfg.QueueDepth {
		s.stats.Rejected++
		s.mu.Unlock()
		return Verdict{}, ErrQueueFull
	}
	// The channel holds a subset of the inflight requests and shares
	// its capacity, so this send cannot block.
	s.submitCh <- p
	s.inflight++
	s.stats.Submitted++
	s.mu.Unlock()
	out := <-p.done
	return out.v, out.err
}

// release returns admission-queue slots once requests leave the
// scheduler's ownership (dispatched to a worker, or rejected before
// dispatch).
func (s *Server) release(n int) {
	s.mu.Lock()
	s.inflight -= n
	s.mu.Unlock()
}

// Close stops admission, fails all queued requests with ErrClosed,
// lets in-flight batches finish delivering, and waits for every
// goroutine to exit. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
	return nil
}

// reject delivers an explicit rejection and counts it.
func (s *Server) reject(p *pending, err error) {
	s.mu.Lock()
	if errors.Is(err, ErrDeadlineExceeded) {
		s.stats.Expired++
	} else {
		s.stats.Failed++
	}
	s.mu.Unlock()
	p.done <- outcome{err: err}
}

// bucket accumulates same-scene requests until sealed into a batch.
type bucket struct {
	reqs  []*pending
	first time.Time
}

// schedule is the single goroutine owning the batcher and routing
// state. All sends it performs are non-blocking by construction
// (worker channels are only written after an idle report; capacities
// cover the rest), so it can never deadlock against workers.
func (s *Server) schedule() {
	defer s.wg.Done()

	buckets := make(map[sim.Weather]*bucket)
	var ready []*batch
	idle := make([]idleNote, 0, len(s.workers))
	for i := range s.workers {
		idle = append(idle, idleNote{worker: i})
	}

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerSet := false

	seal := func(scene sim.Weather) {
		b := buckets[scene]
		delete(buckets, scene)
		ready = append(ready, &batch{scene: scene, reqs: b.reqs})
	}

	// resetTimer re-arms the flush timer for the oldest open bucket.
	resetTimer := func() {
		if timerSet {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerSet = false
		}
		var next time.Time
		for _, b := range buckets {
			d := b.first.Add(s.cfg.BatchLatency)
			if next.IsZero() || d.Before(next) {
				next = d
			}
		}
		if !next.IsZero() {
			timer.Reset(time.Until(next))
			timerSet = true
		}
	}

	// dispatch pairs ready batches with idle workers, preferring a
	// worker whose resident model matches (warm routing), shedding
	// requests whose deadline lapsed while they waited.
	dispatch := func() {
		for len(ready) > 0 && len(idle) > 0 {
			bi, wi := -1, -1
			for i, b := range ready {
				for j, n := range idle {
					if n.hasModel && n.scene == b.scene {
						bi, wi = i, j
						break
					}
				}
				if bi >= 0 {
					break
				}
			}
			if bi < 0 {
				// No warm pairing: oldest batch onto a model-less
				// worker when one exists (keeps warm workers warm),
				// else onto any idle worker, paying a switch.
				bi, wi = 0, 0
				for j, n := range idle {
					if !n.hasModel {
						wi = j
						break
					}
				}
			}
			b := ready[bi]
			ready = append(ready[:bi], ready[bi+1:]...)
			note := idle[wi]
			idle = append(idle[:wi], idle[wi+1:]...)
			b.warm = note.hasModel && note.scene == b.scene

			now := time.Now()
			kept := b.reqs[:0]
			for _, p := range b.reqs {
				if now.Sub(p.submitted) > p.deadline {
					s.release(1)
					s.reject(p, ErrDeadlineExceeded)
					continue
				}
				p.dispatched = now
				kept = append(kept, p)
			}
			b.reqs = kept
			if len(b.reqs) == 0 {
				idle = append(idle, note)
				continue
			}
			s.release(len(b.reqs))
			s.workers[note.worker].ch <- b
		}
	}

	for {
		select {
		case p := <-s.submitCh:
			now := time.Now()
			p.bucketed = now
			b := buckets[p.req.Scene]
			if b == nil {
				b = &bucket{first: now}
				buckets[p.req.Scene] = b
			}
			b.reqs = append(b.reqs, p)
			if len(b.reqs) >= s.cfg.MaxBatch {
				seal(p.req.Scene)
			}
			dispatch()
			resetTimer()

		case <-timer.C:
			timerSet = false
			now := time.Now()
			for scene, b := range buckets {
				if !now.Before(b.first.Add(s.cfg.BatchLatency)) {
					seal(scene)
				}
			}
			dispatch()
			resetTimer()

		case n := <-s.idleCh:
			idle = append(idle, n)
			dispatch()

		case <-s.stopCh:
			// Fail everything not yet handed to a worker; in-flight
			// batches still deliver their verdicts.
			for drained := false; !drained; {
				select {
				case p := <-s.submitCh:
					s.release(1)
					s.reject(p, ErrClosed)
				default:
					drained = true
				}
			}
			for _, b := range buckets {
				for _, p := range b.reqs {
					s.release(1)
					s.reject(p, ErrClosed)
				}
			}
			for _, b := range ready {
				for _, p := range b.reqs {
					s.release(1)
					s.reject(p, ErrClosed)
				}
			}
			for _, w := range s.workers {
				close(w.ch)
			}
			return
		}
	}
}
