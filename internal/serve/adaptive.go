package serve

import "time"

// adaptTarget derives the scheduler's next early-seal batch target
// from observed load. queued is the number of admitted requests the
// scheduler still owns (intake + buckets + ready), so queued/workers
// is the batch size that would drain the backlog in one dispatch
// round per worker — the demand. The target grows straight to demand
// (a burst should not wait N rounds for doublings), but only when the
// per-batch compute p50 is heavy enough to dominate batch formation:
// batching cheap forwards just adds queueing delay, so those planes
// stay latency-optimal at small targets. Shrinking decays half the
// gap per round, so one shallow instant between bursts does not
// collapse the target a deep queue earned. The result is clamped to
// [1, maxBatch].
//
// A zero computeP50 means the compute histogram is still empty (cold
// server): growth is allowed, since the gate exists to stop batching
// of provably cheap forwards, not of unknown ones.
func adaptTarget(cur, queued, workers, maxBatch int, computeP50, batchLatency time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	need := (queued + workers - 1) / workers
	if need < 1 {
		need = 1
	}
	next := cur
	switch {
	case need > cur:
		if computeP50 == 0 || computeP50 >= batchLatency/4 {
			next = need
		}
	case need < cur:
		next = cur - (cur-need+1)/2
	}
	if next < 1 {
		next = 1
	}
	if next > maxBatch {
		next = maxBatch
	}
	return next
}
