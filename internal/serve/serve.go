// Package serve is the multi-intersection inference-serving
// subsystem: it sits between feed sources (RSU camera loops,
// benchmarks, examples) and the per-scene video classifiers, turning
// the one-camera-one-GPU Framework deployment into a shared serving
// plane a city's worth of intersections can submit to.
//
// The pipeline is:
//
//	Submit(ctx) → bounded admission queue → per-scene, per-class
//	dynamic batcher → scheduler → worker pool over N simulated GPUs →
//	verdict
//
// Backpressure is explicit at every stage: a full admission queue
// rejects with ErrQueueFull rather than blocking (shedding a queued
// Routine request first when the newcomer is Critical), a request
// whose deadline lapses while queued is shed with ErrDeadlineExceeded
// before it wastes GPU time, and a request whose context is cancelled
// while queued returns ctx.Err() immediately and is dropped from its
// bucket before dispatch. Every accepted request therefore ends in
// exactly one of a verdict or an error — nothing is dropped silently.
//
// Requests carry a priority class. Critical requests (an intersection
// in a danger streak, where the fail-safe bias says the verdict is
// urgent) batch separately and dispatch ahead of Routine ones; an
// aging rule promotes any Routine batch that has waited past
// Config.AgingBound so saturation cannot starve it.
//
// Dynamic batching coalesces queued inputs for the same scene and
// class into one batched forward pass, flushing a batch when it
// reaches MaxBatch or when its oldest member has waited BatchLatency.
// Batch sizing is adaptive: the scheduler keeps a target in
// [1, MaxBatch] that tracks observed queue depth per worker — gated
// on the per-batch compute p50 being heavy enough to amortise batch
// formation — and seals a bucket early at the target whenever an idle
// worker is waiting, so a shallow queue dispatches immediately while
// a deep one forms full batches without the latency-timer stall. The
// scheduler routes a sealed batch to a worker where the scene's model
// is already resident when one is idle, and only triggers a
// PipeSwitch load when no warm worker exists.
//
// The plane is engine-keyed: workers dispatch through the unified
// inference engine (infer.Model / infer.PredictBatch), so video
// classifiers and detector presence models serve interchangeably, and
// all forward-pass scratch comes from one shared infer.Pool of
// workspaces whose hit/miss counters land in the telemetry registry.
//
// Each worker owns a private replica of every scene model (forward
// passes carry mutable state, so replicas are mandatory for
// parallelism) and its own simulated GPU with a finite memory budget
// (Config.WorkerMemory): models stay resident until memory pressure
// evicts the least recently used, and an evicted scene re-loads on
// demand through the PipeSwitch path. Switch and compute share one
// virtual timeline per worker, so Stats reports both wall-clock and
// deterministic virtual-time serving metrics, including evictions and
// reloads.
package serve

import (
	"errors"
	"fmt"
	"time"

	"safecross/internal/infer"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
	"safecross/internal/video"
)

// Sentinel errors returned by Submit. All are explicit backpressure:
// the caller learns immediately that the request was not served.
var (
	// ErrQueueFull reports that the admission queue was full at
	// submission time, or — for an admitted Routine request — that its
	// slot was shed to admit a Critical request.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDeadlineExceeded reports that the request's deadline lapsed
	// while it was still queued, so it was shed before inference.
	// Requests whose deadline came from their context usually return
	// context.DeadlineExceeded from ctx instead.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before inference")
	// ErrClosed reports that the server was shut down before the
	// request could be served.
	ErrClosed = errors.New("serve: server closed")
)

// Priority is a request's admission class.
type Priority int

const (
	// Routine is the default class: normal advisory traffic.
	Routine Priority = iota
	// Critical marks safety-critical clips — e.g. an intersection
	// whose framework is in a danger streak. Critical batches flush
	// first, and under a full queue a Critical submission sheds a
	// queued Routine request rather than being rejected.
	Critical
)

// String names the class.
func (p Priority) String() string {
	if p == Critical {
		return "critical"
	}
	return "routine"
}

// Config sizes the serving plane.
type Config struct {
	// Workers is the number of simulated GPUs (default 2).
	Workers int
	// MaxBatch is the largest batch one forward pass may carry
	// (default 8; 1 disables batching). It is the upper bound of the
	// adaptive batch target the scheduler derives from queue depth.
	MaxBatch int
	// BatchLatency is the longest a queued clip may wait for
	// batch-mates before its batch is flushed anyway (default 2ms;
	// 0 flushes every batch immediately).
	BatchLatency time.Duration
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// SLO is the default per-request deadline when the submission
	// context carries none (default 250ms). It is also the latency
	// bound SLO accounting is measured against.
	SLO time.Duration
	// WorkerMemory is each worker's simulated-GPU memory budget in
	// bytes; models beyond it are evicted least-recently-used and
	// re-loaded on demand. Zero keeps the device default (11 GiB,
	// which in practice means no eviction).
	WorkerMemory int64
	// AgingBound caps Routine starvation: a Routine batch that has
	// waited this long dispatches at Critical priority, and a Routine
	// request that has aged past it cannot be shed for a Critical
	// admission (default SLO/2).
	AgingBound time.Duration
	// Metrics is the telemetry registry all serving counters and
	// latency histograms land in. Nil gives the server a private
	// registry (Stats still works); pass a shared one to export the
	// series through a debug listener alongside pipeswitch and RSU
	// metrics.
	Metrics *telemetry.Registry
	// Tracer, when set, records per-request stage spans
	// (queue→batch-wait→switch→compute→deliver) for every submission
	// that does not already carry a trace on its context. Callers who
	// want to extend a trace past the verdict (e.g. through the RSU
	// broadcast) start their own with telemetry.WithTrace instead.
	Tracer *telemetry.Tracer
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.BatchLatency == 0 {
		c.BatchLatency = 2 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.SLO == 0 {
		c.SLO = 250 * time.Millisecond
	}
	if c.AgingBound == 0 {
		c.AgingBound = c.SLO / 2
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("serve: %d workers, need at least 1", c.Workers)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: max batch %d, need at least 1", c.MaxBatch)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("serve: queue depth %d, need at least 1", c.QueueDepth)
	}
	if c.BatchLatency < 0 || c.SLO < 0 || c.AgingBound < 0 {
		return fmt.Errorf("serve: negative latency bound")
	}
	if c.WorkerMemory < 0 {
		return fmt.Errorf("serve: negative worker memory %d", c.WorkerMemory)
	}
	return nil
}

// Request is one classification submission: a pre-processed clip, the
// scene whose model must judge it, and its admission class. Deadlines
// travel on the Submit context, not the request.
type Request struct {
	// Scene selects the per-scene model.
	Scene sim.Weather
	// Clip is the [1,T,H,W] occupancy-grid clip tensor.
	Clip *tensor.Tensor
	// Priority is the admission class (default Routine).
	Priority Priority
}

// Timing is the per-request SLO accounting: where the latency went.
type Timing struct {
	// Queue is the wait in the admission queue before the scheduler
	// placed the request into a scene bucket.
	Queue time.Duration
	// BatchWait is the wait inside the batch until a worker took it.
	BatchWait time.Duration
	// Compute is the wall-clock time of the batched forward pass the
	// request rode in.
	Compute time.Duration
	// Total is submission to verdict delivery.
	Total time.Duration
	// Switch is the virtual-time cost of the PipeSwitch model load
	// this batch triggered (zero when the model was resident).
	Switch time.Duration
	// VirtualCompute is the simulated-GPU duration of the batched
	// inference (kernel launches amortised over the batch).
	VirtualCompute time.Duration
	// Worker is the GPU worker that served the request.
	Worker int
	// Batch is the size of the batch the request was served in.
	Batch int
	// Evicted is how many resident models the worker evicted to load
	// this batch's model.
	Evicted int
	// SLOMet reports Total ≤ the request's deadline.
	SLOMet bool
}

// Verdict is the served classification result.
type Verdict struct {
	// Label is the predicted class (dataset.ClassDanger or
	// dataset.ClassSafe).
	Label int
	// Safe is the advisory reading of the label.
	Safe bool
	// Timing is the request's latency breakdown.
	Timing Timing
}

// ModelFactory builds one private replica of the per-scene engine
// models for a worker. It is called once per worker at server
// construction; replicas must not share mutable state. The serving
// plane is engine-keyed: any infer.Model — a video classifier behind
// video.Engine, a detector behind detect.NewPresence — serves from
// the same worker pool.
type ModelFactory func() (map[sim.Weather]infer.Model, error)

// Replicas returns a ModelFactory that clones trained per-scene video
// classifiers weight-for-weight through the builder that produced
// them (experiments.TrainedModels carries it) and lifts each clone to
// the engine contract.
func Replicas(builder video.Builder, trained map[sim.Weather]video.Classifier) ModelFactory {
	return func() (map[sim.Weather]infer.Model, error) {
		out := make(map[sim.Weather]infer.Model, len(trained))
		for scene, m := range trained {
			clone, err := video.CloneWeights(builder, m)
			if err != nil {
				return nil, fmt.Errorf("serve: replicate %v model: %w", scene, err)
			}
			out[scene] = video.Engine(clone)
		}
		return out, nil
	}
}
