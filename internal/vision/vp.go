package vision

import (
	"fmt"

	"safecross/internal/tensor"
)

// OccupancyGrid reduces a binary mask restricted to a region of
// interest into a gh×gw grid of cell occupancy fractions in [0, 1].
// This is the paper's Fig. 3(c) step: mapping detected movers into a
// compact 2-D representation of the intersection so the classifier
// has far fewer parameters to learn.
func OccupancyGrid(mask *Image, roi Rect, gw, gh int) (*Image, error) {
	if gw <= 0 || gh <= 0 {
		return nil, fmt.Errorf("vision: occupancy grid %dx%d must be positive", gw, gh)
	}
	roi = roi.Intersect(Rect{X0: 0, Y0: 0, X1: mask.W, Y1: mask.H})
	if roi.Empty() {
		return nil, fmt.Errorf("vision: ROI outside image bounds")
	}
	out := NewImage(gw, gh)
	cellW := float64(roi.Width()) / float64(gw)
	cellH := float64(roi.Height()) / float64(gh)
	for gy := 0; gy < gh; gy++ {
		y0 := roi.Y0 + int(float64(gy)*cellH)
		y1 := roi.Y0 + int(float64(gy+1)*cellH)
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for gx := 0; gx < gw; gx++ {
			x0 := roi.X0 + int(float64(gx)*cellW)
			x1 := roi.X0 + int(float64(gx+1)*cellW)
			if x1 <= x0 {
				x1 = x0 + 1
			}
			on, total := 0, 0
			for y := y0; y < y1 && y < roi.Y1; y++ {
				row := mask.Pix[y*mask.W:]
				for x := x0; x < x1 && x < roi.X1; x++ {
					total++
					if row[x] >= 0.5 {
						on++
					}
				}
			}
			if total > 0 {
				out.Pix[gy*gw+gx] = float64(on) / float64(total)
			}
		}
	}
	return out, nil
}

// VPConfig configures a Preprocessor.
type VPConfig struct {
	// Alpha is the dynamic-background learning rate.
	Alpha float64
	// Threshold is the foreground binarisation level.
	Threshold float64
	// OpenRadius is the structuring-element radius for morphological
	// opening; 0 disables opening.
	OpenRadius int
	// ROI restricts processing to the camera region covering the
	// intersection approach (the paper crops "the middle to the upper
	// right corner"). An empty ROI means the whole frame.
	ROI Rect
	// GridW and GridH are the occupancy-grid dimensions fed to the
	// classifier.
	GridW, GridH int
}

// DefaultVPConfig returns the configuration used throughout the
// experiments: a 16×10 occupancy grid, light morphology, and a
// slowly adapting background.
func DefaultVPConfig() VPConfig {
	return VPConfig{
		Alpha:      0.05,
		Threshold:  0.12,
		OpenRadius: 1,
		GridW:      16,
		GridH:      10,
	}
}

// Preprocessor is the VP module: it turns raw camera frames into
// occupancy grids via dynamic background subtraction, opening, ROI
// cropping, and grid pooling.
type Preprocessor struct {
	cfg VPConfig
	bg  *BackgroundModel
}

// NewPreprocessor creates a VP pipeline with the given configuration.
func NewPreprocessor(cfg VPConfig) *Preprocessor {
	return &Preprocessor{cfg: cfg, bg: NewBackgroundModel(cfg.Alpha)}
}

// Reset clears the learned background so the next frame re-primes it;
// call when the camera feed cuts to a different scene.
func (p *Preprocessor) Reset() { p.bg = NewBackgroundModel(p.cfg.Alpha) }

// Config returns the preprocessor configuration.
func (p *Preprocessor) Config() VPConfig { return p.cfg }

// Process converts one frame into its occupancy-grid representation,
// updating the dynamic background as a side effect.
func (p *Preprocessor) Process(frame *Image) (*Image, error) {
	mask, err := p.bg.Foreground(frame, p.cfg.Threshold)
	if err != nil {
		return nil, fmt.Errorf("vp: %w", err)
	}
	if p.cfg.OpenRadius > 0 {
		mask = Open(mask, p.cfg.OpenRadius)
	}
	roi := p.cfg.ROI
	if roi.Empty() {
		roi = Rect{X0: 0, Y0: 0, X1: frame.W, Y1: frame.H}
	}
	grid, err := OccupancyGrid(mask, roi, p.cfg.GridW, p.cfg.GridH)
	if err != nil {
		return nil, fmt.Errorf("vp: %w", err)
	}
	return grid, nil
}

// ProcessMask runs subtraction and opening only, returning the full-
// resolution binary mask; the detection experiments (Table II) use
// this directly.
func (p *Preprocessor) ProcessMask(frame *Image) (*Image, error) {
	mask, err := p.bg.Foreground(frame, p.cfg.Threshold)
	if err != nil {
		return nil, fmt.Errorf("vp: %w", err)
	}
	if p.cfg.OpenRadius > 0 {
		mask = Open(mask, p.cfg.OpenRadius)
	}
	return mask, nil
}

// ClipTensor stacks a sequence of occupancy grids into a [1,T,H,W]
// tensor, the input layout of the video classifiers.
func ClipTensor(grids []*Image) (*tensor.Tensor, error) {
	if len(grids) == 0 {
		return nil, fmt.Errorf("vision: empty clip")
	}
	h, w := grids[0].H, grids[0].W
	out := tensor.New(1, len(grids), h, w)
	for t, g := range grids {
		if g.W != w || g.H != h {
			return nil, fmt.Errorf("vision: frame %d is %dx%d, want %dx%d", t, g.W, g.H, w, h)
		}
		copy(out.Data[t*h*w:(t+1)*h*w], g.Pix)
	}
	return out, nil
}
