package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImageAtSetBounds(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 0.5)
	if im.At(2, 1) != 0.5 {
		t.Fatalf("At = %v, want 0.5", im.At(2, 1))
	}
	// Out-of-bounds reads are zero, writes are ignored.
	if im.At(-1, 0) != 0 || im.At(4, 0) != 0 || im.At(0, 3) != 0 {
		t.Fatal("out-of-bounds read must be 0")
	}
	im.Set(9, 9, 1)
	if im.Mean() != 0.5/12 {
		t.Fatal("out-of-bounds write must be ignored")
	}
}

func TestFillRectClips(t *testing.T) {
	im := NewImage(4, 4)
	im.FillRect(-2, -2, 2, 2, 1)
	want := 4.0 // only the 2x2 in-bounds corner
	if got := im.Mean() * 16; math.Abs(got-want) > 1e-12 {
		t.Fatalf("FillRect painted %v pixels, want %v", got, want)
	}
}

func TestAbsDiffAndThreshold(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(2, 2)
	a.Pix = []float64{0.9, 0.1, 0.5, 0.5}
	b.Pix = []float64{0.1, 0.9, 0.5, 0.4}
	d, err := AbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	bin := d.Threshold(0.5)
	if bin.Pix[0] != 1 || bin.Pix[1] != 1 || bin.Pix[2] != 0 || bin.Pix[3] != 0 {
		t.Fatalf("threshold = %v", bin.Pix)
	}
	if _, err := AbsDiff(a, NewImage(3, 2)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestDownsample(t *testing.T) {
	im := NewImage(4, 4)
	im.FillRect(0, 0, 2, 2, 1)
	out, err := im.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 2 || out.H != 2 {
		t.Fatalf("downsample size %dx%d", out.W, out.H)
	}
	if out.At(0, 0) != 1 || out.At(1, 1) != 0 {
		t.Fatalf("downsample values %v", out.Pix)
	}
	if _, err := im.Downsample(0); err == nil {
		t.Fatal("expected factor error")
	}
	if _, err := im.Downsample(5); err == nil {
		t.Fatal("expected too-large error")
	}
}

func TestRectOperations(t *testing.T) {
	a := Rect{X0: 0, Y0: 0, X1: 4, Y1: 4}
	b := Rect{X0: 2, Y0: 2, X1: 6, Y1: 6}
	inter := a.Intersect(b)
	if inter.Area() != 4 {
		t.Fatalf("intersect area = %d, want 4", inter.Area())
	}
	if got := a.IoU(b); math.Abs(got-4.0/28) > 1e-12 {
		t.Fatalf("IoU = %v, want %v", got, 4.0/28)
	}
	if !a.Overlaps(b) {
		t.Fatal("rects should overlap")
	}
	c := Rect{X0: 10, Y0: 10, X1: 12, Y1: 12}
	if a.Overlaps(c) {
		t.Fatal("disjoint rects must not overlap")
	}
	if a.IoU(c) != 0 {
		t.Fatal("disjoint IoU must be 0")
	}
	if !a.Contains(3, 3) || a.Contains(4, 4) {
		t.Fatal("Contains uses half-open bounds")
	}
}

func TestBackgroundModelDetectsMover(t *testing.T) {
	bg := NewBackgroundModel(0.1)
	base := NewImage(20, 10)
	base.Fill(0.3)
	// Prime with several static frames.
	for i := 0; i < 5; i++ {
		if _, err := bg.Foreground(base, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	// Now a bright vehicle appears.
	frame := base.Clone()
	frame.FillRect(5, 3, 9, 6, 0.95)
	mask, err := bg.Foreground(frame, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	on := 0
	for _, v := range mask.Pix {
		if v >= 0.5 {
			on++
		}
	}
	if on != 4*3 {
		t.Fatalf("foreground pixels = %d, want 12", on)
	}
}

func TestBackgroundModelAdaptsToIlluminationDrift(t *testing.T) {
	bg := NewBackgroundModel(0.2)
	for i := 0; i < 60; i++ {
		frame := NewImage(8, 8)
		frame.Fill(0.3 + float64(i)*0.005) // slow brightening
		mask, err := bg.Foreground(frame, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range mask.Pix {
			if v >= 0.5 {
				t.Fatalf("frame %d: drift misdetected as motion", i)
			}
		}
	}
}

func TestBackgroundSubtractBeforePrimeFails(t *testing.T) {
	bg := NewBackgroundModel(0.1)
	if _, err := bg.Subtract(NewImage(2, 2)); err == nil {
		t.Fatal("expected unprimed error")
	}
	if bg.Background() != nil {
		t.Fatal("unprimed background must be nil")
	}
}

func TestBackgroundUpdateSizeMismatch(t *testing.T) {
	bg := NewBackgroundModel(0.1)
	if err := bg.Update(NewImage(4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := bg.Update(NewImage(5, 4)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestOpeningRemovesNoiseKeepsVehicle(t *testing.T) {
	im := NewImage(40, 20)
	// A vehicle-sized blob.
	im.FillRect(10, 5, 18, 11, 1)
	// Salt noise: isolated single pixels.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		x, y := rng.Intn(40), rng.Intn(20)
		if x >= 8 && x < 20 && y >= 3 && y < 13 {
			continue // keep noise away from the vehicle for a crisp check
		}
		im.Set(x, y, 1)
	}
	opened := Open(im, 1)
	blobs := ConnectedComponents(opened, 1)
	if len(blobs) != 1 {
		t.Fatalf("blobs after opening = %d, want 1", len(blobs))
	}
	b := blobs[0]
	if b.Bounds.Width() < 6 || b.Bounds.Height() < 4 {
		t.Fatalf("vehicle blob too eroded: %+v", b.Bounds)
	}
}

func TestErodeDilateKnownShapes(t *testing.T) {
	im := NewImage(7, 7)
	im.FillRect(2, 2, 5, 5, 1) // 3x3 square
	e := Erode(im, 1)
	if e.At(3, 3) != 1 {
		t.Fatal("erosion must keep the centre of a 3x3 square")
	}
	count := 0
	for _, v := range e.Pix {
		if v >= 0.5 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("erosion of 3x3 square should leave 1 pixel, got %d", count)
	}
	d := Dilate(e, 1)
	count = 0
	for _, v := range d.Pix {
		if v >= 0.5 {
			count++
		}
	}
	if count != 9 {
		t.Fatalf("dilation should restore 9 pixels, got %d", count)
	}
}

// Property: opening is anti-extensive (never adds pixels) and
// idempotent (opening twice equals opening once).
func TestPropertyOpeningAntiExtensiveIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(16, 12)
		for i := range im.Pix {
			if rng.Float64() < 0.4 {
				im.Pix[i] = 1
			}
		}
		once := Open(im, 1)
		for i := range once.Pix {
			if once.Pix[i] > im.Pix[i] {
				return false // added a pixel
			}
		}
		twice := Open(once, 1)
		for i := range twice.Pix {
			if twice.Pix[i] != once.Pix[i] {
				return false // not idempotent
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponentsSeparatesAndOrders(t *testing.T) {
	im := NewImage(20, 10)
	im.FillRect(1, 1, 3, 3, 1)   // area 4
	im.FillRect(10, 2, 16, 8, 1) // area 36
	im.Set(19, 9, 1)             // area 1
	blobs := ConnectedComponents(im, 1)
	if len(blobs) != 3 {
		t.Fatalf("blobs = %d, want 3", len(blobs))
	}
	if blobs[0].Area != 36 || blobs[1].Area != 4 || blobs[2].Area != 1 {
		t.Fatalf("blob areas = %d,%d,%d; want descending 36,4,1",
			blobs[0].Area, blobs[1].Area, blobs[2].Area)
	}
	if blobs[0].Bounds != (Rect{X0: 10, Y0: 2, X1: 16, Y1: 8}) {
		t.Fatalf("largest blob bounds = %+v", blobs[0].Bounds)
	}
	cx, cy := blobs[0].CentroidX, blobs[0].CentroidY
	if math.Abs(cx-12.5) > 1e-9 || math.Abs(cy-4.5) > 1e-9 {
		t.Fatalf("centroid = (%v,%v), want (12.5,4.5)", cx, cy)
	}
	// minArea filters.
	big := ConnectedComponents(im, 5)
	if len(big) != 1 {
		t.Fatalf("minArea filter left %d blobs, want 1", len(big))
	}
}

func TestOccupancyGrid(t *testing.T) {
	mask := NewImage(16, 8)
	mask.FillRect(0, 0, 8, 4, 1) // top-left quadrant fully on
	grid, err := OccupancyGrid(mask, Rect{X0: 0, Y0: 0, X1: 16, Y1: 8}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantOn := []float64{1, 1, 0, 0, 0, 0, 0, 0}
	for i, w := range wantOn {
		if grid.Pix[i] != w {
			t.Fatalf("grid = %v, want %v", grid.Pix, wantOn)
		}
	}
}

func TestOccupancyGridROI(t *testing.T) {
	mask := NewImage(16, 8)
	mask.FillRect(8, 0, 16, 8, 1) // right half on
	grid, err := OccupancyGrid(mask, Rect{X0: 8, Y0: 0, X1: 16, Y1: 8}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range grid.Pix {
		if v != 1 {
			t.Fatalf("ROI grid cell %d = %v, want 1", i, v)
		}
	}
	if _, err := OccupancyGrid(mask, Rect{X0: 100, Y0: 0, X1: 120, Y1: 8}, 2, 2); err == nil {
		t.Fatal("expected out-of-bounds ROI error")
	}
	if _, err := OccupancyGrid(mask, Rect{X0: 0, Y0: 0, X1: 16, Y1: 8}, 0, 2); err == nil {
		t.Fatal("expected grid-size error")
	}
}

func TestPreprocessorEndToEnd(t *testing.T) {
	cfg := DefaultVPConfig()
	cfg.GridW, cfg.GridH = 8, 4
	vp := NewPreprocessor(cfg)

	bgFrame := NewImage(64, 32)
	bgFrame.Fill(0.3)
	for i := 0; i < 5; i++ {
		if _, err := vp.Process(bgFrame); err != nil {
			t.Fatal(err)
		}
	}
	frame := bgFrame.Clone()
	frame.FillRect(40, 8, 52, 16, 0.95) // moving vehicle upper-right
	grid, err := vp.Process(frame)
	if err != nil {
		t.Fatal(err)
	}
	if grid.W != 8 || grid.H != 4 {
		t.Fatalf("grid size %dx%d", grid.W, grid.H)
	}
	// Occupancy should concentrate in the upper-right cells.
	upperRight := grid.At(5, 1) + grid.At(6, 1) + grid.At(5, 2) + grid.At(6, 2)
	if upperRight <= 0 {
		t.Fatalf("vehicle not visible in occupancy grid: %v", grid.Pix)
	}
	lowerLeft := grid.At(0, 3) + grid.At(1, 3)
	if lowerLeft != 0 {
		t.Fatalf("phantom occupancy in empty region: %v", grid.Pix)
	}
}

func TestPreprocessorReset(t *testing.T) {
	vp := NewPreprocessor(DefaultVPConfig())
	a := NewImage(32, 16)
	a.Fill(0.2)
	if _, err := vp.Process(a); err != nil {
		t.Fatal(err)
	}
	vp.Reset()
	// After reset the first frame re-primes: a totally different frame
	// must produce an empty mask, not a full-frame detection.
	b := NewImage(32, 16)
	b.Fill(0.9)
	grid, err := vp.Process(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range grid.Pix {
		if v != 0 {
			t.Fatal("first frame after Reset must prime, not detect")
		}
	}
}

func TestClipTensorLayout(t *testing.T) {
	g1 := NewImage(4, 2)
	g2 := NewImage(4, 2)
	g1.Set(1, 0, 0.5)
	g2.Set(3, 1, 0.75)
	clip, err := ClipTensor([]*Image{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if clip.Rank() != 4 || clip.Shape[0] != 1 || clip.Shape[1] != 2 || clip.Shape[2] != 2 || clip.Shape[3] != 4 {
		t.Fatalf("clip shape = %v", clip.Shape)
	}
	if clip.At(0, 0, 0, 1) != 0.5 {
		t.Fatal("frame 0 misplaced")
	}
	if clip.At(0, 1, 1, 3) != 0.75 {
		t.Fatal("frame 1 misplaced")
	}
	if _, err := ClipTensor(nil); err == nil {
		t.Fatal("expected empty-clip error")
	}
	if _, err := ClipTensor([]*Image{g1, NewImage(3, 2)}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestNoiseInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := NewImage(50, 50)
	im.Fill(0.5)
	im.AddGaussianNoise(rng, 0.1)
	if s := im.StdDev(); s < 0.05 || s > 0.2 {
		t.Fatalf("gaussian noise stddev = %v, want ≈0.1", s)
	}
	for _, v := range im.Pix {
		if v < 0 || v > 1 {
			t.Fatal("noise must be clamped to [0,1]")
		}
	}
	im2 := NewImage(50, 50)
	im2.Fill(0.5)
	im2.AddSaltPepper(rng, 0.1)
	extremes := 0
	for _, v := range im2.Pix {
		if v == 0 || v == 1 {
			extremes++
		}
	}
	if extremes == 0 {
		t.Fatal("salt-pepper noise added no extremes")
	}
}

func TestASCIIRender(t *testing.T) {
	im := NewImage(3, 2)
	im.Set(0, 0, 0)
	im.Set(1, 0, 0.5)
	im.Set(2, 0, 1)
	s := im.ASCII()
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("ASCII rendered %d lines, want 2", lines)
	}
	if s[0] != ' ' || s[2] != '@' {
		t.Fatalf("ASCII ramp endpoints wrong: %q", s)
	}
}

func TestFlipHorizontal(t *testing.T) {
	im := NewImage(4, 2)
	im.Set(0, 0, 0.1)
	im.Set(3, 1, 0.9)
	f := im.FlipHorizontal()
	if f.At(3, 0) != 0.1 || f.At(0, 1) != 0.9 {
		t.Fatalf("flip wrong: %v", f.Pix)
	}
	// Involution: flipping twice restores the original.
	ff := f.FlipHorizontal()
	for i := range im.Pix {
		if im.Pix[i] != ff.Pix[i] {
			t.Fatal("double flip must be identity")
		}
	}
}
