package vision

// Morphological operators on binary images (pixels are 0 or 1) with a
// square structuring element. The paper's VP module applies opening
// (erosion then dilation) to remove camera noise while preserving
// vehicle blobs: erosion deletes structureless specks, dilation
// restores the weakened vehicle silhouettes.

// Erode returns the binary erosion of im with a (2r+1)×(2r+1) square
// structuring element: a pixel survives only if its whole
// neighbourhood is set. Pixels outside the image count as unset, so
// blobs touching the border erode there too.
func Erode(im *Image, r int) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			keep := true
			for dy := -r; dy <= r && keep; dy++ {
				for dx := -r; dx <= r; dx++ {
					if im.At(x+dx, y+dy) < 0.5 {
						keep = false
						break
					}
				}
			}
			if keep {
				out.Pix[y*im.W+x] = 1
			}
		}
	}
	return out
}

// Dilate returns the binary dilation of im with a (2r+1)×(2r+1)
// square structuring element: a pixel is set if any neighbour is set.
func Dilate(im *Image, r int) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			hit := false
			for dy := -r; dy <= r && !hit; dy++ {
				for dx := -r; dx <= r; dx++ {
					if im.At(x+dx, y+dy) >= 0.5 {
						hit = true
						break
					}
				}
			}
			if hit {
				out.Pix[y*im.W+x] = 1
			}
		}
	}
	return out
}

// Open performs morphological opening: erosion followed by dilation
// with the same structuring element radius. Small specks (noise)
// vanish entirely; larger structures survive approximately unchanged.
func Open(im *Image, r int) *Image {
	return Dilate(Erode(im, r), r)
}

// Blob is a connected foreground region in a binary image.
type Blob struct {
	// Bounds is the tight bounding box of the region.
	Bounds Rect
	// Area is the number of set pixels in the region.
	Area int
	// CentroidX and CentroidY are the mean pixel coordinates.
	CentroidX, CentroidY float64
}

// ConnectedComponents labels 4-connected foreground regions of a
// binary image and returns one Blob per region, ordered by decreasing
// area. Regions smaller than minArea pixels are dropped.
func ConnectedComponents(im *Image, minArea int) []Blob {
	labels := make([]int32, len(im.Pix))
	var blobs []Blob
	// Iterative flood fill with an explicit stack: frames are small
	// (≈160×96) so allocation here is not a concern, and recursion
	// depth stays bounded.
	stack := make([][2]int, 0, 256)
	next := int32(0)
	for sy := 0; sy < im.H; sy++ {
		for sx := 0; sx < im.W; sx++ {
			if im.Pix[sy*im.W+sx] < 0.5 || labels[sy*im.W+sx] != 0 {
				continue
			}
			next++
			stack = append(stack[:0], [2]int{sx, sy})
			labels[sy*im.W+sx] = next
			b := Blob{Bounds: Rect{X0: sx, Y0: sy, X1: sx + 1, Y1: sy + 1}}
			sumX, sumY := 0, 0
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				x, y := p[0], p[1]
				b.Area++
				sumX += x
				sumY += y
				if x < b.Bounds.X0 {
					b.Bounds.X0 = x
				}
				if x+1 > b.Bounds.X1 {
					b.Bounds.X1 = x + 1
				}
				if y < b.Bounds.Y0 {
					b.Bounds.Y0 = y
				}
				if y+1 > b.Bounds.Y1 {
					b.Bounds.Y1 = y + 1
				}
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || nx >= im.W || ny < 0 || ny >= im.H {
						continue
					}
					idx := ny*im.W + nx
					if im.Pix[idx] >= 0.5 && labels[idx] == 0 {
						labels[idx] = next
						stack = append(stack, [2]int{nx, ny})
					}
				}
			}
			if b.Area >= minArea {
				b.CentroidX = float64(sumX) / float64(b.Area)
				b.CentroidY = float64(sumY) / float64(b.Area)
				blobs = append(blobs, b)
			}
		}
	}
	// Order by decreasing area (insertion sort: blob counts are tiny).
	for i := 1; i < len(blobs); i++ {
		for j := i; j > 0 && blobs[j].Area > blobs[j-1].Area; j-- {
			blobs[j], blobs[j-1] = blobs[j-1], blobs[j]
		}
	}
	return blobs
}
