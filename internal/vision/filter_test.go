package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMedianFilterRemovesSpeckle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := NewImage(30, 20)
	im.Fill(0.4)
	im.FillRect(8, 6, 18, 12, 0.9) // a vehicle
	im.AddSaltPepper(rng, 0.03)

	filtered := MedianFilter(im, 1)
	// Speckle is gone: no pure-extreme pixels outside the vehicle.
	for y := 0; y < 20; y++ {
		for x := 0; x < 30; x++ {
			if x >= 7 && x < 19 && y >= 5 && y < 13 {
				continue
			}
			v := filtered.At(x, y)
			if v == 0 || v == 1 {
				t.Fatalf("speckle survived at (%d,%d)", x, y)
			}
		}
	}
	// The vehicle's interior is preserved.
	if filtered.At(12, 9) < 0.8 {
		t.Fatalf("vehicle interior degraded: %v", filtered.At(12, 9))
	}
}

func TestMedianFilterZeroRadiusClones(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(1, 1, 0.7)
	out := MedianFilter(im, 0)
	if out.At(1, 1) != 0.7 {
		t.Fatal("r=0 must copy")
	}
	out.Set(1, 1, 0)
	if im.At(1, 1) != 0.7 {
		t.Fatal("r=0 must not alias the input")
	}
}

func TestOtsuThresholdBimodal(t *testing.T) {
	im := NewImage(20, 20)
	// Two clear modes: dark background, bright object.
	im.Fill(0.2)
	im.FillRect(5, 5, 15, 15, 0.8)
	th := OtsuThreshold(im)
	if th <= 0.2 || th >= 0.8 {
		t.Fatalf("Otsu threshold %v must separate the modes (0.2, 0.8)", th)
	}
	mask := im.Threshold(th)
	on := 0
	for _, v := range mask.Pix {
		if v >= 0.5 {
			on++
		}
	}
	if on != 100 {
		t.Fatalf("Otsu binarisation found %d pixels, want the 100 object pixels", on)
	}
}

func TestOtsuThresholdEdgeCases(t *testing.T) {
	if got := OtsuThreshold(NewImage(0, 0)); got != 0 {
		t.Fatalf("empty image threshold = %v", got)
	}
	flat := NewImage(5, 5)
	flat.Fill(0.5)
	th := OtsuThreshold(flat)
	if th < 0 || th > 1 {
		t.Fatalf("flat image threshold %v out of range", th)
	}
}

func TestIntegralImageKnownSums(t *testing.T) {
	im := NewImage(4, 3)
	for i := range im.Pix {
		im.Pix[i] = float64(i + 1) // 1..12
	}
	ii := NewIntegralImage(im)
	if got := ii.BoxSum(Rect{X0: 0, Y0: 0, X1: 4, Y1: 3}); got != 78 {
		t.Fatalf("full sum = %v, want 78", got)
	}
	if got := ii.BoxSum(Rect{X0: 1, Y0: 1, X1: 3, Y1: 2}); got != 6+7 {
		t.Fatalf("inner sum = %v, want 13", got)
	}
	// Clipping: out-of-bounds portions contribute nothing.
	if got := ii.BoxSum(Rect{X0: -5, Y0: -5, X1: 1, Y1: 1}); got != 1 {
		t.Fatalf("clipped sum = %v, want 1", got)
	}
	if got := ii.BoxMean(Rect{X0: 0, Y0: 0, X1: 2, Y1: 1}); got != 1.5 {
		t.Fatalf("mean = %v, want 1.5", got)
	}
	if got := ii.BoxMean(Rect{X0: 10, Y0: 10, X1: 12, Y1: 12}); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
}

// Property: integral-image box sums match brute-force sums.
func TestPropertyIntegralMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 3+rng.Intn(10), 3+rng.Intn(8)
		im := NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = rng.Float64()
		}
		ii := NewIntegralImage(im)
		r := Rect{X0: rng.Intn(w), Y0: rng.Intn(h)}
		r.X1 = r.X0 + 1 + rng.Intn(w-r.X0)
		r.Y1 = r.Y0 + 1 + rng.Intn(h-r.Y0)
		brute := 0.0
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				brute += im.At(x, y)
			}
		}
		return math.Abs(ii.BoxSum(r)-brute) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: median filtering is idempotent-ish on binary images —
// output values always come from the input's value set.
func TestPropertyMedianPreservesValueSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(10, 8)
		for i := range im.Pix {
			if rng.Float64() < 0.5 {
				im.Pix[i] = 1
			}
		}
		out := MedianFilter(im, 1)
		for _, v := range out.Pix {
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
