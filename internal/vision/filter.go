package vision

import "sort"

// MedianFilter returns the image with each pixel replaced by the
// median of its (2r+1)×(2r+1) neighbourhood (pixels outside the image
// are excluded, not zero-padded). Medians remove salt-and-pepper
// speckle — snowfall and dead pixels — without blurring vehicle
// edges the way a box filter would.
func MedianFilter(im *Image, r int) *Image {
	if r <= 0 {
		return im.Clone()
	}
	out := NewImage(im.W, im.H)
	window := make([]float64, 0, (2*r+1)*(2*r+1))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			window = window[:0]
			for dy := -r; dy <= r; dy++ {
				yy := y + dy
				if yy < 0 || yy >= im.H {
					continue
				}
				for dx := -r; dx <= r; dx++ {
					xx := x + dx
					if xx < 0 || xx >= im.W {
						continue
					}
					window = append(window, im.Pix[yy*im.W+xx])
				}
			}
			sort.Float64s(window)
			out.Pix[y*im.W+x] = window[len(window)/2]
		}
	}
	return out
}

// OtsuThreshold computes the Otsu binarisation level of an image: the
// threshold that maximises between-class variance of its intensity
// histogram. The VP pipeline can use it to auto-calibrate the
// foreground threshold per scene instead of a fixed constant, which
// matters when ambient light differs wildly (night vs fog).
func OtsuThreshold(im *Image) float64 {
	const bins = 256
	var hist [bins]int
	for _, v := range im.Pix {
		idx := int(v * (bins - 1))
		if idx < 0 {
			idx = 0
		} else if idx >= bins {
			idx = bins - 1
		}
		hist[idx]++
	}
	total := len(im.Pix)
	if total == 0 {
		return 0
	}
	sumAll := 0.0
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var (
		wB, wF  int
		sumB    float64
		bestVar float64
		bestBin int
	)
	for i := 0; i < bins; i++ {
		wB += hist[i]
		if wB == 0 {
			continue
		}
		wF = total - wB
		if wF == 0 {
			break
		}
		sumB += float64(i) * float64(hist[i])
		mB := sumB / float64(wB)
		mF := (sumAll - sumB) / float64(wF)
		between := float64(wB) * float64(wF) * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			bestBin = i
		}
	}
	// bestBin is the last background bin; return the boundary above it
	// so Threshold's v ≥ t test assigns that bin to the background.
	return (float64(bestBin) + 0.5) / (bins - 1)
}

// IntegralImage is a summed-area table enabling O(1) box sums, used
// for fast local statistics on larger frames.
type IntegralImage struct {
	w, h int
	sum  []float64
}

// NewIntegralImage builds the summed-area table of im.
func NewIntegralImage(im *Image) *IntegralImage {
	ii := &IntegralImage{w: im.W, h: im.H, sum: make([]float64, (im.W+1)*(im.H+1))}
	stride := im.W + 1
	for y := 0; y < im.H; y++ {
		rowSum := 0.0
		for x := 0; x < im.W; x++ {
			rowSum += im.Pix[y*im.W+x]
			ii.sum[(y+1)*stride+(x+1)] = ii.sum[y*stride+(x+1)] + rowSum
		}
	}
	return ii
}

// BoxSum returns the sum of pixels in the half-open rectangle
// [x0,x1)×[y0,y1), clipped to the image bounds.
func (ii *IntegralImage) BoxSum(r Rect) float64 {
	r = r.Intersect(Rect{X0: 0, Y0: 0, X1: ii.w, Y1: ii.h})
	if r.Empty() {
		return 0
	}
	stride := ii.w + 1
	a := ii.sum[r.Y0*stride+r.X0]
	b := ii.sum[r.Y0*stride+r.X1]
	c := ii.sum[r.Y1*stride+r.X0]
	d := ii.sum[r.Y1*stride+r.X1]
	return d - b - c + a
}

// BoxMean returns the mean intensity of the clipped rectangle, or 0
// when it is empty.
func (ii *IntegralImage) BoxMean(r Rect) float64 {
	clipped := r.Intersect(Rect{X0: 0, Y0: 0, X1: ii.w, Y1: ii.h})
	if clipped.Empty() {
		return 0
	}
	return ii.BoxSum(clipped) / float64(clipped.Area())
}
