// Package vision implements the image-processing substrate of
// SafeCross's video pre-processing (VP) module: grayscale images, a
// dynamic background model, background subtraction, mathematical
// morphology (erosion, dilation, opening), connected-component
// labelling, and the remapping of a camera frame into the compact 2-D
// occupancy representation fed to the video classifiers (Fig. 3 of
// the paper).
package vision

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Image is a grayscale image with float64 intensities in [0, 1],
// stored row-major.
type Image struct {
	// W and H are the image dimensions in pixels.
	W, H int
	// Pix holds H*W intensities, row-major.
	Pix []float64
}

// NewImage allocates a black (all-zero) image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y). Out-of-bounds reads return 0,
// which simplifies the windowed operators.
func (im *Image) At(x, y int) float64 {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set stores v at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Fill sets every pixel to v.
func (im *Image) Fill(v float64) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// Clamp limits all intensities to [0, 1].
func (im *Image) Clamp() {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
}

// Mean returns the mean intensity.
func (im *Image) Mean() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// StdDev returns the standard deviation of intensities.
func (im *Image) StdDev() float64 {
	m := im.Mean()
	s := 0.0
	for _, v := range im.Pix {
		d := v - m
		s += d * d
	}
	if len(im.Pix) == 0 {
		return 0
	}
	return math.Sqrt(s / float64(len(im.Pix)))
}

// FillRect paints the axis-aligned rectangle [x0,x1)×[y0,y1) with v,
// clipped to the image bounds.
func (im *Image) FillRect(x0, y0, x1, y1 int, v float64) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	for y := y0; y < y1; y++ {
		row := im.Pix[y*im.W:]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	}
}

// FlipHorizontal returns the image mirrored left-to-right. SafeCross
// uses it to retarget the framework at right-turn blind zones in
// left-driving countries — per the paper, "the difference is just the
// training data".
func (im *Image) FlipHorizontal() *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		dst := out.Pix[y*im.W : (y+1)*im.W]
		for x, v := range row {
			dst[im.W-1-x] = v
		}
	}
	return out
}

// AddGaussianNoise adds N(0, sigma) noise to every pixel and clamps
// to [0, 1]. This models the paper's low-quality decades-old cameras.
func (im *Image) AddGaussianNoise(rng *rand.Rand, sigma float64) {
	for i := range im.Pix {
		im.Pix[i] += rng.NormFloat64() * sigma
	}
	im.Clamp()
}

// AddSaltPepper sets a fraction p of pixels to either full white or
// full black; snow speckle and dead pixels both look like this.
func (im *Image) AddSaltPepper(rng *rand.Rand, p float64) {
	n := int(float64(len(im.Pix)) * p)
	for i := 0; i < n; i++ {
		idx := rng.Intn(len(im.Pix))
		if rng.Float64() < 0.5 {
			im.Pix[idx] = 1
		} else {
			im.Pix[idx] = 0
		}
	}
}

// AbsDiff returns |a - b| pixel-wise. The images must be the same
// size.
func AbsDiff(a, b *Image) (*Image, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("vision: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := NewImage(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = math.Abs(a.Pix[i] - b.Pix[i])
	}
	return out, nil
}

// Threshold returns a binary image: 1 where intensity ≥ t, else 0.
func (im *Image) Threshold(t float64) *Image {
	out := NewImage(im.W, im.H)
	for i, v := range im.Pix {
		if v >= t {
			out.Pix[i] = 1
		}
	}
	return out
}

// Downsample returns the image reduced by an integer factor using box
// averaging.
func (im *Image) Downsample(factor int) (*Image, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("vision: downsample factor %d must be positive", factor)
	}
	ow, oh := im.W/factor, im.H/factor
	if ow == 0 || oh == 0 {
		return nil, fmt.Errorf("vision: downsample factor %d too large for %dx%d", factor, im.W, im.H)
	}
	out := NewImage(ow, oh)
	inv := 1 / float64(factor*factor)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			s := 0.0
			for dy := 0; dy < factor; dy++ {
				row := im.Pix[(oy*factor+dy)*im.W:]
				for dx := 0; dx < factor; dx++ {
					s += row[ox*factor+dx]
				}
			}
			out.Pix[oy*ow+ox] = s * inv
		}
	}
	return out, nil
}

// ASCII renders the image as rows of characters from a 10-step
// intensity ramp, for terminal visualisation in the examples and
// cmd/safecross-bench figure output.
func (im *Image) ASCII() string {
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	b.Grow((im.W + 1) * im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.Pix[y*im.W+x]
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Rect is an axis-aligned pixel rectangle, half-open: [X0,X1)×[Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Width returns the rectangle width in pixels.
func (r Rect) Width() int { return r.X1 - r.X0 }

// Height returns the rectangle height in pixels.
func (r Rect) Height() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area in pixels.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the overlapping region of r and o (possibly
// empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: maxInt(r.X0, o.X0), Y0: maxInt(r.Y0, o.Y0),
		X1: minInt(r.X1, o.X1), Y1: minInt(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and o share any pixels.
func (r Rect) Overlaps(o Rect) bool { return !r.Intersect(o).Empty() }

// IoU returns the intersection-over-union of two rectangles.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	return float64(inter) / float64(union)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
