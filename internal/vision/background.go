package vision

import "fmt"

// BackgroundModel maintains a dynamic per-pixel background estimate
// with exponential forgetting, the "constantly updated background"
// the paper's VP module subtracts from each frame. A dynamic model
// tracks slow illumination drift that a static reference frame would
// misclassify as motion.
type BackgroundModel struct {
	// Alpha is the per-frame learning rate in (0, 1]; larger values
	// adapt faster but absorb slow-moving vehicles into the
	// background.
	Alpha float64

	bg     *Image
	primed bool
}

// NewBackgroundModel creates a background model with learning rate
// alpha. The first observed frame primes the model.
func NewBackgroundModel(alpha float64) *BackgroundModel {
	return &BackgroundModel{Alpha: alpha}
}

// Background returns a copy of the current background estimate, or
// nil if no frame has been observed yet.
func (m *BackgroundModel) Background() *Image {
	if !m.primed {
		return nil
	}
	return m.bg.Clone()
}

// Primed reports whether the model has observed at least one frame.
func (m *BackgroundModel) Primed() bool { return m.primed }

// Update folds a new frame into the background estimate.
func (m *BackgroundModel) Update(frame *Image) error {
	if !m.primed {
		m.bg = frame.Clone()
		m.primed = true
		return nil
	}
	if frame.W != m.bg.W || frame.H != m.bg.H {
		return fmt.Errorf("vision: frame %dx%d does not match background %dx%d",
			frame.W, frame.H, m.bg.W, m.bg.H)
	}
	a := m.Alpha
	for i, v := range frame.Pix {
		m.bg.Pix[i] = (1-a)*m.bg.Pix[i] + a*v
	}
	return nil
}

// Subtract returns the absolute difference between a frame and the
// current background, without updating the model. Call Update
// separately so callers control whether a frame is folded in before
// or after differencing.
func (m *BackgroundModel) Subtract(frame *Image) (*Image, error) {
	if !m.primed {
		return nil, fmt.Errorf("vision: background model not primed")
	}
	return AbsDiff(frame, m.bg)
}

// Foreground runs the full subtraction step the paper describes:
// difference against the dynamic background, threshold into a binary
// mask, then fold the frame into the background.
func (m *BackgroundModel) Foreground(frame *Image, threshold float64) (*Image, error) {
	if !m.primed {
		if err := m.Update(frame); err != nil {
			return nil, err
		}
		return NewImage(frame.W, frame.H), nil
	}
	diff, err := m.Subtract(frame)
	if err != nil {
		return nil, err
	}
	mask := diff.Threshold(threshold)
	if err := m.Update(frame); err != nil {
		return nil, err
	}
	return mask, nil
}
