package rsu

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultHandshakeTimeout bounds Dial's connect-plus-handshake: a
// vehicle approaching an intersection cannot wait indefinitely on an
// RSU that accepts the TCP connection but never answers the
// subscribe.
const DefaultHandshakeTimeout = 5 * time.Second

// Client is a vehicle-side connection to the RSU.
type Client struct {
	conn net.Conn
	msgs chan Message

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Dial connects to the RSU at addr, subscribes with the vehicle id,
// and waits for the welcome acknowledgement. The whole handshake is
// bounded by DefaultHandshakeTimeout.
func Dial(addr, vehicle string) (*Client, error) {
	return DialTimeout(addr, vehicle, DefaultHandshakeTimeout)
}

// DialTimeout is Dial with an explicit bound covering both the TCP
// connect and the subscribe/welcome exchange; a non-positive timeout
// waits forever.
func DialTimeout(addr, vehicle string, timeout time.Duration) (*Client, error) {
	if vehicle == "" {
		return nil, fmt.Errorf("rsu: empty vehicle id")
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("rsu: dial: %w", err)
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("rsu: handshake deadline: %w", err)
		}
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Message{Type: TypeSubscribe, Vehicle: vehicle}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("rsu: subscribe: %w", err)
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	var welcome Message
	if err := dec.Decode(&welcome); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("rsu: handshake: %w", err)
	}
	if welcome.Type != TypeWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("rsu: unexpected handshake reply %q", welcome.Type)
	}
	// The deadline only guards the handshake; the advisory stream is
	// long-lived.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("rsu: clear deadline: %w", err)
	}
	c := &Client{
		conn: conn,
		msgs: make(chan Message, clientQueueDepth),
		done: make(chan struct{}),
	}
	go c.readLoop(dec)
	return c, nil
}

// readLoop decodes server messages until the connection closes, then
// closes the message channel.
func (c *Client) readLoop(dec *json.Decoder) {
	defer close(c.done)
	defer close(c.msgs)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		select {
		case c.msgs <- msg:
		default:
			// The consumer is not draining; drop the oldest to keep
			// the newest advisory (staleness is worse than loss for a
			// real-time warning).
			select {
			case <-c.msgs:
			default:
			}
			select {
			case c.msgs <- msg:
			default:
			}
		}
	}
}

// Messages returns the advisory stream; the channel closes when the
// connection drops or Close is called.
func (c *Client) Messages() <-chan Message { return c.msgs }

// Close tears down the connection and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
