package rsu

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	randv2 "math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"safecross/internal/telemetry"
)

// DefaultHandshakeTimeout bounds Dial's connect-plus-handshake: a
// vehicle approaching an intersection cannot wait indefinitely on an
// RSU that accepts the TCP connection but never answers the
// subscribe.
const DefaultHandshakeTimeout = 5 * time.Second

// ErrHandshake reports a subscribe exchange that completed its I/O
// but did not yield a welcome (an unexpected reply, or a redirect a
// non-retrying client cannot follow). Dial errors caused by the
// network itself instead wrap the underlying net error, so callers
// can match both layers with errors.Is / errors.As.
var ErrHandshake = errors.New("rsu: handshake failed")

// ErrClientClosed reports that Close ended the client while it was
// connecting or waiting to reconnect.
var ErrClientClosed = errors.New("rsu: client closed")

// maxRedirectHops bounds how many consecutive redirects one attach
// attempt follows before the chain is treated as a failure (guards
// against two nodes pointing at each other during a reassignment
// window).
const maxRedirectHops = 8

// RetryConfig drives DialRetry: a client that survives node failures
// by reconnecting with exponential backoff and jitter, following
// redirects to whichever node currently owns its intersection.
type RetryConfig struct {
	// Seeds are the addresses to try, in rotation, when the client has
	// no better target (initial attach, or the last owner is gone). In
	// a fleet any live node can redirect, so any subset of node
	// addresses works.
	Seeds []string
	// Vehicle is the subscriber id.
	Vehicle string
	// Intersection narrows the subscription to one intersection's
	// advisories (fleet mode); 0 subscribes to everything.
	Intersection int
	// HandshakeTimeout bounds each connect-plus-subscribe attempt
	// (default DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// BackoffBase is the first retry delay (default 50ms). Each
	// failure doubles it up to BackoffMax (default 2s), and every
	// sleep is jittered into [d/2, d] so a fleet of vehicles does not
	// reconnect in lockstep.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay.
	BackoffMax time.Duration
	// MaxAttempts gives up after this many consecutive failed
	// attempts; 0 retries forever (until Close).
	MaxAttempts int
	// Logger, when set, records attach/redirect/backoff events.
	Logger *telemetry.Logger
	// Tracer, when set, records the vehicle's side of distributed
	// traces: advisories arriving with trace context get a linked
	// vehicle/recv segment (joining the frame's fleet-wide trace), and
	// sampled subscribe handshakes get a vehicle/attach segment whose
	// trace id travels on the wire so the node's join segment shares it.
	Tracer *telemetry.Tracer
	// TraceSample is the "one in N" subscribe-handshake sampling rate.
	// The decision is derived from the minted trace id (not a local
	// counter), so every process that sees the id agrees on it. 0
	// disables handshake traces; advisory joins are driven by the
	// sender's sampling decision instead.
	TraceSample int
}

// withDefaults fills zero fields.
func (cfg RetryConfig) withDefaults() RetryConfig {
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = cfg.BackoffBase
	}
	return cfg
}

// validate rejects unusable configurations.
func (cfg RetryConfig) validate() error {
	if cfg.Vehicle == "" {
		return fmt.Errorf("rsu: empty vehicle id")
	}
	if len(cfg.Seeds) == 0 {
		return fmt.Errorf("rsu: no seed addresses")
	}
	if cfg.Intersection < 0 {
		return fmt.Errorf("rsu: negative intersection %d", cfg.Intersection)
	}
	return nil
}

// Client is a vehicle-side connection to the RSU fleet. Clients from
// Dial/DialTimeout are bound to one connection and their message
// channel closes when it drops; clients from DialRetry own a
// reconnect loop and the channel closes only on Close or when the
// retry budget is exhausted.
type Client struct {
	msgs chan Message
	// stop ends the manager/reader; done confirms it exited. The
	// manager goroutine is the single owner of msgs: only it closes
	// the channel, exactly once, on its way out — Close never touches
	// it, so a Close racing the read loop cannot double-close.
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	retry *RetryConfig // nil for single-connection clients

	mu   sync.Mutex
	conn net.Conn // live connection, nil between retry attempts
	err  error    // terminal error (retry budget exhausted)

	attaches  atomic.Int64
	redirects atomic.Int64
}

func newClient(retry *RetryConfig) *Client {
	return &Client{
		msgs:  make(chan Message, clientQueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		retry: retry,
	}
}

// Dial connects to the RSU at addr, subscribes with the vehicle id,
// and waits for the welcome acknowledgement. The whole handshake is
// bounded by DefaultHandshakeTimeout.
func Dial(addr, vehicle string) (*Client, error) {
	return DialTimeout(addr, vehicle, DefaultHandshakeTimeout)
}

// DialTimeout is Dial with an explicit bound covering both the TCP
// connect and the subscribe/welcome exchange; a non-positive timeout
// waits forever. Errors wrap the underlying net error, so callers can
// errors.Is/As into them (connection refused, timeouts, …).
func DialTimeout(addr, vehicle string, timeout time.Duration) (*Client, error) {
	if vehicle == "" {
		return nil, fmt.Errorf("rsu: empty vehicle id")
	}
	conn, dec, _, _, err := dialSubscribe(addr, Message{Type: TypeSubscribe, Vehicle: vehicle}, timeout)
	if err != nil {
		return nil, err
	}
	c := newClient(nil)
	c.setConn(conn)
	c.attaches.Add(1)
	go func() {
		defer close(c.done)
		defer close(c.msgs)
		c.stream(conn, dec)
		c.setConn(nil)
	}()
	return c, nil
}

// DialRetry connects to the fleet described by cfg and keeps the
// subscription alive across node failures: the first attach happens
// synchronously (retrying within cfg's budget), then a manager
// goroutine follows redirects and reconnects with exponential backoff
// and jitter whenever the connection drops. Welcome and redirect
// messages are delivered on Messages alongside advisories, so
// consumers can observe re-attachments.
func DialRetry(cfg RetryConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := newClient(&cfg)
	conn, dec, welcome, err := c.connect("")
	if err != nil {
		close(c.done)
		close(c.msgs)
		return nil, err
	}
	c.deliver(welcome)
	go c.manage(conn, dec)
	return c, nil
}

// dialSubscribe performs one connect-plus-subscribe exchange with the
// given subscribe message (callers stamp trace context onto it when
// the handshake is sampled). On a welcome it returns the live
// connection with its decoder and the welcome message; on a redirect
// reply it returns the target address with a non-nil error wrapping
// ErrHandshake.
func dialSubscribe(addr string, sub Message, timeout time.Duration) (net.Conn, *json.Decoder, Message, string, error) {
	var none Message
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, none, "", fmt.Errorf("rsu: dial %s: %w", addr, err)
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			_ = conn.Close()
			return nil, nil, none, "", fmt.Errorf("rsu: handshake deadline: %w", err)
		}
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(sub); err != nil {
		_ = conn.Close()
		return nil, nil, none, "", fmt.Errorf("rsu: subscribe: %w", err)
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	var reply Message
	if err := dec.Decode(&reply); err != nil {
		_ = conn.Close()
		return nil, nil, none, "", fmt.Errorf("rsu: handshake: %w", err)
	}
	switch reply.Type {
	case TypeWelcome:
		// The deadline only guards the handshake; the advisory stream
		// is long-lived.
		if err := conn.SetDeadline(time.Time{}); err != nil {
			_ = conn.Close()
			return nil, nil, none, "", fmt.Errorf("rsu: clear deadline: %w", err)
		}
		return conn, dec, reply, "", nil
	case TypeRedirect:
		_ = conn.Close()
		return nil, nil, none, reply.Addr, fmt.Errorf("%w: %s redirects intersection %d to %q", ErrHandshake, addr, reply.Intersection, reply.Addr)
	default:
		_ = conn.Close()
		return nil, nil, none, "", fmt.Errorf("%w: unexpected reply %q", ErrHandshake, reply.Type)
	}
}

// connect attaches to the fleet: preferred first (a redirect target),
// then the seeds in rotation, backing off exponentially with jitter
// between consecutive failures. It returns ErrClientClosed when Close
// interrupts the wait, or the last attempt's error once MaxAttempts
// consecutive failures accumulate.
func (c *Client) connect(preferred string) (net.Conn, *json.Decoder, Message, error) {
	cfg := c.retry
	var none Message
	var (
		failures int
		seedIdx  int
		hops     int
		lastErr  error
	)
	delay := cfg.BackoffBase
	next := preferred
	for {
		select {
		case <-c.stop:
			return nil, nil, none, ErrClientClosed
		default:
		}
		addr := next
		next = ""
		if addr == "" {
			addr = cfg.Seeds[seedIdx%len(cfg.Seeds)]
			seedIdx++
		}
		sub := Message{Type: TypeSubscribe, Vehicle: cfg.Vehicle, Intersection: cfg.Intersection}
		var attachTrace *telemetry.Trace
		if cfg.Tracer != nil && cfg.TraceSample > 0 {
			// The sampling decision belongs to the minted id, not this
			// process: the node receiving the stamped subscribe reaches
			// the same verdict from the same id.
			if id := telemetry.NewTraceID(); id.Sampled(cfg.TraceSample) {
				attachTrace = cfg.Tracer.StartLinked("vehicle/attach", id, "")
				sub = sub.WithTraceContext(id, "attach")
			}
		}
		attachStart := time.Now()
		conn, dec, welcome, redirect, err := dialSubscribe(addr, sub, cfg.HandshakeTimeout)
		attachNow := time.Now()
		attachTrace.Span("attach", attachStart, attachNow)
		if err == nil {
			attachTrace.Terminal("attached", attachNow)
			attachTrace.Finish()
			c.attaches.Add(1)
			cfg.Logger.Infof("rsu: vehicle %q attached to %s (intersection %d)", cfg.Vehicle, addr, cfg.Intersection)
			return conn, dec, welcome, nil
		}
		attachTrace.Terminal("error", attachNow)
		attachTrace.Finish()
		lastErr = err
		if redirect != "" {
			c.redirects.Add(1)
			hops++
			if hops <= maxRedirectHops {
				// Following a redirect is progress, not a failure: go
				// straight to the named owner.
				next = redirect
				continue
			}
			// A redirect loop; fall through and treat it as a failure.
		}
		hops = 0
		failures++
		if cfg.MaxAttempts > 0 && failures >= cfg.MaxAttempts {
			return nil, nil, none, fmt.Errorf("rsu: giving up after %d attempts: %w", failures, lastErr)
		}
		// Jitter into [delay/2, delay] so reconnect storms spread out.
		sleep := delay/2 + randv2.N(delay/2+1)
		cfg.Logger.Debugf("rsu: vehicle %q attach to %s failed (%v); retrying in %v", cfg.Vehicle, addr, err, sleep)
		select {
		case <-time.After(sleep):
		case <-c.stop:
			return nil, nil, none, ErrClientClosed
		}
		if delay *= 2; delay > cfg.BackoffMax {
			delay = cfg.BackoffMax
		}
	}
}

// manage owns the retry client's lifecycle: pump the current
// connection, then reconnect (following any in-stream redirect)
// until Close or the retry budget runs out. It is the sole closer of
// the messages channel.
func (c *Client) manage(conn net.Conn, dec *json.Decoder) {
	defer close(c.done)
	defer close(c.msgs)
	for {
		redirect := c.stream(conn, dec)
		_ = conn.Close()
		c.setConn(nil)
		select {
		case <-c.stop:
			return
		default:
		}
		var welcome Message
		var err error
		conn, dec, welcome, err = c.connect(redirect)
		if err != nil {
			c.mu.Lock()
			c.err = err
			c.mu.Unlock()
			c.retry.Logger.Warnf("rsu: vehicle %q detached for good: %v", c.retry.Vehicle, err)
			return
		}
		c.deliver(welcome)
	}
}

// stream decodes messages until the connection fails, delivering each
// to the consumer. It returns the target address of an in-stream
// redirect (the server's planned-handoff signal) for retry clients,
// or "" when the stream just ended.
func (c *Client) stream(conn net.Conn, dec *json.Decoder) string {
	c.setConn(conn)
	var tracer *telemetry.Tracer
	if c.retry != nil {
		tracer = c.retry.Tracer
	}
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return ""
		}
		recvAt := time.Now()
		c.deliver(msg)
		if tracer != nil {
			// A message stamped with trace context joins the sender's
			// distributed trace: this segment is the vehicle end of the
			// frame's journey, hung under the remote parent span.
			if id, parentSpan := msg.TraceContext(); id != 0 {
				done := time.Now()
				tr := tracer.StartLinked("vehicle/recv/"+msg.Type, id, parentSpan)
				tr.Span("recv", recvAt, done)
				tr.Terminal("delivered", done)
				tr.Finish()
			}
		}
		if c.retry != nil && msg.Type == TypeRedirect && msg.Addr != "" {
			return msg.Addr
		}
	}
}

// deliver hands one message to the consumer, dropping the oldest when
// the channel is full (staleness is worse than loss for a real-time
// warning).
func (c *Client) deliver(msg Message) {
	select {
	case c.msgs <- msg:
	default:
		select {
		case <-c.msgs:
		default:
		}
		select {
		case c.msgs <- msg:
		default:
		}
	}
}

// setConn records the live connection so Close can cut it.
func (c *Client) setConn(conn net.Conn) {
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
}

// Messages returns the advisory stream. For single-connection clients
// the channel closes when the connection drops or Close is called;
// for retry clients it stays open across reconnects and closes only
// on Close or when the retry budget is exhausted.
func (c *Client) Messages() <-chan Message { return c.msgs }

// Reconnects returns how many times a retry client re-attached after
// its initial subscribe (0 for single-connection clients).
func (c *Client) Reconnects() int64 {
	if n := c.attaches.Load(); n > 1 {
		return n - 1
	}
	return 0
}

// Redirects returns how many redirects the client has followed.
func (c *Client) Redirects() int64 { return c.redirects.Load() }

// Err returns the terminal error that ended a retry client's
// reconnect loop, or nil.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the client down and waits for its goroutine to exit.
// Safe to call multiple times and concurrently with connection drops:
// the message channel is owned and closed exactly once by the
// manager/reader goroutine, never by Close.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
	})
	<-c.done
	return nil
}
