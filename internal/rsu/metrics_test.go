package rsu

import (
	"strings"
	"testing"
	"time"

	"safecross/internal/telemetry"
)

// TestServerMetrics subscribes one healthy and one stalled vehicle,
// broadcasts past the stalled client's queue depth, and checks the
// registry counts subscriptions, enqueues, the eviction, and a
// broadcast-latency histogram matching the broadcast count.
func TestServerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	healthy, err := Dial(srv.Addr(), "veh-healthy")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	go func() { // drain so the healthy client never stalls
		for range healthy.Messages() {
		}
	}()
	stalledSubscriber(t, srv.Addr())
	waitFor(t, func() bool { return srv.Subscribers() == 2 })

	// Bloated messages fill the stalled connection's TCP buffer so its
	// handler blocks and its queue overflows, forcing the eviction
	// (same recipe as TestBroadcastEvictsStalledSubscribers).
	big := Message{Type: TypeAdvisory, Vehicle: strings.Repeat("x", 1<<16)}
	n := 0
	for i := 0; i < 2000 && srv.Subscribers() > 1; i++ {
		srv.Broadcast(big)
		n++
		time.Sleep(time.Millisecond)
	}
	waitFor(t, func() bool { return srv.Subscribers() == 1 })

	snap := reg.Snapshot()
	if got := snap.Value("rsu_subscribed_total"); got != 2 {
		t.Fatalf("subscribed = %d, want 2", got)
	}
	if got := snap.Value("rsu_broadcasts_total"); got != int64(n) {
		t.Fatalf("broadcasts = %d, want %d", got, n)
	}
	if got := snap.Value("rsu_slow_subscriber_evictions_total"); got < 1 {
		t.Fatalf("evictions = %d, want >= 1", got)
	}
	// The façade must agree with the registry.
	st := srv.Stats()
	if int64(st.Dropped) != snap.Value("rsu_slow_subscriber_evictions_total") ||
		int64(st.Enqueued) != snap.Value("rsu_enqueued_total") {
		t.Fatalf("Stats façade %+v disagrees with registry snapshot", st)
	}

	h := reg.FindHistogram("rsu_broadcast_seconds")
	if h == nil || h.Count() != int64(n) {
		t.Fatalf("broadcast histogram count = %d, want %d", h.Count(), n)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rsu_broadcast_seconds_count", "rsu_subscribers 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, sb.String())
		}
	}
}

// TestServerWithoutRegistryKeepsStats checks the unwired server still
// counts via its private registry: the Stats façade works without
// WithMetrics.
func TestServerWithoutRegistryKeepsStats(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "veh-1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitFor(t, func() bool { return srv.Subscribers() == 1 })
	srv.Broadcast(Message{Type: TypeAdvisory, Frame: 2, Scene: "day", Safe: true})
	st := srv.Stats()
	if st.Subscribed != 1 || st.Broadcasts != 1 || st.Enqueued != 1 {
		t.Fatalf("unwired Stats = %+v", st)
	}
}
