package rsu

import (
	"encoding/json"
	"strings"
	"testing"

	"safecross/internal/safecross"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
)

// Trace context rides every frame type as optional fields, but what
// does arrive must be well-formed: Validate rejects malformed ids,
// orphaned parent spans, and oversized parents before the message is
// acted on.
func TestMessageValidateTraceContext(t *testing.T) {
	id := telemetry.NewTraceID()
	ok := func(m Message) Message { return m }
	tests := []struct {
		name    string
		msg     Message
		wantErr bool
	}{
		{name: "advisory-with-context", msg: ok(Message{Type: TypeAdvisory}.WithTraceContext(id, "broadcast"))},
		{name: "subscribe-with-context", msg: ok(Message{Type: TypeSubscribe, Vehicle: "v1"}.WithTraceContext(id, "attach"))},
		{name: "heartbeat-with-context", msg: ok(HeartbeatMessage("node-a", "127.0.0.1:9", 3).WithTraceContext(id, "hb"))},
		{name: "context-without-parent", msg: Message{Type: TypeAdvisory, TraceID: id.String()}},
		{name: "malformed-trace-id", msg: Message{Type: TypeAdvisory, TraceID: "not-hex-not-16"}, wantErr: true},
		{name: "short-trace-id", msg: Message{Type: TypeAdvisory, TraceID: "abc"}, wantErr: true},
		{name: "zero-trace-id", msg: Message{Type: TypeAdvisory, TraceID: "0000000000000000"}, wantErr: true},
		{name: "parent-without-id", msg: Message{Type: TypeAdvisory, ParentSpan: "broadcast"}, wantErr: true},
		{name: "oversized-parent", msg: Message{Type: TypeAdvisory, TraceID: id.String(), ParentSpan: strings.Repeat("x", 129)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.msg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	id := telemetry.NewTraceID()
	msg := IntersectionAdvisory(3, 7, &safecross.Decision{Ready: true, Safe: true, Scene: sim.Rain}).WithTraceContext(id, "broadcast")
	gotID, gotParent := msg.TraceContext()
	if gotID != id || gotParent != "broadcast" {
		t.Fatalf("TraceContext = (%v, %q), want (%v, broadcast)", gotID, gotParent, id)
	}

	// The context survives the wire.
	data, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var back Message
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if backID, backParent := back.TraceContext(); backID != id || backParent != "broadcast" {
		t.Fatalf("wire round trip lost context: (%v, %q)", backID, backParent)
	}

	// A zero id strips context entirely — the message travels untraced
	// and the json stays free of empty trace fields.
	stripped := msg.WithTraceContext(0, "ignored")
	if stripped.TraceID != "" || stripped.ParentSpan != "" {
		t.Fatalf("zero id did not strip context: %+v", stripped)
	}
	data, _ = json.Marshal(stripped)
	if strings.Contains(string(data), "trace_id") || strings.Contains(string(data), "parent_span") {
		t.Fatalf("stripped message still carries trace fields on the wire: %s", data)
	}

	// Malformed context on an unvalidated message degrades to untraced
	// rather than poisoning the receiver.
	if gotID, gotParent := (Message{Type: TypeAdvisory, TraceID: "zzz"}).TraceContext(); gotID != 0 || gotParent != "" {
		t.Fatalf("malformed context decoded to (%v, %q), want (0, \"\")", gotID, gotParent)
	}
}

// An untraced message yields a zero context, and the zero context
// starts no linked trace on a nil tracer — the no-trace path costs
// nothing end to end.
func TestTraceContextAbsent(t *testing.T) {
	if id, parent := (Message{Type: TypeAdvisory}).TraceContext(); id != 0 || parent != "" {
		t.Fatalf("absent context = (%v, %q)", id, parent)
	}
	var tr *telemetry.Tracer
	if got := tr.StartLinked("x", 0, ""); got != nil {
		t.Fatal("nil tracer started a trace")
	}
}
