package rsu

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzMessageRoundTrip feeds arbitrary bytes through the wire path
// every coordinator and node runs on each inbound frame: decode,
// validate, and — for messages that validate — re-encode. The
// properties under test:
//
//   - decode + Validate never panic, whatever the bytes;
//   - a message that validates still validates after one
//     encode/decode round trip (validation is stable under
//     re-encoding, so a relayed frame is never rejected downstream);
//   - encoding is a canonicalisation fixed point: encoding the decoded
//     form twice yields identical bytes, and the second decode equals
//     the first (no field silently mutates in flight).
//
// The committed corpus under testdata/fuzz/FuzzMessageRoundTrip seeds
// the interesting frame shapes: trace-context-stamped subscribes and
// advisories, replicate frames with commit watermarks, vote/ack
// ballots, and the malformed variants of each.
func FuzzMessageRoundTrip(f *testing.F) {
	seeds := []string{
		`{"type":"subscribe","vehicle":"veh-1","intersection":3}`,
		`{"type":"subscribe","vehicle":"veh-1","trace_id":"4bf92f3577b34da6","parent_span":"join"}`,
		`{"type":"subscribe","vehicle":"veh-1","trace_id":"zz"}`,
		`{"type":"advisory","frame":12,"ready":true,"safe":false,"scene":"rainy","intersection":2,"trace_id":"00f067aa0ba902b7","parent_span":"broadcast"}`,
		`{"type":"advisory","parent_span":"orphaned"}`,
		`{"type":"heartbeat","node":"node-0","addr":"127.0.0.1:9000","epoch":4,"debug_addr":"127.0.0.1:9100","draining":true}`,
		`{"type":"assign","epoch":7,"owned":[1,2,3],"table":{"1":"127.0.0.1:9000","2":"127.0.0.1:9001"}}`,
		`{"type":"redirect","intersection":5,"addr":"127.0.0.1:9001","epoch":9}`,
		`{"type":"replicate","term":3,"epoch":11,"commit":10,"primary":"127.0.0.1:7000","seeds":["127.0.0.1:7000","127.0.0.1:7001"],"owned":[0,1],"owners":{"0":"node-0","1":"node-1"},"members":[{"node":"node-0","addr":"127.0.0.1:9000","state":"live"},{"node":"node-1","state":"dead"}]}`,
		`{"type":"replicate","term":1,"epoch":2,"commit":3,"primary":"p","seeds":["p"]}`,
		`{"type":"vote","addr":"127.0.0.1:7001","term":2,"epoch":11}`,
		`{"type":"vote","addr":"127.0.0.1:7001","term":1}`,
		`{"type":"ack","granted":true,"term":2,"epoch":11}`,
		`{"type":"ack","term":-1}`,
		`{"type":"promote","addr":"127.0.0.1:7001","term":2,"epoch":11}`,
		`{"type":"stats","served":100,"rejected":3,"p99Micros":1500}`,
		`{"type":"welcome","vehicle":"veh-1","addr":"127.0.0.1:9000"}`,
		`{"type":"switch","scene":"snowy","method":"pipelined","switchMicros":42}`,
		`{"type":"mystery"}`,
		`{"type":"replicate","term":3,"epoch":11,"commit":10,"primary":"127.0.0.1:7000"}`,
		`not json at all`,
		`{"type":"subscribe","vehicle":"veh-1"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var msg Message
		if err := json.Unmarshal(data, &msg); err != nil {
			return // not a frame; the decoder rejecting it IS the contract
		}
		if msg.Validate() != nil {
			return // invalid frames only need to be rejected, not round-tripped
		}
		first, err := json.Marshal(msg)
		if err != nil {
			t.Fatalf("valid message failed to encode: %v", err)
		}
		var second Message
		if err := json.Unmarshal(first, &second); err != nil {
			t.Fatalf("own encoding failed to decode: %v\nencoding: %s", err, first)
		}
		if err := second.Validate(); err != nil {
			t.Fatalf("message became invalid after one round trip: %v\nencoding: %s", err, first)
		}
		// The first decode may hold non-nil empty maps/slices that
		// omitempty drops, so canonical-form equality is asserted
		// between the second and third generations.
		canon, err := json.Marshal(second)
		if err != nil {
			t.Fatalf("canonical form failed to encode: %v", err)
		}
		var third Message
		if err := json.Unmarshal(canon, &third); err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		if !reflect.DeepEqual(second, third) {
			t.Fatalf("round trip is not a fixed point:\nsecond: %#v\nthird:  %#v", second, third)
		}
	})
}
