package rsu

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"safecross/internal/telemetry"
)

// Server is the RSU broadcast endpoint. It accepts vehicle
// subscriptions and fans advisory/switch messages out to all
// subscribers. Slow subscribers are disconnected rather than allowed
// to stall the broadcast path (an RSU must stay real-time).
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	clients map[*clientConn]struct{}
	closed  bool

	log     *telemetry.Logger
	metrics serverMetrics

	wg sync.WaitGroup
}

// serverMetrics are the server's telemetry handles. Counters replace
// the old mutex-guarded Stats fields (the Stats struct survives as a
// façade computed from them), and the broadcast histogram times each
// fan-out — the tail of the warning path after a verdict. All handles
// are nil-safe, so an unwired server records nowhere.
type serverMetrics struct {
	subscribed *telemetry.Counter
	broadcasts *telemetry.Counter
	enqueued   *telemetry.Counter
	dropped    *telemetry.Counter
	latency    *telemetry.Histogram
}

// ServerOption configures Listen.
type ServerOption interface {
	apply(*Server)
}

type serverMetricsOption struct{ reg *telemetry.Registry }

func (o serverMetricsOption) apply(s *Server) {
	if o.reg == nil {
		return
	}
	s.metrics = serverMetrics{
		subscribed: o.reg.Counter("rsu_subscribed_total", "successful vehicle subscriptions"),
		broadcasts: o.reg.Counter("rsu_broadcasts_total", "broadcast calls"),
		enqueued:   o.reg.Counter("rsu_enqueued_total", "messages placed on client queues"),
		dropped:    o.reg.Counter("rsu_slow_subscriber_evictions_total", "slow subscribers disconnected for a full queue"),
		latency:    o.reg.Histogram("rsu_broadcast_seconds", "broadcast fan-out latency (enqueue to all subscribers)", telemetry.UnitSeconds),
	}
	o.reg.GaugeFunc("rsu_subscribers", "currently connected vehicles", func() int64 {
		return int64(s.Subscribers())
	})
}

// WithMetrics wires the server's subscription, broadcast fan-out, and
// slow-subscriber eviction telemetry into a registry.
func WithMetrics(reg *telemetry.Registry) ServerOption { return serverMetricsOption{reg: reg} }

type serverLoggerOption struct{ log *telemetry.Logger }

func (o serverLoggerOption) apply(s *Server) { s.log = o.log }

// WithLogger sets the server's leveled logger. The default (nil)
// discards everything, so tests and embedders stay quiet unless they
// opt in.
func WithLogger(log *telemetry.Logger) ServerOption { return serverLoggerOption{log: log} }

// Stats counts server activity since start.
type Stats struct {
	// Subscribed is the total number of successful subscriptions.
	Subscribed int
	// Broadcasts is the number of Broadcast calls.
	Broadcasts int
	// Enqueued is the number of messages placed on client queues.
	Enqueued int
	// Dropped is the number of slow clients disconnected for a full
	// queue.
	Dropped int
}

// clientConn is one subscribed vehicle connection.
type clientConn struct {
	vehicle string
	conn    net.Conn
	out     chan Message
	stop    chan struct{}
}

// clientQueueDepth bounds the per-client outbound queue; a vehicle
// that falls this far behind is cut off.
const clientQueueDepth = 64

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rsu: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		clients: make(map[*clientConn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	if s.metrics.subscribed == nil {
		// Stats() is computed from the counters, so an unwired server
		// still needs them — back them with a private registry.
		serverMetricsOption{reg: telemetry.NewRegistry()}.apply(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Subscribers returns the number of connected vehicles.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle performs the subscribe handshake and then streams the
// client's outbound queue.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	reader := bufio.NewReader(conn)
	dec := json.NewDecoder(reader)
	var sub Message
	if err := dec.Decode(&sub); err != nil || sub.Type != TypeSubscribe || sub.Validate() != nil {
		_ = conn.Close()
		return
	}
	c := &clientConn{
		vehicle: sub.Vehicle,
		conn:    conn,
		out:     make(chan Message, clientQueueDepth),
		stop:    make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.clients[c] = struct{}{}
	s.metrics.subscribed.Inc()
	s.mu.Unlock()
	s.log.Infof("rsu: vehicle %q subscribed from %s", c.vehicle, conn.RemoteAddr())

	enc := json.NewEncoder(conn)
	if err := enc.Encode(Message{Type: TypeWelcome, Vehicle: c.vehicle}); err != nil {
		s.drop(c)
		return
	}
	for {
		select {
		case msg := <-c.out:
			if err := enc.Encode(msg); err != nil {
				s.drop(c)
				return
			}
		case <-c.stop:
			_ = conn.Close()
			return
		}
	}
}

// drop removes a client and closes its connection.
func (s *Server) drop(c *clientConn) {
	s.mu.Lock()
	if _, ok := s.clients[c]; ok {
		delete(s.clients, c)
		close(c.stop)
	}
	s.mu.Unlock()
	_ = c.conn.Close()
}

// Broadcast enqueues a message to every subscriber, disconnecting any
// whose queue is full. The fan-out latency — lock to last enqueue,
// including evictions of stalled subscribers — lands in the
// rsu_broadcast_seconds histogram.
func (s *Server) Broadcast(msg Message) {
	start := time.Now()
	s.mu.Lock()
	s.metrics.broadcasts.Inc()
	var overloaded []*clientConn
	for c := range s.clients {
		select {
		case c.out <- msg:
			s.metrics.enqueued.Inc()
		default:
			s.metrics.dropped.Inc()
			overloaded = append(overloaded, c)
		}
	}
	s.mu.Unlock()
	for _, c := range overloaded {
		s.log.Warnf("rsu: evicting slow subscriber %q (queue full at %d)", c.vehicle, clientQueueDepth)
		s.drop(c)
	}
	s.metrics.latency.ObserveDuration(time.Since(start))
}

// Stats returns a snapshot of server activity counters. It is a
// façade over the telemetry counters, which are the single source of
// truth whether or not the server was wired to an external registry.
func (s *Server) Stats() Stats {
	return Stats{
		Subscribed: int(s.metrics.subscribed.Value()),
		Broadcasts: int(s.metrics.broadcasts.Value()),
		Enqueued:   int(s.metrics.enqueued.Value()),
		Dropped:    int(s.metrics.dropped.Value()),
	}
}

// Close stops accepting, disconnects all subscribers, and waits for
// every goroutine to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clients := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.clients = make(map[*clientConn]struct{})
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range clients {
		close(c.stop)
		_ = c.conn.Close()
	}
	s.wg.Wait()
	return err
}
