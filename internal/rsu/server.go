package rsu

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"safecross/internal/telemetry"
)

// Server is the RSU broadcast endpoint. It accepts vehicle
// subscriptions and fans advisory/switch messages out to all
// subscribers. Slow subscribers are disconnected rather than allowed
// to stall the broadcast path (an RSU must stay real-time).
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	clients map[*clientConn]struct{}
	closed  bool

	// Fleet routing view, pushed by a node agent via SetRoutes. When
	// owned is nil the server is standalone and accepts every
	// subscription; otherwise a subscribe for an intersection outside
	// owned is answered with a redirect to the owner from table.
	routeEpoch int64
	owned      map[int]bool
	table      map[int]string

	log     *telemetry.Logger
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	metrics serverMetrics

	wg sync.WaitGroup
}

// serverMetrics are the server's telemetry handles. Counters replace
// the old mutex-guarded Stats fields (the Stats struct survives as a
// façade computed from them), and the broadcast histogram times each
// fan-out — the tail of the warning path after a verdict. All handles
// are nil-safe, so an unwired server records nowhere.
type serverMetrics struct {
	subscribed *telemetry.Counter
	broadcasts *telemetry.Counter
	enqueued   *telemetry.Counter
	dropped    *telemetry.Counter
	redirects  *telemetry.Counter
	latency    *telemetry.Histogram
}

// ServerOption configures Listen.
type ServerOption interface {
	apply(*Server)
}

type serverMetricsOption struct{ reg *telemetry.Registry }

func (o serverMetricsOption) apply(s *Server) {
	if o.reg == nil {
		return
	}
	s.reg = o.reg
	s.metrics = serverMetrics{
		subscribed: o.reg.Counter("rsu_subscribed_total", "successful vehicle subscriptions"),
		broadcasts: o.reg.Counter("rsu_broadcasts_total", "broadcast calls"),
		enqueued:   o.reg.Counter("rsu_enqueued_total", "messages placed on client queues"),
		dropped:    o.reg.Counter("rsu_slow_subscriber_evictions_total", "slow subscribers disconnected for a full queue"),
		redirects:  o.reg.Counter("rsu_redirects_total", "vehicles redirected to another node (wrong-node subscribes plus shard handoffs)"),
		latency:    o.reg.Histogram("rsu_broadcast_seconds", "broadcast fan-out latency (enqueue to all subscribers)", telemetry.UnitSeconds),
	}
	o.reg.GaugeFunc("rsu_subscribers", "currently connected vehicles", func() int64 {
		return int64(s.Subscribers())
	})
}

// WithMetrics wires the server's subscription, broadcast fan-out, and
// slow-subscriber eviction telemetry into a registry.
func WithMetrics(reg *telemetry.Registry) ServerOption { return serverMetricsOption{reg: reg} }

type serverLoggerOption struct{ log *telemetry.Logger }

func (o serverLoggerOption) apply(s *Server) { s.log = o.log }

// WithLogger sets the server's leveled logger. The default (nil)
// discards everything, so tests and embedders stay quiet unless they
// opt in.
func WithLogger(log *telemetry.Logger) ServerOption { return serverLoggerOption{log: log} }

type serverTracerOption struct{ tracer *telemetry.Tracer }

func (o serverTracerOption) apply(s *Server) { s.tracer = o.tracer }

// WithTracer lets the server join distributed traces: a subscribe
// stamped with trace context records an rsu/subscribe segment under
// the vehicle's trace ID, so the fleet stitcher sees the handshake
// land on this node.
func WithTracer(tracer *telemetry.Tracer) ServerOption { return serverTracerOption{tracer: tracer} }

// Stats counts server activity since start.
type Stats struct {
	// Subscribed is the total number of successful subscriptions.
	Subscribed int
	// Broadcasts is the number of Broadcast calls.
	Broadcasts int
	// Enqueued is the number of messages placed on client queues.
	Enqueued int
	// Dropped is the number of slow clients disconnected for a full
	// queue.
	Dropped int
	// Redirects is the number of vehicles pointed at another node
	// (wrong-node subscribes plus shard handoffs).
	Redirects int
}

// outMsg is one queued outbound message; last marks a targeted
// redirect after which the connection is torn down (the writer flushes
// it first, so the vehicle always learns where to go before the drop).
type outMsg struct {
	msg  Message
	last bool
}

// clientConn is one subscribed vehicle connection. watch > 0 narrows
// the advisory stream to one intersection (fleet vehicles subscribe
// per intersection); 0 receives everything (legacy single-node mode).
type clientConn struct {
	vehicle string
	watch   int
	conn    net.Conn
	out     chan outMsg
	stop    chan struct{}
}

// clientQueueDepth bounds the per-client outbound queue; a vehicle
// that falls this far behind is cut off.
const clientQueueDepth = 64

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rsu: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		clients: make(map[*clientConn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	if s.metrics.subscribed == nil {
		// Stats() is computed from the counters, so an unwired server
		// still needs them — back them with a private registry.
		serverMetricsOption{reg: telemetry.NewRegistry()}.apply(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Subscribers returns the number of connected vehicles.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// SetRoutes installs the fleet routing view: the intersections this
// node owns and the full intersection→owner-address table, stamped
// with the assignment epoch. Stale epochs (≤ the installed one) are
// ignored, so out-of-order pushes cannot roll the view backwards. A
// server with no routes set accepts every subscription.
func (s *Server) SetRoutes(epoch int64, owned []int, table map[int]string) {
	ownedSet := make(map[int]bool, len(owned))
	for _, i := range owned {
		ownedSet[i] = true
	}
	tableCopy := make(map[int]string, len(table))
	for i, addr := range table {
		tableCopy[i] = addr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.routeEpoch {
		return
	}
	s.routeEpoch = epoch
	s.owned = ownedSet
	s.table = tableCopy
}

// routeFor resolves a subscribe for an intersection: ok means this
// node serves it; otherwise addr is the owner to redirect to (empty
// when no owner is known, e.g. no surviving nodes).
func (s *Server) routeFor(intersection int) (addr string, epoch int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.owned == nil || intersection <= 0 || s.owned[intersection] {
		return "", s.routeEpoch, true
	}
	return s.table[intersection], s.routeEpoch, false
}

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle performs the subscribe handshake and then streams the
// client's outbound queue.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	reader := bufio.NewReader(conn)
	dec := json.NewDecoder(reader)
	var sub Message
	if err := dec.Decode(&sub); err != nil || sub.Type != TypeSubscribe || sub.Validate() != nil {
		_ = conn.Close()
		return
	}
	// A subscribe carrying trace context gets a node-side segment: the
	// handshake joins the vehicle's distributed trace, so the fleet
	// stitcher sees the join land on this node.
	var joinTrace *telemetry.Trace
	if id, parentSpan := sub.TraceContext(); id != 0 {
		joinTrace = s.tracer.StartLinked("rsu/subscribe", id, parentSpan)
	}
	joinStart := time.Now()
	enc := json.NewEncoder(conn)
	if addr, epoch, ok := s.routeFor(sub.Intersection); !ok {
		// Wrong node: point the vehicle at the owner and hang up. An
		// unknown owner (no survivors hold the shard yet) still closes
		// the connection — the client's retry loop keeps probing seeds.
		s.metrics.redirects.Inc()
		if addr != "" {
			_ = enc.Encode(RedirectMessage(sub.Intersection, addr, epoch))
		}
		s.log.Infof("rsu: redirecting vehicle %q (intersection %d) to %q", sub.Vehicle, sub.Intersection, addr)
		now := time.Now()
		joinTrace.Span("redirect", joinStart, now)
		joinTrace.Terminal("redirected", now)
		joinTrace.Finish()
		_ = conn.Close()
		return
	}
	c := &clientConn{
		vehicle: sub.Vehicle,
		watch:   sub.Intersection,
		conn:    conn,
		out:     make(chan outMsg, clientQueueDepth),
		stop:    make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.clients[c] = struct{}{}
	s.metrics.subscribed.Inc()
	s.mu.Unlock()
	s.log.Infof("rsu: vehicle %q subscribed from %s", c.vehicle, conn.RemoteAddr())

	if err := enc.Encode(Message{Type: TypeWelcome, Vehicle: c.vehicle, Intersection: c.watch, Addr: s.Addr()}); err != nil {
		now := time.Now()
		joinTrace.Span("welcome", joinStart, now)
		joinTrace.Terminal("error", now)
		joinTrace.Finish()
		s.drop(c)
		return
	}
	now := time.Now()
	joinTrace.Span("welcome", joinStart, now)
	joinTrace.Terminal("subscribed", now)
	joinTrace.Finish()
	for {
		select {
		case m := <-c.out:
			if err := enc.Encode(m.msg); err != nil {
				s.drop(c)
				return
			}
			if m.last {
				s.drop(c)
				return
			}
		case <-c.stop:
			_ = conn.Close()
			return
		}
	}
}

// drop removes a client and closes its connection.
func (s *Server) drop(c *clientConn) {
	s.mu.Lock()
	if _, ok := s.clients[c]; ok {
		delete(s.clients, c)
		close(c.stop)
	}
	s.mu.Unlock()
	_ = c.conn.Close()
}

// Broadcast enqueues a message to every subscriber, disconnecting any
// whose queue is full. The fan-out latency — lock to last enqueue,
// including evictions of stalled subscribers — lands in the
// rsu_broadcast_seconds histogram.
func (s *Server) Broadcast(msg Message) {
	start := time.Now()
	s.mu.Lock()
	s.metrics.broadcasts.Inc()
	var overloaded []*clientConn
	for c := range s.clients {
		if c.watch > 0 && msg.Type == TypeAdvisory && msg.Intersection != c.watch {
			continue // the vehicle asked for one intersection only
		}
		select {
		case c.out <- outMsg{msg: msg}:
			s.metrics.enqueued.Inc()
		default:
			s.metrics.dropped.Inc()
			overloaded = append(overloaded, c)
		}
	}
	s.mu.Unlock()
	for _, c := range overloaded {
		s.log.Warnf("rsu: evicting slow subscriber %q (queue full at %d)", c.vehicle, clientQueueDepth)
		s.drop(c)
	}
	s.metrics.latency.ObserveDuration(time.Since(start))
}

// RedirectIntersection tells every vehicle watching the intersection
// that its advisories now come from addr, then disconnects them so
// their retry loop re-attaches to the new owner. Used on planned
// shard handoff; vehicles on a crashed node learn the same thing from
// the connection drop plus a redirect at their next wrong-node
// subscribe.
func (s *Server) RedirectIntersection(intersection int, addr string) {
	if addr == "" || intersection <= 0 {
		return
	}
	msg := RedirectMessage(intersection, addr, 0)
	s.mu.Lock()
	epoch := s.routeEpoch
	msg.Epoch = epoch
	var stale []*clientConn
	for c := range s.clients {
		if c.watch != intersection {
			continue
		}
		s.metrics.redirects.Inc()
		select {
		case c.out <- outMsg{msg: msg, last: true}:
		default:
			// Queue full: the drop alone must move the vehicle; its
			// reconnect will be redirected at subscribe time instead.
			stale = append(stale, c)
		}
	}
	s.mu.Unlock()
	for _, c := range stale {
		s.drop(c)
	}
}

// Stats returns a snapshot of server activity counters. It is a
// façade over a telemetry.Snapshot of the server's registry — the
// single source of truth whether or not the server was wired to an
// external registry — so new series join the façade by name, with no
// per-metric plumbing.
func (s *Server) Stats() Stats {
	snap := s.reg.Snapshot()
	return Stats{
		Subscribed: snap.Int("rsu_subscribed_total"),
		Broadcasts: snap.Int("rsu_broadcasts_total"),
		Enqueued:   snap.Int("rsu_enqueued_total"),
		Dropped:    snap.Int("rsu_slow_subscriber_evictions_total"),
		Redirects:  snap.Int("rsu_redirects_total"),
	}
}

// Close stops accepting, disconnects all subscribers, and waits for
// every goroutine to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clients := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.clients = make(map[*clientConn]struct{})
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range clients {
		close(c.stop)
		_ = c.conn.Close()
	}
	s.wg.Wait()
	return err
}
