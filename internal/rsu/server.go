package rsu

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Server is the RSU broadcast endpoint. It accepts vehicle
// subscriptions and fans advisory/switch messages out to all
// subscribers. Slow subscribers are disconnected rather than allowed
// to stall the broadcast path (an RSU must stay real-time).
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	clients map[*clientConn]struct{}
	closed  bool
	stats   Stats

	wg sync.WaitGroup
}

// Stats counts server activity since start.
type Stats struct {
	// Subscribed is the total number of successful subscriptions.
	Subscribed int
	// Broadcasts is the number of Broadcast calls.
	Broadcasts int
	// Enqueued is the number of messages placed on client queues.
	Enqueued int
	// Dropped is the number of slow clients disconnected for a full
	// queue.
	Dropped int
}

// clientConn is one subscribed vehicle connection.
type clientConn struct {
	vehicle string
	conn    net.Conn
	out     chan Message
	stop    chan struct{}
}

// clientQueueDepth bounds the per-client outbound queue; a vehicle
// that falls this far behind is cut off.
const clientQueueDepth = 64

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rsu: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		clients: make(map[*clientConn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Subscribers returns the number of connected vehicles.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle performs the subscribe handshake and then streams the
// client's outbound queue.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	reader := bufio.NewReader(conn)
	dec := json.NewDecoder(reader)
	var sub Message
	if err := dec.Decode(&sub); err != nil || sub.Type != TypeSubscribe || sub.Validate() != nil {
		_ = conn.Close()
		return
	}
	c := &clientConn{
		vehicle: sub.Vehicle,
		conn:    conn,
		out:     make(chan Message, clientQueueDepth),
		stop:    make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.clients[c] = struct{}{}
	s.stats.Subscribed++
	s.mu.Unlock()

	enc := json.NewEncoder(conn)
	if err := enc.Encode(Message{Type: TypeWelcome, Vehicle: c.vehicle}); err != nil {
		s.drop(c)
		return
	}
	for {
		select {
		case msg := <-c.out:
			if err := enc.Encode(msg); err != nil {
				s.drop(c)
				return
			}
		case <-c.stop:
			_ = conn.Close()
			return
		}
	}
}

// drop removes a client and closes its connection.
func (s *Server) drop(c *clientConn) {
	s.mu.Lock()
	if _, ok := s.clients[c]; ok {
		delete(s.clients, c)
		close(c.stop)
	}
	s.mu.Unlock()
	_ = c.conn.Close()
}

// Broadcast enqueues a message to every subscriber, disconnecting any
// whose queue is full.
func (s *Server) Broadcast(msg Message) {
	s.mu.Lock()
	s.stats.Broadcasts++
	var overloaded []*clientConn
	for c := range s.clients {
		select {
		case c.out <- msg:
			s.stats.Enqueued++
		default:
			s.stats.Dropped++
			overloaded = append(overloaded, c)
		}
	}
	s.mu.Unlock()
	for _, c := range overloaded {
		s.drop(c)
	}
}

// Stats returns a snapshot of server activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops accepting, disconnects all subscribers, and waits for
// every goroutine to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clients := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.clients = make(map[*clientConn]struct{})
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range clients {
		close(c.stop)
		_ = c.conn.Close()
	}
	s.wg.Wait()
	return err
}
