// Package rsu implements the roadside-unit deployment surface of
// SafeCross: a TCP server that streams left-turn advisories and
// scene-switch notifications to subscribed vehicle clients as
// newline-delimited JSON, and the matching client. This is the
// "added to the existing infrastructure" integration the paper's
// Fig. 1 sketches: the RSU has the global view; vehicles receive
// warnings.
package rsu

import (
	"fmt"

	"safecross/internal/pipeswitch"
	"safecross/internal/safecross"
	"safecross/internal/serve"
	"safecross/internal/telemetry"
)

// Message types exchanged between RSU and vehicles.
const (
	// TypeSubscribe is sent by a vehicle to start receiving
	// advisories.
	TypeSubscribe = "subscribe"
	// TypeWelcome acknowledges a subscription.
	TypeWelcome = "welcome"
	// TypeAdvisory carries a per-frame turn/no-turn decision.
	TypeAdvisory = "advisory"
	// TypeSwitch notifies that the RSU switched its scene model.
	TypeSwitch = "switch"
	// TypeStats carries a periodic serving-plane health snapshot.
	TypeStats = "stats"

	// TypeHeartbeat is the fleet liveness ping: a node agent sends it
	// to the coordinator on an interval, and the coordinator echoes it
	// back as the acknowledgement (carrying the current assignment
	// epoch), which is how agents measure heartbeat RTT.
	TypeHeartbeat = "heartbeat"
	// TypeAssign is the coordinator's authoritative shard push: the
	// set of intersections the receiving node owns plus the full
	// intersection→owner-address table (so any node can redirect a
	// misdirected vehicle).
	TypeAssign = "assign"
	// TypeRedirect tells the receiver the resource it wants lives
	// elsewhere: sent to a vehicle subscribing for an intersection the
	// node does not own, to subscribed vehicles when a shard moves
	// away, and to a node whose late heartbeat arrived after it was
	// declared dead (Addr then points back at the coordinator: rejoin).
	TypeRedirect = "redirect"

	// TypeReplicate is the primary coordinator's state stream to a
	// standby: the full epoch-versioned fleet view (membership,
	// assignment, seed list) so any standby can resume as primary.
	// Standbys fence on (term, epoch) — a replicate from a stale
	// primary is rejected with a promote reply instead of applied.
	TypeReplicate = "replicate"
	// TypePromote announces where the primary coordinator is: a
	// standby answers a node heartbeat with it (Addr names the
	// primary), and a promoted standby uses it to fence a stale
	// primary's pushes (forcing it to step down). Unlike a redirect,
	// a promote never means "you are dead" — the receiver keeps its
	// shards and simply re-heartbeats at Addr.
	TypePromote = "promote"

	// TypeVote is a standby coordinator's promotion ballot request:
	// Addr names the candidate, Term the successor term it proposes
	// (strictly above every term a primary has held), Epoch the
	// candidate's replicated epoch. A candidate promotes itself only
	// after a majority of the configured coordinators answer with a
	// granted ack — replicate-silence confirmed by quorum, not by one
	// clock.
	TypeVote = "vote"
	// TypeAck is the vote reply: Granted reports whether the receiver
	// also sees the primary silent and has not pledged this term to
	// another candidate; Term/Epoch carry the responder's own stamp so
	// a denied candidate learns how far behind it is.
	TypeAck = "ack"
)

// FleetMember is one node's membership record as replicated from the
// primary coordinator to its standbys (replicate messages).
type FleetMember struct {
	// Node is the member's fleet identity.
	Node string `json:"node"`
	// Addr is the member's advertised RSU address.
	Addr string `json:"addr,omitempty"`
	// DebugAddr is the member's telemetry debug-listener address, so a
	// promoted standby can keep federating the fleet's metrics.
	DebugAddr string `json:"debug_addr,omitempty"`
	// State is the primary's liveness verdict: "live", "suspect", or
	// "dead" (dead tombstones replicate too, so a new primary keeps
	// rejecting late heartbeats from reassigned nodes).
	State string `json:"state"`
}

// Message is the single JSON envelope used on the wire.
type Message struct {
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Vehicle identifies the subscriber (subscribe/welcome).
	Vehicle string `json:"vehicle,omitempty"`
	// Frame is the camera frame index an advisory refers to.
	Frame int `json:"frame,omitempty"`
	// Ready reports whether the RSU's clip buffer was full; when
	// false, Safe must be ignored.
	Ready bool `json:"ready,omitempty"`
	// Safe is the advisory verdict: true = the blind area is clear.
	Safe bool `json:"safe,omitempty"`
	// Scene is the detected weather scene name.
	Scene string `json:"scene,omitempty"`
	// SwitchMicros is the model-switch latency in microseconds
	// (switch messages).
	SwitchMicros int64 `json:"switchMicros,omitempty"`
	// Method is the switching method used (switch messages).
	Method string `json:"method,omitempty"`
	// Intersection identifies which intersection's camera an
	// advisory or switch refers to when one RSU serves several
	// (0 for a single-intersection deployment).
	Intersection int `json:"intersection,omitempty"`
	// Served is the number of verdicts the serving plane has
	// delivered (stats messages).
	Served int `json:"served,omitempty"`
	// Rejected is the number of requests shed by backpressure —
	// queue-full plus expired deadlines (stats messages).
	Rejected int `json:"rejected,omitempty"`
	// P99Micros is the serving plane's p99 submit-to-verdict latency
	// in microseconds (stats messages).
	P99Micros int64 `json:"p99Micros,omitempty"`
	// Node identifies an RSU node in the fleet control plane
	// (heartbeat messages).
	Node string `json:"node,omitempty"`
	// Addr is an endpoint address: the node's advertised RSU address
	// on a registering heartbeat, the new owner on a redirect, and the
	// sender's own address on a welcome.
	Addr string `json:"addr,omitempty"`
	// Epoch is the assignment version the message reflects; receivers
	// ignore assigns older than the epoch they already hold.
	Epoch int64 `json:"epoch,omitempty"`
	// Term is the coordinator generation: it starts at 1 with the
	// first primary and bumps every time a standby promotes itself.
	// Receivers order control pushes by (term, epoch) lexicographically,
	// so a partitioned stale primary — whatever epoch it reached alone —
	// can never override a promoted standby's assignments.
	Term int64 `json:"term,omitempty"`
	// Commit is the replication commit watermark: the highest epoch of
	// this term the primary has made durable in its write-ahead log
	// (replicate messages). A standby persists the replicated state to
	// its own log only once the watermark covers it, so no replica
	// holds durable state the primary could still lose. Never above
	// Epoch; 0 means nothing of this term is committed yet.
	Commit int64 `json:"commit,omitempty"`
	// Granted is the vote verdict on an ack: true means the responder
	// also observes replicate-silence and pledges the proposed term to
	// the candidate.
	Granted bool `json:"granted,omitempty"`
	// Seeds is the ordered coordinator seed list (replicate messages);
	// a coordinator's rank is its index here, and the lowest-ranked
	// live standby is the one that promotes.
	Seeds []string `json:"seeds,omitempty"`
	// Primary is the current primary coordinator's control address
	// (replicate messages).
	Primary string `json:"primary,omitempty"`
	// Owners maps every intersection to its owning node id (replicate
	// messages) — the id-level companion of Table, which maps to
	// addresses.
	Owners map[int]string `json:"owners,omitempty"`
	// Members is the replicated membership, dead tombstones included
	// (replicate messages).
	Members []FleetMember `json:"members,omitempty"`
	// Owned lists the intersections the receiving node owns (assign
	// messages).
	Owned []int `json:"owned,omitempty"`
	// Table maps every intersection to its owner's RSU address
	// (assign messages), so the receiver can redirect vehicles it does
	// not serve.
	Table map[int]string `json:"table,omitempty"`
	// Draining marks a heartbeat as a graceful-leave announcement: the
	// coordinator should move the node's shards now and expect it to
	// disappear.
	Draining bool `json:"draining,omitempty"`
	// TraceID carries distributed trace context: the fleet-wide trace
	// identity in telemetry.TraceID wire form (16 hex digits). A
	// subscribe stamped with it lets the node trace the join; an
	// advisory stamped with it lets the vehicle join the frame's trace;
	// a heartbeat stamped with it traces the control-plane round trip.
	// Optional everywhere.
	TraceID string `json:"trace_id,omitempty"`
	// ParentSpan names the sender-side span this message hangs under
	// (e.g. "broadcast" on an advisory), so the receiver's trace
	// segment records where in the remote tree it belongs. Only
	// meaningful alongside TraceID.
	ParentSpan string `json:"parent_span,omitempty"`
	// DebugAddr is the sender's debug listener address (heartbeat
	// messages): the coordinator federates each live node's metrics and
	// traces by scraping this endpoint.
	DebugAddr string `json:"debug_addr,omitempty"`
}

// TraceContext decodes the message's trace fields into a trace ID and
// remote parent, for telemetry.Tracer.StartLinked. A message without
// trace context yields (0, ""); a malformed trace_id also yields zero
// (Validate is where malformed context is rejected — receivers that
// skipped validation degrade to an untraced message).
func (m Message) TraceContext() (telemetry.TraceID, string) {
	id, err := telemetry.ParseTraceID(m.TraceID)
	if err != nil || id == 0 {
		return 0, ""
	}
	return id, m.ParentSpan
}

// WithTraceContext returns a copy of the message stamped with trace
// context; a zero id strips any context (the message travels
// untraced).
func (m Message) WithTraceContext(id telemetry.TraceID, parentSpan string) Message {
	if id == 0 {
		m.TraceID, m.ParentSpan = "", ""
		return m
	}
	m.TraceID, m.ParentSpan = id.String(), parentSpan
	return m
}

// AdvisoryMessage builds the advisory message for a decision.
func AdvisoryMessage(frame int, d *safecross.Decision) Message {
	return IntersectionAdvisory(0, frame, d)
}

// IntersectionAdvisory builds an advisory tagged with the
// intersection it concerns, for RSUs multiplexing several cameras
// through one serving plane.
func IntersectionAdvisory(intersection, frame int, d *safecross.Decision) Message {
	return Message{
		Type:         TypeAdvisory,
		Intersection: intersection,
		Frame:        frame,
		Ready:        d.Ready,
		Safe:         d.Safe,
		Scene:        d.Scene.String(),
	}
}

// StatsMessage builds the serving-plane health snapshot broadcast.
func StatsMessage(st serve.Stats) Message {
	return Message{
		Type:      TypeStats,
		Served:    st.Completed,
		Rejected:  st.Rejected + st.Expired,
		P99Micros: st.P99.Microseconds(),
	}
}

// SwitchMessage builds the scene-switch notification.
func SwitchMessage(scene string, rep pipeswitch.Report) Message {
	return Message{
		Type:         TypeSwitch,
		Scene:        scene,
		Method:       rep.Method,
		SwitchMicros: rep.Total.Microseconds(),
	}
}

// HeartbeatMessage builds a fleet liveness ping. Addr is the node's
// advertised RSU address (required on the registering first heartbeat,
// harmless later); the coordinator's echo carries the current epoch
// instead.
func HeartbeatMessage(node, addr string, epoch int64) Message {
	return Message{Type: TypeHeartbeat, Node: node, Addr: addr, Epoch: epoch}
}

// AssignMessage builds the coordinator's shard push for one node.
func AssignMessage(epoch int64, owned []int, table map[int]string) Message {
	return Message{Type: TypeAssign, Epoch: epoch, Owned: owned, Table: table}
}

// RedirectMessage points the receiver at addr for the given
// intersection (0 when the redirect is not intersection-scoped, e.g. a
// dead node being sent back to the coordinator).
func RedirectMessage(intersection int, addr string, epoch int64) Message {
	return Message{Type: TypeRedirect, Intersection: intersection, Addr: addr, Epoch: epoch}
}

// ReplicateMessage builds the primary coordinator's state push to one
// standby: the whole fleet view under one (term, epoch) stamp. keys is
// the full intersection list (travelling in Owned), owners the
// intersection→node-id assignment, members the membership including
// dead tombstones.
func ReplicateMessage(term, epoch int64, primary string, seeds []string, keys []int, owners map[int]string, members []FleetMember) Message {
	return Message{
		Type:    TypeReplicate,
		Term:    term,
		Epoch:   epoch,
		Primary: primary,
		Seeds:   seeds,
		Owned:   keys,
		Owners:  owners,
		Members: members,
	}
}

// PromoteMessage names the primary coordinator: Addr is where the
// receiver should heartbeat (keeping its shards), stamped with the
// sender's (term, epoch) so a stale primary recognises it has been
// superseded.
func PromoteMessage(addr string, term, epoch int64) Message {
	return Message{Type: TypePromote, Addr: addr, Term: term, Epoch: epoch}
}

// VoteMessage builds a candidate standby's ballot request: candidate
// is its own control address, term the successor term it proposes
// (≥ 2 — term 1 belongs to the birth primary and is never elected),
// epoch its replicated epoch.
func VoteMessage(candidate string, term, epoch int64) Message {
	return Message{Type: TypeVote, Addr: candidate, Term: term, Epoch: epoch}
}

// AckMessage builds the vote reply, carrying the responder's own
// (term, epoch) stamp alongside the verdict.
func AckMessage(granted bool, term, epoch int64) Message {
	return Message{Type: TypeAck, Granted: granted, Term: term, Epoch: epoch}
}

// Validate checks well-formedness of an inbound message.
func (m Message) Validate() error {
	// Trace context is optional on every type but must be well-formed
	// when present: a parseable non-zero trace id, and a parent span
	// only in the company of an id (an orphaned parent cannot be
	// attached to any trace).
	if m.TraceID != "" {
		if _, err := telemetry.ParseTraceID(m.TraceID); err != nil {
			return fmt.Errorf("rsu: %s with malformed trace id: %w", m.Type, err)
		}
	} else if m.ParentSpan != "" {
		return fmt.Errorf("rsu: %s with parent span %q but no trace id", m.Type, m.ParentSpan)
	}
	if len(m.ParentSpan) > 128 {
		return fmt.Errorf("rsu: %s with oversized parent span", m.Type)
	}
	switch m.Type {
	case TypeSubscribe:
		if m.Vehicle == "" {
			return fmt.Errorf("rsu: subscribe without vehicle id")
		}
		if m.Intersection < 0 {
			return fmt.Errorf("rsu: subscribe with negative intersection %d", m.Intersection)
		}
		return nil
	case TypeHeartbeat:
		if m.Node == "" {
			return fmt.Errorf("rsu: heartbeat without node id")
		}
		return nil
	case TypeAssign:
		if m.Epoch < 1 {
			return fmt.Errorf("rsu: assign with epoch %d, need >= 1", m.Epoch)
		}
		return nil
	case TypeRedirect:
		if m.Addr == "" {
			return fmt.Errorf("rsu: redirect without target address")
		}
		return nil
	case TypeReplicate:
		if m.Term < 1 {
			return fmt.Errorf("rsu: replicate with term %d, need >= 1", m.Term)
		}
		if m.Primary == "" {
			return fmt.Errorf("rsu: replicate without primary address")
		}
		if len(m.Seeds) == 0 {
			return fmt.Errorf("rsu: replicate without coordinator seed list")
		}
		if m.Commit < 0 || m.Commit > m.Epoch {
			return fmt.Errorf("rsu: replicate commit watermark %d outside [0, epoch %d]", m.Commit, m.Epoch)
		}
		return nil
	case TypeVote:
		if m.Addr == "" {
			return fmt.Errorf("rsu: vote without candidate address")
		}
		if m.Term < 2 {
			return fmt.Errorf("rsu: vote proposing term %d, need >= 2 (term 1 is never elected)", m.Term)
		}
		return nil
	case TypeAck:
		if m.Term < 0 || m.Epoch < 0 {
			return fmt.Errorf("rsu: ack with negative stamp (term %d, epoch %d)", m.Term, m.Epoch)
		}
		return nil
	case TypePromote:
		if m.Addr == "" {
			return fmt.Errorf("rsu: promote without primary address")
		}
		if m.Term < 1 {
			return fmt.Errorf("rsu: promote with term %d, need >= 1", m.Term)
		}
		return nil
	case TypeWelcome, TypeAdvisory, TypeSwitch, TypeStats:
		return nil
	default:
		return fmt.Errorf("rsu: unknown message type %q", m.Type)
	}
}
