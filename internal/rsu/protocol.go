// Package rsu implements the roadside-unit deployment surface of
// SafeCross: a TCP server that streams left-turn advisories and
// scene-switch notifications to subscribed vehicle clients as
// newline-delimited JSON, and the matching client. This is the
// "added to the existing infrastructure" integration the paper's
// Fig. 1 sketches: the RSU has the global view; vehicles receive
// warnings.
package rsu

import (
	"fmt"

	"safecross/internal/pipeswitch"
	"safecross/internal/safecross"
	"safecross/internal/serve"
)

// Message types exchanged between RSU and vehicles.
const (
	// TypeSubscribe is sent by a vehicle to start receiving
	// advisories.
	TypeSubscribe = "subscribe"
	// TypeWelcome acknowledges a subscription.
	TypeWelcome = "welcome"
	// TypeAdvisory carries a per-frame turn/no-turn decision.
	TypeAdvisory = "advisory"
	// TypeSwitch notifies that the RSU switched its scene model.
	TypeSwitch = "switch"
	// TypeStats carries a periodic serving-plane health snapshot.
	TypeStats = "stats"
)

// Message is the single JSON envelope used on the wire.
type Message struct {
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Vehicle identifies the subscriber (subscribe/welcome).
	Vehicle string `json:"vehicle,omitempty"`
	// Frame is the camera frame index an advisory refers to.
	Frame int `json:"frame,omitempty"`
	// Ready reports whether the RSU's clip buffer was full; when
	// false, Safe must be ignored.
	Ready bool `json:"ready,omitempty"`
	// Safe is the advisory verdict: true = the blind area is clear.
	Safe bool `json:"safe,omitempty"`
	// Scene is the detected weather scene name.
	Scene string `json:"scene,omitempty"`
	// SwitchMicros is the model-switch latency in microseconds
	// (switch messages).
	SwitchMicros int64 `json:"switchMicros,omitempty"`
	// Method is the switching method used (switch messages).
	Method string `json:"method,omitempty"`
	// Intersection identifies which intersection's camera an
	// advisory or switch refers to when one RSU serves several
	// (0 for a single-intersection deployment).
	Intersection int `json:"intersection,omitempty"`
	// Served is the number of verdicts the serving plane has
	// delivered (stats messages).
	Served int `json:"served,omitempty"`
	// Rejected is the number of requests shed by backpressure —
	// queue-full plus expired deadlines (stats messages).
	Rejected int `json:"rejected,omitempty"`
	// P99Micros is the serving plane's p99 submit-to-verdict latency
	// in microseconds (stats messages).
	P99Micros int64 `json:"p99Micros,omitempty"`
}

// AdvisoryMessage builds the advisory message for a decision.
func AdvisoryMessage(frame int, d *safecross.Decision) Message {
	return IntersectionAdvisory(0, frame, d)
}

// IntersectionAdvisory builds an advisory tagged with the
// intersection it concerns, for RSUs multiplexing several cameras
// through one serving plane.
func IntersectionAdvisory(intersection, frame int, d *safecross.Decision) Message {
	return Message{
		Type:         TypeAdvisory,
		Intersection: intersection,
		Frame:        frame,
		Ready:        d.Ready,
		Safe:         d.Safe,
		Scene:        d.Scene.String(),
	}
}

// StatsMessage builds the serving-plane health snapshot broadcast.
func StatsMessage(st serve.Stats) Message {
	return Message{
		Type:      TypeStats,
		Served:    st.Completed,
		Rejected:  st.Rejected + st.Expired,
		P99Micros: st.P99.Microseconds(),
	}
}

// SwitchMessage builds the scene-switch notification.
func SwitchMessage(scene string, rep pipeswitch.Report) Message {
	return Message{
		Type:         TypeSwitch,
		Scene:        scene,
		Method:       rep.Method,
		SwitchMicros: rep.Total.Microseconds(),
	}
}

// Validate checks well-formedness of an inbound message.
func (m Message) Validate() error {
	switch m.Type {
	case TypeSubscribe:
		if m.Vehicle == "" {
			return fmt.Errorf("rsu: subscribe without vehicle id")
		}
		return nil
	case TypeWelcome, TypeAdvisory, TypeSwitch, TypeStats:
		return nil
	default:
		return fmt.Errorf("rsu: unknown message type %q", m.Type)
	}
}
