package rsu

// Failure-mode coverage for the broadcast path: a vehicle that stops
// reading must be evicted without stalling the RSU or the healthy
// subscribers, and a vehicle dialing an RSU that accepts but never
// answers must time out instead of hanging.

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// stalledSubscriber subscribes over a raw connection, reads the
// welcome, and then never reads again — the worst-behaved vehicle.
func stalledSubscriber(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := json.NewEncoder(conn).Encode(Message{Type: TypeSubscribe, Vehicle: "stalled"}); err != nil {
		t.Fatal(err)
	}
	var welcome Message
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&welcome); err != nil {
		t.Fatal(err)
	}
	if welcome.Type != TypeWelcome {
		t.Fatalf("handshake reply %+v", welcome)
	}
	return conn
}

func TestBroadcastEvictsStalledSubscribers(t *testing.T) {
	tests := []struct {
		name    string
		stalled int
		healthy int
	}{
		{name: "one-stalled-one-healthy", stalled: 1, healthy: 1},
		{name: "two-stalled-two-healthy", stalled: 2, healthy: 2},
		{name: "stalled-only", stalled: 1, healthy: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			srv, err := Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			for i := 0; i < tt.stalled; i++ {
				stalledSubscriber(t, srv.Addr())
			}
			// Each healthy client is drained continuously, so it only
			// falls behind if Broadcast itself stalls; sawMarker[i]
			// closes when client i receives the post-eviction probe.
			sawMarker := make([]chan struct{}, tt.healthy)
			for i := 0; i < tt.healthy; i++ {
				c, err := Dial(srv.Addr(), "healthy")
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				saw := make(chan struct{})
				sawMarker[i] = saw
				go func() {
					marked := false
					for msg := range c.Messages() {
						if msg.Frame == 424242 && !marked {
							marked = true
							close(saw)
						}
					}
				}()
			}
			waitFor(t, func() bool { return srv.Subscribers() == tt.stalled+tt.healthy })

			// Bloated messages fill the stalled connections' TCP buffers,
			// so their handler goroutines block and their out queues
			// overflow; the pacing keeps the drained (healthy) clients
			// comfortably ahead. The loop terminating at all proves
			// Broadcast never blocks on a stalled subscriber.
			big := Message{Type: TypeAdvisory, Vehicle: strings.Repeat("x", 1<<16)}
			for i := 0; i < 2000 && srv.Subscribers() > tt.healthy; i++ {
				srv.Broadcast(big)
				time.Sleep(time.Millisecond)
			}
			waitFor(t, func() bool { return srv.Subscribers() == tt.healthy })
			if st := srv.Stats(); st.Dropped < tt.stalled {
				t.Fatalf("dropped %d, want >= %d: %+v", st.Dropped, tt.stalled, st)
			}

			// Healthy subscribers must still be served after the purge.
			for i, saw := range sawMarker {
				deadline := time.After(2 * time.Second)
				for done := false; !done; {
					srv.Broadcast(Message{Type: TypeAdvisory, Frame: 424242})
					select {
					case <-saw:
						done = true
					case <-deadline:
						t.Fatalf("healthy client %d starved after eviction", i)
					case <-time.After(20 * time.Millisecond):
					}
				}
			}
		})
	}
}

func TestClientCloseTwice(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestDialTimeoutOnHungServer(t *testing.T) {
	// A listener that accepts connections but never completes the
	// handshake: without a deadline, Dial would block forever on the
	// welcome decode.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				<-stop
				_ = conn.Close()
			}()
		}
	}()

	start := time.Now()
	_, err = DialTimeout(ln.Addr().String(), "v1", 150*time.Millisecond)
	if err == nil {
		t.Fatal("expected handshake timeout against a mute server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DialTimeout took %v, deadline not enforced", elapsed)
	}
}
