package rsu

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"safecross/internal/pipeswitch"
	"safecross/internal/safecross"
	"safecross/internal/sim"
)

func TestMessageValidate(t *testing.T) {
	tests := []struct {
		name    string
		msg     Message
		wantErr bool
	}{
		{name: "subscribe-ok", msg: Message{Type: TypeSubscribe, Vehicle: "v1"}},
		{name: "subscribe-missing-id", msg: Message{Type: TypeSubscribe}, wantErr: true},
		{name: "advisory-ok", msg: Message{Type: TypeAdvisory}},
		{name: "subscribe-negative-intersection", msg: Message{Type: TypeSubscribe, Vehicle: "v1", Intersection: -1}, wantErr: true},
		{name: "heartbeat-ok", msg: HeartbeatMessage("node-a", "127.0.0.1:9", 3)},
		{name: "heartbeat-missing-node", msg: Message{Type: TypeHeartbeat}, wantErr: true},
		{name: "assign-ok", msg: AssignMessage(1, []int{1, 2}, map[int]string{1: "a:1", 2: "a:1"})},
		{name: "assign-empty-owned-ok", msg: AssignMessage(4, nil, nil)},
		{name: "assign-zero-epoch", msg: Message{Type: TypeAssign}, wantErr: true},
		{name: "redirect-ok", msg: RedirectMessage(7, "127.0.0.1:9", 2)},
		{name: "redirect-missing-addr", msg: Message{Type: TypeRedirect, Intersection: 7}, wantErr: true},
		{name: "unknown", msg: Message{Type: "nope"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.msg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestAdvisoryAndSwitchMessages(t *testing.T) {
	d := &safecross.Decision{Ready: true, Safe: true, Scene: sim.Rain}
	msg := AdvisoryMessage(42, d)
	if msg.Type != TypeAdvisory || msg.Frame != 42 || !msg.Safe || !msg.Ready || msg.Scene != "rain" {
		t.Fatalf("advisory message = %+v", msg)
	}
	rep := pipeswitch.Report{Method: "pipeswitch", Total: 6 * time.Millisecond}
	sw := SwitchMessage("snow", rep)
	if sw.Type != TypeSwitch || sw.Scene != "snow" || sw.SwitchMicros != 6000 || sw.Method != "pipeswitch" {
		t.Fatalf("switch message = %+v", sw)
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr(), "vehicle-1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	waitFor(t, func() bool { return srv.Subscribers() == 1 })

	want := Message{Type: TypeAdvisory, Frame: 7, Ready: true, Safe: true, Scene: "day"}
	srv.Broadcast(want)

	select {
	case got := <-cli.Messages():
		if got.Type != want.Type || got.Frame != want.Frame || got.Safe != want.Safe || got.Scene != want.Scene {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for advisory")
	}
}

func TestServerMultipleSubscribers(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(srv.Addr(), "v")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	waitFor(t, func() bool { return srv.Subscribers() == 3 })

	srv.Broadcast(Message{Type: TypeSwitch, Scene: "rain"})
	for i, c := range clients {
		select {
		case got := <-c.Messages():
			if got.Scene != "rain" {
				t.Fatalf("client %d got %+v", i, got)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("client %d timed out", i)
		}
	}
}

func TestServerRejectsBadHandshake(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(Message{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection without subscribing.
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close after bad handshake")
	}
	if srv.Subscribers() != 0 {
		t.Fatal("bad handshake must not subscribe")
	}
}

func TestClientChannelClosesOnServerClose(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-cli.Messages():
		if ok {
			// Drain any message delivered before the close.
			for range cli.Messages() {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client channel did not close after server shutdown")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ""); err == nil {
		t.Fatal("expected empty-vehicle error")
	}
	if _, err := Dial("127.0.0.1:2", "v"); err == nil {
		t.Fatal("expected connection-refused error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// waitFor polls a condition with a deadline, replacing sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestServerStats(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr(), "v-stats")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitFor(t, func() bool { return srv.Subscribers() == 1 })

	srv.Broadcast(Message{Type: TypeAdvisory, Frame: 1})
	srv.Broadcast(Message{Type: TypeAdvisory, Frame: 2})
	waitFor(t, func() bool {
		s := srv.Stats()
		return s.Broadcasts == 2 && s.Enqueued == 2 && s.Subscribed == 1
	})
	if s := srv.Stats(); s.Dropped != 0 {
		t.Fatalf("unexpected drops: %+v", s)
	}
}
