package rsu

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestDialWrapsNetError: connection failures must expose the
// underlying net error through errors.As, so callers can distinguish
// refused/timeout from protocol problems.
func TestDialWrapsNetError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port: the dial below must be refused

	_, err = DialTimeout(addr, "v1", time.Second)
	if err == nil {
		t.Fatal("expected a dial error")
	}
	var opErr *net.OpError
	if !errors.As(err, &opErr) {
		t.Fatalf("dial error %v does not wrap *net.OpError", err)
	}
}

// TestDialRetryBackoffBounds: a client whose server keeps slamming
// the door must back off between attempts — MaxAttempts failures with
// base delay d take at least the sum of the jitter floors (d/2 + d +
// 2d ...), never a tight reconnect loop.
func TestDialRetryBackoffBounds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close() // accept-and-close: every handshake fails
		}
	}()

	base := 40 * time.Millisecond
	start := time.Now()
	_, err = DialRetry(RetryConfig{
		Seeds:       []string{ln.Addr().String()},
		Vehicle:     "v-backoff",
		BackoffBase: base,
		MaxAttempts: 4,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected DialRetry to exhaust its attempts")
	}
	// 4 attempts ⇒ 3 sleeps of 40/80/160ms, each jittered into
	// [d/2, d]: the floor is 20+40+80 = 140ms.
	if min := 140 * time.Millisecond; elapsed < min {
		t.Fatalf("4 failed attempts took %v; want ≥ %v (tight reconnect loop?)", elapsed, min)
	}
	// And the ceiling (40+80+160 = 280ms plus scheduling slack) guards
	// against un-jittered runaway growth.
	if max := 2 * time.Second; elapsed > max {
		t.Fatalf("4 failed attempts took %v; want ≤ %v", elapsed, max)
	}
}

// TestClientCloseRace hammers Close against a hot read loop and a
// broadcasting server. Before the single-owner rework, Close and the
// reader could both close the messages channel — a double-close
// panic this test (especially under -race) would surface.
func TestClientCloseRace(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.Broadcast(Message{Type: TypeAdvisory, Frame: i})
		}
	}()

	for i := 0; i < 20; i++ {
		cli, err := DialRetry(RetryConfig{
			Seeds:   []string{srv.Addr()},
			Vehicle: "v-race",
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			for range cli.Messages() {
			}
		}()
		// Two goroutines racing Close exercises idempotency too.
		go func() { defer wg.Done(); _ = cli.Close() }()
		go func() { defer wg.Done(); _ = cli.Close() }()
		wg.Wait()
	}
}

// TestClientFollowsRedirect: a retry client subscribing to an
// intersection through the wrong node must be bounced to the owner
// and end up streaming that intersection's advisories.
func TestClientFollowsRedirect(t *testing.T) {
	owner, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	stranger, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()

	const intersection = 5
	table := map[int]string{intersection: owner.Addr()}
	owner.SetRoutes(1, []int{intersection}, table)
	stranger.SetRoutes(1, nil, table)

	cli, err := DialRetry(RetryConfig{
		Seeds:        []string{stranger.Addr()},
		Vehicle:      "v-redirect",
		Intersection: intersection,
		BackoffBase:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialRetry via the wrong node: %v", err)
	}
	defer cli.Close()
	if got := cli.Redirects(); got < 1 {
		t.Fatalf("redirects = %d; want ≥ 1", got)
	}
	waitFor(t, func() bool { return owner.Subscribers() == 1 })

	owner.Broadcast(Message{Type: TypeAdvisory, Intersection: intersection, Frame: 9, Safe: true})
	deadline := time.After(2 * time.Second)
	for {
		select {
		case msg, ok := <-cli.Messages():
			if !ok {
				t.Fatal("client channel closed before the advisory arrived")
			}
			if msg.Type == TypeAdvisory && msg.Intersection == intersection {
				return
			}
		case <-deadline:
			t.Fatal("no advisory after following the redirect")
		}
	}
}

// TestServerFiltersWatchedIntersection: a subscriber watching one
// intersection must not receive advisories for others.
func TestServerFiltersWatchedIntersection(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetRoutes(1, []int{1, 2}, map[int]string{1: srv.Addr(), 2: srv.Addr()})

	cli, err := DialRetry(RetryConfig{
		Seeds:        []string{srv.Addr()},
		Vehicle:      "v-watch",
		Intersection: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitFor(t, func() bool { return srv.Subscribers() == 1 })

	srv.Broadcast(Message{Type: TypeAdvisory, Intersection: 2, Frame: 1})
	srv.Broadcast(Message{Type: TypeAdvisory, Intersection: 1, Frame: 2})
	deadline := time.After(2 * time.Second)
	for {
		select {
		case msg, ok := <-cli.Messages():
			if !ok {
				t.Fatal("channel closed early")
			}
			if msg.Type != TypeAdvisory {
				continue
			}
			if msg.Intersection == 2 {
				t.Fatalf("received advisory for unwatched intersection: %+v", msg)
			}
			if msg.Intersection == 1 {
				return // the watched one arrived, the other was filtered
			}
		case <-deadline:
			t.Fatal("watched advisory never arrived")
		}
	}
}
