package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property-style checks of the rendezvous placement over randomized
// memberships. Seeded generators keep every run reproducible: a
// failure prints the trial seed so the exact membership can be
// replayed.

// randomFleet draws a membership of n distinct node ids with
// rng-chosen suffixes, mimicking real fleets where ids share a common
// prefix (the weak-avalanche case the score finalizer exists for).
func randomFleet(rng *rand.Rand, n int) []string {
	nodes := make([]string, 0, n)
	seen := map[string]bool{}
	for len(nodes) < n {
		id := fmt.Sprintf("node-%d", rng.Intn(10*n))
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	return nodes
}

// TestAssignmentsMinimalMovementProperty removes one random node from
// a random membership and asserts rendezvous hashing's defining
// property: ONLY the dead node's intersections change owner. Any
// other movement would churn runners fleet-wide on every failure.
func TestAssignmentsMinimalMovementProperty(t *testing.T) {
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i
	}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nodes := randomFleet(rng, 2+rng.Intn(9)) // 2..10 nodes
		before := Assignments(nodes, keys)
		dead := nodes[rng.Intn(len(nodes))]
		var survivors []string
		for _, n := range nodes {
			if n != dead {
				survivors = append(survivors, n)
			}
		}
		after := Assignments(survivors, keys)
		for _, k := range keys {
			if before[k] != dead && after[k] != before[k] {
				t.Fatalf("trial %d: key %d moved %s→%s though %s died (membership %v)",
					trial, k, before[k], after[k], dead, nodes)
			}
			if before[k] == dead && after[k] == dead {
				t.Fatalf("trial %d: key %d still owned by dead node %s", trial, k, dead)
			}
		}
	}
}

// TestAssignmentsJoinMovementProperty is the join-side mirror: adding
// a node may only move keys TO the newcomer — no key shuffles between
// incumbent nodes.
func TestAssignmentsJoinMovementProperty(t *testing.T) {
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i
	}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		nodes := randomFleet(rng, 2+rng.Intn(9))
		joiner := fmt.Sprintf("joiner-%d", rng.Intn(1000))
		before := Assignments(nodes, keys)
		after := Assignments(append(append([]string{}, nodes...), joiner), keys)
		for _, k := range keys {
			if after[k] != before[k] && after[k] != joiner {
				t.Fatalf("trial %d: key %d moved %s→%s though only %s joined (membership %v)",
					trial, k, before[k], after[k], joiner, nodes)
			}
		}
	}
}

// TestAssignmentsSpreadProperty bounds load skew over randomized
// memberships: with K keys over N nodes, no node may own more than
// ~3× its fair share (and with N ≤ K every node must own something
// close to it). Rendezvous over a hash with decent avalanche keeps
// well inside this; the bound catches a regression to lopsided
// scoring, not statistical noise.
func TestAssignmentsSpreadProperty(t *testing.T) {
	const numKeys = 128
	keys := make([]int, numKeys)
	for i := range keys {
		keys[i] = i * 3 // non-contiguous ids, as real deployments have
	}
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		nodes := randomFleet(rng, 2+rng.Intn(15)) // 2..16 nodes
		counts := map[string]int{}
		for _, owner := range Assignments(nodes, keys) {
			counts[owner]++
		}
		fair := float64(numKeys) / float64(len(nodes))
		for _, n := range nodes {
			if got := counts[n]; float64(got) > 3*fair {
				t.Fatalf("trial %d: node %s owns %d of %d keys (fair share %.1f, membership %v)",
					trial, n, got, numKeys, fair, nodes)
			}
		}
		if len(counts) != len(nodes) {
			t.Fatalf("trial %d: only %d of %d nodes own any keys (membership %v)",
				trial, len(counts), len(nodes), nodes)
		}
	}
}

// TestOwnerPermutationInvariance shuffles the membership order many
// times and asserts the owner never depends on it — the property that
// lets every coordinator compute assignments independently.
func TestOwnerPermutationInvariance(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		nodes := randomFleet(rng, 3+rng.Intn(6))
		key := rng.Intn(1 << 16)
		want, ok := Owner(nodes, key)
		if !ok {
			t.Fatalf("trial %d: no owner for key %d among %v", trial, key, nodes)
		}
		for p := 0; p < 10; p++ {
			rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
			if got, _ := Owner(nodes, key); got != want {
				t.Fatalf("trial %d: owner of key %d changed %s→%s under permutation %v",
					trial, key, want, got, nodes)
			}
		}
	}
}
