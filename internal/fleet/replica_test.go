package fleet

import (
	"bufio"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// startReplicaSet builds 1 primary + standbys standby coordinators on
// a shared registry and returns them (primary first) with the seed
// list agents should sweep.
func startReplicaSet(t *testing.T, keys []int, standbys int, reg *telemetry.Registry) ([]*Coordinator, []string) {
	t.Helper()
	tt := testTimings()
	hb := WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter)
	sbs := make([]*Coordinator, 0, standbys)
	sbAddrs := make([]string, 0, standbys)
	for i := 0; i < standbys; i++ {
		sb, err := NewCoordinator("127.0.0.1:0", AsStandby(), hb, WithMetrics(reg))
		if err != nil {
			t.Fatalf("standby %d: %v", i, err)
		}
		t.Cleanup(func() { sb.Close() })
		sbs = append(sbs, sb)
		sbAddrs = append(sbAddrs, sb.Addr())
	}
	primary, err := NewCoordinator("127.0.0.1:0",
		WithIntersections(keys...), hb, WithStandbys(sbAddrs...), WithMetrics(reg))
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	t.Cleanup(func() { primary.Close() })
	coords := append([]*Coordinator{primary}, sbs...)
	seeds := append([]string{primary.Addr()}, sbAddrs...)
	return coords, seeds
}

// TestStandbyPromotionTimeline kills the primary of a three-replica
// coordinator set and walks the takeover: the first-ranked standby
// promotes itself under a larger term with the epoch resumed, exactly
// one promotion happens, the other standby follows the new primary,
// and a stale push stamped with the dead primary's term is fenced off
// with a promote reply.
func TestStandbyPromotionTimeline(t *testing.T) {
	keys := []int{1, 2, 3, 4}
	reg := telemetry.NewRegistry()
	coords, _ := startReplicaSet(t, keys, 2, reg)
	primary, sb1, sb2 := coords[0], coords[1], coords[2]

	n := dialFake(t, primary.Addr(), "n1")
	if err := n.heartbeat(); err != nil {
		t.Fatalf("register: %v", err)
	}
	n.pump(testTimings().HeartbeatEvery)
	defer n.stopPump()
	waitFor(t, "node registered and assigned", func() bool {
		return countOwned(primary.Assignments(), "n1") == len(keys)
	})
	waitFor(t, "standbys fed the primary's state", func() bool {
		return sb1.Primary() == primary.Addr() && sb2.Primary() == primary.Addr() &&
			countOwned(sb1.Assignments(), "n1") == len(keys)
	})
	if sb1.Role() != RoleStandby || sb2.Role() != RoleStandby {
		t.Fatalf("standbys claim roles %v/%v before any failure", sb1.Role(), sb2.Role())
	}
	oldTerm, oldEpoch := primary.Term(), primary.Epoch()

	primary.Close()
	waitFor(t, "first standby promoted", func() bool { return sb1.Role() == RolePrimary })
	if got := sb1.Term(); got != oldTerm+1 {
		t.Fatalf("promoted term = %d; want %d", got, oldTerm+1)
	}
	if got := sb1.Epoch(); got < oldEpoch {
		t.Fatalf("promotion regressed the epoch: %d → %d", oldEpoch, got)
	}
	// The replicated assignment must survive the takeover verbatim.
	// (The raw fakeNode only ever dialled the dead primary, so the new
	// primary will later declare it dead — which is correct; adoption
	// is checked before that clock runs out.)
	if got := countOwned(sb1.Assignments(), "n1"); got != len(keys) {
		t.Fatalf("new primary lost the assignment: n1 owns %d of %d", got, len(keys))
	}
	waitFor(t, "second standby follows the new primary", func() bool {
		return sb2.Role() == RoleStandby && sb2.Primary() == sb1.Addr()
	})
	time.Sleep(3 * testTimings().DeadAfter)
	if got := reg.Counter("fleet_promotions_total", "").Value(); got != 1 {
		t.Fatalf("promotions = %d; want exactly 1 (no dueling standbys)", got)
	}

	// Epoch fencing: a push stamped with the dead primary's term —
	// however large its epoch — must be rejected with a promote naming
	// the new leader, and must not disturb the new primary's stamp.
	term, epoch := sb1.Term(), sb1.Epoch()
	conn, err := net.Dial("tcp", sb1.Addr())
	if err != nil {
		t.Fatalf("dial new primary: %v", err)
	}
	defer conn.Close()
	stale := rsu.ReplicateMessage(oldTerm, epoch+1000, "127.0.0.1:9", []string{"127.0.0.1:9"},
		keys, map[int]string{1: "zombie"}, []rsu.FleetMember{{Node: "zombie", Addr: "z:1", State: "live"}})
	if err := json.NewEncoder(conn).Encode(stale); err != nil {
		t.Fatalf("send stale replicate: %v", err)
	}
	var reply rsu.Message
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		t.Fatalf("read fencing reply: %v", err)
	}
	if reply.Type != rsu.TypePromote || reply.Addr != sb1.Addr() || reply.Term != term {
		t.Fatalf("stale push answered with %+v; want promote to %s at term %d", reply, sb1.Addr(), term)
	}
	if sb1.Term() != term || sb1.Epoch() != epoch || sb1.Role() != RolePrimary {
		t.Fatalf("stale push disturbed the primary: term %d→%d epoch %d→%d role %v",
			term, sb1.Term(), epoch, sb1.Epoch(), sb1.Role())
	}
	if _, ok := sb1.States()["zombie"]; ok {
		t.Fatal("stale membership leaked into the new primary")
	}
}

// TestNodeContinuityAcrossPromotion is the tentpole acceptance
// scenario: vehicles keep receiving advisories while the primary
// coordinator dies and a standby takes over — zero runner churn on
// the nodes — and the NEW primary then repairs a node crash.
func TestNodeContinuityAcrossPromotion(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6}
	reg := telemetry.NewRegistry()
	coords, seeds := startReplicaSet(t, keys, 1, reg)
	primary, standby := coords[0], coords[1]

	nodes := []*testNode{
		startNode(t, "n0", reg, seeds...),
		startNode(t, "n1", reg, seeds...),
	}
	defer func() {
		for _, n := range nodes {
			n.agent.Close()
			n.srv.Close()
		}
	}()
	waitFor(t, "full coverage over both nodes", func() bool {
		return coverage(nodes, keys)
	})
	waitFor(t, "standby fed", func() bool { return standby.Primary() == primary.Addr() })

	target := keys[0]
	cli, err := rsu.DialRetry(rsu.RetryConfig{
		Seeds:        []string{nodes[0].srv.Addr(), nodes[1].srv.Addr()},
		Vehicle:      "veh-1",
		Intersection: target,
		BackoffBase:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer cli.Close()
	var advisories, afterKill atomic.Int64
	var coordKilled atomic.Bool
	go func() {
		for msg := range cli.Messages() {
			if msg.Type != rsu.TypeAdvisory || msg.Intersection != target {
				continue
			}
			advisories.Add(1)
			if coordKilled.Load() {
				afterKill.Add(1)
			}
		}
	}()
	waitFor(t, "advisories before the coordinator kill", func() bool { return advisories.Load() >= 3 })

	ownedBefore := map[string][]int{
		"n0": nodes[0].agent.Owned(),
		"n1": nodes[1].agent.Owned(),
	}
	coordKilled.Store(true)
	primary.Close()
	waitFor(t, "standby promoted", func() bool { return standby.Role() == RolePrimary })
	waitFor(t, "both nodes re-bound to the new primary", func() bool {
		st := standby.States()
		return st["n0"] == Live && st["n1"] == Live &&
			reg.Counter("fleet_heartbeats_total", "").Value() > 0
	})
	// Continuity: the takeover must not have moved a single shard.
	for i, n := range nodes {
		got := n.agent.Owned()
		want := ownedBefore[n.id]
		if len(got) != len(want) {
			t.Fatalf("node %s churned shards across promotion: %v → %v", n.id, want, got)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("node %s churned shards across promotion: %v → %v", n.id, want, got)
			}
		}
		_ = i
	}
	waitFor(t, "advisories under the new primary", func() bool { return afterKill.Load() >= 3 })

	// Now a node dies under the NEW primary: it must still repair.
	victimID := standby.Assignments()[target]
	var victim, survivor *testNode
	for _, n := range nodes {
		if n.id == victimID {
			victim = n
		} else {
			survivor = n
		}
	}
	if victim == nil {
		t.Fatalf("intersection %d owned by unknown node %q", target, victimID)
	}
	victim.agent.Close()
	victim.srv.Close()
	waitFor(t, "survivor absorbs every shard under the new primary", func() bool {
		return coverage([]*testNode{survivor}, keys)
	})
	if got := reg.Counter("fleet_failovers_total", "").Value(); got != 1 {
		t.Fatalf("failovers = %d; want 1 (the node kill, not the coordinator kill)", got)
	}
}

// TestAgentFencesStaleAssignments drives Agent.apply directly with
// out-of-order (term, epoch) stamps: only strictly advancing stamps
// may move ownership, so a partitioned stale primary cannot steal
// shards back however fast it bumps its own epochs.
func TestAgentFencesStaleAssignments(t *testing.T) {
	srv, err := rsu.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("rsu listen: %v", err)
	}
	defer srv.Close()
	// Port 9 (discard) never answers: the agent idles in its dial loop
	// while the test feeds assignments in by hand.
	a, err := NewAgent("n1", srv, WithCoordinators("127.0.0.1:9"))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	defer a.Close()

	assign := func(term, epoch int64, owned ...int) rsu.Message {
		msg := rsu.AssignMessage(epoch, owned, map[int]string{})
		msg.Term = term
		return msg
	}
	check := func(wantTerm, wantEpoch int64, wantOwned int) {
		t.Helper()
		if a.Term() != wantTerm || a.Epoch() != wantEpoch || len(a.Owned()) != wantOwned {
			t.Fatalf("agent at (term %d, epoch %d, owned %v); want (%d, %d, %d shards)",
				a.Term(), a.Epoch(), a.Owned(), wantTerm, wantEpoch, wantOwned)
		}
	}

	a.apply(assign(2, 5, 1, 2))
	check(2, 5, 2)
	a.apply(assign(1, 50, 3)) // stale term, huge epoch: fenced
	check(2, 5, 2)
	a.apply(assign(2, 5, 3)) // replayed stamp: fenced
	check(2, 5, 2)
	a.apply(assign(2, 6, 1, 2, 3)) // same term, next epoch: applied
	check(2, 6, 3)
	a.apply(assign(3, 6, 1)) // next term, resumed epoch: applied
	check(3, 6, 1)
}
