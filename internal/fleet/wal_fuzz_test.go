package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// FuzzWALReplay throws arbitrary byte soup at the write-ahead log
// replayer — the code every coordinator restart trusts with whatever a
// crash left on disk. Invariants:
//
//   - replay never panics and never returns an error for in-memory
//     input (content damage is torn records, not failure);
//   - goodLen never exceeds the input and is exactly the bytes the
//     intact frames cover;
//   - a record is returned iff at least one intact frame exists
//     (goodLen > 0 ⟺ rec != nil);
//   - recovery is idempotent: replaying the goodLen-truncated prefix —
//     exactly what openWAL leaves on disk — yields the same record,
//     the same length, and zero torn frames.
func FuzzWALReplay(f *testing.F) {
	frame := func(payload []byte) []byte {
		b := make([]byte, walHeaderLen+len(payload))
		binary.LittleEndian.PutUint32(b[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
		copy(b[walHeaderLen:], payload)
		return b
	}
	rec1, _ := json.Marshal(walRecord{Term: 1, Epoch: 1, Primary: "p", Seeds: []string{"p"}})
	rec2, _ := json.Marshal(walRecord{Term: 2, Epoch: 5, Primary: "q", Seeds: []string{"p", "q"}, Owners: map[int]string{0: "n0"}})

	f.Add([]byte{})
	f.Add(frame(rec1))
	f.Add(append(frame(rec1), frame(rec2)...))
	f.Add(append(frame(rec1), "torn tail"...))
	f.Add(frame(rec2)[:len(frame(rec2))-3]) // truncated payload
	f.Add(frame([]byte("framed but not json")))
	corrupted := frame(rec2)
	corrupted[walHeaderLen+2] ^= 0x08
	f.Add(append(frame(rec1), corrupted...))
	insane := make([]byte, walHeaderLen)
	binary.LittleEndian.PutUint32(insane[:4], uint32(walMaxRecord+1))
	f.Add(append(frame(rec1), insane...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, goodLen, torn, err := replayWAL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("replay errored on in-memory bytes: %v", err)
		}
		if goodLen < 0 || goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d outside [0, %d]", goodLen, len(data))
		}
		if (rec != nil) != (goodLen > 0) {
			t.Fatalf("rec=%v but goodLen=%d", rec, goodLen)
		}
		if torn < 0 || torn > 1 {
			// Replay stops at the first bad frame, so it can abandon at
			// most one damage site per scan.
			t.Fatalf("torn = %d, want 0 or 1", torn)
		}
		rec2, goodLen2, torn2, err := replayWAL(bytes.NewReader(data[:goodLen]))
		if err != nil {
			t.Fatalf("replay of recovered prefix errored: %v", err)
		}
		if goodLen2 != goodLen || torn2 != 0 {
			t.Fatalf("recovery not idempotent: goodLen %d→%d, torn %d", goodLen, goodLen2, torn2)
		}
		if (rec == nil) != (rec2 == nil) {
			t.Fatalf("recovered prefix lost the record: %v vs %v", rec, rec2)
		}
		if rec != nil && (rec2.Term != rec.Term || rec2.Epoch != rec.Epoch) {
			t.Fatalf("recovered prefix replayed (%d, %d), want (%d, %d)", rec2.Term, rec2.Epoch, rec.Term, rec.Epoch)
		}
	})
}
