package fleet

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// testTimings is a fast failure-detection clock for tests: suspect at
// 40ms of silence, dead at 90ms.
func testTimings() Timings {
	return Timings{
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      90 * time.Millisecond,
	}
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fakeNode is a hand-rolled control-plane peer: it speaks raw
// heartbeats over TCP so tests control exactly when a node goes
// silent while keeping its connection alive (a partition, not a
// crash).
type fakeNode struct {
	t    *testing.T
	id   string
	conn net.Conn
	enc  *json.Encoder
	msgs chan rsu.Message
	stop chan struct{}
}

func dialFake(t *testing.T, coordAddr, id string) *fakeNode {
	t.Helper()
	conn, err := net.Dial("tcp", coordAddr)
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}
	f := &fakeNode{
		t:    t,
		id:   id,
		conn: conn,
		enc:  json.NewEncoder(conn),
		msgs: make(chan rsu.Message, 256),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(f.msgs)
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var msg rsu.Message
			if err := dec.Decode(&msg); err != nil {
				return
			}
			select {
			case f.msgs <- msg:
			default:
			}
		}
	}()
	return f
}

// heartbeat sends one heartbeat; errors are returned, not fatal,
// because late heartbeats may legitimately hit a closing connection.
func (f *fakeNode) heartbeat() error {
	return f.enc.Encode(rsu.HeartbeatMessage(f.id, "rsu-"+f.id+":1", 0))
}

// pump heartbeats on the test clock until stopPump is called.
func (f *fakeNode) pump(every time.Duration) {
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-tick.C:
				if f.heartbeat() != nil {
					return
				}
			}
		}
	}()
}

func (f *fakeNode) stopPump() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
}

// TestCoordinatorPartition walks the full failure-detection timeline
// for a node that goes silent but stays alive: live → suspect (shards
// kept) → dead (shards reassigned, failover counted) → late heartbeat
// rejected with a redirect and the stale connection dropped.
func TestCoordinatorPartition(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8}
	tt := testTimings()
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator("127.0.0.1:0",
		WithIntersections(keys...),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter),
		WithMetrics(reg))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	failovers := reg.Counter("fleet_failovers_total", "")
	late := reg.Counter("fleet_late_heartbeats_total", "")

	n1 := dialFake(t, coord.Addr(), "n1")
	n2 := dialFake(t, coord.Addr(), "n2")
	if err := n1.heartbeat(); err != nil {
		t.Fatalf("n1 register: %v", err)
	}
	if err := n2.heartbeat(); err != nil {
		t.Fatalf("n2 register: %v", err)
	}
	n1.pump(testTimings().HeartbeatEvery)
	defer n1.stopPump()

	waitFor(t, "both nodes live and all intersections assigned", func() bool {
		if !stateIs(coord, "n1", Live) || !stateIs(coord, "n2", Live) {
			return false
		}
		owners := coord.Assignments()
		for _, k := range keys {
			if owners[k] != "n1" && owners[k] != "n2" {
				return false
			}
		}
		return true
	})
	// With FNV-1a rendezvous over {n1,n2}×{1..8} the split is
	// deterministic; both sides own shards, so the reassignment below
	// is observable. Guard the assumption rather than silently passing.
	if n2Owned := countOwned(coord.Assignments(), "n2"); n2Owned == 0 {
		t.Fatalf("test assumption broken: n2 owns nothing before the partition")
	}
	epochBefore := coord.Epoch()

	// Partition: n2 stops heartbeating but its connection stays open.
	// First it is suspected — and keeps its shards, because suspicion
	// is not death.
	waitFor(t, "n2 suspect", func() bool { return stateIs(coord, "n2", Suspect) })
	if got := countOwned(coord.Assignments(), "n2"); got == 0 {
		t.Fatalf("suspect node lost its shards before being declared dead")
	}
	if failovers.Value() != 0 {
		t.Fatalf("failover counted for a merely-suspect node")
	}

	// Silence past DeadAfter: declared dead, shards move to n1.
	waitFor(t, "n2 dead", func() bool { return stateIs(coord, "n2", Dead) })
	waitFor(t, "all intersections on n1", func() bool {
		return countOwned(coord.Assignments(), "n1") == len(keys)
	})
	if got := failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d; want 1", got)
	}
	if coord.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance on failover: %d → %d", epochBefore, coord.Epoch())
	}

	// The partition heals and n2's heartbeat arrives late: the
	// coordinator must reject it with a redirect (its shards belong to
	// n1 now) and drop the stale connection.
	if err := n2.heartbeat(); err != nil {
		t.Fatalf("late heartbeat write: %v", err)
	}
	var redirect *rsu.Message
	deadline := time.After(5 * time.Second)
	for redirect == nil {
		select {
		case msg, ok := <-n2.msgs:
			if !ok {
				t.Fatalf("connection closed before a redirect arrived")
			}
			if msg.Type == rsu.TypeRedirect {
				redirect = &msg
			}
		case <-deadline:
			t.Fatalf("no redirect reply to the late heartbeat")
		}
	}
	if redirect.Addr != coord.Addr() {
		t.Fatalf("redirect points at %q; want coordinator %q", redirect.Addr, coord.Addr())
	}
	if late.Value() < 1 {
		t.Fatalf("late heartbeat not counted")
	}
	waitFor(t, "stale connection dropped", func() bool {
		select {
		case _, ok := <-n2.msgs:
			return !ok
		default:
			return false
		}
	})
}

// TestCoordinatorSuspectRecovery: a slow node that resumes
// heartbeating before DeadAfter returns to live with no failover and
// no shard movement.
func TestCoordinatorSuspectRecovery(t *testing.T) {
	keys := []int{1, 2, 3, 4}
	reg := telemetry.NewRegistry()
	// Deliberately on the deprecated Config path: the shim must keep
	// building coordinators identical to the options path.
	coord, err := NewCoordinatorFromConfig("127.0.0.1:0", Config{
		Intersections: keys,
		Timings:       testTimings(),
		Metrics:       reg,
	})
	if err != nil {
		t.Fatalf("NewCoordinatorFromConfig: %v", err)
	}
	defer coord.Close()

	n1 := dialFake(t, coord.Addr(), "n1")
	if err := n1.heartbeat(); err != nil {
		t.Fatalf("register: %v", err)
	}
	waitFor(t, "n1 live", func() bool { return stateIs(coord, "n1", Live) })
	epochBefore := coord.Epoch()

	waitFor(t, "n1 suspect", func() bool { return stateIs(coord, "n1", Suspect) })
	if err := n1.heartbeat(); err != nil {
		t.Fatalf("recovery heartbeat: %v", err)
	}
	waitFor(t, "n1 recovered", func() bool { return stateIs(coord, "n1", Live) })
	if got := reg.Counter("fleet_failovers_total", "").Value(); got != 0 {
		t.Fatalf("failovers = %d after mere suspicion; want 0", got)
	}
	if coord.Epoch() != epochBefore {
		t.Fatalf("epoch moved (%d → %d) without a membership change", epochBefore, coord.Epoch())
	}
	n1.stopPump()
}

// stateIs checks a node's state with an explicit presence test —
// NodeState's zero value is Live, so a bare map read would report an
// unregistered node as alive.
func stateIs(coord *Coordinator, id string, want NodeState) bool {
	got, ok := coord.States()[id]
	return ok && got == want
}

func countOwned(owners map[int]string, id string) int {
	n := 0
	for _, owner := range owners {
		if owner == id {
			n++
		}
	}
	return n
}
