// Package fleet is the distribution layer above SafeCross's serving
// plane: it turns a set of independent RSU processes into one
// fault-tolerant deployment that keeps every intersection's warning
// stream alive when a node crashes, hangs, or partitions.
//
// The subsystem has two halves:
//
//   - A Coordinator owns the intersection→node assignment. Placement
//     uses rendezvous (highest-random-weight) hashing over the live
//     node set, so a membership change moves only the shards that
//     must move. Liveness is heartbeat-based with a suspect→dead
//     escalation: a node whose heartbeats stop is first suspected
//     (still owns its shards — it may just be slow), then declared
//     dead, at which point its intersections are re-sharded onto the
//     survivors and fresh assignments are pushed to every live node.
//     A heartbeat arriving from a node already declared dead is
//     rejected with a redirect back to the coordinator — the node
//     must rejoin as a newcomer, because its shards already belong to
//     someone else.
//
//   - An Agent runs beside each RSU process. It registers with the
//     coordinator, heartbeats on an interval (measuring RTT), and
//     applies assignment pushes: starting a runner goroutine per
//     newly owned intersection, cancelling runners for shards that
//     moved away, updating the wrapped rsu.Server's routing table
//     (so misdirected vehicles get redirected), and telling
//     already-subscribed vehicles where their intersection went.
//     Losing the coordinator connection does not stop serving — the
//     agent keeps its current shards and redials with backoff, so a
//     coordinator restart is invisible to traffic.
//
// The control plane speaks the rsu wire protocol (heartbeat, assign,
// redirect messages as newline-delimited JSON over TCP), so one
// message vocabulary covers both vehicles and fleet internals.
package fleet

import (
	"fmt"
	"time"

	"safecross/internal/telemetry"
)

// NodeState is the coordinator's liveness verdict for one node.
type NodeState int

const (
	// Live nodes heartbeat within SuspectAfter.
	Live NodeState = iota
	// Suspect nodes missed heartbeats past SuspectAfter but keep
	// their shards — they may merely be slow or briefly partitioned.
	Suspect
	// Dead nodes missed heartbeats past DeadAfter (or drained away);
	// their shards have been reassigned and any late heartbeat is
	// rejected.
	Dead
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case Live:
		return "live"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Timings groups the failure-detection clock: how often agents
// heartbeat and how long silence lasts before suspicion and death.
type Timings struct {
	// HeartbeatEvery is the agent's ping interval (default 250ms).
	HeartbeatEvery time.Duration
	// SuspectAfter is silence before a node is suspected (default
	// 3 × HeartbeatEvery).
	SuspectAfter time.Duration
	// DeadAfter is silence before a node is declared dead and its
	// shards move (default 6 × HeartbeatEvery).
	DeadAfter time.Duration
}

// withDefaults fills zero fields.
func (t Timings) withDefaults() Timings {
	if t.HeartbeatEvery <= 0 {
		t.HeartbeatEvery = 250 * time.Millisecond
	}
	if t.SuspectAfter <= 0 {
		t.SuspectAfter = 3 * t.HeartbeatEvery
	}
	if t.DeadAfter <= 0 {
		t.DeadAfter = 6 * t.HeartbeatEvery
	}
	return t
}

// validate rejects clocks that cannot detect anything.
func (t Timings) validate() error {
	if t.SuspectAfter < t.HeartbeatEvery {
		return fmt.Errorf("fleet: suspect-after %v below heartbeat interval %v", t.SuspectAfter, t.HeartbeatEvery)
	}
	if t.DeadAfter < t.SuspectAfter {
		return fmt.Errorf("fleet: dead-after %v below suspect-after %v", t.DeadAfter, t.SuspectAfter)
	}
	return nil
}

// nopIfNil returns a usable registry: metrics code never branches on
// wiring.
func nopIfNil(reg *telemetry.Registry) *telemetry.Registry {
	if reg == nil {
		return telemetry.NewRegistry()
	}
	return reg
}
