// Coordinator replication: the primary streams epoch-versioned
// membership and assignment state to its standby replicas, and the
// lowest-ranked live standby promotes itself when the primary goes
// silent — resuming the epoch sequence monotonically under a fresh,
// strictly larger term.
//
// The fencing invariant: every piece of coordinator state is stamped
// with a (term, epoch) pair ordered lexicographically. A birth
// primary opens term 1; every promotion opens a strictly larger term
// while KEEPING the replicated epoch, so epochs never regress across
// failovers. Receivers — standbys applying replicate streams, agents
// applying assigns — accept only strictly advancing (term, epoch)
// stamps, so a partitioned stale primary can bump its own epochs
// forever and still fence off the moment a promoted standby exists:
// no split-brain, no shard served under two masters.
package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// Role is a coordinator's current station in the replica set.
type Role int

const (
	// RoleStandby replicas apply the primary's stream and wait.
	RoleStandby Role = iota
	// RolePrimary owns the assignment and replicates it outward.
	RolePrimary
)

// String names the role.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "standby"
}

// stateFromString parses a replicated NodeState name (the inverse of
// NodeState.String).
func stateFromString(s string) NodeState {
	switch s {
	case "live":
		return Live
	case "suspect":
		return Suspect
	default:
		return Dead
	}
}

// rankLocked returns addr's position in the seed list (len(seeds) for
// strangers, so an unknown claimant loses every tie-break). Callers
// hold c.mu.
func (c *Coordinator) rankLocked(addr string) int {
	for i, s := range c.seeds {
		if s == addr {
			return i
		}
	}
	return len(c.seeds)
}

// standbyRankLocked returns this standby's position among the seeds
// that are not the current primary — the stagger index for promotion
// (-1 while this coordinator is not in the seed list). Callers hold
// c.mu.
func (c *Coordinator) standbyRankLocked() int {
	self := c.Addr()
	p := 0
	for _, s := range c.seeds {
		if s == c.primaryAddr {
			continue
		}
		if s == self {
			return p
		}
		p++
	}
	return -1
}

// startReplicatorsLocked launches one replication goroutine per peer
// in the seed list. Callers hold c.mu and have already set the role
// to primary; the stop channel fences this term's replicators so a
// step-down cannot leak a stale stream.
func (c *Coordinator) startReplicatorsLocked() {
	stop := make(chan struct{})
	c.replStop = stop
	self := c.Addr()
	for _, peer := range c.seeds {
		if peer == self {
			continue
		}
		c.wg.Add(1)
		go c.replicator(peer, stop)
	}
}

// replicator keeps one standby fed: dial, stream replicate messages
// every heartbeat interval, observe ack lag, redial on loss. It exits
// when this term ends (stop) or the coordinator closes.
func (c *Coordinator) replicator(peer string, stop chan struct{}) {
	defer c.wg.Done()
	lag := c.reg.Histogram(fmt.Sprintf("fleet_replication_lag_seconds{peer=%q}", peer),
		"replicate send to standby ack", telemetry.UnitSeconds)
	pushErr := c.reg.Counter(fmt.Sprintf("fleet_push_errors_total{peer=%q}", peer),
		"control-plane pushes that failed to write")
	backoff := c.cfg.Timings.HeartbeatEvery
	maxBackoff := c.cfg.Timings.SuspectAfter
	for {
		select {
		case <-stop:
			return
		case <-c.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", peer, c.cfg.PushTimeout)
		if err != nil {
			c.log.Debugf("fleet: cannot reach standby %s: %v", peer, err)
			select {
			case <-stop:
				return
			case <-c.stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = c.cfg.Timings.HeartbeatEvery
		c.replicateStream(peer, conn, stop, lag, pushErr)
		_ = conn.Close()
	}
}

// replicateStream runs one replication connection to a standby:
// snapshot-and-send on every heartbeat tick, acks folded into the lag
// histogram. A promote coming back means a higher term exists — the
// reader steps this primary down and the stream dies with its term.
func (c *Coordinator) replicateStream(peer string, conn net.Conn, stop chan struct{}, lag *telemetry.Histogram, pushErr *telemetry.Counter) {
	enc := json.NewEncoder(conn)
	var mu sync.Mutex
	var pending time.Time
	done := make(chan struct{})
	go func() {
		defer close(done)
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var msg rsu.Message
			if err := dec.Decode(&msg); err != nil {
				return
			}
			switch msg.Type {
			case rsu.TypeHeartbeat:
				mu.Lock()
				if !pending.IsZero() {
					lag.ObserveDuration(time.Since(pending))
					pending = time.Time{}
				}
				mu.Unlock()
			case rsu.TypePromote:
				c.maybeStepDown(msg.Term, msg.Epoch, msg.Addr)
				return
			}
		}
	}()
	tick := time.NewTicker(c.cfg.Timings.HeartbeatEvery)
	defer tick.Stop()
	for {
		msg, ok := c.replicateMsg()
		if !ok {
			return // stepped down or closed; this term's stream is over
		}
		mu.Lock()
		if pending.IsZero() {
			pending = time.Now()
		}
		mu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.PushTimeout))
		if err := enc.Encode(msg); err != nil {
			pushErr.Inc()
			c.log.Debugf("fleet: replicate to %s failed: %v", peer, err)
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
		select {
		case <-stop:
			return
		case <-c.stop:
			return
		case <-done:
			return
		case <-tick.C:
		}
	}
}

// replicateMsg snapshots the primary's replicated state into one wire
// message; ok is false once this coordinator no longer leads.
func (c *Coordinator) replicateMsg() (rsu.Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.role != RolePrimary || c.closed {
		return rsu.Message{}, false
	}
	members := make([]rsu.FleetMember, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, rsu.FleetMember{Node: m.id, Addr: m.addr, DebugAddr: m.debugAddr, State: m.state.String()})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Node < members[j].Node })
	owners := make(map[int]string, len(c.owners))
	for k, v := range c.owners {
		owners[k] = v
	}
	keys := append([]int(nil), c.cfg.Intersections...)
	seeds := append([]string(nil), c.seeds...)
	msg := rsu.ReplicateMessage(c.term, c.epoch, c.Addr(), seeds, keys, owners, members)
	// The commit watermark: how far durability has caught up with this
	// term. Standbys persist a replicated state only once the primary
	// has it on disk, so the fleet's logs never run ahead of the
	// primary's. A memory-only primary commits instantly.
	if c.wal != nil {
		if dt, de := c.wal.Durable(); dt == c.term {
			msg.Commit = de
		}
	} else {
		msg.Commit = c.epoch
	}
	return msg, true
}

// replicaSession handles an inbound replication stream (the receiving
// side): apply each replicate that advances (term, epoch), ack it
// with a heartbeat echo, and fence anything stale with a promote
// naming the primary we believe in.
func (c *Coordinator) replicaSession(conn net.Conn, dec *json.Decoder, enc *json.Encoder, first rsu.Message) {
	msg := first
	for {
		reply, drop := c.onReplicate(msg)
		if reply.Type != "" {
			_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.PushTimeout))
			if err := enc.Encode(reply); err != nil {
				return
			}
			_ = conn.SetWriteDeadline(time.Time{})
		}
		if drop {
			return
		}
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.Type != rsu.TypeReplicate || msg.Validate() != nil {
			return
		}
	}
}

// onReplicate applies one replicate message. Stale stamps are fenced:
// the reply is a promote naming the leader we believe in, and drop
// kills the connection so the stale primary redials only after
// stepping down.
func (c *Coordinator) onReplicate(msg rsu.Message) (reply rsu.Message, drop bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return rsu.Message{}, true
	}
	if !c.acceptsReplLocked(msg.Term, msg.Epoch, msg.Primary) {
		c.log.Warnf("fleet: fencing stale replication from %q (term %d epoch %d; ours %d/%d)",
			msg.Primary, msg.Term, msg.Epoch, c.term, c.epoch)
		leader := c.primaryAddr
		if c.role == RolePrimary {
			leader = c.Addr()
		}
		if leader == "" {
			return rsu.Message{}, true
		}
		return rsu.PromoteMessage(leader, c.term, c.epoch), true
	}
	if c.role == RolePrimary {
		// A strictly newer primary exists; this one submits.
		c.stepDownLocked(msg.Primary)
	}
	c.term, c.epoch = msg.Term, msg.Epoch
	c.primaryAddr = msg.Primary
	c.seeds = append([]string(nil), msg.Seeds...)
	c.cfg.Intersections = append([]int(nil), msg.Owned...)
	c.lastRepl = now
	c.owners = make(map[int]string, len(msg.Owners))
	for k, v := range msg.Owners {
		c.owners[k] = v
	}
	seen := make(map[string]bool, len(msg.Members))
	for _, fm := range msg.Members {
		seen[fm.Node] = true
		m := c.members[fm.Node]
		if m == nil {
			m = &member{
				id:   fm.Node,
				live: c.reg.Gauge(fmt.Sprintf("fleet_node_live{node=%q}", fm.Node), "1 while the node is not declared dead"),
			}
			c.members[fm.Node] = m
		}
		m.addr = fm.Addr
		m.debugAddr = fm.DebugAddr
		m.state = stateFromString(fm.State)
		m.last = now
		if m.state == Dead {
			m.live.Set(0)
		} else {
			m.live.Set(1)
		}
	}
	for id := range c.members {
		if !seen[id] {
			delete(c.members, id)
		}
	}
	if msg.Commit >= msg.Epoch {
		// The primary has this state on disk — mirror it into our own
		// log so a full control-plane restart can resume from any
		// surviving coordinator's directory.
		c.persistLocked()
	}
	return rsu.HeartbeatMessage(c.Addr(), "", c.epoch), false
}

// acceptsReplLocked is the fencing predicate: a replicate is applied
// only if its (term, epoch) stamp has not fallen behind ours, and a
// same-term claim against a sitting primary is settled by seed-list
// rank (lower wins). Callers hold c.mu.
func (c *Coordinator) acceptsReplLocked(term, epoch int64, primary string) bool {
	if term < c.term || (term == c.term && epoch < c.epoch) {
		return false
	}
	if c.role == RolePrimary && term == c.term {
		return c.rankLocked(primary) < c.rankLocked(c.Addr())
	}
	return true
}

// maybeStepDown is the replicator reader's reaction to a promote: if
// the named leader's stamp beats ours, adopt it and submit.
func (c *Coordinator) maybeStepDown(term, epoch int64, primary string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	newer := term > c.term ||
		(term == c.term && c.role == RolePrimary && c.rankLocked(primary) < c.rankLocked(c.Addr()))
	if !newer {
		return
	}
	c.stepDownLocked(primary)
	c.term, c.epoch = term, epoch
	c.primaryAddr = primary
	c.lastRepl = time.Now()
}

// stepDownLocked demotes a primary to standby and retires its term's
// replicators. Callers hold c.mu.
func (c *Coordinator) stepDownLocked(newPrimary string) {
	if c.role != RolePrimary {
		return
	}
	c.role = RoleStandby
	if c.replStop != nil {
		close(c.replStop)
		c.replStop = nil
	}
	c.log.Warnf("fleet: coordinator %s stepping down; %q leads", c.Addr(), newPrimary)
}

// standbyTickLocked is the standby half of the failure detector. In a
// fleet of three or more coordinators, replicate-silence past DeadAfter
// makes this standby a CANDIDATE: it asks every other seed for a vote
// and promotes only on majority acknowledgment (quorum.go) — one
// partitioned standby's local clock cannot split the brain. Rank still
// staggers candidacy (by heartbeat intervals, not DeadAfter multiples)
// so the lowest live rank usually runs the first, uncontested election.
// Fleets of one or two coordinators cannot form a meaningful majority
// that excludes the candidate's own delusion, so they keep the
// rank-staggered timeout path: DeadAfter × (1 + rank), by which time an
// earlier rank's replicate stream would have reset our clock. Callers
// hold c.mu.
func (c *Coordinator) standbyTickLocked(now time.Time) {
	if c.primaryAddr == "" || c.term < 1 || len(c.seeds) == 0 {
		return // never fed: nothing to promote over
	}
	p := c.standbyRankLocked()
	if p < 0 {
		return
	}
	if len(c.seeds) < 3 {
		if now.Sub(c.lastRepl) < c.cfg.Timings.DeadAfter*time.Duration(1+p) {
			return
		}
		c.promoteLocked(now, c.term+1, promoteViaTimeout)
		return
	}
	c.maybeCampaignLocked(now, p)
}

const (
	promoteViaTimeout = "timeout"
	promoteViaQuorum  = "quorum"
)

// promoteLocked turns this standby into the primary under the given
// strictly larger term and the SAME epoch (the sequence resumes, never
// regresses): the replicated membership is adopted with a fresh grace
// stamp so re-heartbeating agents are not instantly declared dead, the
// promotion is forced onto disk before anything can replicate under
// the new term, the fleet-wide membership gauges are taken over, and
// replication streams started toward every other seed. Callers hold
// c.mu.
func (c *Coordinator) promoteLocked(now time.Time, term int64, via string) {
	c.role = RolePrimary
	c.term = term
	c.primaryAddr = c.Addr()
	c.lastRepl = now
	// Promotion grace: agents have been sweeping the seed list since
	// the old primary died, and the quorum election lengthens the
	// leaderless window beyond what their redial backoff assumed — give
	// them one extra DeadAfter to find us before the failure detector
	// may rule.
	grace := now.Add(c.cfg.Timings.DeadAfter)
	for _, m := range c.members {
		if m.state != Dead {
			m.last = grace
		}
	}
	c.metrics.promotions.Inc()
	if via == promoteViaQuorum {
		c.metrics.quorumPromotions.Inc()
	}
	c.persistLocked()
	if c.wal != nil {
		c.wal.Sync()
	}
	c.registerMembershipGauges()
	c.startReplicatorsLocked()
	c.log.Warnf("fleet: standby %s promoted to primary via %s (term %d, epoch %d, %d members)",
		c.Addr(), via, c.term, c.epoch, len(c.members))
}

// Stats is a point-in-time snapshot of coordinator activity — a
// façade over a telemetry.Snapshot of the coordinator's registry plus
// the role/term/epoch triple. On a registry shared across a replica
// set the counters are fleet-wide (every coordinator feeds the same
// series); the role fields are this instance's own.
type Stats struct {
	// Role is this coordinator's current station ("primary" or
	// "standby"); Term and Epoch are its fencing stamp.
	Role        string
	Term, Epoch int64
	// NodesLive counts members not declared dead; NodesSuspect the
	// suspected subset.
	NodesLive, NodesSuspect int
	// Heartbeats counts agent heartbeats received; LateHeartbeats the
	// ones rejected because the node was already declared dead.
	Heartbeats, LateHeartbeats int
	// Failovers counts nodes declared dead by timeout; Reassignments
	// the assignment epochs pushed; Joins and Drains the memberships
	// opened and gracefully closed.
	Failovers, Reassignments, Joins, Drains int
	// Promotions counts standby coordinators promoted to primary;
	// QuorumPromotions the subset won by majority acknowledgment
	// rather than a rank timeout.
	Promotions, QuorumPromotions int
	// QuorumVotes counts promotion votes this registry's coordinators
	// granted to candidate standbys.
	QuorumVotes int
	// WALReplays counts coordinator starts that resumed durable state
	// from a write-ahead log.
	WALReplays int
	// PushErrors totals failed control-plane writes across all peers
	// (nodes and standbys).
	PushErrors int
}

// Stats returns the coordinator façade over the telemetry registry.
func (c *Coordinator) Stats() Stats {
	snap := c.reg.Snapshot()
	c.mu.Lock()
	role, term, epoch := c.role, c.term, c.epoch
	var live, suspect int
	for _, m := range c.members {
		if m.state != Dead {
			live++
		}
		if m.state == Suspect {
			suspect++
		}
	}
	c.mu.Unlock()
	return Stats{
		Role:             role.String(),
		Term:             term,
		Epoch:            epoch,
		NodesLive:        live,
		NodesSuspect:     suspect,
		Heartbeats:       snap.Int("fleet_heartbeats_total"),
		LateHeartbeats:   snap.Int("fleet_late_heartbeats_total"),
		Failovers:        snap.Int("fleet_failovers_total"),
		Reassignments:    snap.Int("fleet_reassignments_total"),
		Joins:            snap.Int("fleet_joins_total"),
		Drains:           snap.Int("fleet_drains_total"),
		Promotions:       snap.Int("fleet_promotions_total"),
		QuorumPromotions: snap.Int("fleet_quorum_promotions_total"),
		QuorumVotes:      snap.Int("fleet_quorum_votes_total"),
		WALReplays:       snap.Int("fleet_wal_replays_total"),
		PushErrors:       int(snap.Total("fleet_push_errors_total")),
	}
}
