package fleet

import (
	"testing"
)

func TestOwnerOrderIndependent(t *testing.T) {
	orders := [][]string{
		{"a", "b", "c"},
		{"c", "a", "b"},
		{"b", "c", "a"},
	}
	for key := 1; key <= 64; key++ {
		want, ok := Owner(orders[0], key)
		if !ok {
			t.Fatalf("Owner(%v, %d) not ok", orders[0], key)
		}
		for _, nodes := range orders[1:] {
			got, _ := Owner(nodes, key)
			if got != want {
				t.Fatalf("Owner for key %d depends on node order: %q vs %q", key, want, got)
			}
		}
	}
}

func TestOwnerEmptyNodes(t *testing.T) {
	if owner, ok := Owner(nil, 1); ok || owner != "" {
		t.Fatalf("Owner(nil, 1) = %q, %v; want empty, false", owner, ok)
	}
	if got := Assignments(nil, []int{1, 2}); len(got) != 0 {
		t.Fatalf("Assignments with no nodes = %v; want empty", got)
	}
}

// TestAssignmentsMinimalMovement is the property rendezvous hashing
// buys over mod-N: removing a node moves only that node's keys.
func TestAssignmentsMinimalMovement(t *testing.T) {
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i + 1
	}
	before := Assignments([]string{"a", "b", "c"}, keys)
	after := Assignments([]string{"a", "b"}, keys)
	for _, k := range keys {
		if before[k] != "c" && after[k] != before[k] {
			t.Fatalf("key %d moved %q→%q although its owner survived", k, before[k], after[k])
		}
		if before[k] == "c" && after[k] == "c" {
			t.Fatalf("key %d still assigned to removed node", k)
		}
	}
}

// TestAssignmentsSpread is a loose balance sanity check: with 64 keys
// over 3 nodes, nobody should be starved or hoarding.
func TestAssignmentsSpread(t *testing.T) {
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i + 1
	}
	counts := map[string]int{}
	for _, owner := range Assignments([]string{"a", "b", "c"}, keys) {
		counts[owner]++
	}
	for _, n := range []string{"a", "b", "c"} {
		if counts[n] == 0 {
			t.Fatalf("node %q owns nothing of 64 keys: %v", n, counts)
		}
		if counts[n] > 48 {
			t.Fatalf("node %q hoards %d of 64 keys: %v", n, counts[n], counts)
		}
	}
}
