package fleet

import (
	"reflect"
	"testing"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// TestCoordinatorOptionsShimEquivalence builds one coordinator
// through the options API and one through the deprecated Config shim
// with the same settings, and checks the two paths normalise to the
// same configuration and birth state.
func TestCoordinatorOptionsShimEquivalence(t *testing.T) {
	keys := []int{1, 2, 3}
	tt := testTimings()
	reg := telemetry.NewRegistry()
	log := telemetry.NewLogger(nil, telemetry.LevelWarn)

	viaOpts, err := NewCoordinator("127.0.0.1:0",
		WithIntersections(keys...),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter),
		WithPushTimeout(time.Second),
		WithMetrics(reg),
		WithLogger(log))
	if err != nil {
		t.Fatalf("options path: %v", err)
	}
	defer viaOpts.Close()
	viaCfg, err := NewCoordinatorFromConfig("127.0.0.1:0", Config{
		Intersections: keys,
		Timings:       tt,
		PushTimeout:   time.Second,
		Metrics:       reg,
		Logger:        log,
	})
	if err != nil {
		t.Fatalf("config shim path: %v", err)
	}
	defer viaCfg.Close()

	// Blank the per-instance bindings (the shared registry and logger
	// pointers are identical by construction); everything else the two
	// normalised configs hold must match exactly.
	a, b := viaOpts.cfg, viaCfg.cfg
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("normalised configs differ:\noptions: %+v\nshim:    %+v", a, b)
	}
	if viaOpts.Role() != viaCfg.Role() || viaOpts.Term() != viaCfg.Term() || viaOpts.Epoch() != viaCfg.Epoch() {
		t.Fatalf("birth state differs: (%v,%d,%d) vs (%v,%d,%d)",
			viaOpts.Role(), viaOpts.Term(), viaOpts.Epoch(),
			viaCfg.Role(), viaCfg.Term(), viaCfg.Epoch())
	}
	if viaOpts.Role() != RolePrimary || viaOpts.Term() != 1 {
		t.Fatalf("birth primary at role %v term %d; want primary term 1", viaOpts.Role(), viaOpts.Term())
	}
}

// TestAgentOptionsShimEquivalence does the same for agents, including
// the deprecated single-address Coordinator field being folded into
// the seed list.
func TestAgentOptionsShimEquivalence(t *testing.T) {
	tt := testTimings()
	reg := telemetry.NewRegistry()
	srv1, err := rsu.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	srv2, err := rsu.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	viaOpts, err := NewAgent("n1", srv1,
		WithCoordinators("127.0.0.1:9"),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter),
		WithDialTimeout(time.Second),
		WithAdvertise("adv:1"),
		WithMetrics(reg))
	if err != nil {
		t.Fatalf("options path: %v", err)
	}
	defer viaOpts.Close()
	viaCfg, err := NewAgentFromConfig(AgentConfig{
		ID:          "n1",
		Coordinator: "127.0.0.1:9", // legacy single address → one-element seed list
		Advertise:   "adv:1",
		Timings:     tt,
		DialTimeout: time.Second,
		Metrics:     reg,
	}, srv2, nil)
	if err != nil {
		t.Fatalf("config shim path: %v", err)
	}
	defer viaCfg.Close()

	a, b := viaOpts.cfg, viaCfg.cfg
	b.Coordinator = "" // the shim keeps the legacy field it was fed; seed lists must match
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("normalised configs differ:\noptions: %+v\nshim:    %+v", a, b)
	}
	if len(a.Coordinators) != 1 || a.Coordinators[0] != "127.0.0.1:9" {
		t.Fatalf("seed list = %v; want the single legacy address", a.Coordinators)
	}
}
