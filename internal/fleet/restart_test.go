package fleet

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// Crash-restart coverage: the whole control plane — primary and every
// standby — dies at once and is reborn from its write-ahead logs,
// plus the quorum-vote edge cases that keep elections honest.

// TestControlPlaneRestartFromWAL kills primary and both standbys
// mid-run and restarts them from the same data directory at the same
// addresses. The reborn primary must resume at a HIGHER term with the
// epoch intact, nodes must keep their shards (no runner churn), and
// every reborn coordinator must count a WAL replay.
func TestControlPlaneRestartFromWAL(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6}
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	tt := testTimings()
	hb := WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter)
	durable := []CoordinatorOption{hb, WithMetrics(reg), WithDataDir(dir), WithWALSyncEvery(time.Millisecond)}

	var sbs []*Coordinator
	var sbAddrs []string
	for i := 0; i < 2; i++ {
		sb, err := NewCoordinator("127.0.0.1:0", append([]CoordinatorOption{AsStandby()}, durable...)...)
		if err != nil {
			t.Fatalf("standby %d: %v", i, err)
		}
		sbs = append(sbs, sb)
		sbAddrs = append(sbAddrs, sb.Addr())
	}
	primary, err := NewCoordinator("127.0.0.1:0",
		append([]CoordinatorOption{WithIntersections(keys...), WithStandbys(sbAddrs...)}, durable...)...)
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	seeds := append([]string{primary.Addr()}, sbAddrs...)

	nodes := []*testNode{
		startNode(t, "n0", reg, seeds...),
		startNode(t, "n1", reg, seeds...),
	}
	defer func() {
		for _, n := range nodes {
			n.agent.Close()
			n.srv.Close()
		}
	}()
	// Coverage alone is true while the first-registered node still owns
	// everything; the baseline must be the settled TWO-node split or the
	// continuity check below compares against a stale epoch.
	waitFor(t, "full coverage split over both nodes", func() bool {
		return coverage(nodes, keys) &&
			len(nodes[0].agent.Owned()) >= 1 && len(nodes[1].agent.Owned()) >= 1
	})
	waitFor(t, "standbys fed", func() bool {
		return sbs[0].Primary() == primary.Addr() && sbs[1].Primary() == primary.Addr()
	})
	oldTerm, oldEpoch := primary.Term(), primary.Epoch()
	ownedBefore := map[string][]int{
		"n0": nodes[0].agent.Owned(),
		"n1": nodes[1].agent.Owned(),
	}
	waitFor(t, "state durable in every wal", func() bool {
		// Standbys persist only once the primary's commit watermark
		// covers the epoch they applied, so all three logs must be
		// caught up before the world may end.
		dt, de := primary.wal.Durable()
		if dt != oldTerm || de != oldEpoch {
			return false
		}
		for _, sb := range sbs {
			if st, se := sb.wal.Durable(); st != oldTerm || se != oldEpoch {
				return false
			}
		}
		return true
	})

	// The world ends: every coordinator dies at once.
	primary.Close()
	for _, sb := range sbs {
		sb.Close()
	}

	// And is reborn at the same addresses from the same data dir.
	var reborn []*Coordinator
	for _, addr := range sbAddrs {
		sb, err := NewCoordinator(addr, append([]CoordinatorOption{AsStandby()}, durable...)...)
		if err != nil {
			t.Fatalf("reborn standby %s: %v", addr, err)
		}
		t.Cleanup(func() { sb.Close() })
		reborn = append(reborn, sb)
	}
	np, err := NewCoordinator(primary.Addr(),
		append([]CoordinatorOption{WithIntersections(keys...), WithStandbys(sbAddrs...)}, durable...)...)
	if err != nil {
		t.Fatalf("reborn primary: %v", err)
	}
	t.Cleanup(func() { np.Close() })

	if got := np.Term(); got <= oldTerm {
		t.Fatalf("reborn primary term = %d; want > %d (a restart is a new incarnation)", got, oldTerm)
	}
	if got := np.Epoch(); got < oldEpoch {
		t.Fatalf("reborn primary epoch regressed: %d → %d", oldEpoch, got)
	}
	if got := countOwned(np.Assignments(), "n0") + countOwned(np.Assignments(), "n1"); got != len(keys) {
		t.Fatalf("reborn primary replayed %d of %d assignments", got, len(keys))
	}
	if got := reg.Counter("fleet_wal_replays_total", "").Value(); got < 3 {
		t.Fatalf("fleet_wal_replays_total = %d; want >= 3 (every reborn coordinator)", got)
	}
	waitFor(t, "nodes re-bound to the reborn primary", func() bool {
		st := np.States()
		return st["n0"] == Live && st["n1"] == Live
	})
	// Continuity: the restart must not have moved a single shard.
	for _, n := range nodes {
		got := n.agent.Owned()
		want := ownedBefore[n.id]
		if len(got) != len(want) {
			t.Fatalf("node %s churned shards across restart: %v → %v", n.id, want, got)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("node %s churned shards across restart: %v → %v", n.id, want, got)
			}
		}
	}
	waitFor(t, "reborn standbys follow the reborn primary", func() bool {
		return reborn[0].Primary() == np.Addr() && reborn[1].Primary() == np.Addr()
	})
	// Epochs must keep advancing monotonically from the replayed stamp.
	waitFor(t, "epochs advance after restart", func() bool { return np.Epoch() >= oldEpoch })
}

// sendVote dials addr as a candidate and returns the decoded ack.
func sendVote(t *testing.T, addr string, term, epoch int64) rsu.Message {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial voter: %v", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(rsu.VoteMessage("127.0.0.1:65000", term, epoch)); err != nil {
		t.Fatalf("send ballot: %v", err)
	}
	var reply rsu.Message
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		t.Fatalf("read ack: %v", err)
	}
	return reply
}

// TestQuorumDeniedByLivePrimary sends a ballot to a standby that still
// hears its primary: the vote must be denied — a live replicate stream
// outranks any candidate's silence story.
func TestQuorumDeniedByLivePrimary(t *testing.T) {
	reg := telemetry.NewRegistry()
	coords, _ := startReplicaSet(t, []int{1, 2}, 2, reg)
	primary, sb := coords[0], coords[1]
	waitFor(t, "standby fed", func() bool { return sb.Primary() == primary.Addr() })

	reply := sendVote(t, sb.Addr(), sb.Term()+1, sb.Epoch())
	if reply.Type != rsu.TypeAck || reply.Granted {
		t.Fatalf("standby that hears its primary answered %+v; want a denied ack", reply)
	}
	// The primary itself must also deny — it is the living refutation.
	reply = sendVote(t, primary.Addr(), primary.Term()+1, primary.Epoch())
	if reply.Type != rsu.TypeAck || reply.Granted {
		t.Fatalf("live primary answered %+v; want a denied ack", reply)
	}
	if got := reg.Counter("fleet_quorum_votes_total", "").Value(); got != 0 {
		t.Fatalf("fleet_quorum_votes_total = %d; want 0 granted votes", got)
	}
}

// TestQuorumNoPromotionWithoutMajority isolates the last standby of a
// three-coordinator fleet: with the primary AND the other standby
// dead it can only ever collect its own vote, so it must never
// promote — a minority partition stays a standby forever rather than
// risk a split brain.
func TestQuorumNoPromotionWithoutMajority(t *testing.T) {
	reg := telemetry.NewRegistry()
	coords, _ := startReplicaSet(t, []int{1, 2, 3}, 2, reg)
	primary, sb1, sb2 := coords[0], coords[1], coords[2]
	waitFor(t, "standbys fed", func() bool {
		return sb1.Primary() == primary.Addr() && sb2.Primary() == primary.Addr()
	})
	primary.Close()
	sb2.Close()
	// Give the survivor several election cycles' worth of time to (not)
	// promote itself.
	time.Sleep(8 * testTimings().DeadAfter)
	if sb1.Role() != RoleStandby {
		t.Fatalf("minority standby promoted itself to %v with 1 of 3 votes reachable", sb1.Role())
	}
	if got := reg.Counter("fleet_promotions_total", "").Value(); got != 0 {
		t.Fatalf("fleet_promotions_total = %d; want 0", got)
	}
	if got := reg.Counter("fleet_quorum_elections_total", "").Value(); got < 1 {
		t.Fatalf("fleet_quorum_elections_total = %d; want >= 1 (it must at least TRY)", got)
	}
}

// TestTwoCoordinatorTimeoutFallback: with only two coordinators a
// majority of "the others" is one dead peer, so quorum would wedge
// promotion forever. The standby must fall back to the rank-staggered
// timeout path and promote WITHOUT quorum votes.
func TestTwoCoordinatorTimeoutFallback(t *testing.T) {
	reg := telemetry.NewRegistry()
	coords, _ := startReplicaSet(t, []int{1, 2}, 1, reg)
	primary, sb := coords[0], coords[1]
	waitFor(t, "standby fed", func() bool { return sb.Primary() == primary.Addr() })
	oldTerm := primary.Term()

	primary.Close()
	waitFor(t, "standby promoted via timeout", func() bool { return sb.Role() == RolePrimary })
	if got := sb.Term(); got != oldTerm+1 {
		t.Fatalf("promoted term = %d; want %d", got, oldTerm+1)
	}
	if got := reg.Counter("fleet_quorum_promotions_total", "").Value(); got != 0 {
		t.Fatalf("fleet_quorum_promotions_total = %d; want 0 (timeout path)", got)
	}
	if got := reg.Counter("fleet_promotions_total", "").Value(); got != 1 {
		t.Fatalf("fleet_promotions_total = %d; want 1", got)
	}
}

// TestQuorumPromotionCountsVotes re-checks the three-coordinator
// takeover through the metrics: the election must be won by quorum
// (granted votes > 0, quorum promotion counted), not by timeout.
func TestQuorumPromotionCountsVotes(t *testing.T) {
	reg := telemetry.NewRegistry()
	coords, _ := startReplicaSet(t, []int{1, 2, 3, 4}, 2, reg)
	primary, sb1, sb2 := coords[0], coords[1], coords[2]
	waitFor(t, "standbys fed", func() bool {
		return sb1.Primary() == primary.Addr() && sb2.Primary() == primary.Addr()
	})
	primary.Close()
	waitFor(t, "a standby promoted", func() bool {
		return sb1.Role() == RolePrimary || sb2.Role() == RolePrimary
	})
	waitFor(t, "promotion attributed to quorum", func() bool {
		return reg.Counter("fleet_quorum_promotions_total", "").Value() == 1
	})
	if got := reg.Counter("fleet_quorum_votes_total", "").Value(); got < 1 {
		t.Fatalf("fleet_quorum_votes_total = %d; want >= 1 granted vote", got)
	}
}
