package fleet

import (
	"hash/fnv"
	"strconv"
)

// Rendezvous (highest-random-weight) hashing assigns each
// intersection to the node with the highest hash score for that
// (node, intersection) pair. Two properties make it the right shape
// for shard placement here: every node computes the same assignment
// from the same membership list (no distributed agreement beyond the
// live set), and when a node dies only ITS intersections move — the
// survivors' scores for everything else are unchanged.

// score is the HRW weight of placing key on node. Raw FNV-1a has
// weak avalanche for short inputs — similar node ids would give
// lopsided assignments — so the sum goes through a 64-bit
// fmix-style finalizer before comparison.
func score(node string, key int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{0xff})
	_, _ = h.Write([]byte(strconv.Itoa(key)))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the rendezvous owner of key among nodes. Ties break
// toward the lexicographically smaller node id so the choice is
// deterministic regardless of input order; ok is false when nodes is
// empty.
func Owner(nodes []string, key int) (owner string, ok bool) {
	var best uint64
	for _, n := range nodes {
		s := score(n, key)
		if !ok || s > best || (s == best && n < owner) {
			owner, best, ok = n, s, true
		}
	}
	return owner, ok
}

// Assignments maps every key to its rendezvous owner among nodes; an
// empty node list yields an empty map (nothing is served, nothing is
// silently defaulted).
func Assignments(nodes []string, keys []int) map[int]string {
	out := make(map[int]string, len(keys))
	if len(nodes) == 0 {
		return out
	}
	for _, k := range keys {
		owner, _ := Owner(nodes, k)
		out[k] = owner
	}
	return out
}
