// Control-plane durability: an append-only write-ahead log of
// committed coordinator state, so a full control-plane restart —
// primary and every standby at once — resumes from the last committed
// (term, epoch) instead of being born again at epoch 0.
//
// Record framing is length+CRC: a fixed 8-byte header (little-endian
// payload length, IEEE CRC-32 of the payload) followed by the JSON
// payload. Each record is a full state snapshot — membership,
// assignment, and seed mutations all rewrite the whole (small) fleet
// view — which makes replay trivial (the last intact record wins) and
// compaction exact (rewrite the file as that one record). Replay is
// total over arbitrary byte soup: a torn write, truncated tail, or
// flipped bit invalidates only the records from the damage onward; the
// log is truncated back to the last intact frame and appending
// resumes there.
//
// Durability is batched: Append marks the log dirty and a background
// flusher fsyncs on an interval (default 5ms), advancing the durable
// (term, epoch) watermark that replicate frames carry as their commit
// field. Transitions that must not be lost (promotion, a restart's
// incarnation record) force a synchronous fsync.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// walRecord is one committed control-plane state: the same fleet view
// a replicate frame carries, stamped with the (term, epoch) fencing
// pair.
type walRecord struct {
	Term    int64             `json:"term"`
	Epoch   int64             `json:"epoch"`
	Primary string            `json:"primary,omitempty"`
	Seeds   []string          `json:"seeds,omitempty"`
	Keys    []int             `json:"keys,omitempty"`
	Owners  map[int]string    `json:"owners,omitempty"`
	Members []rsu.FleetMember `json:"members,omitempty"`
}

const (
	walHeaderLen = 8
	// walMaxRecord bounds one payload: a corrupt length header must
	// not make replay allocate gigabytes before the CRC can rule.
	walMaxRecord = 16 << 20
	// walCompactAt is the default log size that triggers compaction.
	walCompactAt = 1 << 20
	// walSyncEvery is the default fsync batching interval.
	walSyncEvery = 5 * time.Millisecond
)

// walOptions sizes a wal; zero fields take the defaults above.
type walOptions struct {
	SyncEvery time.Duration
	CompactAt int64
	Metrics   *telemetry.Registry
	Logger    *telemetry.Logger
}

type walMetrics struct {
	appends     *telemetry.Counter
	syncs       *telemetry.Counter
	compactions *telemetry.Counter
	replays     *telemetry.Counter
	tornRecords *telemetry.Counter
	errors      *telemetry.Counter
	size        *telemetry.Gauge
}

// wal is the coordinator's write-ahead log. All methods are safe for
// concurrent use; the coordinator calls them under its own lock, which
// is fine because the wal never calls back out.
type wal struct {
	path      string
	syncEvery time.Duration
	compactAt int64
	log       *telemetry.Logger
	metrics   walMetrics

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mu       sync.Mutex
	f        *os.File
	size     int64
	last     walRecord
	haveLast bool
	dirty    bool
	// durable is the stamp of the last record an fsync has covered —
	// the commit watermark replicate frames advertise.
	durableTerm  int64
	durableEpoch int64
}

// openWAL opens (or creates) the log at path, replays it, and returns
// the last intact record (nil for a fresh or empty log). Damaged
// tails are truncated away and counted; replay never fails on content,
// only on real I/O errors.
func openWAL(path string, opts walOptions) (*wal, *walRecord, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = walSyncEvery
	}
	if opts.CompactAt <= 0 {
		opts.CompactAt = walCompactAt
	}
	reg := nopIfNil(opts.Metrics)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: open wal: %w", err)
	}
	w := &wal{
		path:      path,
		syncEvery: opts.SyncEvery,
		compactAt: opts.CompactAt,
		log:       opts.Logger,
		stop:      make(chan struct{}),
		f:         f,
		metrics: walMetrics{
			appends:     reg.Counter("fleet_wal_appends_total", "control-plane state records appended to the write-ahead log"),
			syncs:       reg.Counter("fleet_wal_syncs_total", "batched fsyncs of the write-ahead log"),
			compactions: reg.Counter("fleet_wal_compactions_total", "snapshot+truncate compactions of the write-ahead log"),
			replays:     reg.Counter("fleet_wal_replays_total", "coordinator starts that resumed state from a write-ahead log"),
			tornRecords: reg.Counter("fleet_wal_torn_records_total", "damaged trailing records dropped during replay (torn writes, truncated tails, CRC mismatches)"),
			errors:      reg.Counter("fleet_wal_errors_total", "write-ahead log I/O failures (durability degraded, serving continues)"),
			size:        reg.Gauge("fleet_wal_bytes", "current size of the write-ahead log"),
		},
	}
	rec, goodLen, torn, err := replayWAL(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if torn > 0 {
		w.metrics.tornRecords.Add(int64(torn))
		w.log.Warnf("fleet: wal %s: dropped %d damaged trailing record(s), resuming at offset %d", path, torn, goodLen)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() != goodLen {
		if err := f.Truncate(goodLen); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("fleet: truncate damaged wal tail: %w", err)
		}
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("fleet: seek wal: %w", err)
	}
	w.size = goodLen
	w.metrics.size.Set(goodLen)
	if rec != nil {
		w.last, w.haveLast = *rec, true
		w.durableTerm, w.durableEpoch = rec.Term, rec.Epoch
		w.metrics.replays.Inc()
	}
	w.wg.Add(1)
	go w.flusher()
	return w, rec, nil
}

// replayWAL scans frames from the start of the log, returning the last
// intact record, the byte offset where intact data ends, and how many
// trailing records were abandoned as damaged. The scan stops at the
// FIRST bad frame: everything after a tear is unordered noise.
func replayWAL(r io.ReadSeeker) (rec *walRecord, goodLen int64, torn int, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("fleet: seek wal: %w", err)
	}
	var header [walHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return rec, goodLen, torn, nil // clean end
			}
			return rec, goodLen, torn + 1, nil // torn header
		}
		n := binary.LittleEndian.Uint32(header[:4])
		want := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > walMaxRecord {
			return rec, goodLen, torn + 1, nil // insane length: corrupt header
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return rec, goodLen, torn + 1, nil // truncated payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return rec, goodLen, torn + 1, nil // bit rot / torn write
		}
		var r2 walRecord
		if err := json.Unmarshal(payload, &r2); err != nil {
			return rec, goodLen, torn + 1, nil // framed but unparseable
		}
		rec = &r2
		goodLen += walHeaderLen + int64(n)
	}
}

// Append writes one record. Failures degrade durability (counted and
// logged) but never stop the control plane: an in-memory coordinator
// is still better than none.
func (w *wal) Append(rec walRecord) {
	payload, err := json.Marshal(rec)
	if err != nil {
		w.metrics.errors.Inc()
		w.log.Warnf("fleet: wal append marshal: %v", err)
		return
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return
	}
	if _, err := w.f.Write(frame); err != nil {
		w.metrics.errors.Inc()
		w.log.Warnf("fleet: wal append: %v", err)
		return
	}
	w.size += int64(len(frame))
	w.last, w.haveLast = rec, true
	w.dirty = true
	w.metrics.appends.Inc()
	w.metrics.size.Set(w.size)
	if w.size > w.compactAt {
		w.compactLocked()
	}
}

// Sync forces an fsync now, advancing the commit watermark to the
// last appended record. Used on transitions that must not sit in the
// batching window (promotion, incarnation records).
func (w *wal) Sync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncLocked()
}

func (w *wal) syncLocked() {
	if !w.dirty || w.f == nil {
		return
	}
	if err := w.f.Sync(); err != nil {
		w.metrics.errors.Inc()
		w.log.Warnf("fleet: wal fsync: %v", err)
		return
	}
	w.dirty = false
	w.durableTerm, w.durableEpoch = w.last.Term, w.last.Epoch
	w.metrics.syncs.Inc()
}

// Durable returns the commit watermark: the stamp of the newest
// record an fsync has covered.
func (w *wal) Durable() (term, epoch int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durableTerm, w.durableEpoch
}

// compactLocked rewrites the log as a single snapshot record (the
// last state IS the whole truth — every record is a full snapshot) via
// write-temp, fsync, rename, so a crash mid-compaction leaves either
// the old log or the new one, never a hybrid. Callers hold w.mu.
func (w *wal) compactLocked() {
	if !w.haveLast {
		return
	}
	payload, err := json.Marshal(w.last)
	if err != nil {
		w.metrics.errors.Inc()
		return
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)
	tmp := w.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err == nil {
		if _, err = f.Write(frame); err == nil {
			err = f.Sync()
		}
		if err != nil {
			_ = f.Close()
		}
	}
	if err == nil {
		err = os.Rename(tmp, w.path)
	}
	if err != nil {
		w.metrics.errors.Inc()
		w.log.Warnf("fleet: wal compaction: %v", err)
		_ = os.Remove(tmp)
		return
	}
	_ = w.f.Close()
	w.f = f
	w.size = int64(len(frame))
	w.dirty = false
	w.durableTerm, w.durableEpoch = w.last.Term, w.last.Epoch
	w.metrics.compactions.Inc()
	w.metrics.size.Set(w.size)
}

// flusher is the fsync batcher: every interval, one fsync covers all
// appends since the last.
func (w *wal) flusher() {
	defer w.wg.Done()
	tick := time.NewTicker(w.syncEvery)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.Sync()
		}
	}
}

// Close syncs and closes the log.
func (w *wal) Close() error {
	w.once.Do(func() { close(w.stop) })
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncLocked()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
