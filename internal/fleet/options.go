package fleet

import (
	"time"

	"safecross/internal/telemetry"
)

// CoordinatorOption configures NewCoordinator.
type CoordinatorOption interface {
	applyCoordinator(*Config)
}

// AgentOption configures NewAgent.
type AgentOption interface {
	applyAgent(*AgentConfig)
}

// Option is an option accepted by both constructors — the wiring the
// two halves share (metrics, logging, the failure-detection clock).
type Option interface {
	CoordinatorOption
	AgentOption
}

// sharedOption implements Option with one mutation per config kind.
type sharedOption struct {
	coord func(*Config)
	agent func(*AgentConfig)
}

func (o sharedOption) applyCoordinator(c *Config) { o.coord(c) }
func (o sharedOption) applyAgent(a *AgentConfig)  { o.agent(a) }

// coordOption is a coordinator-only option.
type coordOption func(*Config)

func (f coordOption) applyCoordinator(c *Config) { f(c) }

// agentOption is an agent-only option.
type agentOption func(*AgentConfig)

func (f agentOption) applyAgent(a *AgentConfig) { f(a) }

// WithMetrics wires the fleet series into reg. Without it each
// component keeps a private registry, so metric code never branches
// on wiring.
func WithMetrics(reg *telemetry.Registry) Option {
	return sharedOption{
		coord: func(c *Config) { c.Metrics = reg },
		agent: func(a *AgentConfig) { a.Metrics = reg },
	}
}

// WithLogger records membership and session events to log (nil
// discards, which is also the default).
func WithLogger(log *telemetry.Logger) Option {
	return sharedOption{
		coord: func(c *Config) { c.Logger = log },
		agent: func(a *AgentConfig) { a.Logger = log },
	}
}

// WithHeartbeat sets the failure-detection clock: the agent ping
// interval and the silences after which a node is suspected and then
// declared dead. Pass zero for suspectAfter/deadAfter to keep the 3×
// and 6× defaults. Coordinators and agents of one fleet must share
// the same clock.
func WithHeartbeat(every, suspectAfter, deadAfter time.Duration) Option {
	t := Timings{HeartbeatEvery: every, SuspectAfter: suspectAfter, DeadAfter: deadAfter}
	return sharedOption{
		coord: func(c *Config) { c.Timings = t },
		agent: func(a *AgentConfig) { a.Timings = t },
	}
}

// WithIntersections declares the shard keys the fleet must keep
// served. Required for a primary coordinator; a standby instead
// learns the key set from the primary's replication stream.
func WithIntersections(keys ...int) CoordinatorOption {
	return coordOption(func(c *Config) { c.Intersections = append([]int(nil), keys...) })
}

// WithStandbys gives a primary coordinator its standby replicas: it
// dials each address and streams epoch-versioned membership and
// assignment state so any of them can take over on its death.
func WithStandbys(addrs ...string) CoordinatorOption {
	return coordOption(func(c *Config) { c.Standbys = append([]string(nil), addrs...) })
}

// AsStandby starts the coordinator as a passive replica: it applies
// the primary's replication stream, redirects node agents to the
// primary, and promotes itself (by seed-list rank) when the primary
// goes silent past the dead threshold.
func AsStandby() CoordinatorOption {
	return coordOption(func(c *Config) { c.Standby = true })
}

// WithPushTimeout bounds each control-plane write to a node or
// standby (default 2s).
func WithPushTimeout(d time.Duration) CoordinatorOption {
	return coordOption(func(c *Config) { c.PushTimeout = d })
}

// WithDataDir makes the coordinator durable: every committed state
// change (membership, assignment, seeds, term/epoch) is appended to a
// write-ahead log under dir and replayed on start, so a full
// control-plane restart resumes with the last committed (term, epoch)
// instead of epoch 0. Standbys persist the same log as the primary's
// commit watermark advances, so any surviving directory can seed the
// restarted fleet.
func WithDataDir(dir string) CoordinatorOption {
	return coordOption(func(c *Config) { c.DataDir = dir })
}

// WithWALSyncEvery overrides the write-ahead log's fsync batching
// interval (default 5ms). Shorter narrows the window of acknowledged-
// but-not-durable state on crash; longer batches more appends per
// fsync.
func WithWALSyncEvery(d time.Duration) CoordinatorOption {
	return coordOption(func(c *Config) { c.WALSyncEvery = d })
}

// WithCoordinators gives the agent the coordinator seed list. The
// agent sweeps the seeds until one accepts it as primary, and follows
// promote redirects to whichever seed currently holds the role.
func WithCoordinators(seeds ...string) AgentOption {
	return agentOption(func(a *AgentConfig) { a.Coordinators = append([]string(nil), seeds...) })
}

// WithAdvertise sets the rsu address vehicles should dial for this
// node (default: the wrapped server's listen address). It travels in
// heartbeats and assignment tables.
func WithAdvertise(addr string) AgentOption {
	return agentOption(func(a *AgentConfig) { a.Advertise = addr })
}

// WithDebugAddr advertises the node's telemetry debug-listener
// address in heartbeats, opting the node into coordinator-side
// federation (metric scraping and fleet trace stitching).
func WithDebugAddr(addr string) AgentOption {
	return agentOption(func(a *AgentConfig) { a.DebugAddr = addr })
}

// WithRunner installs the per-intersection serving loop the agent
// starts for each owned shard. Without it the agent only maintains
// routing state.
func WithRunner(r Runner) AgentOption {
	return agentOption(func(a *AgentConfig) { a.Runner = r })
}

// WithDialTimeout bounds each coordinator dial (default 2s).
func WithDialTimeout(d time.Duration) AgentOption {
	return agentOption(func(a *AgentConfig) { a.DialTimeout = d })
}
