package fleet

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// walFrame builds one length+CRC framed record from raw payload bytes,
// so tests can write both intact and deliberately damaged logs.
func walFrame(payload []byte) []byte {
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)
	return frame
}

func testRecord(term, epoch int64) walRecord {
	return walRecord{
		Term:    term,
		Epoch:   epoch,
		Primary: "127.0.0.1:7000",
		Seeds:   []string{"127.0.0.1:7000", "127.0.0.1:7001"},
		Keys:    []int{0, 1, 2},
		Owners:  map[int]string{0: "node-0", 1: "node-1", 2: "node-0"},
		Members: []rsu.FleetMember{
			{Node: "node-0", Addr: "127.0.0.1:9000", State: "live"},
			{Node: "node-1", Addr: "127.0.0.1:9001", State: "dead"},
		},
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.wal")
	w, rec, err := openWAL(path, walOptions{})
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	if rec != nil {
		t.Fatalf("fresh log replayed a record: %+v", rec)
	}
	w.Append(testRecord(1, 1))
	w.Append(testRecord(1, 2))
	want := testRecord(2, 5)
	w.Append(want)
	w.Sync()
	if dt, de := w.Durable(); dt != 2 || de != 5 {
		t.Fatalf("durable watermark = (%d, %d), want (2, 5)", dt, de)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reg := telemetry.NewRegistry()
	w2, rec2, err := openWAL(path, walOptions{Metrics: reg})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = w2.Close() }()
	if rec2 == nil {
		t.Fatal("reopen replayed nothing")
	}
	if rec2.Term != want.Term || rec2.Epoch != want.Epoch {
		t.Fatalf("replayed stamp (%d, %d), want (%d, %d)", rec2.Term, rec2.Epoch, want.Term, want.Epoch)
	}
	if rec2.Owners[1] != "node-1" || len(rec2.Members) != 2 || rec2.Members[1].State != "dead" {
		t.Fatalf("replayed record lost state: %+v", rec2)
	}
	snap := reg.Snapshot()
	if snap.Int("fleet_wal_replays_total") != 1 {
		t.Fatalf("fleet_wal_replays_total = %d, want 1", snap.Int("fleet_wal_replays_total"))
	}
	if dt, de := w2.Durable(); dt != 2 || de != 5 {
		t.Fatalf("reopened durable watermark = (%d, %d), want (2, 5)", dt, de)
	}
}

// TestWALTornTailRecovery simulates the crash-mid-write cases one at a
// time: garbage after the last frame, a truncated payload, a header
// whose length field is insane, and a payload with a flipped bit. In
// every case replay must surface the last INTACT record and truncate
// the file back to it, so the next append produces a clean log.
func TestWALTornTailRecovery(t *testing.T) {
	good1, err := json.Marshal(testRecord(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	good2, err := json.Marshal(testRecord(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	intact := append(append([]byte{}, walFrame(good1)...), walFrame(good2)...)

	flipped := walFrame(good2)
	flipped[walHeaderLen+3] ^= 0x40 // corrupt payload under a valid header

	insane := make([]byte, walHeaderLen)
	binary.LittleEndian.PutUint32(insane[:4], uint32(walMaxRecord+1))

	cases := []struct {
		name string
		data []byte
		want int64 // epoch of the record replay must surface
	}{
		{"garbage tail", append(append([]byte{}, intact...), "not a frame"...), 2},
		{"torn header", append(append([]byte{}, intact...), walFrame(good1)[:5]...), 2},
		{"truncated payload", append(append([]byte{}, walFrame(good1)...), walFrame(good2)[:walHeaderLen+4]...), 1},
		{"crc mismatch", append(append([]byte{}, walFrame(good1)...), flipped...), 1},
		{"insane length header", append(append([]byte{}, walFrame(good1)...), insane...), 1},
		{"all garbage", []byte("no frame ever started here"), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			w, rec, err := openWAL(path, walOptions{Metrics: reg})
			if err != nil {
				t.Fatalf("openWAL on damaged log: %v", err)
			}
			if tc.want == 0 {
				if rec != nil {
					t.Fatalf("replayed a record from garbage: %+v", rec)
				}
			} else if rec == nil || rec.Epoch != tc.want {
				t.Fatalf("replayed %+v, want epoch %d", rec, tc.want)
			}
			if got := reg.Snapshot().Int("fleet_wal_torn_records_total"); got < 1 {
				t.Fatalf("fleet_wal_torn_records_total = %d, want >= 1", got)
			}
			// The damaged tail must be gone: append + reopen yields the
			// new record with no torn frames.
			w.Append(testRecord(9, 9))
			w.Sync()
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			reg2 := telemetry.NewRegistry()
			w2, rec2, err := openWAL(path, walOptions{Metrics: reg2})
			if err != nil {
				t.Fatalf("reopen after recovery: %v", err)
			}
			defer func() { _ = w2.Close() }()
			if rec2 == nil || rec2.Term != 9 || rec2.Epoch != 9 {
				t.Fatalf("post-recovery append lost: %+v", rec2)
			}
			if got := reg2.Snapshot().Int("fleet_wal_torn_records_total"); got != 0 {
				t.Fatalf("recovered log still torn: %d damaged record(s)", got)
			}
		})
	}
}

func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	reg := telemetry.NewRegistry()
	w, _, err := openWAL(path, walOptions{CompactAt: 2 << 10, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 200; i++ {
		w.Append(testRecord(1, i))
	}
	w.Sync()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 8<<10 {
		t.Fatalf("log never compacted: %d bytes after 200 appends with a 2KiB threshold", fi.Size())
	}
	if got := reg.Snapshot().Int("fleet_wal_compactions_total"); got < 1 {
		t.Fatalf("fleet_wal_compactions_total = %d, want >= 1", got)
	}
	w2, rec, err := openWAL(path, walOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if rec == nil || rec.Epoch != 200 {
		t.Fatalf("compaction lost the newest record: %+v", rec)
	}
}

// TestWALFlusherAdvancesWatermark checks the batched-durability path:
// an Append with no explicit Sync must still become durable within a
// few flush intervals.
func TestWALFlusherAdvancesWatermark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.wal")
	w, _, err := openWAL(path, walOptions{SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	w.Append(testRecord(3, 7))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if dt, de := w.Durable(); dt == 3 && de == 7 {
			return
		}
		if time.Now().After(deadline) {
			dt, de := w.Durable()
			t.Fatalf("flusher never advanced the watermark: durable (%d, %d), want (3, 7)", dt, de)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
