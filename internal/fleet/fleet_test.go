package fleet

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/safecross"
	"safecross/internal/telemetry"
)

// testNode is one fleet member under test: an rsu.Server plus an
// Agent whose runner broadcasts advisories for every owned
// intersection so vehicle-side continuity is observable.
type testNode struct {
	id    string
	srv   *rsu.Server
	agent *Agent
}

func startNode(t *testing.T, id string, reg *telemetry.Registry, coordAddrs ...string) *testNode {
	t.Helper()
	srv, err := rsu.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("rsu listen: %v", err)
	}
	runner := func(ctx context.Context, intersection int) {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		frame := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				frame++
				srv.Broadcast(rsu.IntersectionAdvisory(intersection, frame, &safecross.Decision{Ready: true, Safe: true}))
			}
		}
	}
	tt := testTimings()
	agent, err := NewAgent(id, srv,
		WithCoordinators(coordAddrs...),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter),
		WithRunner(runner),
		WithMetrics(reg))
	if err != nil {
		srv.Close()
		t.Fatalf("NewAgent(%s): %v", id, err)
	}
	return &testNode{id: id, srv: srv, agent: agent}
}

// coverage reports whether the nodes' owned sets are disjoint and
// together cover exactly keys.
func coverage(nodes []*testNode, keys []int) bool {
	seen := map[int]int{}
	for _, n := range nodes {
		for _, i := range n.agent.Owned() {
			seen[i]++
		}
	}
	if len(seen) != len(keys) {
		return false
	}
	for _, k := range keys {
		if seen[k] != 1 {
			return false
		}
	}
	return true
}

// TestFleetFailover is the tentpole scenario end to end: three nodes
// share eight intersections; one node crashes; the survivors absorb
// its shards; and a vehicle subscribed to one of the dead node's
// intersections keeps receiving advisories after riding the redirect
// chain to the new owner.
func TestFleetFailover(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8}
	tt := testTimings()
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator("127.0.0.1:0",
		WithIntersections(keys...),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter),
		WithMetrics(reg))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	nodes := []*testNode{
		startNode(t, "n0", reg, coord.Addr()),
		startNode(t, "n1", reg, coord.Addr()),
		startNode(t, "n2", reg, coord.Addr()),
	}
	defer func() {
		for _, n := range nodes {
			n.agent.Close()
			n.srv.Close()
		}
	}()
	waitFor(t, "full disjoint coverage over 3 nodes", func() bool {
		return coverage(nodes, keys)
	})

	// Pick an intersection served by a node we will kill, and
	// subscribe a vehicle to it through the retry client seeded with
	// every node (any seed can redirect to the owner).
	target := keys[0]
	victimID := coord.Assignments()[target]
	var victim *testNode
	survivors := make([]*testNode, 0, len(nodes)-1)
	seeds := make([]string, 0, len(nodes))
	for _, n := range nodes {
		seeds = append(seeds, n.srv.Addr())
		if n.id == victimID {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	if victim == nil {
		t.Fatalf("intersection %d owned by unknown node %q", target, victimID)
	}
	cli, err := rsu.DialRetry(rsu.RetryConfig{
		Seeds:        seeds,
		Vehicle:      "veh-1",
		Intersection: target,
		BackoffBase:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer cli.Close()
	var advisories, afterKill atomic.Int64
	var killed atomic.Bool
	go func() {
		for msg := range cli.Messages() {
			if msg.Type != rsu.TypeAdvisory || msg.Intersection != target {
				continue
			}
			advisories.Add(1)
			if killed.Load() {
				afterKill.Add(1)
			}
		}
	}()
	waitFor(t, "advisories before the kill", func() bool { return advisories.Load() >= 3 })

	// Crash the victim: agent and rsu server die together, no drain.
	killed.Store(true)
	victim.agent.Close()
	victim.srv.Close()

	waitFor(t, "survivors cover every intersection", func() bool {
		return coverage(survivors, keys)
	})
	if got := reg.Counter("fleet_failovers_total", "").Value(); got != 1 {
		t.Fatalf("failovers = %d; want 1", got)
	}
	waitFor(t, "advisories after the kill", func() bool { return afterKill.Load() >= 3 })
	if cli.Err() != nil {
		t.Fatalf("client hit terminal error: %v", cli.Err())
	}
	if cli.Reconnects() < 1 {
		t.Fatalf("client reports %d reconnects after its server died", cli.Reconnects())
	}
}

// TestAgentDrainHandoff: a graceful leave moves shards with zero
// failovers, the drainer ends owning nothing, and Drain returns once
// the handoff is complete.
func TestAgentDrainHandoff(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6}
	tt := testTimings()
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator("127.0.0.1:0",
		WithIntersections(keys...),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter),
		WithMetrics(reg))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	a := startNode(t, "a", reg, coord.Addr())
	b := startNode(t, "b", reg, coord.Addr())
	defer func() {
		for _, n := range []*testNode{a, b} {
			n.agent.Close()
			n.srv.Close()
		}
	}()
	waitFor(t, "both nodes covering all intersections", func() bool {
		return coverage([]*testNode{a, b}, keys)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.agent.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if owned := a.agent.Owned(); len(owned) != 0 {
		t.Fatalf("drained agent still owns %v", owned)
	}
	waitFor(t, "survivor owns everything", func() bool {
		got := b.agent.Owned()
		return len(got) == len(keys) && sort.IntsAreSorted(got)
	})
	if got := reg.Counter("fleet_failovers_total", "").Value(); got != 0 {
		t.Fatalf("graceful drain counted %d failovers; want 0", got)
	}
	if got := reg.Counter("fleet_drains_total", "").Value(); got != 1 {
		t.Fatalf("drains = %d; want 1", got)
	}
	if coord.States()["a"] != Dead {
		t.Fatalf("drained node state = %v; want dead tombstone", coord.States()["a"])
	}
}

// TestAgentSurvivesCoordinatorLoss: losing the control plane must not
// stop the data plane — the agent keeps serving its last assignment
// and quietly redials.
func TestAgentSurvivesCoordinatorLoss(t *testing.T) {
	keys := []int{1, 2, 3}
	tt := testTimings()
	coord, err := NewCoordinator("127.0.0.1:0",
		WithIntersections(keys...),
		WithHeartbeat(tt.HeartbeatEvery, tt.SuspectAfter, tt.DeadAfter))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	n := startNode(t, "solo", nil, coord.Addr())
	defer func() {
		n.agent.Close()
		n.srv.Close()
	}()
	waitFor(t, "solo node owning everything", func() bool {
		return len(n.agent.Owned()) == len(keys)
	})

	coord.Close()
	// Give the agent several heartbeat intervals to notice and (fail
	// to) redial: ownership must not change.
	time.Sleep(6 * testTimings().HeartbeatEvery)
	if got := n.agent.Owned(); len(got) != len(keys) {
		t.Fatalf("agent dropped shards when the coordinator died: owns %v", got)
	}
}
