// Quorum promotion: in fleets of three or more coordinators a standby
// does not trust its own silence clock. When the primary's replicate
// stream has been quiet past DeadAfter it becomes a candidate,
// proposes the successor term to every other seed, and promotes only
// after a MAJORITY of the configured coordinators (counting its own
// vote) confirm they too have lost the primary. A voter pledges at
// most one candidate per term (Raft-style votedTerm/votedFor), so two
// simultaneous candidates cannot both collect a majority for the same
// term; a partitioned standby that can reach nobody collects one vote
// and stays a standby. The rank-staggered timeout path survives only
// for 1- and 2-coordinator fleets, where "majority of others" is
// nobody or a single peer whose death would wedge promotion forever.
package fleet

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net"
	"sync"
	"time"

	"safecross/internal/rsu"
)

// maybeCampaignLocked decides whether this standby should run an
// election this tick. Candidacy needs: replicate-silence past
// DeadAfter plus 1+rank heartbeat intervals (the lowest live rank
// campaigns first and uncontested, and the extra heartbeat covers the
// skew between standbys' last replicate receipts, so the voters'
// own silence clocks have also crossed DeadAfter by the time the
// ballot arrives), no election already in flight, and no recently
// granted vote (a voter that just pledged elsewhere defers its own
// ambition for a DeadAfter so the pledged candidate can finish).
// Callers hold c.mu.
func (c *Coordinator) maybeCampaignLocked(now time.Time, rank int) {
	if c.electing {
		return
	}
	deadline := c.cfg.Timings.DeadAfter + time.Duration(1+rank)*c.cfg.Timings.HeartbeatEvery
	if now.Sub(c.lastRepl) < deadline {
		return
	}
	if !c.lastGrant.IsZero() && now.Sub(c.lastGrant) < c.cfg.Timings.DeadAfter {
		return
	}
	if now.Before(c.campaignAfter) {
		return // backing off after a lost election
	}
	term := c.term + 1
	if term <= c.votedTerm {
		// We pledged this term to someone who never won; propose past it.
		term = c.votedTerm + 1
	}
	c.electing = true
	c.votedTerm, c.votedFor = term, c.Addr() // the candidate's own ballot
	c.metrics.quorumElections.Inc()
	seeds := append([]string(nil), c.seeds...)
	epoch := c.epoch
	c.wg.Add(1)
	go c.runElection(term, epoch, seeds)
}

// runElection canvasses every other seed for the proposed term and
// promotes on majority. The majority is over the CONFIGURED
// coordinator set — dead or partitioned seeds count against the
// candidate, never for it.
func (c *Coordinator) runElection(term, epoch int64, seeds []string) {
	defer c.wg.Done()
	self := c.Addr()
	needed := len(seeds)/2 + 1
	votes := 1 // own ballot
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range seeds {
		if peer == self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if c.requestVote(peer, term, epoch) {
				mu.Lock()
				votes++
				mu.Unlock()
			}
		}(peer)
	}
	wg.Wait()
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.electing = false
	if c.closed || c.role != RoleStandby || c.term >= term {
		return // the world moved on while we campaigned
	}
	if votes < needed {
		// Split votes livelock if both candidates retry in lockstep
		// (each pledged itself, each denied the other). Randomized
		// backoff — Raft's cure — desynchronises the rematch so one
		// candidate campaigns while the other is still waiting and wins
		// the undivided majority.
		c.campaignAfter = now.Add(time.Duration(rand.Int63n(int64(c.cfg.Timings.DeadAfter))))
		c.log.Warnf("fleet: standby %s lost the election for term %d (%d/%d votes)", self, term, votes, needed)
		return
	}
	if c.votedTerm != term || c.votedFor != self {
		// While our ballots were out we re-pledged this term (or a
		// later one) to a better-ranked simultaneous candidate. Our own
		// self-ballot is void, and counting it anyway could hand two
		// candidates a majority built on the same vote.
		c.log.Infof("fleet: standby %s abandoned term %d after re-pledging to %q", self, term, c.votedFor)
		return
	}
	if now.Sub(c.lastRepl) < c.cfg.Timings.DeadAfter {
		return // the primary spoke while the ballots were out
	}
	c.promoteLocked(now, term, promoteViaQuorum)
}

// requestVote asks one peer to confirm replicate-silence for the
// proposed term: dial, one ballot, one reply, bounded by the push
// timeout. Any failure — unreachable peer, malformed reply, denial —
// is a missing vote, never a granted one.
func (c *Coordinator) requestVote(peer string, term, epoch int64) bool {
	conn, err := net.DialTimeout("tcp", peer, c.cfg.PushTimeout)
	if err != nil {
		return false
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(c.cfg.PushTimeout))
	if err := json.NewEncoder(conn).Encode(rsu.VoteMessage(c.Addr(), term, epoch)); err != nil {
		return false
	}
	var reply rsu.Message
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		return false
	}
	return reply.Type == rsu.TypeAck && reply.Validate() == nil && reply.Granted && reply.Term == term
}

// onVoteRequest is the voter side of an election: grant only when this
// coordinator independently corroborates the candidate's story — it is
// a standby that has been fed at least once, it too has heard nothing
// from the primary for DeadAfter, the proposed term is news, and it
// has not already pledged that term to a different candidate. A grant
// also defers this coordinator's own candidacy (lastGrant).
func (c *Coordinator) onVoteRequest(msg rsu.Message) rsu.Message {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	granted := false
	switch {
	case c.closed:
	case c.role == RolePrimary:
		// A living primary is the strongest possible refutation of
		// "the primary is silent".
	case msg.Term <= c.term:
		// Proposal for a term we already live in (or before it).
	case msg.Term == c.votedTerm && c.votedFor == c.Addr() &&
		c.rankLocked(msg.Addr) < c.rankLocked(c.Addr()):
		// Simultaneous-candidacy collision: we pledged this term to
		// OURSELVES, and so did a better-ranked candidate. Timing
		// cannot break this tie (on a starved host both candidates
		// wake together every round), so rank does, deterministically:
		// re-pledge to the lower seed rank. Our own election finds the
		// pledge gone at promotion time and aborts, so the term still
		// gets at most one winner.
		granted = true
	case msg.Term <= c.votedTerm && c.votedFor != msg.Addr:
		// Pledged this term to someone else; one ballot per term.
	case c.term < 1 || c.primaryAddr == "":
		// Never fed: no standing to judge the primary's silence, and
		// electing a key-less standby would serve nothing.
	case now.Sub(c.lastRepl) < c.cfg.Timings.DeadAfter:
		// We still hear the primary; the candidate is partitioned, not
		// the leader.
	default:
		granted = true
	}
	if granted {
		c.votedTerm, c.votedFor = msg.Term, msg.Addr
		c.lastGrant = now
		c.metrics.quorumVotes.Inc()
		c.log.Infof("fleet: standby %s granted term %d to candidate %q", c.Addr(), msg.Term, msg.Addr)
	} else {
		c.log.Debugf("fleet: coordinator %s denied term %d to candidate %q", c.Addr(), msg.Term, msg.Addr)
	}
	return rsu.AckMessage(granted, msg.Term, c.epoch)
}
