package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// Config sizes a Coordinator. Construction normally goes through
// NewCoordinator with options; the struct remains for the deprecated
// NewCoordinatorFromConfig path.
type Config struct {
	// Intersections are the shard keys the fleet must keep served.
	// Required for a primary; a standby learns the key set from the
	// replication stream.
	Intersections []int
	// Timings is the failure-detection clock.
	Timings Timings
	// PushTimeout bounds each assignment/ack/replicate write (default
	// 2s); a peer that cannot be written to is left to the heartbeat
	// detector.
	PushTimeout time.Duration
	// Standbys are the standby coordinator addresses a primary
	// replicates its state to.
	Standbys []string
	// Standby starts the coordinator as a passive replica that waits
	// for the primary's replication stream.
	Standby bool
	// DataDir, when set, makes the coordinator durable: every committed
	// state change is appended to a write-ahead log under this
	// directory (one file per control address) and replayed on start,
	// so a full control-plane restart resumes with the last committed
	// (term, epoch) instead of epoch 0.
	DataDir string
	// WALSyncEvery overrides the write-ahead log's fsync batching
	// interval (default 5ms).
	WALSyncEvery time.Duration
	// Metrics receives the fleet series (nil keeps a private
	// registry).
	Metrics *telemetry.Registry
	// Logger records membership events (nil discards).
	Logger *telemetry.Logger
}

// member is one node the coordinator has seen. Dead members are kept
// as tombstones while their connection lives, so a late heartbeat
// from a partitioned-but-alive node can be rejected with a redirect
// instead of silently re-admitting a node whose shards moved.
type member struct {
	id        string
	addr      string
	debugAddr string // node's telemetry debug listener (federation scrape target)
	state     NodeState
	last      time.Time

	// conn/enc are written under Coordinator.mu; sendMu serialises
	// actual writes (heartbeat acks from the connection handler race
	// assignment pushes from the monitor).
	conn   net.Conn
	enc    *json.Encoder
	sendMu sync.Mutex

	live *telemetry.Gauge
}

// push is one outbound control message, built under the lock and sent
// outside it.
type push struct {
	m   *member
	msg rsu.Message
}

type coordMetrics struct {
	heartbeats       *telemetry.Counter
	lateHeartbeats   *telemetry.Counter
	failovers        *telemetry.Counter
	reassignments    *telemetry.Counter
	joins            *telemetry.Counter
	drains           *telemetry.Counter
	promotions       *telemetry.Counter
	quorumVotes      *telemetry.Counter
	quorumElections  *telemetry.Counter
	quorumPromotions *telemetry.Counter
	reassignLat      *telemetry.Histogram
}

// Coordinator owns the intersection→node assignment for one fleet —
// or stands by to: a replica constructed with AsStandby applies the
// primary's replication stream and promotes itself when the primary
// goes silent (see replica.go).
type Coordinator struct {
	cfg     Config
	ln      net.Listener
	log     *telemetry.Logger
	reg     *telemetry.Registry
	metrics coordMetrics

	stop chan struct{}
	wg   sync.WaitGroup

	wal *wal // durable state log; nil without DataDir

	mu          sync.Mutex
	closed      bool
	role        Role
	term        int64
	epoch       int64
	seeds       []string  // coordinator seed list, primary first at birth
	primaryAddr string    // current primary ("" until a standby hears one)
	lastRepl    time.Time // last replicate applied (standby clock)
	replStop    chan struct{}
	members     map[string]*member
	owners      map[int]string // intersection → owning node id

	// Quorum election state (standby side, see quorum.go).
	electing      bool      // an election goroutine is in flight
	votedTerm     int64     // highest term this coordinator pledged a vote in
	votedFor      string    // candidate pledged in votedTerm
	lastGrant     time.Time // last vote granted — defers own candidacy
	campaignAfter time.Time // randomized backoff after a lost election
}

// NewCoordinator starts a coordinator listening for node agents (and
// standby replicas) on addr (e.g. "127.0.0.1:0").
func NewCoordinator(addr string, opts ...CoordinatorOption) (*Coordinator, error) {
	var cfg Config
	for _, o := range opts {
		o.applyCoordinator(&cfg)
	}
	return newCoordinator(addr, cfg)
}

// NewCoordinatorFromConfig is the Config-struct construction path.
//
// Deprecated: use NewCoordinator with options (WithIntersections,
// WithMetrics, WithHeartbeat, WithStandbys, AsStandby, …).
func NewCoordinatorFromConfig(addr string, cfg Config) (*Coordinator, error) {
	return newCoordinator(addr, cfg)
}

func newCoordinator(addr string, cfg Config) (*Coordinator, error) {
	if cfg.Standby && len(cfg.Standbys) > 0 {
		return nil, fmt.Errorf("fleet: a standby coordinator cannot own standbys")
	}
	if !cfg.Standby && len(cfg.Intersections) == 0 {
		return nil, fmt.Errorf("fleet: coordinator needs at least one intersection")
	}
	seen := make(map[int]bool, len(cfg.Intersections))
	for _, i := range cfg.Intersections {
		if i <= 0 {
			return nil, fmt.Errorf("fleet: intersection ids must be positive, got %d", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("fleet: duplicate intersection id %d", i)
		}
		seen[i] = true
	}
	cfg.Timings = cfg.Timings.withDefaults()
	if err := cfg.Timings.validate(); err != nil {
		return nil, err
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen: %w", err)
	}
	reg := nopIfNil(cfg.Metrics)
	c := &Coordinator{
		cfg:     cfg,
		ln:      ln,
		log:     cfg.Logger,
		reg:     reg,
		stop:    make(chan struct{}),
		members: make(map[string]*member),
		owners:  make(map[int]string),
		metrics: coordMetrics{
			heartbeats:       reg.Counter("fleet_heartbeats_total", "heartbeats received from node agents"),
			lateHeartbeats:   reg.Counter("fleet_late_heartbeats_total", "heartbeats rejected because the node was already declared dead"),
			failovers:        reg.Counter("fleet_failovers_total", "nodes declared dead by heartbeat timeout"),
			reassignments:    reg.Counter("fleet_reassignments_total", "assignment epochs pushed (joins, drains, failovers)"),
			joins:            reg.Counter("fleet_joins_total", "nodes that registered with the coordinator"),
			drains:           reg.Counter("fleet_drains_total", "nodes that left gracefully via drain"),
			promotions:       reg.Counter("fleet_promotions_total", "standby coordinators promoted to primary"),
			quorumVotes:      reg.Counter("fleet_quorum_votes_total", "promotion votes granted to candidate standbys"),
			quorumElections:  reg.Counter("fleet_quorum_elections_total", "quorum elections started by candidate standbys"),
			quorumPromotions: reg.Counter("fleet_quorum_promotions_total", "standby promotions won by quorum acknowledgment"),
			reassignLat:      reg.Histogram("fleet_reassign_seconds", "death detection to all assignments pushed", telemetry.UnitSeconds),
		},
	}
	rec, err := c.openDataDir()
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	if cfg.Standby {
		c.role = RoleStandby
		if rec != nil {
			// Adopt the durable state verbatim and wait: if the whole
			// control plane restarted, the restarted primary's stream (or
			// a quorum election) takes it from here.
			c.adoptWALLocked(rec, rec.Term)
		}
	} else {
		// A birth primary opens term 1; every promotion opens a later
		// term, so (term, epoch) orders coordinators across failovers.
		c.role = RolePrimary
		c.term = 1
		c.primaryAddr = c.Addr()
		c.seeds = append([]string{c.Addr()}, cfg.Standbys...)
		if rec != nil {
			// Restart incarnation: resume the durable epoch under a
			// strictly larger term — promotion-like, so this instance's
			// pushes outrank anything agents saw before the crash even if
			// the very last epoch missed its fsync window.
			c.adoptWALLocked(rec, rec.Term+1)
			c.primaryAddr = c.Addr()
		}
		c.registerMembershipGauges()
		if c.wal != nil {
			// The (possibly bumped) birth stamp must be durable before
			// anything replicates under it.
			c.persistLocked()
			c.wal.Sync()
		}
	}
	reg.GaugeFunc(fmt.Sprintf("fleet_coordinator_role{coordinator=%q}", c.Addr()),
		"1 while this coordinator is the primary", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.role == RolePrimary {
				return 1
			}
			return 0
		})
	if c.role == RolePrimary {
		c.mu.Lock()
		c.startReplicatorsLocked()
		c.mu.Unlock()
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.monitor()
	return c, nil
}

// openDataDir opens and replays this coordinator's write-ahead log
// when DataDir is configured, returning the last committed state (nil
// for a fresh log or no data dir). Runs before the coordinator's
// loops start.
func (c *Coordinator) openDataDir() (*walRecord, error) {
	if c.cfg.DataDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(c.cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: data dir: %w", err)
	}
	name := "coord-" + strings.NewReplacer(":", "_", "/", "_").Replace(c.Addr()) + ".wal"
	w, rec, err := openWAL(filepath.Join(c.cfg.DataDir, name), walOptions{
		SyncEvery: c.cfg.WALSyncEvery,
		Metrics:   c.cfg.Metrics,
		Logger:    c.cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	c.wal = w
	return rec, nil
}

// adoptWALLocked resumes the durable state under the given term:
// epoch, seeds, key set, assignment, and membership all come back, and
// members re-enter with a fresh liveness stamp (conn == nil) so
// redialing agents get a full DeadAfter grace to re-bind — the re-bind
// path resends the identical owned set under the new term, which the
// agent applies without starting or stopping a single runner. Runs
// during construction, before any loop can race it.
func (c *Coordinator) adoptWALLocked(rec *walRecord, term int64) {
	c.term = term
	c.epoch = rec.Epoch
	c.primaryAddr = rec.Primary
	if c.cfg.Standby && rec.Primary == c.Addr() {
		// This instance crashed as the primary but is reborn a standby:
		// redirecting agents to "the primary" would point them straight
		// back here in a loop. Claim ignorance until the real reborn
		// primary's replication stream names itself.
		c.primaryAddr = ""
	}
	if len(rec.Seeds) > 0 {
		c.seeds = append([]string(nil), rec.Seeds...)
	}
	if len(rec.Keys) > 0 {
		c.cfg.Intersections = append([]int(nil), rec.Keys...)
	}
	c.owners = make(map[int]string, len(rec.Owners))
	for k, v := range rec.Owners {
		c.owners[k] = v
	}
	now := time.Now()
	// Restart grace: a re-binding agent first has to notice its control
	// connection died, then sweep the seed list with capped backoff
	// until it finds the reborn primary — easily a couple of backoff
	// rounds on a loaded host. Restarted members get two extra
	// DeadAfters before the failure detector may rule on them; a
	// genuinely dead node just takes one restart-length beat longer to
	// be caught, which a control plane that itself just died can afford.
	grace := now.Add(2 * c.cfg.Timings.DeadAfter)
	for _, fm := range rec.Members {
		m := &member{
			id:        fm.Node,
			addr:      fm.Addr,
			debugAddr: fm.DebugAddr,
			state:     stateFromString(fm.State),
			last:      grace,
			live:      c.reg.Gauge(fmt.Sprintf("fleet_node_live{node=%q}", fm.Node), "1 while the node is not declared dead"),
		}
		if m.state == Dead {
			m.live.Set(0)
		} else {
			m.live.Set(1)
		}
		c.members[fm.Node] = m
	}
	c.lastRepl = now
	c.log.Infof("fleet: coordinator %s resumed from wal (term %d, epoch %d, %d members, %d keys)",
		c.Addr(), c.term, c.epoch, len(c.members), len(c.cfg.Intersections))
}

// walRecordLocked snapshots the committed state for the log — the
// same fleet view a replicate frame carries. Callers hold c.mu.
func (c *Coordinator) walRecordLocked() walRecord {
	members := make([]rsu.FleetMember, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, rsu.FleetMember{Node: m.id, Addr: m.addr, DebugAddr: m.debugAddr, State: m.state.String()})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Node < members[j].Node })
	owners := make(map[int]string, len(c.owners))
	for k, v := range c.owners {
		owners[k] = v
	}
	return walRecord{
		Term:    c.term,
		Epoch:   c.epoch,
		Primary: c.primaryAddr,
		Seeds:   append([]string(nil), c.seeds...),
		Keys:    append([]int(nil), c.cfg.Intersections...),
		Owners:  owners,
		Members: members,
	}
}

// persistLocked appends the current committed state to the write-ahead
// log (no-op without one). Durability is batched — the background
// flusher advances the commit watermark; transitions that cannot wait
// call wal.Sync explicitly. Callers hold c.mu.
func (c *Coordinator) persistLocked() {
	if c.wal == nil {
		return
	}
	c.wal.Append(c.walRecordLocked())
}

// registerMembershipGauges (re-)binds the fleet-wide membership
// gauges to this coordinator. GaugeFunc re-registration replaces the
// closure, so a promoting standby takes the series over from the dead
// primary on a shared registry.
func (c *Coordinator) registerMembershipGauges() {
	c.reg.GaugeFunc("fleet_nodes_live", "fleet nodes not declared dead", func() int64 {
		return c.countState(func(s NodeState) bool { return s != Dead })
	})
	c.reg.GaugeFunc("fleet_nodes_suspect", "fleet nodes suspected (silent past suspect-after)", func() int64 {
		return c.countState(func(s NodeState) bool { return s == Suspect })
	})
}

// Addr returns the coordinator's control-plane address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch returns the current assignment epoch.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Term returns the coordinator generation this instance believes in —
// bumped by every promotion, never reused.
func (c *Coordinator) Term() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// Role returns whether this coordinator currently leads the fleet.
func (c *Coordinator) Role() Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Primary returns the control-plane address of the primary this
// coordinator believes in ("" while a standby has heard nothing).
func (c *Coordinator) Primary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primaryAddr
}

// Assignments returns a copy of the current intersection→node-id map.
func (c *Coordinator) Assignments() map[int]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]string, len(c.owners))
	for k, v := range c.owners {
		out[k] = v
	}
	return out
}

// DebugTargets returns the federation scrape set: every non-dead
// node that advertised a debug listener, as node-id → base URL. This
// is what a coordinator-side telemetry.Federator's Targets func reads
// — killing a node drops it from the scrape set at the same instant
// the failure detector rules on it.
func (c *Coordinator) DebugTargets() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.members))
	for id, m := range c.members {
		if m.state != Dead && m.debugAddr != "" {
			out[id] = "http://" + m.debugAddr
		}
	}
	return out
}

// States returns every known node's liveness state (including dead
// tombstones).
func (c *Coordinator) States() map[string]NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]NodeState, len(c.members))
	for id, m := range c.members {
		out[id] = m.state
	}
	return out
}

func (c *Coordinator) countState(pred func(NodeState) bool) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, m := range c.members {
		if pred(m.state) {
			n++
		}
	}
	return n
}

// acceptLoop accepts node-agent connections until the listener
// closes.
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleNode(conn)
	}
}

// handleNode speaks the control plane with one inbound connection.
// The first message decides who is talking: a heartbeat opens an
// agent session (register/re-bind, acks, assigns, redirects out), a
// replicate opens a replication session from a primary (replica.go).
// A standby answers agent heartbeats with a promote pointing at the
// primary it believes in, so agents sweeping the seed list converge.
func (c *Coordinator) handleNode(conn net.Conn) {
	defer c.wg.Done()
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var m *member
	defer func() {
		if m != nil {
			c.unbind(m, conn)
		}
	}()
	first := true
	for {
		var msg rsu.Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.Validate() != nil {
			c.log.Warnf("fleet: dropping control connection after invalid %q message", msg.Type)
			return
		}
		if first && msg.Type == rsu.TypeReplicate {
			c.replicaSession(conn, dec, enc, msg)
			return
		}
		if first && msg.Type == rsu.TypeVote {
			// A candidate standby asking whether we also find the
			// primary silent: one ballot, one reply, done.
			_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.PushTimeout))
			_ = enc.Encode(c.onVoteRequest(msg))
			return
		}
		first = false
		if msg.Type != rsu.TypeHeartbeat {
			c.log.Warnf("fleet: dropping control connection after bad message %q", msg.Type)
			return
		}
		if redirect, standby := c.standbyRedirect(); standby {
			if redirect.Type != "" {
				_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.PushTimeout))
				_ = enc.Encode(redirect)
			}
			return
		}
		pushes, last := c.onHeartbeat(&m, conn, enc, msg)
		for _, p := range pushes {
			c.send(p.m, p.msg)
		}
		if last {
			return
		}
	}
}

// standbyRedirect returns the promote message a standby answers agent
// heartbeats with (zero message when it has not heard a primary yet —
// the agent just moves to the next seed).
func (c *Coordinator) standbyRedirect() (rsu.Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.role == RolePrimary {
		return rsu.Message{}, false
	}
	if c.primaryAddr == "" || c.term < 1 {
		return rsu.Message{}, true
	}
	return rsu.PromoteMessage(c.primaryAddr, c.term, c.epoch), true
}

// onHeartbeat applies one heartbeat to the membership state and
// returns the messages to send; last demands the connection be
// dropped afterwards (a rejected dead node).
func (c *Coordinator) onHeartbeat(pm **member, conn net.Conn, enc *json.Encoder, msg rsu.Message) (pushes []push, last bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics.heartbeats.Inc()
	if c.closed {
		return nil, true
	}
	ack := func(m *member) push {
		return push{m: m, msg: rsu.HeartbeatMessage(m.id, "", c.epoch)}
	}
	m := *pm
	if m == nil {
		// First heartbeat on this connection: rebind, rejoin, or join.
		if existing := c.members[msg.Node]; existing != nil && existing.state != Dead {
			// The node redialed (network blip, restart, or a coordinator
			// failover) — adopt the new connection and resend the current
			// assignment.
			if existing.conn != nil && existing.conn != conn {
				_ = existing.conn.Close()
			}
			existing.conn, existing.enc = conn, enc
			if msg.Addr != "" {
				existing.addr = msg.Addr
			}
			if msg.DebugAddr != "" {
				existing.debugAddr = msg.DebugAddr
			}
			existing.last = now
			if existing.state == Suspect {
				existing.state = Live
			}
			*pm = existing
			c.log.Infof("fleet: node %q re-bound its control connection", existing.id)
			return []push{ack(existing), {m: existing, msg: c.assignMsgLocked(existing.id)}}, false
		}
		// A brand-new node, or a dead tombstone rejoining under its old
		// id: either way it enters as a newcomer and the ring rebalances.
		m = &member{
			id:        msg.Node,
			addr:      msg.Addr,
			debugAddr: msg.DebugAddr,
			state:     Live,
			last:      now,
			conn:      conn,
			enc:       enc,
			live:      c.reg.Gauge(fmt.Sprintf("fleet_node_live{node=%q}", msg.Node), "1 while the node is not declared dead"),
		}
		c.members[msg.Node] = m
		m.live.Set(1)
		*pm = m
		c.metrics.joins.Inc()
		c.log.Infof("fleet: node %q joined from %s (rsu at %s)", m.id, conn.RemoteAddr(), m.addr)
		if msg.Draining {
			// Joining already-draining makes no sense; treat as a
			// plain join and let the next draining heartbeat leave.
			return append(c.reassignLocked("join"), ack(m)), false
		}
		return append(c.reassignLocked("join"), ack(m)), false
	}
	if c.members[m.id] != m || (m.state == Dead && !msg.Draining) {
		// This connection's node was declared dead (partition) or
		// superseded by a newer connection. Reject: its shards belong
		// to someone else now. The redirect points home so the agent
		// rejoins as a newcomer.
		c.metrics.lateHeartbeats.Inc()
		c.log.Warnf("fleet: rejecting late heartbeat from %q (declared %v)", m.id, m.state)
		return []push{{m: m, msg: rsu.RedirectMessage(0, c.Addr(), c.epoch)}}, true
	}
	if msg.Draining {
		if m.state != Dead {
			// Graceful leave: move the shards now, then hand the
			// drainer a final empty assignment so it can redirect its
			// subscribers and finish.
			m.state = Dead
			m.live.Set(0)
			c.metrics.drains.Inc()
			c.log.Infof("fleet: node %q draining; moving its shards", m.id)
			pushes = c.reassignLocked("drain")
			pushes = append(pushes, push{m: m, msg: c.assignMsgLocked(m.id)})
			return append(pushes, ack(m)), false
		}
		return []push{ack(m)}, false
	}
	m.last = now
	if m.state == Suspect {
		c.log.Infof("fleet: node %q recovered from suspicion", m.id)
		m.state = Live
	}
	return []push{ack(m)}, false
}

// assignMsgLocked builds the assignment push for one node from the
// current owners map, stamped with the coordinator term so agents can
// fence stale primaries. Callers hold c.mu.
func (c *Coordinator) assignMsgLocked(id string) rsu.Message {
	var owned []int
	table := make(map[int]string, len(c.owners))
	for k, owner := range c.owners {
		if owner == id {
			owned = append(owned, k)
		}
		if mm := c.members[owner]; mm != nil {
			table[k] = mm.addr
		}
	}
	sort.Ints(owned)
	msg := rsu.AssignMessage(c.epoch, owned, table)
	msg.Term = c.term
	return msg
}

// reassignLocked recomputes the rendezvous assignment over the
// non-dead nodes, bumps the epoch, and returns the pushes for every
// reachable node. Callers hold c.mu.
func (c *Coordinator) reassignLocked(reason string) []push {
	c.epoch++
	var live []string
	for id, m := range c.members {
		if m.state != Dead {
			live = append(live, id)
		}
	}
	sort.Strings(live)
	c.owners = Assignments(live, c.cfg.Intersections)
	c.persistLocked()
	c.metrics.reassignments.Inc()
	c.log.Infof("fleet: term %d epoch %d (%s): %d intersections over %d nodes", c.term, c.epoch, reason, len(c.cfg.Intersections), len(live))
	var pushes []push
	for _, id := range live {
		m := c.members[id]
		if m.conn == nil {
			continue // unreachable; it will get the state on re-bind
		}
		pushes = append(pushes, push{m: m, msg: c.assignMsgLocked(id)})
	}
	return pushes
}

// send writes one control message to a member with the push deadline.
// Failures are counted per peer and otherwise left to the heartbeat
// detector — a node that cannot be written to will stop acking soon
// enough.
func (c *Coordinator) send(m *member, msg rsu.Message) {
	c.mu.Lock()
	conn, enc := m.conn, m.enc
	c.mu.Unlock()
	if conn == nil {
		return
	}
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.PushTimeout))
	if err := enc.Encode(msg); err != nil {
		c.reg.Counter(fmt.Sprintf("fleet_push_errors_total{peer=%q}", m.id),
			"control-plane pushes that failed to write").Inc()
		c.log.Warnf("fleet: push %s to node %q failed: %v", msg.Type, m.id, err)
		return
	}
	_ = conn.SetWriteDeadline(time.Time{})
}

// monitor runs the failure detector. As primary it escalates silent
// nodes: suspect past SuspectAfter, dead past DeadAfter — death moves
// shards immediately and counts a failover. As standby it watches the
// primary's replication stream and promotes itself when the primary
// has been silent past its rank-staggered deadline (replica.go).
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	interval := c.cfg.Timings.HeartbeatEvery / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		start := time.Now()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.role == RoleStandby {
			c.standbyTickLocked(start)
			c.mu.Unlock()
			continue
		}
		var newlyDead int
		for _, m := range c.members {
			if m.state == Dead {
				continue
			}
			age := start.Sub(m.last)
			switch {
			case age >= c.cfg.Timings.DeadAfter:
				m.state = Dead
				m.live.Set(0)
				newlyDead++
				c.log.Warnf("fleet: node %q declared dead after %v of silence", m.id, age)
			case age >= c.cfg.Timings.SuspectAfter && m.state == Live:
				m.state = Suspect
				c.log.Warnf("fleet: node %q suspect after %v of silence", m.id, age)
			}
		}
		var pushes []push
		if newlyDead > 0 {
			c.metrics.failovers.Add(int64(newlyDead))
			pushes = c.reassignLocked("failover")
		}
		c.mu.Unlock()
		for _, p := range pushes {
			c.send(p.m, p.msg)
		}
		if newlyDead > 0 {
			c.metrics.reassignLat.ObserveDuration(time.Since(start))
		}
	}
}

// unbind clears a member's connection when its handler exits; the
// node keeps its shards until the heartbeat detector rules on it.
func (c *Coordinator) unbind(m *member, conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.conn == conn {
		m.conn, m.enc = nil, nil
	}
}

// Close stops the control plane: no more accepts, every node
// connection is dropped, replication stops, and the background
// goroutines exit. Agents keep serving their last assignment (the
// data plane outlives its coordinator).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	// A closed coordinator is nobody's primary: drop the role so the
	// fleet_coordinator_role gauge on a shared registry cannot show two
	// leaders after a standby takes over.
	c.role = RoleStandby
	if c.replStop != nil {
		close(c.replStop)
		c.replStop = nil
	}
	conns := make([]net.Conn, 0, len(c.members))
	for _, m := range c.members {
		if m.conn != nil {
			conns = append(conns, m.conn)
		}
	}
	c.mu.Unlock()
	close(c.stop)
	err := c.ln.Close()
	for _, conn := range conns {
		_ = conn.Close()
	}
	c.wg.Wait()
	if c.wal != nil {
		if werr := c.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}
