package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// Config sizes a Coordinator.
type Config struct {
	// Intersections are the shard keys the fleet must keep served.
	Intersections []int
	// Timings is the failure-detection clock.
	Timings Timings
	// PushTimeout bounds each assignment/ack write to a node (default
	// 2s); a node that cannot be written to is left to the heartbeat
	// detector.
	PushTimeout time.Duration
	// Metrics receives the fleet series (nil keeps a private
	// registry).
	Metrics *telemetry.Registry
	// Logger records membership events (nil discards).
	Logger *telemetry.Logger
}

// member is one node the coordinator has seen. Dead members are kept
// as tombstones while their connection lives, so a late heartbeat
// from a partitioned-but-alive node can be rejected with a redirect
// instead of silently re-admitting a node whose shards moved.
type member struct {
	id    string
	addr  string
	state NodeState
	last  time.Time

	// conn/enc are written under Coordinator.mu; sendMu serialises
	// actual writes (heartbeat acks from the connection handler race
	// assignment pushes from the monitor).
	conn   net.Conn
	enc    *json.Encoder
	sendMu sync.Mutex

	live *telemetry.Gauge
}

// push is one outbound control message, built under the lock and sent
// outside it.
type push struct {
	m   *member
	msg rsu.Message
}

type coordMetrics struct {
	heartbeats     *telemetry.Counter
	lateHeartbeats *telemetry.Counter
	failovers      *telemetry.Counter
	reassignments  *telemetry.Counter
	joins          *telemetry.Counter
	drains         *telemetry.Counter
	reassignLat    *telemetry.Histogram
}

// Coordinator owns the intersection→node assignment for one fleet.
type Coordinator struct {
	cfg     Config
	ln      net.Listener
	log     *telemetry.Logger
	reg     *telemetry.Registry
	metrics coordMetrics

	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	epoch   int64
	members map[string]*member
	owners  map[int]string // intersection → owning node id
}

// NewCoordinator starts a coordinator listening for node agents on
// addr (e.g. "127.0.0.1:0").
func NewCoordinator(addr string, cfg Config) (*Coordinator, error) {
	if len(cfg.Intersections) == 0 {
		return nil, fmt.Errorf("fleet: coordinator needs at least one intersection")
	}
	seen := make(map[int]bool, len(cfg.Intersections))
	for _, i := range cfg.Intersections {
		if i <= 0 {
			return nil, fmt.Errorf("fleet: intersection ids must be positive, got %d", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("fleet: duplicate intersection id %d", i)
		}
		seen[i] = true
	}
	cfg.Timings = cfg.Timings.withDefaults()
	if err := cfg.Timings.validate(); err != nil {
		return nil, err
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen: %w", err)
	}
	reg := nopIfNil(cfg.Metrics)
	c := &Coordinator{
		cfg:     cfg,
		ln:      ln,
		log:     cfg.Logger,
		reg:     reg,
		stop:    make(chan struct{}),
		members: make(map[string]*member),
		owners:  make(map[int]string),
		metrics: coordMetrics{
			heartbeats:     reg.Counter("fleet_heartbeats_total", "heartbeats received from node agents"),
			lateHeartbeats: reg.Counter("fleet_late_heartbeats_total", "heartbeats rejected because the node was already declared dead"),
			failovers:      reg.Counter("fleet_failovers_total", "nodes declared dead by heartbeat timeout"),
			reassignments:  reg.Counter("fleet_reassignments_total", "assignment epochs pushed (joins, drains, failovers)"),
			joins:          reg.Counter("fleet_joins_total", "nodes that registered with the coordinator"),
			drains:         reg.Counter("fleet_drains_total", "nodes that left gracefully via drain"),
			reassignLat:    reg.Histogram("fleet_reassign_seconds", "death detection to all assignments pushed", telemetry.UnitSeconds),
		},
	}
	reg.GaugeFunc("fleet_nodes_live", "fleet nodes not declared dead", func() int64 {
		return c.countState(func(s NodeState) bool { return s != Dead })
	})
	reg.GaugeFunc("fleet_nodes_suspect", "fleet nodes suspected (silent past suspect-after)", func() int64 {
		return c.countState(func(s NodeState) bool { return s == Suspect })
	})
	c.wg.Add(2)
	go c.acceptLoop()
	go c.monitor()
	return c, nil
}

// Addr returns the coordinator's control-plane address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch returns the current assignment epoch.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Assignments returns a copy of the current intersection→node-id map.
func (c *Coordinator) Assignments() map[int]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]string, len(c.owners))
	for k, v := range c.owners {
		out[k] = v
	}
	return out
}

// States returns every known node's liveness state (including dead
// tombstones).
func (c *Coordinator) States() map[string]NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]NodeState, len(c.members))
	for id, m := range c.members {
		out[id] = m.state
	}
	return out
}

func (c *Coordinator) countState(pred func(NodeState) bool) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, m := range c.members {
		if pred(m.state) {
			n++
		}
	}
	return n
}

// acceptLoop accepts node-agent connections until the listener
// closes.
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleNode(conn)
	}
}

// handleNode speaks the control plane with one agent connection:
// heartbeats in, acks/assigns/redirects out. The first heartbeat on a
// connection registers (or re-binds) the node.
func (c *Coordinator) handleNode(conn net.Conn) {
	defer c.wg.Done()
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var m *member
	defer func() {
		if m != nil {
			c.unbind(m, conn)
		}
	}()
	for {
		var msg rsu.Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.Type != rsu.TypeHeartbeat || msg.Validate() != nil {
			c.log.Warnf("fleet: dropping control connection after bad message %q", msg.Type)
			return
		}
		pushes, last := c.onHeartbeat(&m, conn, enc, msg)
		for _, p := range pushes {
			c.send(p.m, p.msg)
		}
		if last {
			return
		}
	}
}

// onHeartbeat applies one heartbeat to the membership state and
// returns the messages to send; last demands the connection be
// dropped afterwards (a rejected dead node).
func (c *Coordinator) onHeartbeat(pm **member, conn net.Conn, enc *json.Encoder, msg rsu.Message) (pushes []push, last bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics.heartbeats.Inc()
	if c.closed {
		return nil, true
	}
	ack := func(m *member) push {
		return push{m: m, msg: rsu.HeartbeatMessage(m.id, "", c.epoch)}
	}
	m := *pm
	if m == nil {
		// First heartbeat on this connection: rebind, rejoin, or join.
		if existing := c.members[msg.Node]; existing != nil && existing.state != Dead {
			// The node redialed (network blip or restart) — adopt the
			// new connection and resend the current assignment.
			if existing.conn != nil && existing.conn != conn {
				_ = existing.conn.Close()
			}
			existing.conn, existing.enc = conn, enc
			if msg.Addr != "" {
				existing.addr = msg.Addr
			}
			existing.last = now
			if existing.state == Suspect {
				existing.state = Live
			}
			*pm = existing
			c.log.Infof("fleet: node %q re-bound its control connection", existing.id)
			return []push{ack(existing), {m: existing, msg: c.assignMsgLocked(existing.id)}}, false
		}
		// A brand-new node, or a dead tombstone rejoining under its old
		// id: either way it enters as a newcomer and the ring rebalances.
		m = &member{
			id:    msg.Node,
			addr:  msg.Addr,
			state: Live,
			last:  now,
			conn:  conn,
			enc:   enc,
			live:  c.reg.Gauge(fmt.Sprintf("fleet_node_live{node=%q}", msg.Node), "1 while the node is not declared dead"),
		}
		c.members[msg.Node] = m
		m.live.Set(1)
		*pm = m
		c.metrics.joins.Inc()
		c.log.Infof("fleet: node %q joined from %s (rsu at %s)", m.id, conn.RemoteAddr(), m.addr)
		if msg.Draining {
			// Joining already-draining makes no sense; treat as a
			// plain join and let the next draining heartbeat leave.
			return append(c.reassignLocked("join"), ack(m)), false
		}
		return append(c.reassignLocked("join"), ack(m)), false
	}
	if c.members[m.id] != m || (m.state == Dead && !msg.Draining) {
		// This connection's node was declared dead (partition) or
		// superseded by a newer connection. Reject: its shards belong
		// to someone else now. The redirect points home so the agent
		// rejoins as a newcomer.
		c.metrics.lateHeartbeats.Inc()
		c.log.Warnf("fleet: rejecting late heartbeat from %q (declared %v)", m.id, m.state)
		return []push{{m: m, msg: rsu.RedirectMessage(0, c.Addr(), c.epoch)}}, true
	}
	if msg.Draining {
		if m.state != Dead {
			// Graceful leave: move the shards now, then hand the
			// drainer a final empty assignment so it can redirect its
			// subscribers and finish.
			m.state = Dead
			m.live.Set(0)
			c.metrics.drains.Inc()
			c.log.Infof("fleet: node %q draining; moving its shards", m.id)
			pushes = c.reassignLocked("drain")
			pushes = append(pushes, push{m: m, msg: c.assignMsgLocked(m.id)})
			return append(pushes, ack(m)), false
		}
		return []push{ack(m)}, false
	}
	m.last = now
	if m.state == Suspect {
		c.log.Infof("fleet: node %q recovered from suspicion", m.id)
		m.state = Live
	}
	return []push{ack(m)}, false
}

// assignMsgLocked builds the assignment push for one node from the
// current owners map. Callers hold c.mu.
func (c *Coordinator) assignMsgLocked(id string) rsu.Message {
	var owned []int
	table := make(map[int]string, len(c.owners))
	for k, owner := range c.owners {
		if owner == id {
			owned = append(owned, k)
		}
		if mm := c.members[owner]; mm != nil {
			table[k] = mm.addr
		}
	}
	sort.Ints(owned)
	return rsu.AssignMessage(c.epoch, owned, table)
}

// reassignLocked recomputes the rendezvous assignment over the
// non-dead nodes, bumps the epoch, and returns the pushes for every
// reachable node. Callers hold c.mu.
func (c *Coordinator) reassignLocked(reason string) []push {
	c.epoch++
	var live []string
	for id, m := range c.members {
		if m.state != Dead {
			live = append(live, id)
		}
	}
	sort.Strings(live)
	c.owners = Assignments(live, c.cfg.Intersections)
	c.metrics.reassignments.Inc()
	c.log.Infof("fleet: epoch %d (%s): %d intersections over %d nodes", c.epoch, reason, len(c.cfg.Intersections), len(live))
	var pushes []push
	for _, id := range live {
		m := c.members[id]
		if m.conn == nil {
			continue // unreachable; it will get the state on re-bind
		}
		pushes = append(pushes, push{m: m, msg: c.assignMsgLocked(id)})
	}
	return pushes
}

// send writes one control message to a member with the push deadline.
// Failures are logged and otherwise left to the heartbeat detector —
// a node that cannot be written to will stop acking soon enough.
func (c *Coordinator) send(m *member, msg rsu.Message) {
	c.mu.Lock()
	conn, enc := m.conn, m.enc
	c.mu.Unlock()
	if conn == nil {
		return
	}
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.PushTimeout))
	if err := enc.Encode(msg); err != nil {
		c.log.Warnf("fleet: push %s to node %q failed: %v", msg.Type, m.id, err)
		return
	}
	_ = conn.SetWriteDeadline(time.Time{})
}

// monitor escalates silent nodes: suspect past SuspectAfter, dead
// past DeadAfter. Death moves shards immediately and counts a
// failover; the reassignment latency histogram times detection to
// last push.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	interval := c.cfg.Timings.HeartbeatEvery / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		start := time.Now()
		c.mu.Lock()
		var newlyDead int
		for _, m := range c.members {
			if m.state == Dead {
				continue
			}
			age := start.Sub(m.last)
			switch {
			case age >= c.cfg.Timings.DeadAfter:
				m.state = Dead
				m.live.Set(0)
				newlyDead++
				c.log.Warnf("fleet: node %q declared dead after %v of silence", m.id, age)
			case age >= c.cfg.Timings.SuspectAfter && m.state == Live:
				m.state = Suspect
				c.log.Warnf("fleet: node %q suspect after %v of silence", m.id, age)
			}
		}
		var pushes []push
		if newlyDead > 0 {
			c.metrics.failovers.Add(int64(newlyDead))
			pushes = c.reassignLocked("failover")
		}
		c.mu.Unlock()
		for _, p := range pushes {
			c.send(p.m, p.msg)
		}
		if newlyDead > 0 {
			c.metrics.reassignLat.ObserveDuration(time.Since(start))
		}
	}
}

// unbind clears a member's connection when its handler exits; the
// node keeps its shards until the heartbeat detector rules on it.
func (c *Coordinator) unbind(m *member, conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.conn == conn {
		m.conn, m.enc = nil, nil
	}
}

// Close stops the control plane: no more accepts, every node
// connection is dropped, and the background goroutines exit. Agents
// keep serving their last assignment (the data plane outlives its
// coordinator).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.members))
	for _, m := range c.members {
		if m.conn != nil {
			conns = append(conns, m.conn)
		}
	}
	c.mu.Unlock()
	close(c.stop)
	err := c.ln.Close()
	for _, conn := range conns {
		_ = conn.Close()
	}
	c.wg.Wait()
	return err
}
