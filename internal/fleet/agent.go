package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"safecross/internal/rsu"
	"safecross/internal/telemetry"
)

// AgentConfig wires one node agent. Construction normally goes
// through NewAgent with options; the struct remains for the
// deprecated NewAgentFromConfig path.
type AgentConfig struct {
	// ID is the node's stable fleet identity (must be non-empty and
	// unique across the fleet — it is the rendezvous hashing input).
	ID string
	// Coordinator is a single control-plane address to register with.
	//
	// Deprecated: use Coordinators (the agent treats this field as a
	// one-element seed list).
	Coordinator string
	// Coordinators is the coordinator seed list. The agent sweeps it
	// until a primary accepts the registration, and follows promote
	// redirects to whichever seed currently leads.
	Coordinators []string
	// Advertise is the node's rsu.Server address as vehicles should
	// dial it; it travels in heartbeats and assignment tables.
	Advertise string
	// DebugAddr is the node's telemetry debug-listener address. It
	// travels in heartbeats so the coordinator's federator knows where
	// to scrape this node's metrics and traces. Empty opts the node out
	// of federation.
	DebugAddr string
	// Timings must match the coordinator's clock (only HeartbeatEvery
	// and SuspectAfter are used on the agent side).
	Timings Timings
	// DialTimeout bounds each coordinator dial (default 2s).
	DialTimeout time.Duration
	// Runner serves each owned intersection (nil: routing state only).
	Runner Runner
	// Metrics receives the agent's series (nil keeps a private
	// registry).
	Metrics *telemetry.Registry
	// Logger records session and shard events (nil discards).
	Logger *telemetry.Logger
}

// Runner serves one owned intersection until ctx is cancelled
// (typically: step a simulated world and broadcast advisories through
// the node's rsu.Server). A nil runner means the agent only maintains
// routing state.
type Runner func(ctx context.Context, intersection int)

type agentMetrics struct {
	rtt      *telemetry.Histogram
	assigns  *telemetry.Counter
	sessions *telemetry.Counter
}

// Agent binds one RSU process into the fleet: it registers with the
// coordinator, heartbeats, and turns assignment pushes into running
// shards plus rsu.Server routing state. A coordinator failover is
// survivable in place: a promote redirect re-targets the control
// connection to the new primary while every owned shard keeps
// serving.
type Agent struct {
	cfg     AgentConfig
	srv     *rsu.Server
	runner  Runner
	log     *telemetry.Logger
	metrics agentMetrics

	stop     chan struct{}
	stopOnce sync.Once
	loopWG   sync.WaitGroup
	runWG    sync.WaitGroup

	mu        sync.Mutex
	conn      net.Conn
	enc       *json.Encoder
	sendMu    sync.Mutex
	owned     map[int]context.CancelFunc
	term      int64
	epoch     int64
	target    string // last promote-announced primary; tried first
	draining  bool
	pendingHB time.Time // zero when no heartbeat awaits its ack
}

// NewAgent starts an agent for srv and begins sweeping the
// coordinator seed list (WithCoordinators). srv must be non-nil.
func NewAgent(id string, srv *rsu.Server, opts ...AgentOption) (*Agent, error) {
	cfg := AgentConfig{ID: id}
	for _, o := range opts {
		o.applyAgent(&cfg)
	}
	return newAgent(cfg, srv)
}

// NewAgentFromConfig is the Config-struct construction path.
//
// Deprecated: use NewAgent with options (WithCoordinators,
// WithRunner, WithMetrics, WithHeartbeat, …).
func NewAgentFromConfig(cfg AgentConfig, srv *rsu.Server, runner Runner) (*Agent, error) {
	if runner != nil {
		cfg.Runner = runner
	}
	return newAgent(cfg, srv)
}

func newAgent(cfg AgentConfig, srv *rsu.Server) (*Agent, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: agent needs an ID")
	}
	if len(cfg.Coordinators) == 0 && cfg.Coordinator != "" {
		cfg.Coordinators = []string{cfg.Coordinator}
	}
	if len(cfg.Coordinators) == 0 {
		return nil, fmt.Errorf("fleet: agent needs at least one coordinator address")
	}
	if srv == nil {
		return nil, fmt.Errorf("fleet: agent needs an rsu server")
	}
	cfg.Timings = cfg.Timings.withDefaults()
	if err := cfg.Timings.validate(); err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Advertise == "" {
		cfg.Advertise = srv.Addr()
	}
	reg := nopIfNil(cfg.Metrics)
	a := &Agent{
		cfg:    cfg,
		srv:    srv,
		runner: cfg.Runner,
		log:    cfg.Logger,
		stop:   make(chan struct{}),
		owned:  make(map[int]context.CancelFunc),
		metrics: agentMetrics{
			rtt:      reg.Histogram(fmt.Sprintf("fleet_heartbeat_rtt_seconds{node=%q}", cfg.ID), "heartbeat send to coordinator ack", telemetry.UnitSeconds),
			assigns:  reg.Counter(fmt.Sprintf("fleet_assigns_total{node=%q}", cfg.ID), "assignment epochs applied"),
			sessions: reg.Counter(fmt.Sprintf("fleet_coordinator_sessions_total{node=%q}", cfg.ID), "control connections established to a coordinator"),
		},
	}
	a.loopWG.Add(1)
	go a.loop()
	return a, nil
}

// ID returns the agent's fleet identity.
func (a *Agent) ID() string { return a.cfg.ID }

// Epoch returns the last assignment epoch applied.
func (a *Agent) Epoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Term returns the coordinator term of the last assignment applied.
func (a *Agent) Term() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.term
}

// Owned returns the intersections this node currently serves, sorted.
func (a *Agent) Owned() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, 0, len(a.owned))
	for i := range a.owned {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (a *Agent) stopped() bool {
	select {
	case <-a.stop:
		return true
	default:
		return false
	}
}

func (a *Agent) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// candidates returns the dial order for one sweep: the last
// promote-announced primary first, then the rest of the seed list.
func (a *Agent) candidates() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.cfg.Coordinators)+1)
	if a.target != "" {
		out = append(out, a.target)
	}
	for _, s := range a.cfg.Coordinators {
		if s != a.target {
			out = append(out, s)
		}
	}
	return out
}

// loop sweeps the coordinator seed list until the agent stops. A lost
// coordinator never stops serving: the current shards keep running on
// the last-known assignment while the agent redials. Backoff between
// sweeps is capped at the suspect threshold, so a node re-finds a
// freshly promoted primary before the new primary's failure detector
// rules on it.
func (a *Agent) loop() {
	defer a.loopWG.Done()
	backoff := a.cfg.Timings.HeartbeatEvery
	maxBackoff := a.cfg.Timings.SuspectAfter
	if maxBackoff < a.cfg.Timings.HeartbeatEvery {
		maxBackoff = a.cfg.Timings.HeartbeatEvery
	}
	for {
		if a.stopped() {
			return
		}
		connected := false
		for _, addr := range a.candidates() {
			conn, err := net.DialTimeout("tcp", addr, a.cfg.DialTimeout)
			if err != nil {
				a.log.Debugf("fleet: node %q cannot reach coordinator %s: %v", a.cfg.ID, addr, err)
				continue
			}
			connected = true
			a.metrics.sessions.Inc()
			again := a.session(conn)
			_ = conn.Close()
			if !again || a.stopped() {
				return
			}
			break // re-derive the sweep order: a promote may have re-targeted us
		}
		if connected {
			backoff = a.cfg.Timings.HeartbeatEvery
		}
		select {
		case <-a.stop:
			return
		case <-time.After(backoff):
		}
		if !connected {
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

// session runs one control connection: register, heartbeat on the
// interval, apply whatever the coordinator pushes. It returns true to
// redial, false when the agent is done.
func (a *Agent) session(conn net.Conn) bool {
	enc := json.NewEncoder(conn)
	a.mu.Lock()
	a.conn, a.enc = conn, enc
	a.pendingHB = time.Time{}
	a.mu.Unlock()
	if err := a.sendHeartbeat(); err != nil {
		return true
	}

	in := make(chan rsu.Message, 16)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		defer close(in)
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var msg rsu.Message
			if err := dec.Decode(&msg); err != nil {
				return
			}
			select {
			case in <- msg:
			case <-quit:
				return
			}
		}
	}()

	tick := time.NewTicker(a.cfg.Timings.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return false
		case msg, ok := <-in:
			if !ok {
				a.log.Debugf("fleet: node %q lost the coordinator; redialing", a.cfg.ID)
				return true
			}
			switch msg.Type {
			case rsu.TypeHeartbeat:
				a.observeRTT()
			case rsu.TypeAssign:
				a.apply(msg)
			case rsu.TypePromote:
				// The primary moved. Re-target the control plane and
				// re-register there — WITHOUT touching the running
				// shards: ownership only changes on an assign or a
				// redirect.
				a.mu.Lock()
				a.target = msg.Addr
				a.mu.Unlock()
				a.log.Infof("fleet: node %q re-targeting coordinator %s (term %d)", a.cfg.ID, msg.Addr, msg.Term)
				return true
			case rsu.TypeRedirect:
				if a.isDraining() {
					// Drain raced death detection; either way the
					// shards are gone and the agent is done.
					return false
				}
				// Declared dead while partitioned: drop everything
				// (the shards belong to someone else) and rejoin as a
				// newcomer on a fresh connection.
				a.log.Warnf("fleet: node %q was declared dead; rejoining", a.cfg.ID)
				a.clearShards()
				return true
			}
		case <-tick.C:
			if err := a.sendHeartbeat(); err != nil {
				a.log.Debugf("fleet: node %q heartbeat failed: %v", a.cfg.ID, err)
				return true
			}
		}
	}
}

// sendHeartbeat writes one heartbeat on the current connection,
// stamping the RTT clock if no ack is outstanding.
func (a *Agent) sendHeartbeat() error {
	a.mu.Lock()
	conn, enc := a.conn, a.enc
	draining := a.draining
	if conn != nil && a.pendingHB.IsZero() {
		a.pendingHB = time.Now()
	}
	a.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("fleet: no coordinator connection")
	}
	msg := rsu.HeartbeatMessage(a.cfg.ID, a.cfg.Advertise, a.Epoch())
	msg.Draining = draining
	msg.DebugAddr = a.cfg.DebugAddr
	a.sendMu.Lock()
	defer a.sendMu.Unlock()
	_ = conn.SetWriteDeadline(time.Now().Add(a.cfg.DialTimeout))
	if err := enc.Encode(msg); err != nil {
		return err
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return nil
}

// observeRTT folds a heartbeat ack into the RTT histogram.
func (a *Agent) observeRTT() {
	a.mu.Lock()
	var rtt time.Duration
	if !a.pendingHB.IsZero() {
		rtt = time.Since(a.pendingHB)
		a.pendingHB = time.Time{}
	}
	a.mu.Unlock()
	if rtt > 0 {
		a.metrics.rtt.ObserveDuration(rtt)
	}
}

// routeEpoch collapses the (term, epoch) fencing stamp into the single
// monotone value the rsu.Server's routing state is versioned by.
// Terms dominate: a promoted coordinator's first push outranks every
// epoch of the term before it, matching the lexicographic fence.
func routeEpoch(term, epoch int64) int64 { return term<<32 | epoch }

// apply installs one assignment epoch: start runners for newly owned
// intersections, cancel runners for shards that moved away, update
// the rsu.Server routing table, and redirect subscribers of departed
// shards to their new home. Assignments carry the issuing
// coordinator's (term, epoch) stamp; anything that does not strictly
// advance it is a stale primary's push and is dropped.
func (a *Agent) apply(msg rsu.Message) {
	if msg.Validate() != nil {
		return
	}
	term := msg.Term
	if term < 1 {
		term = 1 // pre-replication coordinators did not stamp terms
	}
	newOwned := make(map[int]bool, len(msg.Owned))
	for _, i := range msg.Owned {
		newOwned[i] = true
	}
	a.mu.Lock()
	if term < a.term || (term == a.term && msg.Epoch <= a.epoch) {
		a.mu.Unlock()
		return
	}
	a.term, a.epoch = term, msg.Epoch
	var started, stopped []int
	for i, cancel := range a.owned {
		if !newOwned[i] {
			cancel()
			delete(a.owned, i)
			stopped = append(stopped, i)
		}
	}
	for i := range newOwned {
		if _, ok := a.owned[i]; ok {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		a.owned[i] = cancel
		started = append(started, i)
		if a.runner != nil {
			a.runWG.Add(1)
			go func(i int) {
				defer a.runWG.Done()
				a.runner(ctx, i)
			}(i)
		} else {
			cancel() // nothing holds the context; avoid a vet leak
		}
	}
	a.mu.Unlock()

	a.srv.SetRoutes(routeEpoch(term, msg.Epoch), msg.Owned, msg.Table)
	sort.Ints(stopped)
	for _, i := range stopped {
		if addr := msg.Table[i]; addr != "" && addr != a.cfg.Advertise {
			a.srv.RedirectIntersection(i, addr)
		}
	}
	a.metrics.assigns.Inc()
	sort.Ints(started)
	a.log.Infof("fleet: node %q term %d epoch %d: +%v -%v (owns %d)", a.cfg.ID, term, msg.Epoch, started, stopped, len(newOwned))
}

// clearShards cancels every runner and forgets ownership — used when
// the coordinator rejects us as dead and our shards live elsewhere.
func (a *Agent) clearShards() {
	a.mu.Lock()
	for i, cancel := range a.owned {
		cancel()
		delete(a.owned, i)
	}
	a.mu.Unlock()
	a.runWG.Wait()
}

// Drain leaves the fleet gracefully: it tells the coordinator to move
// this node's shards, waits (bounded by ctx) until the final empty
// assignment lands and the last runner exits, then stops the agent.
// The rsu.Server and serving plane are the caller's to close — Drain
// only hands off fleet ownership.
func (a *Agent) Drain(ctx context.Context) error {
	a.mu.Lock()
	already := a.draining
	a.draining = true
	epoch0 := a.epoch
	a.mu.Unlock()
	if !already {
		// Nudge the coordinator now rather than waiting a tick; if the
		// connection is down, the next session registers as draining.
		_ = a.sendHeartbeat()
	}
	var err error
wait:
	for {
		// Done when the coordinator acknowledged the drain — the
		// reassignment it triggers always pushes us a fresh (empty)
		// epoch — and every runner's shard is gone. Waiting for the
		// epoch, not just an empty owned set, keeps a node that owned
		// nothing from racing its own goodbye off the wire. Epochs
		// survive promotions monotonically, so the comparison holds
		// even when the drain spans a coordinator failover.
		a.mu.Lock()
		done := a.epoch > epoch0 && len(a.owned) == 0
		a.mu.Unlock()
		if done {
			break
		}
		select {
		case <-ctx.Done():
			err = fmt.Errorf("fleet: drain: %w", ctx.Err())
			break wait
		case <-time.After(2 * time.Millisecond):
		}
	}
	a.close()
	return err
}

// Close stops the agent immediately (no handoff — the coordinator's
// failure detector will move the shards). It is what a crash looks
// like from the fleet's point of view, and the fault-injection hook
// the fleet binary uses.
func (a *Agent) Close() error {
	a.close()
	return nil
}

func (a *Agent) close() {
	a.stopOnce.Do(func() {
		close(a.stop)
		a.mu.Lock()
		conn := a.conn
		a.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
	})
	a.loopWG.Wait()
	a.clearShards()
}
