package infer

import (
	"fmt"
	"sync"
	"testing"

	"safecross/internal/nn"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
)

// argmaxModel is a native batched model: logits echo the input's first
// two elements, so labels are fully determined by the test data.
type argmaxModel struct {
	train    bool
	batches  int
	outCount int // when >0, return this many outputs regardless of n
	fail     bool
}

func (m *argmaxModel) Name() string        { return "argmax" }
func (m *argmaxModel) SetTrain(train bool) { m.train = train }

func (m *argmaxModel) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	if m.fail {
		return nil, fmt.Errorf("boom")
	}
	m.batches++
	defer ws.Reset()
	n := len(xs)
	if m.outCount > 0 {
		n = m.outCount
	}
	out := make([]*tensor.Tensor, n)
	for i := range out {
		scratch := ws.Get(2)
		copy(scratch.Data, xs[i%len(xs)].Data[:2])
		l := tensor.New(2)
		copy(l.Data, scratch.Data)
		out[i] = l
	}
	return out, nil
}

// fwdOnly implements just Forwarder.
type fwdOnly struct {
	train    bool
	forwards int
}

func (f *fwdOnly) Name() string        { return "fwd-only" }
func (f *fwdOnly) SetTrain(train bool) { f.train = train }

func (f *fwdOnly) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	f.forwards++
	out := tensor.New(2)
	copy(out.Data, x.Data[:2])
	return out, nil
}

func input(a, b float64) *tensor.Tensor {
	t := tensor.New(2, 2)
	t.Data[0], t.Data[1] = a, b
	return t
}

func TestPredictBatchDecodesInOrder(t *testing.T) {
	m := &argmaxModel{train: true}
	xs := []*tensor.Tensor{input(1, 0), input(0, 1), input(3, 2)}
	labels, err := PredictBatch(m, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if m.train {
		t.Fatal("PredictBatch must switch the model to eval mode")
	}
	if m.batches != 1 {
		t.Fatalf("batches = %d, want 1", m.batches)
	}
}

func TestPredictBatchValidation(t *testing.T) {
	m := &argmaxModel{}
	if _, err := PredictBatch(m, nil, nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, err := PredictBatch(m, []*tensor.Tensor{input(1, 0), nil}, nil); err == nil {
		t.Fatal("expected nil-input error")
	}
	mixed := []*tensor.Tensor{input(1, 0), tensor.New(3)}
	if _, err := PredictBatch(m, mixed, nil); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	m.outCount = 5
	if _, err := PredictBatch(m, []*tensor.Tensor{input(1, 0)}, nil); err == nil {
		t.Fatal("expected output-count error")
	}
	m.outCount = 0
	m.fail = true
	if _, err := PredictBatch(m, []*tensor.Tensor{input(1, 0)}, nil); err == nil {
		t.Fatal("expected forward error")
	}
}

func TestSequentializeMatchesNativeAndPassesThrough(t *testing.T) {
	f := &fwdOnly{train: true}
	m := Sequentialize(f)
	xs := []*tensor.Tensor{input(1, 0), input(0, 2), input(5, 4)}
	labels, err := PredictBatch(m, xs, nn.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	native, err := PredictBatch(&argmaxModel{}, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != native[i] {
			t.Fatalf("input %d: sequentialized label %d != native %d", i, labels[i], native[i])
		}
	}
	if f.forwards != len(xs) {
		t.Fatalf("forwards = %d, want %d", f.forwards, len(xs))
	}
	if f.train {
		t.Fatal("SetTrain(false) must reach the wrapped Forwarder")
	}

	dual := &dualModel{}
	if Sequentialize(dual) != Model(dual) {
		t.Fatal("a Forwarder that already implements Model must pass through")
	}
}

// dualModel implements both Forwarder and Model, like the batch-native
// video classifiers: Sequentialize must hand it back untouched.
type dualModel struct{ fwdOnly }

func (d *dualModel) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	return statelessModel{}.ForwardBatch(xs, ws)
}

func TestPredictSingle(t *testing.T) {
	label, err := Predict(&argmaxModel{}, input(0, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Fatalf("label = %d, want 1", label)
	}
}

func TestPoolReusesWorkspaces(t *testing.T) {
	p := NewPool()
	ws1 := p.Get()
	ws1.Get(16)
	p.Put(ws1)
	ws2 := p.Get()
	if ws2 != ws1 {
		t.Fatal("second Get must reuse the returned workspace")
	}
	ws2.Get(16)
	if ws2.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (the pooled buffer must be reused across Put/Get)", ws2.Misses)
	}
	ws3 := p.Get()
	if ws3 == ws2 {
		t.Fatal("a checked-out workspace must not be handed out twice")
	}
	p.Put(ws2)
	p.Put(ws3)
	p.Put(nil) // no-op
}

func TestPoolExportsWorkspaceCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(WithMetrics(reg))

	ws := p.Get()
	ws.Get(8)
	ws.Get(8)
	p.Put(ws) // 2 gets, 2 misses → 0 hits, 2 misses

	ws = p.Get()
	ws.Get(8)
	ws.Reset()
	ws.Get(8)
	p.Put(ws) // 2 gets, 0 misses → 2 hits

	snap := reg.Snapshot()
	if hits := snap.Int("infer_workspace_hits_total"); hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if misses := snap.Int("infer_workspace_misses_total"); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
	if size := snap.Int("infer_pool_workspaces"); size != 1 {
		t.Fatalf("pool workspaces = %d, want 1", size)
	}
}

func TestPoolAdoptsForeignWorkspaceWithoutHistory(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(WithMetrics(reg))
	ws := nn.NewWorkspace()
	ws.Get(4) // pre-pool history: must not be exported
	p.Put(ws)
	snap := reg.Snapshot()
	if n := snap.Int("infer_workspace_misses_total"); n != 0 {
		t.Fatalf("adopted workspace exported pre-pool history: misses = %d", n)
	}
	if p.Get() != ws {
		t.Fatal("adopted workspace must become available")
	}
}

// statelessModel carries no mutable state, so concurrent goroutines
// can share one instance while the race detector watches the pool.
type statelessModel struct{}

func (statelessModel) Name() string  { return "stateless" }
func (statelessModel) SetTrain(bool) {}

func (statelessModel) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	defer ws.Reset()
	out := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		scratch := ws.Get(2)
		copy(scratch.Data, x.Data[:2])
		l := tensor.New(2)
		copy(l.Data, scratch.Data)
		out[i] = l
	}
	return out, nil
}

// TestPoolConcurrentCheckout exercises the pool the way serve workers
// do — concurrent Get/forward/Put cycles — under the race detector.
func TestPoolConcurrentCheckout(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(WithMetrics(reg))
	m := statelessModel{}
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ws := p.Get()
				if _, err := PredictBatch(m, []*tensor.Tensor{input(1, 0)}, ws); err != nil {
					t.Error(err)
				}
				p.Put(ws)
			}
		}()
	}
	wg.Wait()
	if p.created > workers {
		t.Fatalf("pool built %d workspaces for %d workers", p.created, workers)
	}
	snap := reg.Snapshot()
	total := snap.Int("infer_workspace_hits_total") + snap.Int("infer_workspace_misses_total")
	if want := workers * rounds; total != want {
		t.Fatalf("hits+misses = %d, want %d (one Get per round)", total, want)
	}
}
