// Package infer is the unified inference engine every model stack
// serves through: video classifiers (SlowFast/C3D/TSN), the yolite
// grid detector, and MAML-adapted few-shot models all implement one
// contract — Model — and all eval-path scratch memory comes from
// nn.Workspace buffers, shared across serving workers via Pool.
//
// The engine owns the pieces that used to be duplicated per stack:
// uniform batch validation, eval-mode switching, batched forward
// dispatch, and argmax decoding. A stack only provides ForwardBatch;
// stacks that cannot batch natively are adapted with Sequentialize.
package infer

import (
	"fmt"

	"safecross/internal/nn"
	"safecross/internal/tensor"
)

// Model is the engine contract. Every served stack implements it, so
// the serving plane dispatches detector and classifier workloads from
// the same worker pool without knowing which is which.
type Model interface {
	// Name identifies the model in errors and metrics.
	Name() string
	// ForwardBatch maps n equally-shaped inputs to n logit tensors in
	// input order, bit-identical to running the eval-mode single-input
	// forward per sample. Scratch comes from ws, which must be owned by
	// the calling goroutine for the duration of the call; the returned
	// logits are fresh tensors that stay valid after ws is reset.
	ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error)
	// SetTrain toggles training behaviour; the engine always calls
	// SetTrain(false) before an eval forward.
	SetTrain(train bool)
}

// Forwarder is the minimal single-input eval surface: what a model
// must offer to be served at all. Models that cannot run a native
// batched pass are lifted to the engine contract with Sequentialize.
type Forwarder interface {
	Name() string
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	SetTrain(train bool)
}

// Sequentialize adapts a Forwarder to the engine contract by driving
// its Forward input by input. The workspace is unused — a sequential
// model allocates as its Forward does — but the validation, eval-mode
// discipline, and decoding above it are identical to the native path.
// A Forwarder that already implements Model passes through unchanged.
func Sequentialize(f Forwarder) Model {
	if m, ok := f.(Model); ok {
		return m
	}
	return &sequentialized{f: f}
}

type sequentialized struct{ f Forwarder }

func (s *sequentialized) Name() string        { return s.f.Name() }
func (s *sequentialized) SetTrain(train bool) { s.f.SetTrain(train) }

func (s *sequentialized) ForwardBatch(xs []*tensor.Tensor, ws *nn.Workspace) ([]*tensor.Tensor, error) {
	out := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		logits, err := s.f.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
		out[i] = logits
	}
	return out, nil
}

// ValidateBatch checks a batch up front: non-empty, no nil inputs, and
// one shape across the batch, so a malformed input is reported by
// index instead of surfacing mid-batch as a bare layer error. Shape
// semantics beyond uniformity (rank, channel count) belong to the
// model.
func ValidateBatch(xs []*tensor.Tensor) error {
	if len(xs) == 0 {
		return fmt.Errorf("infer: empty batch")
	}
	for i, x := range xs {
		if x == nil {
			return fmt.Errorf("infer: input %d is nil", i)
		}
		for ax := range x.Shape {
			if len(x.Shape) != len(xs[0].Shape) || x.Shape[ax] != xs[0].Shape[ax] {
				return fmt.Errorf("infer: input %d has shape %v, want %v like input 0", i, x.Shape, xs[0].Shape)
			}
		}
	}
	return nil
}

// PredictBatch runs one eval-mode batched forward and decodes each
// output to its argmax label, in input order. Scratch comes from ws; a
// nil ws is replaced by a throwaway workspace, so only long-lived
// callers that pass one (serving workers via Pool, benchmark loops)
// reach steady-state zero allocation inside the model.
func PredictBatch(m Model, xs []*tensor.Tensor, ws *nn.Workspace) ([]int, error) {
	if err := ValidateBatch(xs); err != nil {
		return nil, err
	}
	m.SetTrain(false)
	if ws == nil {
		ws = nn.NewWorkspace()
	}
	logits, err := m.ForwardBatch(xs, ws)
	if err != nil {
		return nil, fmt.Errorf("infer: %s batched forward: %w", m.Name(), err)
	}
	if len(logits) != len(xs) {
		return nil, fmt.Errorf("infer: %s returned %d outputs for %d inputs", m.Name(), len(logits), len(xs))
	}
	labels := make([]int, len(logits))
	for i, l := range logits {
		labels[i] = nn.Predict(l)
	}
	return labels, nil
}

// Predict is the single-input case of PredictBatch.
func Predict(m Model, x *tensor.Tensor, ws *nn.Workspace) (int, error) {
	labels, err := PredictBatch(m, []*tensor.Tensor{x}, ws)
	if err != nil {
		return 0, err
	}
	return labels[0], nil
}
