package infer

import (
	"sync"

	"safecross/internal/nn"
	"safecross/internal/telemetry"
)

// Pool shares eval workspaces across serving workers. An nn.Workspace
// itself does no locking — it belongs to one goroutine at a time — so
// the pool is the hand-off point: Get checks a workspace out for
// exclusive use, Put resets it and returns it. A worker pool of N
// goroutines therefore warms at most N workspaces total, and a worker
// that went away donates its warm buffers to the next one instead of
// stranding them.
//
// When built WithMetrics, every Put folds the workspace's Gets/Misses
// deltas into the registry as infer_workspace_hits_total and
// infer_workspace_misses_total: a healthy steady state shows hits
// growing while misses plateau after warm-up.
type Pool struct {
	mu   sync.Mutex
	idle []*poolEntry
	// out tracks checked-out workspaces so Put can find the counter
	// baselines recorded at the previous sync.
	out map[*nn.Workspace]*poolEntry

	// created counts workspaces ever built by this pool — its
	// steady-state value is the peak checkout concurrency.
	created int

	hits, misses *telemetry.Counter
	size         *telemetry.Gauge
}

// poolEntry pairs a workspace with the Gets/Misses values already
// folded into the metrics, so each Put exports only the delta since
// the workspace was checked out.
type poolEntry struct {
	ws           *nn.Workspace
	gets, misses int
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// WithMetrics exports the pool's workspace counters through reg:
// infer_workspace_hits_total (Gets served from pooled buffers),
// infer_workspace_misses_total (Gets that had to allocate), and
// infer_pool_workspaces (workspaces the pool has built).
func WithMetrics(reg *telemetry.Registry) PoolOption {
	return func(p *Pool) {
		p.hits = reg.Counter("infer_workspace_hits_total", "workspace Gets served from pooled scratch buffers")
		p.misses = reg.Counter("infer_workspace_misses_total", "workspace Gets that had to allocate a fresh buffer")
		p.size = reg.Gauge("infer_pool_workspaces", "workspaces built by the shared inference pool")
	}
}

// NewPool returns an empty pool.
func NewPool(opts ...PoolOption) *Pool {
	p := &Pool{out: make(map[*nn.Workspace]*poolEntry)}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Get checks a workspace out for exclusive use by the calling
// goroutine, building a fresh one when none is idle. Pair with Put.
func (p *Pool) Get() *nn.Workspace {
	p.mu.Lock()
	defer p.mu.Unlock()
	var e *poolEntry
	if n := len(p.idle); n > 0 {
		e = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
	} else {
		e = &poolEntry{ws: nn.NewWorkspace()}
		p.created++
		if p.size != nil {
			p.size.Set(int64(p.created))
		}
	}
	p.out[e.ws] = e
	return e.ws
}

// Put resets the workspace and returns it to the pool, folding its
// Gets/Misses growth since checkout into the exported counters. A
// workspace the pool has never seen is adopted with its history
// ignored (only activity after adoption is counted). Put(nil) is a
// no-op.
func (p *Pool) Put(ws *nn.Workspace) {
	if ws == nil {
		return
	}
	ws.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.out[ws]
	if e == nil {
		e = &poolEntry{ws: ws, gets: ws.Gets, misses: ws.Misses}
		p.created++
		if p.size != nil {
			p.size.Set(int64(p.created))
		}
	} else {
		delete(p.out, ws)
	}
	if p.hits != nil {
		p.hits.Add(int64((ws.Gets - e.gets) - (ws.Misses - e.misses)))
		p.misses.Add(int64(ws.Misses - e.misses))
	}
	e.gets, e.misses = ws.Gets, ws.Misses
	p.idle = append(p.idle, e)
}
