package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fedHistOf records the given durations into a fresh histogram and
// returns its federation wire form.
func fedHistOf(t *testing.T, durations ...time.Duration) FedHistogram {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram("lat", "", UnitSeconds)
	for _, d := range durations {
		h.ObserveDuration(d)
	}
	fh, ok := reg.Snapshot().Fed().Hists["lat"]
	if !ok {
		t.Fatal("histogram missing from Fed snapshot")
	}
	return fh
}

func sameFedHist(a, b FedHistogram) bool {
	if a.Count != b.Count || a.Sum != b.Sum || a.Max != b.Max || a.Unit != b.Unit {
		return false
	}
	if len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i, n := range a.Buckets {
		if b.Buckets[i] != n {
			return false
		}
	}
	return true
}

// The federation contract: merging per-node histograms is EXACT — the
// merge of two nodes' wire forms has identical bucket counts to one
// histogram that observed both nodes' values, and the operation is
// commutative and associative, so scrape order cannot change the
// fleet view.
func TestFedHistogramMergeExact(t *testing.T) {
	aVals := []time.Duration{time.Millisecond, 3 * time.Millisecond, 90 * time.Millisecond, 2 * time.Second}
	bVals := []time.Duration{2 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond, 7 * time.Second}

	a := fedHistOf(t, aVals...)
	b := fedHistOf(t, bVals...)
	union := fedHistOf(t, append(append([]time.Duration{}, aVals...), bVals...)...)

	merged := a.Merge(b)
	if !sameFedHist(merged, union) {
		t.Fatalf("merge is not exact:\nmerged=%+v\nunion =%+v", merged, union)
	}
	if !sameFedHist(a.Merge(b), b.Merge(a)) {
		t.Fatal("merge is not commutative")
	}
	if got := merged.Quantile(1.0); got != union.Max {
		t.Fatalf("merged max quantile %d != union max %d", got, union.Max)
	}
}

func TestFedHistogramMergeAssociative(t *testing.T) {
	a := fedHistOf(t, time.Millisecond, 5*time.Millisecond)
	b := fedHistOf(t, 20*time.Millisecond)
	c := fedHistOf(t, 300*time.Millisecond, 4*time.Second)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !sameFedHist(left, right) {
		t.Fatalf("merge is not associative:\n(a·b)·c=%+v\na·(b·c)=%+v", left, right)
	}
	if left.Count != 5 {
		t.Fatalf("merged count = %d, want 5", left.Count)
	}
}

func TestFedHistogramMergeEmptyAndUnits(t *testing.T) {
	var zero FedHistogram
	h := fedHistOf(t, time.Millisecond)
	merged := zero.Merge(h)
	if merged.Unit != UnitSeconds {
		t.Fatalf("empty-side merge lost the unit: %v", merged.Unit)
	}
	if !sameFedHist(merged, h.Merge(zero)) {
		t.Fatal("merge with empty is not commutative")
	}
	if merged.Count != 1 {
		t.Fatalf("count %d after empty merge, want 1", merged.Count)
	}
}

// Corrupt wire peers cannot crash the quantile machinery: bucket
// indices outside the fixed array are dropped, not trusted.
func TestFedHistogramDenseDropsOutOfRange(t *testing.T) {
	h := FedHistogram{Count: 2, Buckets: map[int]int64{-3: 1, histBuckets + 10: 1, 4: 2}}
	buckets := h.dense()
	var total int64
	for _, n := range buckets {
		total += n
	}
	if total != 2 {
		t.Fatalf("dense kept out-of-range buckets: total %d", total)
	}
}

func TestFedName(t *testing.T) {
	cases := []struct{ name, node, want string }{
		{"serve_completed_total", "node-1", `fleet::serve_completed_total{node="node-1"}`},
		{`serve_requests_total{scene="rain"}`, "node-0", `fleet::serve_requests_total{scene="rain",node="node-0"}`},
		{"serve_completed_total", "", "fleet::serve_completed_total"},
		{`serve_requests_total{scene="rain"}`, "", `fleet::serve_requests_total{scene="rain"}`},
		// Already node-labelled series (the fleet agent's own metrics)
		// must not gain a second node label.
		{`fleet_heartbeat_rtt_seconds{node="node-2"}`, "node-2", `fleet::fleet_heartbeat_rtt_seconds{node="node-2"}`},
	}
	for _, c := range cases {
		if got := fedName(c.name, c.node); got != c.want {
			t.Errorf("fedName(%q, %q) = %q, want %q", c.name, c.node, got, c.want)
		}
	}
}

func TestStitchTraces(t *testing.T) {
	base := time.Now()
	byNode := map[string][]TraceSnapshot{
		"node-0": {
			{TraceID: "00000000000000aa", Name: "frame/intersection-1/7", Start: base, End: base.Add(time.Millisecond)},
			{Name: "untraced", Start: base}, // no trace id: dropped
		},
		"vehicles": {
			{TraceID: "00000000000000aa", Parent: "broadcast", Name: "vehicle/recv/advisory", Start: base.Add(time.Millisecond), End: base.Add(2 * time.Millisecond)},
			{TraceID: "00000000000000bb", Parent: "attach", Name: "vehicle/attach", Start: base.Add(-time.Second), End: base.Add(-time.Second + time.Millisecond)},
		},
	}
	traces := StitchTraces(byNode)
	if len(traces) != 2 {
		t.Fatalf("stitched %d traces, want 2", len(traces))
	}
	// Oldest trace first.
	if traces[0].TraceID != "00000000000000bb" {
		t.Fatalf("traces not oldest-first: %q first", traces[0].TraceID)
	}
	ft := traces[1]
	if len(ft.Segments) != 2 {
		t.Fatalf("trace aa has %d segments, want 2", len(ft.Segments))
	}
	// Root segment (no remote parent) leads and names the trace.
	if ft.Segments[0].Node != "node-0" || ft.Root != "frame/intersection-1/7" {
		t.Fatalf("root segment wrong: %+v (root %q)", ft.Segments[0], ft.Root)
	}
	if ft.Segments[1].Node != "vehicles" {
		t.Fatalf("child segment wrong: %+v", ft.Segments[1])
	}
	if !ft.Start.Equal(base) || !ft.End.Equal(base.Add(2*time.Millisecond)) {
		t.Fatalf("trace envelope [%v, %v] does not span its segments", ft.Start, ft.End)
	}
}

func TestMergeTargets(t *testing.T) {
	dynamic := func() map[string]string {
		return map[string]string{"node-0": "http://dynamic", "shared": "http://dynamic-wins-not"}
	}
	static := StaticTargets(map[string]string{"vehicles": "http://static", "shared": "http://static-wins"})
	got := MergeTargets(dynamic, static)()
	if got["node-0"] != "http://dynamic" || got["vehicles"] != "http://static" {
		t.Fatalf("merge lost a source: %v", got)
	}
	if got["shared"] != "http://static-wins" {
		t.Fatalf("later source must win: %v", got["shared"])
	}
}

// End-to-end federation over real debug listeners: two "node"
// registries scraped into one view, rendered with per-node labels,
// exact aggregates, and staleness; a departed target's view is
// dropped on the next scrape.
func TestFederatorScrapeAndWrite(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("work_total", "").Add(3)
	regB.Counter("work_total", "").Add(4)
	regA.Histogram("lat", "", UnitSeconds).ObserveDuration(2 * time.Millisecond)
	regB.Histogram("lat", "", UnitSeconds).ObserveDuration(3 * time.Second)

	dbgA, err := ListenDebug("127.0.0.1:0", regA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbgA.Close()
	dbgB, err := ListenDebug("127.0.0.1:0", regB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbgB.Close()

	// The startup scrape inside NewFederator runs concurrently with the
	// test's own ScrapeOnce calls, so the target set is handed out as a
	// copy under a lock — mutating the map bare would race with the
	// loop's iteration.
	var tmu sync.Mutex
	targets := map[string]string{
		"node-a": "http://" + dbgA.Addr(),
		"node-b": "http://" + dbgB.Addr(),
	}
	currentTargets := func() map[string]string {
		tmu.Lock()
		defer tmu.Unlock()
		out := make(map[string]string, len(targets))
		for k, v := range targets {
			out[k] = v
		}
		return out
	}
	fed, err := NewFederator(FederatorConfig{
		Targets:  currentTargets,
		Interval: time.Hour, // the test drives ScrapeOnce directly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	fed.ScrapeOnce()
	if nodes := fed.Nodes(); len(nodes) != 2 {
		t.Fatalf("scraped %v, want both nodes", nodes)
	}
	var buf bytes.Buffer
	if err := fed.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`fleet::work_total{node="node-a"} 3`,
		`fleet::work_total{node="node-b"} 4`,
		"fleet::work_total 7", // exact aggregate
		`fleet::lat_count{node="node-a"} 1`,
		"fleet::lat_count 2",
		`fleet_scrape_age_seconds{node="node-a"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in federated render:\n%s", want, text)
		}
	}

	// The merged histogram is exact and feeds SLO evaluation.
	merged, ok := fed.MergedHistogram("lat")
	if !ok || merged.Count != 2 {
		t.Fatalf("merged lat count %d ok=%v, want 2", merged.Count, ok)
	}
	total, bad, ok := fed.SLOSample("lat", (100 * time.Millisecond).Nanoseconds())
	if !ok || total != 2 || bad != 1 {
		t.Fatalf("SLOSample = (%d, %d, %v), want (2, 1, true)", total, bad, ok)
	}

	// A target leaving the fleet leaves the view on the next scrape.
	tmu.Lock()
	delete(targets, "node-b")
	tmu.Unlock()
	fed.ScrapeOnce()
	if nodes := fed.Nodes(); len(nodes) != 1 || nodes[0] != "node-a" {
		t.Fatalf("departed target still in view: %v", nodes)
	}

	// A dead target counts a scrape error but keeps the rest scraping.
	dbgA.Close()
	fed.ScrapeOnce()
	snap := fed.reg.Snapshot()
	if snap.Value(`fleet_scrape_errors_total{node="node-a"}`) == 0 {
		t.Fatal("no scrape error counted for dead target")
	}
}
