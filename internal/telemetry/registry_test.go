package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterSharding(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "test counter")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	g.SetMax(3)
	h.Observe(7)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_max", "")
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("max = %d, want 5", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("max = %d, want 9", g.Value())
	}
}

// TestBucketIndexInvariants property-checks the bucket layout: every
// value lands in a valid bucket whose bounds contain it, and the
// upper bound overestimates by at most 25% (exact below histSmall).
func TestBucketIndexInvariants(t *testing.T) {
	check := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			return false
		}
		upper := bucketUpper(i)
		if v > upper {
			return false
		}
		if v < histSmall {
			return upper == v
		}
		return float64(upper) <= float64(v)*1.25+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Boundary spot checks.
	for _, v := range []int64{0, 1, 15, 16, 17, 1 << 20, math.MaxInt64} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "", UnitSeconds)
	// 100 observations: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := time.Duration(h.Sum()), 5050*time.Millisecond; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	p50 := h.QuantileDuration(0.50)
	if p50 < 50*time.Millisecond || p50 > 63*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈50ms (≤25%% bucket overestimate)", p50)
	}
	p99 := h.QuantileDuration(0.99)
	if p99 < 99*time.Millisecond || p99 > 125*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈99ms", p99)
	}
	// The p=100 edge: must return the exact maximum, never index past
	// the distribution (the bug the old sorted-sample percentile had).
	if got := h.QuantileDuration(1.0); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want exactly the max 100ms", got)
	}
	if got := h.QuantileDuration(1.5); got != 100*time.Millisecond {
		t.Fatalf("p>100 must clamp to max, got %v", got)
	}
	if got := h.QuantileDuration(-1); got <= 0 {
		t.Fatalf("p<0 must clamp to the smallest bucket, got %v", got)
	}
}

func TestHistogramEmptyAndConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_concurrent_seconds", "", UnitSeconds)
	if h.Quantile(0.99) != 0 || h.Quantile(1) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if h.Max() != 7499 {
		t.Fatalf("max = %d, want 7499", h.Max())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "")
	b := r.Counter("shared_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind reuse must panic")
		}
	}()
	r.Gauge("shared_total", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "total requests").Add(7)
	r.Gauge("depth", "queue depth").Set(3)
	r.GaugeFunc("computed", "computed gauge", func() int64 { return 42 })
	h := r.Histogram("latency_seconds", "request latency", UnitSeconds)
	h.ObserveDuration(2 * time.Millisecond)
	h.ObserveDuration(8 * time.Millisecond)
	lh := r.Histogram(`load_seconds{method="pipeswitch"}`, "load latency", UnitSeconds)
	lh.ObserveDuration(5 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 7",
		"depth 3",
		"computed 42",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="+Inf"} 2`,
		"latency_seconds_count 2",
		`load_seconds_bucket{method="pipeswitch",le="+Inf"} 1`,
		`load_seconds_count{method="pipeswitch"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	h := r.Histogram("h_seconds", "", UnitSeconds)
	h.ObserveDuration(time.Second)
	snap := r.Snapshot()
	if snap.Value("c_total") != 2 {
		t.Fatalf("snapshot counter = %v", snap.Value("c_total"))
	}
	vals := snap.Values()
	if vals["c_total"].(int64) != 2 {
		t.Fatalf("snapshot JSON counter = %v", vals["c_total"])
	}
	hs := vals["h_seconds"].(HistogramSnapshot)
	if hs.Count != 1 || hs.Max < 0.99 || hs.Max > 1.01 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
	if snap.Count("h_seconds") != 1 || snap.QuantileDuration("h_seconds", 1) != time.Second {
		t.Fatalf("typed histogram accessors: count=%d p100=%v",
			snap.Count("h_seconds"), snap.QuantileDuration("h_seconds", 1))
	}
}
