package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects per-request traces with bounded in-memory
// retention: the most recent Capacity finished traces are kept in a
// ring, older ones are dropped. A nil *Tracer never samples, so
// instrumented code pays one branch when tracing is off.
type Tracer struct {
	nextID atomic.Uint64

	mu       sync.Mutex
	capacity int
	ring     []*TraceSnapshot // most recent finished traces, oldest first
	total    uint64           // finished traces ever retired
}

// DefaultTraceRetention bounds the finished-trace ring when
// NewTracer is given a non-positive capacity.
const DefaultTraceRetention = 256

// NewTracer builds a tracer retaining up to capacity finished traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRetention
	}
	return &Tracer{capacity: capacity}
}

// Start opens a new trace. On a nil tracer it returns nil, which
// every Trace method accepts as a no-op.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{
		tracer: t,
		id:     t.nextID.Add(1),
		name:   name,
		start:  time.Now(),
	}
}

// retire moves a finished trace into the retention ring.
func (t *Tracer) retire(snap *TraceSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) == t.capacity {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = snap
		return
	}
	t.ring = append(t.ring, snap)
}

// Dump returns the retained finished traces, oldest first.
func (t *Tracer) Dump() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSnapshot, len(t.ring))
	for i, s := range t.ring {
		out[i] = *s
	}
	return out
}

// Finished returns how many traces have been retired in total
// (including ones the ring has since dropped).
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Span is one completed stage of a trace.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// TraceSnapshot is the immutable dump form of a finished trace.
type TraceSnapshot struct {
	ID       uint64    `json:"id"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Terminal string    `json:"terminal"`
	Spans    []Span    `json:"spans"`
}

// Trace is one in-flight request's span collection. Methods are safe
// for concurrent use — a request's spans are recorded by whichever
// goroutine owns the request at each stage (submitter, scheduler,
// worker) — and all methods are no-ops on a nil receiver.
//
// A trace ends with exactly one terminal event: Terminal uses an
// atomic claim, so when several parties race to settle a request
// (dispatch vs cancellation vs shedding), only the winner's status
// sticks — mirroring the CAS settle states of the serving plane.
type Trace struct {
	tracer *Tracer
	id     uint64
	name   string
	start  time.Time

	terminalSet atomic.Bool
	finished    atomic.Bool

	mu       sync.Mutex
	spans    []Span
	terminal string
	end      time.Time
}

// ID returns the trace's tracer-unique id (0 for a nil trace).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Start returns when the trace was opened.
func (tr *Trace) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// Span records one completed stage [start, end).
func (tr *Trace) Span(name string, start, end time.Time) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, Span{Name: name, Start: start, End: end})
	tr.mu.Unlock()
}

// Terminal records the trace's terminal status exactly once,
// reporting whether this call won the claim. Later calls — the losers
// of a settle race — change nothing.
func (tr *Trace) Terminal(status string, at time.Time) bool {
	if tr == nil {
		return false
	}
	if !tr.terminalSet.CompareAndSwap(false, true) {
		return false
	}
	tr.mu.Lock()
	tr.terminal = status
	tr.end = at
	tr.mu.Unlock()
	return true
}

// TerminalStatus returns the terminal status recorded so far ("" when
// none).
func (tr *Trace) TerminalStatus() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.terminal
}

// Finish retires the trace into its tracer's retention ring. Safe to
// call once per trace; later calls are no-ops. A trace finished
// without a terminal status records "unfinished".
func (tr *Trace) Finish() {
	if tr == nil || !tr.finished.CompareAndSwap(false, true) {
		return
	}
	tr.Terminal("unfinished", time.Now())
	tr.mu.Lock()
	snap := &TraceSnapshot{
		ID:       tr.id,
		Name:     tr.name,
		Start:    tr.start,
		End:      tr.end,
		Terminal: tr.terminal,
		Spans:    append([]Span(nil), tr.spans...),
	}
	tr.mu.Unlock()
	tr.tracer.retire(snap)
}

// traceKey carries a *Trace on a context.
type traceKey struct{}

// WithTrace returns a context carrying the trace; requests submitted
// with it are traced through every serving stage.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
