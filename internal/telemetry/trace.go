package telemetry

import (
	"context"
	"fmt"
	randv2 "math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request's journey across every process it
// touches: the originating frame loop mints it, the rsu protocol
// carries it on the wire, and every process that joins the trace
// records its spans under the same ID, so a fleet-wide stitcher can
// reassemble the whole tree. Zero means "no trace".
type TraceID uint64

// NewTraceID mints a random non-zero trace ID.
func NewTraceID() TraceID {
	for {
		if id := TraceID(randv2.Uint64()); id != 0 {
			return id
		}
	}
}

// String renders the ID as fixed-width lowercase hex — the wire form.
func (id TraceID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// ParseTraceID parses the wire form ("" parses to zero: no trace).
func ParseTraceID(s string) (TraceID, error) {
	if s == "" {
		return 0, nil
	}
	if len(s) != 16 {
		return 0, fmt.Errorf("telemetry: trace id %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: trace id %q: %w", s, err)
	}
	if v == 0 {
		return 0, fmt.Errorf("telemetry: trace id %q is the zero id", s)
	}
	return TraceID(v), nil
}

// Sampled is the fleet-wide sampling decision, derived from the ID
// alone: every process holding the same ID reaches the same verdict,
// so a request is sampled everywhere or nowhere. rate is "one in N"
// (a random ID passes with probability 1/N); rate ≤ 0 never samples,
// rate 1 always does.
func (id TraceID) Sampled(rate int) bool {
	if id == 0 || rate <= 0 {
		return false
	}
	return uint64(id)%uint64(rate) == 0
}

// Tracer collects per-request traces with bounded in-memory
// retention: the most recent Capacity finished traces are kept in a
// ring, older ones are dropped. A nil *Tracer never samples, so
// instrumented code pays one branch when tracing is off.
type Tracer struct {
	nextID atomic.Uint64

	mu       sync.Mutex
	capacity int
	ring     []*TraceSnapshot // most recent finished traces, oldest first
	total    uint64           // finished traces ever retired
}

// DefaultTraceRetention bounds the finished-trace ring when
// NewTracer is given a non-positive capacity.
const DefaultTraceRetention = 256

// NewTracer builds a tracer retaining up to capacity finished traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRetention
	}
	return &Tracer{capacity: capacity}
}

// Start opens a new root trace under a freshly minted trace ID. On a
// nil tracer it returns nil, which every Trace method accepts as a
// no-op.
func (t *Tracer) Start(name string) *Trace {
	return t.StartLinked(name, NewTraceID(), "")
}

// StartLinked opens a trace that joins an existing distributed trace:
// traceID is the fleet-wide identity (as carried on the wire) and
// parent names the remote span this segment hangs under ("" for a
// root segment). A zero traceID mints a fresh one, so StartLinked
// degrades to Start for callers that propagate unconditionally.
func (t *Tracer) StartLinked(name string, traceID TraceID, parent string) *Trace {
	if t == nil {
		return nil
	}
	if traceID == 0 {
		traceID = NewTraceID()
	}
	return &Trace{
		tracer:  t,
		id:      t.nextID.Add(1),
		traceID: traceID,
		parent:  parent,
		name:    name,
		start:   time.Now(),
	}
}

// retire moves a finished trace into the retention ring.
func (t *Tracer) retire(snap *TraceSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) == t.capacity {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = snap
		return
	}
	t.ring = append(t.ring, snap)
}

// Dump returns the retained finished traces, oldest first.
func (t *Tracer) Dump() []TraceSnapshot {
	return t.DumpFiltered(0, "")
}

// DumpFiltered returns retained finished traces, oldest first,
// optionally narrowed: terminal != "" keeps only traces that ended
// with that terminal status, and n > 0 keeps only the n most recent
// matches. n ≤ 0 means no count bound. This is what the /traces
// debug endpoint's ?n= and ?terminal= query params resolve to.
func (t *Tracer) DumpFiltered(n int, terminal string) []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(t.ring))
	for _, s := range t.ring {
		if terminal != "" && s.Terminal != terminal {
			continue
		}
		out = append(out, *s)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Finished returns how many traces have been retired in total
// (including ones the ring has since dropped).
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Span is one completed stage of a trace.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// TraceSnapshot is the immutable dump form of a finished trace. One
// snapshot is one process-local segment of a distributed trace:
// TraceID groups segments across processes, and Parent names the
// remote span this segment hangs under ("" for the root segment).
type TraceSnapshot struct {
	ID       uint64    `json:"id"`
	TraceID  string    `json:"traceId,omitempty"`
	Parent   string    `json:"parent,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Terminal string    `json:"terminal"`
	Spans    []Span    `json:"spans"`
}

// Trace is one in-flight request's span collection. Methods are safe
// for concurrent use — a request's spans are recorded by whichever
// goroutine owns the request at each stage (submitter, scheduler,
// worker) — and all methods are no-ops on a nil receiver.
//
// A trace ends with exactly one terminal event: Terminal uses an
// atomic claim, so when several parties race to settle a request
// (dispatch vs cancellation vs shedding), only the winner's status
// sticks — mirroring the CAS settle states of the serving plane.
type Trace struct {
	tracer  *Tracer
	id      uint64
	traceID TraceID
	parent  string
	name    string
	start   time.Time

	terminalSet atomic.Bool
	finished    atomic.Bool

	mu       sync.Mutex
	spans    []Span
	terminal string
	end      time.Time
}

// ID returns the trace's tracer-unique id (0 for a nil trace).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// TraceID returns the fleet-wide trace identity (0 for a nil trace).
// Stamp it onto outbound wire messages so downstream processes can
// join the trace with StartLinked.
func (tr *Trace) TraceID() TraceID {
	if tr == nil {
		return 0
	}
	return tr.traceID
}

// Start returns when the trace was opened.
func (tr *Trace) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// Span records one completed stage [start, end).
func (tr *Trace) Span(name string, start, end time.Time) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, Span{Name: name, Start: start, End: end})
	tr.mu.Unlock()
}

// Terminal records the trace's terminal status exactly once,
// reporting whether this call won the claim. Later calls — the losers
// of a settle race — change nothing.
func (tr *Trace) Terminal(status string, at time.Time) bool {
	if tr == nil {
		return false
	}
	if !tr.terminalSet.CompareAndSwap(false, true) {
		return false
	}
	tr.mu.Lock()
	tr.terminal = status
	tr.end = at
	tr.mu.Unlock()
	return true
}

// TerminalStatus returns the terminal status recorded so far ("" when
// none).
func (tr *Trace) TerminalStatus() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.terminal
}

// Finish retires the trace into its tracer's retention ring. Safe to
// call once per trace; later calls are no-ops. A trace finished
// without a terminal status records "unfinished".
func (tr *Trace) Finish() {
	if tr == nil || !tr.finished.CompareAndSwap(false, true) {
		return
	}
	tr.Terminal("unfinished", time.Now())
	tr.mu.Lock()
	snap := &TraceSnapshot{
		ID:       tr.id,
		TraceID:  tr.traceID.String(),
		Parent:   tr.parent,
		Name:     tr.name,
		Start:    tr.start,
		End:      tr.end,
		Terminal: tr.terminal,
		Spans:    append([]Span(nil), tr.spans...),
	}
	tr.mu.Unlock()
	tr.tracer.retire(snap)
}

// traceKey carries a *Trace on a context.
type traceKey struct{}

// WithTrace returns a context carrying the trace; requests submitted
// with it are traced through every serving stage.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
