package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanRecordingAndDump(t *testing.T) {
	tc := NewTracer(4)
	tr := tc.Start("req")
	t0 := tr.Start()
	t1 := t0.Add(time.Millisecond)
	t2 := t1.Add(time.Millisecond)
	tr.Span("queue", t0, t1)
	tr.Span("compute", t1, t2)
	if !tr.Terminal("completed", t2) {
		t.Fatal("first terminal claim must win")
	}
	tr.Finish()

	dump := tc.Dump()
	if len(dump) != 1 {
		t.Fatalf("dump = %d traces, want 1", len(dump))
	}
	got := dump[0]
	if got.Terminal != "completed" || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[0].End != got.Spans[1].Start {
		t.Fatal("spans must tile")
	}
	if !got.End.Equal(t2) {
		t.Fatalf("end = %v, want %v", got.End, t2)
	}
}

// TestTerminalExactlyOnce races many claimants for one trace's
// terminal status: exactly one must win, mirroring the serving
// plane's CAS settle arbitration.
func TestTerminalExactlyOnce(t *testing.T) {
	tc := NewTracer(4)
	tr := tc.Start("contended")
	var wins sync.Map
	var wg sync.WaitGroup
	for _, status := range []string{"completed", "cancelled", "shed", "expired"} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(status string) {
				defer wg.Done()
				if tr.Terminal(status, time.Now()) {
					wins.Store(status, true)
				}
			}(status)
		}
	}
	wg.Wait()
	n := 0
	wins.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("%d statuses won the terminal claim, want exactly 1", n)
	}
	if tr.TerminalStatus() == "" {
		t.Fatal("no terminal status recorded")
	}
}

func TestTracerRetentionBound(t *testing.T) {
	tc := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr := tc.Start("r")
		tr.Terminal("completed", time.Now())
		tr.Finish()
	}
	dump := tc.Dump()
	if len(dump) != 3 {
		t.Fatalf("retained %d traces, want capacity 3", len(dump))
	}
	// Oldest dropped: the survivors are the three most recent ids.
	if dump[0].ID != 8 || dump[2].ID != 10 {
		t.Fatalf("ring ids = %d..%d, want 8..10", dump[0].ID, dump[2].ID)
	}
	if tc.Finished() != 10 {
		t.Fatalf("finished = %d, want 10", tc.Finished())
	}
}

func TestFinishWithoutTerminalMarksUnfinished(t *testing.T) {
	tc := NewTracer(2)
	tr := tc.Start("lost")
	tr.Finish()
	tr.Finish() // idempotent
	dump := tc.Dump()
	if len(dump) != 1 || dump[0].Terminal != "unfinished" {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestNilTracerAndTrace(t *testing.T) {
	var tc *Tracer
	tr := tc.Start("x")
	if tr != nil {
		t.Fatal("nil tracer must return a nil trace")
	}
	tr.Span("s", time.Now(), time.Now())
	if tr.Terminal("completed", time.Now()) {
		t.Fatal("nil trace must not claim a terminal")
	}
	tr.Finish()
	if tc.Dump() != nil || tc.Finished() != 0 {
		t.Fatal("nil tracer must dump nothing")
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context must carry no trace")
	}
	if got := WithTrace(ctx, nil); got != ctx {
		t.Fatal("attaching a nil trace must be a no-op")
	}
	tc := NewTracer(1)
	tr := tc.Start("ctx")
	if got := TraceFrom(WithTrace(ctx, tr)); got != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LevelInfo)
	lg.Debugf("hidden %d", 1)
	lg.Infof("shown %d", 2)
	lg.Warnf("warned")
	lg.Errorf("errored")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked through an info logger:\n%s", out)
	}
	for _, want := range []string{"INFO", "shown 2", "WARN", "warned", "ERROR", "errored"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !lg.Enabled(LevelError) || lg.Enabled(LevelDebug) {
		t.Fatal("Enabled thresholds wrong")
	}
}

func TestLoggerNilIsSilent(t *testing.T) {
	var lg *Logger
	lg.Infof("into the void")
	lg.Errorf("still nothing")
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
	zero := &Logger{}
	zero.Errorf("no writer")
	off := NewLogger(&strings.Builder{}, LevelOff)
	off.Errorf("silenced")
	if off.Enabled(LevelError) {
		t.Fatal("LevelOff must silence everything")
	}
}
