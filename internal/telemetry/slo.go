package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// SLOSource supplies the raw material an SLO is judged on: for one
// histogram series, the total observation count and how many exceeded
// the latency threshold. *Registry implements it over its own
// histograms; *Federator implements it over the merged fleet view, so
// the same engine evaluates local and fleet-wide objectives.
type SLOSource interface {
	SLOSample(series string, threshold int64) (total, bad int64, ok bool)
}

// SLOSample implements SLOSource over the registry's own histograms.
func (r *Registry) SLOSample(series string, threshold int64) (total, bad int64, ok bool) {
	h := r.FindHistogram(series)
	if h == nil {
		return 0, 0, false
	}
	return h.Count(), h.CountOver(threshold), true
}

// SLO is one latency objective: at least Target fraction of a
// series' observations should complete within Objective. The classic
// "p99 queue wait under 5ms" reads as Target 0.99, Objective 5ms —
// the p99 is under the threshold exactly when at most 1% of requests
// exceed it.
type SLO struct {
	// Name labels the exported series (slo_burn_rate{slo=Name,…}).
	Name string
	// Series is the histogram the objective is judged on.
	Series string
	// Objective is the latency threshold (compared against the
	// histogram's raw nanosecond observations).
	Objective time.Duration
	// Target is the fraction of observations that must land within
	// Objective, in (0, 1). The error budget is 1 − Target.
	Target float64
}

// validate rejects unusable objectives at wiring time.
func (s SLO) validate() error {
	if s.Name == "" || s.Series == "" {
		return fmt.Errorf("telemetry: SLO needs a name and a series")
	}
	if s.Objective <= 0 {
		return fmt.Errorf("telemetry: SLO %q needs a positive objective", s.Name)
	}
	if s.Target <= 0 || s.Target >= 1 {
		return fmt.Errorf("telemetry: SLO %q target %v must be in (0, 1)", s.Name, s.Target)
	}
	return nil
}

// SLOEngineConfig wires an SLOEngine.
type SLOEngineConfig struct {
	// ShortWindow is the fast burn-rate window (default 5m). The long
	// window is scaled from it (12×, the 5m/1h ratio), so shrinking
	// ShortWindow for a smoke run shrinks the whole evaluation.
	ShortWindow time.Duration
	// LongWindow overrides the scaled long window when positive.
	LongWindow time.Duration
	// Interval is the evaluation cadence (default ShortWindow/10,
	// floored at 10ms).
	Interval time.Duration
	// ActivateAt is the burn rate both windows must reach to raise the
	// alert (default 1: burning budget exactly at the sustainable
	// rate).
	ActivateAt float64
	// ClearBelow is the short-window burn under which an active alert
	// clears (default ActivateAt/2) — the hysteresis gap keeps a burn
	// hovering at the threshold from flapping.
	ClearBelow float64
	// Metrics receives the exported gauges; nil keeps a private
	// registry.
	Metrics *Registry
	// Logger records alert transitions (nil discards).
	Logger *Logger
}

// sloSample is one evaluation tick's cumulative view of a series.
type sloSample struct {
	at         time.Time
	total, bad int64
}

// sloState is one objective's evaluation state.
type sloState struct {
	slo SLO
	src SLOSource

	ring []sloSample // time-ordered cumulative samples

	burnShort, burnLong *FloatGauge
	activeGauge         *Gauge
	transitions         *Counter
	active              bool
}

// SLOEngine evaluates latency objectives from histogram state on a
// fixed cadence using the multi-window burn-rate method: the burn rate
// is the fraction of the error budget consumed per unit of budgeted
// time — bad-fraction ÷ (1 − Target) — measured over a short and a
// long window. The alert raises only when BOTH windows burn hot (the
// long window proves it is sustained, the short window proves it is
// still happening) and clears with hysteresis once the short window
// cools, so recovery is visible as a 1→0 transition of
// slo_alert_active.
//
// Exported series, per objective:
//
//	slo_burn_rate{slo=…,window=…}   burn rate per window (float)
//	slo_alert_active{slo=…}          1 while the alert is raised
//	slo_alert_transitions_total{slo=…} raise/clear edges
type SLOEngine struct {
	cfg SLOEngineConfig
	reg *Registry
	log *Logger

	stop    chan struct{}
	once    sync.Once
	started bool
	wg      sync.WaitGroup

	mu   sync.Mutex
	slos []*sloState
}

// NewSLOEngine builds an engine; Add objectives, then Start it (or
// drive Tick directly in tests).
func NewSLOEngine(cfg SLOEngineConfig) *SLOEngine {
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = 5 * time.Minute
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = 12 * cfg.ShortWindow // the canonical 5m→1h scaling
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.ShortWindow / 10
	}
	if cfg.Interval < 10*time.Millisecond {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.ActivateAt <= 0 {
		cfg.ActivateAt = 1
	}
	if cfg.ClearBelow <= 0 || cfg.ClearBelow >= cfg.ActivateAt {
		cfg.ClearBelow = cfg.ActivateAt / 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = NewRegistry()
	}
	return &SLOEngine{
		cfg:  cfg,
		reg:  reg,
		log:  cfg.Logger,
		stop: make(chan struct{}),
	}
}

// windowLabel renders a duration as a compact label value ("5m", not
// "5m0s").
func windowLabel(d time.Duration) string {
	s := d.String()
	for _, suffix := range []string{"0s", "0m"} {
		s = strings.TrimSuffix(s, suffix)
	}
	if s == "" {
		s = d.String()
	}
	return s
}

// Add registers one objective against a source. Call before Start.
func (e *SLOEngine) Add(slo SLO, src SLOSource) error {
	if err := slo.validate(); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("telemetry: SLO %q needs a source", slo.Name)
	}
	st := &sloState{
		slo: slo,
		src: src,
		burnShort: e.reg.FloatGauge(
			fmt.Sprintf("slo_burn_rate{slo=%q,window=%q}", slo.Name, windowLabel(e.cfg.ShortWindow)),
			"error-budget burn rate over the short window"),
		burnLong: e.reg.FloatGauge(
			fmt.Sprintf("slo_burn_rate{slo=%q,window=%q}", slo.Name, windowLabel(e.cfg.LongWindow)),
			"error-budget burn rate over the long window"),
		activeGauge: e.reg.Gauge(
			fmt.Sprintf("slo_alert_active{slo=%q}", slo.Name),
			"1 while the SLO's burn-rate alert is raised"),
		transitions: e.reg.Counter(
			fmt.Sprintf("slo_alert_transitions_total{slo=%q}", slo.Name),
			"SLO alert raise/clear edges"),
	}
	e.mu.Lock()
	e.slos = append(e.slos, st)
	e.mu.Unlock()
	return nil
}

// Start launches the evaluation loop; Close stops it.
func (e *SLOEngine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-tick.C:
				e.Tick(time.Now())
			}
		}
	}()
}

// Close stops the evaluation loop.
func (e *SLOEngine) Close() error {
	e.once.Do(func() { close(e.stop) })
	e.wg.Wait()
	return nil
}

// Tick evaluates every objective at the given instant. The loop calls
// it on the interval; tests call it directly with synthetic clocks.
func (e *SLOEngine) Tick(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.slos {
		e.evaluate(st, now)
	}
}

// evaluate samples one objective's series and updates its burn rates
// and alert state.
func (e *SLOEngine) evaluate(st *sloState, now time.Time) {
	total, bad, ok := st.src.SLOSample(st.slo.Series, st.slo.Objective.Nanoseconds())
	if !ok {
		total, bad = 0, 0 // series not recorded yet: nothing burned
	}
	st.ring = append(st.ring, sloSample{at: now, total: total, bad: bad})
	// Keep one sample beyond the long window so window deltas always
	// have an anchor at (or just before) the boundary.
	cutoff := now.Add(-e.cfg.LongWindow - 2*e.cfg.Interval)
	for len(st.ring) > 1 && st.ring[1].at.Before(cutoff) {
		st.ring = st.ring[1:]
	}

	short := e.burnOver(st, now, e.cfg.ShortWindow)
	long := e.burnOver(st, now, e.cfg.LongWindow)
	st.burnShort.Set(short)
	st.burnLong.Set(long)

	switch {
	case !st.active && short >= e.cfg.ActivateAt && long >= e.cfg.ActivateAt:
		st.active = true
		st.activeGauge.Set(1)
		st.transitions.Inc()
		e.log.Warnf("telemetry: SLO %q alert RAISED (burn %.2f/%.2f over %s/%s)",
			st.slo.Name, short, long,
			windowLabel(e.cfg.ShortWindow), windowLabel(e.cfg.LongWindow))
	case st.active && short < e.cfg.ClearBelow:
		st.active = false
		st.activeGauge.Set(0)
		st.transitions.Inc()
		e.log.Infof("telemetry: SLO %q alert cleared (short-window burn %.2f)",
			st.slo.Name, short)
	}
}

// burnOver computes the burn rate over the trailing window: the
// fraction of window observations that missed the objective, divided
// by the error budget. An empty window burns nothing.
func (e *SLOEngine) burnOver(st *sloState, now time.Time, window time.Duration) float64 {
	cur := st.ring[len(st.ring)-1]
	boundary := now.Add(-window)
	// Anchor at the newest sample taken at or before the window
	// boundary; a ring younger than the window anchors at a zero
	// origin (everything observed so far is "in window").
	anchor := sloSample{}
	for i := len(st.ring) - 1; i >= 0; i-- {
		if !st.ring[i].at.After(boundary) {
			anchor = st.ring[i]
			break
		}
	}
	dTotal := cur.total - anchor.total
	dBad := cur.bad - anchor.bad
	if dTotal <= 0 || dBad <= 0 {
		return 0
	}
	badFrac := float64(dBad) / float64(dTotal)
	return badFrac / (1 - st.slo.Target)
}

// BurnRates returns one objective's current short/long burn rates
// (ok=false for unknown names).
func (e *SLOEngine) BurnRates(name string) (short, long float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.slos {
		if st.slo.Name == name {
			return st.burnShort.Value(), st.burnLong.Value(), true
		}
	}
	return 0, 0, false
}

// AlertActive reports whether one objective's alert is currently
// raised.
func (e *SLOEngine) AlertActive(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.slos {
		if st.slo.Name == name {
			return st.active
		}
	}
	return false
}
