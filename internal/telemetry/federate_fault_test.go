package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// faultyFed is a /metrics.fed endpoint whose behaviour the test flips
// at runtime: a healthy JSON snapshot, malformed JSON, a truncated
// body cut mid-object, an HTTP error, or a dead socket.
type faultyFed struct {
	mu   sync.Mutex
	mode string
	reg  *Registry
	srv  *http.Server
	ln   net.Listener
}

func startFaultyFed(t *testing.T, reg *Registry) *faultyFed {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &faultyFed{mode: "good", reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.fed", f.serve)
	f.srv = &http.Server{Handler: mux}
	go func() { _ = f.srv.Serve(ln) }()
	t.Cleanup(func() { _ = f.srv.Close() })
	return f
}

func (f *faultyFed) setMode(mode string) {
	f.mu.Lock()
	f.mode = mode
	f.mu.Unlock()
}

func (f *faultyFed) serve(w http.ResponseWriter, _ *http.Request) {
	f.mu.Lock()
	mode := f.mode
	f.mu.Unlock()
	body, _ := json.Marshal(f.reg.Snapshot().Fed())
	switch mode {
	case "good":
		_, _ = w.Write(body)
	case "garbage":
		_, _ = w.Write([]byte("}{ not a snapshot %%"))
	case "truncated":
		_, _ = w.Write(body[:len(body)/2]) // valid prefix, cut mid-object
	case "http-error":
		http.Error(w, "scrape me later", http.StatusInternalServerError)
	}
}

// TestFederatorSurvivesMalformedPayloads walks one target through
// every way a scrape can go wrong — malformed JSON, a truncated body,
// an HTTP 5xx, a dead socket — and asserts the contract after each:
// the per-node error series increments, the last GOOD view keeps
// feeding the aggregates uncorrupted, and a recovered target resumes
// updating them.
func TestFederatorSurvivesMalformedPayloads(t *testing.T) {
	goodReg, badReg := NewRegistry(), NewRegistry()
	goodReg.Counter("work_total", "").Add(3)
	badReg.Counter("work_total", "").Add(4)

	dbg, err := ListenDebug("127.0.0.1:0", goodReg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	faulty := startFaultyFed(t, badReg)

	fedReg := NewRegistry()
	fed, err := NewFederator(FederatorConfig{
		Targets: StaticTargets(map[string]string{
			"node-good": "http://" + dbg.Addr(),
			"node-bad":  "http://" + faulty.ln.Addr().String(),
		}),
		Interval: time.Hour, // the test drives ScrapeOnce directly
		Timeout:  2 * time.Second,
		Metrics:  fedReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	errCount := func() int64 {
		return fedReg.Counter(fmt.Sprintf("fleet_scrape_errors_total{node=%q}", "node-bad"), "").Value()
	}
	aggregate := func() string {
		var buf bytes.Buffer
		if err := fed.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return buf.String()
	}

	fed.ScrapeOnce()
	if got := errCount(); got != 0 {
		t.Fatalf("healthy target counted %d scrape errors", got)
	}
	if text := aggregate(); !strings.Contains(text, "fleet::work_total 7") {
		t.Fatalf("baseline aggregate wrong:\n%s", text)
	}

	for i, mode := range []string{"garbage", "truncated", "http-error"} {
		faulty.setMode(mode)
		fed.ScrapeOnce()
		if got, want := errCount(), int64(i+1); got != want {
			t.Fatalf("after %q: fleet_scrape_errors_total = %d, want %d", mode, got, want)
		}
		text := aggregate()
		if !strings.Contains(text, "fleet::work_total 7") {
			t.Fatalf("after %q: aggregate corrupted (last good view must hold):\n%s", mode, text)
		}
		if !strings.Contains(text, `fleet::work_total{node="node-bad"} 4`) {
			t.Fatalf("after %q: per-node view lost:\n%s", mode, text)
		}
	}

	// A dead socket is just another failed round.
	_ = faulty.srv.Close()
	fed.ScrapeOnce()
	if got := errCount(); got != 4 {
		t.Fatalf("after dead socket: fleet_scrape_errors_total = %d, want 4", got)
	}
	if text := aggregate(); !strings.Contains(text, "fleet::work_total 7") {
		t.Fatalf("after dead socket: aggregate corrupted:\n%s", text)
	}

	// Recovery: a reborn healthy endpoint at the same address resumes
	// feeding fresh numbers with no residue from the bad rounds.
	ln, err := net.Listen("tcp", faulty.ln.Addr().String())
	if err != nil {
		t.Skipf("could not rebind %s: %v", faulty.ln.Addr(), err)
	}
	badReg.Counter("work_total", "").Add(6) // now 10
	reborn := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics.fed" {
			http.NotFound(w, r)
			return
		}
		body, _ := json.Marshal(badReg.Snapshot().Fed())
		_, _ = w.Write(body)
	})}
	go func() { _ = reborn.Serve(ln) }()
	defer func() { _ = reborn.Close() }()
	fed.ScrapeOnce()
	if got := errCount(); got != 4 {
		t.Fatalf("recovered target still counting errors: %d", got)
	}
	if text := aggregate(); !strings.Contains(text, "fleet::work_total 13") {
		t.Fatalf("recovered target's numbers missing from aggregate:\n%s", text)
	}
}
