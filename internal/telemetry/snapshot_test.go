package telemetry

import (
	"testing"
	"time"
)

// Snapshot accessors must degrade to zero values on missing series
// AND on mistyped lookups (asking for a counter as a histogram, a
// histogram as a counter, …) — the façade pattern reads series by
// name, so a renamed metric must read as zero, never panic or
// cross-read another type's storage.
func TestSnapshotAccessorsMissingAndMistyped(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "").Add(7)
	reg.FloatGauge("load", "").Set(1.5)
	reg.Histogram("lat", "", UnitSeconds).ObserveDuration(50 * time.Millisecond)
	s := reg.Snapshot()

	// Missing names: zero everywhere.
	if s.Value("nope") != 0 || s.Int("nope") != 0 || s.Float("nope") != 0 {
		t.Fatal("missing scalar series read non-zero")
	}
	if s.Count("nope") != 0 || s.Sum("nope") != 0 || s.Max("nope") != 0 {
		t.Fatal("missing histogram series read non-zero")
	}
	if s.Quantile("nope", 0.99) != 0 || s.SumDuration("nope") != 0 {
		t.Fatal("missing histogram quantile/sum read non-zero")
	}
	if s.CountOver("nope", 1) != 0 {
		t.Fatal("missing histogram CountOver read non-zero")
	}
	if s.Has("nope") {
		t.Fatal("Has invented a series")
	}
	if s.Total("nope") != 0 {
		t.Fatal("Total invented observations")
	}

	// Mistyped lookups: a name of one type reads zero through another
	// type's accessor.
	if s.Value("lat") != 0 {
		t.Fatal("histogram read through Value returned non-zero")
	}
	if s.Value("load") != 0 {
		t.Fatal("float gauge read through Value returned non-zero")
	}
	if s.Count("jobs_total") != 0 || s.Quantile("jobs_total", 0.5) != 0 {
		t.Fatal("counter read through histogram accessors returned non-zero")
	}
	if s.Float("jobs_total") != 0 {
		t.Fatal("counter read through Float returned non-zero")
	}
	if s.CountOver("jobs_total", 0) != 0 {
		t.Fatal("counter read through CountOver returned non-zero")
	}

	// Correctly-typed reads still work, including the float map.
	if s.Value("jobs_total") != 7 {
		t.Fatalf("Value(jobs_total) = %d", s.Value("jobs_total"))
	}
	if s.Float("load") != 1.5 {
		t.Fatalf("Float(load) = %v", s.Float("load"))
	}
	if s.Count("lat") != 1 {
		t.Fatalf("Count(lat) = %d", s.Count("lat"))
	}
	for _, name := range []string{"jobs_total", "load", "lat"} {
		if !s.Has(name) {
			t.Fatalf("Has(%q) = false", name)
		}
	}
	names := s.Names("")
	if len(names) != 3 {
		t.Fatalf("Names() = %v, want all three series", names)
	}
}
