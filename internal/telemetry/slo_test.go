package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSLOValidate(t *testing.T) {
	reg := NewRegistry()
	e := NewSLOEngine(SLOEngineConfig{Metrics: reg})
	bad := []SLO{
		{Series: "s", Objective: time.Second, Target: 0.9},            // no name
		{Name: "n", Objective: time.Second, Target: 0.9},              // no series
		{Name: "n", Series: "s", Target: 0.9},                         // no objective
		{Name: "n", Series: "s", Objective: time.Second, Target: 0},   // target out of range
		{Name: "n", Series: "s", Objective: time.Second, Target: 1},   // target out of range
		{Name: "n", Series: "s", Objective: time.Second, Target: 1.5}, // target out of range
	}
	for _, slo := range bad {
		if err := e.Add(slo, reg); err == nil {
			t.Errorf("Add(%+v) accepted an invalid SLO", slo)
		}
	}
	if err := e.Add(SLO{Name: "n", Series: "s", Objective: time.Second, Target: 0.9}, nil); err == nil {
		t.Error("Add with nil source accepted")
	}
	if err := e.Add(SLO{Name: "n", Series: "s", Objective: time.Second, Target: 0.9}, reg); err != nil {
		t.Errorf("valid SLO rejected: %v", err)
	}
}

func TestRegistrySLOSampleMissingSeries(t *testing.T) {
	reg := NewRegistry()
	if _, _, ok := reg.SLOSample("never_recorded", 1); ok {
		t.Fatal("SLOSample claimed a missing series exists")
	}
	reg.Histogram("lat", "", UnitSeconds).ObserveDuration(time.Second)
	total, bad, ok := reg.SLOSample("lat", (100 * time.Millisecond).Nanoseconds())
	if !ok || total != 1 || bad != 1 {
		t.Fatalf("SLOSample = (%d, %d, %v), want (1, 1, true)", total, bad, ok)
	}
}

// The full alert lifecycle under a synthetic clock: no burn while the
// objective holds, both windows hot when bad observations land, raise
// exactly once, clear with hysteresis once the short window no longer
// spans the burn, and never flap back up.
func TestSLOBurnRatesAndHysteresis(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", UnitSeconds)
	e := NewSLOEngine(SLOEngineConfig{
		ShortWindow: 10 * time.Second, // long window scales to 2m
		Metrics:     reg,
	})
	if err := e.Add(SLO{Name: "lat-slo", Series: "lat", Objective: 100 * time.Millisecond, Target: 0.9}, reg); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()

	// Healthy traffic: budget untouched.
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	e.Tick(t0)
	if short, long, _ := e.BurnRates("lat-slo"); short != 0 || long != 0 {
		t.Fatalf("burn (%v, %v) on healthy traffic, want zero", short, long)
	}
	if e.AlertActive("lat-slo") {
		t.Fatal("alert raised with zero burn")
	}

	// A burst of objective misses: 5 bad of 15 total → bad fraction
	// 1/3, budget 0.1 → burn 10/3 on both windows (the ring is younger
	// than both, so both anchor at the zero origin).
	for i := 0; i < 5; i++ {
		h.ObserveDuration(time.Second)
	}
	e.Tick(t0.Add(time.Second))
	short, long, ok := e.BurnRates("lat-slo")
	if !ok || short < 3.3 || short > 3.4 || long != short {
		t.Fatalf("burn (%v, %v, %v), want ~3.33 on both windows", short, long, ok)
	}
	if !e.AlertActive("lat-slo") {
		t.Fatal("alert not raised with both windows hot")
	}

	// Still inside the short window: the alert holds.
	e.Tick(t0.Add(5 * time.Second))
	if !e.AlertActive("lat-slo") {
		t.Fatal("alert dropped while the short window still spans the burn")
	}

	// Once the short window slides past the burst, the short burn goes
	// to zero and the alert clears — even though the long window still
	// remembers it (hysteresis is one-sided on the short window).
	e.Tick(t0.Add(15 * time.Second))
	if e.AlertActive("lat-slo") {
		t.Fatal("alert did not clear after the short window cooled")
	}
	short, long, _ = e.BurnRates("lat-slo")
	if short != 0 {
		t.Fatalf("short burn %v after cooldown, want 0", short)
	}
	if long == 0 {
		t.Fatal("long window forgot the burn too early")
	}

	// No flapping: a cooled short window cannot re-raise on the long
	// window's memory alone.
	e.Tick(t0.Add(20 * time.Second))
	if e.AlertActive("lat-slo") {
		t.Fatal("alert re-raised without fresh burn")
	}
	snap := reg.Snapshot()
	if got := snap.Value(`slo_alert_transitions_total{slo="lat-slo"}`); got != 2 {
		t.Fatalf("transitions %d, want exactly one raise/clear pair", got)
	}
	if got := snap.Value(`slo_alert_active{slo="lat-slo"}`); got != 0 {
		t.Fatalf("active gauge %d after clear, want 0", got)
	}
}

// A sustained burn holds the alert up across many windows.
func TestSLOSustainedBurnHoldsAlert(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", UnitSeconds)
	e := NewSLOEngine(SLOEngineConfig{ShortWindow: 10 * time.Second, Metrics: reg})
	if err := e.Add(SLO{Name: "lat-slo", Series: "lat", Objective: 100 * time.Millisecond, Target: 0.9}, reg); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < 30; i++ {
		h.ObserveDuration(time.Second) // every observation misses
		e.Tick(t0.Add(time.Duration(i) * 2 * time.Second))
		if i >= 1 && !e.AlertActive("lat-slo") {
			t.Fatalf("alert down at tick %d during sustained burn", i)
		}
	}
	if got := reg.Snapshot().Value(`slo_alert_transitions_total{slo="lat-slo"}`); got != 1 {
		t.Fatalf("transitions %d during sustained burn, want 1 (raise only)", got)
	}
}

// An SLO on a series nothing records yet burns nothing and never
// alerts — wiring objectives before traffic exists must be safe.
func TestSLOUnknownSeriesIsQuiet(t *testing.T) {
	reg := NewRegistry()
	e := NewSLOEngine(SLOEngineConfig{ShortWindow: time.Second, Metrics: reg})
	if err := e.Add(SLO{Name: "ghost", Series: "never_recorded", Objective: time.Millisecond, Target: 0.5}, reg); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		e.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	if e.AlertActive("ghost") {
		t.Fatal("alert raised for a series that does not exist")
	}
	if short, long, ok := e.BurnRates("ghost"); !ok || short != 0 || long != 0 {
		t.Fatalf("burn (%v, %v, %v) for ghost series", short, long, ok)
	}
	if _, _, ok := e.BurnRates("no-such-slo"); ok {
		t.Fatal("BurnRates invented an unknown SLO")
	}
}

// The exported series carry compact window labels and land on the
// wired registry.
func TestSLOExportedSeriesShape(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat", "", UnitSeconds).ObserveDuration(time.Millisecond)
	e := NewSLOEngine(SLOEngineConfig{ShortWindow: 5 * time.Minute, Metrics: reg})
	if err := e.Add(SLO{Name: "q", Series: "lat", Objective: time.Second, Target: 0.99}, reg); err != nil {
		t.Fatal(err)
	}
	e.Tick(time.Now())
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`slo_burn_rate{slo="q",window="5m"} 0`,
		`slo_burn_rate{slo="q",window="1h"} 0`,
		`slo_alert_active{slo="q"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in export:\n%s", want, buf.String())
		}
	}
}
