package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe. A logger emits records at or
// above its configured minimum.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff silences a logger entirely.
	LevelOff
)

// String names the level for record prefixes.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "OFF"
	}
}

// Logger is a small leveled logger. The zero value and a nil *Logger
// discard everything, so library code logs unconditionally and stays
// quiet until a caller wires a destination — tests never see stderr
// spam unless they ask for it.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewLogger builds a logger writing records at or above min to w.
// A nil writer discards everything.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// Enabled reports whether records at level l would be emitted.
func (lg *Logger) Enabled(l Level) bool {
	if lg == nil || lg.w == nil {
		return false
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return l >= lg.min
}

// log emits one timestamped record.
func (lg *Logger) log(l Level, format string, args ...any) {
	if lg == nil || lg.w == nil {
		return
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if l < lg.min {
		return
	}
	fmt.Fprintf(lg.w, "%s %-5s %s\n",
		time.Now().Format("15:04:05.000"), l, fmt.Sprintf(format, args...))
}

// Debugf logs at LevelDebug.
func (lg *Logger) Debugf(format string, args ...any) { lg.log(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (lg *Logger) Infof(format string, args ...any) { lg.log(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (lg *Logger) Warnf(format string, args ...any) { lg.log(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (lg *Logger) Errorf(format string, args ...any) { lg.log(LevelError, format, args...) }
