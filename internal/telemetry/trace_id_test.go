package telemetry

import (
	"testing"
	"time"
)

func TestTraceIDWireRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdeadbeef, ^TraceID(0)} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("wire form %q is not 16 hex digits", s)
		}
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Fatalf("round trip %v -> %q -> (%v, %v)", id, s, back, err)
		}
	}
	if TraceID(0).String() != "" {
		t.Fatal("zero id must render empty (no trace)")
	}
	if id, err := ParseTraceID(""); err != nil || id != 0 {
		t.Fatalf("empty wire form = (%v, %v), want (0, nil)", id, err)
	}
	for _, bad := range []string{"xyz", "00000000000000", "000000000000000g", "0000000000000000", "00000000000000aa0"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted garbage", bad)
		}
	}
}

// Sampling is a pure function of the ID: every process holding the
// same ID reaches the same verdict, so a request is traced everywhere
// or nowhere.
func TestTraceIDSampledDeterministic(t *testing.T) {
	id := NewTraceID()
	for rate := 1; rate <= 16; rate *= 2 {
		want := uint64(id)%uint64(rate) == 0
		for i := 0; i < 3; i++ {
			if id.Sampled(rate) != want {
				t.Fatalf("Sampled(%d) not deterministic", rate)
			}
		}
	}
	if id.Sampled(0) || id.Sampled(-1) {
		t.Fatal("non-positive rate must never sample")
	}
	if TraceID(0).Sampled(1) {
		t.Fatal("the zero id must never sample")
	}
	if !TraceID(8).Sampled(1) {
		t.Fatal("rate 1 must always sample")
	}
}

func TestStartLinkedCarriesRemoteContext(t *testing.T) {
	tr := NewTracer(4)
	id := TraceID(0xabc)
	linked := tr.StartLinked("rsu/subscribe", id, "attach")
	if linked.TraceID() != id {
		t.Fatalf("TraceID() = %v, want %v", linked.TraceID(), id)
	}
	linked.Terminal("subscribed", time.Now())
	linked.Finish()

	// A zero trace id mints a fresh one: StartLinked degrades to Start.
	minted := tr.StartLinked("root", 0, "")
	if minted.TraceID() == 0 {
		t.Fatal("zero trace id was not replaced with a minted one")
	}
	minted.Terminal("completed", time.Now())
	minted.Finish()

	dump := tr.Dump()
	if len(dump) != 2 {
		t.Fatalf("dump has %d traces, want 2", len(dump))
	}
	if dump[0].TraceID != id.String() || dump[0].Parent != "attach" {
		t.Fatalf("linked snapshot lost its context: %+v", dump[0])
	}
	if dump[1].Parent != "" || dump[1].TraceID == "" {
		t.Fatalf("root snapshot context wrong: %+v", dump[1])
	}
}

func TestDumpFiltered(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 6; i++ {
		trace := tr.Start("work")
		if i%2 == 0 {
			trace.Terminal("completed", time.Now())
		} else {
			trace.Terminal("error", time.Now())
		}
		trace.Finish()
	}
	if got := len(tr.DumpFiltered(0, "")); got != 6 {
		t.Fatalf("unfiltered dump has %d traces, want 6", got)
	}
	completed := tr.DumpFiltered(0, "completed")
	if len(completed) != 3 {
		t.Fatalf("terminal filter kept %d, want 3", len(completed))
	}
	for _, s := range completed {
		if s.Terminal != "completed" {
			t.Fatalf("filter leaked terminal %q", s.Terminal)
		}
	}
	// n keeps the MOST RECENT matches, not the oldest.
	bounded := tr.DumpFiltered(2, "completed")
	if len(bounded) != 2 {
		t.Fatalf("n bound kept %d, want 2", len(bounded))
	}
	if len(tr.DumpFiltered(100, "")) != 6 {
		t.Fatal("n larger than the ring must return everything")
	}
	var nilTracer *Tracer
	if nilTracer.DumpFiltered(5, "x") != nil {
		t.Fatal("nil tracer must dump nil")
	}
}
