package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional observability HTTP listener:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  JSON snapshot of the registry
//	/traces        JSON dump of the tracer's retained traces
//	/debug/vars    expvar (memstats, cmdline)
//	/debug/pprof/  pprof index, plus profile/heap/trace endpoints
//
// It binds its own mux — nothing leaks onto http.DefaultServeMux — so
// embedding processes keep full control of their public surface while
// `curl :PORT/metrics` and `go tool pprof http://:PORT/debug/pprof/…`
// work against the debug port.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenDebug starts a debug listener on addr (e.g. "127.0.0.1:0").
// reg and tracer may be nil; their endpoints then serve empty
// documents.
func ListenDebug(addr string, reg *Registry, tracer *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := map[string]any{}
		if reg != nil {
			snap = reg.Snapshot().Values()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tracer.Dump())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the listener's address (host:port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }
