package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer is the optional observability HTTP listener:
//
//	/metrics       Prometheus text exposition of the registry (plus
//	               the federated fleet:: view when a Federator is
//	               attached)
//	/metrics.json  JSON snapshot of the registry
//	/metrics.fed   federation wire snapshot (full histogram buckets) —
//	               what a coordinator's Federator scrapes
//	/traces        JSON dump of the tracer's retained traces;
//	               ?n= bounds the count, ?terminal= filters by status
//	/traces/fleet  cross-node stitched traces (Federator-attached
//	               listeners only)
//	/debug/vars    expvar (memstats, cmdline)
//	/debug/pprof/  pprof index, plus profile/heap/trace endpoints
//
// It binds its own mux — nothing leaks onto http.DefaultServeMux — so
// embedding processes keep full control of their public surface while
// `curl :PORT/metrics` and `go tool pprof http://:PORT/debug/pprof/…`
// work against the debug port.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugOption customises a debug listener.
type DebugOption func(*debugConfig)

type debugConfig struct {
	fed *Federator
}

// WithFederator attaches a fleet federator: /metrics additionally
// exports the fleet:: view and /traces/fleet serves cross-node
// stitched traces. This is how the coordinator's listener differs
// from a node's.
func WithFederator(f *Federator) DebugOption {
	return func(c *debugConfig) { c.fed = f }
}

// maxTraceDump bounds how many traces a single /traces request may ask
// for — well above any retention ring, it just rejects nonsense.
const maxTraceDump = 10000

// traceQueryParams validates /traces' ?n= and ?terminal= params.
// n must be a positive integer ≤ maxTraceDump; terminal must be a
// short plain token (letters, digits, '-', '_').
func traceQueryParams(r *http.Request) (n int, terminal string, err error) {
	q := r.URL.Query()
	if raw := q.Get("n"); raw != "" {
		n, err = strconv.Atoi(raw)
		if err != nil || n < 1 || n > maxTraceDump {
			return 0, "", fmt.Errorf("n must be an integer in [1, %d]", maxTraceDump)
		}
	}
	terminal = q.Get("terminal")
	if len(terminal) > 64 {
		return 0, "", fmt.Errorf("terminal is too long")
	}
	for _, c := range terminal {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return 0, "", fmt.Errorf("terminal may contain only letters, digits, '-' and '_'")
		}
	}
	return n, terminal, nil
}

// ListenDebug starts a debug listener on addr (e.g. "127.0.0.1:0").
// reg and tracer may be nil; their endpoints then serve empty
// documents.
func ListenDebug(addr string, reg *Registry, tracer *Tracer, opts ...DebugOption) (*DebugServer, error) {
	var cfg debugConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
		if cfg.fed != nil {
			_ = cfg.fed.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := map[string]any{}
		if reg != nil {
			snap = reg.Snapshot().Values()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/metrics.fed", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := FedSnapshot{}
		if reg != nil {
			snap = reg.Snapshot().Fed()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n, terminal, err := traceQueryParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tracer.DumpFiltered(n, terminal))
	})
	if cfg.fed != nil {
		mux.HandleFunc("/traces/fleet", func(w http.ResponseWriter, r *http.Request) {
			n, terminal, err := traceQueryParams(r)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(cfg.fed.FleetTraces(n, terminal))
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the listener's address (host:port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }
