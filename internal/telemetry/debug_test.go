package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func debugGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_requests_total", "requests").Add(3)
	reg.Histogram("debug_latency_seconds", "latency", UnitSeconds).ObserveDuration(4 * time.Millisecond)
	tc := NewTracer(8)
	tr := tc.Start("req")
	tr.Span("queue", tr.Start(), tr.Start().Add(time.Millisecond))
	tr.Terminal("completed", tr.Start().Add(2*time.Millisecond))
	tr.Finish()

	d, err := ListenDebug("127.0.0.1:0", reg, tc)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	code, body := debugGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"debug_requests_total 3", "debug_latency_seconds_count 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = debugGet(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	if snap["debug_requests_total"].(float64) != 3 {
		t.Fatalf("snapshot counter = %v", snap["debug_requests_total"])
	}

	code, body = debugGet(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var traces []TraceSnapshot
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Terminal != "completed" {
		t.Fatalf("traces = %+v", traces)
	}

	code, body = debugGet(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status %d, body %.80s", code, body)
	}

	code, body = debugGet(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d, body %.80s", code, body)
	}
}

func TestDebugServerNilSources(t *testing.T) {
	d, err := ListenDebug("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()
	if code, _ := debugGet(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics status %d with nil registry", code)
	}
	code, body := debugGet(t, base+"/traces")
	if code != http.StatusOK || strings.TrimSpace(body) != "null" {
		t.Fatalf("/traces with nil tracer: status %d body %q", code, body)
	}
}
