package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the fleet half of the telemetry plane: a wire form for
// registry snapshots that preserves full histogram bucket arrays (so
// merging across nodes is exact, not quantile-of-quantiles), a
// periodic scraper that pulls every live node's snapshot into one
// coordinator-side view, and a cross-node trace stitcher that groups
// per-process trace segments by their shared TraceID.

// FedHistogram is one histogram's federation wire form. Unlike the
// human-facing HistogramSnapshot (which collapses to p50/p90/p99), it
// carries the sparse bucket array, so two nodes' histograms merge
// bucket-by-bucket with exact counts and any quantile can be resolved
// from the merged state.
type FedHistogram struct {
	Unit    Unit          `json:"unit"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Merge returns the exact bucket-wise union of two histogram states.
// It is commutative and associative (bucket counts, count, and sum are
// integer additions; max is max), so scrape order cannot change the
// fleet view.
func (h FedHistogram) Merge(other FedHistogram) FedHistogram {
	out := FedHistogram{
		Unit:    h.Unit,
		Count:   h.Count + other.Count,
		Sum:     h.Sum + other.Sum,
		Max:     h.Max,
		Buckets: make(map[int]int64, len(h.Buckets)+len(other.Buckets)),
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	if h.Count == 0 {
		out.Unit = other.Unit
	}
	for i, n := range h.Buckets {
		out.Buckets[i] += n
	}
	for i, n := range other.Buckets {
		out.Buckets[i] += n
	}
	return out
}

// dense expands the sparse bucket map into the fixed array the
// quantile machinery works over; out-of-range indices (a corrupt or
// future wire peer) are dropped rather than trusted.
func (h FedHistogram) dense() (buckets [histBuckets]int64) {
	for i, n := range h.Buckets {
		if i >= 0 && i < histBuckets {
			buckets[i] = n
		}
	}
	return buckets
}

// Quantile resolves the q-quantile from the bucket state, with
// Histogram.Quantile's semantics.
func (h FedHistogram) Quantile(q float64) int64 {
	buckets := h.dense()
	return quantileFromBuckets(&buckets, h.Count, h.Max, q)
}

// CountOver returns how many observations exceeded threshold, with
// Histogram.CountOver's bucket-boundary semantics.
func (h FedHistogram) CountOver(threshold int64) int64 {
	buckets := h.dense()
	return countOverFromBuckets(&buckets, h.Count, threshold)
}

// FedSnapshot is a registry snapshot in federation wire form: every
// counter/gauge value, float gauge, and full-bucket histogram, keyed
// by series name. It is what the /metrics.fed debug endpoint serves
// and what the Federator scrapes.
type FedSnapshot struct {
	Values map[string]int64        `json:"values,omitempty"`
	Floats map[string]float64      `json:"floats,omitempty"`
	Hists  map[string]FedHistogram `json:"hists,omitempty"`
}

// Fed converts the snapshot to federation wire form.
func (s *Snapshot) Fed() FedSnapshot {
	out := FedSnapshot{
		Values: make(map[string]int64, len(s.values)),
		Floats: make(map[string]float64, len(s.floats)),
		Hists:  make(map[string]FedHistogram, len(s.hists)),
	}
	for name, v := range s.values {
		out.Values[name] = v
	}
	for name, v := range s.floats {
		out.Floats[name] = v
	}
	for name, h := range s.hists {
		fh := FedHistogram{
			Unit:    h.unit,
			Count:   h.count,
			Sum:     h.sum,
			Max:     h.max,
			Buckets: make(map[int]int64),
		}
		for i, n := range h.buckets {
			if n != 0 {
				fh.Buckets[i] = n
			}
		}
		out.Hists[name] = fh
	}
	return out
}

// FleetSegment is one process-local trace segment attributed to the
// node whose /traces endpoint surfaced it.
type FleetSegment struct {
	Node string `json:"node"`
	TraceSnapshot
}

// FleetTrace is one distributed request reassembled across the fleet:
// every segment sharing a TraceID, root first (the segment with no
// remote parent), then children ordered by start time.
type FleetTrace struct {
	TraceID  string         `json:"traceId"`
	Root     string         `json:"root,omitempty"`
	Start    time.Time      `json:"start"`
	End      time.Time      `json:"end"`
	Segments []FleetSegment `json:"segments"`
}

// StitchTraces groups per-node trace segments into fleet traces by
// TraceID. Segments without a trace ID are dropped (they cannot be
// attributed to a distributed request); traces are returned oldest
// first.
func StitchTraces(byNode map[string][]TraceSnapshot) []FleetTrace {
	grouped := make(map[string]*FleetTrace)
	for node, traces := range byNode {
		for _, tr := range traces {
			if tr.TraceID == "" {
				continue
			}
			ft := grouped[tr.TraceID]
			if ft == nil {
				ft = &FleetTrace{TraceID: tr.TraceID, Start: tr.Start, End: tr.End}
				grouped[tr.TraceID] = ft
			}
			if tr.Start.Before(ft.Start) {
				ft.Start = tr.Start
			}
			if tr.End.After(ft.End) {
				ft.End = tr.End
			}
			ft.Segments = append(ft.Segments, FleetSegment{Node: node, TraceSnapshot: tr})
		}
	}
	out := make([]FleetTrace, 0, len(grouped))
	for _, ft := range grouped {
		sort.SliceStable(ft.Segments, func(i, j int) bool {
			a, b := ft.Segments[i], ft.Segments[j]
			if (a.Parent == "") != (b.Parent == "") {
				return a.Parent == "" // the root segment leads
			}
			return a.TraceSnapshot.Start.Before(b.TraceSnapshot.Start)
		})
		if len(ft.Segments) > 0 && ft.Segments[0].Parent == "" {
			ft.Root = ft.Segments[0].Name
		}
		out = append(out, *ft)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// FederatorConfig wires a Federator.
type FederatorConfig struct {
	// Targets returns the current scrape set: node label → debug base
	// URL ("http://host:port"). It is consulted every cycle, so a
	// membership change (node death, rejoin) changes the scrape set on
	// the next tick. Required.
	Targets func() map[string]string
	// Interval is the scrape cadence (default 2s).
	Interval time.Duration
	// Timeout bounds each target's scrape HTTP round trip (default
	// half the interval).
	Timeout time.Duration
	// Metrics receives the scraper's own health series
	// (fleet_scrape_errors_total{node=…}); nil keeps a private
	// registry.
	Metrics *Registry
	// Logger records scrape failures (nil discards).
	Logger *Logger
}

// fedView is one node's last successful scrape.
type fedView struct {
	snap    FedSnapshot
	scraped time.Time
}

// Federator periodically pulls each target's /metrics.fed snapshot
// and serves the merged fleet view: every node's series re-exported
// under a fleet:: prefix with a node label appended, plus exact
// bucket-merged aggregates across the fleet, plus per-node scrape
// staleness. It is the coordinator-side half of metric federation —
// wire it into the coordinator's debug listener with WithFederator.
type Federator struct {
	cfg    FederatorConfig
	reg    *Registry
	log    *Logger
	client *http.Client

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mu    sync.Mutex
	views map[string]*fedView
}

// NewFederator builds a federator, performs one synchronous scrape
// (so the fleet view is populated — or provably empty — by the time
// construction returns, and no background scrape races callers who
// drive ScrapeOnce themselves), and starts the interval loop; Close
// stops it.
func NewFederator(cfg FederatorConfig) (*Federator, error) {
	if cfg.Targets == nil {
		return nil, fmt.Errorf("telemetry: federator needs a Targets func")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		// Decoupled from the interval: a tight scrape cadence must not
		// imply a tight HTTP deadline — a loaded target (race-instrumented
		// smoke runs, GC pauses) can take far longer to serve one snapshot
		// than the gap between scrapes, and a timed-out scrape loses a
		// whole view. Overlap is harmless; ScrapeOnce is synchronous.
		cfg.Timeout = cfg.Interval / 2
		if cfg.Timeout < 2*time.Second {
			cfg.Timeout = 2 * time.Second
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = NewRegistry()
	}
	f := &Federator{
		cfg:    cfg,
		reg:    reg,
		log:    cfg.Logger,
		client: &http.Client{Timeout: cfg.Timeout},
		stop:   make(chan struct{}),
		views:  make(map[string]*fedView),
	}
	f.ScrapeOnce()
	f.wg.Add(1)
	go f.loop()
	return f, nil
}

// Close stops the scrape loop.
func (f *Federator) Close() error {
	f.once.Do(func() { close(f.stop) })
	f.wg.Wait()
	return nil
}

func (f *Federator) loop() {
	defer f.wg.Done()
	tick := time.NewTicker(f.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			f.ScrapeOnce()
		}
	}
}

// ScrapeOnce pulls every current target's snapshot synchronously. The
// loop calls it on the interval; tests call it directly for
// deterministic federation state.
func (f *Federator) ScrapeOnce() {
	targets := f.cfg.Targets()
	type result struct {
		node string
		snap FedSnapshot
		err  error
	}
	results := make(chan result, len(targets))
	for node, base := range targets {
		go func(node, base string) {
			snap, err := f.fetchSnapshot(base)
			results <- result{node: node, snap: snap, err: err}
		}(node, base)
	}
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	// Targets that left the fleet (dead nodes) leave the view too: the
	// fleet view reflects current membership, and a rejoining node
	// starts a fresh staleness clock.
	for node := range f.views {
		if _, ok := targets[node]; !ok {
			delete(f.views, node)
		}
	}
	for range targets {
		r := <-results
		if r.err != nil {
			f.reg.Counter(fmt.Sprintf("fleet_scrape_errors_total{node=%q}", r.node),
				"federation scrapes that failed").Inc()
			f.log.Warnf("telemetry: federation scrape of %q failed: %v", r.node, r.err)
			continue
		}
		f.views[r.node] = &fedView{snap: r.snap, scraped: now}
	}
}

func (f *Federator) fetchSnapshot(base string) (FedSnapshot, error) {
	var snap FedSnapshot
	resp, err := f.client.Get(base + "/metrics.fed")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("status %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode snapshot: %w", err)
	}
	return snap, nil
}

// Nodes returns the node labels with a live federated view, sorted.
func (f *Federator) Nodes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.views))
	for node := range f.views {
		out = append(out, node)
	}
	sort.Strings(out)
	return out
}

// View returns one node's last scraped snapshot and when it was
// taken (ok=false when the node has no view).
func (f *Federator) View(node string) (FedSnapshot, time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.views[node]
	if v == nil {
		return FedSnapshot{}, time.Time{}, false
	}
	return v.snap, v.scraped, true
}

// MergedHistogram returns the exact bucket-merge of one series across
// every node's view (ok=false when no node exports it).
func (f *Federator) MergedHistogram(series string) (FedHistogram, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var merged FedHistogram
	found := false
	for _, v := range f.views {
		if h, ok := v.snap.Hists[series]; ok {
			merged = merged.Merge(h)
			found = true
		}
	}
	return merged, found
}

// SLOSample implements SLOSource over the merged fleet view, so a
// coordinator-side SLO can be evaluated from histograms its nodes
// recorded.
func (f *Federator) SLOSample(series string, threshold int64) (total, bad int64, ok bool) {
	h, ok := f.MergedHistogram(series)
	if !ok {
		return 0, 0, false
	}
	return h.Count, h.CountOver(threshold), true
}

// fedName rewrites a series name into the federated form: the base
// gains the fleet:: prefix, and the node label is appended AFTER any
// embedded labels, so dashboards matching `base{label=` keep matching
// the federated series. Series that already carry a node label (the
// fleet agent's own metrics do) are left as-is rather than gaining a
// second copy.
// hasNodeLabel reports whether a series name already embeds a node
// label. Such series are per-node by construction, so the fleet-wide
// aggregate pass skips them — summing across nodes would just repeat
// the per-node line.
func hasNodeLabel(name string) bool {
	_, labels := splitName(name)
	return strings.Contains(labels, "node=")
}

func fedName(name, node string) string {
	base, labels := splitName(name)
	if node == "" || strings.Contains(labels, "node=") {
		if labels == "" {
			return "fleet::" + base
		}
		return fmt.Sprintf("fleet::%s{%s}", base, labels)
	}
	if labels == "" {
		return fmt.Sprintf("fleet::%s{node=%q}", base, node)
	}
	return fmt.Sprintf("fleet::%s{%s,node=%q}", base, labels, node)
}

// WritePrometheus renders the federated view in Prometheus text form:
// per-node series (node label appended), fleet-wide aggregates
// (counters and gauges summed, histograms exactly bucket-merged), and
// per-node scrape staleness. It is appended to the coordinator's
// /metrics output by the debug listener.
func (f *Federator) WritePrometheus(w io.Writer) error {
	f.mu.Lock()
	nodes := make([]string, 0, len(f.views))
	for node := range f.views {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	views := make(map[string]*fedView, len(f.views))
	for node, v := range f.views {
		views[node] = v
	}
	f.mu.Unlock()

	now := time.Now()
	aggValues := make(map[string]int64)
	aggHists := make(map[string]FedHistogram)
	for _, node := range nodes {
		v := views[node]
		if _, err := fmt.Fprintf(w, "fleet_scrape_age_seconds{node=%q} %g\n",
			node, now.Sub(v.scraped).Seconds()); err != nil {
			return err
		}
		for _, name := range sortedKeys(v.snap.Values) {
			if _, err := fmt.Fprintf(w, "%s %d\n", fedName(name, node), v.snap.Values[name]); err != nil {
				return err
			}
			if !hasNodeLabel(name) {
				aggValues[name] += v.snap.Values[name]
			}
		}
		for _, name := range sortedKeys(v.snap.Floats) {
			if _, err := fmt.Fprintf(w, "%s %g\n", fedName(name, node), v.snap.Floats[name]); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(v.snap.Hists) {
			h := v.snap.Hists[name]
			if err := writeFedHistogram(w, name, node, h); err != nil {
				return err
			}
			if !hasNodeLabel(name) {
				aggHists[name] = aggHists[name].Merge(h)
			}
		}
	}
	for _, name := range sortedKeys(aggValues) {
		if _, err := fmt.Fprintf(w, "%s %d\n", fedName(name, ""), aggValues[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(aggHists) {
		if err := writeFedHistogram(w, name, "", aggHists[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeFedHistogram renders one federated histogram's
// bucket/sum/count lines under its fleet:: name.
func writeFedHistogram(w io.Writer, name, node string, h FedHistogram) error {
	full := fedName(name, node)
	base, labels := splitName(full)
	buckets := h.dense()
	return writePromHistogramData(w, base, labels, &buckets, h.Count, h.Sum, h.Unit)
}

// sortedKeys returns a map's keys sorted, for deterministic export.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FleetTraces pulls every target's retained traces on demand and
// stitches them into cross-node trees. n bounds how many traces are
// requested per node (0 = the node's full ring); terminal filters by
// terminal status. Scrape failures degrade to missing segments — the
// stitcher works with whatever the live nodes returned.
func (f *Federator) FleetTraces(n int, terminal string) []FleetTrace {
	targets := f.cfg.Targets()
	type result struct {
		node   string
		traces []TraceSnapshot
	}
	results := make(chan result, len(targets))
	for node, base := range targets {
		go func(node, base string) {
			url := base + "/traces"
			sep := "?"
			if n > 0 {
				url += fmt.Sprintf("%sn=%d", sep, n)
				sep = "&"
			}
			if terminal != "" {
				url += sep + "terminal=" + terminal
			}
			var traces []TraceSnapshot
			resp, err := f.client.Get(url)
			if err == nil {
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					_ = json.NewDecoder(resp.Body).Decode(&traces)
				}
			}
			results <- result{node: node, traces: traces}
		}(node, base)
	}
	byNode := make(map[string][]TraceSnapshot, len(targets))
	for range targets {
		r := <-results
		if len(r.traces) > 0 {
			byNode[r.node] = r.traces
		}
	}
	return StitchTraces(byNode)
}

// StaticTargets adapts a fixed node→URL map into a Targets func, for
// single-shot deployments and tests.
func StaticTargets(targets map[string]string) func() map[string]string {
	fixed := make(map[string]string, len(targets))
	for k, v := range targets {
		fixed[k] = v
	}
	return func() map[string]string { return fixed }
}

// MergeTargets folds several Targets funcs into one, later sources
// winning label collisions — how a coordinator's dynamic node set and
// a static extra (e.g. the vehicle plane) combine into one scrape set.
func MergeTargets(sources ...func() map[string]string) func() map[string]string {
	return func() map[string]string {
		out := make(map[string]string)
		for _, src := range sources {
			if src == nil {
				continue
			}
			for k, v := range src() {
				out[k] = v
			}
		}
		return out
	}
}
