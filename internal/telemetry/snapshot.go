package telemetry

import (
	"sort"
	"strings"
	"time"
)

// histSnapshot is one histogram's merged state at snapshot time.
type histSnapshot struct {
	buckets    [histBuckets]int64
	count, sum int64
	max        int64
	unit       Unit
}

// Snapshot is a point-in-time copy of every series in a Registry, with
// typed accessors keyed by metric name. It is the shared substrate for
// the per-package Stats() façades (serve, rsu, fleet): a façade reads
// whatever series it wants by name instead of plumbing a pointer per
// metric, so adding a series to a façade is one getter call, not new
// wiring. All accessors return zero values for unknown names — a
// façade asking for a series nothing has recorded yet reads 0, exactly
// as the live metric would.
type Snapshot struct {
	values map[string]int64
	floats map[string]float64
	hists  map[string]*histSnapshot
}

// Snapshot captures every registered metric's current value: counters,
// gauges, and computed gauges as int64s, histograms with their full
// merged bucket arrays (so any quantile can be resolved later from the
// frozen state).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		values: make(map[string]int64),
		floats: make(map[string]float64),
		hists:  make(map[string]*histSnapshot),
	}
	for _, m := range r.snapshotMetrics() {
		switch {
		case m.c != nil:
			s.values[m.name] = m.c.Value()
		case m.g != nil:
			s.values[m.name] = m.g.Value()
		case m.fg != nil:
			s.floats[m.name] = m.fg.Value()
		case m.gf != nil:
			s.values[m.name] = m.gf()
		case m.h != nil:
			buckets, count, sum := m.h.snapshot()
			s.hists[m.name] = &histSnapshot{
				buckets: buckets,
				count:   count,
				sum:     sum,
				max:     m.h.Max(),
				unit:    m.h.unit,
			}
		}
	}
	return s
}

// Value returns a counter's or gauge's value (0 for unknown names).
func (s *Snapshot) Value(name string) int64 { return s.values[name] }

// Float returns a float gauge's value (0 for unknown names).
func (s *Snapshot) Float(name string) float64 { return s.floats[name] }

// Int is Value narrowed to int, for façade structs with int fields.
func (s *Snapshot) Int(name string) int { return int(s.values[name]) }

// Total sums every counter/gauge series belonging to the base name:
// Total("fleet_push_errors_total") adds up all
// fleet_push_errors_total{peer=…} series plus the unlabelled series if
// one exists. It is how façades collapse a labelled family into one
// number.
func (s *Snapshot) Total(base string) int64 {
	var total int64
	for name, v := range s.values {
		if b, _ := splitName(name); b == base {
			total += v
		}
	}
	return total
}

// Count returns a histogram's observation count.
func (s *Snapshot) Count(name string) int64 {
	if h := s.hists[name]; h != nil {
		return h.count
	}
	return 0
}

// Sum returns a histogram's raw observation sum.
func (s *Snapshot) Sum(name string) int64 {
	if h := s.hists[name]; h != nil {
		return h.sum
	}
	return 0
}

// SumDuration returns Sum as a time.Duration; meaningful for
// UnitSeconds histograms, whose observations are nanoseconds.
func (s *Snapshot) SumDuration(name string) time.Duration {
	return time.Duration(s.Sum(name))
}

// Max returns a histogram's largest observation.
func (s *Snapshot) Max(name string) int64 {
	if h := s.hists[name]; h != nil {
		return h.max
	}
	return 0
}

// Quantile resolves the q-quantile from the frozen bucket state, with
// the same semantics as Histogram.Quantile (bucket-upper-bound
// overestimate, exact at the maximum, 0 when empty or unknown).
func (s *Snapshot) Quantile(name string, q float64) int64 {
	h := s.hists[name]
	if h == nil {
		return 0
	}
	return quantileFromBuckets(&h.buckets, h.count, h.max, q)
}

// QuantileDuration returns Quantile as a time.Duration; meaningful for
// UnitSeconds histograms.
func (s *Snapshot) QuantileDuration(name string, q float64) time.Duration {
	return time.Duration(s.Quantile(name, q))
}

// CountOver returns how many of a histogram's observations exceeded
// threshold, with Histogram.CountOver's bucket-boundary semantics
// (0 for unknown names).
func (s *Snapshot) CountOver(name string, threshold int64) int64 {
	h := s.hists[name]
	if h == nil {
		return 0
	}
	return countOverFromBuckets(&h.buckets, h.count, threshold)
}

// Has reports whether any series was captured under name.
func (s *Snapshot) Has(name string) bool {
	if _, ok := s.values[name]; ok {
		return true
	}
	if _, ok := s.floats[name]; ok {
		return true
	}
	_, ok := s.hists[name]
	return ok
}

// Names returns every captured series name containing substr (all
// names for ""), sorted — a debugging aid for façade authors.
func (s *Snapshot) Names(substr string) []string {
	var out []string
	for name := range s.values {
		if strings.Contains(name, substr) {
			out = append(out, name)
		}
	}
	for name := range s.floats {
		if strings.Contains(name, substr) {
			out = append(out, name)
		}
	}
	for name := range s.hists {
		if strings.Contains(name, substr) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Values renders the snapshot in the JSON export shape: counters and
// gauges as numbers, histograms as HistogramSnapshot. This is what the
// debug listener's /metrics.json serves.
func (s *Snapshot) Values() map[string]any {
	out := make(map[string]any, len(s.values)+len(s.floats)+len(s.hists))
	for name, v := range s.values {
		out[name] = v
	}
	for name, v := range s.floats {
		out[name] = v
	}
	for name, h := range s.hists {
		mean := 0.0
		if h.count > 0 {
			mean = float64(h.sum) / float64(h.count)
		}
		if h.unit == UnitSeconds {
			mean /= float64(time.Second)
		}
		out[name] = HistogramSnapshot{
			Count: h.count,
			Sum:   inUnit(h.sum, h.unit),
			Mean:  mean,
			Max:   inUnit(h.max, h.unit),
			P50:   inUnit(quantileFromBuckets(&h.buckets, h.count, h.max, 0.50), h.unit),
			P90:   inUnit(quantileFromBuckets(&h.buckets, h.count, h.max, 0.90), h.unit),
			P99:   inUnit(quantileFromBuckets(&h.buckets, h.count, h.max, 0.99), h.unit),
		}
	}
	return out
}
