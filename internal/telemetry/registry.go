// Package telemetry is SafeCross's dependency-free observability
// layer: a concurrent metrics registry (counters, gauges, fixed-bucket
// latency histograms), per-request trace spans carried on
// context.Context, a leveled logger, and exporters (Prometheus text
// format, JSON snapshots, expvar/pprof over an optional debug HTTP
// listener).
//
// The registry is built for hot paths. Recording never takes a lock:
// counters and histogram buckets are sharded atomics (shards picked
// with a per-thread random source, cache-line padded against false
// sharing), so serving workers, the scheduler, and RSU broadcast
// goroutines can all record concurrently without serialising on a
// mutex. Lookup and registration do lock, so callers resolve their
// metrics once at wiring time and hold the pointers.
//
// Metric names follow Prometheus conventions (snake_case, unit
// suffixes such as _seconds and _total). A name may embed a label set
// in Prometheus form — `pipeswitch_load_seconds{method="pipeswitch"}`
// — and the text exporter merges those labels into bucket lines
// correctly. Every constructor is get-or-create: asking for an
// existing name returns the existing metric, so subsystems sharing a
// registry aggregate instead of colliding.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	randv2 "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the per-metric shard count; recording picks a shard
// with a cheap per-thread random draw, so concurrent writers mostly
// touch different cache lines. Must be a power of two.
const numShards = 8

// paddedInt64 is an atomic counter padded out to its own cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// shard picks this call's shard. math/rand/v2's global functions draw
// from a per-thread generator in the runtime — no shared state, a few
// nanoseconds per call.
func shard() uint32 { return randv2.Uint32() & (numShards - 1) }

// Counter is a monotonically increasing sharded atomic counter. The
// zero value is unusable; obtain counters from a Registry. A nil
// *Counter is a valid no-op, so unwired call sites cost one branch.
type Counter struct {
	shards [numShards]paddedInt64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shard()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous atomic value. A nil *Gauge is a valid
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v when v exceeds the current value
// (a lock-free running maximum).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 value (burn rates, ratios) —
// stored as atomic bits, so Set/Value never lock. A nil *FloatGauge
// is a valid no-op.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: values 0..15 get exact unit buckets (so
// small integer distributions such as batch sizes are loss-free), and
// larger values land in log-linear buckets — four linear sub-buckets
// per power of two, bounding the quantile overestimate at 25%.
const (
	histSmall   = 16 // exact buckets for values 0..15
	histBuckets = histSmall + (63-4)*4
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSmall {
		return int(v)
	}
	e := bits.Len64(uint64(v)) // 2^(e-1) <= v < 2^e, e >= 5
	sub := int((uint64(v) >> (e - 3)) & 3)
	return histSmall + (e-5)*4 + sub
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i < histSmall {
		return int64(i)
	}
	i -= histSmall
	e := i/4 + 5
	low := uint64(1) << (e - 1)
	width := low / 4
	upper := low + uint64(i%4+1)*width
	if upper > math.MaxInt64 {
		return math.MaxInt64 // the top octave's last bucket caps at int64 range
	}
	return int64(upper)
}

// Unit declares how a histogram's int64 observations should be
// rendered by the exporters.
type Unit int

const (
	// UnitSeconds marks nanosecond observations exported as seconds.
	UnitSeconds Unit = iota
	// UnitCount marks dimensionless observations (batch sizes, queue
	// depths) exported as raw numbers.
	UnitCount
)

// histShard is one shard of a histogram's bucket array.
type histShard struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	_       [56]byte
}

// Histogram is a fixed-bucket distribution over non-negative int64
// observations (latencies in nanoseconds, sizes in units). Recording
// is lock-free: each observation lands in one sharded atomic bucket.
// A nil *Histogram is a valid no-op.
type Histogram struct {
	unit   Unit
	shards [numShards]histShard
	max    Gauge
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.shards[shard()]
	s.buckets[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	h.max.SetMax(v)
}

// ObserveDuration records a duration observation (nanoseconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var s int64
	for i := range h.shards {
		s += h.shards[i].sum.Load()
	}
	return s
}

// Max returns the largest observation so far (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Value() }

// CountOver returns how many observations exceeded threshold, resolved
// from the bucket layout: every bucket whose upper bound lies above the
// threshold counts in full, so the answer can overstate by at most one
// bucket's population when the threshold falls inside a bucket — a
// deterministic, conservative error for SLO accounting.
func (h *Histogram) CountOver(threshold int64) int64 {
	if h == nil {
		return 0
	}
	buckets, count, _ := h.snapshot()
	return countOverFromBuckets(&buckets, count, threshold)
}

// countOverFromBuckets is CountOver over a merged bucket array —
// shared between live histograms and frozen snapshot state.
func countOverFromBuckets(buckets *[histBuckets]int64, count, threshold int64) int64 {
	var within int64
	for i := range buckets {
		if bucketUpper(i) > threshold {
			break
		}
		within += buckets[i]
	}
	return count - within
}

// snapshot merges the shards into one bucket array.
func (h *Histogram) snapshot() (buckets [histBuckets]int64, count, sum int64) {
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.buckets {
			buckets[b] += s.buckets[b].Load()
		}
		count += s.count.Load()
		sum += s.sum.Load()
	}
	return buckets, count, sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket holding the target rank — an overestimate of at most one
// bucket width. Out-of-range q clamps: q ≤ 0 returns the smallest
// bucket bound observed, q ≥ 1 returns the exact maximum (so the
// p=100 edge that would index past a sorted sample is well-defined
// here). An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	buckets, count, _ := h.snapshot()
	return quantileFromBuckets(&buckets, count, h.Max(), q)
}

// quantileFromBuckets resolves a quantile from a merged bucket array —
// shared between live histograms and frozen Snapshot state.
func quantileFromBuckets(buckets *[histBuckets]int64, count, max int64, q float64) int64 {
	if count == 0 {
		return 0
	}
	if q >= 1 {
		return max
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range buckets {
		seen += buckets[i]
		if seen >= rank {
			upper := bucketUpper(i)
			if upper > max {
				upper = max // never report beyond the observed maximum
			}
			return upper
		}
	}
	return max
}

// QuantileDuration returns Quantile(q) as a time.Duration; it is only
// meaningful for UnitSeconds histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// metric is one registered entry.
type metric struct {
	name string // full name, possibly with {labels}
	help string
	c    *Counter
	g    *Gauge
	fg   *FloatGauge
	gf   func() int64
	h    *Histogram
}

// Registry is a named collection of metrics. Registration and lookup
// take a lock; recording through the returned metric pointers never
// does.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register implements get-or-create; a name reused across kinds is a
// wiring bug and panics.
func (r *Registry) register(name, help string, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := build()
	m.name, m.help = name, help
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name, creating it if
// absent.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, func() *metric { return &metric{c: &Counter{}} })
	if m.c == nil {
		panic(fmt.Sprintf("telemetry: %q already registered as a different kind", name))
	}
	return m.c
}

// Gauge returns the gauge registered under name, creating it if
// absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, func() *metric { return &metric{g: &Gauge{}} })
	if m.g == nil {
		panic(fmt.Sprintf("telemetry: %q already registered as a different kind", name))
	}
	return m.g
}

// FloatGauge returns the float gauge registered under name, creating
// it if absent.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	m := r.register(name, help, func() *metric { return &metric{fg: &FloatGauge{}} })
	if m.fg == nil {
		panic(fmt.Sprintf("telemetry: %q already registered as a different kind", name))
	}
	return m.fg
}

// GaugeFunc registers a computed gauge whose value is read at export
// time — for values another subsystem already tracks (worker virtual
// clocks, subscriber counts). Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	m := r.register(name, help, func() *metric { return &metric{gf: fn} })
	r.mu.Lock()
	m.gf = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it
// with the given unit if absent.
func (r *Registry) Histogram(name, help string, unit Unit) *Histogram {
	m := r.register(name, help, func() *metric { return &metric{h: &Histogram{unit: unit}} })
	if m.h == nil {
		panic(fmt.Sprintf("telemetry: %q already registered as a different kind", name))
	}
	return m.h
}

// FindHistogram returns the histogram registered under name, or nil.
// A nil result is safe to record into and reads as empty, so lookup
// misses degrade to no-ops.
func (r *Registry) FindHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.h
	}
	return nil
}

// snapshotMetrics copies the ordered metric list (sorted by name) so
// exporters iterate without holding the lock.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	out := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// splitName separates a metric name into its base and an embedded
// Prometheus label set: `a_total{k="v"}` → `a_total`, `k="v"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promValue formats an observation in the histogram's export unit.
func promValue(v int64, unit Unit) string {
	if unit == UnitSeconds {
		return fmt.Sprintf("%g", time.Duration(v).Seconds())
	}
	return fmt.Sprintf("%d", v)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format. Histograms emit cumulative `_bucket` lines at
// each non-empty bucket boundary plus `+Inf`, with `_sum` and
// `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	helped := make(map[string]bool)
	for _, m := range r.snapshotMetrics() {
		base, labels := splitName(m.name)
		kind := "counter"
		switch {
		case m.g != nil || m.fg != nil || m.gf != nil:
			kind = "gauge"
		case m.h != nil:
			kind = "histogram"
		}
		if !helped[base] {
			helped[base] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case m.fg != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.fg.Value())
		case m.gf != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gf())
		case m.h != nil:
			err = writePromHistogram(w, base, labels, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram's bucket/sum/count lines.
func writePromHistogram(w io.Writer, base, labels string, h *Histogram) error {
	buckets, count, sum := h.snapshot()
	return writePromHistogramData(w, base, labels, &buckets, count, sum, h.unit)
}

// writePromHistogramData renders bucket/sum/count lines from a merged
// bucket array — shared between live histograms and federated views.
func writePromHistogramData(w io.Writer, base, labels string, buckets *[histBuckets]int64, count, sum int64, unit Unit) error {
	joint := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{%s,le=%q}`, labels, le)
	}
	var cum int64
	for i := range buckets {
		if buckets[i] == 0 {
			continue
		}
		cum += buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joint(promValue(bucketUpper(i), unit)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joint("+Inf"), count); err != nil {
		return err
	}
	sumStr := promValue(sum, unit)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, sumStr); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, count)
	return err
}

// HistogramSnapshot is the JSON face of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// inUnit converts a raw observation for JSON export.
func inUnit(v int64, unit Unit) float64 {
	if unit == UnitSeconds {
		return time.Duration(v).Seconds()
	}
	return float64(v)
}
