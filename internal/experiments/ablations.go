package experiments

import (
	"fmt"

	"safecross/internal/dataset"
	"safecross/internal/detect"
	"safecross/internal/fewshot"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// returns rows suitable for cmd/safecross-bench -ablations and is
// asserted qualitatively by the test suite.

// LateralAblationRow compares SlowFast with and without its lateral
// connections.
type LateralAblationRow struct {
	Variant         string
	Top1, MeanClass float64
	Params          int
}

// AblateSlowFastLateral trains the SlowFast network with and without
// lateral connections on the same daytime data: the fusion of fast
// temporal detail into the slow pathway is the architecture's core
// idea, and removing it should not help.
func AblateSlowFastLateral(cfg Config) ([]LateralAblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scenes, err := cfg.generateScenes()
	if err != nil {
		return nil, err
	}
	day := scenes[sim.Day]
	var rows []LateralAblationRow
	for _, lateral := range []bool{true, false} {
		sfCfg := cfg.slowFastConfig(cfg.Seed + 100)
		sfCfg.Lateral = lateral
		m, err := video.NewSlowFast(sfCfg)
		if err != nil {
			return nil, err
		}
		cfg.logf("lateral ablation: training %s", m.Name())
		if _, err := video.Train(m, day.Train, video.TrainConfig{
			Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
		}); err != nil {
			return nil, fmt.Errorf("experiments: lateral ablation: %w", err)
		}
		cm, err := video.Evaluate(m, day.Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: lateral ablation: %w", err)
		}
		rows = append(rows, LateralAblationRow{
			Variant: m.Name(), Top1: cm.Top1(), MeanClass: cm.MeanClass(),
			Params: paramCount(m),
		})
	}
	return rows, nil
}

func paramCount(m video.Classifier) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// MorphologyAblationRow compares VP detection quality with and
// without morphological opening.
type MorphologyAblationRow struct {
	Variant string
	// Detections is the blob count on the canonical noisy frame; the
	// scene contains exactly three real movers (car, turner, and the
	// turner's shadow region), so large counts are noise.
	Detections int
	// FoundCar reports whether the danger-zone car was among them.
	FoundCar bool
}

// AblateVPMorphology runs the background-subtraction detector with
// and without opening on the canonical noisy scene: opening should
// suppress the camera-noise blobs without losing the vehicle (the
// paper's erosion-then-dilation rationale in Sec. III-B).
func AblateVPMorphology() ([]MorphologyAblationRow, error) {
	scene, err := detect.CanonicalScene()
	if err != nil {
		return nil, err
	}
	var rows []MorphologyAblationRow
	for _, open := range []bool{true, false} {
		d := detect.NewBGS()
		variant := "with-opening"
		if !open {
			d.OpenRadius = 0
			// Without opening, single noise pixels flood the
			// components; keep the same minimum area so the comparison
			// isolates the morphology.
			variant = "without-opening"
		}
		rects, err := d.Detect(scene.Frames)
		if err != nil {
			return nil, fmt.Errorf("experiments: morphology ablation: %w", err)
		}
		found := false
		for _, r := range rects {
			if r.Intersect(scene.Car).Area() >= detect.HitOverlap {
				found = true
			}
		}
		rows = append(rows, MorphologyAblationRow{
			Variant: variant, Detections: len(rects), FoundCar: found,
		})
	}
	return rows, nil
}

// BackgroundAblationRow compares the dynamic background model with a
// static reference frame under illumination drift.
type BackgroundAblationRow struct {
	Variant string
	// FalseForeground is the mean fraction of pixels misreported as
	// motion over a drifting, vehicle-free sequence.
	FalseForeground float64
}

// AblateBackgroundModel runs both background strategies over a long
// vehicle-free sequence with a dusk-scale illumination drift (the
// paper's cameras run around the clock): the dynamic model tracks the
// drift; the static reference frame misclassifies it as motion. This
// is the "constantly updated background" design point of Sec. III-B.
func AblateBackgroundModel() ([]BackgroundAblationRow, error) {
	const (
		frames = 240
		w, h   = sim.FrameW, sim.FrameH
	)
	run := func(alpha float64) (float64, error) {
		rng := newRand(77)
		bg := vision.NewBackgroundModel(alpha)
		totalFrac := 0.0
		counted := 0
		for i := 0; i < frames; i++ {
			// Ambient light falls slowly and steadily — a dusk ramp
			// far larger than the foreground threshold.
			frame := vision.NewImage(w, h)
			frame.Fill(0.45 - 0.25*float64(i)/frames)
			frame.AddGaussianNoise(rng, 0.02)
			if i == 0 {
				if err := bg.Update(frame); err != nil {
					return 0, err
				}
				continue
			}
			diff, err := bg.Subtract(frame)
			if err != nil {
				return 0, err
			}
			mask := vision.Open(diff.Threshold(0.10), 1)
			on := 0
			for _, v := range mask.Pix {
				if v >= 0.5 {
					on++
				}
			}
			totalFrac += float64(on) / float64(len(mask.Pix))
			counted++
			if alpha > 0 {
				if err := bg.Update(frame); err != nil {
					return 0, err
				}
			}
		}
		return totalFrac / float64(counted), nil
	}
	dynamic, err := run(0.05)
	if err != nil {
		return nil, fmt.Errorf("experiments: background ablation: %w", err)
	}
	static, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("experiments: background ablation: %w", err)
	}
	return []BackgroundAblationRow{
		{Variant: "dynamic-background", FalseForeground: dynamic},
		{Variant: "static-background", FalseForeground: static},
	}, nil
}

// InnerStepsRow reports adaptation quality for one inner-step count.
type InnerStepsRow struct {
	Steps int
	Top1  float64
}

// AblateMAMLInnerSteps measures few-shot adaptation accuracy on snow
// as a function of the inner-loop step count k (Eq. 1): more steps
// help up to a point, the paper's Fig. 6 mechanics.
func AblateMAMLInnerSteps(cfg Config, stepCounts []int) ([]InnerStepsRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stepCounts) == 0 {
		stepCounts = []int{1, 2, 4, 8, 16}
	}
	scenes, err := cfg.generateScenes()
	if err != nil {
		return nil, err
	}
	builder := video.SlowFastBuilder(cfg.slowFastConfig(cfg.Seed + 100))
	day, err := builder()
	if err != nil {
		return nil, err
	}
	cfg.logf("inner-steps ablation: training daytime initialisation")
	if _, err := video.Train(day, scenes[sim.Day].Train, video.TrainConfig{
		Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
	}); err != nil {
		return nil, err
	}
	// A small support set, the few-shot regime.
	support := scenes[sim.Snow].Train
	if len(support) > 8 {
		support = support[:8]
	}
	rows := make([]InnerStepsRow, 0, len(stepCounts))
	for _, k := range stepCounts {
		adapted, err := fewshot.AdaptFromPretrained(builder, day, support, k, cfg.AdaptLR)
		if err != nil {
			return nil, fmt.Errorf("experiments: inner-steps ablation k=%d: %w", k, err)
		}
		cm, err := video.Evaluate(adapted, scenes[sim.Snow].Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: inner-steps ablation k=%d: %w", k, err)
		}
		rows = append(rows, InnerStepsRow{Steps: k, Top1: cm.Top1()})
	}
	return rows, nil
}

// dangerLabelForClip is a tiny helper used by ablation tests.
func dangerLabelForClip(c *dataset.Clip) bool { return c.Label == dataset.ClassDanger }
