package experiments

import (
	"strings"
	"testing"
	"time"

	"safecross/internal/sim"
)

func TestConfigPresetsValid(t *testing.T) {
	for _, cfg := range []Config{Quick(), Standard(), Full()} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := Quick()
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected scale error")
	}
	bad = Quick()
	bad.ClipLen = 12
	if err := bad.Validate(); err == nil {
		t.Fatal("expected clip-length error")
	}
	bad = Quick()
	bad.Epochs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected epochs error")
	}
}

func TestTableIComposition(t *testing.T) {
	cfg := Quick()
	rows, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 scenes", len(rows))
	}
	byScene := map[sim.Weather]TableIRow{}
	for _, r := range rows {
		byScene[r.Scene] = r
		if r.Segments != r.Danger+r.Safe {
			t.Fatalf("%v: class counts %d+%d != %d", r.Scene, r.Danger, r.Safe, r.Segments)
		}
		if r.Frames != cfg.ClipLen {
			t.Fatalf("%v frames = %d", r.Scene, r.Frames)
		}
		if r.Danger == 0 || r.Safe == 0 || r.Blind == 0 {
			t.Fatalf("%v: degenerate composition %+v", r.Scene, r)
		}
	}
	// Day ≫ snow ≥ rain, the paper's proportions.
	if !(byScene[sim.Day].Segments > byScene[sim.Snow].Segments &&
		byScene[sim.Snow].Segments >= byScene[sim.Rain].Segments) {
		t.Fatalf("scene proportions wrong: %+v", rows)
	}
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableII(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[r.Method] = r.Detected
	}
	want := map[string]bool{"bgs": true, "sparse-of": false, "dense-of": true, "yolite": false}
	for m, d := range want {
		if got[m] != d {
			t.Fatalf("%s detected=%v, want %v (rows %+v)", m, got[m], d, rows)
		}
	}
}

// TestPipelineShapes runs the full Quick pipeline and asserts the
// qualitative relationships of Tables III and V and the throughput
// experiment. This is the repository's core reproduction check.
func TestPipelineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	tm, err := TrainSceneModels(Quick())
	if err != nil {
		t.Fatal(err)
	}

	rows3, err := TableIII(tm)
	if err != nil {
		t.Fatal(err)
	}
	acc := map[string]AccuracyRow{}
	for _, r := range rows3 {
		acc[r.Name] = r
		if r.Top1 < 0.5 || r.Top1 > 1 {
			t.Fatalf("table III %s top1 = %v out of range", r.Name, r.Top1)
		}
	}
	// Day (data-rich, in-domain) must be the best scene, as in the
	// paper's Table III.
	if acc["day"].Top1 < acc["rain"].Top1-1e-9 || acc["day"].Top1 < acc["snow"].Top1-1e-9 {
		t.Fatalf("day must lead Table III: %+v", rows3)
	}
	if acc["day"].Top1 < 0.85 {
		t.Fatalf("day accuracy %v too low for the paper's shape (0.96)", acc["day"].Top1)
	}

	rows5, err := TableV(tm)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AccuracyRow{}
	for _, r := range rows5 {
		byName[r.Name] = r
	}
	for _, scene := range []string{"snow", "rain"} {
		with := byName[scene+" with few shot learning"]
		without := byName[scene+" without few shot learning"]
		if with.Top1 < without.Top1 {
			t.Fatalf("table V: %s with-FSL (%v) must not trail without-FSL (%v)",
				scene, with.Top1, without.Top1)
		}
	}

	tp, err := Throughput(tm)
	if err != nil {
		t.Fatal(err)
	}
	c := tp.Classification
	if c.UnsafeReleases > c.DangerClips/4 {
		t.Fatalf("too many unsafe releases: %+v", c)
	}
	if c.ThroughputGain <= 0 {
		t.Fatalf("throughput gain = %v, want positive", c.ThroughputGain)
	}
	for w, l := range tp.Loop {
		if l.TurnsWith <= l.TurnsWithout {
			t.Fatalf("closed loop %v: advisory did not help (%d vs %d)", w, l.TurnsWith, l.TurnsWithout)
		}
	}
}

func TestTableVIShapeAndOrdering(t *testing.T) {
	rows, err := TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	wantOrder := []string{"slowfast-safecross", "resnet152", "inceptionv3"}
	for i, r := range rows {
		if r.Model != wantOrder[i] {
			t.Fatalf("row %d model = %s, want %s", i, r.Model, wantOrder[i])
		}
		if r.StopAndStart.Total < time.Second {
			t.Fatalf("%s stop-and-start %v, want seconds", r.Model, r.StopAndStart.Total)
		}
		if r.PipeSwitch.Total >= 10*time.Millisecond {
			t.Fatalf("%s pipeswitch %v, want <10ms", r.Model, r.PipeSwitch.Total)
		}
	}
	for i := 0; i+1 < len(rows); i++ {
		if rows[i].StopAndStart.Total <= rows[i+1].StopAndStart.Total {
			t.Fatalf("stop-and-start ordering broken at %d: %+v", i, rows)
		}
		if rows[i].PipeSwitch.Total <= rows[i+1].PipeSwitch.Total {
			t.Fatalf("pipeswitch ordering broken at %d: %+v", i, rows)
		}
	}
}

func TestGroupingAblation(t *testing.T) {
	rows, err := GroupingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 models × 3 strategies", len(rows))
	}
	byModel := map[string]map[string]time.Duration{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]time.Duration{}
		}
		byModel[r.Model][r.Strategy] = r.Report.Total
	}
	for model, strat := range byModel {
		opt := strat["optimal"]
		if opt > strat["per-layer"] || opt > strat["single"] {
			t.Fatalf("%s: optimal (%v) must dominate per-layer (%v) and single (%v)",
				model, opt, strat["per-layer"], strat["single"])
		}
	}
}

func TestFig3Renders(t *testing.T) {
	var sb strings.Builder
	if err := Fig3(&sb, 71); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 3(a)", "Fig. 3(b)", "Fig. 3(c)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig3 output missing %q", want)
		}
	}
	if len(out) < 1000 {
		t.Fatalf("Fig3 output suspiciously short: %d bytes", len(out))
	}
}

func TestFig8Renders(t *testing.T) {
	var sb strings.Builder
	if err := Fig8(&sb, 7); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 8(a)", "bgs", "sparse-of", "dense-of", "yolite", "MISSES", "FINDS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig8 output missing %q", want)
		}
	}
}
