package experiments

import (
	"fmt"
	"math/rand"

	"safecross/internal/dataset"
	"safecross/internal/detect"
	"safecross/internal/fewshot"
	"safecross/internal/sim"
	"safecross/internal/video"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TableIRow describes one scene of the dataset-overview table.
type TableIRow struct {
	Scene    sim.Weather
	Segments int
	Frames   int
	Danger   int
	Safe     int
	Blind    int
}

// TableI reports the (scaled) dataset composition, mirroring the
// paper's Table I. At scale 1.0 the segment counts are exactly
// 1966/34/855.
func TableI(cfg Config) ([]TableIRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	specs := dataset.ScaledTableISpecs(cfg.Scale)
	rows := make([]TableIRow, 0, len(specs))
	for _, spec := range specs {
		clips, err := cfg.generateSceneClips(spec)
		if err != nil {
			return nil, err
		}
		row := TableIRow{Scene: spec.Weather, Segments: len(clips), Frames: cfg.ClipLen}
		for _, c := range clips {
			if c.Label == dataset.ClassDanger {
				row.Danger++
			} else {
				row.Safe++
			}
			if c.Blind {
				row.Blind++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableII runs the detection-method comparison on the canonical
// occluded scene.
func TableII(reps int, seed int64) ([]detect.Row, error) {
	scene, err := detect.CanonicalScene()
	if err != nil {
		return nil, err
	}
	dets, err := detect.DefaultDetectors(seed)
	if err != nil {
		return nil, err
	}
	return detect.RunTableII(dets, scene, reps)
}

// AccuracyRow is one line of the classification-accuracy tables.
type AccuracyRow struct {
	// Name identifies the scene (Table III) or model (Table IV) or
	// ablation arm (Table V).
	Name string
	// Top1 and MeanClass are the paper's two metrics.
	Top1, MeanClass float64
	// TestClips is the evaluation set size.
	TestClips int
}

// TrainedModels is the output of the Table III pipeline: the daytime
// basic model plus the few-shot-adapted rain and snow models, with
// their held-out test sets.
type TrainedModels struct {
	Models map[sim.Weather]video.Classifier
	Scenes map[sim.Weather]*sceneData
	Cfg    Config
	// Builder reconstructs the exact network geometry the models were
	// trained with, so downstream consumers (the serving layer's
	// per-worker replicas) can clone them weight-for-weight.
	Builder video.Builder
}

// TrainSceneModels runs the paper's training pipeline: the basic
// SlowFast model from scratch on daytime data (VP+VC), then rain and
// snow models adapted from it with few-shot learning (FL).
func TrainSceneModels(cfg Config) (*TrainedModels, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scenes, err := cfg.generateScenes()
	if err != nil {
		return nil, err
	}
	builder := video.SlowFastBuilder(cfg.slowFastConfig(cfg.Seed + 100))

	day, err := builder()
	if err != nil {
		return nil, err
	}
	cfg.logf("training daytime basic model on %d clips", len(scenes[sim.Day].Train))
	if _, err := video.Train(day, scenes[sim.Day].Train, video.TrainConfig{
		Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
	}); err != nil {
		return nil, err
	}

	models := map[sim.Weather]video.Classifier{sim.Day: day}
	for _, w := range []sim.Weather{sim.Snow, sim.Rain} {
		cfg.logf("few-shot adapting %v model on %d clips", w, len(scenes[w].Train))
		// Fine-tune from the daytime initialisation with the same
		// schedule as scratch training, so Table V isolates the value
		// of the initialisation itself.
		adapted, err := fewshot.FineTune(builder, day, scenes[w].Train, video.TrainConfig{
			Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed + int64(w), Log: cfg.Log,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: adapt %v: %w", w, err)
		}
		models[w] = adapted
	}
	return &TrainedModels{Models: models, Scenes: scenes, Cfg: cfg, Builder: builder}, nil
}

// TableIII evaluates the per-scene models on their held-out test
// splits, reproducing the paper's Table III (day > snow > rain).
func TableIII(tm *TrainedModels) ([]AccuracyRow, error) {
	rows := make([]AccuracyRow, 0, 3)
	for _, w := range sim.AllWeathers() {
		cm, err := video.Evaluate(tm.Models[w], tm.Scenes[w].Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: table III %v: %w", w, err)
		}
		rows = append(rows, AccuracyRow{
			Name: w.String(), Top1: cm.Top1(), MeanClass: cm.MeanClass(),
			TestClips: len(tm.Scenes[w].Test),
		})
	}
	return rows, nil
}

// TableIV trains SlowFast, C3D, and TSN on the daytime split and
// evaluates them, reproducing the paper's architecture comparison.
func TableIV(cfg Config) ([]AccuracyRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scenes, err := cfg.generateScenes()
	if err != nil {
		return nil, err
	}
	day := scenes[sim.Day]
	builders := []video.Builder{
		video.SlowFastBuilder(cfg.slowFastConfig(cfg.Seed + 100)),
		video.C3DBuilder(cfg.slowFastConfig(cfg.Seed + 200)),
		video.TSNBuilder(cfg.slowFastConfig(cfg.Seed + 300)),
	}
	rows := make([]AccuracyRow, 0, len(builders))
	for _, b := range builders {
		m, err := b()
		if err != nil {
			return nil, err
		}
		cfg.logf("training %s on %d daytime clips", m.Name(), len(day.Train))
		if _, err := video.Train(m, day.Train, video.TrainConfig{
			Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
		}); err != nil {
			return nil, fmt.Errorf("experiments: table IV %s: %w", m.Name(), err)
		}
		cm, err := video.Evaluate(m, day.Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: table IV %s: %w", m.Name(), err)
		}
		rows = append(rows, AccuracyRow{
			Name: m.Name(), Top1: cm.Top1(), MeanClass: cm.MeanClass(),
			TestClips: len(day.Test),
		})
	}
	return rows, nil
}

// TableV runs the few-shot ablation: snow and rain models trained
// with few-shot learning (adapted from the daytime model) versus
// without (from scratch on the same small sets).
func TableV(tm *TrainedModels) ([]AccuracyRow, error) {
	cfg := tm.Cfg
	var rows []AccuracyRow
	for _, w := range []sim.Weather{sim.Snow, sim.Rain} {
		scene := tm.Scenes[w]

		// With few-shot learning: the already-adapted model.
		cmWith, err := video.Evaluate(tm.Models[w], scene.Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: table V %v: %w", w, err)
		}
		rows = append(rows, AccuracyRow{
			Name: w.String() + " with few shot learning",
			Top1: cmWith.Top1(), MeanClass: cmWith.MeanClass(),
			TestClips: len(scene.Test),
		})

		// Without: train from scratch on the same small train split.
		scratch, err := video.SlowFastBuilder(cfg.slowFastConfig(cfg.Seed + 400 + int64(w)))()
		if err != nil {
			return nil, err
		}
		cfg.logf("training %v from scratch on %d clips (ablation)", w, len(scene.Train))
		if _, err := video.Train(scratch, scene.Train, video.TrainConfig{
			Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
		}); err != nil {
			return nil, fmt.Errorf("experiments: table V scratch %v: %w", w, err)
		}
		cmWithout, err := video.Evaluate(scratch, scene.Test)
		if err != nil {
			return nil, fmt.Errorf("experiments: table V %v: %w", w, err)
		}
		rows = append(rows, AccuracyRow{
			Name: w.String() + " without few shot learning",
			Top1: cmWithout.Top1(), MeanClass: cmWithout.MeanClass(),
			TestClips: len(scene.Test),
		})
	}
	return rows, nil
}
