// Package experiments regenerates every table and figure of the
// paper's evaluation section on the synthetic substrate: dataset
// composition (Table I), the detection-method study (Table II,
// Fig. 8), per-scene classification accuracy (Table III), the
// architecture comparison (Table IV), the few-shot ablation
// (Table V), model-switching latency (Table VI), and the blind-zone
// throughput study (Sec. V-D). cmd/safecross-bench and the root
// bench_test.go are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"

	"safecross/internal/dataset"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

// Config scales the learning experiments. The paper's full dataset
// (Table I) and training schedule are expensive on one CPU; Quick
// runs a proportionally reduced version that preserves every
// qualitative relationship, Full runs at paper scale.
type Config struct {
	// Scale multiplies the Table I segment counts (1.0 = the paper's
	// 1966/34/855).
	Scale float64
	// ClipLen is the frames per clip (the paper's 32; Quick uses 16).
	ClipLen int
	// Epochs is the training epoch count for from-scratch models.
	Epochs int
	// AdaptSteps and AdaptLR drive few-shot adaptation.
	AdaptSteps int
	AdaptLR    float64
	// Seed makes the whole experiment chain reproducible.
	Seed int64
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// Quick returns the CI-friendly configuration (≈2 % of Table I).
func Quick() Config {
	return Config{
		Scale:      0.02,
		ClipLen:    16,
		Epochs:     8,
		AdaptSteps: 12,
		AdaptLR:    0.03,
		Seed:       1,
	}
}

// Standard returns the default bench configuration (≈10 % of
// Table I): large enough for the paper's accuracy ordering to be
// stable, small enough for minutes-scale runs.
func Standard() Config {
	return Config{
		Scale:      0.10,
		ClipLen:    32,
		Epochs:     6,
		AdaptSteps: 16,
		AdaptLR:    0.02,
		Seed:       1,
	}
}

// Full returns the paper-scale configuration (Table I counts,
// 32-frame clips).
func Full() Config {
	return Config{
		Scale:      1.0,
		ClipLen:    32,
		Epochs:     6,
		AdaptSteps: 20,
		AdaptLR:    0.02,
		Seed:       1,
	}
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: scale %v outside (0,1]", c.Scale)
	}
	if c.ClipLen < 8 || c.ClipLen%8 != 0 {
		return fmt.Errorf("experiments: clip length %d must be a positive multiple of 8", c.ClipLen)
	}
	if c.Epochs <= 0 || c.AdaptSteps <= 0 || c.AdaptLR <= 0 {
		return fmt.Errorf("experiments: non-positive training knobs: %+v", c)
	}
	return nil
}

// logf writes a progress line when logging is enabled.
func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// vpConfig returns the VP configuration shared by all experiments.
func (c Config) vpConfig() vision.VPConfig { return vision.DefaultVPConfig() }

// slowFastConfig returns the SlowFast geometry for this config.
func (c Config) slowFastConfig(seed int64) video.SlowFastConfig {
	vp := c.vpConfig()
	return video.SlowFastConfig{
		T: c.ClipLen, H: vp.GridH, W: vp.GridW,
		Alpha: 8, Classes: dataset.NumClasses, Lateral: true, Seed: seed,
	}
}

// sceneData holds one scene's training clips (the scaled Table I
// segments, the paper's 80 % share) and a held-out evaluation set.
//
// Deviation from the paper: the paper's 8:1:1 split leaves a rain
// test set of ~3 segments (34 total), too small for stable accuracy
// estimates — and at reduced scales it would be empty. Training-set
// sizes follow the scaled Table I composition exactly (preserving the
// data-scarcity relationships that drive Tables III and V), while
// evaluation uses a fixed-size freshly generated held-out set per
// scene, drawn from a disjoint seed stream.
type sceneData struct {
	Weather     sim.Weather
	Train, Test []*dataset.Clip
	Total       int
}

// evalSetSize is the held-out evaluation clips per scene.
const evalSetSize = 30

// generateScenes builds the scaled Table I dataset per scene.
func (c Config) generateScenes() (map[sim.Weather]*sceneData, error) {
	specs := dataset.ScaledTableISpecs(c.Scale)
	out := make(map[sim.Weather]*sceneData, len(specs))
	for _, spec := range specs {
		// The paper trains on the 80% share of each scene.
		trainSpec := spec
		trainSpec.Segments = maxInt(3, spec.Segments*8/10)
		c.logf("generating %d %v training segments (clip length %d)", trainSpec.Segments, spec.Weather, c.ClipLen)
		train, err := c.generateSceneClips(trainSpec)
		if err != nil {
			return nil, err
		}
		evalSpec := spec
		evalSpec.Segments = evalSetSize
		evalSpec.Seed = spec.Seed + 1<<40 // disjoint seed stream
		test, err := c.generateSceneClips(evalSpec)
		if err != nil {
			return nil, err
		}
		out[spec.Weather] = &sceneData{
			Weather: spec.Weather,
			Train:   train,
			Test:    test,
			Total:   spec.Segments,
		}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// generateSceneClips renders one scene's clips at the configured clip
// length.
func (c Config) generateSceneClips(spec dataset.Spec) ([]*dataset.Clip, error) {
	rng := newRand(spec.Seed)
	clips := make([]*dataset.Clip, 0, spec.Segments)
	for i := 0; i < spec.Segments; i++ {
		sc := sim.Scenario{
			Weather: spec.Weather,
			Danger:  rng.Float64() < 0.5,
			Blind:   rng.Float64() < 0.5,
			Seed:    spec.Seed + int64(i)*7919 + 13,
		}
		seg, err := sc.GenerateN(c.ClipLen)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v clip %d: %w", spec.Weather, i, err)
		}
		clip, err := dataset.FromSegment(seg, c.vpConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: %v clip %d: %w", spec.Weather, i, err)
		}
		clips = append(clips, clip)
	}
	return clips, nil
}
