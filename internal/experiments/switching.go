package experiments

import (
	"fmt"

	"safecross/internal/gpusim"
	"safecross/internal/pipeswitch"
)

// TableVIRow is one cell pair of the model-switching comparison.
type TableVIRow struct {
	Model        string
	StopAndStart pipeswitch.Report
	PipeSwitch   pipeswitch.Report
}

// TableVI measures stop-and-start versus PipeSwitch switching latency
// for the three models of the paper's Table VI on the simulated GPU.
func TableVI() ([]TableVIRow, error) {
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rows := make([]TableVIRow, 0, 3)
	for _, m := range pipeswitch.BuiltinModels() {
		cold, err := pipeswitch.StopAndStart{}.Switch(dev, nil, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: table VI %s: %w", m.Name, err)
		}
		dev.Reset()
		warm, err := pipeswitch.Pipelined{}.Switch(dev, nil, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: table VI %s: %w", m.Name, err)
		}
		dev.Reset()
		rows = append(rows, TableVIRow{Model: m.Name, StopAndStart: cold, PipeSwitch: warm})
	}
	return rows, nil
}

// GroupingAblationRow compares grouping strategies for one model —
// the design-choice ablation behind the paper's Sec. III-E-3.
type GroupingAblationRow struct {
	Model    string
	Strategy string
	Report   pipeswitch.Report
}

// GroupingAblation runs the pipelined switch under the three grouping
// strategies for every built-in model.
func GroupingAblation() ([]GroupingAblationRow, error) {
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	strategies := []pipeswitch.GroupingStrategy{
		pipeswitch.GroupOptimal, pipeswitch.GroupPerLayer, pipeswitch.GroupSingle,
	}
	var rows []GroupingAblationRow
	for _, m := range pipeswitch.BuiltinModels() {
		for _, g := range strategies {
			rep, err := pipeswitch.Pipelined{Grouping: g}.Switch(dev, nil, m)
			if err != nil {
				return nil, fmt.Errorf("experiments: grouping %s/%s: %w", m.Name, g, err)
			}
			dev.Reset()
			rows = append(rows, GroupingAblationRow{Model: m.Name, Strategy: g.String(), Report: rep})
		}
	}
	return rows, nil
}
