package experiments

import (
	"testing"

	"safecross/internal/dataset"
)

func TestAblateVPMorphology(t *testing.T) {
	rows, err := AblateVPMorphology()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byVariant := map[string]MorphologyAblationRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	with := byVariant["with-opening"]
	without := byVariant["without-opening"]
	if !with.FoundCar {
		t.Fatal("opening must keep the danger-zone car")
	}
	// Without opening, camera noise floods the components.
	if without.Detections <= with.Detections {
		t.Fatalf("opening should suppress noise blobs: with=%d without=%d",
			with.Detections, without.Detections)
	}
}

func TestAblateBackgroundModel(t *testing.T) {
	rows, err := AblateBackgroundModel()
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]float64{}
	for _, r := range rows {
		byVariant[r.Variant] = r.FalseForeground
	}
	if byVariant["dynamic-background"] >= byVariant["static-background"] {
		t.Fatalf("dynamic background must misfire less under drift: dynamic=%v static=%v",
			byVariant["dynamic-background"], byVariant["static-background"])
	}
}

func TestAblateSlowFastLateral(t *testing.T) {
	if testing.Short() {
		t.Skip("training ablation skipped in -short mode")
	}
	rows, err := AblateSlowFastLateral(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byVariant := map[string]LateralAblationRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	with := byVariant["slowfast"]
	without := byVariant["slowfast-nolateral"]
	if with.Params <= without.Params {
		t.Fatal("lateral variant must have more parameters")
	}
	// Both variants must learn the task; removing the lateral fusion
	// must not produce a large win (it is the architecture's core
	// idea, so at worst a small seed-level fluctuation).
	if with.Top1 < 0.6 || without.Top1 < 0.5 {
		t.Fatalf("ablation variants failed to learn: %+v", rows)
	}
	if without.Top1 > with.Top1+0.15 {
		t.Fatalf("removing lateral connections should not win big: with=%v without=%v",
			with.Top1, without.Top1)
	}
}

func TestAblateMAMLInnerSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("training ablation skipped in -short mode")
	}
	rows, err := AblateMAMLInnerSteps(Quick(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Top1 < 0.4 {
			t.Fatalf("inner-steps k=%d collapsed: %v", r.Steps, r.Top1)
		}
	}
	if _, err := AblateMAMLInnerSteps(Config{}, nil); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDangerLabelHelper(t *testing.T) {
	if !dangerLabelForClip(&dataset.Clip{Label: dataset.ClassDanger}) {
		t.Fatal("danger clip misreported")
	}
	if dangerLabelForClip(&dataset.Clip{Label: dataset.ClassSafe}) {
		t.Fatal("safe clip misreported")
	}
}
