package experiments

import (
	"testing"

	"safecross/internal/sim"
)

func TestAdaptToFogScene(t *testing.T) {
	if testing.Short() {
		t.Skip("training extension skipped in -short mode")
	}
	res, err := AdaptToScene(Quick(), sim.Fog, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scene != sim.Fog || res.SupportClips != 10 {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if res.After < 0.6 {
		t.Fatalf("adapted fog accuracy %v too low", res.After)
	}
	// Adaptation must not make things meaningfully worse.
	if res.After < res.Before-0.1 {
		t.Fatalf("adaptation hurt: before %v after %v", res.Before, res.After)
	}
}

func TestAdaptToSceneValidation(t *testing.T) {
	if _, err := AdaptToScene(Quick(), sim.Night, 0); err == nil {
		t.Fatal("expected support-size error")
	}
	if _, err := AdaptToScene(Config{}, sim.Fog, 4); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestMirrorDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("training extension skipped in -short mode")
	}
	res, err := MirrorDeployment(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Top1 < 0.7 {
		t.Fatalf("mirrored deployment accuracy %v too low", res.Top1)
	}
	// The mirrored model must not transfer to the unmirrored geometry
	// as well as to its own (the scene is directional).
	if res.CrossTop1 > res.Top1 {
		t.Fatalf("mirrored model works better on unmirrored clips (%v > %v)?",
			res.CrossTop1, res.Top1)
	}
}
