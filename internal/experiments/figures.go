package experiments

import (
	"fmt"
	"io"

	"safecross/internal/dataset"
	"safecross/internal/detect"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

// predict wraps video.Predict for clip inputs.
func predict(m video.Classifier, clip *dataset.Clip) (int, error) {
	return video.Predict(m, clip.Input)
}

// Fig3 renders the VP pipeline stages of Fig. 3 as ASCII art: the
// raw frame, the background-subtracted mask after opening, and the
// 2-D occupancy representation.
func Fig3(w io.Writer, seed int64) error {
	scene, err := sim.OccludedSequence(sim.Day, seed, 16)
	if err != nil {
		return err
	}
	vpcfg := vision.DefaultVPConfig()
	vp := vision.NewPreprocessor(vpcfg)
	for _, f := range scene.Frames[:len(scene.Frames)-1] {
		if _, err := vp.Process(f); err != nil {
			return err
		}
	}
	last := scene.Frames[len(scene.Frames)-1]
	mask, err := vp.ProcessMask(last)
	if err != nil {
		return err
	}
	grid, err := vision.OccupancyGrid(mask,
		vision.Rect{X0: 0, Y0: 0, X1: last.W, Y1: last.H}, vpcfg.GridW, vpcfg.GridH)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 3(a) — raw camera frame:")
	fmt.Fprint(w, last.ASCII())
	fmt.Fprintln(w, "\nFig. 3(b) — background-subtracted, opened mask:")
	fmt.Fprint(w, mask.ASCII())
	fmt.Fprintln(w, "\nFig. 3(c) — 2-D occupancy representation (classifier input):")
	fmt.Fprint(w, grid.ASCII())
	return nil
}

// Fig8 renders the detection comparison of Fig. 8: the original
// occluded frame with the danger zone and ground-truth car, then each
// method's detections.
func Fig8(w io.Writer, seed int64) error {
	scene, err := detect.CanonicalScene()
	if err != nil {
		return err
	}
	dets, err := detect.DefaultDetectors(seed)
	if err != nil {
		return err
	}
	last := scene.Frames[len(scene.Frames)-1]

	fmt.Fprintln(w, "Fig. 8(a) — occluded intersection (camera view):")
	fmt.Fprint(w, annotate(last, nil, scene))
	for _, d := range dets {
		rects, err := d.Detect(scene.Frames)
		if err != nil {
			return err
		}
		hit := detect.HitsZone(rects, scene.Zone, detect.HitOverlap)
		verdict := "MISSES the danger-zone vehicle"
		if hit {
			verdict = "FINDS the danger-zone vehicle"
		}
		fmt.Fprintf(w, "\nFig. 8 — %s (%d detections, %s):\n", d.Name(), len(rects), verdict)
		fmt.Fprint(w, annotate(last, rects, scene))
	}
	return nil
}

// annotate renders the frame with detection boxes ('#' outline), the
// danger zone ('.') and the ground-truth car ('@').
func annotate(frame *vision.Image, rects []vision.Rect, scene *sim.OccludedScene) string {
	canvas := frame.Clone()
	out := []byte(canvas.ASCII())
	stride := canvas.W + 1 // ASCII rows end with '\n'
	mark := func(x, y int, ch byte) {
		if x < 0 || x >= canvas.W || y < 0 || y >= canvas.H {
			return
		}
		out[y*stride+x] = ch
	}
	outline := func(r vision.Rect, ch byte) {
		for x := r.X0; x < r.X1; x++ {
			mark(x, r.Y0, ch)
			mark(x, r.Y1-1, ch)
		}
		for y := r.Y0; y < r.Y1; y++ {
			mark(r.X0, y, ch)
			mark(r.X1-1, y, ch)
		}
	}
	outline(scene.Zone, '.')
	outline(scene.Car, '@')
	for _, r := range rects {
		outline(r, '#')
	}
	return string(out)
}
